// §4.2 "Can specialization save resources?" — the SCION stage experiment.
//
// Paper: the unspecialized SCION program needs the maximum number of
// Tofino-2 stages; specializing against the supplied (IPv4-only)
// configuration removes the unused IPv6 paths and needs 20% fewer stages;
// enabling the IPv6 paths brings it back to the maximum.

#include <cstdio>

#include "flay/specializer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "tofino/compiler.h"

int main() {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace tofino = flay::tofino;
namespace core = flay::flay;
using flay::BitVec;

  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  tofino::CompilerOptions copts;
  copts.searchIterations = 400;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);

  std::printf("SCION border router on a %u-stage RMT pipeline\n\n",
              compiler.model().numStages);

  tofino::CompileResult baseline = compiler.compile(checked);
  std::printf("%-38s %2u stages  (tcam=%u sram=%u phv=%u)\n",
              "unspecialized program:", baseline.stagesUsed,
              baseline.tcamBlocksUsed, baseline.sramBlocksUsed,
              baseline.phvBitsUsed);

  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(64)) service.applyUpdate(u);

  auto v4Result = core::Specializer(service).specialize();
  p4::CheckedProgram v4Checked = core::recheck(std::move(v4Result.program));
  tofino::CompileResult v4Compiled = compiler.compile(v4Checked);
  std::printf("%-38s %2u stages  (%.0f%% fewer; %zu tables removed)\n",
              "specialized, IPv4-only config:", v4Compiled.stagesUsed,
              100.0 * (1.0 - static_cast<double>(v4Compiled.stagesUsed) /
                                 baseline.stagesUsed),
              v4Result.stats.removedTables);

  auto verdict = service.applyBatch(net::scionV6Config(16));
  auto v6Result = core::Specializer(service).specialize();
  p4::CheckedProgram v6Checked = core::recheck(std::move(v6Result.program));
  tofino::CompileResult v6Compiled = compiler.compile(v6Checked);
  std::printf("%-38s %2u stages  (recompile verdict: %s)\n",
              "after enabling IPv6 paths:", v6Compiled.stagesUsed,
              verdict.needsRecompilation ? "required" : "not required");

  std::printf(
      "\nShape check: max stages -> ~20%% fewer -> max stages again,\n"
      "with Flay correctly demanding recompilation for the IPv6 batch.\n");

  flay::obs::writeBenchReport(
      "scion_stages",
      {{"baseline_stages", static_cast<double>(baseline.stagesUsed)},
       {"v4_specialized_stages", static_cast<double>(v4Compiled.stagesUsed)},
       {"v6_enabled_stages", static_cast<double>(v6Compiled.stagesUsed)},
       {"v4_tables_removed",
        static_cast<double>(v4Result.stats.removedTables)},
       {"v6_batch_recompile", verdict.needsRecompilation ? 1.0 : 0.0}});
  return 0;
}
