// §4.2 "What influences Flay's update processing speed?" — the burst
// experiment: 1000 fuzzer-generated IPv4 entries inserted into the SCION
// forwarding table are classified as not requiring recompilation within a
// second; a batch enabling the IPv6 paths is correctly flagged.
//
// Doubles as the regression gate for the burst-path config-apply outlier:
// per-update apply latency is recorded individually (not as one
// whole-batch sample), and with the O(1) duplicate/id indexes in
// TableState the burst p99 must stay within 100x of the p50 — the bench
// fails otherwise.

#include <chrono>
#include <cstdio>

#include "flay/engine.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"

int main() {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
namespace obs = flay::obs;
using flay::BitVec;

  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(4)) service.applyUpdate(u);

  std::printf("SCION burst handling\n\n");

  // Burst 1: 1000 unique IPv4 routes (semantics-preserving). The per-update
  // apply histogram is scoped to this burst so the p99/p50 gate below
  // measures exactly the phenomenon the outlier lived in.
  obs::Histogram& applyUs =
      obs::Registry::global().histogram("flay.config_apply_us");
  applyUs.reset();
  auto burst = net::scionV4RouteBurst(1000);
  auto t0 = std::chrono::steady_clock::now();
  auto verdict = service.applyBatch(burst);
  auto wallMs = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                1000.0;
  unsigned long long applyP50 =
      static_cast<unsigned long long>(applyUs.quantile(0.5));
  unsigned long long applyP99 =
      static_cast<unsigned long long>(applyUs.quantile(0.99));
  std::printf("burst of %zu IPv4 route inserts:\n", burst.size());
  std::printf("  wall time (install + analysis): %8.1f ms\n", wallMs);
  std::printf("  analysis time:                  %8.1f ms\n",
              verdict.analysisTime.count() / 1000.0);
  std::printf("  config apply per update:        p50=%lluus p99=%lluus "
              "max=%lluus (%llu samples)\n",
              applyP50, applyP99,
              static_cast<unsigned long long>(applyUs.max()),
              static_cast<unsigned long long>(applyUs.count()));
  std::printf("  recompilation needed:           %8s\n",
              verdict.needsRecompilation ? "YES" : "no");

  // One more incremental update on top of the 1000: the steady-state cost.
  auto single = net::scionV4RouteBurst(1, /*seed=*/999);
  auto v1 = service.applyUpdate(single[0]);
  std::printf("  single follow-up update:        %8.3f ms (recompile: %s)\n",
              v1.analysisTime.count() / 1000.0,
              v1.needsRecompilation ? "YES" : "no");

  // Burst 2: enable the previously-unused IPv6 paths.
  auto v6 = service.applyBatch(net::scionV6Config(16));
  std::printf("\nbatch enabling IPv6 paths (%zu updates):\n",
              net::scionV6Config(16).size());
  std::printf("  analysis time:                  %8.1f ms\n",
              v6.analysisTime.count() / 1000.0);
  std::printf("  recompilation needed:           %8s\n",
              v6.needsRecompilation ? "YES" : "no");
  std::printf("  changed components: ");
  size_t shown = 0;
  for (const auto& c : v6.changedComponents) {
    if (shown++ > 4) {
      std::printf("... (%zu total)", v6.changedComponents.size());
      break;
    }
    std::printf("%s ", c.c_str());
  }

  // Burst 3: the same route burst through the streaming bulk path on a
  // fresh service — v4_t01 starts above the over-approximation threshold
  // here (1000-entry burst, threshold 100), so the classifier pre-filter
  // should bypass the tail of the stream.
  core::FlayService bulkService(checked);
  for (const auto& u : net::scionCommonConfig()) bulkService.applyUpdate(u);
  for (const auto& u : net::scionV4Config(4)) bulkService.applyUpdate(u);
  obs::Counter& bypassCounter =
      obs::Registry::global().counter("flay.bulk_bypass");
  uint64_t bypassBefore = bypassCounter.value();
  auto t1 = std::chrono::steady_clock::now();
  core::BulkLoadOptions bulkOpts;
  bulkOpts.chunkSize = 256;
  core::BulkLoadReport bulkRep = bulkService.bulkLoad(burst, bulkOpts);
  auto bulkMs = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t1)
                    .count() /
                1000.0;
  std::printf("\nsame burst through the bulk path (chunks of %zu):\n",
              bulkOpts.chunkSize);
  std::printf("  wall time:                      %8.1f ms\n", bulkMs);
  std::printf("  bypassed / analyzed:            %llu / %llu "
              "(flay.bulk_bypass +%llu)\n",
              static_cast<unsigned long long>(bulkRep.bypassed),
              static_cast<unsigned long long>(bulkRep.analyzed),
              static_cast<unsigned long long>(bypassCounter.value() -
                                              bypassBefore));

  std::printf(
      "\nShape check: the route burst completes well under a second and\n"
      "forwards without recompilation; the IPv6 batch demands it.\n");

  flay::obs::writeBenchReport(
      "burst_updates",
      {{"burst_size", static_cast<double>(burst.size())},
       {"burst_wall_ms", wallMs},
       {"burst_analysis_ms", verdict.analysisTime.count() / 1000.0},
       {"burst_recompile", verdict.needsRecompilation ? 1.0 : 0.0},
       {"config_apply_p50_us", static_cast<double>(applyP50)},
       {"config_apply_p99_us", static_cast<double>(applyP99)},
       {"single_update_ms", v1.analysisTime.count() / 1000.0},
       {"v6_batch_analysis_ms", v6.analysisTime.count() / 1000.0},
       {"v6_batch_recompile", v6.needsRecompilation ? 1.0 : 0.0},
       {"bulk_wall_ms", bulkMs},
       {"bulk_bypassed", static_cast<double>(bulkRep.bypassed)}});

  // Regression gate for the config-apply outlier: with per-update samples
  // and O(1) duplicate detection, the burst tail must stay the same order
  // as the median (the old O(n) scan put p99 three orders above p50).
  if (applyP99 > 100 * (applyP50 > 0 ? applyP50 : 1)) {
    std::fprintf(stderr,
                 "FAIL: flay.config_apply_us p99 (%lluus) exceeds 100x p50 "
                 "(%lluus) over the burst\n",
                 applyP99, applyP50);
    return 1;
  }
  return 0;
}
