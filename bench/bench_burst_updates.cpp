// §4.2 "What influences Flay's update processing speed?" — the burst
// experiment: 1000 fuzzer-generated IPv4 entries inserted into the SCION
// forwarding table are classified as not requiring recompilation within a
// second; a batch enabling the IPv6 paths is correctly flagged.

#include <chrono>
#include <cstdio>

#include "flay/engine.h"
#include "net/workloads.h"
#include "obs/bench_report.h"

int main() {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
using flay::BitVec;

  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(4)) service.applyUpdate(u);

  std::printf("SCION burst handling\n\n");

  // Burst 1: 1000 unique IPv4 routes (semantics-preserving).
  auto burst = net::scionV4RouteBurst(1000);
  auto t0 = std::chrono::steady_clock::now();
  auto verdict = service.applyBatch(burst);
  auto wallMs = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                1000.0;
  std::printf("burst of %zu IPv4 route inserts:\n", burst.size());
  std::printf("  wall time (install + analysis): %8.1f ms\n", wallMs);
  std::printf("  analysis time:                  %8.1f ms\n",
              verdict.analysisTime.count() / 1000.0);
  std::printf("  recompilation needed:           %8s\n",
              verdict.needsRecompilation ? "YES" : "no");

  // One more incremental update on top of the 1000: the steady-state cost.
  auto single = net::scionV4RouteBurst(1, /*seed=*/999);
  auto v1 = service.applyUpdate(single[0]);
  std::printf("  single follow-up update:        %8.3f ms (recompile: %s)\n",
              v1.analysisTime.count() / 1000.0,
              v1.needsRecompilation ? "YES" : "no");

  // Burst 2: enable the previously-unused IPv6 paths.
  auto v6 = service.applyBatch(net::scionV6Config(16));
  std::printf("\nbatch enabling IPv6 paths (%zu updates):\n",
              net::scionV6Config(16).size());
  std::printf("  analysis time:                  %8.1f ms\n",
              v6.analysisTime.count() / 1000.0);
  std::printf("  recompilation needed:           %8s\n",
              v6.needsRecompilation ? "YES" : "no");
  std::printf("  changed components: ");
  size_t shown = 0;
  for (const auto& c : v6.changedComponents) {
    if (shown++ > 4) {
      std::printf("... (%zu total)", v6.changedComponents.size());
      break;
    }
    std::printf("%s ", c.c_str());
  }
  std::printf(
      "\n\nShape check: the route burst completes well under a second and\n"
      "forwards without recompilation; the IPv6 batch demands it.\n");

  flay::obs::writeBenchReport(
      "burst_updates",
      {{"burst_size", static_cast<double>(burst.size())},
       {"burst_wall_ms", wallMs},
       {"burst_analysis_ms", verdict.analysisTime.count() / 1000.0},
       {"burst_recompile", verdict.needsRecompilation ? 1.0 : 0.0},
       {"single_update_ms", v1.analysisTime.count() / 1000.0},
       {"v6_batch_analysis_ms", v6.analysisTime.count() / 1000.0},
       {"v6_batch_recompile", v6.needsRecompilation ? 1.0 : 0.0}});
  return 0;
}
