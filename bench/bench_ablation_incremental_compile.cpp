// Ablation / future-work prototype: monolithic vs incremental device
// recompilation (§6, first outlook item: "recompilation of just the
// modules (such as specific tables) that have changed").
//
// Scenario: SCION runs IPv4-only; the operator enables IPv6 (Flay demands
// recompilation of the v6 components). We compare:
//   (a) the monolithic compiler recompiling the whole program, vs
//   (b) the incremental compiler re-placing only the changed components
//       against the pinned baseline placement.

#include <cstdio>

#include "flay/specializer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "tofino/incremental.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace tofino = flay::tofino;
namespace core = flay::flay;

int main() {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));

  tofino::CompilerOptions copts;
  copts.searchIterations = 2000;
  tofino::IncrementalPipelineCompiler compiler(tofino::PipelineModel{},
                                               copts);

  // Baseline: the IPv4-only specialized program.
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(32)) service.applyUpdate(u);
  auto v4 = core::Specializer(service).specialize();
  p4::CheckedProgram v4Checked = core::recheck(std::move(v4.program));
  tofino::CompileResult base = compiler.fullCompile(v4Checked);
  std::printf("baseline full compile (IPv4-only): %u stages, %.2f ms\n",
              base.stagesUsed, base.compileTime.count() / 1000.0);

  // Change: enable IPv6; respecialize.
  auto verdict = service.applyBatch(net::scionV6Config(8));
  auto v6 = core::Specializer(service).specialize();
  p4::CheckedProgram v6Checked = core::recheck(std::move(v6.program));

  // (a) Monolithic recompilation.
  tofino::PipelineCompiler monolithic(tofino::PipelineModel{}, copts);
  tofino::CompileResult whole = monolithic.compile(v6Checked);
  std::printf("\n(a) monolithic recompilation:  %u stages, %10.2f ms\n",
              whole.stagesUsed, whole.compileTime.count() / 1000.0);

  // (b) Incremental recompilation of just the changed components.
  tofino::CompileResult inc =
      compiler.incrementalCompile(v6Checked, verdict.changedComponents);
  std::printf("(b) incremental recompilation: %u stages, %10.2f ms "
              "(%zu units re-placed%s)\n",
              inc.stagesUsed, inc.compileTime.count() / 1000.0,
              compiler.lastReplacedUnits(),
              compiler.lastFellBackToFull() ? ", FELL BACK TO FULL" : "");
  if (whole.fits && inc.fits) {
    std::printf("\nspeedup: %.1fx; both placements fit in %u/%u stages\n",
                static_cast<double>(whole.compileTime.count()) /
                    inc.compileTime.count(),
                inc.stagesUsed, whole.stagesUsed);
  }
  std::printf(
      "\nShape check: recompiling only the changed tables is far cheaper\n"
      "than the monolithic device compile — the paper's §6 outlook.\n");

  flay::obs::writeBenchReport(
      "ablation_incremental_compile",
      {{"baseline_full_ms", base.compileTime.count() / 1000.0},
       {"monolithic_ms", whole.compileTime.count() / 1000.0},
       {"incremental_ms", inc.compileTime.count() / 1000.0},
       {"units_replaced",
        static_cast<double>(compiler.lastReplacedUnits())},
       {"fell_back_to_full", compiler.lastFellBackToFull() ? 1.0 : 0.0},
       {"speedup", inc.compileTime.count() > 0
                       ? static_cast<double>(whole.compileTime.count()) /
                             inc.compileTime.count()
                       : 0.0}});
  return 0;
}
