// Table 3: influence of installed updates on Flay's update-processing time
// for middleblock.p4's pre-ingress ACL.
//
// Paper:
//   entries | precise   | overapprox (>100 entries)
//        1  |   ~1 ms   |  -
//       10  |   ~5 ms   |  -
//      100  | ~100 ms   |  ~1 ms
//     1000  | ~4000 ms  |  ~1 ms
//    10000  | ~265319ms |  ~1 ms
//
// Shape: precise-mode analysis degrades superlinearly with installed
// entries (the nested match expression + eclipse normalization), while the
// over-approximate encoding stays flat.

#include <chrono>
#include <cstdio>

#include "flay/engine.h"
#include "net/workloads.h"
#include "obs/bench_report.h"

namespace {

/// Measures the analysis time of ONE probe update after `installed` entries.
double probeMs(size_t installed, size_t threshold) {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
using flay::BitVec;
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  // The shipped program declares the ACL at 8192 entries (one full TCAM
  // stage). The paper's sweep goes to 10000 installed entries, so widen the
  // declared capacity for this experiment only.
  for (auto& control : checked.program.controls) {
    for (auto& table : control.tables) {
      if (table.name == "acl_pre_ingress") table.size = 20000;
    }
  }
  core::FlayOptions options;
  options.analysis.analyzeParser = false;
  options.encoder.overapproxThreshold = threshold;
  core::FlayService service(checked, options);

  auto entries = net::middleblockAclEntries(installed + 1, /*seed=*/77);
  std::vector<runtime::Update> preload(entries.begin(), entries.end() - 1);
  if (!preload.empty()) service.applyBatch(preload);

  auto verdict = service.applyUpdate(entries.back());
  return verdict.analysisTime.count() / 1000.0;
}

}  // namespace

int main() {
  std::printf(
      "Table 3: update analysis time vs installed entries "
      "(middleblock pre-ingress ACL)\n");
  std::printf("%10s %14s %26s\n", "Installed", "Precise",
              "Overapprox (threshold 100)");
  std::vector<std::pair<std::string, double>> metrics;
  for (size_t n : {1u, 10u, 100u, 1000u, 10000u}) {
    // Precise: threshold beyond reach. Overapprox: paper threshold of 100.
    double precise = probeMs(n, 1u << 30);
    double over = n >= 100 ? probeMs(n, 100) : -1.0;
    if (over >= 0) {
      std::printf("%10zu %12.2fms %22.2fms\n", n, precise, over);
    } else {
      std::printf("%10zu %12.2fms %25s\n", n, precise, "-");
    }
    std::string suffix = std::to_string(n);
    metrics.emplace_back("precise_ms." + suffix, precise);
    if (over >= 0) metrics.emplace_back("overapprox_ms." + suffix, over);
  }
  std::printf(
      "\nShape check: precise grows superlinearly; overapprox stays flat.\n");
  flay::obs::writeBenchReport("table3_update_scaling", metrics);
  return 0;
}
