// Microbenchmarks (google-benchmark) for the substrates behind the tables:
// expression interning/substitution (the Z3-replacement hot path), SAT
// solving, the software-switch packet loop, and Flay update processing.

#include <benchmark/benchmark.h>

#include "expr/substitute.h"
#include "obs/bench_report.h"
#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/headers.h"
#include "net/workloads.h"
#include "sim/interpreter.h"
#include "smt/solver.h"

namespace {

namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
using flay::BitVec;
namespace expr = flay::expr;
namespace smt = flay::smt;
namespace sim = flay::sim;

// --- Expression arena -------------------------------------------------------

void BM_ExprInterning(benchmark::State& state) {
  for (auto _ : state) {
    expr::ExprArena arena;
    expr::ExprRef x = arena.var("x", 32, expr::SymbolClass::kDataPlane);
    expr::ExprRef acc = arena.bvConst(32, 0);
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      acc = arena.add(acc, arena.bvXor(x, arena.bvConst(32, i)));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExprInterning)->Arg(100)->Arg(1000);

void BM_Substitution(benchmark::State& state) {
  expr::ExprArena arena;
  expr::ExprRef key = arena.var("key", 32, expr::SymbolClass::kDataPlane);
  expr::ExprRef cfg =
      arena.boolVar("cfg", expr::SymbolClass::kControlPlane);
  // Nested ITE chain like a precise table encoding of N entries.
  expr::ExprRef chain = arena.bvConst(9, 0);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    chain = arena.ite(arena.eq(key, arena.bvConst(32, i * 7)),
                      arena.bvConst(9, i % 512), chain);
  }
  expr::ExprRef guarded = arena.ite(cfg, chain, arena.bvConst(9, 0));
  for (auto _ : state) {
    expr::Substitution subst(arena);
    subst.bindConst("cfg", true, expr::SymbolClass::kControlPlane);
    benchmark::DoNotOptimize(subst.apply(guarded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Substitution)->Arg(10)->Arg(100)->Arg(1000);

// --- SMT ----------------------------------------------------------------------

void BM_SmtEquivalenceQuery(benchmark::State& state) {
  for (auto _ : state) {
    expr::ExprArena arena;
    expr::ExprRef x = arena.var("x", 16, expr::SymbolClass::kDataPlane);
    expr::ExprRef y = arena.var("y", 16, expr::SymbolClass::kDataPlane);
    expr::ExprRef lhs = arena.bvXor(x, y);
    expr::ExprRef rhs = arena.bvAnd(arena.bvOr(x, y),
                                    arena.bvNot(arena.bvAnd(x, y)));
    benchmark::DoNotOptimize(smt::areEquivalent(arena, lhs, rhs));
  }
}
BENCHMARK(BM_SmtEquivalenceQuery);

// --- Software switch --------------------------------------------------------------

const char* kFwdProgram = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t {
  bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst;
}
struct headers { eth_t eth; ipv4_t ipv4; }
parser P {
  state start {
    extract(hdr.eth);
    transition select(hdr.eth.type) { 0x800: parse_ipv4; default: accept; }
  }
  state parse_ipv4 { extract(hdr.ipv4); transition accept; }
}
control C {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table route {
    key = { hdr.ipv4.dst : lpm; }
    actions = { fwd; noop; }
    default_action = noop;
  }
  apply {
    if (hdr.ipv4.isValid()) { route.apply(); }
  }
}
deparser D { emit(hdr.eth); emit(hdr.ipv4); }
pipeline(P, C, D);
)";

void BM_InterpreterPacketRate(benchmark::State& state) {
  auto checked = p4::loadProgramFromString(kFwdProgram);
  runtime::DeviceConfig config(checked);
  runtime::TableEntry e;
  e.matches.push_back(runtime::FieldMatch::lpm(BitVec(32, 0x0A000000), 8));
  e.actionName = "fwd";
  e.actionArgs.push_back(BitVec(9, 2));
  config.table("C.route").insert(std::move(e));
  sim::DataPlaneState dpState(checked);
  sim::Interpreter interp(checked, config, dpState);

  net::EthHeader eth;
  eth.type = 0x800;
  sim::Packet p;
  p.bytes = net::PacketBuilder()
                .eth(eth)
                .raw(BitVec(8, 64))
                .raw(BitVec(8, 6))
                .raw(BitVec(32, 0xC0A80101))
                .raw(BitVec(32, 0x0A000001))
                .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.process(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterPacketRate);

// --- Flay update processing ----------------------------------------------------

void BM_FlayUpdateAnalysis(benchmark::State& state) {
  auto checked = p4::loadProgramFromFile(net::programPath("middleblock"));
  core::FlayOptions options;
  options.analysis.analyzeParser = false;
  options.encoder.overapproxThreshold =
      static_cast<size_t>(state.range(1)) != 0 ? 100 : (1u << 30);
  core::FlayService service(checked, options);
  // One unique pool: the first range(0) entries preload the table, the rest
  // cycle through insert+delete pairs so the installed count stays constant
  // (steady-state measurement, no duplicate collisions).
  const size_t preloadCount = static_cast<size_t>(state.range(0));
  auto pool = net::middleblockAclEntries(preloadCount + 64, 5);
  std::vector<runtime::Update> preload(pool.begin(),
                                       pool.begin() + preloadCount);
  if (!preload.empty()) service.applyBatch(preload);
  size_t next = 0;
  for (auto _ : state) {
    const auto& probe = pool[preloadCount + (next++ % 64)];
    benchmark::DoNotOptimize(service.applyUpdate(probe));
    uint64_t id = service.config()
                      .table("MbIngress.acl_pre_ingress")
                      .entries()
                      .back()
                      .id;
    benchmark::DoNotOptimize(service.applyUpdate(
        runtime::Update::remove("MbIngress.acl_pre_ingress", id)));
  }
}
BENCHMARK(BM_FlayUpdateAnalysis)
    ->Args({10, 0})
    ->Args({100, 0})
    ->Args({150, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so the run can end with the registry snapshot
// (SMT/SAT counters accumulated across all the iterations above).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  flay::obs::writeBenchReport("micro", {});
  return 0;
}
