// Ablation: taint-driven incremental re-specialization vs whole-program
// re-specialization per update (DESIGN.md, decision 4).
//
// §2 argues the compiler must "perform as little processing as possible on
// program sources and control-plane configurations for each update". This
// quantifies the claim: the same update stream, once with the taint map
// (default) and once re-evaluating every annotation on every update.

#include <cstdio>

#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;

namespace {

double runStream(const char* program, bool useTaint, size_t updates) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(program));
  core::FlayOptions options;
  options.analysis.analyzeParser = false;
  options.useTaintMap = useTaint;
  core::FlayService service(checked, options);

  net::EntryFuzzer fuzzer(11);
  // Spread updates across every table of the program, round-robin.
  const auto& tables = service.analysis().tables;
  std::vector<std::vector<runtime::TableEntry>> pools;
  for (const auto& t : tables) {
    pools.push_back(fuzzer.uniqueEntries(service.config().table(t.qualified),
                                         updates / tables.size() + 1));
  }
  double totalMs = 0;
  for (size_t i = 0; i < updates; ++i) {
    size_t t = i % tables.size();
    auto verdict = service.applyUpdate(runtime::Update::insert(
        tables[t].qualified, pools[t][i / tables.size()]));
    totalMs += verdict.analysisTime.count() / 1000.0;
  }
  return totalMs;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: per-update analysis cost, taint map vs full re-evaluation\n");
  std::printf("%-12s %10s %16s %16s %8s\n", "Program", "Updates",
              "With taint", "Without taint", "Speedup");
  std::vector<std::pair<std::string, double>> metrics;
  for (const char* program : {"scion", "switch", "dash"}) {
    const size_t updates = 200;
    double with = runStream(program, true, updates);
    double without = runStream(program, false, updates);
    std::printf("%-12s %10zu %14.1fms %14.1fms %7.1fx\n", program, updates,
                with, without, without / with);
    std::string prefix = program;
    metrics.emplace_back(prefix + ".with_taint_ms", with);
    metrics.emplace_back(prefix + ".without_taint_ms", without);
    metrics.emplace_back(prefix + ".speedup", without / with);
  }
  std::printf(
      "\nShape check: taint lookup keeps per-update work proportional to the\n"
      "touched component, not to program size.\n");
  flay::obs::writeBenchReport("ablation_taint", metrics);
  return 0;
}
