// §3 "Specializing packet-classification" (ablation): when the active
// control-plane configuration uses few or no masks, the TCAM can be
// replaced by a cheaper structure (STCAM / exact hash / LPM trie). This
// bench sweeps rule-set shapes and compares memory cost across structures,
// plus the config-driven chooser's pick.

#include <cstdio>
#include <random>
#include <set>

#include "classifier/classifier.h"
#include "obs/bench_report.h"

namespace {

using namespace flay::classifier;

std::vector<Rule> makeRules(int shape, size_t count, std::mt19937_64& rng) {
  std::vector<Rule> rules;
  std::set<uint64_t> seen;
  while (rules.size() < count) {
    uint64_t v = rng() & 0xFFFFFFFF;
    Rule r;
    switch (shape) {
      case 0:  // all exact
        if (!seen.insert(v).second) continue;
        r = {flay::BitVec(32, v), flay::BitVec::allOnes(32), 0,
             static_cast<uint32_t>(rules.size())};
        break;
      case 1: {  // prefixes
        uint32_t plen = 8 + static_cast<uint32_t>(rng() % 17);
        if (!seen.insert((v >> (32 - plen)) | (uint64_t{plen} << 40)).second) {
          continue;
        }
        flay::BitVec mask = flay::BitVec::allOnes(32).shl(32 - plen);
        r = {flay::BitVec(32, v), mask, static_cast<int32_t>(plen),
             static_cast<uint32_t>(rules.size())};
        break;
      }
      case 2: {  // few distinct masks (4)
        static const uint64_t kMasks[4] = {0xFFFFFF00, 0xFFFF0000,
                                           0x00FFFF00, 0xFF0000FF};
        uint64_t m = kMasks[rng() % 4];
        if (!seen.insert((v & m) ^ (m << 1)).second) continue;
        r = {flay::BitVec(32, v), flay::BitVec(32, m),
             static_cast<int32_t>(rules.size()),
             static_cast<uint32_t>(rules.size())};
        break;
      }
      default: {  // arbitrary masks
        uint64_t m = rng() & 0xFFFFFFFF;
        if (m == 0) continue;
        if (!seen.insert(v ^ (m * 3)).second) continue;
        r = {flay::BitVec(32, v), flay::BitVec(32, m),
             static_cast<int32_t>(rules.size()),
             static_cast<uint32_t>(rules.size())};
        break;
      }
    }
    rules.push_back(std::move(r));
  }
  return rules;
}

}  // namespace

int main() {
  std::mt19937_64 rng(2024);
  const char* shapeNames[] = {"all-exact", "prefixes", "4-masks",
                              "arbitrary"};

  std::printf(
      "Classifier memory cost by rule shape (1024 rules, 32-bit key,\n"
      "cost units: SRAM bit = 1, TCAM bit = 6)\n\n");
  std::printf("%-10s %12s %14s %14s %10s\n", "Shape", "TCAM cost",
              "Chosen", "Chosen cost", "Saving");

  std::vector<std::pair<std::string, double>> metrics;
  for (int shape = 0; shape < 4; ++shape) {
    auto rules = makeRules(shape, 1024, rng);
    auto tcam = makeTcam(rules, 32);
    auto chosen = chooseClassifier(rules, 32);
    double saving =
        100.0 * (1.0 - static_cast<double>(chosen->costUnits()) /
                           tcam->costUnits());
    std::printf("%-10s %12llu %14s %14llu %9.1f%%\n", shapeNames[shape],
                static_cast<unsigned long long>(tcam->costUnits()),
                chosen->name().c_str(),
                static_cast<unsigned long long>(chosen->costUnits()), saving);
    std::string prefix = shapeNames[shape];
    metrics.emplace_back(prefix + ".tcam_cost",
                         static_cast<double>(tcam->costUnits()));
    metrics.emplace_back(prefix + ".chosen_cost",
                         static_cast<double>(chosen->costUnits()));
    metrics.emplace_back(prefix + ".saving_pct", saving);
  }

  // Sweep: how the saving scales with rule count for the exact case.
  std::printf("\nExact-rule saving vs rule count:\n%10s %12s %12s\n", "Rules",
              "TCAM", "Hash");
  for (size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto rules = makeRules(0, n, rng);
    auto tcam = makeTcam(rules, 32);
    auto hash = makeExactHash(rules, 32);
    std::printf("%10zu %12llu %12llu\n", n,
                static_cast<unsigned long long>(tcam->costUnits()),
                static_cast<unsigned long long>(hash->costUnits()));
  }
  std::printf(
      "\nShape check: specialization replaces the TCAM whenever the config's\n"
      "mask diversity allows, cutting cost by multiples.\n");
  flay::obs::writeBenchReport("classifier_memory", metrics);
  return 0;
}
