// Table 2: Flay evaluation times per program.
//
// Paper columns: program statements | compile time | data-plane analysis
// time (once) | update analysis time (per control-plane update).
//
//   scion       582 |  38s | 2.0s  | 90ms
//   switch      786 | 106s | 9.0s  | 90ms
//   middleblock 346 |   2s | 0.6s  |  5ms
//   dash        509 |   2s | 1.5s  | 12ms
//
// Shape to reproduce: compile >> data-plane analysis >> update analysis,
// and update analysis stays small across program complexity. As in the
// paper, the data-plane analysis skips the parser for this table.

#include <cstdio>

#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "tofino/compiler.h"

int main() {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace tofino = flay::tofino;
namespace core = flay::flay;
using flay::BitVec;

  tofino::CompilerOptions copts;
  copts.searchIterations = 4000;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);

  std::printf("Table 2: Flay evaluation times (parser analysis skipped)\n");
  std::printf("%-12s %10s %12s %14s %14s\n", "Program", "Stmts", "Compile",
              "DP analysis", "Update analysis");

  std::vector<std::pair<std::string, double>> metrics;
  for (const char* name : {"scion", "switch", "middleblock", "dash"}) {
    p4::CheckedProgram checked =
        p4::loadProgramFromFile(net::programPath(name));

    tofino::CompileResult compiled = compiler.compile(checked);

    core::FlayOptions options;
    options.analysis.analyzeParser = false;
    core::FlayService service(checked, options);
    double dpMs = (service.dataPlaneAnalysisTime().count() +
                   service.preprocessTime().count()) /
                  1000.0;

    // One semantics-preserving update against the first table, as the
    // runtime would see steady-state: measure the analysis time.
    net::EntryFuzzer fuzzer(42);
    const auto& tableInfo = service.analysis().tables.front();
    auto entries = fuzzer.uniqueEntries(
        service.config().table(tableInfo.qualified), 2);
    service.applyUpdate(
        runtime::Update::insert(tableInfo.qualified, entries[0]));
    auto verdict = service.applyUpdate(
        runtime::Update::insert(tableInfo.qualified, entries[1]));

    std::printf("%-12s %10zu %10.1fms %12.2fms %12.3fms\n", name,
                checked.program.statementCount(),
                compiled.compileTime.count() / 1000.0, dpMs,
                verdict.analysisTime.count() / 1000.0);
    std::string prefix = name;
    metrics.emplace_back(prefix + ".compile_ms",
                         compiled.compileTime.count() / 1000.0);
    metrics.emplace_back(prefix + ".dp_analysis_ms", dpMs);
    metrics.emplace_back(prefix + ".update_analysis_ms",
                         verdict.analysisTime.count() / 1000.0);
  }
  std::printf(
      "\nShape check: update analysis is orders of magnitude cheaper than the\n"
      "one-time analysis, which is cheaper than a device compile.\n");
  flay::obs::writeBenchReport("table2_analysis_times", metrics);
  return 0;
}
