// Table 1: from-scratch device-compile times for Tofino programs.
//
// Paper (bf-p4c, Tofino):
//   switch 106 s | scion 38 s | Beaucoup 22 s | ACC-Turbo 28 s | DTA 25 s
//
// We compile the P4-lite ports with the RMT placement compiler. Absolute
// numbers are not comparable (our model is smaller and our search budget is
// tunable); the *shape* — whole-program compiles are orders of magnitude
// slower than Flay's per-update analysis, and bigger programs take longer —
// is what the table establishes.

#include <cstdio>

#include "net/workloads.h"
#include "obs/bench_report.h"
#include "tofino/compiler.h"

namespace {

struct Row {
  const char* name;
  double compileMs;
  size_t statements;
  uint32_t stages;
};

}  // namespace

int main() {
  namespace p4 = flay::p4;
namespace net = flay::net;
namespace tofino = flay::tofino;

  // A search budget in the production-compiler ballpark: bf-p4c runs many
  // expensive placement/allocation passes; we emulate the cost profile with
  // randomized-restart placement.
  tofino::CompilerOptions options;
  options.searchIterations = 4000;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, options);

  std::printf(
      "Table 1: whole-program compile times (monolithic device compiler)\n");
  std::printf("%-12s %12s %12s %8s\n", "Program", "Statements", "Compile",
              "Stages");

  std::vector<std::pair<std::string, double>> metrics;
  for (const char* name :
       {"switch", "scion", "beaucoup", "accturbo", "dta"}) {
    p4::CheckedProgram checked =
        p4::loadProgramFromFile(net::programPath(name));
    tofino::CompileResult result = compiler.compile(checked);
    if (!result.fits) {
      std::printf("%-12s compile FAILED: %s\n", name, result.error.c_str());
      continue;
    }
    std::printf("%-12s %12zu %10.1fms %8u\n", name,
                checked.program.statementCount(),
                result.compileTime.count() / 1000.0, result.stagesUsed);
    std::string prefix = name;
    metrics.emplace_back(prefix + ".compile_ms",
                         result.compileTime.count() / 1000.0);
    metrics.emplace_back(prefix + ".stages",
                         static_cast<double>(result.stagesUsed));
  }
  std::printf(
      "\nShape check: compile times are 1000x+ the per-update analysis times\n"
      "reported by bench_table2_analysis_times (paper: 22-106s vs 5-90ms).\n");
  flay::obs::writeBenchReport("table1_compile_times", metrics);
  return 0;
}
