// Fleet-controller throughput: how does aggregate update throughput scale
// with the device count and the drain concurrency, and what does the
// fleet-wide shared verdict cache buy over per-device caches?
//
// The workload models the regime real multi-device control planes live in:
// every recompile ends in an install RPC to the switch driver that blocks
// its caller for a few milliseconds (FaultPlan slow=...), so a serial
// controller spends most of its wall clock waiting on one device at a time.
// The fleet controller overlaps the installs across devices, and — because
// every device runs the same program and receives the same broadcast
// stream — the shared verdict cache lets the first device to specialize a
// component pay its solver probes once fleet-wide.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"
#include "support/stopwatch.h"

namespace {

namespace p4 = flay::p4;
namespace net = flay::net;
namespace obs = flay::obs;
namespace ctrl = flay::controller;
namespace fleet = flay::fleet;
namespace runtime = flay::runtime;

constexpr size_t kUpdates = 40;
constexpr uint64_t kSeed = 42;
constexpr int kReps = 3;
// A realistic install RPC to a switch driver is single-digit milliseconds.
constexpr const char* kSlowPlan = "slow=4000";

struct RunResult {
  double seconds = 0;
  double throughput = 0;  // aggregate applied updates per second (drain)
  double hitRate = 0;     // cache.hits / (hits + misses) over the drain
  uint64_t applied = 0;
};

RunResult runFleet(const p4::CheckedProgram& checked,
                   const std::vector<runtime::Update>& script, size_t devices,
                   size_t jobs, bool sharedCache) {
  // The reset precedes construction so the hit rate covers the cold phase
  // too: with the shared cache, the bring-up misses of the first device are
  // everyone else's hits; with per-device caches each device re-pays them.
  obs::Registry::global().reset();
  fleet::FleetOptions fopts;
  fopts.devices = devices;
  fopts.jobs = jobs;
  fopts.sharedVerdictCache = sharedCache;
  fopts.faultPlan = ctrl::FaultPlan::parse(kSlowPlan);
  fopts.deviceCompiler.searchIterations = 64;
  fleet::FleetController fc(checked, fopts);

  // Throughput is over the update stream only (bring-up is a per-device
  // constant, reported by fleet.device_init_us instead).
  flay::support::Stopwatch drainTimer;
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();

  RunResult r;
  r.seconds = drainTimer.elapsedSeconds();
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    r.applied += fc.status(i).applied;
  }
  r.throughput = r.seconds > 0 ? r.applied / r.seconds : 0;
  uint64_t hits = obs::Registry::global().counter("cache.hits").value();
  uint64_t misses = obs::Registry::global().counter("cache.misses").value();
  r.hitRate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  return r;
}

RunResult medianRun(const p4::CheckedProgram& checked,
                    const std::vector<runtime::Update>& script, size_t devices,
                    size_t jobs, bool sharedCache) {
  std::vector<RunResult> runs;
  for (int i = 0; i < kReps; ++i) {
    runs.push_back(runFleet(checked, script, devices, jobs, sharedCache));
  }
  std::sort(runs.begin(), runs.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.seconds < b.seconds;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked, kUpdates, kSeed);

  std::printf("fleet controller, %zu-update broadcast stream, %s per "
              "install (median of %d)\n\n",
              script.size(), kSlowPlan, kReps);

  // --- Aggregate throughput vs device count at jobs=8. --------------------
  std::vector<std::pair<std::string, double>> metrics;
  std::printf("device scaling (jobs=8, shared cache):\n");
  double base = 0, top = 0;
  for (size_t devices : {1, 2, 4, 8}) {
    RunResult r = medianRun(checked, script, devices, 8, true);
    if (devices == 1) base = r.throughput;
    if (devices == 8) top = r.throughput;
    std::printf("  devices=%zu: %8.1f updates/s (%.2f s, %llu applied)\n",
                devices, r.throughput, r.seconds,
                static_cast<unsigned long long>(r.applied));
    metrics.emplace_back("throughput_d" + std::to_string(devices) + "_j8",
                         r.throughput);
  }
  double scaling = base > 0 ? top / base : 0;
  std::printf("  1 -> 8 devices: %.2fx aggregate throughput\n\n", scaling);
  metrics.emplace_back("scaling_1_to_8_devices", scaling);

  // --- Throughput vs drain concurrency at 8 devices. ----------------------
  std::printf("drain concurrency (8 devices, shared cache):\n");
  double serial8 = 0, parallel8 = 0;
  for (size_t jobs : {1, 2, 4, 8}) {
    RunResult r = medianRun(checked, script, 8, jobs, true);
    if (jobs == 1) serial8 = r.throughput;
    if (jobs == 8) parallel8 = r.throughput;
    std::printf("  jobs=%zu:    %8.1f updates/s (%.2f s)\n", jobs,
                r.throughput, r.seconds);
    metrics.emplace_back("throughput_d8_j" + std::to_string(jobs),
                         r.throughput);
  }
  std::printf("  jobs 1 -> 8: %.2fx (slow installs overlap)\n\n",
              serial8 > 0 ? parallel8 / serial8 : 0);
  metrics.emplace_back("jobs_speedup_d8",
                       serial8 > 0 ? parallel8 / serial8 : 0);

  // --- Shared vs per-device verdict caches at 8 devices. ------------------
  RunResult shared = medianRun(checked, script, 8, 8, true);
  RunResult privat = medianRun(checked, script, 8, 8, false);
  std::printf("verdict cache (8 devices, jobs=8):\n");
  std::printf("  shared:     %5.1f %% hit rate, %8.1f updates/s\n",
              shared.hitRate * 100.0, shared.throughput);
  std::printf("  per-device: %5.1f %% hit rate, %8.1f updates/s\n",
              privat.hitRate * 100.0, privat.throughput);
  metrics.emplace_back("hit_rate_shared", shared.hitRate);
  metrics.emplace_back("hit_rate_per_device", privat.hitRate);
  metrics.emplace_back("throughput_shared", shared.throughput);
  metrics.emplace_back("throughput_per_device", privat.throughput);

  obs::writeBenchReport("fleet", metrics);
  return 0;
}
