// Fig. 1 + Fig. 2 (workload characterization): the paper's motivating
// observation is that control-plane inputs change at wildly different
// rates — policy every hours/days, routing/NAT every seconds and in
// bursts — and that a control-plane-triggered compiler must classify each
// update cheaply (Fig. 2's decision loop).
//
// We synthesize a one-hour control-plane trace against the middleblock
// switch and drive it through Flay, reporting per class how many updates
// arrived, how fast they were analyzed, and how many actually demanded
// recompilation.

#include <cstdio>
#include <map>

#include "flay/engine.h"
#include "net/trace.h"
#include "net/workloads.h"
#include "obs/bench_report.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace core = flay::flay;

int main() {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  core::FlayOptions options;
  options.analysis.analyzeParser = false;
  core::FlayService service(checked, options);

  net::TraceSpec spec;
  spec.durationSec = 3600;
  spec.seed = 99;
  spec.policyTable = "MbIngress.acl_ingress";      // punt/mirror policy
  spec.policyMeanIntervalSec = 900;                // ~4 changes/hour
  spec.routeTable = "MbIngress.ipv4_route";        // bursty BGP-ish
  spec.routeBurstMeanIntervalSec = 240;
  spec.routeBurstMin = 20;
  spec.routeBurstMax = 150;
  spec.natTable = "MbIngress.nexthop";             // steady churn
  spec.natMeanIntervalSec = 4.0;

  auto trace = net::generateControlPlaneTrace(service.config(), spec);
  std::printf("synthetic 1h control-plane trace: %zu events\n\n",
              trace.size());

  struct Stats {
    size_t updates = 0;
    size_t recompiles = 0;
    double totalMs = 0;
    double maxMs = 0;
  };
  std::map<net::UpdateClass, Stats> stats;

  for (const auto& event : trace) {
    auto verdict = service.applyUpdate(event.update);
    Stats& s = stats[event.cls];
    ++s.updates;
    s.recompiles += verdict.needsRecompilation ? 1 : 0;
    double ms = verdict.analysisTime.count() / 1000.0;
    s.totalMs += ms;
    s.maxMs = std::max(s.maxMs, ms);
  }

  std::printf("%-10s %10s %14s %12s %12s %14s\n", "Class", "Updates",
              "Rate", "Mean", "Max", "Recompiles");
  std::vector<std::pair<std::string, double>> metrics;
  for (const auto& [cls, s] : stats) {
    std::printf("%-10s %10zu %10.2f/min %10.3fms %10.3fms %8zu (%.1f%%)\n",
                net::updateClassName(cls), s.updates,
                s.updates / (spec.durationSec / 60.0),
                s.updates ? s.totalMs / s.updates : 0.0, s.maxMs,
                s.recompiles,
                s.updates ? 100.0 * s.recompiles / s.updates : 0.0);
    std::string prefix = net::updateClassName(cls);
    metrics.emplace_back(prefix + ".updates",
                         static_cast<double>(s.updates));
    metrics.emplace_back(prefix + ".mean_ms",
                         s.updates ? s.totalMs / s.updates : 0.0);
    metrics.emplace_back(prefix + ".max_ms", s.maxMs);
    metrics.emplace_back(prefix + ".recompiles",
                         static_cast<double>(s.recompiles));
  }

  std::printf(
      "\nShape check (Fig. 1/2): routing dominates the update rate yet almost\n"
      "never needs recompilation once the tables are in their general form;\n"
      "the rare policy-class changes are where recompiles concentrate.\n");
  flay::obs::writeBenchReport("fig1_update_timeline", metrics);
  return 0;
}
