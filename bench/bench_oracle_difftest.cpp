// Differential-oracle throughput: how much equivalence checking one
// nightly budget buys. Runs the oracle on middleblock and switch at a fixed
// seed and reports updates/packets checked per second plus the oracle.*
// counters (probe/respecialize/run histograms land in the registry snapshot
// merged into the flay-bench-stats-v1 report).

#include <chrono>
#include <cstdio>

#include "net/workloads.h"
#include "obs/bench_report.h"
#include "oracle/oracle.h"
#include "p4/typecheck.h"

int main() {
  namespace p4 = flay::p4;
  namespace net = flay::net;
  namespace oracle = flay::oracle;

  std::printf("differential oracle throughput\n\n");

  std::vector<std::pair<std::string, double>> metrics;
  double totalSeconds = 0;
  for (const char* name : {"middleblock", "switch"}) {
    p4::CheckedProgram checked =
        p4::loadProgramFromFile(net::programPath(name));
    oracle::OracleOptions options;
    options.updates = 120;
    options.packets = 32;
    options.seed = 1;
    options.shrink = false;

    auto t0 = std::chrono::steady_clock::now();
    oracle::OracleReport report =
        oracle::DifferentialOracle(checked, options).run();
    double seconds = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     1e6;
    totalSeconds += seconds;

    std::printf("%-12s %4zu updates, %6zu packets compared in %6.2f s "
                "(%6.0f pkt/s)  %s\n",
                name, report.updatesApplied, report.packetsCompared, seconds,
                report.packetsCompared / seconds,
                report.equivalent ? "equivalent" : "DIVERGED");
    metrics.emplace_back(std::string(name) + "_updates_applied",
                         static_cast<double>(report.updatesApplied));
    metrics.emplace_back(std::string(name) + "_packets_compared",
                         static_cast<double>(report.packetsCompared));
    metrics.emplace_back(std::string(name) + "_preserving_checks",
                         static_cast<double>(report.preservingChecks));
    metrics.emplace_back(std::string(name) + "_respecializations",
                         static_cast<double>(report.respecializations));
    metrics.emplace_back(std::string(name) + "_seconds", seconds);
    metrics.emplace_back(std::string(name) + "_equivalent",
                         report.equivalent ? 1.0 : 0.0);
  }
  metrics.emplace_back("total_seconds", totalSeconds);

  flay::obs::writeBenchReport("oracle_difftest", metrics);
  return 0;
}
