// Incremental IFC re-verdict cost: latency of re-verifying every
// source->sink flow after a single control-plane update, against the cost
// of rebuilding the IFC analysis from scratch.
//
// Shape: the warm path resolves each sink's tracked symbols (O(1) ExprRef
// compares thanks to hash-consing), rebuilds queries only for sinks whose
// specialized observation actually changed, and answers most probes from
// the verdict cache or warm SAT sessions — so per-update re-verdict time
// stays microseconds-flat while a from-scratch pass pays the full
// rename/encode/solve pipeline every time. This is the experiment behind
// running IFC as an attached analysis on the update hot path instead of a
// batch job.
//
// Usage: bench_ifc_incremental [updates]   (default: 200)
//
// Gate (regression guard for the nightly): per-program warm re-verdict p99
// must stay under kWarmP99CeilingUs, and the warm *median* must beat the
// cold-rebuild mean. The p99 tail is dominated by the updates that
// genuinely flip a query — those pay the same solve a rebuild would — so
// the incrementality claim lives in the common case: most updates resolve
// to symbol-compare + verdict reuse and must stay far under a rebuild.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "flay/engine.h"
#include "ifc/ifc.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"
#include "p4/typecheck.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace core = flay::flay;
namespace ifc = flay::ifc;
namespace obs = flay::obs;
namespace runtime = flay::runtime;

namespace {

constexpr double kWarmP99CeilingUs = 250000.0;  // 250 ms

uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::string policyPath(const std::string& program) {
  std::string probe = net::programPath("x");
  std::string dir =
      probe.substr(0, probe.size() - std::string("/x.p4l").size());
  return dir + "/ifc/" + program + "-strict.policy";
}

struct ProgramResult {
  obs::HistogramStats warm;
  double rebuildMeanUs = 0;
  uint64_t updatesApplied = 0;
  size_t flows = 0;
};

ProgramResult runProgram(const std::string& program, size_t updates) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(program));
  ifc::IfcPolicy policy = ifc::IfcPolicy::parseFile(policyPath(program));

  core::FlayService service(checked);
  ifc::IfcEngine engine(service, policy);
  engine.recheck();

  obs::Histogram warm;
  double rebuildTotalUs = 0;
  uint64_t rebuildRuns = 0;
  std::vector<runtime::Update> applied;
  ProgramResult r;
  r.flows = engine.lastReport().flows.size();

  for (const auto& u : net::fuzzUpdateSequence(checked, updates, 7)) {
    try {
      service.applyUpdate(u);
    } catch (const std::invalid_argument&) {
      continue;  // stale fuzzed update — nothing changed, nothing to time
    }
    applied.push_back(u);
    ++r.updatesApplied;
    auto t0 = std::chrono::steady_clock::now();
    engine.recheck();
    warm.record(microsSince(t0));
    // The batch baseline: a cold FlayService (fresh specialization, fresh
    // verdict cache) replaying the full trace, then verdicting from zero.
    // Sampled every 8th update to keep the bench short while averaging
    // over config states spread across the whole run.
    if (r.updatesApplied % 8 == 0) {
      auto t1 = std::chrono::steady_clock::now();
      core::FlayService cold(checked);
      for (const auto& v : applied) cold.applyUpdate(v);
      ifc::IfcEngine coldEngine(cold, policy);
      ifc::IfcReport scratch = coldEngine.recheck();
      rebuildTotalUs += static_cast<double>(microsSince(t1));
      ++rebuildRuns;
      if (scratch.render() != engine.lastReport().render()) {
        std::fprintf(stderr,
                     "bench_ifc_incremental: %s: incremental and cold "
                     "rebuild verdicts diverged\n",
                     program.c_str());
        std::exit(1);
      }
    }
  }

  r.warm.count = warm.count();
  r.warm.sum = warm.sum();
  r.warm.min = warm.min();
  r.warm.max = warm.max();
  r.warm.p50 = warm.quantile(0.50);
  r.warm.p95 = warm.quantile(0.95);
  r.warm.p99 = warm.quantile(0.99);
  r.rebuildMeanUs = rebuildRuns > 0 ? rebuildTotalUs / rebuildRuns : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t updates = 200;
  if (argc > 1) updates = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));

  std::printf("Warm IFC re-verdict latency per update vs from-scratch\n");
  std::printf("%12s %6s %8s %10s %10s %10s %12s\n", "Program", "Flows",
              "Updates", "p50(us)", "p95(us)", "p99(us)", "rebuild(us)");

  std::vector<std::pair<std::string, double>> metrics;
  bool gateFailed = false;
  for (const std::string program : {"middleblock", "switch", "scion"}) {
    ProgramResult r = runProgram(program, updates);
    std::printf("%12s %6zu %8llu %10llu %10llu %10llu %12.0f\n",
                program.c_str(), r.flows,
                static_cast<unsigned long long>(r.updatesApplied),
                static_cast<unsigned long long>(r.warm.p50),
                static_cast<unsigned long long>(r.warm.p95),
                static_cast<unsigned long long>(r.warm.p99),
                r.rebuildMeanUs);
    metrics.emplace_back("warm_reverdict_us.p50." + program,
                         static_cast<double>(r.warm.p50));
    metrics.emplace_back("warm_reverdict_us.p95." + program,
                         static_cast<double>(r.warm.p95));
    metrics.emplace_back("warm_reverdict_us.p99." + program,
                         static_cast<double>(r.warm.p99));
    metrics.emplace_back("rebuild_mean_us." + program, r.rebuildMeanUs);
    metrics.emplace_back("flows." + program, static_cast<double>(r.flows));

    const double p99 = static_cast<double>(r.warm.p99);
    if (p99 > kWarmP99CeilingUs) {
      std::fprintf(stderr,
                   "GATE: %s warm re-verdict p99 %.0fus exceeds ceiling "
                   "%.0fus\n",
                   program.c_str(), p99, kWarmP99CeilingUs);
      gateFailed = true;
    }
    const double p50 = static_cast<double>(r.warm.p50);
    if (r.rebuildMeanUs > 0 && p50 > r.rebuildMeanUs) {
      std::fprintf(stderr,
                   "GATE: %s warm re-verdict p50 %.0fus is slower than the "
                   "cold-rebuild mean %.0fus\n",
                   program.c_str(), p50, r.rebuildMeanUs);
      gateFailed = true;
    }
  }

  flay::obs::writeBenchReport("ifc_incremental", metrics);
  if (gateFailed) {
    std::printf("ifc incremental gate: FAILED\n");
    return 1;
  }
  std::printf(
      "\nShape check: warm re-verdicts stay flat and beat a cold rebuild; "
      "every sampled cold rebuild agreed byte-for-byte.\n");
  return 0;
}
