// Recovery cost of the fault-tolerant controller: how long a restart takes
// as a function of journal length and checkpoint interval.
//
// Shape: recovery from a bare journal is linear in committed updates (every
// group replays through the incremental analyzer); checkpoints bound the
// replayed tail, so recovery time flattens to roughly
// checkpoint-load + interval/2 updates of replay. This is the experiment
// behind the checkpointEvery default — the knob trades steady-state
// checkpoint writes against restart latency.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "p4/typecheck.h"

namespace {

namespace fs = std::filesystem;
namespace p4 = flay::p4;
namespace net = flay::net;
namespace ctrl = flay::controller;
namespace runtime = flay::runtime;

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

/// Runs `updates` committed updates through a journaling controller, then
/// measures a cold-start recovery from the state directory.
double recoveryMs(const p4::CheckedProgram& checked,
                  const std::vector<runtime::Update>& script, size_t updates,
                  size_t checkpointEvery, uint64_t* replayed) {
  fs::path dir = fs::temp_directory_path() /
                 ("flay-bench-recovery-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  ctrl::ControllerOptions opts;
  opts.stateDir = dir.string();
  opts.checkpointEvery = checkpointEvery;
  {
    ctrl::FaultTolerantController controller(checked, nullptr, opts);
    for (size_t i = 0; i < updates && i < script.size(); ++i) {
      try {
        controller.apply(script[i]);
      } catch (const std::invalid_argument&) {
        // Fuzzed updates can be stale against the evolved config; skipping
        // matches every other driver of fuzzUpdateSequence.
      }
    }
  }

  auto start = std::chrono::steady_clock::now();
  ctrl::FaultTolerantController recovered(checked, nullptr, opts);
  double ms = millisSince(start);
  *replayed = recovered.replayedUpdates();

  std::error_code ec;
  fs::remove_all(dir, ec);
  return ms;
}

}  // namespace

int main() {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  const size_t kMaxUpdates = 800;
  auto script = net::fuzzUpdateSequence(checked, kMaxUpdates, /*seed=*/21);

  std::printf("Recovery time vs journal length and checkpoint interval\n");
  std::printf("%10s %12s %14s %10s\n", "Updates", "Checkpoint", "Recovery",
              "Replayed");
  std::vector<std::pair<std::string, double>> metrics;

  // 0 = never checkpoint: pure journal replay, the linear baseline.
  for (size_t updates : {100u, 400u, 800u}) {
    for (size_t every : {0u, 32u, 128u}) {
      uint64_t replayed = 0;
      double ms = recoveryMs(checked, script, updates, every, &replayed);
      std::printf("%10zu %12s %12.2fms %10llu\n", updates,
                  every == 0 ? "none" : std::to_string(every).c_str(), ms,
                  static_cast<unsigned long long>(replayed));
      std::string suffix =
          std::to_string(updates) + ".ckpt" + std::to_string(every);
      metrics.emplace_back("recovery_ms." + suffix, ms);
      metrics.emplace_back("replayed." + suffix,
                           static_cast<double>(replayed));
    }
  }

  std::printf(
      "\nShape check: without checkpoints recovery grows with journal "
      "length; with them it is bounded by the checkpoint interval.\n");
  flay::obs::writeBenchReport("recovery", metrics);
  return 0;
}
