// Parallel semantics-check engine on the SCION burst workload: how much do
// (a) running the specializer's constantness probes across worker threads
// and (b) the canonical-digest verdict cache buy on a full specialize pass?
// Reports the serial-vs-parallel speedup, the cold-vs-warm-cache speedup,
// and the warm-pass cache hit rate, including after an update burst has
// invalidated the respecialized components' entries.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "flay/engine.h"
#include "flay/specializer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"

namespace {

double medianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main() {
  namespace p4 = flay::p4;
  namespace net = flay::net;
  namespace core = flay::flay;
  namespace obs = flay::obs;

  constexpr int kReps = 5;
  const size_t jobs =
      std::max<size_t>(2, std::thread::hardware_concurrency());

  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(4)) service.applyUpdate(u);
  for (const auto& u : net::scionV6Config(16)) service.applyUpdate(u);

  auto timedSpecialize = [&](size_t j, bool cache) {
    core::SpecializerOptions sopts;
    sopts.jobs = j;
    sopts.useVerdictCache = cache;
    auto t0 = std::chrono::steady_clock::now();
    core::SpecializationResult r = core::Specializer(service, sopts).specialize();
    double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                1000.0;
    return std::pair<double, core::SpecializationResult>(ms, std::move(r));
  };

  std::printf("parallel semantics-check engine, SCION workload (%zu jobs)\n\n",
              jobs);

  // --- Serial vs parallel, cache off: pure probe-concurrency speedup. -----
  std::vector<double> serial, parallel;
  size_t queries = 0;
  for (int i = 0; i < kReps; ++i) {
    auto [ms, r] = timedSpecialize(1, false);
    serial.push_back(ms);
    queries = r.stats.solverQueries;
  }
  for (int i = 0; i < kReps; ++i) {
    parallel.push_back(timedSpecialize(jobs, false).first);
  }
  double serialMs = medianMs(serial);
  double parallelMs = medianMs(parallel);
  double speedup = parallelMs > 0 ? serialMs / parallelMs : 0;
  std::printf("full specialize, %zu solver queries per pass:\n", queries);
  std::printf("  jobs=1,  cache off:  %8.2f ms (median of %d)\n", serialMs,
              kReps);
  std::printf("  jobs=%zu, cache off:  %8.2f ms  -> %.2fx speedup\n", jobs,
              parallelMs, speedup);

  // --- Cold vs warm cache, serial: pure cache speedup + hit rate. ---------
  service.checkEngine().clearCache();
  obs::Registry::global().reset();
  double coldMs = timedSpecialize(1, true).first;
  std::vector<double> warm;
  for (int i = 0; i < kReps; ++i) warm.push_back(timedSpecialize(1, true).first);
  double warmMs = medianMs(warm);
  uint64_t hits = obs::Registry::global().counter("cache.hits").value();
  uint64_t misses = obs::Registry::global().counter("cache.misses").value();
  double hitRate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  std::printf("\nverdict cache (jobs=1):\n");
  std::printf("  cold pass:           %8.2f ms\n", coldMs);
  std::printf("  warm pass:           %8.2f ms  -> %.2fx speedup\n", warmMs,
              warmMs > 0 ? coldMs / warmMs : 0);
  std::printf("  hit rate:            %8.1f %% (%llu hits / %llu lookups)\n",
              hitRate * 100.0, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(hits + misses));

  // --- Update burst: invalidation drops only respecialized components. ----
  auto burst = net::scionV4RouteBurst(200);
  service.applyBatch(burst);
  obs::Registry::global().reset();
  double postUpdateMs = timedSpecialize(1, true).first;
  hits = obs::Registry::global().counter("cache.hits").value();
  misses = obs::Registry::global().counter("cache.misses").value();
  double postUpdateHitRate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  std::printf("\nafter a %zu-route update burst:\n", burst.size());
  std::printf("  specialize:          %8.2f ms\n", postUpdateMs);
  std::printf("  hit rate:            %8.1f %% (unchanged components stay warm)\n",
              postUpdateHitRate * 100.0);

  // --- Combined: parallel + warm cache, the production configuration. -----
  std::vector<double> combined;
  for (int i = 0; i < kReps; ++i) {
    combined.push_back(timedSpecialize(jobs, true).first);
  }
  double combinedMs = medianMs(combined);
  std::printf("\n  jobs=%zu, warm cache: %8.2f ms  -> %.2fx vs serial cold\n",
              jobs, combinedMs, combinedMs > 0 ? serialMs / combinedMs : 0);

  flay::obs::writeBenchReport(
      "parallel_check",
      {{"jobs", static_cast<double>(jobs)},
       {"solver_queries", static_cast<double>(queries)},
       {"serial_ms", serialMs},
       {"parallel_ms", parallelMs},
       {"parallel_speedup", speedup},
       {"cold_cache_ms", coldMs},
       {"warm_cache_ms", warmMs},
       {"warm_speedup", warmMs > 0 ? coldMs / warmMs : 0},
       {"cache_hit_rate", hitRate},
       {"post_update_hit_rate", postUpdateHitRate},
       {"combined_ms", combinedMs}});
  return 0;
}
