// Streaming bulk-load experiment: sustained update rate and per-chunk
// verdict latency of FlayService::applyStream at 10k/100k/1M entries,
// plus the parity contract that makes the classifier pre-filter's bypass
// trustworthy — the bulk path must land digest-identical to a sequential
// applyUpdate replay of the same stream (rejections skipped) on every
// program, including the entries that bypassed analysis entirely.
//
// Usage: bench_bulk_load [count...]   (default: 10000 100000 1000000)
// Sequential-replay parity at each scale count is only checked up to
// kSeqParityCap entries: the per-update replay recomputes the touched
// table's O(n) structural digest every insert, which is the quadratic
// blowup the bulk path exists to avoid.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
namespace obs = flay::obs;

namespace {

constexpr size_t kSeqParityCap = 20000;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ParityResult {
  bool match = false;
  uint64_t bypassed = 0;
  uint64_t rejected = 0;
  double bulkSecs = 0;
  double seqSecs = 0;
};

/// Applies `base` then runs `stream` through both paths on twin services:
/// bulk (chunked, prefiltered) vs sequential applyUpdate with rejections
/// skipped. The state digests must agree bit-for-bit.
ParityResult checkParity(const p4::CheckedProgram& checked,
                         const std::vector<runtime::Update>& base,
                         const std::vector<runtime::Update>& stream,
                         size_t chunkSize) {
  ParityResult r;
  core::FlayService bulkSvc(checked);
  core::FlayService seqSvc(checked);
  for (const auto& u : base) {
    bulkSvc.applyUpdate(u);
    seqSvc.applyUpdate(u);
  }

  core::BulkLoadOptions opts;
  opts.chunkSize = chunkSize;
  auto t0 = std::chrono::steady_clock::now();
  core::BulkLoadReport rep = bulkSvc.bulkLoad(stream, opts);
  r.bulkSecs = secondsSince(t0);
  r.bypassed = rep.bypassed;
  r.rejected = rep.rejected;

  auto t1 = std::chrono::steady_clock::now();
  for (const auto& u : stream) {
    try {
      seqSvc.applyUpdate(u);
    } catch (const std::invalid_argument&) {
      // Same skip contract as the bulk path.
    }
  }
  r.seqSecs = secondsSince(t1);
  r.match = bulkSvc.stateDigest() == seqSvc.stateDigest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> counts;
  for (int i = 1; i < argc; ++i) {
    counts.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (counts.empty()) counts = {10000, 100000, 1000000};

  std::vector<std::pair<std::string, double>> metrics;
  bool ok = true;

  // --- Parity phase: three programs, three table shapes -------------------
  std::printf("bulk-vs-sequential parity (chunks of 128):\n");
  struct ParityCase {
    const char* program;
    std::vector<runtime::Update> base;
    std::vector<runtime::Update> stream;
  };
  std::vector<ParityCase> cases;
  {
    ParityCase scion;
    scion.program = "scion";
    scion.base = net::scionCommonConfig();
    for (const auto& u : net::scionV4Config(4)) scion.base.push_back(u);
    scion.stream = net::scionV4RouteBurst(1500);
    cases.push_back(std::move(scion));

    // dash: 5-exact-key flow table entries straight from the entry fuzzer.
    ParityCase dash;
    dash.program = "dash";
    p4::CheckedProgram checked =
        p4::loadProgramFromFile(net::programPath("dash"));
    runtime::DeviceConfig cfg(checked);
    net::EntryFuzzer fuzzer(7);
    for (auto& e :
         fuzzer.uniqueEntries(cfg.table("DashIngress.flow_table"), 400)) {
      dash.stream.push_back(
          runtime::Update::insert("DashIngress.flow_table", std::move(e)));
    }
    cases.push_back(std::move(dash));

    ParityCase mb;
    mb.program = "middleblock";
    mb.stream = net::middleblockAclEntries(400);
    cases.push_back(std::move(mb));
  }
  for (const auto& c : cases) {
    p4::CheckedProgram checked =
        p4::loadProgramFromFile(net::programPath(c.program));
    ParityResult r = checkParity(checked, c.base, c.stream, 128);
    std::printf("  %-12s %zu updates: %s (bypassed %llu, rejected %llu, "
                "bulk %.3fs vs seq %.3fs)\n",
                c.program, c.stream.size(),
                r.match ? "digest match" : "DIGEST MISMATCH",
                static_cast<unsigned long long>(r.bypassed),
                static_cast<unsigned long long>(r.rejected), r.bulkSecs,
                r.seqSecs);
    metrics.emplace_back(std::string("parity_") + c.program,
                         r.match ? 1.0 : 0.0);
    ok &= r.match;
  }

  // --- Scale phase: bulkroute streams -------------------------------------
  p4::CheckedProgram bulkroute =
      p4::loadProgramFromFile(net::programPath("bulkroute"));
  obs::Counter& probeRebuilds =
      obs::Registry::global().counter("flay.bulk_probe_rebuilds");
  std::printf("\nbulkroute streaming load (chunks of 4096):\n");
  for (size_t count : counts) {
    core::FlayService svc(bulkroute);
    core::BulkLoadOptions opts;
    opts.chunkSize = 4096;
    obs::Histogram verdictLatency;
    uint64_t rebuildsBefore = probeRebuilds.value();
    size_t next = 0;
    auto t0 = std::chrono::steady_clock::now();
    core::BulkLoadReport rep = svc.applyStream(
        [&]() -> std::optional<runtime::Update> {
          if (next >= count) return std::nullopt;
          return net::bulkRouteUpdate(next++);
        },
        opts,
        [&](const core::BulkChunkVerdict& chunk) {
          verdictLatency.record(chunk.verdictLatencyUs);
        });
    double secs = secondsSince(t0);
    double rate = secs > 0 ? rep.updates / secs : 0.0;
    unsigned long long p99 =
        static_cast<unsigned long long>(verdictLatency.quantile(0.99));
    std::printf("  %8zu entries: %9.0f updates/s, verdict p50=%lluus "
                "p99=%lluus, bypassed %llu (%.1f%%), analyzed %llu, "
                "rejected %llu\n",
                count, rate,
                static_cast<unsigned long long>(verdictLatency.quantile(0.5)),
                p99, static_cast<unsigned long long>(rep.bypassed),
                rep.updates ? 100.0 * rep.bypassed / rep.updates : 0.0,
                static_cast<unsigned long long>(rep.analyzed),
                static_cast<unsigned long long>(rep.rejected));

    // Regression gate: the point-probe is folded incrementally (every 64
    // below-threshold inserts), never rebuilt per insert — a rebuild count
    // approaching the update count is the O(N) classifier-build bug back.
    uint64_t rebuilds = probeRebuilds.value() - rebuildsBefore;
    uint64_t rebuildCap = count / 64 + 16;
    if (rebuilds > rebuildCap) {
      std::fprintf(stderr,
                   "FAIL: %llu probe rebuilds for %zu updates (cap %llu) — "
                   "probe is rebuilding per insert\n",
                   static_cast<unsigned long long>(rebuilds), count,
                   static_cast<unsigned long long>(rebuildCap));
      ok = false;
    }

    std::string suffix = std::to_string(count);
    metrics.emplace_back("probe_rebuilds_" + suffix,
                         static_cast<double>(rebuilds));
    metrics.emplace_back("updates_per_sec_" + suffix, rate);
    metrics.emplace_back("p99_verdict_us_" + suffix,
                         static_cast<double>(p99));
    metrics.emplace_back("bypassed_" + suffix,
                         static_cast<double>(rep.bypassed));
    metrics.emplace_back("chunks_" + suffix, static_cast<double>(rep.chunks));

    if (count <= kSeqParityCap) {
      std::vector<runtime::Update> stream;
      stream.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        stream.push_back(net::bulkRouteUpdate(i));
      }
      ParityResult r = checkParity(bulkroute, {}, stream, opts.chunkSize);
      std::printf("           sequential-replay parity: %s "
                  "(bulk %.3fs vs seq %.3fs)\n",
                  r.match ? "digest match" : "DIGEST MISMATCH", r.bulkSecs,
                  r.seqSecs);
      metrics.emplace_back("parity_" + suffix, r.match ? 1.0 : 0.0);
      ok &= r.match;
    }
  }

  obs::writeBenchReport("bulk_load", metrics);
  if (!ok) {
    std::fprintf(stderr, "FAIL: bulk path diverged from sequential replay\n");
    return 1;
  }
  return 0;
}
