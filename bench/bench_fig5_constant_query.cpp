// Fig. 5: Flay's representation of egress_port for the port_table program.
//
// The paper shows the symbolic value of egress_port at the final line:
//   Block A (general):    |cfg| && |action|=="set" ? |port_var| : 0
//   Block B (empty table): 0                       -> dst := 0xAAAAAAAAAAAA
//   Block C (one entry):  @h.eth.dst@==0xDEADBEEFF00D ? 0x1 : 0x0
//
// This bench prints the actual expressions Flay computes at each
// configuration state, in the paper's |control-plane| / @data-plane@
// notation, plus the query times.

#include <cstdio>

#include "expr/analysis.h"
#include "expr/printer.h"
#include "flay/engine.h"
#include "obs/bench_report.h"

namespace {

namespace p4 = flay::p4;
namespace runtime = flay::runtime;
namespace core = flay::flay;
using flay::BitVec;
namespace expr = flay::expr;

const char* kFig5Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }
parser P { state start { extract(hdr.eth); transition accept; } }
control Ingress {
  action set(bit<9> port_var) { sm.egress_spec = port_var; }
  table port_table {
    key = { hdr.eth.dst : exact; }
    actions = { set; noop; }
    default_action = noop;
  }
  apply {
    sm.egress_spec = 0;
    port_table.apply();
    hdr.eth.dst = sm.egress_spec == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
  }
}
deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";


void show(const char* label, core::FlayService& service,
          expr::ExprRef egress, expr::ExprRef dst) {
  expr::PrintOptions opts;
  opts.maxDepth = 12;
  std::printf("%s\n", label);
  std::printf("  egress_port = %s\n",
              expr::toString(service.arena(), egress, opts).c_str());
  std::printf("  h.eth.dst   = %s\n",
              expr::toString(service.arena(), dst, opts).c_str());
  std::printf("  (egress dag size: %zu nodes)\n\n",
              expr::dagSize(service.arena(), egress));
}

}  // namespace

int main() {
  p4::CheckedProgram checked = p4::loadProgramFromString(kFig5Program);
  core::FlayService service(checked);

  // Locate the two interesting annotations: the final value of
  // sm.egress_spec and of hdr.eth.dst.
  uint32_t egressId = UINT32_MAX, dstId = UINT32_MAX;
  for (const auto& p : service.analysis().annotations.points()) {
    if (p.kind == core::PointKind::kFinalValue &&
        p.label == "final:sm.egress_spec") {
      egressId = p.id;
    }
    if (p.kind == core::PointKind::kAssignedValue &&
        p.label.find("assign hdr.eth.dst") != std::string::npos) {
      dstId = p.id;
    }
  }

  std::printf("Fig. 5: symbolic value of egress_port across config states\n\n");
  show("Block A (general data-plane expression, before specialization):",
       service, service.analysis().annotations.point(egressId).expr,
       service.analysis().annotations.point(dstId).expr);

  show("Block B (initial configuration: empty table):", service,
       service.specialized(egressId), service.specialized(dstId));

  runtime::TableEntry e;
  e.matches.push_back(
      runtime::FieldMatch::exact(BitVec::parse(48, "0xDEADBEEFF00D")));
  e.actionName = "set";
  e.actionArgs.push_back(BitVec(9, 1));
  auto verdict = service.applyUpdate(
      runtime::Update::insert("Ingress.port_table", e));

  char label[128];
  std::snprintf(label, sizeof label,
                "Block C (insert 0xDEADBEEFF00D -> set(0x01); "
                "analysis %.3f ms, recompile=%s):",
                verdict.analysisTime.count() / 1000.0,
                verdict.needsRecompilation ? "yes" : "no");
  show(label, service, service.specialized(egressId),
       service.specialized(dstId));

  std::printf(
      "Shape check: Block B folds to constants; Block C branches on the\n"
      "packet's dst address exactly as in the paper's figure.\n");

  flay::obs::writeBenchReport(
      "fig5_constant_query",
      {{"insert_analysis_ms", verdict.analysisTime.count() / 1000.0},
       {"insert_recompile", verdict.needsRecompilation ? 1.0 : 0.0}});
  return 0;
}
