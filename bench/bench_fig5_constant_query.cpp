// Fig. 5: Flay's representation of egress_port for the port_table program,
// plus the constant-query latency exhibit for the incremental SAT path.
//
// Part 1 (the paper figure): the symbolic value of egress_port at the final
// line across configuration states:
//   Block A (general):    |cfg| && |action|=="set" ? |port_var| : 0
//   Block B (empty table): 0                       -> dst := 0xAAAAAAAAAAAA
//   Block C (one entry):  @h.eth.dst@==0xDEADBEEFF00D ? 0x1 : 0x0
//
// Part 2 (the verdict hot path): repeated constantness queries over the
// program points of scion and switch, under (a) a fresh SAT solver per probe
// and (b) warm per-worker incremental sessions — measured in the same run,
// with encode and solve time reported separately. The incremental path is
// gated: steady-state p99 must stay under 100 us per query, else the bench
// exits nonzero. Methodology notes live in EXPERIMENTS.md.

#include <cstdio>

#include "expr/analysis.h"
#include "expr/printer.h"
#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"

namespace {

namespace p4 = flay::p4;
namespace runtime = flay::runtime;
namespace core = flay::flay;
namespace net = flay::net;
namespace obs = flay::obs;
using flay::BitVec;
namespace expr = flay::expr;

const char* kFig5Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }
parser P { state start { extract(hdr.eth); transition accept; } }
control Ingress {
  action set(bit<9> port_var) { sm.egress_spec = port_var; }
  table port_table {
    key = { hdr.eth.dst : exact; }
    actions = { set; noop; }
    default_action = noop;
  }
  apply {
    sm.egress_spec = 0;
    port_table.apply();
    hdr.eth.dst = sm.egress_spec == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
  }
}
deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";


void show(const char* label, core::FlayService& service,
          expr::ExprRef egress, expr::ExprRef dst) {
  expr::PrintOptions opts;
  opts.maxDepth = 12;
  std::printf("%s\n", label);
  std::printf("  egress_port = %s\n",
              expr::toString(service.arena(), egress, opts).c_str());
  std::printf("  h.eth.dst   = %s\n",
              expr::toString(service.arena(), dst, opts).c_str());
  std::printf("  (egress dag size: %zu nodes)\n\n",
              expr::dagSize(service.arena(), egress));
}

struct PhaseStats {
  uint64_t queries = 0;
  uint64_t checkP50 = 0, checkP99 = 0;
  uint64_t encodeP50 = 0, encodeP99 = 0;
  uint64_t solveP50 = 0, solveP99 = 0;
};

/// Runs `rounds` full prefetch passes over every program point with the
/// chosen probe mode and returns the per-query latency quantiles. The cache
/// is off so every round re-asks every query — exactly the repeated
/// constant-query traffic an update burst produces. One uncounted warm-up
/// round precedes measurement, so the incremental numbers are steady-state
/// (the one-time encode of the shared program structure is what the
/// fresh-solver baseline pays per query, not a recurring cost of the warm
/// path).
PhaseStats measureConstantQueries(core::FlayService& service, bool incremental,
                                  int rounds) {
  core::CheckEngineOptions eopts;
  eopts.jobs = 1;
  eopts.useVerdictCache = false;
  eopts.incrementalSat = incremental;
  service.checkEngine().configure(eopts);

  std::vector<core::CheckQuery> queries;
  for (const auto& p : service.analysis().annotations.points()) {
    queries.push_back({p.specialized, p.component});
  }
  service.checkEngine().prefetch(queries);  // warm-up, uncounted
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  for (int r = 0; r < rounds; ++r) service.checkEngine().prefetch(queries);

  PhaseStats s;
  obs::Histogram& check = reg.histogram("smt.check_us");
  obs::Histogram& encode = reg.histogram("smt.encode_us");
  obs::Histogram& solve = reg.histogram("smt.solve_us");
  s.queries = check.count();
  s.checkP50 = check.quantile(0.5);
  s.checkP99 = check.quantile(0.99);
  s.encodeP50 = encode.quantile(0.5);
  s.encodeP99 = encode.quantile(0.99);
  s.solveP50 = solve.quantile(0.5);
  s.solveP99 = solve.quantile(0.99);
  return s;
}

void printPhase(const char* label, const PhaseStats& s) {
  std::printf("  %-22s %5llu queries | check p50 %4llu p99 %4llu us | "
              "encode p50 %4llu p99 %4llu us | solve p50 %4llu p99 %4llu us\n",
              label, static_cast<unsigned long long>(s.queries),
              static_cast<unsigned long long>(s.checkP50),
              static_cast<unsigned long long>(s.checkP99),
              static_cast<unsigned long long>(s.encodeP50),
              static_cast<unsigned long long>(s.encodeP99),
              static_cast<unsigned long long>(s.solveP50),
              static_cast<unsigned long long>(s.solveP99));
}

}  // namespace

int main() {
  p4::CheckedProgram checked = p4::loadProgramFromString(kFig5Program);
  core::FlayService service(checked);

  // Locate the two interesting annotations: the final value of
  // sm.egress_spec and of hdr.eth.dst.
  uint32_t egressId = UINT32_MAX, dstId = UINT32_MAX;
  for (const auto& p : service.analysis().annotations.points()) {
    if (p.kind == core::PointKind::kFinalValue &&
        p.label == "final:sm.egress_spec") {
      egressId = p.id;
    }
    if (p.kind == core::PointKind::kAssignedValue &&
        p.label.find("assign hdr.eth.dst") != std::string::npos) {
      dstId = p.id;
    }
  }

  std::printf("Fig. 5: symbolic value of egress_port across config states\n\n");
  show("Block A (general data-plane expression, before specialization):",
       service, service.analysis().annotations.point(egressId).expr,
       service.analysis().annotations.point(dstId).expr);

  show("Block B (initial configuration: empty table):", service,
       service.specialized(egressId), service.specialized(dstId));

  runtime::TableEntry e;
  e.matches.push_back(
      runtime::FieldMatch::exact(BitVec::parse(48, "0xDEADBEEFF00D")));
  e.actionName = "set";
  e.actionArgs.push_back(BitVec(9, 1));
  auto verdict = service.applyUpdate(
      runtime::Update::insert("Ingress.port_table", e));

  char label[128];
  std::snprintf(label, sizeof label,
                "Block C (insert 0xDEADBEEFF00D -> set(0x01); "
                "analysis %.3f ms, recompile=%s):",
                verdict.analysisTime.count() / 1000.0,
                verdict.needsRecompilation ? "yes" : "no");
  show(label, service, service.specialized(egressId),
       service.specialized(dstId));

  std::printf(
      "Shape check: Block B folds to constants; Block C branches on the\n"
      "packet's dst address exactly as in the paper's figure.\n\n");

  // -------------------------------------------------------------------------
  // Constant-query latency: fresh solver per probe vs warm incremental
  // sessions, same run, on the two largest bundled programs.
  constexpr int kRounds = 5;
  constexpr uint64_t kGateP99Us = 100;
  bool gatePassed = true;
  std::vector<std::pair<std::string, double>> metrics = {
      {"insert_analysis_ms", verdict.analysisTime.count() / 1000.0},
      {"insert_recompile", verdict.needsRecompilation ? 1.0 : 0.0}};

  std::printf("Constant-query hot path (%d rounds per phase, cache off):\n",
              kRounds);
  for (const char* prog : {"scion", "switch"}) {
    p4::CheckedProgram program =
        p4::loadProgramFromFile(net::programPath(prog));
    core::FlayService svc(program);
    for (const auto& u : net::fuzzUpdateSequence(program, 40, 7)) {
      svc.applyUpdate(u);
    }
    std::printf("%s:\n", prog);
    PhaseStats fresh = measureConstantQueries(svc, /*incremental=*/false,
                                              kRounds);
    printPhase("fresh solver/probe", fresh);
    PhaseStats warm = measureConstantQueries(svc, /*incremental=*/true,
                                             kRounds);
    printPhase("incremental session", warm);
    bool ok = warm.queries > 0 && warm.checkP99 < kGateP99Us;
    std::printf("  p99 gate (<%llu us on the incremental path): %s\n",
                static_cast<unsigned long long>(kGateP99Us),
                ok ? "PASS" : "FAIL");
    gatePassed &= ok;
    std::string prefix(prog);
    metrics.emplace_back(prefix + "_fresh_check_p50_us",
                         static_cast<double>(fresh.checkP50));
    metrics.emplace_back(prefix + "_fresh_check_p99_us",
                         static_cast<double>(fresh.checkP99));
    metrics.emplace_back(prefix + "_fresh_encode_p99_us",
                         static_cast<double>(fresh.encodeP99));
    metrics.emplace_back(prefix + "_fresh_solve_p99_us",
                         static_cast<double>(fresh.solveP99));
    metrics.emplace_back(prefix + "_incremental_check_p50_us",
                         static_cast<double>(warm.checkP50));
    metrics.emplace_back(prefix + "_incremental_check_p99_us",
                         static_cast<double>(warm.checkP99));
    metrics.emplace_back(prefix + "_incremental_encode_p99_us",
                         static_cast<double>(warm.encodeP99));
    metrics.emplace_back(prefix + "_incremental_solve_p99_us",
                         static_cast<double>(warm.solveP99));
    metrics.emplace_back(prefix + "_queries_per_round",
                         static_cast<double>(warm.queries) / kRounds);
  }
  metrics.emplace_back("p99_gate_us", static_cast<double>(kGateP99Us));
  metrics.emplace_back("p99_gate_passed", gatePassed ? 1.0 : 0.0);

  flay::obs::writeBenchReport("fig5_constant_query", metrics);
  if (!gatePassed) {
    std::printf("\nFAIL: incremental constant-query p99 exceeded the gate\n");
    return 1;
  }
  return 0;
}
