// Fig. 3: lifecycle of one table under control-plane updates (1)-(5).
//
// For the eth_table program, the paper shows how each update changes the
// required data-path implementation:
//   (1) empty table            -> impl A: table removed entirely
//   (2) insert [0x1 &&& 0x0]   -> impl B: action inlined, no lookup
//   (3) replace w/ full mask   -> impl C: exact match, TCAM freed, drop gone
//   (4) insert partial mask    -> impl D: ternary again (drop still gone)
//   (5) insert eclipsed entry  -> no recompilation needed
//
// This bench replays the exact update script and prints, per step, Flay's
// verdict and the specialized implementation's shape + pipeline resources.

#include <cstdio>

#include "flay/specializer.h"
#include "obs/bench_report.h"
#include "tofino/compiler.h"

namespace {

namespace p4 = flay::p4;
namespace runtime = flay::runtime;
namespace tofino = flay::tofino;
namespace core = flay::flay;
using flay::BitVec;

const char* kFig3Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }
parser P { state start { extract(hdr.eth); transition accept; } }
control Ingress {
  action set(bit<16> type) { hdr.eth.type = type; }
  action drop() { mark_to_drop(); }
  table eth_table {
    key = { hdr.eth.dst : ternary; }
    actions = { set; drop; noop; }
    default_action = noop;
  }
  apply { eth_table.apply(); }
}
deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";

runtime::TableEntry ternaryEntry(uint64_t key, uint64_t mask, uint64_t type,
                                 int32_t priority) {
  runtime::TableEntry e;
  e.matches.push_back(
      runtime::FieldMatch::ternary(BitVec(48, key), BitVec(48, mask)));
  e.actionName = "set";
  e.actionArgs.push_back(BitVec(16, type));
  e.priority = priority;
  return e;
}

void report(const char* step, core::FlayService& service,
            const core::UpdateVerdict* verdict) {
  auto result = core::Specializer(service).specialize();
  p4::CheckedProgram specialized = core::recheck(std::move(result.program));

  tofino::CompilerOptions copts;
  copts.searchIterations = 50;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);
  tofino::CompileResult compiled = compiler.compile(specialized);

  const p4::ControlDecl& control = specialized.program.controls[0];
  std::string shape;
  if (control.tables.empty()) {
    shape = result.stats.inlinedTables > 0 ? "action inlined (impl B)"
                                           : "table removed (impl A)";
    if (result.stats.removedTables == 0 && result.stats.inlinedTables == 0) {
      shape = "no table declared";
    }
  } else {
    const p4::TableDecl& t = control.tables[0];
    shape = t.keys[0].matchKind == p4::MatchKind::kExact
                ? "exact match table (impl C)"
                : "ternary match table (impl D)";
    shape += ", actions={";
    for (size_t i = 0; i < t.actionNames.size(); ++i) {
      if (i > 0) shape += ",";
      shape += t.actionNames[i];
    }
    shape += "}";
  }

  std::printf("%-28s | recompile=%-3s | tcam=%2u sram=%2u alu=%2u | %s\n",
              step,
              verdict == nullptr ? "-"
                                 : (verdict->needsRecompilation ? "yes" : "NO"),
              compiled.tcamBlocksUsed, compiled.sramBlocksUsed,
              compiled.aluOpsUsed, shape.c_str());
}

}  // namespace

int main() {
  p4::CheckedProgram checked = p4::loadProgramFromString(kFig3Program);
  core::FlayService service(checked);
  const std::string table = "Ingress.eth_table";
  uint64_t fullMask = 0xFFFFFFFFFFFFull;

  std::printf("Fig. 3: eth_table lifecycle under updates (1)-(5)\n");
  report("(1) initial: empty table", service, nullptr);

  auto v2 = service.applyUpdate(
      runtime::Update::insert(table, ternaryEntry(0x1, 0x0, 0x800, 1)));
  report("(2) insert [0x1 &&& 0x0]", service, &v2);

  uint64_t entry1Id = service.config().table(table).entries()[0].id;
  service.applyUpdate(runtime::Update::remove(table, entry1Id));
  auto v3 = service.applyUpdate(
      runtime::Update::insert(table, ternaryEntry(0x2, fullMask, 0x900, 10)));
  report("(3) replace: full mask", service, &v3);

  auto v4 = service.applyUpdate(
      runtime::Update::insert(table, ternaryEntry(0x5, 0x8, 0x700, 9)));
  report("(4) insert [0x5 &&& 0x8]", service, &v4);

  // Entry (5): eclipsed by entry (4)'s region, adapted so the coverage is
  // exact (see DESIGN.md): it can never win a lookup.
  auto v5 = service.applyUpdate(
      runtime::Update::insert(table, ternaryEntry(0x6, 0xE, 0x200, 1)));
  report("(5) insert eclipsed entry", service, &v5);

  std::printf(
      "\nShape check: (1)->(4) need recompilation with shrinking/growing\n"
      "resources; (5) is forwarded without recompilation.\n");

  flay::obs::writeBenchReport(
      "fig3_table_lifecycle",
      {{"step2_recompile", v2.needsRecompilation ? 1.0 : 0.0},
       {"step3_recompile", v3.needsRecompilation ? 1.0 : 0.0},
       {"step4_recompile", v4.needsRecompilation ? 1.0 : 0.0},
       {"step5_recompile", v5.needsRecompilation ? 1.0 : 0.0}});
  return 0;
}
