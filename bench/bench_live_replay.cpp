// Live-traffic replay under churn: the packet-level view of incremental
// specialization. Forwarding threads replay realistic traffic mixes through
// sim::Interpreter against versioned program snapshots while the control
// plane concurrently broadcasts fuzzed churn through a FleetController under
// fault injection. The exhibit answers the question the update-throughput
// benches cannot: what do packets experience while the control plane churns,
// degrades, and recovers?
//
// Hard gates (exit 1): any post-hoc oracle misroute (a served packet whose
// specialized verdict differs from the original program under the
// device-visible config), any forwarding error, any scenario that fails to
// re-converge, and any stale packet after convergence (unbounded staleness).
// SLO numbers — staleness in updates and microseconds, verdict-to-install
// lag — are measurements of the real interleaving, reported per window.
//
// Modes:
//   bench_live_replay           three deep scenarios, >= 1M packets total,
//                               including a sustained outage + recovery
//   bench_live_replay matrix    the nightly churn matrix on top: traffic
//                               mixes x fault plans x 4 programs, shallow
//   bench_live_replay quick     CI smoke: the deep scenarios at ~1% depth
//   bench_live_replay sockets   the deep scenarios over the socket transport
//                               (per-device wire-protocol agents), reported
//                               as BENCH_wire_fleet.json — same hard gates,
//                               so the wire path is held to identical
//                               packet-level SLOs as the in-process path

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/mix.h"
#include "net/workloads.h"
#include "obs/bench_report.h"
#include "obs/obs.h"
#include "replay/replay.h"

namespace {

namespace p4 = flay::p4;
namespace net = flay::net;
namespace obs = flay::obs;
namespace ctrl = flay::controller;
namespace replay = flay::replay;

struct Scenario {
  std::string name;
  std::string program;
  net::TrafficMix mix = net::TrafficMix::kHeavyHitter;
  std::string faultPlan;  // "" = none
  size_t devices = 2;
  size_t packets = 100000;
  size_t updates = 100;
  double churnRate = 0;
};

bool useSockets = false;

replay::ReplayOptions optionsFor(const Scenario& s, size_t scale) {
  replay::ReplayOptions ropts;
  ropts.devices = s.devices;
  ropts.packets = std::max<size_t>(s.packets / scale, 2000);
  ropts.updates = s.updates;
  ropts.churnRate = s.churnRate;
  ropts.mix = s.mix;
  ropts.jobs = 2;
  ropts.seed = 42;
  if (!s.faultPlan.empty()) ropts.faultPlan = ctrl::FaultPlan::parse(s.faultPlan);
  // Recovery must outlast the builtin outage (100 failed installs): keep the
  // re-admission backoff tight and the post-churn budget generous so a
  // recovered device is demonstrably re-converged, not timed out.
  ropts.recovery.backoffBaseMicros = 200;
  ropts.recovery.backoffMaxMicros = 5000;
  ropts.maxRecoveryRounds = 20000;
  ropts.controller.specializer.jobs = 1;
  ropts.deviceCompiler.searchIterations = 64;
  if (useSockets) ropts.transport = flay::fleet::Transport::kSocket;
  return ropts;
}

/// Runs one scenario, prints its block, folds its metrics into `metrics`
/// under "<name>." and its gate failures into `failures`.
replay::ReplayReport runScenario(
    const Scenario& s, size_t scale,
    std::vector<std::pair<std::string, double>>& metrics,
    std::vector<std::string>& failures) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(s.program));
  replay::LiveReplayHarness harness(checked, optionsFor(s, scale));
  replay::ReplayReport report = harness.run();

  std::printf("--- %s (%s, mix=%s, plan=%s)\n%s\n", s.name.c_str(),
              s.program.c_str(), net::mixName(s.mix),
              s.faultPlan.empty() ? "none" : s.faultPlan.c_str(),
              replay::describeReport(report).c_str());
  for (const auto& [key, value] : replay::reportMetrics(report)) {
    metrics.emplace_back(s.name + "." + key, value);
  }
  for (const std::string& g : report.gateFailures) {
    failures.push_back(s.name + ": " + g);
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool matrix = false;
  size_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "matrix") == 0) {
      matrix = true;
    } else if (std::strcmp(argv[i], "quick") == 0) {
      scale = 100;
    } else if (std::strcmp(argv[i], "sockets") == 0) {
      useSockets = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_live_replay [matrix] [quick] [sockets]\n");
      return 2;
    }
  }

  // The three deep scenarios. Packet floors sum past 1M at scale=1, and the
  // outage scenario drives a full degrade -> pinned-forwarding -> recover ->
  // re-converge arc while packets keep flowing.
  std::vector<Scenario> deep = {
      {"steady_churn", "scion", net::TrafficMix::kHeavyHitter, "", 4, 500000,
       160, 0},
      {"outage_recovery", "scion", net::TrafficMix::kTunnel, "outage=2+100",
       2, 300000, 120, 0},
      {"flaky_install", "dash", net::TrafficMix::kPortScan,
       "flaky=0.3,seed=7", 2, 300000, 120, 0},
  };

  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::string> failures;
  uint64_t totalPackets = 0;
  for (const Scenario& s : deep) {
    totalPackets += runScenario(s, scale, metrics, failures).totalPackets;
  }

  if (matrix) {
    // Nightly churn matrix: every mix x a fault-plan spread x the four
    // measurement-literature programs, shallow per cell. Cell depth is a
    // deliberate bound (the deep scenarios above carry the volume); the cell
    // count itself is exhaustive over the cross product.
    std::vector<std::string> plans = {"", "flaky=0.3,seed=7", "outage=2+40"};
    std::vector<std::string> programs = {"scion", "dash", "middleblock",
                                         "beaucoup"};
    size_t cells = 0;
    for (const std::string& program : programs) {
      for (net::TrafficMix mix : net::allMixes()) {
        for (const std::string& plan : plans) {
          Scenario cell;
          cell.name = "matrix." + program + "." + net::mixName(mix) + "." +
                      (plan.empty() ? "none"
                                    : plan.substr(0, plan.find_first_of("=,")));
          cell.program = program;
          cell.mix = mix;
          cell.faultPlan = plan;
          cell.devices = 2;
          cell.packets = 20000;
          cell.updates = 48;
          totalPackets += runScenario(cell, scale, metrics, failures).totalPackets;
          ++cells;
        }
      }
    }
    metrics.emplace_back("matrix.cells", static_cast<double>(cells));
  }

  metrics.emplace_back("total_packets", static_cast<double>(totalPackets));
  metrics.emplace_back("gate_failures", static_cast<double>(failures.size()));
  // The socket-transport soak reports under its own name so nightly trend
  // lines for the wire path never mix with the in-process baseline.
  obs::writeBenchReport(useSockets ? "wire_fleet" : "live_replay", metrics);

  if (!failures.empty()) {
    std::fprintf(stderr, "\nbench_live_replay: FAILED — %zu gate violation(s)\n",
                 failures.size());
    for (const std::string& f : failures) {
      std::fprintf(stderr, "  %s\n", f.c_str());
    }
    return 1;
  }
  std::printf("\nbench_live_replay: all gates passed (%llu packets)\n",
              static_cast<unsigned long long>(totalPackets));
  return 0;
}
