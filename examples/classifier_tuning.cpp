// Config-driven classifier specialization (§3): as the installed rule set's
// shape changes, re-run the chooser and migrate to the cheapest structure
// that still represents the rules — the data-structure analogue of Flay's
// table specializations.
//
// Build & run:  ./build/examples/classifier_tuning

#include <cstdio>
#include <random>

#include "classifier/classifier.h"

using namespace flay::classifier;
using flay::BitVec;

namespace {

void report(const char* phase, const std::vector<Rule>& rules) {
  auto tcam = makeTcam(rules, 32);
  auto chosen = chooseClassifier(rules, 32);
  RuleSetProfile p = profileRules(rules);
  std::printf(
      "%-28s rules=%4zu masks=%2zu  -> %-10s cost %8llu (tcam %8llu, "
      "%+.0f%%)\n",
      phase, p.rules, p.distinctMasks, chosen->name().c_str(),
      static_cast<unsigned long long>(chosen->costUnits()),
      static_cast<unsigned long long>(tcam->costUnits()),
      100.0 * (static_cast<double>(chosen->costUnits()) / tcam->costUnits() -
               1.0));
}

}  // namespace

int main() {
  std::mt19937_64 rng(7);
  std::printf("classifier specialization as the config evolves\n\n");

  // Phase 1: operator installs exact-match host routes only.
  std::vector<Rule> rules;
  for (int i = 0; i < 500; ++i) {
    rules.push_back({BitVec(32, rng()), BitVec::allOnes(32), 0,
                     static_cast<uint32_t>(i)});
  }
  report("phase 1: host routes", rules);

  // Phase 2: aggregation — prefixes appear (still prefix-shaped).
  for (int i = 0; i < 200; ++i) {
    uint32_t plen = 8 + static_cast<uint32_t>(rng() % 17);
    rules.push_back({BitVec(32, rng()), BitVec::allOnes(32).shl(32 - plen),
                     static_cast<int32_t>(plen), 1000u + i});
  }
  report("phase 2: + prefixes", rules);

  // Phase 3: a policy with a handful of port-style masks.
  rules.clear();
  static const uint64_t kMasks[3] = {0xFFFF0000, 0x0000FFFF, 0xFF0000FF};
  for (int i = 0; i < 600; ++i) {
    rules.push_back({BitVec(32, rng()), BitVec(32, kMasks[rng() % 3]),
                     i, static_cast<uint32_t>(i)});
  }
  report("phase 3: 3-mask policy", rules);

  // Phase 4: arbitrary masks — only a TCAM will do.
  for (int i = 0; i < 100; ++i) {
    rules.push_back({BitVec(32, rng()), BitVec(32, rng() | 1),
                     10000 + i, static_cast<uint32_t>(i)});
  }
  report("phase 4: + arbitrary masks", rules);

  // Functional sanity: the chosen structure agrees with the TCAM reference.
  auto tcam = makeTcam(rules, 32);
  auto chosen = chooseClassifier(rules, 32);
  int mismatches = 0;
  for (int i = 0; i < 2000; ++i) {
    BitVec key(32, rng());
    if (tcam->classify(key) != chosen->classify(key)) ++mismatches;
  }
  std::printf("\nagreement check on 2000 random keys: %d mismatches\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
