// ACL burst handling — the middleblock pre-ingress ACL under update storms.
//
// Demonstrates the precise/over-approximate trade-off of §4.1: the precise
// control-plane representation gives exact change verdicts but degrades
// with installed entries; past the threshold Flay over-approximates and
// processing time stays flat.
//
// Build & run:  ./build/examples/acl_burst [threshold]

#include <cstdio>
#include <cstdlib>

#include "flay/engine.h"
#include "net/workloads.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace core = flay::flay;

int main(int argc, char** argv) {
  size_t threshold = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;

  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  core::FlayOptions options;
  options.analysis.analyzeParser = false;
  options.encoder.overapproxThreshold = threshold;
  core::FlayService service(checked, options);

  std::printf("middleblock pre-ingress ACL, over-approx threshold = %zu\n\n",
              threshold);
  std::printf("%10s %14s %12s %12s\n", "installed", "analysis", "recompile",
              "overapprox");

  size_t installed = 0;
  for (size_t batch : {1u, 9u, 40u, 50u, 100u, 300u, 500u}) {
    auto updates = net::middleblockAclEntries(batch, 1000 + installed);
    auto verdict = service.applyBatch(updates);
    installed += batch;
    std::printf("%10zu %12.3fms %12s %12s\n", installed,
                verdict.analysisTime.count() / 1000.0,
                verdict.needsRecompilation ? "yes" : "no",
                verdict.overapproximated ? "yes" : "no");
  }

  std::printf(
      "\nBelow the threshold each batch is analyzed precisely (cost grows\n"
      "with the installed entries); above it the encoder falls back to the\n"
      "general form and the analysis cost flattens out.\n");
  return 0;
}
