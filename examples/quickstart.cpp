// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Load a P4-lite program.
//   2. Start the Flay service (one-time data-plane analysis).
//   3. Apply control-plane updates and read Flay's verdicts.
//   4. Emit the specialized program and run packets through both versions.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "expr/printer.h"
#include "flay/specializer.h"
#include "net/headers.h"
#include "sim/interpreter.h"

namespace p4 = flay::p4;
namespace runtime = flay::runtime;
namespace sim = flay::sim;
namespace net = flay::net;
namespace core = flay::flay;
namespace expr = flay::expr;
using flay::BitVec;

static const char* kProgram = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }

parser P {
  state start { extract(hdr.eth); transition accept; }
}

control Ingress {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  action drop_pkt() { mark_to_drop(); }
  table l2 {
    key = { hdr.eth.dst : exact; }
    actions = { fwd; drop_pkt; noop; }
    default_action = drop_pkt;
  }
  apply { l2.apply(); }
}

deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";

int main() {
  // 1. Parse + type-check.
  p4::CheckedProgram checked = p4::loadProgramFromString(kProgram);
  std::printf("loaded program: %zu statements\n",
              checked.program.statementCount());

  // 2. Flay: one-time symbolic analysis with state merging.
  core::FlayService service(checked);
  std::printf("data-plane analysis: %lld us, %zu program points\n",
              static_cast<long long>(service.dataPlaneAnalysisTime().count()),
              service.analysis().annotations.points().size());

  // 3a. Empty table: the whole table specializes away.
  auto empty = core::Specializer(service).specialize();
  std::printf("\nempty config: %zu table(s) removed -> default action "
              "inlined (every packet drops)\n",
              empty.stats.removedTables);

  // 3b. Install a forwarding entry and observe the verdict.
  runtime::TableEntry e;
  e.matches.push_back(
      runtime::FieldMatch::exact(BitVec::parse(48, "0x0000AABBCCDD")));
  e.actionName = "fwd";
  e.actionArgs.push_back(BitVec(9, 7));
  auto verdict =
      service.applyUpdate(runtime::Update::insert("Ingress.l2", e));
  std::printf(
      "\ninsert 0x0000AABBCCDD -> fwd(7): analysis %.3f ms, "
      "recompile %s\n",
      verdict.analysisTime.count() / 1000.0,
      verdict.needsRecompilation ? "REQUIRED" : "not needed");

  // The hit condition is now a comparison on the packet's address.
  const core::TableInfo& info = service.analysis().table("Ingress.l2");
  std::printf("hit condition: %s\n",
              expr::toString(service.arena(),
                             service.specialized(info.hitPoint))
                  .c_str());

  // 3c. A second entry with the same action: expressions change, but the
  // implementation does not -> update forwarded without recompilation.
  runtime::TableEntry e2 = e;
  e2.matches[0] = runtime::FieldMatch::exact(BitVec(48, 0x1234));
  e2.actionArgs[0] = BitVec(9, 3);
  auto verdict2 =
      service.applyUpdate(runtime::Update::insert("Ingress.l2", e2));
  std::printf("insert second entry: recompile %s\n",
              verdict2.needsRecompilation ? "REQUIRED" : "not needed");

  // 4. Differential check: specialized == original on live traffic.
  auto result = core::Specializer(service).specialize();
  p4::CheckedProgram specialized = core::recheck(std::move(result.program));
  runtime::DeviceConfig migrated =
      core::migrateConfig(specialized, service.config());

  sim::DataPlaneState s1(checked), s2(specialized);
  sim::Interpreter orig(checked, service.config(), s1);
  sim::Interpreter spec(specialized, migrated, s2);

  net::EthHeader eth;
  eth.dst = 0x0000AABBCCDDull;
  sim::Packet packet;
  packet.bytes = net::PacketBuilder().eth(eth).build();

  sim::ExecResult a = orig.process(packet);
  sim::ExecResult b = spec.process(packet);
  std::printf("\npacket to AA:BB:CC:DD  original -> port %u, specialized -> "
              "port %u  (%s)\n",
              a.egressPort, b.egressPort,
              a.egressPort == b.egressPort ? "EQUIVALENT" : "MISMATCH!");
  return 0;
}
