// SCION border router walkthrough — the paper's §4.2 evaluation as a
// runnable scenario:
//
//   * load the bundled scion.p4l border router,
//   * install the representative IPv4-only configuration,
//   * specialize and compare pipeline stages (the 20% saving),
//   * push a route burst (forwarded, no recompile),
//   * enable IPv6 (recompile triggered), respecialize, compare again,
//   * forward actual packets through original and specialized programs.
//
// Build & run:  ./build/examples/scion_router

#include <cstdio>

#include "flay/specializer.h"
#include "net/headers.h"
#include "net/workloads.h"
#include "sim/interpreter.h"
#include "tofino/compiler.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace sim = flay::sim;
namespace tofino = flay::tofino;
namespace core = flay::flay;
using flay::BitVec;

namespace {

sim::Packet scionIpv4Packet(uint32_t dst) {
  net::EthHeader eth;
  eth.type = 0x0800;
  net::Ipv4Header ip;
  ip.proto = 17;
  ip.dst = dst;
  net::UdpHeader udp;
  udp.dstPort = 50000;
  // SCION headers: common (12B path_type=1 at offset...), addr, path meta,
  // info, hop — built from raw fields to match scion.p4l's layout.
  return sim::Packet{
      net::PacketBuilder()
          .eth(eth)
          .ipv4(ip)
          .udp(udp)
          .raw(BitVec(4, 0))        // scion.version
          .raw(BitVec(8, 0))        // qos
          .raw(BitVec(20, 7))       // flow_id
          .raw(BitVec(8, 17))       // next_hdr
          .raw(BitVec(8, 9))        // hdr_len
          .raw(BitVec(16, 64))      // payload_len
          .raw(BitVec(8, 1))        // path_type = 1 (chain starts)
          .raw(BitVec(8, 0))        // dt_dl
          .raw(BitVec(16, 0))       // rsv
          .raw(BitVec(16, 1))       // addr.dst_isd
          .raw(BitVec(48, 0xAA))    // addr.dst_as
          .raw(BitVec(16, 2))       // addr.src_isd
          .raw(BitVec(48, 0xBB))    // addr.src_as
          .raw(BitVec(32, dst))     // addr.dst_host
          .raw(BitVec(32, 0x0101))  // addr.src_host
          .raw(BitVec(32, 0))       // path_meta
          .raw(BitVec(8, 0))        // info.flags
          .raw(BitVec(8, 0))        // info.rsv
          .raw(BitVec(16, 7))       // info.seg_id (mac_verify key)
          .raw(BitVec(32, 1234))    // info.timestamp
          .raw(BitVec(8, 0))        // hop.flags
          .raw(BitVec(8, 63))       // hop.exp_time
          .raw(BitVec(16, 2))       // hop.cons_ingress (iface_lookup key)
          .raw(BitVec(16, 3))       // hop.cons_egress
          .raw(BitVec(48, 0xA1B2C3D4E5F6ull))  // hop.mac
          .build(),
      0};
}

}  // namespace

int main() {
  std::printf("=== SCION border router / Flay walkthrough ===\n\n");
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  std::printf("program: %zu statements, %zu header fields\n",
              checked.program.statementCount(), checked.env.fields().size());

  tofino::CompilerOptions copts;
  copts.searchIterations = 200;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);
  tofino::CompileResult full = compiler.compile(checked);
  std::printf("unspecialized compile: %u/%u stages (%.1f ms)\n\n",
              full.stagesUsed, compiler.model().numStages,
              full.compileTime.count() / 1000.0);

  // --- configure: SCION path verification + IPv4 underlay only ----------
  core::FlayService service(checked);
  size_t applied = 0;
  for (const auto& u : net::scionCommonConfig()) {
    service.applyUpdate(u);
    ++applied;
  }
  for (const auto& u : net::scionV4Config(16)) {
    service.applyUpdate(u);
    ++applied;
  }
  std::printf("installed %zu updates (IPv4-only configuration)\n", applied);

  auto result = core::Specializer(service).specialize();
  std::printf("specialization: %zu tables removed, %zu branches eliminated, "
              "%zu constants propagated\n",
              result.stats.removedTables, result.stats.eliminatedBranches,
              result.stats.propagatedConstants);
  p4::CheckedProgram specialized = core::recheck(std::move(result.program));
  tofino::CompileResult lean = compiler.compile(specialized);
  std::printf("specialized compile: %u stages (%.0f%% fewer)\n\n",
              lean.stagesUsed,
              100.0 * (1.0 - double(lean.stagesUsed) / full.stagesUsed));

  // --- route burst: forwarded without recompilation ----------------------
  auto burst = net::scionV4RouteBurst(1000);
  auto verdict = service.applyBatch(burst);
  std::printf("burst of %zu route inserts: %.1f ms analysis, recompile=%s\n",
              burst.size(), verdict.analysisTime.count() / 1000.0,
              verdict.needsRecompilation ? "yes" : "no");

  // --- enable IPv6: recompilation required --------------------------------
  auto v6 = service.applyBatch(net::scionV6Config(8));
  std::printf("enable IPv6 paths: recompile=%s (%zu components)\n",
              v6.needsRecompilation ? "YES" : "no",
              v6.changedComponents.size());
  auto withV6 = core::Specializer(service).specialize();
  p4::CheckedProgram v6Checked = core::recheck(std::move(withV6.program));
  tofino::CompileResult back = compiler.compile(v6Checked);
  std::printf("respecialized compile: %u stages (back to maximum)\n\n",
              back.stagesUsed);

  // --- forward packets through original vs specialized -------------------
  runtime::DeviceConfig migrated =
      core::migrateConfig(v6Checked, service.config());
  sim::DataPlaneState s1(checked), s2(v6Checked);
  sim::Interpreter orig(checked, service.config(), s1);
  sim::Interpreter spec(v6Checked, migrated, s2);

  int agree = 0, total = 0;
  for (uint32_t host : {0x0A000001u, 0x0A000101u, 0x0B000001u}) {
    sim::Packet p = scionIpv4Packet(host);
    sim::ExecResult a = orig.process(p);
    sim::ExecResult b = spec.process(p);
    ++total;
    agree += (a.dropped == b.dropped && a.egressPort == b.egressPort) ? 1 : 0;
    std::printf("pkt dst=0x%08X: original %s(port %u), specialized %s(port "
                "%u)\n",
                host, a.dropped ? "drop" : "fwd", a.egressPort,
                b.dropped ? "drop" : "fwd", b.egressPort);
  }
  std::printf("\n%d/%d packets behave identically.\n", agree, total);
  return agree == total ? 0 : 1;
}
