# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_smt[1]_include.cmake")
include("/root/repo/build/tests/test_p4_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_flay[1]_include.cmake")
include("/root/repo/build/tests/test_tofino[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_programs[1]_include.cmake")
include("/root/repo/build/tests/test_p4_printer[1]_include.cmake")
include("/root/repo/build/tests/test_incremental_compile[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_multicontrol[1]_include.cmake")
