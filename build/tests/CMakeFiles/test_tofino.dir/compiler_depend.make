# Empty compiler generated dependencies file for test_tofino.
# This may be replaced when dependencies are built.
