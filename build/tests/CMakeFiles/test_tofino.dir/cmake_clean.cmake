file(REMOVE_RECURSE
  "CMakeFiles/test_tofino.dir/test_tofino.cpp.o"
  "CMakeFiles/test_tofino.dir/test_tofino.cpp.o.d"
  "test_tofino"
  "test_tofino.pdb"
  "test_tofino[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tofino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
