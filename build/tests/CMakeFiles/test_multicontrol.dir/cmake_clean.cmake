file(REMOVE_RECURSE
  "CMakeFiles/test_multicontrol.dir/test_multicontrol.cpp.o"
  "CMakeFiles/test_multicontrol.dir/test_multicontrol.cpp.o.d"
  "test_multicontrol"
  "test_multicontrol.pdb"
  "test_multicontrol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
