# Empty dependencies file for test_multicontrol.
# This may be replaced when dependencies are built.
