
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_incremental_compile.cpp" "tests/CMakeFiles/test_incremental_compile.dir/test_incremental_compile.cpp.o" "gcc" "tests/CMakeFiles/test_incremental_compile.dir/test_incremental_compile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flay/CMakeFiles/flay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tofino/CMakeFiles/flay_tofino.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/flay_net.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/flay_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/flay_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/flay_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/flay_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/flay_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
