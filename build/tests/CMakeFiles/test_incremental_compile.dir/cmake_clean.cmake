file(REMOVE_RECURSE
  "CMakeFiles/test_incremental_compile.dir/test_incremental_compile.cpp.o"
  "CMakeFiles/test_incremental_compile.dir/test_incremental_compile.cpp.o.d"
  "test_incremental_compile"
  "test_incremental_compile.pdb"
  "test_incremental_compile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incremental_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
