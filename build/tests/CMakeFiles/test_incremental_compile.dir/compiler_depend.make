# Empty compiler generated dependencies file for test_incremental_compile.
# This may be replaced when dependencies are built.
