file(REMOVE_RECURSE
  "CMakeFiles/test_p4_frontend.dir/test_p4_frontend.cpp.o"
  "CMakeFiles/test_p4_frontend.dir/test_p4_frontend.cpp.o.d"
  "test_p4_frontend"
  "test_p4_frontend.pdb"
  "test_p4_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
