# Empty compiler generated dependencies file for test_p4_printer.
# This may be replaced when dependencies are built.
