file(REMOVE_RECURSE
  "CMakeFiles/test_p4_printer.dir/test_p4_printer.cpp.o"
  "CMakeFiles/test_p4_printer.dir/test_p4_printer.cpp.o.d"
  "test_p4_printer"
  "test_p4_printer.pdb"
  "test_p4_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
