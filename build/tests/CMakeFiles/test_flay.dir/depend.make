# Empty dependencies file for test_flay.
# This may be replaced when dependencies are built.
