file(REMOVE_RECURSE
  "CMakeFiles/test_flay.dir/test_flay.cpp.o"
  "CMakeFiles/test_flay.dir/test_flay.cpp.o.d"
  "test_flay"
  "test_flay.pdb"
  "test_flay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
