file(REMOVE_RECURSE
  "CMakeFiles/flayc.dir/flayc.cpp.o"
  "CMakeFiles/flayc.dir/flayc.cpp.o.d"
  "flayc"
  "flayc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flayc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
