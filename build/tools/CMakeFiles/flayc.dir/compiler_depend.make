# Empty compiler generated dependencies file for flayc.
# This may be replaced when dependencies are built.
