file(REMOVE_RECURSE
  "CMakeFiles/scion_router.dir/scion_router.cpp.o"
  "CMakeFiles/scion_router.dir/scion_router.cpp.o.d"
  "scion_router"
  "scion_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scion_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
