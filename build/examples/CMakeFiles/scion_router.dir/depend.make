# Empty dependencies file for scion_router.
# This may be replaced when dependencies are built.
