# Empty compiler generated dependencies file for acl_burst.
# This may be replaced when dependencies are built.
