file(REMOVE_RECURSE
  "CMakeFiles/acl_burst.dir/acl_burst.cpp.o"
  "CMakeFiles/acl_burst.dir/acl_burst.cpp.o.d"
  "acl_burst"
  "acl_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
