file(REMOVE_RECURSE
  "CMakeFiles/classifier_tuning.dir/classifier_tuning.cpp.o"
  "CMakeFiles/classifier_tuning.dir/classifier_tuning.cpp.o.d"
  "classifier_tuning"
  "classifier_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
