# Empty compiler generated dependencies file for classifier_tuning.
# This may be replaced when dependencies are built.
