file(REMOVE_RECURSE
  "libflay_runtime.a"
)
