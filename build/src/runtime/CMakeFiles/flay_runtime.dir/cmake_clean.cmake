file(REMOVE_RECURSE
  "CMakeFiles/flay_runtime.dir/device_config.cpp.o"
  "CMakeFiles/flay_runtime.dir/device_config.cpp.o.d"
  "CMakeFiles/flay_runtime.dir/entry.cpp.o"
  "CMakeFiles/flay_runtime.dir/entry.cpp.o.d"
  "CMakeFiles/flay_runtime.dir/table_state.cpp.o"
  "CMakeFiles/flay_runtime.dir/table_state.cpp.o.d"
  "libflay_runtime.a"
  "libflay_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
