
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/device_config.cpp" "src/runtime/CMakeFiles/flay_runtime.dir/device_config.cpp.o" "gcc" "src/runtime/CMakeFiles/flay_runtime.dir/device_config.cpp.o.d"
  "/root/repo/src/runtime/entry.cpp" "src/runtime/CMakeFiles/flay_runtime.dir/entry.cpp.o" "gcc" "src/runtime/CMakeFiles/flay_runtime.dir/entry.cpp.o.d"
  "/root/repo/src/runtime/table_state.cpp" "src/runtime/CMakeFiles/flay_runtime.dir/table_state.cpp.o" "gcc" "src/runtime/CMakeFiles/flay_runtime.dir/table_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4/CMakeFiles/flay_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
