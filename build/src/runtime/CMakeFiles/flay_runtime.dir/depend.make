# Empty dependencies file for flay_runtime.
# This may be replaced when dependencies are built.
