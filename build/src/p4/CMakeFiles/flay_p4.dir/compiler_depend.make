# Empty compiler generated dependencies file for flay_p4.
# This may be replaced when dependencies are built.
