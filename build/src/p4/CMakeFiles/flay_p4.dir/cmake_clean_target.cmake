file(REMOVE_RECURSE
  "libflay_p4.a"
)
