file(REMOVE_RECURSE
  "CMakeFiles/flay_p4.dir/ast.cpp.o"
  "CMakeFiles/flay_p4.dir/ast.cpp.o.d"
  "CMakeFiles/flay_p4.dir/clone.cpp.o"
  "CMakeFiles/flay_p4.dir/clone.cpp.o.d"
  "CMakeFiles/flay_p4.dir/lexer.cpp.o"
  "CMakeFiles/flay_p4.dir/lexer.cpp.o.d"
  "CMakeFiles/flay_p4.dir/parser.cpp.o"
  "CMakeFiles/flay_p4.dir/parser.cpp.o.d"
  "CMakeFiles/flay_p4.dir/printer.cpp.o"
  "CMakeFiles/flay_p4.dir/printer.cpp.o.d"
  "CMakeFiles/flay_p4.dir/typecheck.cpp.o"
  "CMakeFiles/flay_p4.dir/typecheck.cpp.o.d"
  "libflay_p4.a"
  "libflay_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
