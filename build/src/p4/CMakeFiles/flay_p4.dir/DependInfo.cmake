
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4/ast.cpp" "src/p4/CMakeFiles/flay_p4.dir/ast.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/ast.cpp.o.d"
  "/root/repo/src/p4/clone.cpp" "src/p4/CMakeFiles/flay_p4.dir/clone.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/clone.cpp.o.d"
  "/root/repo/src/p4/lexer.cpp" "src/p4/CMakeFiles/flay_p4.dir/lexer.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/lexer.cpp.o.d"
  "/root/repo/src/p4/parser.cpp" "src/p4/CMakeFiles/flay_p4.dir/parser.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/parser.cpp.o.d"
  "/root/repo/src/p4/printer.cpp" "src/p4/CMakeFiles/flay_p4.dir/printer.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/printer.cpp.o.d"
  "/root/repo/src/p4/typecheck.cpp" "src/p4/CMakeFiles/flay_p4.dir/typecheck.cpp.o" "gcc" "src/p4/CMakeFiles/flay_p4.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
