file(REMOVE_RECURSE
  "libflay_smt.a"
)
