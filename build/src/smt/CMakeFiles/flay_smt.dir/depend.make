# Empty dependencies file for flay_smt.
# This may be replaced when dependencies are built.
