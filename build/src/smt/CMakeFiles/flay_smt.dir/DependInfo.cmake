
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/bitblaster.cpp" "src/smt/CMakeFiles/flay_smt.dir/bitblaster.cpp.o" "gcc" "src/smt/CMakeFiles/flay_smt.dir/bitblaster.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/smt/CMakeFiles/flay_smt.dir/solver.cpp.o" "gcc" "src/smt/CMakeFiles/flay_smt.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/flay_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/flay_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
