file(REMOVE_RECURSE
  "CMakeFiles/flay_smt.dir/bitblaster.cpp.o"
  "CMakeFiles/flay_smt.dir/bitblaster.cpp.o.d"
  "CMakeFiles/flay_smt.dir/solver.cpp.o"
  "CMakeFiles/flay_smt.dir/solver.cpp.o.d"
  "libflay_smt.a"
  "libflay_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
