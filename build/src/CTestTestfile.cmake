# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("expr")
subdirs("sat")
subdirs("smt")
subdirs("p4")
subdirs("runtime")
subdirs("sim")
subdirs("tofino")
subdirs("classifier")
subdirs("net")
subdirs("flay")
