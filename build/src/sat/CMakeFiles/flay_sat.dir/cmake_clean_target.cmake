file(REMOVE_RECURSE
  "libflay_sat.a"
)
