file(REMOVE_RECURSE
  "CMakeFiles/flay_sat.dir/solver.cpp.o"
  "CMakeFiles/flay_sat.dir/solver.cpp.o.d"
  "libflay_sat.a"
  "libflay_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
