# Empty dependencies file for flay_sat.
# This may be replaced when dependencies are built.
