file(REMOVE_RECURSE
  "CMakeFiles/flay_core.dir/encoder.cpp.o"
  "CMakeFiles/flay_core.dir/encoder.cpp.o.d"
  "CMakeFiles/flay_core.dir/engine.cpp.o"
  "CMakeFiles/flay_core.dir/engine.cpp.o.d"
  "CMakeFiles/flay_core.dir/specializer.cpp.o"
  "CMakeFiles/flay_core.dir/specializer.cpp.o.d"
  "CMakeFiles/flay_core.dir/symbolic_executor.cpp.o"
  "CMakeFiles/flay_core.dir/symbolic_executor.cpp.o.d"
  "libflay_core.a"
  "libflay_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
