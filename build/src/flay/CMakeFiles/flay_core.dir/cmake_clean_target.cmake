file(REMOVE_RECURSE
  "libflay_core.a"
)
