# Empty compiler generated dependencies file for flay_core.
# This may be replaced when dependencies are built.
