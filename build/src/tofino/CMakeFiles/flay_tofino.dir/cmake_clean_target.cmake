file(REMOVE_RECURSE
  "libflay_tofino.a"
)
