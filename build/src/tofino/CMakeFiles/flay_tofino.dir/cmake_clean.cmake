file(REMOVE_RECURSE
  "CMakeFiles/flay_tofino.dir/compiler.cpp.o"
  "CMakeFiles/flay_tofino.dir/compiler.cpp.o.d"
  "CMakeFiles/flay_tofino.dir/incremental.cpp.o"
  "CMakeFiles/flay_tofino.dir/incremental.cpp.o.d"
  "CMakeFiles/flay_tofino.dir/requirements.cpp.o"
  "CMakeFiles/flay_tofino.dir/requirements.cpp.o.d"
  "libflay_tofino.a"
  "libflay_tofino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_tofino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
