# Empty dependencies file for flay_tofino.
# This may be replaced when dependencies are built.
