
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tofino/compiler.cpp" "src/tofino/CMakeFiles/flay_tofino.dir/compiler.cpp.o" "gcc" "src/tofino/CMakeFiles/flay_tofino.dir/compiler.cpp.o.d"
  "/root/repo/src/tofino/incremental.cpp" "src/tofino/CMakeFiles/flay_tofino.dir/incremental.cpp.o" "gcc" "src/tofino/CMakeFiles/flay_tofino.dir/incremental.cpp.o.d"
  "/root/repo/src/tofino/requirements.cpp" "src/tofino/CMakeFiles/flay_tofino.dir/requirements.cpp.o" "gcc" "src/tofino/CMakeFiles/flay_tofino.dir/requirements.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4/CMakeFiles/flay_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
