file(REMOVE_RECURSE
  "CMakeFiles/flay_sim.dir/interpreter.cpp.o"
  "CMakeFiles/flay_sim.dir/interpreter.cpp.o.d"
  "CMakeFiles/flay_sim.dir/packet.cpp.o"
  "CMakeFiles/flay_sim.dir/packet.cpp.o.d"
  "CMakeFiles/flay_sim.dir/state.cpp.o"
  "CMakeFiles/flay_sim.dir/state.cpp.o.d"
  "libflay_sim.a"
  "libflay_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
