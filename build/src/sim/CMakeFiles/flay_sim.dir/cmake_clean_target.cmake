file(REMOVE_RECURSE
  "libflay_sim.a"
)
