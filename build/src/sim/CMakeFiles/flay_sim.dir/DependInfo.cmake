
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/interpreter.cpp" "src/sim/CMakeFiles/flay_sim.dir/interpreter.cpp.o" "gcc" "src/sim/CMakeFiles/flay_sim.dir/interpreter.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/sim/CMakeFiles/flay_sim.dir/packet.cpp.o" "gcc" "src/sim/CMakeFiles/flay_sim.dir/packet.cpp.o.d"
  "/root/repo/src/sim/state.cpp" "src/sim/CMakeFiles/flay_sim.dir/state.cpp.o" "gcc" "src/sim/CMakeFiles/flay_sim.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/flay_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/flay_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
