# Empty dependencies file for flay_sim.
# This may be replaced when dependencies are built.
