# Empty dependencies file for flay_net.
# This may be replaced when dependencies are built.
