file(REMOVE_RECURSE
  "libflay_net.a"
)
