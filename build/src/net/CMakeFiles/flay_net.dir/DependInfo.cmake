
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fuzzer.cpp" "src/net/CMakeFiles/flay_net.dir/fuzzer.cpp.o" "gcc" "src/net/CMakeFiles/flay_net.dir/fuzzer.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/flay_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/flay_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/flay_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/flay_net.dir/trace.cpp.o.d"
  "/root/repo/src/net/workloads.cpp" "src/net/CMakeFiles/flay_net.dir/workloads.cpp.o" "gcc" "src/net/CMakeFiles/flay_net.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/flay_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/flay_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
