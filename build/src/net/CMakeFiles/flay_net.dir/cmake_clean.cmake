file(REMOVE_RECURSE
  "CMakeFiles/flay_net.dir/fuzzer.cpp.o"
  "CMakeFiles/flay_net.dir/fuzzer.cpp.o.d"
  "CMakeFiles/flay_net.dir/headers.cpp.o"
  "CMakeFiles/flay_net.dir/headers.cpp.o.d"
  "CMakeFiles/flay_net.dir/trace.cpp.o"
  "CMakeFiles/flay_net.dir/trace.cpp.o.d"
  "CMakeFiles/flay_net.dir/workloads.cpp.o"
  "CMakeFiles/flay_net.dir/workloads.cpp.o.d"
  "libflay_net.a"
  "libflay_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
