file(REMOVE_RECURSE
  "libflay_support.a"
)
