file(REMOVE_RECURSE
  "CMakeFiles/flay_support.dir/bitvec.cpp.o"
  "CMakeFiles/flay_support.dir/bitvec.cpp.o.d"
  "libflay_support.a"
  "libflay_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
