# Empty dependencies file for flay_support.
# This may be replaced when dependencies are built.
