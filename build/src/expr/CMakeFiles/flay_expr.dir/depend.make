# Empty dependencies file for flay_expr.
# This may be replaced when dependencies are built.
