
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/analysis.cpp" "src/expr/CMakeFiles/flay_expr.dir/analysis.cpp.o" "gcc" "src/expr/CMakeFiles/flay_expr.dir/analysis.cpp.o.d"
  "/root/repo/src/expr/arena.cpp" "src/expr/CMakeFiles/flay_expr.dir/arena.cpp.o" "gcc" "src/expr/CMakeFiles/flay_expr.dir/arena.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/expr/CMakeFiles/flay_expr.dir/eval.cpp.o" "gcc" "src/expr/CMakeFiles/flay_expr.dir/eval.cpp.o.d"
  "/root/repo/src/expr/printer.cpp" "src/expr/CMakeFiles/flay_expr.dir/printer.cpp.o" "gcc" "src/expr/CMakeFiles/flay_expr.dir/printer.cpp.o.d"
  "/root/repo/src/expr/substitute.cpp" "src/expr/CMakeFiles/flay_expr.dir/substitute.cpp.o" "gcc" "src/expr/CMakeFiles/flay_expr.dir/substitute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/flay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
