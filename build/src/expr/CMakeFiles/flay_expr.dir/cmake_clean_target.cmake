file(REMOVE_RECURSE
  "libflay_expr.a"
)
