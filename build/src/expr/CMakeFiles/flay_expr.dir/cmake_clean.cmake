file(REMOVE_RECURSE
  "CMakeFiles/flay_expr.dir/analysis.cpp.o"
  "CMakeFiles/flay_expr.dir/analysis.cpp.o.d"
  "CMakeFiles/flay_expr.dir/arena.cpp.o"
  "CMakeFiles/flay_expr.dir/arena.cpp.o.d"
  "CMakeFiles/flay_expr.dir/eval.cpp.o"
  "CMakeFiles/flay_expr.dir/eval.cpp.o.d"
  "CMakeFiles/flay_expr.dir/printer.cpp.o"
  "CMakeFiles/flay_expr.dir/printer.cpp.o.d"
  "CMakeFiles/flay_expr.dir/substitute.cpp.o"
  "CMakeFiles/flay_expr.dir/substitute.cpp.o.d"
  "libflay_expr.a"
  "libflay_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
