# Empty dependencies file for flay_classifier.
# This may be replaced when dependencies are built.
