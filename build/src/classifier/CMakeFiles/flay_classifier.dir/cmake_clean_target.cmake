file(REMOVE_RECURSE
  "libflay_classifier.a"
)
