file(REMOVE_RECURSE
  "CMakeFiles/flay_classifier.dir/classifier.cpp.o"
  "CMakeFiles/flay_classifier.dir/classifier.cpp.o.d"
  "libflay_classifier.a"
  "libflay_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flay_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
