file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_taint.dir/bench_ablation_taint.cpp.o"
  "CMakeFiles/bench_ablation_taint.dir/bench_ablation_taint.cpp.o.d"
  "bench_ablation_taint"
  "bench_ablation_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
