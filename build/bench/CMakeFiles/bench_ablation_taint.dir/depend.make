# Empty dependencies file for bench_ablation_taint.
# This may be replaced when dependencies are built.
