# Empty compiler generated dependencies file for bench_ablation_incremental_compile.
# This may be replaced when dependencies are built.
