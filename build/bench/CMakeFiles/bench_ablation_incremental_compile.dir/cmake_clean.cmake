file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incremental_compile.dir/bench_ablation_incremental_compile.cpp.o"
  "CMakeFiles/bench_ablation_incremental_compile.dir/bench_ablation_incremental_compile.cpp.o.d"
  "bench_ablation_incremental_compile"
  "bench_ablation_incremental_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incremental_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
