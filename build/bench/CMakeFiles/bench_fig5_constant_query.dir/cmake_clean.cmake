file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_constant_query.dir/bench_fig5_constant_query.cpp.o"
  "CMakeFiles/bench_fig5_constant_query.dir/bench_fig5_constant_query.cpp.o.d"
  "bench_fig5_constant_query"
  "bench_fig5_constant_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_constant_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
