# Empty dependencies file for bench_fig5_constant_query.
# This may be replaced when dependencies are built.
