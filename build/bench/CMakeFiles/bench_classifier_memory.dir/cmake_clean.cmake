file(REMOVE_RECURSE
  "CMakeFiles/bench_classifier_memory.dir/bench_classifier_memory.cpp.o"
  "CMakeFiles/bench_classifier_memory.dir/bench_classifier_memory.cpp.o.d"
  "bench_classifier_memory"
  "bench_classifier_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classifier_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
