# Empty dependencies file for bench_classifier_memory.
# This may be replaced when dependencies are built.
