# Empty dependencies file for bench_fig1_update_timeline.
# This may be replaced when dependencies are built.
