# Empty compiler generated dependencies file for bench_burst_updates.
# This may be replaced when dependencies are built.
