file(REMOVE_RECURSE
  "CMakeFiles/bench_burst_updates.dir/bench_burst_updates.cpp.o"
  "CMakeFiles/bench_burst_updates.dir/bench_burst_updates.cpp.o.d"
  "bench_burst_updates"
  "bench_burst_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burst_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
