file(REMOVE_RECURSE
  "CMakeFiles/bench_scion_stages.dir/bench_scion_stages.cpp.o"
  "CMakeFiles/bench_scion_stages.dir/bench_scion_stages.cpp.o.d"
  "bench_scion_stages"
  "bench_scion_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scion_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
