# Empty dependencies file for bench_scion_stages.
# This may be replaced when dependencies are built.
