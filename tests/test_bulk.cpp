// Streaming bulk-load path (flay/bulk.h): classifier pre-filter soundness,
// chunk report consistency, rejection handling, and the batch-abort counter
// contract on the sequential applyBatch path it scales up from.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/obs.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace runtime = flay::runtime;
namespace core = flay::flay;
namespace obs = flay::obs;
using flay::BitVec;
using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

namespace {

p4::CheckedProgram load(const std::string& name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

std::string sequentialDigest(const p4::CheckedProgram& checked,
                             const std::vector<Update>& stream) {
  core::FlayService svc(checked);
  for (const auto& u : stream) {
    try {
      svc.applyUpdate(u);
    } catch (const std::invalid_argument&) {
    }
  }
  return svc.stateDigest();
}

TableEntry aclEntry(uint32_t src, uint32_t srcMask, uint32_t dst,
                    uint32_t dstMask, int32_t priority) {
  TableEntry e;
  e.matches.push_back(FieldMatch::ternary(BitVec(32, src), BitVec(32, srcMask)));
  e.matches.push_back(FieldMatch::ternary(BitVec(32, dst), BitVec(32, dstMask)));
  e.matches.push_back(FieldMatch::ternary(BitVec(8, 6), BitVec(8, 0xFF)));
  e.matches.push_back(FieldMatch::ternary(BitVec(16, 80), BitVec(16, 0xFFFF)));
  e.matches.push_back(FieldMatch::ternary(BitVec(16, 443), BitVec(16, 0xFFFF)));
  e.actionName = "set_vrf";
  e.actionArgs.push_back(BitVec(10, 7));
  e.priority = priority;
  return e;
}

// --- applyBatch counter contract (the scaled-down sequential path) ---------

TEST(BatchCounters, PerUpdateApplySamplesAndOneBatchSample) {
  auto checked = load("scion");
  core::FlayService svc(checked);
  obs::Histogram& applyUs =
      obs::Registry::global().histogram("flay.config_apply_us");
  obs::Histogram& batchUs =
      obs::Registry::global().histogram("flay.batch_apply_us");
  applyUs.reset();
  batchUs.reset();
  auto burst = net::scionV4RouteBurst(50);
  svc.applyBatch(burst);
  // One latency sample per update, one for the whole batch — batch size
  // must never skew the per-apply quantiles.
  EXPECT_EQ(applyUs.count(), 50u);
  EXPECT_EQ(batchUs.count(), 1u);
}

TEST(BatchCounters, MidBatchThrowRecordsAbortAndStaysConsistent) {
  auto checked = load("scion");
  core::FlayService svc(checked);
  obs::Counter& aborts = obs::Registry::global().counter("flay.batch_aborts");
  obs::Counter& updates = obs::Registry::global().counter("flay.updates");
  obs::Histogram& applyUs =
      obs::Registry::global().histogram("flay.config_apply_us");

  auto burst = net::scionV4RouteBurst(3);
  std::vector<Update> batch = {burst[0],
                               Update::insert("ScionIngress.no_such_table",
                                              burst[1].entry),
                               burst[2]};
  uint64_t abortsBefore = aborts.value();
  uint64_t updatesBefore = updates.value();
  applyUs.reset();
  EXPECT_THROW(svc.applyBatch(batch), std::invalid_argument);
  EXPECT_EQ(aborts.value(), abortsBefore + 1);
  // Only the successfully installed prefix counts as applied updates, but
  // the failed apply still gets a latency sample.
  EXPECT_EQ(updates.value(), updatesBefore + 1);
  EXPECT_EQ(applyUs.count(), 2u);
  // The installed prefix was re-analyzed before the throw surfaced: state
  // digest matches a clean sequential apply of just that prefix.
  core::FlayService ref(checked);
  ref.applyUpdate(burst[0]);
  EXPECT_EQ(svc.stateDigest(), ref.stateDigest());
}

// --- bulk path parity with sequential replay -------------------------------

TEST(BulkParity, ScionRouteBurstDigestMatchesSequential) {
  auto checked = load("scion");
  std::vector<Update> stream = net::scionCommonConfig();
  for (const auto& u : net::scionV4Config(4)) stream.push_back(u);
  for (const auto& u : net::scionV4RouteBurst(400)) stream.push_back(u);

  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 64;
  auto rep = svc.bulkLoad(stream, opts);
  // The burst drives v4_t01 well past the over-approximation threshold, so
  // the classifier pre-filter must be doing real work here.
  EXPECT_GT(rep.bypassed, 0u);
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkParity, DashFlowTableDigestMatchesSequential) {
  auto checked = load("dash");
  runtime::DeviceConfig cfg(checked);
  net::EntryFuzzer fuzzer(11);
  std::vector<Update> stream;
  for (auto& e :
       fuzzer.uniqueEntries(cfg.table("DashIngress.flow_table"), 200)) {
    stream.push_back(Update::insert("DashIngress.flow_table", std::move(e)));
  }
  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 64;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_GT(rep.bypassed, 0u);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkParity, MiddleblockAclDigestMatchesSequential) {
  auto checked = load("middleblock");
  auto stream = net::middleblockAclEntries(200);
  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 64;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_GT(rep.bypassed, 0u);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkParity, PrefilterDisabledStillMatchesAndAnalyzesEverything) {
  auto checked = load("middleblock");
  auto stream = net::middleblockAclEntries(150);
  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 32;
  opts.classifierPrefilter = false;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_EQ(rep.bypassed, 0u);
  EXPECT_EQ(rep.analyzed, 150u);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkParity, NonInsertUpdatesInvalidateFilterAndStayConsistent) {
  auto checked = load("scion");
  std::vector<Update> stream = net::scionCommonConfig();
  for (const auto& u : net::scionV4Config(4)) stream.push_back(u);
  auto burst = net::scionV4RouteBurst(150);
  // Inserts past the threshold, then a default-action flip on the same
  // table (analysis-visible, invalidates the filter), then more inserts.
  for (size_t i = 0; i < 120; ++i) stream.push_back(burst[i]);
  stream.push_back(
      Update::setDefault("ScionIngress.v4_t01", "v4_hop", {BitVec(16, 9)}));
  for (size_t i = 120; i < burst.size(); ++i) stream.push_back(burst[i]);

  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 32;
  svc.bulkLoad(stream, opts);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkParity, DuplicateInsertsAreRejectedLikeSequentialReplay) {
  auto checked = load("scion");
  std::vector<Update> stream = net::scionCommonConfig();
  auto burst = net::scionV4RouteBurst(60);
  for (const auto& u : burst) stream.push_back(u);
  for (size_t i = 0; i < 10; ++i) stream.push_back(burst[i]);  // duplicates

  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 16;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_EQ(rep.rejected, 10u);
  EXPECT_EQ(rep.applied, stream.size() - 10);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

// --- probe-based bypass in the precise (below-threshold) regime ------------

TEST(BulkPrefilter, EclipsedExactEntryBypassesViaProbe) {
  auto checked = load("middleblock");
  // A wide high-priority rule, then a fully exact-valued entry whose single
  // match point it covers with higher priority: the new entry can never
  // join the normalized set, so the probe proves the insert invisible.
  std::vector<Update> stream;
  stream.push_back(Update::insert(
      "MbIngress.acl_pre_ingress",
      aclEntry(0x0A000000u, 0xFF000000u, 0xC0A80000u, 0xFFFF0000u, 100)));
  TableEntry eclipsed =
      aclEntry(0x0A010203u, 0xFFFFFFFFu, 0xC0A80101u, 0xFFFFFFFFu, 5);
  stream.push_back(Update::insert("MbIngress.acl_pre_ingress", eclipsed));

  obs::Counter& probeHits =
      obs::Registry::global().counter("flay.bulk_probe_hits");
  uint64_t hitsBefore = probeHits.value();
  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_EQ(rep.bypassed, 1u);
  EXPECT_EQ(rep.analyzed, 1u);
  EXPECT_GT(probeHits.value(), hitsBefore);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

// The point-probe is maintained incrementally: a stream of N below-threshold
// inserts folds fresh rules into the probe every 64 inserts instead of
// rebuilding per insert, so the classifier-build count is O(N/64) — the
// regression this pins down was an O(N) rebuild-per-insert in the precise
// regime. Bypass decisions (and therefore the digest) are unchanged.
TEST(BulkPrefilter, ProbeFoldsIncrementallyNotPerInsert) {
  auto checked = load("middleblock");
  constexpr size_t kInserts = 400;
  std::vector<Update> stream;
  // One wide, high-priority cover rule...
  stream.push_back(Update::insert(
      "MbIngress.acl_pre_ingress",
      aclEntry(0x0A000000u, 0xFF000000u, 0xC0A80000u, 0xFFFF0000u, 1000)));
  // ...then N distinct exact-valued entries it eclipses: all bypassed, all
  // appended to the probe's rule set.
  for (size_t i = 0; i < kInserts; ++i) {
    stream.push_back(Update::insert(
        "MbIngress.acl_pre_ingress",
        aclEntry(0x0A000000u + static_cast<uint32_t>(i), 0xFFFFFFFFu,
                 0xC0A80101u, 0xFFFFFFFFu, 5)));
  }

  obs::Counter& rebuilds =
      obs::Registry::global().counter("flay.bulk_probe_rebuilds");
  uint64_t before = rebuilds.value();
  core::FlayService svc(checked);
  auto rep = svc.bulkLoad(stream, {});
  // A threshold-crossing insert legitimately routes to analysis once; every
  // other eclipsed insert must bypass.
  EXPECT_GE(rep.bypassed, kInserts - 1);
  uint64_t built = rebuilds.value() - before;
  // N/64 delta folds plus a small constant for initial builds; a rebuild-
  // per-insert regression would be ~400 here.
  EXPECT_LE(built, kInserts / 64 + 4) << "probe rebuilt per insert";
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

TEST(BulkPrefilter, UncoveredExactEntryIsAnalyzed) {
  auto checked = load("middleblock");
  std::vector<Update> stream;
  stream.push_back(Update::insert(
      "MbIngress.acl_pre_ingress",
      aclEntry(0x0A000000u, 0xFF000000u, 0xC0A80000u, 0xFFFF0000u, 100)));
  // Same shape but outside the wide rule's source cover: must be analyzed.
  stream.push_back(Update::insert(
      "MbIngress.acl_pre_ingress",
      aclEntry(0x0B010203u, 0xFFFFFFFFu, 0xC0A80101u, 0xFFFFFFFFu, 5)));

  core::FlayService svc(checked);
  auto rep = svc.bulkLoad(stream, {});
  EXPECT_EQ(rep.bypassed, 0u);
  EXPECT_EQ(rep.analyzed, 2u);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

// --- chunk report consistency ----------------------------------------------

TEST(BulkChunks, CallbackTotalsMatchReportAndStreamOrder) {
  auto checked = load("scion");
  std::vector<Update> stream = net::scionCommonConfig();
  for (const auto& u : net::scionV4RouteBurst(130)) stream.push_back(u);

  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 32;
  opts.collectApplied = true;
  size_t updates = 0, bypassed = 0, analyzed = 0, rejected = 0;
  std::vector<Update> collected;
  size_t lastChunkIndex = 0;
  auto rep = svc.bulkLoad(stream, opts, [&](const core::BulkChunkVerdict& c) {
    EXPECT_LE(c.updates, opts.chunkSize);
    EXPECT_EQ(c.chunkIndex, lastChunkIndex++);
    updates += c.updates;
    bypassed += c.bypassed;
    analyzed += c.analyzed;
    rejected += c.rejected;
    for (const auto& u : c.applied) collected.push_back(u);
  });
  EXPECT_EQ(rep.updates, stream.size());
  EXPECT_EQ(updates, rep.updates);
  EXPECT_EQ(bypassed, rep.bypassed);
  EXPECT_EQ(analyzed, rep.analyzed);
  EXPECT_EQ(rejected, rep.rejected);
  EXPECT_EQ(rep.chunks, (stream.size() + opts.chunkSize - 1) / opts.chunkSize);
  // collectApplied hands back exactly the applied stream, in order —
  // replaying it sequentially reproduces the bulk-loaded state.
  EXPECT_EQ(collected.size(), rep.applied);
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, collected));
}

TEST(BulkChunks, VerdictAggregationSeesRecompileFromAnyChunk) {
  auto checked = load("scion");
  std::vector<Update> stream = net::scionCommonConfig();
  for (const auto& u : net::scionV4Config(4)) stream.push_back(u);
  // IPv6 enablement lands in a later chunk; the aggregated report must
  // still surface the recompilation verdict.
  for (const auto& u : net::scionV4RouteBurst(40)) stream.push_back(u);
  for (const auto& u : net::scionV6Config(8)) stream.push_back(u);

  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 16;
  auto rep = svc.bulkLoad(stream, opts);
  EXPECT_TRUE(rep.needsRecompilation);
  EXPECT_FALSE(rep.changedComponents.empty());
}

TEST(BulkChunks, EmptyStreamProducesEmptyReport) {
  auto checked = load("scion");
  core::FlayService svc(checked);
  auto rep = svc.bulkLoad({}, {});
  EXPECT_EQ(rep.updates, 0u);
  EXPECT_EQ(rep.chunks, 0u);
  EXPECT_FALSE(rep.needsRecompilation);
}

// --- bulkroute workload generator ------------------------------------------

TEST(BulkWorkload, BulkRouteStreamIsDuplicateFree) {
  auto checked = load("bulkroute");
  core::FlayService svc(checked);
  core::BulkLoadOptions opts;
  opts.chunkSize = 512;
  size_t next = 0;
  auto rep = svc.applyStream(
      [&]() -> std::optional<runtime::Update> {
        if (next >= 3000) return std::nullopt;
        return net::bulkRouteUpdate(next++);
      },
      opts);
  EXPECT_EQ(rep.rejected, 0u);
  EXPECT_EQ(rep.applied, 3000u);
  std::vector<Update> stream;
  for (size_t i = 0; i < 3000; ++i) stream.push_back(net::bulkRouteUpdate(i));
  EXPECT_EQ(svc.stateDigest(), sequentialDigest(checked, stream));
}

}  // namespace
