// Multi-control pipelines: parser -> ingress -> egress -> deparser, in the
// interpreter, the symbolic executor, the specializer, and the resource
// model.

#include <gtest/gtest.h>

#include <random>

#include "flay/specializer.h"
#include "net/headers.h"
#include "net/workloads.h"
#include "sim/interpreter.h"
#include "tofino/compiler.h"

namespace flay {
namespace {

namespace core = ::flay::flay;

const char* kTwoStageProgram = R"(
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t h; }
struct metadata { bit<8> mark; }
parser P { state start { extract(hdr.h); transition accept; } }
control IngressC {
  action set_mark(bit<8> m) { meta.mark = m; }
  table classify {
    key = { hdr.h.a : exact; }
    actions = { set_mark; noop; }
    default_action = noop;
  }
  apply {
    classify.apply();
    sm.egress_spec = 2;
  }
}
control EgressC {
  action rewrite(bit<8> v) { hdr.h.b = v; }
  action drop_pkt() { mark_to_drop(); }
  table emark {
    key = { meta.mark : exact; }
    actions = { rewrite; drop_pkt; noop; }
    default_action = noop;
  }
  apply { emark.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, IngressC, EgressC, D);
)";

runtime::TableEntry exact8(uint64_t key, const char* action,
                           std::vector<BitVec> args) {
  runtime::TableEntry e;
  e.matches.push_back(runtime::FieldMatch::exact(BitVec(8, key)));
  e.actionName = action;
  e.actionArgs = std::move(args);
  return e;
}

TEST(MultiControl, InterpreterChainsControls) {
  auto checked = p4::loadProgramFromString(kTwoStageProgram);
  runtime::DeviceConfig config(checked);
  config.table("IngressC.classify")
      .insert(exact8(7, "set_mark", {BitVec(8, 1)}));
  config.table("EgressC.emark").insert(exact8(1, "rewrite", {BitVec(8, 0x99)}));
  sim::DataPlaneState state(checked);
  sim::Interpreter interp(checked, config, state);

  sim::Packet hit{{7, 0}, 0};
  sim::ExecResult r = interp.process(hit);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.field("hdr.h.b").toUint64(), 0x99u);

  sim::Packet miss{{8, 0}, 0};
  EXPECT_EQ(interp.process(miss).field("hdr.h.b").toUint64(), 0u);
}

TEST(MultiControl, MetadataFlowsBetweenControlsInAnalysis) {
  auto checked = p4::loadProgramFromString(kTwoStageProgram);
  core::FlayService service(checked);
  // emark keys on meta.mark, which classify's action writes: an update to
  // classify must re-specialize emark's hit condition (the dependency
  // closure of chained tables).
  const core::TableInfo& emark = service.analysis().table("EgressC.emark");
  service.applyUpdate(runtime::Update::insert(
      "EgressC.emark", exact8(1, "rewrite", {BitVec(8, 0x99)})));
  // With classify empty, meta.mark is constant 0: emark can never hit.
  EXPECT_TRUE(
      service.arena().isFalse(service.specialized(emark.hitPoint)));

  auto verdict = service.applyUpdate(runtime::Update::insert(
      "IngressC.classify", exact8(7, "set_mark", {BitVec(8, 1)})));
  // The classify update flips emark's hit from constant-false to a packet
  // condition: both the expression and the decision change downstream.
  EXPECT_TRUE(verdict.expressionsChanged);
  bool emarkChanged = false;
  for (uint32_t id : verdict.changedPoints) {
    emarkChanged |= id == emark.hitPoint;
  }
  EXPECT_TRUE(emarkChanged)
      << "cross-control dependency closure must reach emark";
  EXPECT_FALSE(
      service.arena().isFalse(service.specialized(emark.hitPoint)));
}

TEST(MultiControl, SpecializerRemovesEmptyTablesInBothControls) {
  auto checked = p4::loadProgramFromString(kTwoStageProgram);
  core::FlayService service(checked);
  auto result = core::Specializer(service).specialize();
  EXPECT_EQ(result.stats.removedTables, 2u);
  EXPECT_TRUE(result.program.controls[0].tables.empty());
  EXPECT_TRUE(result.program.controls[1].tables.empty());
}

TEST(MultiControl, DifferentialAcrossControls) {
  auto checked = p4::loadProgramFromString(kTwoStageProgram);
  core::FlayService service(checked);
  service.applyUpdate(runtime::Update::insert(
      "IngressC.classify", exact8(7, "set_mark", {BitVec(8, 1)})));
  service.applyUpdate(runtime::Update::insert(
      "EgressC.emark", exact8(1, "drop_pkt", {})));

  auto result = core::Specializer(service).specialize();
  p4::CheckedProgram specialized = core::recheck(std::move(result.program));
  runtime::DeviceConfig migrated =
      core::migrateConfig(specialized, service.config());
  sim::DataPlaneState s1(checked), s2(specialized);
  sim::Interpreter orig(checked, service.config(), s1);
  sim::Interpreter spec(specialized, migrated, s2);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    sim::Packet p{{static_cast<uint8_t>(rng()), static_cast<uint8_t>(rng())},
                  0};
    sim::ExecResult a = orig.process(p);
    sim::ExecResult b = spec.process(p);
    ASSERT_EQ(a.dropped, b.dropped) << i;
    if (!a.dropped) ASSERT_EQ(a.outputBytes, b.outputBytes) << i;
  }
}

TEST(MultiControl, CrossControlDependencyForcesLaterStage) {
  auto checked = p4::loadProgramFromString(kTwoStageProgram);
  tofino::PipelineCompiler compiler;
  tofino::CompileResult r = compiler.compile(checked);
  ASSERT_TRUE(r.fits);
  // emark reads meta.mark written by classify: strictly later stage.
  uint32_t classifyStage = 0, emarkStage = 0;
  for (size_t s = 0; s < r.stageAssignment.size(); ++s) {
    for (const auto& name : r.stageAssignment[s]) {
      if (name == "IngressC.classify") classifyStage = s + 1;
      if (name == "EgressC.emark") emarkStage = s + 1;
    }
  }
  EXPECT_GT(emarkStage, classifyStage);
}

TEST(MultiControl, SwitchProgramHasWorkingEgress) {
  auto checked = p4::loadProgramFromFile(net::programPath("switch"));
  ASSERT_EQ(checked.program.pipeline.controlNames.size(), 2u);
  core::FlayService service(checked);
  // Egress tables are configurable.
  EXPECT_TRUE(service.config().hasTable("SwitchEgress.egress_acl"));
  EXPECT_TRUE(service.config().hasTable("SwitchEgress.egress_vlan"));
  // Both egress tables specialize away when empty.
  auto result = core::Specializer(service).specialize();
  EXPECT_TRUE(result.program.controls[1].tables.empty());
}

}  // namespace
}  // namespace flay
