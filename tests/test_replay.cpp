// Tests for the live replay harness: packet-level SLO accounting under real
// control-plane churn, degraded-mode forwarding on the pinned program, the
// post-hoc misroute oracle, and quarantine re-admission mid-replay. The
// interleaving of packets against churn is real concurrency, so these tests
// assert the invariants that hold at every interleaving (gates, accounting
// consistency, convergence) and never exact packet counts.

#include "replay/replay.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/workloads.h"
#include "obs/obs.h"

namespace flay::replay {
namespace {

p4::CheckedProgram load(const char* name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

/// Small, fast baseline options; tests override what they probe.
ReplayOptions smallOptions() {
  ReplayOptions opts;
  opts.devices = 2;
  opts.packets = 2000;
  opts.updates = 24;
  opts.jobs = 2;
  opts.seed = 1;
  opts.windowPackets = 512;
  opts.cooldownPackets = 300;
  opts.oracleSampleEvery = 64;
  opts.recovery.backoffBaseMicros = 200;
  opts.recovery.backoffMaxMicros = 2000;
  opts.maxRecoveryRounds = 20000;
  opts.deviceCompiler.searchIterations = 32;
  return opts;
}

/// The per-packet accounting and the per-window series must agree exactly:
/// windows are flushed by the same thread that counts, so any mismatch is a
/// lost or double-counted packet.
void expectWindowConsistency(const DeviceReplayStats& d) {
  uint64_t packets = 0, stale = 0, degraded = 0, drops = 0;
  uint64_t maxUpd = 0, maxUs = 0;
  for (const WindowStats& w : d.windows) {
    packets += w.packets;
    stale += w.stalePackets;
    degraded += w.degradedPackets;
    drops += w.policyDrops;
    maxUpd = std::max(maxUpd, w.maxStalenessUpdates);
    maxUs = std::max(maxUs, w.maxStalenessMicros);
  }
  EXPECT_EQ(packets, d.packets) << d.name;
  EXPECT_EQ(stale, d.stalePackets) << d.name;
  EXPECT_EQ(degraded, d.degradedPackets) << d.name;
  EXPECT_EQ(drops, d.policyDrops) << d.name;
  EXPECT_EQ(maxUpd, d.maxStalenessUpdates) << d.name;
  EXPECT_EQ(maxUs, d.maxStalenessMicros) << d.name;
}

TEST(Replay, CleanChurnPassesEveryGate) {
  p4::CheckedProgram checked = load("middleblock");
  LiveReplayHarness harness(checked, smallOptions());
  ReplayReport report = harness.run();

  EXPECT_TRUE(report.ok) << describeReport(report);
  EXPECT_TRUE(report.fleetConverged);
  EXPECT_GE(report.totalPackets, 2000u);
  EXPECT_EQ(report.misroutes, 0u);
  EXPECT_EQ(report.postConvergenceStale, 0u);
  EXPECT_GT(report.oracleSamples, 0u);
  ASSERT_EQ(report.devices.size(), 2u);
  for (const DeviceReplayStats& d : report.devices) {
    EXPECT_TRUE(d.converged) << d.name;
    EXPECT_GE(d.versionsAdopted, 1u) << d.name;
    EXPECT_GT(d.postConvergencePackets, 0u) << d.name;
    EXPECT_TRUE(d.forwardingError.empty()) << d.forwardingError;
    expectWindowConsistency(d);
  }
}

// PR 3's degradation invariant at packet level: during a sustained install
// outage the device pins its last-good program and packets KEEP FLOWING —
// served by a version marked degraded, counted stale exactly as far as the
// committed-epoch gap says — and after the fleet re-admits the member, no
// packet is stale again and the post-hoc oracle confirms every served
// version was packet-equivalent to the original program.
TEST(Replay, OutageDegradedModeKeepsForwardingThenReconverges) {
  p4::CheckedProgram checked = load("middleblock");
  ReplayOptions opts = smallOptions();
  // Installs 2..11 fail: the first failed recompile (5 attempts) degrades
  // the device; fleet re-admission burns the rest of the window.
  opts.faultPlan = controller::FaultPlan::parse("outage=2+10");
  opts.updates = 32;
  LiveReplayHarness harness(checked, opts);
  ReplayReport report = harness.run();

  EXPECT_TRUE(report.ok) << describeReport(report);
  EXPECT_TRUE(report.fleetConverged);
  EXPECT_EQ(report.misroutes, 0u);
  EXPECT_EQ(report.postConvergenceStale, 0u);
  // The outage is deterministic in install numbers, so every device
  // degraded at least once and was re-admitted by tryRecoverAll.
  EXPECT_GE(report.readmissions, static_cast<uint64_t>(opts.devices));
  EXPECT_GE(report.readmissionAttempts, report.readmissions);
  for (const DeviceReplayStats& d : report.devices) {
    EXPECT_GE(d.recoveries, 1u) << d.name;
    EXPECT_TRUE(d.converged) << d.name;
    expectWindowConsistency(d);
  }
  // Packets flowed during the degraded episode (forwarded by the pinned
  // program), and each one was stale-stamped: the harness's staleness
  // metric must cover at least the degraded packets that had backlog.
  uint64_t degraded = 0;
  for (const DeviceReplayStats& d : report.devices) degraded += d.degradedPackets;
  EXPECT_GT(degraded, 0u) << describeReport(report);
  EXPECT_GT(report.stalePackets, 0u);
  EXPECT_GT(report.maxStalenessUpdates, 0u);
}

// Satellite regression: a flaky member (probabilistic install failures) that
// happens to degrade mid-replay is re-admitted by the backoff policy while
// the rest of the fleet keeps serving; whether or not the flake fired, the
// run must end converged with zero misroutes.
TEST(Replay, FlakyFleetConvergesWithZeroMisroutes) {
  p4::CheckedProgram checked = load("middleblock");
  ReplayOptions opts = smallOptions();
  opts.faultPlan = controller::FaultPlan::parse("flaky=0.5,seed=7");
  opts.updates = 32;
  LiveReplayHarness harness(checked, opts);
  ReplayReport report = harness.run();

  EXPECT_TRUE(report.ok) << describeReport(report);
  EXPECT_TRUE(report.fleetConverged);
  EXPECT_EQ(report.misroutes, 0u);
  EXPECT_EQ(report.postConvergenceStale, 0u);
  // Every degraded episode that occurred must have been closed by a
  // readmission (converged fleet), never by giving up.
  EXPECT_EQ(report.readmissions >= 1, report.recoveries >= 1);
}

TEST(Replay, TrafficMixesShareTheGates) {
  p4::CheckedProgram checked = load("middleblock");
  for (net::TrafficMix mix : net::allMixes()) {
    ReplayOptions opts = smallOptions();
    opts.mix = mix;
    opts.packets = 1200;
    opts.updates = 12;
    opts.cooldownPackets = 200;
    LiveReplayHarness harness(checked, opts);
    ReplayReport report = harness.run();
    EXPECT_TRUE(report.ok) << net::mixName(mix) << "\n"
                           << describeReport(report);
    EXPECT_EQ(report.misroutes, 0u) << net::mixName(mix);
  }
}

TEST(Replay, ReportMetricsCarryTheGateSignals) {
  p4::CheckedProgram checked = load("middleblock");
  ReplayOptions opts = smallOptions();
  opts.packets = 1200;
  opts.updates = 12;
  opts.cooldownPackets = 200;
  LiveReplayHarness harness(checked, opts);
  ReplayReport report = harness.run();

  auto metrics = reportMetrics(report);
  auto find = [&](const std::string& key) -> const double* {
    for (const auto& [k, v] : metrics) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  for (const char* key :
       {"ok", "packets", "misroutes", "post_convergence_stale", "converged",
        "stale_packets", "max_staleness_updates", "max_staleness_us",
        "install_lag_us_p99", "dropped_updates", "readmissions"}) {
    ASSERT_NE(find(key), nullptr) << key;
  }
  EXPECT_EQ(*find("ok"), report.ok ? 1 : 0);
  EXPECT_EQ(*find("packets"), static_cast<double>(report.totalPackets));
  EXPECT_EQ(*find("misroutes"), 0);
  // Per-window rows exist for each device, with the row cap made explicit.
  for (const DeviceReplayStats& d : report.devices) {
    ASSERT_NE(find("window." + d.name + ".windows_total"), nullptr) << d.name;
    ASSERT_NE(find("window." + d.name + ".windows_reported"), nullptr);
  }
  EXPECT_FALSE(describeReport(report).empty());
}

}  // namespace
}  // namespace flay::replay
