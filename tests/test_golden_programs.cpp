// Golden corpus: the normalized rendering of every bundled program is
// pinned to a checked-in .golden file, so any parser/typechecker/printer
// change that alters how the corpus is understood shows up as a readable
// text diff in review instead of a silent behavior change.
//
// Regenerate after an intentional change with:
//   FLAY_UPDATE_GOLDEN=1 ./test_golden_programs

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "net/workloads.h"
#include "p4/printer.h"
#include "p4/typecheck.h"

namespace flay::p4 {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(FLAY_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class GoldenProgramTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenProgramTest, ParseTypecheckPrintMatchesGolden) {
  const std::string name = GetParam();
  CheckedProgram checked = loadProgramFromFile(net::programPath(name));
  std::string printed = printProgram(checked.program);

  if (std::getenv("FLAY_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath(name), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << goldenPath(name);
    out << printed;
    GTEST_SKIP() << "regenerated " << goldenPath(name);
  }

  std::string expected = readFileOrEmpty(goldenPath(name));
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << goldenPath(name)
      << " — regenerate with FLAY_UPDATE_GOLDEN=1";
  EXPECT_EQ(printed, expected)
      << "normalized rendering of '" << name
      << "' drifted from its golden file; if intentional, regenerate with "
         "FLAY_UPDATE_GOLDEN=1";
}

// The golden rendering must itself be a fixpoint: reparsing and reprinting
// it yields the same text, so goldens stay stable under repeated passes.
TEST_P(GoldenProgramTest, GoldenRenderingIsAFixpoint) {
  CheckedProgram checked = loadProgramFromFile(net::programPath(GetParam()));
  std::string printed = printProgram(checked.program);
  CheckedProgram reparsed = loadProgramFromString(printed);
  EXPECT_EQ(printProgram(reparsed.program), printed);
  EXPECT_EQ(reparsed.program.statementCount(),
            checked.program.statementCount());
  EXPECT_EQ(reparsed.env.fields().size(), checked.env.fields().size());
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, GoldenProgramTest,
                         ::testing::Values("scion", "switch", "middleblock",
                                           "dash", "beaucoup", "accturbo",
                                           "dta"));

}  // namespace
}  // namespace flay::p4
