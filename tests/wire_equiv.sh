#!/bin/sh
# Transport-equivalence test for the fleet controller.
#
#   wire_equiv.sh <path-to-flayc> <programs-dir>
#
# The socket transport's contract is that it is observably identical to the
# in-process path: the same program, update stream, and fleet shape must
# produce byte-identical per-device state digests and fleet digests whether
# devices are driven by direct calls or by agents speaking the versioned
# wire protocol. This runs `flayc fleet` under both transports (and a
# degenerate 1-update-per-batch pipelining variant) and diffs the digest
# lines, plus one daemon/agent run across real processes whose digest must
# match the single-process fleet's per-device digest.
set -u

FLAYC=$1
PROGRAMS=$2
TMP=${TMPDIR:-/tmp}/wire_equiv.$$
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

failures=0
note() { printf '%s\n' "$*"; }
fail() { note "FAIL: $*"; failures=$((failures + 1)); }

# digests <out-file>: just the state-digest summary line (the transport-
# independent part of the output; throughput lines obviously differ).
digests() { grep "state digests" "$1"; }

compare() {
  label=$1; shift
  "$FLAYC" fleet "$@" --transport inproc >"$TMP/inproc.out" 2>&1 || {
    fail "$label: inproc run failed"
    return
  }
  for variant in "--transport socket"; do
    # shellcheck disable=SC2086
    "$FLAYC" fleet "$@" $variant >"$TMP/socket.out" 2>&1 || {
      fail "$label ($variant): run failed"
      continue
    }
    if [ "$(digests "$TMP/inproc.out")" != "$(digests "$TMP/socket.out")" ]; then
      fail "$label: digests differ with $variant"
      diff "$TMP/inproc.out" "$TMP/socket.out" | head -10
    else
      note "ok: $label digests identical with $variant"
    fi
  done
}

for prog in middleblock switch; do
  compare "fleet $prog" \
    "$PROGRAMS/$prog.p4l" --updates 30 --devices 3 --jobs 2 --seed 1
done
compare "fleet middleblock faulty" \
  "$PROGRAMS/middleblock.p4l" --updates 24 --devices 2 --seed 2 \
  --fault-plan flaky
compare "fleet scion" \
  "$PROGRAMS/scion.p4l" --updates 20 --devices 2 --seed 3

# Cross-process: a daemon driving two spawned `flayc agent` processes must
# land on the same per-device digest as the in-process fleet over the same
# script (same program, updates, seed).
SOCK="$TMP/flayd.sock"
"$FLAYC" daemon "$PROGRAMS/middleblock.p4l" --listen "$SOCK" \
    --devices 2 --updates 30 --seed 1 --spawn >"$TMP/daemon.out" 2>&1 || {
  fail "daemon --spawn run failed"
  cat "$TMP/daemon.out"
}
"$FLAYC" fleet "$PROGRAMS/middleblock.p4l" \
    --updates 30 --devices 2 --seed 1 >"$TMP/fleet.out" 2>&1 || {
  fail "fleet reference run failed"
}
DAEMON_DIGEST=$(sed -n 's/.*digest \([0-9a-f]*\)$/\1/p' "$TMP/daemon.out")
FLEET_DIGEST=$(sed -n 's/.*identical (\([0-9a-f]*\)).*/\1/p' "$TMP/fleet.out")
if [ -z "$DAEMON_DIGEST" ] || [ "$DAEMON_DIGEST" != "$FLEET_DIGEST" ]; then
  fail "daemon digest '$DAEMON_DIGEST' != fleet digest '$FLEET_DIGEST'"
else
  note "ok: daemon/agent processes digest identical to in-process fleet"
fi

if [ "$failures" -ne 0 ]; then
  note "$failures check(s) failed"
  exit 1
fi
note "all transport equivalence checks passed"
