#include <gtest/gtest.h>

#include "net/headers.h"
#include "p4/typecheck.h"
#include "sim/interpreter.h"

namespace flay::sim {
namespace {

using runtime::FieldMatch;
using runtime::TableEntry;

const char* kL2L3Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
  bit<16> id; bit<3> flags; bit<13> frag;
  bit<8> ttl; bit<8> proto; bit<16> csum;
  bit<32> src; bit<32> dst;
}
struct headers { eth_t eth; ipv4_t ipv4; }

parser P {
  state start {
    extract(hdr.eth);
    transition select(hdr.eth.type) {
      0x800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 { extract(hdr.ipv4); transition accept; }
}

control Ingress {
  register<bit<32>>(64) pkt_count;
  counter(16) port_ctr;
  action set_port(bit<9> port) { sm.egress_spec = port; }
  action drop_pkt() { mark_to_drop(); }
  table fwd {
    key = { hdr.ipv4.dst : lpm; }
    actions = { set_port; drop_pkt; noop; }
    default_action = drop_pkt;
  }
  apply {
    if (hdr.ipv4.isValid()) {
      fwd.apply();
      hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
      if (hdr.ipv4.ttl == 0) { mark_to_drop(); }
      bit<32> c = 0;
      pkt_count.read(c, 0);
      pkt_count.write(0, c + 1);
    } else {
      set_port(1);
    }
    port_ctr.count((bit<32>) sm.ingress_port);
  }
}

deparser D { emit(hdr.eth); emit(hdr.ipv4); }
pipeline(P, Ingress, D);
)";

class SimTest : public ::testing::Test {
 protected:
  SimTest()
      : checked(p4::loadProgramFromString(kL2L3Program)),
        config(checked),
        state(checked),
        interp(checked, config, state) {}

  Packet ipv4Packet(uint32_t dst, uint8_t ttl = 64) {
    net::Ipv4Header ip;
    ip.dst = dst;
    ip.ttl = ttl;
    net::EthHeader eth;
    eth.type = 0x800;
    Packet p;
    p.bytes = net::PacketBuilder().eth(eth).ipv4(ip).build();
    return p;
  }

  void installRoute(uint32_t prefix, uint32_t plen, uint16_t port) {
    TableEntry e;
    e.matches.push_back(FieldMatch::lpm(BitVec(32, prefix), plen));
    e.actionName = "set_port";
    e.actionArgs.push_back(BitVec(9, port));
    config.table("Ingress.fwd").insert(std::move(e));
  }

  p4::CheckedProgram checked;
  runtime::DeviceConfig config;
  DataPlaneState state;
  Interpreter interp;
};

TEST_F(SimTest, NonIpv4TakesElseBranch) {
  net::EthHeader eth;
  eth.type = 0x806;  // ARP: parser skips ipv4
  Packet p;
  p.bytes = net::PacketBuilder().eth(eth).build();
  ExecResult r = interp.process(p);
  EXPECT_TRUE(r.parserAccepted);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.egressPort, 1u);
  EXPECT_EQ(r.field("hdr.ipv4.$valid").toUint64(), 0u);
}

TEST_F(SimTest, Ipv4MissDefaultDrops) {
  ExecResult r = interp.process(ipv4Packet(0x0A000001));
  EXPECT_TRUE(r.dropped);
}

TEST_F(SimTest, Ipv4HitForwardsAndDecrementsTtl) {
  installRoute(0x0A000000, 8, 3);
  ExecResult r = interp.process(ipv4Packet(0x0A000001, 64));
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(r.egressPort, 3u);
  EXPECT_EQ(r.field("hdr.ipv4.ttl").toUint64(), 63u);
}

TEST_F(SimTest, TtlExpiryDrops) {
  installRoute(0x0A000000, 8, 3);
  ExecResult r = interp.process(ipv4Packet(0x0A000001, 1));
  EXPECT_TRUE(r.dropped);
}

TEST_F(SimTest, LongestPrefixPreferred) {
  installRoute(0x0A000000, 8, 3);
  installRoute(0x0A010000, 16, 4);
  EXPECT_EQ(interp.process(ipv4Packet(0x0A010001)).egressPort, 4u);
  EXPECT_EQ(interp.process(ipv4Packet(0x0A020001)).egressPort, 3u);
}

TEST_F(SimTest, RegistersPersistAcrossPackets) {
  installRoute(0x0A000000, 8, 3);
  interp.process(ipv4Packet(0x0A000001));
  interp.process(ipv4Packet(0x0A000002));
  interp.process(ipv4Packet(0x0A000003));
  EXPECT_EQ(state.registerRead("Ingress.pkt_count", 0).toUint64(), 3u);
}

TEST_F(SimTest, CountersTrackIngressPort) {
  Packet p = ipv4Packet(0x0A000001);
  p.ingressPort = 5;
  interp.process(p);
  interp.process(p);
  EXPECT_EQ(state.counterValue("Ingress.port_ctr", 5), 2u);
  EXPECT_EQ(state.counterValue("Ingress.port_ctr", 4), 0u);
}

TEST_F(SimTest, TruncatedPacketRejected) {
  Packet p;
  p.bytes = {0xAA, 0xBB};  // far too short for an ethernet header
  ExecResult r = interp.process(p);
  EXPECT_FALSE(r.parserAccepted);
  EXPECT_TRUE(r.dropped);
}

TEST_F(SimTest, DeparserRoundTripsHeaders) {
  installRoute(0x0A000000, 8, 3);
  Packet p = ipv4Packet(0x0A000001, 64);
  ExecResult r = interp.process(p);
  ASSERT_EQ(r.outputBytes.size(), p.bytes.size());
  // Everything before the TTL byte (offset 14+8) is unchanged.
  for (size_t i = 0; i < 22; ++i) {
    EXPECT_EQ(r.outputBytes[i], p.bytes[i]) << "byte " << i;
  }
  EXPECT_EQ(r.outputBytes[22], 63);  // decremented TTL
}

TEST_F(SimTest, ParserFieldExtractionIsExact) {
  net::EthHeader eth;
  eth.dst = 0x112233445566;
  eth.src = 0xAABBCCDDEEFF;
  eth.type = 0x800;
  net::Ipv4Header ip;
  ip.src = 0xC0A80101;
  ip.dst = 0x08080808;
  ip.proto = 17;
  Packet p;
  p.bytes = net::PacketBuilder().eth(eth).ipv4(ip).build();
  ExecResult r = interp.process(p);
  EXPECT_EQ(r.field("hdr.eth.dst").toUint64(), 0x112233445566u);
  EXPECT_EQ(r.field("hdr.eth.src").toUint64(), 0xAABBCCDDEEFFu);
  EXPECT_EQ(r.field("hdr.ipv4.src").toUint64(), 0xC0A80101u);
  EXPECT_EQ(r.field("hdr.ipv4.dst").toUint64(), 0x08080808u);
  EXPECT_EQ(r.field("hdr.ipv4.proto").toUint64(), 17u);
  EXPECT_EQ(r.field("hdr.ipv4.version").toUint64(), 4u);
  EXPECT_EQ(r.field("hdr.ipv4.ihl").toUint64(), 5u);
}

TEST(SimParts, BitReaderWriterRoundTrip) {
  BitWriter w;
  w.write(BitVec(4, 0xA));
  w.write(BitVec(12, 0xBCD));
  w.write(BitVec(48, 0x112233445566));
  auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 8u);
  BitReader r(bytes);
  BitVec v;
  ASSERT_TRUE(r.read(4, v));
  EXPECT_EQ(v.toUint64(), 0xAu);
  ASSERT_TRUE(r.read(12, v));
  EXPECT_EQ(v.toUint64(), 0xBCDu);
  ASSERT_TRUE(r.read(48, v));
  EXPECT_EQ(v.toUint64(), 0x112233445566u);
  EXPECT_FALSE(r.read(8, v));
}

TEST(SimParts, InternetChecksum) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 -> csum 0x220d
  std::vector<uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(net::internetChecksum(data, 0, data.size()), 0x220Du);
}

// Value-set driven parser branches.
TEST(SimValueSet, ParserValueSetControlsBranch) {
  auto checked = p4::loadProgramFromString(R"(
header e_t { bit<16> tag; bit<8> body; }
struct headers { e_t e; }
parser P {
  value_set<bit<16>>(4) special;
  state start {
    extract(hdr.e);
    transition select(hdr.e.tag) {
      special: mark;
      default: accept;
    }
  }
  state mark { transition accept; }
}
control C {
  apply { sm.egress_spec = 2; }
}
deparser D { emit(hdr.e); }
pipeline(P, C, D);
)");
  runtime::DeviceConfig config(checked);
  DataPlaneState state(checked);
  Interpreter interp(checked, config, state);

  Packet p;
  p.bytes = {0x81, 0x00, 0x42};
  EXPECT_TRUE(interp.process(p).parserAccepted);

  config.valueSet("P.special").insert(BitVec(16, 0x8100));
  ExecResult r = interp.process(p);
  EXPECT_TRUE(r.parserAccepted);  // goes through 'mark' now
}

// Select with no matching case and no default rejects.
TEST(SimValueSet, SelectWithoutDefaultRejects) {
  auto checked = p4::loadProgramFromString(R"(
header e_t { bit<16> tag; }
struct headers { e_t e; }
parser P {
  state start {
    extract(hdr.e);
    transition select(hdr.e.tag) {
      0x800: accept;
    }
  }
}
control C { apply { } }
deparser D { emit(hdr.e); }
pipeline(P, C, D);
)");
  runtime::DeviceConfig config(checked);
  DataPlaneState state(checked);
  Interpreter interp(checked, config, state);
  Packet hit;
  hit.bytes = {0x08, 0x00};
  EXPECT_TRUE(interp.process(hit).parserAccepted);
  Packet miss;
  miss.bytes = {0x12, 0x34};
  EXPECT_FALSE(interp.process(miss).parserAccepted);
}

TEST(SimExit, ExitStopsControl) {
  auto checked = p4::loadProgramFromString(R"(
header e_t { bit<8> a; }
struct headers { e_t e; }
parser P { state start { extract(hdr.e); transition accept; } }
control C {
  apply {
    sm.egress_spec = 1;
    if (hdr.e.a == 7) { exit; }
    sm.egress_spec = 2;
  }
}
deparser D { emit(hdr.e); }
pipeline(P, C, D);
)");
  runtime::DeviceConfig config(checked);
  DataPlaneState state(checked);
  Interpreter interp(checked, config, state);
  Packet p7{{7}, 0};
  EXPECT_EQ(interp.process(p7).egressPort, 1u);
  Packet p8{{8}, 0};
  EXPECT_EQ(interp.process(p8).egressPort, 2u);
}

TEST(SimMeter, MeterColorGatesTraffic) {
  auto checked = p4::loadProgramFromString(R"(
header e_t { bit<8> a; }
struct headers { e_t e; }
parser P { state start { extract(hdr.e); transition accept; } }
control C {
  meter(8) m;
  apply {
    sm.egress_spec = 1;
    bit<2> color = 0;
    m.execute(color, (bit<32>) hdr.e.a);
    if (color == 2) { mark_to_drop(); }
  }
}
deparser D { emit(hdr.e); }
pipeline(P, C, D);
)");
  runtime::DeviceConfig config(checked);
  DataPlaneState state(checked);
  Interpreter interp(checked, config, state);
  Packet p{{3}, 0};
  EXPECT_FALSE(interp.process(p).dropped);
  state.meterSetColor("C.m", 3, 2);  // red
  EXPECT_TRUE(interp.process(p).dropped);
}

TEST(SimHeaderOps, SetValidAndInvalid) {
  auto checked = p4::loadProgramFromString(R"(
header a_t { bit<8> x; }
header b_t { bit<8> y; }
struct headers { a_t a; b_t b; }
parser P { state start { extract(hdr.a); transition accept; } }
control C {
  apply {
    hdr.b.setValid();
    hdr.b.y = 0x55;
    if (hdr.a.x == 9) { hdr.a.setInvalid(); }
    sm.egress_spec = 1;
  }
}
deparser D { emit(hdr.a); emit(hdr.b); }
pipeline(P, C, D);
)");
  runtime::DeviceConfig config(checked);
  DataPlaneState state(checked);
  Interpreter interp(checked, config, state);
  Packet p{{0x11}, 0};
  ExecResult r = interp.process(p);
  ASSERT_EQ(r.outputBytes.size(), 2u);  // a + b emitted
  EXPECT_EQ(r.outputBytes[0], 0x11);
  EXPECT_EQ(r.outputBytes[1], 0x55);
  Packet p9{{9}, 0};
  ExecResult r9 = interp.process(p9);
  ASSERT_EQ(r9.outputBytes.size(), 1u);  // a invalidated, only b emitted
  EXPECT_EQ(r9.outputBytes[0], 0x55);
}

}  // namespace
}  // namespace flay::sim
