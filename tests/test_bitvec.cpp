#include "support/bitvec.h"

#include <gtest/gtest.h>

#include <random>

namespace flay {
namespace {

TEST(BitVec, ConstructionTruncates) {
  BitVec v(8, 0x1FF);
  EXPECT_EQ(v.toUint64(), 0xFFu);
  EXPECT_EQ(v.width(), 8u);
}

TEST(BitVec, ZeroWidth) {
  BitVec v(0, 0);
  EXPECT_TRUE(v.isZero());
  EXPECT_EQ(v.width(), 0u);
  EXPECT_EQ(v, BitVec::zero(0));
}

TEST(BitVec, AllOnes) {
  EXPECT_EQ(BitVec::allOnes(8).toUint64(), 0xFFu);
  EXPECT_EQ(BitVec::allOnes(64).toUint64(), ~uint64_t{0});
  BitVec wide = BitVec::allOnes(100);
  EXPECT_TRUE(wide.isAllOnes());
  EXPECT_EQ(wide.countOnes(), 100u);
}

TEST(BitVec, ParseBases) {
  EXPECT_EQ(BitVec::parse(16, "255").toUint64(), 255u);
  EXPECT_EQ(BitVec::parse(16, "0xff").toUint64(), 255u);
  EXPECT_EQ(BitVec::parse(16, "0xFF").toUint64(), 255u);
  EXPECT_EQ(BitVec::parse(16, "0b1010").toUint64(), 10u);
  EXPECT_EQ(BitVec::parse(16, "0o17").toUint64(), 15u);
  EXPECT_EQ(BitVec::parse(32, "1_000_000").toUint64(), 1000000u);
}

TEST(BitVec, ParseWideHex) {
  BitVec v = BitVec::parse(128, "0xDEADBEEF00112233445566778899AABB");
  EXPECT_EQ(v.toHexString(), "0xdeadbeef00112233445566778899aabb");
}

TEST(BitVec, ParseRejectsBadDigits) {
  EXPECT_THROW(BitVec::parse(8, "12z"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0b12"), std::invalid_argument);
}

TEST(BitVec, ParseRejectsDigitlessLiterals) {
  // Previously these silently parsed as 0.
  EXPECT_THROW(BitVec::parse(8, ""), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0x"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0X"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0b"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0o"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "_"), std::invalid_argument);
  EXPECT_THROW(BitVec::parse(8, "0x__"), std::invalid_argument);
  // A lone zero and underscore-separated digits still parse.
  EXPECT_EQ(BitVec::parse(8, "0").toUint64(), 0u);
  EXPECT_EQ(BitVec::parse(8, "0x0").toUint64(), 0u);
  EXPECT_EQ(BitVec::parse(8, "0_1").toUint64(), 1u);
}

TEST(BitVec, AddWraps) {
  BitVec a(8, 0xFF);
  EXPECT_EQ(a.add(BitVec(8, 1)).toUint64(), 0u);
  EXPECT_EQ(a.add(BitVec(8, 2)).toUint64(), 1u);
}

TEST(BitVec, AddCarriesAcrossWords) {
  BitVec a = BitVec::allOnes(65);
  BitVec r = a.add(BitVec(65, 1));
  EXPECT_TRUE(r.isZero());
  BitVec b(65, ~uint64_t{0});
  BitVec r2 = b.add(BitVec(65, 1));
  EXPECT_TRUE(r2.bit(64));
  EXPECT_EQ(r2.countOnes(), 1u);
}

TEST(BitVec, SubAndNeg) {
  BitVec a(8, 5);
  EXPECT_EQ(a.sub(BitVec(8, 7)).toUint64(), 0xFEu);  // -2 mod 256
  EXPECT_EQ(a.neg().toUint64(), 251u);
  EXPECT_EQ(BitVec::zero(8).neg().toUint64(), 0u);
}

TEST(BitVec, MulWide) {
  BitVec a(128, ~uint64_t{0});
  BitVec r = a.mul(a);  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(r.slice(63, 0).toUint64(), 1u);
  BitVec hi = r.slice(127, 64);
  EXPECT_EQ(hi.toUint64(), ~uint64_t{0} - 1);
}

TEST(BitVec, DivisionBasics) {
  EXPECT_EQ(BitVec(16, 100).udiv(BitVec(16, 7)).toUint64(), 14u);
  EXPECT_EQ(BitVec(16, 100).urem(BitVec(16, 7)).toUint64(), 2u);
  // Division by zero: SMT-LIB semantics.
  EXPECT_TRUE(BitVec(16, 100).udiv(BitVec(16, 0)).isAllOnes());
  EXPECT_EQ(BitVec(16, 100).urem(BitVec(16, 0)).toUint64(), 100u);
}

TEST(BitVec, DivModIdentity) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 200; ++i) {
    uint32_t w = 1 + static_cast<uint32_t>(rng() % 64);
    BitVec a(w, rng());
    BitVec b(w, rng());
    if (b.isZero()) continue;
    BitVec q = a.udiv(b);
    BitVec r = a.urem(b);
    EXPECT_TRUE(r.ult(b));
    EXPECT_EQ(q.mul(b).add(r), a) << "width " << w;
  }
}

TEST(BitVec, Shifts) {
  BitVec a(8, 0b1011);
  EXPECT_EQ(a.shl(2).toUint64(), 0b101100u);
  EXPECT_EQ(a.lshr(1).toUint64(), 0b101u);
  EXPECT_TRUE(a.shl(8).isZero());
  EXPECT_TRUE(a.lshr(8).isZero());
  EXPECT_TRUE(a.shl(200).isZero());
}

TEST(BitVec, ShiftsAcrossWords) {
  BitVec one = BitVec::one(128);
  BitVec shifted = one.shl(100);
  EXPECT_TRUE(shifted.bit(100));
  EXPECT_EQ(shifted.countOnes(), 1u);
  EXPECT_EQ(shifted.lshr(100), one);
}

TEST(BitVec, Comparisons) {
  BitVec a(16, 100);
  BitVec b(16, 200);
  EXPECT_TRUE(a.ult(b));
  EXPECT_FALSE(b.ult(a));
  EXPECT_FALSE(a.ult(a));
  EXPECT_TRUE(a.ule(a));
  EXPECT_TRUE(a.ule(b));
}

TEST(BitVec, WidthMismatchThrows) {
  EXPECT_THROW(BitVec(8, 1).add(BitVec(16, 1)), std::invalid_argument);
  EXPECT_THROW(BitVec(8, 1).ult(BitVec(9, 1)), std::invalid_argument);
}

TEST(BitVec, SliceZextTrunc) {
  BitVec v(16, 0xABCD);
  EXPECT_EQ(v.slice(7, 0).toUint64(), 0xCDu);
  EXPECT_EQ(v.slice(15, 8).toUint64(), 0xABu);
  EXPECT_EQ(v.slice(11, 4).toUint64(), 0xBCu);
  EXPECT_EQ(v.zext(32).toUint64(), 0xABCDu);
  EXPECT_EQ(v.zext(32).width(), 32u);
  EXPECT_EQ(v.trunc(8).toUint64(), 0xCDu);
}

TEST(BitVec, Concat) {
  BitVec hi(8, 0xAB);
  BitVec lo(8, 0xCD);
  BitVec c = hi.concat(lo);
  EXPECT_EQ(c.width(), 16u);
  EXPECT_EQ(c.toUint64(), 0xABCDu);
  // Concat then slice recovers the parts.
  EXPECT_EQ(c.slice(15, 8), hi);
  EXPECT_EQ(c.slice(7, 0), lo);
}

TEST(BitVec, PrefixMasks) {
  EXPECT_TRUE(BitVec::parse(8, "0b11110000").isPrefixMask());
  EXPECT_TRUE(BitVec::allOnes(8).isPrefixMask());
  EXPECT_TRUE(BitVec::zero(8).isPrefixMask());
  EXPECT_FALSE(BitVec::parse(8, "0b11010000").isPrefixMask());
  EXPECT_EQ(BitVec::parse(8, "0b11110000").leadingOnes(), 4u);
  EXPECT_EQ(BitVec::parse(32, "0xFFFFFF00").leadingOnes(), 24u);
}

TEST(BitVec, HexStringPadding) {
  EXPECT_EQ(BitVec(4, 0xA).toHexString(), "0xa");
  EXPECT_EQ(BitVec(16, 0xA).toHexString(), "0x000a");
  EXPECT_EQ(BitVec(9, 0x1FF).toHexString(), "0x1ff");
}

TEST(BitVec, DecimalString) {
  EXPECT_EQ(BitVec(8, 0).toDecimalString(), "0");
  EXPECT_EQ(BitVec(32, 123456789).toDecimalString(), "123456789");
  // 2^100
  BitVec big = BitVec::one(101).shl(100);
  EXPECT_EQ(big.toDecimalString(), "1267650600228229401496703205376");
}

TEST(BitVec, HashAndEquality) {
  BitVec a(32, 7);
  BitVec b(32, 7);
  BitVec c(33, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);  // differing width
}

// Property sweep: algebraic identities across widths.
class BitVecWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVecWidthTest, AlgebraicIdentities) {
  uint32_t w = GetParam();
  std::mt19937_64 rng(w * 7919 + 1);
  for (int i = 0; i < 50; ++i) {
    BitVec a(w, rng());
    BitVec b(w, rng());
    EXPECT_EQ(a.add(b), b.add(a));
    EXPECT_EQ(a.add(b).sub(b), a);
    EXPECT_EQ(a.bitXor(a), BitVec::zero(w));
    EXPECT_EQ(a.bitAnd(a.bitNot()), BitVec::zero(w));
    EXPECT_EQ(a.bitOr(a.bitNot()), BitVec::allOnes(w));
    EXPECT_EQ(a.bitNot().bitNot(), a);
    EXPECT_EQ(a.neg().neg(), a);
    EXPECT_EQ(a.sub(b), a.add(b.neg()));
    // De Morgan.
    EXPECT_EQ(a.bitAnd(b).bitNot(), a.bitNot().bitOr(b.bitNot()));
  }
}

TEST_P(BitVecWidthTest, ShiftMulEquivalence) {
  uint32_t w = GetParam();
  std::mt19937_64 rng(w * 104729 + 3);
  for (int i = 0; i < 20; ++i) {
    BitVec a(w, rng());
    for (uint32_t sh = 0; sh < std::min(w, 8u); ++sh) {
      BitVec powerOfTwo = BitVec::one(w).shl(sh);
      EXPECT_EQ(a.shl(sh), a.mul(powerOfTwo)) << "w=" << w << " sh=" << sh;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecWidthTest,
                         ::testing::Values(1u, 7u, 8u, 9u, 16u, 32u, 48u, 63u,
                                           64u, 65u, 100u, 128u, 256u));

// clampShiftAmount maps a dynamic (BitVec-valued) shift amount to the
// uint32_t the arena/interpreter shifts by, with SMT-LIB semantics: any
// amount >= width collapses to `width` (shift everything out), never to a
// wrapped small amount.
TEST(ClampShiftAmount, InRangeAmountsPassThrough) {
  EXPECT_EQ(clampShiftAmount(BitVec(8, 0), 8), 0u);
  EXPECT_EQ(clampShiftAmount(BitVec(8, 3), 8), 3u);
  EXPECT_EQ(clampShiftAmount(BitVec(8, 7), 8), 7u);
  // Non-power-of-two width.
  EXPECT_EQ(clampShiftAmount(BitVec(8, 12), 13), 12u);
}

TEST(ClampShiftAmount, AtOrBeyondWidthCollapsesToWidth) {
  EXPECT_EQ(clampShiftAmount(BitVec(8, 8), 8), 8u);
  EXPECT_EQ(clampShiftAmount(BitVec(8, 9), 8), 8u);
  EXPECT_EQ(clampShiftAmount(BitVec(8, 255), 8), 8u);
  EXPECT_EQ(clampShiftAmount(BitVec(16, 13), 13), 13u);
  EXPECT_EQ(clampShiftAmount(BitVec(64, 1000), 33), 33u);
}

TEST(ClampShiftAmount, HugeAmountsDoNotWrap) {
  // 2^32 narrows to 0 under a naive uint32_t cast — "no shift", the exact
  // opposite of the SMT-LIB answer. The clamp must return `width`.
  EXPECT_EQ(clampShiftAmount(BitVec(64, uint64_t{1} << 32), 8), 8u);
  EXPECT_EQ(clampShiftAmount(BitVec(64, (uint64_t{1} << 32) + 3), 32), 32u);
  // Amounts too wide for uint64 at all.
  BitVec huge = BitVec::one(128).shl(100);
  EXPECT_FALSE(huge.fitsUint64());
  EXPECT_EQ(clampShiftAmount(huge, 8), 8u);
  EXPECT_EQ(clampShiftAmount(huge, 64), 64u);
}

TEST(ClampShiftAmount, WideBitVecThatStillFitsUint64) {
  // A 128-bit amount whose value is small must pass through unclamped.
  EXPECT_EQ(clampShiftAmount(BitVec(128, 5), 8), 5u);
}

}  // namespace
}  // namespace flay
