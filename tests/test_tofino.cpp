#include <gtest/gtest.h>

#include "p4/typecheck.h"
#include "tofino/compiler.h"

namespace flay::tofino {
namespace {

p4::CheckedProgram chainProgram(int chainLength) {
  // N tables where table i matches on what table i-1 wrote: the critical
  // path must equal N.
  std::string src = R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
struct metadata { bit<16> link; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action hop(bit<16> v) { meta.link = v; }
)";
  for (int i = 0; i < chainLength; ++i) {
    src += "  table t" + std::to_string(i) + " { key = { meta.link : exact; } "
           "actions = { hop; noop; } default_action = noop; size = 16; }\n";
  }
  src += "  apply {\n";
  for (int i = 0; i < chainLength; ++i) {
    src += "    t" + std::to_string(i) + ".apply();\n";
  }
  src += "  }\n}\ndeparser D { emit(hdr.h); }\npipeline(P, C, D);\n";
  return p4::loadProgramFromString(src);
}

TEST(TofinoCompiler, ChainLengthSetsStageCount) {
  for (int n : {1, 4, 10, 20}) {
    auto checked = chainProgram(n);
    PipelineCompiler compiler;
    CompileResult r = compiler.compile(checked);
    ASSERT_TRUE(r.fits) << r.error;
    EXPECT_EQ(r.stagesUsed, static_cast<uint32_t>(n)) << "chain " << n;
  }
}

TEST(TofinoCompiler, TooLongChainFailsToFit) {
  auto checked = chainProgram(21);  // model has 20 stages
  PipelineCompiler compiler;
  CompileResult r = compiler.compile(checked);
  EXPECT_FALSE(r.fits);
  EXPECT_NE(r.error.find("placement failed"), std::string::npos);
}

p4::CheckedProgram independentTablesProgram(int count, int entries) {
  // Independent tables with no mutual dependencies: stage count is driven
  // purely by per-stage resource limits.
  std::string src = R"(
header h_t { bit<32> a; bit<32> b; }
struct headers { h_t h; }
struct metadata {
)";
  for (int i = 0; i < count; ++i) {
    src += "  bit<16> m" + std::to_string(i) + ";\n";
  }
  src += R"(}
parser P { state start { extract(hdr.h); transition accept; } }
control C {
)";
  for (int i = 0; i < count; ++i) {
    std::string n = std::to_string(i);
    src += "  action a" + n + "(bit<16> v) { meta.m" + n + " = v; }\n";
    src += "  table t" + n + " { key = { hdr.h.a : ternary; } actions = { a" +
           n + "; noop; } default_action = noop; size = " +
           std::to_string(entries) + "; }\n";
  }
  src += "  apply {\n";
  for (int i = 0; i < count; ++i) {
    src += "    t" + std::to_string(i) + ".apply();\n";
  }
  src += "  }\n}\ndeparser D { emit(hdr.h); }\npipeline(P, C, D);\n";
  return p4::loadProgramFromString(src);
}

TEST(TofinoCompiler, ResourcePressureSpillsAcrossStages) {
  // Each ternary table needs 8 TCAM blocks (32b key, 4096 entries);
  // 48 per stage => 6 tables per stage. 18 tables => >= 3 stages.
  auto checked = independentTablesProgram(18, 4096);
  PipelineCompiler compiler;
  CompileResult r = compiler.compile(checked);
  ASSERT_TRUE(r.fits) << r.error;
  EXPECT_GE(r.stagesUsed, 3u);
  EXPECT_GT(r.tcamBlocksUsed, 48u);
}

TEST(TofinoCompiler, PhvOverflowIsReported) {
  std::string src = R"(
header big_t {
)";
  // 40 fields x 128b = 5120 bits > 4096 PHV budget.
  for (int i = 0; i < 40; ++i) {
    src += "  bit<128> f" + std::to_string(i) + ";\n";
  }
  src += R"(}
struct headers { big_t big; }
parser P { state start { extract(hdr.big); transition accept; } }
control C { apply { sm.egress_spec = (bit<9>) hdr.big.f0; } }
deparser D { emit(hdr.big); }
pipeline(P, C, D);
)";
  auto checked = p4::loadProgramFromString(src);
  PipelineCompiler compiler;
  CompileResult r = compiler.compile(checked);
  EXPECT_FALSE(r.fits);
  EXPECT_NE(r.error.find("PHV"), std::string::npos);
}

TEST(TofinoCompiler, GatewayAddsDependencyLevel) {
  auto checked = p4::loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
struct metadata { bit<16> link; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action hop(bit<16> v) { meta.link = v; }
  table t0 { key = { meta.link : exact; } actions = { hop; noop; } default_action = noop; }
  apply {
    if (hdr.h.a == 1) {
      t0.apply();
    }
  }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  PipelineCompiler compiler;
  CompileResult r = compiler.compile(checked);
  ASSERT_TRUE(r.fits);
  // Gateway in stage 1, table strictly after it.
  EXPECT_EQ(r.stagesUsed, 2u);
}

TEST(TofinoCompiler, CompileTimeScalesWithProgramSize) {
  auto small = chainProgram(2);
  auto large = independentTablesProgram(40, 1024);
  CompilerOptions opts;
  opts.searchIterations = 100;
  PipelineCompiler compiler(PipelineModel{}, opts);
  auto rSmall = compiler.compile(small);
  auto rLarge = compiler.compile(large);
  ASSERT_TRUE(rSmall.fits);
  ASSERT_TRUE(rLarge.fits);
  EXPECT_GT(rLarge.compileTime.count(), rSmall.compileTime.count());
}

TEST(TofinoCompiler, DeterministicForFixedSeed) {
  auto checked = independentTablesProgram(12, 2048);
  PipelineCompiler a;
  PipelineCompiler b;
  auto ra = a.compile(checked);
  auto rb = b.compile(checked);
  EXPECT_EQ(ra.stagesUsed, rb.stagesUsed);
  EXPECT_EQ(ra.stageAssignment, rb.stageAssignment);
}

TEST(TofinoRequirements, ExtractsTableDemand) {
  auto checked = p4::loadProgramFromString(R"(
header h_t { bit<32> a; bit<16> b; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_b(bit<16> v) { hdr.h.b = v; }
  table exact_t { key = { hdr.h.a : exact; } actions = { set_b; noop; } default_action = noop; size = 1024; }
  table tern_t { key = { hdr.h.a : ternary; hdr.h.b : ternary; } actions = { set_b; noop; } default_action = noop; size = 512; }
  apply { exact_t.apply(); tern_t.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  ProgramRequirements req = computeRequirements(checked, PipelineModel{});
  ASSERT_EQ(req.units.size(), 2u);
  const Unit& exact = req.units[0];
  EXPECT_FALSE(exact.needsTcam);
  EXPECT_EQ(exact.keyBits, 32u);
  EXPECT_GT(exact.sramBlocks, 0u);
  EXPECT_EQ(exact.tcamBlocks, 0u);
  EXPECT_TRUE(exact.reads.count("hdr.h.a") == 1);
  EXPECT_TRUE(exact.writes.count("hdr.h.b") == 1);
  const Unit& tern = req.units[1];
  EXPECT_TRUE(tern.needsTcam);
  EXPECT_EQ(tern.keyBits, 48u);
  EXPECT_GE(tern.tcamBlocks, 2u);  // 48b key = 2 blocks wide
  // PHV covers both fields + validity.
  EXPECT_EQ(req.phvBits, 32u + 16u + 1u);
}

}  // namespace
}  // namespace flay::tofino
