#include "tofino/incremental.h"

#include <gtest/gtest.h>

#include "flay/specializer.h"
#include "net/workloads.h"

namespace flay::tofino {
namespace {

namespace core = ::flay::flay;

p4::CheckedProgram loadScion() {
  return p4::loadProgramFromFile(net::programPath("scion"));
}

CompilerOptions fastOptions() {
  CompilerOptions o;
  o.searchIterations = 50;
  return o;
}

/// Validates that a placement respects every match dependency (writer
/// strictly before reader) and per-stage resource limits.
void expectValidPlacement(const p4::CheckedProgram& checked,
                          const CompileResult& result,
                          const PipelineModel& model) {
  ASSERT_TRUE(result.fits) << result.error;
  ProgramRequirements req = computeRequirements(checked, model);
  std::map<std::string, uint32_t> stageOf;
  for (size_t s = 0; s < result.stageAssignment.size(); ++s) {
    for (const auto& name : result.stageAssignment[s]) {
      stageOf[name] = static_cast<uint32_t>(s + 1);
    }
  }
  ASSERT_EQ(stageOf.size(), req.units.size());
  // Dependencies.
  for (size_t j = 0; j < req.units.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      const Unit& a = req.units[i];
      const Unit& b = req.units[j];
      bool matchDep = false;
      for (const auto& w : a.writes) matchDep |= b.reads.count(w) != 0;
      for (size_t gw : b.controlDeps) matchDep |= gw == i;
      if (matchDep) {
        EXPECT_LT(stageOf.at(a.name), stageOf.at(b.name))
            << a.name << " must precede " << b.name;
      }
    }
  }
  // Resources.
  std::vector<uint32_t> sram(result.stagesUsed + 1, 0);
  std::vector<uint32_t> tcam(result.stagesUsed + 1, 0);
  std::vector<uint32_t> alu(result.stagesUsed + 1, 0);
  for (const Unit& u : req.units) {
    uint32_t s = stageOf.at(u.name);
    sram[s] += u.sramBlocks;
    tcam[s] += u.tcamBlocks;
    alu[s] += u.aluOps;
  }
  for (uint32_t s = 1; s <= result.stagesUsed; ++s) {
    EXPECT_LE(sram[s], model.sramBlocksPerStage) << "stage " << s;
    EXPECT_LE(tcam[s], model.tcamBlocksPerStage) << "stage " << s;
    EXPECT_LE(alu[s], model.aluPerStage) << "stage " << s;
  }
}

TEST(IncrementalCompile, NoChangeKeepsPlacement) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  CompileResult base = compiler.fullCompile(checked);
  ASSERT_TRUE(base.fits);
  CompileResult inc = compiler.incrementalCompile(checked, {});
  ASSERT_TRUE(inc.fits);
  EXPECT_EQ(inc.stagesUsed, base.stagesUsed);
  EXPECT_EQ(compiler.lastReplacedUnits(), 0u);
  EXPECT_FALSE(compiler.lastFellBackToFull());
}

TEST(IncrementalCompile, SingleComponentChangeIsLocal) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  ASSERT_TRUE(compiler.fullCompile(checked).fits);
  CompileResult inc =
      compiler.incrementalCompile(checked, {"ScionIngress.mac_verify"});
  ASSERT_TRUE(inc.fits);
  EXPECT_EQ(compiler.lastReplacedUnits(), 1u);
  expectValidPlacement(checked, inc, PipelineModel{});
}

TEST(IncrementalCompile, RespecializedProgramReplacesNewUnits) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());

  // Baseline: IPv4-only specialized program (no v6 units).
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(8)) service.applyUpdate(u);
  auto v4 = core::Specializer(service).specialize();
  p4::CheckedProgram v4Checked = core::recheck(std::move(v4.program));
  CompileResult base = compiler.fullCompile(v4Checked);
  ASSERT_TRUE(base.fits);

  // Enable v6, respecialize: the v6 units come back and must be placed.
  auto verdict = service.applyBatch(net::scionV6Config(4));
  ASSERT_TRUE(verdict.needsRecompilation);
  auto v6 = core::Specializer(service).specialize();
  p4::CheckedProgram v6Checked = core::recheck(std::move(v6.program));
  CompileResult inc =
      compiler.incrementalCompile(v6Checked, verdict.changedComponents);
  ASSERT_TRUE(inc.fits) << inc.error;
  EXPECT_GE(compiler.lastReplacedUnits(), 15u);  // the v6 chain
  expectValidPlacement(v6Checked, inc, PipelineModel{});
  EXPECT_EQ(inc.stagesUsed, 20u);  // back at max, like the monolithic result
}

TEST(IncrementalCompile, PlacementStaysValidAcrossUpdateSequence) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  ASSERT_TRUE(compiler.fullCompile(checked).fits);
  // A sequence of single-table changes; every intermediate placement must
  // remain dependency- and resource-valid.
  for (const char* component :
       {"ScionIngress.v4_t05", "ScionIngress.path_accept",
        "ScionIngress.v6_t10", "ScionIngress.iface_lookup"}) {
    CompileResult inc = compiler.incrementalCompile(checked, {component});
    expectValidPlacement(checked, inc, PipelineModel{});
  }
}

TEST(IncrementalCompile, FirstCallWithoutBaselineFallsBack) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  CompileResult inc = compiler.incrementalCompile(checked, {"x"});
  EXPECT_TRUE(inc.fits);
  EXPECT_TRUE(compiler.lastFellBackToFull());
}

TEST(IncrementalCompile, IncrementalIsFasterThanMonolithic) {
  auto checked = loadScion();
  CompilerOptions heavy;
  heavy.searchIterations = 1000;
  IncrementalPipelineCompiler compiler(PipelineModel{}, heavy);
  CompileResult base = compiler.fullCompile(checked);
  ASSERT_TRUE(base.fits);
  CompileResult inc =
      compiler.incrementalCompile(checked, {"ScionIngress.v4_t03"});
  ASSERT_TRUE(inc.fits);
  EXPECT_LT(inc.compileTime.count(), base.compileTime.count() / 5)
      << "re-placing one unit must be much cheaper than a full compile";
}

}  // namespace
}  // namespace flay::tofino
