#include "tofino/incremental.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "flay/specializer.h"
#include "net/workloads.h"
#include "p4/typecheck.h"

namespace flay::tofino {
namespace {

namespace core = ::flay::flay;

p4::CheckedProgram loadScion() {
  return p4::loadProgramFromFile(net::programPath("scion"));
}

CompilerOptions fastOptions() {
  CompilerOptions o;
  o.searchIterations = 50;
  return o;
}

/// Validates that a placement respects every match dependency (writer
/// strictly before reader) and per-stage resource limits.
void expectValidPlacement(const p4::CheckedProgram& checked,
                          const CompileResult& result,
                          const PipelineModel& model) {
  ASSERT_TRUE(result.fits) << result.error;
  ProgramRequirements req = computeRequirements(checked, model);
  std::map<std::string, uint32_t> stageOf;
  for (size_t s = 0; s < result.stageAssignment.size(); ++s) {
    for (const auto& name : result.stageAssignment[s]) {
      stageOf[name] = static_cast<uint32_t>(s + 1);
    }
  }
  ASSERT_EQ(stageOf.size(), req.units.size());
  // Dependencies.
  for (size_t j = 0; j < req.units.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      const Unit& a = req.units[i];
      const Unit& b = req.units[j];
      bool matchDep = false;
      for (const auto& w : a.writes) matchDep |= b.reads.count(w) != 0;
      for (size_t gw : b.controlDeps) matchDep |= gw == i;
      if (matchDep) {
        EXPECT_LT(stageOf.at(a.name), stageOf.at(b.name))
            << a.name << " must precede " << b.name;
      }
    }
  }
  // Resources.
  std::vector<uint32_t> sram(result.stagesUsed + 1, 0);
  std::vector<uint32_t> tcam(result.stagesUsed + 1, 0);
  std::vector<uint32_t> alu(result.stagesUsed + 1, 0);
  for (const Unit& u : req.units) {
    uint32_t s = stageOf.at(u.name);
    sram[s] += u.sramBlocks;
    tcam[s] += u.tcamBlocks;
    alu[s] += u.aluOps;
  }
  for (uint32_t s = 1; s <= result.stagesUsed; ++s) {
    EXPECT_LE(sram[s], model.sramBlocksPerStage) << "stage " << s;
    EXPECT_LE(tcam[s], model.tcamBlocksPerStage) << "stage " << s;
    EXPECT_LE(alu[s], model.aluPerStage) << "stage " << s;
  }
}

TEST(IncrementalCompile, NoChangeKeepsPlacement) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  CompileResult base = compiler.fullCompile(checked);
  ASSERT_TRUE(base.fits);
  CompileResult inc = compiler.incrementalCompile(checked, {});
  ASSERT_TRUE(inc.fits);
  EXPECT_EQ(inc.stagesUsed, base.stagesUsed);
  EXPECT_EQ(compiler.lastReplacedUnits(), 0u);
  EXPECT_FALSE(compiler.lastFellBackToFull());
}

TEST(IncrementalCompile, SingleComponentChangeIsLocal) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  ASSERT_TRUE(compiler.fullCompile(checked).fits);
  CompileResult inc =
      compiler.incrementalCompile(checked, {"ScionIngress.mac_verify"});
  ASSERT_TRUE(inc.fits);
  EXPECT_EQ(compiler.lastReplacedUnits(), 1u);
  expectValidPlacement(checked, inc, PipelineModel{});
}

TEST(IncrementalCompile, RespecializedProgramReplacesNewUnits) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());

  // Baseline: IPv4-only specialized program (no v6 units).
  core::FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(8)) service.applyUpdate(u);
  auto v4 = core::Specializer(service).specialize();
  p4::CheckedProgram v4Checked = core::recheck(std::move(v4.program));
  CompileResult base = compiler.fullCompile(v4Checked);
  ASSERT_TRUE(base.fits);

  // Enable v6, respecialize: the v6 units come back and must be placed.
  auto verdict = service.applyBatch(net::scionV6Config(4));
  ASSERT_TRUE(verdict.needsRecompilation);
  auto v6 = core::Specializer(service).specialize();
  p4::CheckedProgram v6Checked = core::recheck(std::move(v6.program));
  CompileResult inc =
      compiler.incrementalCompile(v6Checked, verdict.changedComponents);
  ASSERT_TRUE(inc.fits) << inc.error;
  EXPECT_GE(compiler.lastReplacedUnits(), 15u);  // the v6 chain
  expectValidPlacement(v6Checked, inc, PipelineModel{});
  EXPECT_EQ(inc.stagesUsed, 20u);  // back at max, like the monolithic result
}

TEST(IncrementalCompile, PlacementStaysValidAcrossUpdateSequence) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  ASSERT_TRUE(compiler.fullCompile(checked).fits);
  // A sequence of single-table changes; every intermediate placement must
  // remain dependency- and resource-valid.
  for (const char* component :
       {"ScionIngress.v4_t05", "ScionIngress.path_accept",
        "ScionIngress.v6_t10", "ScionIngress.iface_lookup"}) {
    CompileResult inc = compiler.incrementalCompile(checked, {component});
    expectValidPlacement(checked, inc, PipelineModel{});
  }
}

TEST(IncrementalCompile, FirstCallWithoutBaselineFallsBack) {
  auto checked = loadScion();
  IncrementalPipelineCompiler compiler(PipelineModel{}, fastOptions());
  CompileResult inc = compiler.incrementalCompile(checked, {"x"});
  EXPECT_TRUE(inc.fits);
  EXPECT_TRUE(compiler.lastFellBackToFull());
}

// ---------------------------------------------------------------------------
// Property-based coverage: randomized programs × random changed sets.
// ---------------------------------------------------------------------------

/// Generates a random but valid P4-lite program: `numTables` tables in one
/// control, each with an action writing its own metadata field, and keys
/// drawn either from header fields (exact/ternary/lpm) or from an *earlier*
/// table's metadata field (exact) — the latter creates random write→read
/// dependency chains that constrain stage placement.
/// With `dense` set, every table leads with a ternary header key and sizes
/// skew large: on PipelineModel::small() (8 TCAM blocks per stage — one
/// 4096-entry ternary table fills a stage) such programs straddle the
/// feasibility boundary, so the sweep exercises does-not-fit programs and
/// pinning failures, not just roomy placements.
std::string randomProgram(std::mt19937& rng, size_t numTables,
                          bool dense = false) {
  static const char* kKinds[] = {"exact", "ternary", "lpm"};
  static const int kSizes[] = {64, 256, 1024, 4096};
  static const int kDenseSizes[] = {1024, 4096, 4096, 4096};
  std::ostringstream out;
  out << "header h_t { bit<16> f0; bit<16> f1; bit<16> f2; bit<16> f3; }\n"
      << "struct headers { h_t h; }\n"
      << "struct metadata {";
  for (size_t i = 0; i < numTables; ++i) out << " bit<16> m" << i << ";";
  out << " }\n"
      << "parser GenParser {\n"
      << "  state start { extract(hdr.h); transition accept; }\n"
      << "}\n"
      << "control Ing {\n";
  for (size_t i = 0; i < numTables; ++i) {
    out << "  action set_m" << i << "(bit<16> p) { meta.m" << i << " = p; }\n"
        << "  table t" << i << " {\n    key = {";
    // Dense tables stay at exactly two 16-bit keys: 32 match bits fit one
    // 44-bit TCAM block width, so pressure comes from entry depth, not from
    // unplaceable double-wide tables.
    size_t numKeys = dense ? 2 : 1 + rng() % 2;
    for (size_t k = 0; k < numKeys; ++k) {
      if (dense && k == 0) {
        out << " hdr.h.f" << rng() % 4 << " : ternary;";
      } else if (i > 0 && rng() % 2 == 0) {
        out << " meta.m" << rng() % i << " : exact;";
      } else {
        out << " hdr.h.f" << rng() % 4 << " : " << kKinds[rng() % 3] << ";";
      }
    }
    out << " }\n    actions = { set_m" << i << "; noop; }\n"
        << "    default_action = noop;\n"
        << "    size = " << (dense ? kDenseSizes : kSizes)[rng() % 4]
        << ";\n  }\n";
  }
  out << "  apply {\n";
  for (size_t i = 0; i < numTables; ++i) {
    out << "    t" << i << ".apply();\n";
  }
  out << "    sm.egress_spec = 1;\n  }\n}\n"
      << "deparser GenDeparser { emit(hdr.h); }\n"
      << "pipeline(GenParser, Ing, GenDeparser);\n";
  return out.str();
}

std::map<std::string, uint32_t> stageMap(const CompileResult& r) {
  std::map<std::string, uint32_t> m;
  for (size_t s = 0; s < r.stageAssignment.size(); ++s) {
    for (const auto& name : r.stageAssignment[s]) {
      m[name] = static_cast<uint32_t>(s + 1);
    }
  }
  return m;
}

std::set<std::string> randomChangedSet(std::mt19937& rng, size_t numTables) {
  std::set<std::string> changed;
  size_t count = rng() % (numTables + 1);
  for (size_t i = 0; i < count; ++i) {
    changed.insert("Ing.t" + std::to_string(rng() % numTables));
  }
  return changed;
}

struct PropertyOutcome {
  bool programFits = false;
  size_t fallbacks = 0;  // full-compile fallbacks across the rounds
};

/// Core property check, shared across models: for random changed sets,
/// incremental must agree with a fresh full compile on `fits`, every fitting
/// placement must be dependency- and resource-valid, an empty change set is
/// a no-op, and — when the compiler did not fall back and did not have to
/// grow the movable set (constraint-driven unpinning) — every unit outside
/// the changed set keeps its exact baseline stage.
void checkIncrementalProperties(const p4::CheckedProgram& checked,
                                const PipelineModel& model, std::mt19937& rng,
                                size_t numTables, PropertyOutcome& outcome) {
  IncrementalPipelineCompiler inc(model, fastOptions());
  IncrementalPipelineCompiler ref(model, fastOptions());
  CompileResult base = inc.fullCompile(checked);
  CompileResult full = ref.fullCompile(checked);
  ASSERT_EQ(base.fits, full.fits)
      << "two full compiles disagree: " << base.error << " / " << full.error;
  if (!base.fits) {
    // No feasible baseline: incremental has nothing to pin against and must
    // take the monolithic fallback, agreeing that the program does not fit.
    CompileResult r = inc.incrementalCompile(checked, {"Ing.t0"});
    EXPECT_FALSE(r.fits);
    EXPECT_TRUE(inc.lastFellBackToFull());
    ++outcome.fallbacks;
    return;
  }
  outcome.programFits = true;
  expectValidPlacement(checked, base, model);
  auto baseline = stageMap(base);
  for (int round = 0; round < 3; ++round) {
    std::set<std::string> changed = randomChangedSet(rng, numTables);
    CompileResult r = inc.incrementalCompile(checked, changed);
    EXPECT_EQ(r.fits, full.fits) << "incremental lost a program full fits";
    ASSERT_TRUE(r.fits) << r.error;
    expectValidPlacement(checked, r, model);
    auto placed = stageMap(r);
    ASSERT_EQ(placed.size(), baseline.size());
    if (changed.empty()) {
      EXPECT_FALSE(inc.lastFellBackToFull());
      EXPECT_EQ(inc.lastReplacedUnits(), 0u);
    }
    if (inc.lastFellBackToFull()) ++outcome.fallbacks;
    if (!inc.lastFellBackToFull()) {
      size_t moved = 0;
      for (const auto& [name, stage] : placed) {
        if (stage != baseline.at(name)) ++moved;
      }
      EXPECT_LE(moved, inc.lastReplacedUnits())
          << "more units moved than were re-placed";
      size_t changedPresent = 0;
      for (const auto& name : changed) changedPresent += baseline.count(name);
      if (inc.lastReplacedUnits() == changedPresent) {
        for (const auto& [name, stage] : placed) {
          if (changed.count(name) == 0) {
            EXPECT_EQ(stage, baseline.at(name)) << name << " moved while pinned";
          }
        }
      }
    }
    // Later rounds pin against the placement the compiler just produced.
    baseline = placed;
  }
}

TEST(IncrementalCompile, PropertyRandomProgramsAgreeWithFull) {
  for (uint32_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed);
    size_t numTables = 4 + rng() % 7;
    p4::CheckedProgram checked =
        p4::loadProgramFromString(randomProgram(rng, numTables));
    PropertyOutcome outcome;
    checkIncrementalProperties(checked, PipelineModel{}, rng, numTables,
                               outcome);
    // The roomy default model must fit every generated program.
    EXPECT_TRUE(outcome.programFits);
  }
}

TEST(IncrementalCompile, PropertyRandomProgramsOnSmallModel) {
  // The small model's tight TCAM/table budgets make some generated programs
  // infeasible and make pinning fail more often, exercising the unpin-retry
  // and full-fallback paths that the roomy default model rarely reaches.
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed ^ 0x5eed);
    size_t numTables = 4 + rng() % 7;
    p4::CheckedProgram checked =
        p4::loadProgramFromString(randomProgram(rng, numTables));
    PropertyOutcome outcome;
    checkIncrementalProperties(checked, PipelineModel::small(), rng,
                               numTables, outcome);
    EXPECT_TRUE(outcome.programFits);
  }
}

TEST(IncrementalCompile, PropertyDenseProgramsHitInfeasibilityAndFallback) {
  // Dense generated programs on the small model straddle the feasibility
  // boundary: one 4096-entry ternary table fills a stage's TCAM, so the
  // sweep must include both programs that do not fit at all (incremental
  // agrees via fallback) and fitting programs whose changes the compiler
  // still handles with a valid placement.
  size_t fitting = 0;
  size_t infeasible = 0;
  size_t fallbacks = 0;
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937 rng(seed * 977u);
    size_t numTables = 10 + rng() % 7;
    p4::CheckedProgram checked = p4::loadProgramFromString(
        randomProgram(rng, numTables, /*dense=*/true));
    PropertyOutcome outcome;
    checkIncrementalProperties(checked, PipelineModel::small(), rng,
                               numTables, outcome);
    fitting += outcome.programFits;
    infeasible += !outcome.programFits;
    fallbacks += outcome.fallbacks;
  }
  // Fixed seeds and a deterministic compiler: the sweep is reproducible, so
  // both sides of the boundary must stay represented.
  EXPECT_GT(fitting, 0u);
  EXPECT_GT(infeasible, 0u);
  EXPECT_GT(fallbacks, 0u);
}

TEST(IncrementalCompile, IncrementalIsFasterThanMonolithic) {
  auto checked = loadScion();
  CompilerOptions heavy;
  heavy.searchIterations = 1000;
  IncrementalPipelineCompiler compiler(PipelineModel{}, heavy);
  CompileResult base = compiler.fullCompile(checked);
  ASSERT_TRUE(base.fits);
  CompileResult inc =
      compiler.incrementalCompile(checked, {"ScionIngress.v4_t03"});
  ASSERT_TRUE(inc.fits);
  EXPECT_LT(inc.compileTime.count(), base.compileTime.count() / 5)
      << "re-placing one unit must be much cheaper than a full compile";
}

}  // namespace
}  // namespace flay::tofino
