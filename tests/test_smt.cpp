#include "smt/solver.h"

#include <gtest/gtest.h>

#include <random>

#include "expr/eval.h"

namespace flay::smt {
namespace {

using expr::ExprArena;
using expr::ExprRef;
using expr::SymbolClass;

class SmtTest : public ::testing::Test {
 protected:
  ExprArena arena;
  ExprRef bv(uint32_t w, uint64_t v) { return arena.bvConst(w, v); }
  ExprRef x(uint32_t w = 8) { return arena.var("x", w, SymbolClass::kDataPlane); }
  ExprRef y(uint32_t w = 8) { return arena.var("y", w, SymbolClass::kDataPlane); }
};

TEST_F(SmtTest, TrivialConstants) {
  EXPECT_TRUE(isSatisfiable(arena, arena.boolConst(true)));
  EXPECT_FALSE(isSatisfiable(arena, arena.boolConst(false)));
  EXPECT_TRUE(isValid(arena, arena.boolConst(true)));
  EXPECT_FALSE(isValid(arena, arena.boolConst(false)));
}

TEST_F(SmtTest, EqualityWithConstant) {
  // x == 42 is satisfiable but not valid.
  ExprRef e = arena.eq(x(), bv(8, 42));
  EXPECT_TRUE(isSatisfiable(arena, e));
  EXPECT_FALSE(isValid(arena, e));
}

TEST_F(SmtTest, ArithmeticReasoning) {
  // x + 1 == 0 forces x == 255 (8-bit wraparound).
  SmtSolver solver(arena);
  solver.assertExpr(arena.eq(arena.add(x(), bv(8, 1)), bv(8, 0)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.modelValue(x()).toUint64(), 255u);
}

TEST_F(SmtTest, UnsatConjunction) {
  // x < 5 and x > 200 is unsat for 8-bit x.
  SmtSolver solver(arena);
  solver.assertExpr(arena.ult(x(), bv(8, 5)));
  solver.assertExpr(arena.ult(bv(8, 200), x()));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
}

TEST_F(SmtTest, ModelSatisfiesMaskConstraint) {
  // Ternary-match shape: (x & 0xF0) == 0xA0.
  ExprRef e = arena.eq(arena.bvAnd(x(), bv(8, 0xF0)), bv(8, 0xA0));
  SmtSolver solver(arena);
  solver.assertExpr(e);
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  BitVec v = solver.modelValue(x());
  EXPECT_EQ(v.bitAnd(BitVec(8, 0xF0)).toUint64(), 0xA0u);
}

TEST_F(SmtTest, ValidDistributivity) {
  // (x & y) | (x & ~y) == x is valid.
  ExprRef lhs = arena.bvOr(arena.bvAnd(x(), y()),
                           arena.bvAnd(x(), arena.bvNot(y())));
  EXPECT_TRUE(isValid(arena, arena.eq(lhs, x())));
}

TEST_F(SmtTest, MulDivRelation) {
  // For y != 0: (x / y) * y + (x % y) == x.
  ExprRef q = arena.udiv(x(), y());
  ExprRef r = arena.urem(x(), y());
  ExprRef identity = arena.eq(arena.add(arena.mul(q, y()), r), x());
  ExprRef guarded = arena.bOr(arena.eq(y(), bv(8, 0)), identity);
  EXPECT_TRUE(isValid(arena, guarded));
}

TEST_F(SmtTest, DivByZeroSemantics) {
  // x / 0 == 0xFF for 8-bit (SMT-LIB all-ones).
  ExprRef ydiv = arena.udiv(x(), y());
  ExprRef zeroY = arena.eq(y(), bv(8, 0));
  ExprRef claim = arena.implies(zeroY, arena.eq(ydiv, bv(8, 0xFF)));
  EXPECT_TRUE(isValid(arena, claim));
}

TEST_F(SmtTest, UltUleDuality) {
  ExprRef claim = arena.eq(arena.ult(x(), y()),
                           arena.bNot(arena.ule(y(), x())));
  EXPECT_TRUE(isValid(arena, claim));
}

TEST_F(SmtTest, ConcatExtractRoundTrip) {
  ExprRef hi = arena.var("hi", 8, SymbolClass::kDataPlane);
  ExprRef lo = arena.var("lo", 8, SymbolClass::kDataPlane);
  ExprRef c = arena.concat(hi, lo);
  EXPECT_TRUE(isValid(arena, arena.eq(arena.extract(c, 15, 8), hi)));
  EXPECT_TRUE(isValid(arena, arena.eq(arena.extract(c, 7, 0), lo)));
}

TEST_F(SmtTest, ShiftSemantics) {
  ExprRef claim = arena.eq(arena.shl(x(), 1), arena.mul(x(), bv(8, 2)));
  EXPECT_TRUE(isValid(arena, claim));
  // Logical shift loses the top bit: (x >> 1) << 1 == x & 0xFE.
  ExprRef rt = arena.eq(arena.shl(arena.lshr(x(), 1), 1),
                        arena.bvAnd(x(), bv(8, 0xFE)));
  EXPECT_TRUE(isValid(arena, rt));
}

TEST_F(SmtTest, EquivalenceChecks) {
  ExprRef a = arena.add(x(), y());
  ExprRef b = arena.add(y(), x());
  EXPECT_TRUE(areEquivalent(arena, a, b));  // identical after canonicalization
  // x + y vs x - y: differ whenever y != 0 and 2y != 0.
  EXPECT_FALSE(areEquivalent(arena, a, arena.sub(x(), y())));
  // Semantic (non-structural) equivalence: x ^ y == (x | y) & ~(x & y).
  ExprRef xorAlt = arena.bvAnd(arena.bvOr(x(), y()),
                               arena.bvNot(arena.bvAnd(x(), y())));
  EXPECT_TRUE(areEquivalent(arena, arena.bvXor(x(), y()), xorAlt));
}

TEST_F(SmtTest, ConstantValueDetectsConstants) {
  // ite(p, 3, 3) folds already; build something that doesn't fold
  // structurally: (x & 0) + 3 folds too... use x ^ x ^ 3 via two vars that
  // the arena can't see through: (x | ~x) is all-ones -> folds. Use
  // a genuinely semantic case: (x + y) - y - x + 7 == 7.
  ExprRef e = arena.add(
      arena.sub(arena.sub(arena.add(x(), y()), y()), x()), bv(8, 7));
  auto c = constantValue(arena, e);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(arena.constValue(*c).toUint64(), 7u);
}

TEST_F(SmtTest, ConstantValueRejectsNonConstants) {
  EXPECT_FALSE(constantValue(arena, x()).has_value());
  EXPECT_FALSE(constantValue(arena, arena.add(x(), bv(8, 1))).has_value());
}

TEST_F(SmtTest, ConstantValueBoolCases) {
  ExprRef p = arena.boolVar("p", SymbolClass::kDataPlane);
  EXPECT_FALSE(constantValue(arena, p).has_value());
  // p || x == 3 is non-constant; (x <= 255) is constant true semantically
  // but folds structurally; use x < y || y <= x (valid, non-folding).
  ExprRef tauto = arena.bOr(arena.ult(x(), y()), arena.ule(y(), x()));
  auto c = constantValue(arena, tauto);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(arena.isTrue(*c));
}

TEST_F(SmtTest, WideBitvectors) {
  // 48-bit MAC-style equality: x48 & mask == value is satisfiable.
  ExprRef mac = arena.var("mac", 48, SymbolClass::kDataPlane);
  ExprRef mask = bv(48, 0xFFFFFF000000ull);
  ExprRef val = bv(48, 0xAABBCC000000ull);
  SmtSolver solver(arena);
  solver.assertExpr(arena.eq(arena.bvAnd(mac, mask), val));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.modelValue(mac).bitAnd(BitVec(48, 0xFFFFFF000000ull)),
            BitVec(48, 0xAABBCC000000ull));
}


// Property: bit-blasted division/remainder agree with BitVec semantics for
// every pair of 4-bit operands (including division by zero).
TEST_F(SmtTest, DivRemBlastingMatchesEvaluatorExhaustively) {
  const uint32_t w = 4;
  ExprRef a = arena.var("da", w, SymbolClass::kDataPlane);
  ExprRef b = arena.var("db", w, SymbolClass::kDataPlane);
  ExprRef q = arena.udiv(a, b);
  ExprRef r = arena.urem(a, b);
  for (uint64_t av = 0; av < 16; ++av) {
    for (uint64_t bvv = 0; bvv < 16; ++bvv) {
      BitVec expectQ = BitVec(w, av).udiv(BitVec(w, bvv));
      BitVec expectR = BitVec(w, av).urem(BitVec(w, bvv));
      SmtSolver solver(arena);
      solver.assertExpr(arena.eq(a, arena.bvConst(w, av)));
      solver.assertExpr(arena.eq(b, arena.bvConst(w, bvv)));
      solver.assertExpr(arena.eq(q, arena.bvConst(expectQ)));
      solver.assertExpr(arena.eq(r, arena.bvConst(expectR)));
      EXPECT_EQ(solver.check(), CheckResult::kSat)
          << av << " / " << bvv;
    }
  }
}

TEST_F(SmtTest, MulCommutativityAndDistributivityValid) {
  ExprRef a = arena.var("ma", 6, SymbolClass::kDataPlane);
  ExprRef b = arena.var("mb", 6, SymbolClass::kDataPlane);
  ExprRef c = arena.var("mc", 6, SymbolClass::kDataPlane);
  EXPECT_TRUE(isValid(arena, arena.eq(arena.mul(a, b), arena.mul(b, a))));
  EXPECT_TRUE(isValid(
      arena, arena.eq(arena.mul(a, arena.add(b, c)),
                      arena.add(arena.mul(a, b), arena.mul(a, c)))));
}

// Property test: the bit-blaster agrees with the concrete evaluator. Build a
// random constraint x == <random expr over constants>, solve, and check the
// model evaluates consistently.
class BlastConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(BlastConsistencyTest, ModelMatchesEvaluator) {
  std::mt19937_64 rng(GetParam() * 104729);
  ExprArena arena;
  const uint32_t w = 12;
  ExprRef a = arena.var("a", w, SymbolClass::kDataPlane);
  ExprRef b = arena.var("b", w, SymbolClass::kDataPlane);

  // Random expression over a, b.
  std::vector<ExprRef> pool = {a, b, arena.bvConst(w, rng() % (1 << w)),
                               arena.bvConst(w, rng() % (1 << w))};
  for (int i = 0; i < 25; ++i) {
    ExprRef p = pool[rng() % pool.size()];
    ExprRef q = pool[rng() % pool.size()];
    switch (rng() % 7) {
      case 0: pool.push_back(arena.add(p, q)); break;
      case 1: pool.push_back(arena.sub(p, q)); break;
      case 2: pool.push_back(arena.mul(p, q)); break;
      case 3: pool.push_back(arena.bvAnd(p, q)); break;
      case 4: pool.push_back(arena.bvOr(p, q)); break;
      case 5: pool.push_back(arena.bvXor(p, q)); break;
      case 6: pool.push_back(arena.ite(arena.ult(p, q), p, q)); break;
    }
  }
  ExprRef target = pool.back();
  SmtSolver solver(arena);
  solver.assertExpr(arena.eq(target, target));  // force blasting; trivially sat
  // Add a random inequality to make the instance non-trivial.
  solver.assertExpr(arena.ule(a, arena.bvConst(w, 1u << (w - 1))));
  ASSERT_EQ(solver.check(), CheckResult::kSat);

  BitVec av = solver.modelValue(a);
  BitVec bvv = solver.modelValue(b);
  expr::Evaluator ev(arena);
  ev.bindVar(a, av);
  ev.bindVar(b, bvv);
  // Every pool expression must evaluate consistently with the blasted model:
  // assert target == eval(target) and expect SAT proves nothing; instead
  // check the model constraint held.
  EXPECT_TRUE(av.ule(BitVec(w, 1u << (w - 1))));
  // And the blasted target value equals the evaluator's value.
  SmtSolver verify(arena);
  verify.assertExpr(arena.eq(a, arena.bvConst(av)));
  verify.assertExpr(arena.eq(b, arena.bvConst(bvv)));
  verify.assertExpr(arena.eq(target, arena.bvConst(ev.evaluateBv(target))));
  EXPECT_EQ(verify.check(), CheckResult::kSat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlastConsistencyTest, ::testing::Range(1, 16));

// Property: random 8-bit formulas — isSatisfiable agrees with brute force.
class SmtBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtBruteForceTest, AgreesWithEnumeration) {
  std::mt19937_64 rng(GetParam() * 31337);
  ExprArena arena;
  const uint32_t w = 6;
  ExprRef a = arena.var("a", w, SymbolClass::kDataPlane);

  uint64_t k1 = rng() % (1 << w), k2 = rng() % (1 << w), k3 = rng() % (1 << w);
  // (a & k1) == k2 && a < k3  — enumerate all 64 values of a.
  ExprRef f = arena.bAnd(
      arena.eq(arena.bvAnd(a, arena.bvConst(w, k1)), arena.bvConst(w, k2)),
      arena.ult(a, arena.bvConst(w, k3)));
  bool expected = false;
  for (uint64_t v = 0; v < (1 << w); ++v) {
    if ((v & k1) == k2 && v < k3) {
      expected = true;
      break;
    }
  }
  EXPECT_EQ(isSatisfiable(arena, f), expected)
      << "k1=" << k1 << " k2=" << k2 << " k3=" << k3;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtBruteForceTest, ::testing::Range(1, 41));

// ---------------------------------------------------------------------------
// probeConstant: the arena-const probe behind the parallel check engine.

TEST_F(SmtTest, ProbeConstantProvesSemanticBvConstant) {
  // (x * 2) % 2 is always 0, but only the solver can see it.
  ExprRef e = arena.urem(arena.mul(x(), bv(8, 2)), bv(8, 2));
  ASSERT_FALSE(arena.isConst(e)) << "folder got smarter; pick a harder expr";
  ConstantProbe p = probeConstant(arena, e, 0);
  EXPECT_TRUE(p.constant);
  EXPECT_FALSE(p.notConstant);
  EXPECT_FALSE(p.timedOut);
  EXPECT_EQ(p.value.toUint64(), 0u);
}

TEST_F(SmtTest, ProbeConstantProvesSemanticBoolConstant) {
  // x % 8 < 8 is valid.
  ExprRef e = arena.ult(arena.urem(x(), bv(8, 8)), bv(8, 8));
  ASSERT_FALSE(arena.isConst(e));
  ConstantProbe p = probeConstant(arena, e, 0);
  EXPECT_TRUE(p.constant);
  EXPECT_TRUE(p.boolValue);

  // x % 8 >= 8 is unsat.
  ExprRef f = arena.ule(bv(8, 8), arena.urem(x(), bv(8, 8)));
  ConstantProbe q = probeConstant(arena, f, 0);
  EXPECT_TRUE(q.constant);
  EXPECT_FALSE(q.boolValue);
}

TEST_F(SmtTest, ProbeConstantRefutesNonConstants) {
  ConstantProbe p = probeConstant(arena, arena.eq(x(), bv(8, 3)), 0);
  EXPECT_TRUE(p.notConstant);
  EXPECT_FALSE(p.constant);
  ConstantProbe q = probeConstant(arena, arena.add(x(), bv(8, 1)), 0);
  EXPECT_TRUE(q.notConstant);
  EXPECT_FALSE(q.constant);
}

TEST_F(SmtTest, ProbeConstantAgreesWithConstantValueWithin) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 30; ++i) {
    // Random mask/compare shapes over one variable: some constant, some not.
    ExprRef e = arena.bvAnd(arena.bvOr(x(), bv(8, rng() & 0xFF)),
                            bv(8, rng() & 0xFF));
    ConstantProbe p = probeConstant(arena, e, 0);
    std::optional<expr::ExprRef> c = constantValueWithin(arena, e, 0);
    EXPECT_EQ(p.constant, c.has_value()) << "i=" << i;
    if (p.constant && c.has_value()) {
      EXPECT_EQ(p.value, arena.constValue(*c)) << "i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Shift semantics: the concrete evaluator and the bit-blasted solver must
// agree for every shift amount, including amounts at and beyond the width.

class ShiftAgreementTest : public SmtTest,
                           public ::testing::WithParamInterface<uint32_t> {};

TEST_P(ShiftAgreementTest, EvalAndSolverAgreeOnClampedShifts) {
  const uint32_t w = GetParam();
  std::mt19937_64 rng(w * 31337 + 1);
  ExprRef var = arena.var("s", w, SymbolClass::kDataPlane);
  std::vector<BitVec> amounts = {
      BitVec(64, 0), BitVec(64, 1), BitVec(64, w - 1), BitVec(64, w),
      BitVec(64, w + 1), BitVec(64, 64), BitVec(64, uint64_t{1} << 32),
      BitVec::one(128).shl(100)};
  for (const BitVec& amountBv : amounts) {
    uint32_t amount = clampShiftAmount(amountBv, w);
    for (bool left : {true, false}) {
      ExprRef shifted = left ? arena.shl(var, amount) : arena.lshr(var, amount);
      BitVec val(w, rng());
      BitVec direct = left ? val.shl(amount) : val.lshr(amount);

      // Concrete evaluator.
      expr::Evaluator ev(arena);
      ev.bindVar(var, val);
      EXPECT_EQ(ev.evaluateBv(shifted), direct)
          << "w=" << w << " amount=" << amount << " left=" << left;

      // Solver: under s == val, shifted != direct must be unsat.
      SmtSolver solver(arena);
      solver.assertExpr(arena.eq(var, arena.bvConst(val)));
      solver.assertExpr(arena.neq(shifted, arena.bvConst(direct)));
      EXPECT_EQ(solver.check(), CheckResult::kUnsat)
          << "w=" << w << " amount=" << amount << " left=" << left;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShiftAgreementTest,
                         ::testing::Values(7u, 8u, 13u, 33u));

}  // namespace
}  // namespace flay::smt
