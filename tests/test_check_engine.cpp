// Tests for the parallel semantics-check engine and its canonical-digest
// verdict cache: cache semantics (first-wins, scope invalidation, collision
// behavior), thread-pool plumbing, verdict parity across jobs/cache
// settings, and cache invalidation when components respecialize.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>

#include "expr/analysis.h"
#include "expr/canonical.h"
#include "flay/check_engine.h"
#include "flay/engine.h"
#include "flay/specializer.h"
#include "p4/printer.h"
#include "support/thread_pool.h"

namespace flay::flay {
namespace {

using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, RunsEveryTask) {
  support::ThreadPool pool(3);
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run(std::move(tasks));
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  support::ThreadPool pool(2);
  std::atomic<int> hits{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&hits] { hits.fetch_add(1); });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, PropagatesFirstException) {
  support::ThreadPool pool(2);
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&hits, i] {
      if (i == 3) throw std::runtime_error("boom");
      hits.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
  // The batch drains fully even when one task throws.
  EXPECT_EQ(hits.load(), 7);
}

TEST(ThreadPool, ZeroThreadsStillWorks) {
  support::ThreadPool pool(0);  // clamped to one worker
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks{[&hits] { hits.fetch_add(1); }};
  pool.run(std::move(tasks));
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  support::ThreadPool pool(2);
  pool.run({});
  // Still usable afterwards.
  std::atomic<int> hits{0};
  pool.run({[&hits] { hits.fetch_add(1); }});
  EXPECT_EQ(hits.load(), 1);
}

// A worker waiting for its own batch to finish could never observe the
// pending count reach zero — its own task is part of it. run() rejects the
// reentrant call instead of deadlocking, and the rejection surfaces through
// the outer run() like any other task exception.
TEST(ThreadPool, NestedRunOnSamePoolIsRejected) {
  support::ThreadPool pool(2);
  std::atomic<bool> threw{false};
  std::vector<std::function<void()>> tasks{[&pool, &threw] {
    std::vector<std::function<void()>> inner{[] {}};
    try {
      pool.run(std::move(inner));
    } catch (const std::logic_error&) {
      threw = true;
      throw;
    }
  }};
  EXPECT_THROW(pool.run(std::move(tasks)), std::logic_error);
  EXPECT_TRUE(threw.load());
}

// Nesting across *distinct* pools is fine (and load-bearing: fleet drain
// tasks run controllers whose check engines own their own pools).
TEST(ThreadPool, NestedRunOnDifferentPoolWorks) {
  support::ThreadPool outer(2);
  support::ThreadPool inner(2);
  std::atomic<int> hits{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&inner, &hits] {
      inner.run({[&hits] { hits.fetch_add(1); }});
    });
  }
  outer.run(std::move(tasks));
  EXPECT_EQ(hits.load(), 4);
}

// ---------------------------------------------------------------------------
// VerdictCache

CachedVerdict boolVerdictOf(bool v) {
  CachedVerdict c;
  c.kind = CachedVerdict::Kind::kBoolConst;
  c.boolValue = v;
  return c;
}

std::vector<std::string> scopes(std::initializer_list<const char*> names) {
  return std::vector<std::string>(names.begin(), names.end());
}

TEST(VerdictCache, InsertLookupRoundTrip) {
  VerdictCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("(and a b)").has_value());

  auto tagged = scopes({"C.t"});
  cache.insert("(and a b)", boolVerdictOf(true), tagged);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.lookup("(and a b)");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, CachedVerdict::Kind::kBoolConst);
  EXPECT_TRUE(hit->boolValue);
  EXPECT_FALSE(cache.lookup("(and a c)").has_value());
}

TEST(VerdictCache, FirstVerdictWins) {
  VerdictCache cache;
  auto tagged = scopes({"C.t"});
  cache.insert("k", boolVerdictOf(true), tagged);
  cache.insert("k", boolVerdictOf(false), tagged);  // ignored
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.lookup("k")->boolValue);
}

TEST(VerdictCache, ScopeInvalidationDropsOnlyThatScope) {
  VerdictCache cache;
  auto t1 = scopes({"C.t1"});
  auto t2 = scopes({"C.t2"});
  auto both = scopes({"C.t1", "C.t2"});
  cache.insert("a", boolVerdictOf(true), t1);
  cache.insert("b", boolVerdictOf(true), t2);
  cache.insert("c", boolVerdictOf(true), both);
  EXPECT_EQ(cache.size(), 3u);

  cache.invalidateScope("C.t1");
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("b").has_value());
  EXPECT_FALSE(cache.lookup("c").has_value());  // tagged with t1 too
  EXPECT_EQ(cache.size(), 1u);

  // Invalidating again (or an unknown scope) is a no-op.
  cache.invalidateScope("C.t1");
  cache.invalidateScope("C.never");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerdictCache, BvVerdictCarriesValue) {
  VerdictCache cache;
  CachedVerdict v;
  v.kind = CachedVerdict::Kind::kBvConst;
  v.value = BitVec(32, 0xDEAD);
  auto tagged = scopes({"C.t"});
  cache.insert("bv", v, tagged);
  auto hit = cache.lookup("bv");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, CachedVerdict::Kind::kBvConst);
  EXPECT_EQ(hit->value.toUint64(), 0xDEADu);
}

// Collision-resistance smoke test: the cache is keyed by a 64-bit digest,
// but entries carry their full rendering and compare it on lookup — so even
// adversarially similar renderings (one character apart, the classic FNV
// weak spot) can never serve each other's verdicts.
TEST(VerdictCache, NearIdenticalRenderingsNeverCrossTalk) {
  VerdictCache cache;
  auto tagged = scopes({"C.t"});
  constexpr int kEntries = 2000;
  for (int i = 0; i < kEntries; ++i) {
    CachedVerdict v;
    v.kind = CachedVerdict::Kind::kBvConst;
    v.value = BitVec(32, static_cast<uint64_t>(i));
    cache.insert("(eq x #x" + std::to_string(i) + ")", v, tagged);
  }
  EXPECT_EQ(cache.size(), static_cast<size_t>(kEntries));
  for (int i = 0; i < kEntries; ++i) {
    auto hit = cache.lookup("(eq x #x" + std::to_string(i) + ")");
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->value.toUint64(), static_cast<uint64_t>(i)) << i;
  }
  EXPECT_FALSE(cache.lookup("(eq x #x" + std::to_string(kEntries) + ")")
                   .has_value());
}

// Thread-safety hammer: concurrent inserts, lookups, and scope
// invalidations over overlapping keys and scopes (this runs under TSan in
// CI). The semantic invariant a data race would break: a hit can only ever
// return the verdict some thread inserted for exactly that rendering —
// here, the bitvector value is a pure function of the key.
TEST(VerdictCache, ConcurrentHammerKeepsVerdictsConsistent) {
  VerdictCache cache;
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  constexpr int kKeys = 64;
  auto keyOf = [](int k) { return "(eq x #x" + std::to_string(k) + ")"; };
  auto valueOf = [](int k) {
    CachedVerdict v;
    v.kind = CachedVerdict::Kind::kBvConst;
    v.value = BitVec(32, static_cast<uint64_t>(k));
    return v;
  };
  std::atomic<int> wrongHits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        int k = static_cast<int>(rng() % kKeys);
        switch (rng() % 4) {
          case 0:
          case 1: {
            auto hit = cache.lookup(keyOf(k));
            if (hit.has_value() &&
                hit->value.toUint64() != static_cast<uint64_t>(k)) {
              wrongHits.fetch_add(1);
            }
            break;
          }
          case 2:
            cache.insert(keyOf(k), valueOf(k),
                         std::vector<std::string>{"s" + std::to_string(k % 8)});
            break;
          default:
            cache.invalidateScope("s" + std::to_string(k % 8));
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrongHits.load(), 0);
  // The cache is still coherent afterwards.
  cache.insert("post-hammer", boolVerdictOf(true), scopes({"s0"}));
  EXPECT_TRUE(cache.lookup("post-hammer").has_value());
  cache.invalidateScope("s0");
  EXPECT_FALSE(cache.lookup("post-hammer").has_value());
}

TEST(VerdictCache, OverflowEvictsWholesaleAndKeepsWorking) {
  VerdictCache cache(/*maxEntries=*/4);
  auto tagged = scopes({"C.t"});
  for (int i = 0; i < 10; ++i) {
    cache.insert("r" + std::to_string(i), boolVerdictOf(true), tagged);
  }
  EXPECT_LE(cache.size(), 4u);
  // The most recent insert always lands.
  EXPECT_TRUE(cache.lookup("r9").has_value());
}

// ---------------------------------------------------------------------------
// CheckEngine through a FlayService

const char* kProgram = R"(
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_a(bit<8> v) { hdr.h.a = v; }
  action set_b(bit<8> v) { hdr.h.b = v; }
  action drop_pkt() { mark_to_drop(); }
  table t1 {
    key = { hdr.h.a : ternary; }
    actions = { set_a; drop_pkt; noop; }
    default_action = noop;
    size = 256;
  }
  table t2 {
    key = { hdr.h.b : exact; }
    actions = { set_b; noop; }
    default_action = noop;
    size = 256;
  }
  apply {
    t1.apply();
    t2.apply();
    if (hdr.h.a == 3) { sm.egress_spec = 2; } else { sm.egress_spec = 1; }
  }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)";

TableEntry ternaryEntry(uint64_t v, uint64_t m, const char* action,
                        uint64_t arg, int32_t prio) {
  TableEntry e;
  e.matches.push_back(FieldMatch::ternary(BitVec(8, v), BitVec(8, m)));
  e.actionName = action;
  if (std::string(action) == "set_a") e.actionArgs.push_back(BitVec(8, arg));
  e.priority = prio;
  return e;
}

TableEntry exactEntry(uint64_t v, uint64_t arg) {
  TableEntry e;
  e.matches.push_back(FieldMatch::exact(BitVec(8, v)));
  e.actionName = "set_b";
  e.actionArgs.push_back(BitVec(8, arg));
  return e;
}

class CheckEngineTest : public ::testing::Test {
 protected:
  CheckEngineTest() : checked(p4::loadProgramFromString(kProgram)) {}

  void populate(FlayService& service) {
    service.applyUpdate(
        Update::insert("C.t1", ternaryEntry(1, 0xFF, "set_a", 9, 1)));
    service.applyUpdate(
        Update::insert("C.t1", ternaryEntry(2, 0xFF, "set_a", 7, 1)));
    service.applyUpdate(Update::insert("C.t2", exactEntry(4, 11)));
  }

  SpecializationResult specializeWith(FlayService& service, size_t jobs,
                                      bool cache) {
    SpecializerOptions sopts;
    sopts.jobs = jobs;
    sopts.useVerdictCache = cache;
    return Specializer(service, sopts).specialize();
  }

  p4::CheckedProgram checked;
};

// The acceptance property of the whole PR: the specialized program and every
// stat derived from verdicts are identical whatever the jobs count and
// whether the cache is on.
TEST_F(CheckEngineTest, VerdictsIdenticalAcrossJobsAndCacheSettings) {
  std::string reference;
  SpecializationStats refStats;
  struct Setting {
    size_t jobs;
    bool cache;
  };
  for (Setting s : {Setting{1, true}, Setting{1, false}, Setting{4, true},
                    Setting{4, false}}) {
    FlayService service(checked);
    populate(service);
    SpecializationResult result = specializeWith(service, s.jobs, s.cache);
    std::string printed = p4::printProgram(result.program);
    if (reference.empty()) {
      reference = printed;
      refStats = result.stats;
      continue;
    }
    EXPECT_EQ(printed, reference) << "jobs=" << s.jobs << " cache=" << s.cache;
    EXPECT_EQ(result.stats.totalChanges(), refStats.totalChanges());
    EXPECT_EQ(result.stats.solverQueries, refStats.solverQueries);
    EXPECT_EQ(result.stats.solverTimeouts, refStats.solverTimeouts);
  }
}

// A second specialize of unchanged state is served from the cache: same
// verdicts, and the engine's staged/cached path answers without new probes.
TEST_F(CheckEngineTest, RepeatSpecializeHitsCache) {
  FlayService service(checked);
  populate(service);
  SpecializationResult first = specializeWith(service, 1, true);
  size_t cachedAfterFirst = service.checkEngine().cache().size();
  EXPECT_GT(cachedAfterFirst, 0u);

  SpecializationResult second = specializeWith(service, 1, true);
  EXPECT_EQ(p4::printProgram(first.program), p4::printProgram(second.program));
  // No new formulas appeared, so the cache did not grow.
  EXPECT_EQ(service.checkEngine().cache().size(), cachedAfterFirst);
}

// Respecializing a component invalidates its cache entries (memory hygiene:
// the old formulas are unreachable), while other components' entries stay.
TEST_F(CheckEngineTest, UpdateInvalidatesChangedComponentEntries) {
  FlayService service(checked);
  populate(service);
  specializeWith(service, 1, true);
  VerdictCache& cache = service.checkEngine().cache();
  size_t before = cache.size();
  ASSERT_GT(before, 0u);

  // Change t1's config: its points respecialize, its scope is invalidated.
  service.applyUpdate(
      Update::insert("C.t1", ternaryEntry(3, 0xFF, "drop_pkt", 0, 2)));
  EXPECT_LT(cache.size(), before);

  // The next specialize still answers correctly and repopulates.
  SpecializationResult after = specializeWith(service, 1, true);
  EXPECT_EQ(after.stats.solverTimeouts, 0u);
}

// Direct prefetch API: staging the whole annotation set and then asking
// verdicts gives the same answers as asking cold, and marks them as queried.
TEST_F(CheckEngineTest, PrefetchedVerdictsMatchLazyOnes) {
  FlayService parallel(checked);
  populate(parallel);
  FlayService lazy(checked);
  populate(lazy);

  CheckEngineOptions eopts;
  eopts.jobs = 4;
  parallel.checkEngine().configure(eopts);

  std::vector<CheckQuery> queries;
  for (const auto& p : parallel.analysis().annotations.points()) {
    queries.push_back({p.specialized, p.component});
  }
  parallel.checkEngine().prefetch(queries);

  // Compare every boolean point's verdict against the serial engine.
  for (const auto& p : parallel.analysis().annotations.points()) {
    if (!parallel.arena().isBool(p.specialized)) continue;
    TriVerdict staged =
        parallel.checkEngine().boolVerdict(p.specialized, p.component);
    const auto& lp = lazy.analysis().annotations.point(p.id);
    TriVerdict cold = lazy.checkEngine().boolVerdict(lp.specialized,
                                                     lp.component);
    EXPECT_EQ(static_cast<int>(staged), static_cast<int>(cold))
        << "point " << p.id << " (" << p.label << ")";
  }
}

// Disabling the cache via configure means repeated checks re-probe but still
// agree; the cache object stays untouched.
TEST_F(CheckEngineTest, CacheOffLeavesCacheEmpty)
{
  FlayService service(checked);
  populate(service);
  specializeWith(service, 1, false);
  EXPECT_EQ(service.checkEngine().cache().size(), 0u);
}

// ---------------------------------------------------------------------------
// Incremental SAT: delta-CNF encoding vs full re-encoding

// A specialize run answers identically with warm incremental sessions and
// with a fresh solver per probe — the core equivalence of the delta-CNF
// path, checked on the printed program and every verdict-derived stat.
TEST_F(CheckEngineTest, IncrementalAndFreshSpecializeIdentically) {
  auto runWith = [&](bool incremental, size_t jobs) {
    FlayService service(checked);
    populate(service);
    SpecializerOptions sopts;
    sopts.jobs = jobs;
    sopts.incrementalSat = incremental;
    return Specializer(service, sopts).specialize();
  };
  SpecializationResult fresh = runWith(false, 1);
  for (size_t jobs : {size_t{1}, size_t{4}}) {
    SpecializationResult warm = runWith(true, jobs);
    EXPECT_EQ(p4::printProgram(warm.program), p4::printProgram(fresh.program))
        << "jobs=" << jobs;
    EXPECT_EQ(warm.stats.totalChanges(), fresh.stats.totalChanges());
    EXPECT_EQ(warm.stats.solverQueries, fresh.stats.solverQueries);
    EXPECT_EQ(warm.stats.solverTimeouts, fresh.stats.solverTimeouts);
  }
}

// Delta-parity under churn: a fuzzed update script drives two services in
// lockstep — one probing through warm incremental sessions (delta CNF,
// clause-group retirement on every respecialized component), one through
// fresh per-probe solvers — and every program point's verdict must match
// point-by-point after every round.
TEST_F(CheckEngineTest, FuzzedUpdateScriptKeepsDeltaAndFullEncodingInParity) {
  FlayService warm(checked);
  FlayService fresh(checked);
  {
    CheckEngineOptions on;
    on.incrementalSat = true;
    warm.checkEngine().configure(on);
    CheckEngineOptions off;
    off.incrementalSat = false;
    fresh.checkEngine().configure(off);
  }
  std::mt19937 rng(20260808);
  std::vector<uint64_t> t1Ids, t2Ids;
  uint64_t nextId = 1;
  for (int round = 0; round < 12; ++round) {
    // One random update, applied to both services.
    Update u = Update::insert("C.t1", ternaryEntry(0, 0, "noop", 0, 1));
    switch (rng() % 5) {
      case 0:
        u = Update::insert(
            "C.t1", ternaryEntry(rng() % 256, rng() % 2 ? 0xFF : 0xF0,
                                 rng() % 2 ? "set_a" : "drop_pkt", rng() % 256,
                                 static_cast<int32_t>(1 + rng() % 4)));
        t1Ids.push_back(nextId++);
        break;
      case 1:
        u = Update::insert("C.t2", exactEntry(rng() % 256, rng() % 256));
        t2Ids.push_back(nextId++);
        break;
      case 2:
        if (!t1Ids.empty()) {
          size_t k = rng() % t1Ids.size();
          u = Update::remove("C.t1", t1Ids[k]);
          t1Ids.erase(t1Ids.begin() + static_cast<ptrdiff_t>(k));
        }
        break;
      case 3:
        if (!t2Ids.empty()) {
          size_t k = rng() % t2Ids.size();
          u = Update::remove("C.t2", t2Ids[k]);
          t2Ids.erase(t2Ids.begin() + static_cast<ptrdiff_t>(k));
        }
        break;
      default:
        u = Update::setDefault("C.t1", rng() % 2 ? "drop_pkt" : "noop", {});
        break;
    }
    try {
      warm.applyUpdate(u);
      fresh.applyUpdate(u);
    } catch (const std::exception&) {
      continue;  // duplicate/malformed draw: both services rejected it alike
    }
    ASSERT_EQ(warm.stateDigest(), fresh.stateDigest()) << "round " << round;
    // Point-by-point verdict parity on the freshly specialized expressions.
    for (const auto& p : warm.analysis().annotations.points()) {
      const auto& fp = fresh.analysis().annotations.point(p.id);
      ASSERT_EQ(p.specialized, fp.specialized);
      if (warm.arena().isBool(p.specialized)) {
        TriVerdict w =
            warm.checkEngine().boolVerdict(p.specialized, p.component);
        TriVerdict f =
            fresh.checkEngine().boolVerdict(fp.specialized, fp.component);
        ASSERT_EQ(static_cast<int>(w), static_cast<int>(f))
            << "round " << round << " point " << p.id << " (" << p.label
            << ")";
      } else {
        auto w = warm.checkEngine().constVerdict(p.specialized, p.component);
        auto f = fresh.checkEngine().constVerdict(fp.specialized, fp.component);
        ASSERT_EQ(w.has_value(), f.has_value())
            << "round " << round << " point " << p.id;
        if (w.has_value()) ASSERT_EQ(w->toHexString(), f->toHexString());
      }
    }
  }
}

// Builds an unsat pigeonhole formula PH(5,4) as a boolean expression: small
// enough for the DAG limit, but expensive enough that a near-zero conflict
// budget reliably expires on it.
expr::ExprRef pigeonholeExpr(expr::ExprArena& arena) {
  using expr::ExprRef;
  constexpr int P = 5, H = 4;
  ExprRef x[P][H];
  for (int p = 0; p < P; ++p) {
    for (int h = 0; h < H; ++h) {
      x[p][h] = arena.boolVar("ph" + std::to_string(p) + "_" +
                                  std::to_string(h),
                              expr::SymbolClass::kDataPlane);
    }
  }
  ExprRef all = arena.boolConst(true);
  for (int p = 0; p < P; ++p) {
    ExprRef some = arena.boolConst(false);
    for (int h = 0; h < H; ++h) some = arena.bOr(some, x[p][h]);
    all = arena.bAnd(all, some);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        all = arena.bAnd(
            all, arena.bOr(arena.bNot(x[p1][h]), arena.bNot(x[p2][h])));
      }
    }
  }
  return all;
}

// Regression pin: a verdict that times out (kUnknown) is never cached — in
// fresh mode or incremental mode. If it were, the later budget raise would
// keep serving the stale kUnknown instead of settling the question.
TEST(CheckEngineTimeout, UnknownNeverCachedInEitherMode) {
  expr::ExprArena arena;
  expr::ExprRef ph = pigeonholeExpr(arena);
  for (bool incremental : {false, true}) {
    CheckEngine engine(arena);
    CheckEngineOptions eopts;
    eopts.incrementalSat = incremental;
    eopts.solverConflictBudget = 2;
    engine.configure(eopts);

    CheckOutcome starved;
    TriVerdict v = engine.boolVerdict(ph, "C.t", &starved);
    EXPECT_EQ(static_cast<int>(v), static_cast<int>(TriVerdict::kUnknown))
        << "incremental=" << incremental;
    EXPECT_TRUE(starved.timedOut);
    EXPECT_EQ(engine.cache().size(), 0u)
        << "timed-out verdict was cached (incremental=" << incremental << ")";

    // With the budget lifted the same engine settles the question — which a
    // cached kUnknown would have made impossible.
    eopts.solverConflictBudget = 0;
    engine.configure(eopts);
    CheckOutcome settled;
    v = engine.boolVerdict(ph, "C.t", &settled);
    EXPECT_EQ(static_cast<int>(v), static_cast<int>(TriVerdict::kFalse))
        << "incremental=" << incremental;
    EXPECT_FALSE(settled.timedOut);
    EXPECT_EQ(engine.cache().size(), 1u);
  }
}

// Scope invalidation retires the matching warm clause groups: after a
// component's scope is invalidated, probes for that scope re-encode from
// scratch and still answer correctly (a stale group would leave the old
// gates' activation guard dangling and could flip verdicts).
TEST(CheckEngineTimeout, ScopeInvalidationKeepsWarmSessionSound) {
  expr::ExprArena arena;
  expr::ExprRef ph = pigeonholeExpr(arena);
  expr::ExprRef trivial =
      arena.bOr(ph, arena.bNot(ph));  // tautology sharing ph's structure
  CheckEngine engine(arena);
  CheckEngineOptions eopts;
  eopts.incrementalSat = true;
  engine.configure(eopts);
  EXPECT_EQ(static_cast<int>(engine.boolVerdict(ph, "C.t")),
            static_cast<int>(TriVerdict::kFalse));
  engine.invalidateScope("C.t");
  // Re-probing after retirement must re-derive the same verdicts.
  EXPECT_EQ(static_cast<int>(engine.boolVerdict(ph, "C.t")),
            static_cast<int>(TriVerdict::kFalse));
  EXPECT_EQ(static_cast<int>(engine.boolVerdict(trivial, "C.t")),
            static_cast<int>(TriVerdict::kTrue));
  engine.clearCache();  // full teardown path (onCacheCleared -> rebuild)
  EXPECT_EQ(static_cast<int>(engine.boolVerdict(ph, "C.t")),
            static_cast<int>(TriVerdict::kFalse));
}

}  // namespace
}  // namespace flay::flay
