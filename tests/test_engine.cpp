// Engine-level tests: verdict semantics for every update kind, binding
// resolution, and batch/sequential consistency.

#include <gtest/gtest.h>

#include "expr/printer.h"
#include "flay/engine.h"
#include "net/fuzzer.h"

namespace flay::flay {
namespace {

using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

const char* kProgram = R"(
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_a(bit<8> v) { hdr.h.a = v; }
  action set_b(bit<8> v) { hdr.h.b = v; }
  action drop_pkt() { mark_to_drop(); }
  table t {
    key = { hdr.h.a : ternary; }
    actions = { set_a; set_b; drop_pkt; noop; }
    default_action = noop;
    size = 256;
  }
  apply { t.apply(); sm.egress_spec = 1; }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)";

TableEntry ternary(uint64_t v, uint64_t m, const char* action, uint64_t arg,
                   int32_t prio) {
  TableEntry e;
  e.matches.push_back(FieldMatch::ternary(BitVec(8, v), BitVec(8, m)));
  e.actionName = action;
  if (std::string(action) != "drop_pkt" && std::string(action) != "noop") {
    e.actionArgs.push_back(BitVec(8, arg));
  }
  e.priority = prio;
  return e;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : checked(p4::loadProgramFromString(kProgram)) {}
  p4::CheckedProgram checked;
};

TEST_F(EngineTest, DeleteRestoresEmptyTableDecision) {
  FlayService service(checked);
  auto v1 = service.applyUpdate(
      Update::insert("C.t", ternary(1, 0xFF, "set_a", 9, 1)));
  EXPECT_TRUE(v1.needsRecompilation);  // empty -> live

  uint64_t id = service.config().table("C.t").entries()[0].id;
  auto v2 = service.applyUpdate(Update::remove("C.t", id));
  EXPECT_TRUE(v2.needsRecompilation);  // live -> empty again

  // The hit point is back to constant false.
  const TableInfo& info = service.analysis().table("C.t");
  EXPECT_TRUE(service.arena().isFalse(service.specialized(info.hitPoint)));
}

TEST_F(EngineTest, ModifyChangingActionTriggersRecompile) {
  FlayService service(checked);
  service.applyUpdate(Update::insert("C.t", ternary(1, 0xFF, "set_a", 9, 1)));
  uint64_t id = service.config().table("C.t").entries()[0].id;

  // Modify to a *different action*: reachable-action set changes.
  TableEntry modified = ternary(1, 0xFF, "drop_pkt", 0, 1);
  modified.id = id;
  auto verdict = service.applyUpdate(Update::modify("C.t", modified));
  EXPECT_TRUE(verdict.needsRecompilation);
}

TEST_F(EngineTest, ModifyChangingOnlyArgumentForwards) {
  FlayService service(checked);
  service.applyUpdate(Update::insert("C.t", ternary(1, 0xFF, "set_a", 9, 1)));
  service.applyUpdate(Update::insert("C.t", ternary(2, 0xFF, "set_a", 7, 2)));
  uint64_t id = service.config().table("C.t").entries()[0].id;

  // Same action, same key, new argument value: the expressions change but
  // the implementation stays general for that action.
  TableEntry modified = ternary(1, 0xFF, "set_a", 42, 1);
  modified.id = id;
  auto verdict = service.applyUpdate(Update::modify("C.t", modified));
  EXPECT_TRUE(verdict.expressionsChanged);
  EXPECT_FALSE(verdict.needsRecompilation);
}

TEST_F(EngineTest, SingleAlwaysMatchingEntryArgChangeIsSemantic) {
  // With ONE always-matching entry, the action argument is a propagated
  // constant (Fig. 3 B); changing it flips the constant -> recompile.
  FlayService service(checked);
  service.applyUpdate(Update::insert("C.t", ternary(0, 0, "set_a", 9, 1)));
  uint64_t id = service.config().table("C.t").entries()[0].id;
  TableEntry modified = ternary(0, 0, "set_a", 10, 1);
  modified.id = id;
  auto verdict = service.applyUpdate(Update::modify("C.t", modified));
  EXPECT_TRUE(verdict.needsRecompilation)
      << "an inlined constant changed value: the inlined body must change";
}

TEST_F(EngineTest, DefaultActionChangeTriggersRecompile) {
  FlayService service(checked);
  // Miss-path behaviour changes from noop to drop: recompile.
  auto verdict = service.applyUpdate(Update::setDefault("C.t", "drop_pkt", {}));
  EXPECT_TRUE(verdict.needsRecompilation);
  // Setting it to the same thing again: nothing changes.
  auto verdict2 = service.applyUpdate(Update::setDefault("C.t", "drop_pkt", {}));
  EXPECT_FALSE(verdict2.expressionsChanged);
}

TEST_F(EngineTest, MalformedUpdateThrowsAndLeavesStateIntact) {
  FlayService service(checked);
  TableEntry bad;
  bad.matches.push_back(FieldMatch::exact(BitVec(8, 1)));  // wrong kind
  bad.actionName = "set_a";
  bad.actionArgs.push_back(BitVec(8, 1));
  EXPECT_THROW(service.applyUpdate(Update::insert("C.t", bad)),
               std::invalid_argument);
  EXPECT_TRUE(service.config().table("C.t").empty());
  // Engine still fully functional afterwards.
  auto v = service.applyUpdate(
      Update::insert("C.t", ternary(1, 0xFF, "set_a", 1, 1)));
  EXPECT_TRUE(v.needsRecompilation);
}

TEST_F(EngineTest, BatchWithMalformedUpdateAnalyzesAppliedPrefix) {
  // Regression: applyBatch used to install updates 0..k-1 and then throw on
  // a malformed update k WITHOUT re-analyzing, leaving the annotations
  // describing a config that no longer exists.
  FlayService service(checked);
  std::vector<Update> batch;
  batch.push_back(Update::insert("C.t", ternary(1, 0xFF, "set_a", 9, 1)));
  TableEntry bad;
  bad.matches.push_back(FieldMatch::exact(BitVec(8, 1)));  // wrong match kind
  bad.actionName = "set_a";
  bad.actionArgs.push_back(BitVec(8, 1));
  batch.push_back(Update::insert("C.t", bad));
  batch.push_back(Update::insert("C.t", ternary(2, 0xFF, "set_b", 7, 2)));

  EXPECT_THROW(service.applyBatch(batch), std::invalid_argument);

  // The prefix before the malformed update is installed...
  ASSERT_EQ(service.config().table("C.t").size(), 1u);
  // ...and the annotations reflect it: the hit point must no longer be the
  // constant false of the empty table.
  const TableInfo& info = service.analysis().table("C.t");
  EXPECT_FALSE(service.arena().isFalse(service.specialized(info.hitPoint)));

  // The service must match a clean service that only ever saw the prefix.
  FlayService reference(checked);
  reference.applyUpdate(batch[0]);
  const auto& pa = service.analysis().annotations.points();
  const auto& pb = reference.analysis().annotations.points();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(expr::toString(service.arena(), pa[i].specialized),
              expr::toString(reference.arena(), pb[i].specialized))
        << pa[i].label;
  }
}

TEST_F(EngineTest, EmptyBatchWithOnlyMalformedUpdateThrowsCleanly) {
  FlayService service(checked);
  TableEntry bad;
  bad.matches.push_back(FieldMatch::exact(BitVec(8, 1)));
  bad.actionName = "set_a";
  bad.actionArgs.push_back(BitVec(8, 1));
  EXPECT_THROW(service.applyBatch({Update::insert("C.t", bad)}),
               std::invalid_argument);
  EXPECT_TRUE(service.config().table("C.t").empty());
  const TableInfo& info = service.analysis().table("C.t");
  EXPECT_TRUE(service.arena().isFalse(service.specialized(info.hitPoint)));
}

TEST_F(EngineTest, EmptyToFirstEntryLifecycle) {
  // Fig. 3 lifecycle around the empty state, using an argument-less action
  // so the verdicts isolate the table digest (no param constants involved).
  FlayService service(checked);
  const TableInfo& info = service.analysis().table("C.t");
  EXPECT_TRUE(service.arena().isFalse(service.specialized(info.hitPoint)));

  // Empty -> first exact-valued entry: semantics change (the hit condition
  // stops being constant false) and must recompile exactly because of that,
  // landing directly in the exact-encodable state.
  auto v1 = service.applyUpdate(
      Update::insert("C.t", ternary(3, 0xFF, "drop_pkt", 0, 1)));
  EXPECT_TRUE(v1.needsRecompilation);
  EXPECT_EQ(v1.changedComponents.count("C.t"), 1u);

  // Second exact-valued entry with the same action: the hit expression
  // changes but the implementation shape does not — no recompile. This pins
  // that the empty state did not leave a stale "masked" digest behind.
  auto v2 = service.applyUpdate(
      Update::insert("C.t", ternary(4, 0xFF, "drop_pkt", 0, 2)));
  EXPECT_TRUE(v2.expressionsChanged);
  EXPECT_FALSE(v2.needsRecompilation);

  // A genuinely masked entry changes the key shape: recompile (B -> C).
  auto v3 = service.applyUpdate(
      Update::insert("C.t", ternary(0x10, 0xF0, "drop_pkt", 0, 3)));
  EXPECT_TRUE(v3.needsRecompilation);

  // Deleting everything returns to the empty-table implementation.
  std::vector<uint64_t> ids;
  for (const auto& e : service.config().table("C.t").entries()) {
    ids.push_back(e.id);
  }
  UpdateVerdict last;
  for (uint64_t id : ids) {
    last = service.applyUpdate(Update::remove("C.t", id));
  }
  EXPECT_TRUE(last.needsRecompilation);
  EXPECT_TRUE(service.arena().isFalse(service.specialized(info.hitPoint)));
}

TEST_F(EngineTest, BatchEqualsSequentialSpecialization) {
  // Property: the final specialized state after applyBatch(u1..uN) equals
  // the state after applying u1..uN one at a time.
  std::vector<Update> updates;
  updates.push_back(Update::insert("C.t", ternary(0x10, 0xF0, "set_a", 1, 5)));
  updates.push_back(Update::insert("C.t", ternary(0x20, 0xF0, "set_b", 2, 4)));
  updates.push_back(Update::insert("C.t", ternary(0, 0, "drop_pkt", 0, 1)));
  updates.push_back(Update::setDefault("C.t", "drop_pkt", {}));

  FlayService batched(checked);
  batched.applyBatch(updates);
  FlayService sequential(checked);
  for (const auto& u : updates) sequential.applyUpdate(u);

  // Compare every specialized annotation by rendered form (the services
  // own distinct arenas, so refs are not comparable directly).
  const auto& pa = batched.analysis().annotations.points();
  const auto& pb = sequential.analysis().annotations.points();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(expr::toString(batched.arena(), pa[i].specialized),
              expr::toString(sequential.arena(), pb[i].specialized))
        << pa[i].label;
  }
}

TEST_F(EngineTest, ResolveSymbolReflectsBindings) {
  FlayService service(checked);
  const TableInfo& info = service.analysis().table("C.t");
  // Empty table: hit bound to false.
  EXPECT_TRUE(service.arena().isFalse(service.resolveSymbol(info.hitSymbol)));
  // Param symbol bound to zero placeholder constant.
  auto it = info.paramSymbols.find("set_a.v");
  ASSERT_NE(it, info.paramSymbols.end());
  EXPECT_TRUE(service.arena().isConst(service.resolveSymbol(it->second)));

  // Over-approximated: symbols become free again.
  FlayOptions options;
  options.encoder.overapproxThreshold = 1;
  FlayService approx(checked, options);
  net::EntryFuzzer fuzzer(3);
  auto entries = fuzzer.uniqueEntries(approx.config().table("C.t"), 3);
  std::vector<Update> batch;
  for (auto& e : entries) batch.push_back(Update::insert("C.t", e));
  approx.applyBatch(batch);
  const TableInfo& infoB = approx.analysis().table("C.t");
  EXPECT_EQ(approx.resolveSymbol(infoB.hitSymbol), infoB.hitSymbol);
}

TEST_F(EngineTest, TaintAblationGivesSameVerdicts) {
  FlayOptions noTaint;
  noTaint.useTaintMap = false;
  FlayService a(checked);
  FlayService b(checked, noTaint);
  for (const auto& u :
       {Update::insert("C.t", ternary(0x10, 0xF0, "set_a", 1, 5)),
        Update::insert("C.t", ternary(0x22, 0xFF, "set_a", 2, 4)),
        Update::setDefault("C.t", "drop_pkt", {})}) {
    auto va = a.applyUpdate(u);
    auto vb = b.applyUpdate(u);
    EXPECT_EQ(va.needsRecompilation, vb.needsRecompilation);
    EXPECT_EQ(va.expressionsChanged, vb.expressionsChanged);
  }
}

}  // namespace
}  // namespace flay::flay
