// End-to-end soundness of the Flay service loop — the property the whole
// paper rests on: for any update stream,
//
//   * when Flay says "no recompilation needed", the PREVIOUSLY specialized
//     program must still be packet-equivalent to the original under the
//     NEW configuration;
//   * when Flay demands recompilation, respecializing restores a program
//     that is packet-equivalent again.
//
// We drive random update streams against programs, mirror the device's
// lifecycle (specialize only when told to), and differentially test the
// mirror against the original on random packets after every step.

#include <gtest/gtest.h>

#include <random>

#include "flay/specializer.h"
#include "net/fuzzer.h"
#include "net/headers.h"
#include "net/workloads.h"
#include "sim/interpreter.h"

namespace flay {
namespace {

namespace core = ::flay::flay;

const char* kPipelineProgram = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t { bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst; }
header tcp_t { bit<16> sport; bit<16> dport; }
struct headers { eth_t eth; ipv4_t ipv4; tcp_t tcp; }
struct metadata { bit<16> nh; bit<8> verdict; }

parser P {
  state start {
    extract(hdr.eth);
    transition select(hdr.eth.type) {
      0x800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 {
    extract(hdr.ipv4);
    transition select(hdr.ipv4.proto) {
      6: parse_tcp;
      default: accept;
    }
  }
  state parse_tcp { extract(hdr.tcp); transition accept; }
}

control Ingress {
  action set_nh(bit<16> nh) { meta.nh = nh; }
  action drop_pkt() { mark_to_drop(); }
  action deny(bit<8> v) { meta.verdict = v; mark_to_drop(); }
  table route {
    key = { hdr.ipv4.dst : lpm; }
    actions = { set_nh; drop_pkt; noop; }
    default_action = noop;
    size = 64;
  }
  table acl {
    key = { hdr.ipv4.src : ternary; hdr.tcp.dport : ternary; }
    actions = { deny; noop; }
    default_action = noop;
    size = 64;
  }
  table nexthop {
    key = { meta.nh : exact; }
    actions = { set_port; drop_pkt; noop; }
    default_action = drop_pkt;
    size = 64;
  }
  action set_port(bit<9> p) { sm.egress_spec = p; }
  apply {
    if (hdr.ipv4.isValid()) {
      route.apply();
      if (hdr.tcp.isValid()) { acl.apply(); }
      nexthop.apply();
      if (hdr.ipv4.ttl == 0) { mark_to_drop(); }
    } else {
      set_port(1);
    }
  }
}

deparser D { emit(hdr.eth); emit(hdr.ipv4); emit(hdr.tcp); }
pipeline(P, Ingress, D);
)";

sim::Packet randomPacket(std::mt19937_64& rng) {
  net::EthHeader eth;
  eth.dst = rng();
  eth.src = rng();
  uint32_t kind = rng() % 8;
  eth.type = kind < 5 ? 0x800 : (kind == 5 ? 0x86DD : uint16_t(rng()));
  net::PacketBuilder b;
  b.eth(eth);
  if (eth.type == 0x800) {
    uint8_t proto = rng() % 2 == 0 ? 6 : 17;
    b.raw(BitVec(8, rng() % 3))  // ttl
        .raw(BitVec(8, proto))
        .raw(BitVec(32, rng() % 4 == 0 ? 0x0A000000u | uint32_t(rng() & 0xFFFF)
                                       : uint32_t(rng())))
        .raw(BitVec(32, rng() % 2 == 0 ? 0xC0A80000u | uint32_t(rng() & 0xFF)
                                       : uint32_t(rng())));
    if (proto == 6) {
      b.raw(BitVec(16, rng() & 0xFFFF)).raw(BitVec(16, rng() % 1024));
    }
  }
  sim::Packet p;
  p.bytes = b.build();
  p.ingressPort = uint32_t(rng() % 4);
  return p;
}

/// Mirrors a device that recompiles only on demand.
class DeviceMirror {
 public:
  explicit DeviceMirror(const p4::CheckedProgram& original)
      : original_(original) {}

  void respecialize(core::FlayService& service) {
    auto result = core::Specializer(service).specialize();
    specialized_ = std::make_unique<p4::CheckedProgram>(
        core::recheck(std::move(result.program)));
  }

  /// Runs `count` random packets through original (current config) and the
  /// (possibly stale) specialized program with migrated entries.
  void expectEquivalent(core::FlayService& service, std::mt19937_64& rng,
                        int count, const std::string& context) {
    ASSERT_NE(specialized_, nullptr);
    runtime::DeviceConfig migrated =
        core::migrateConfig(*specialized_, service.config());
    sim::DataPlaneState sOrig(original_), sSpec(*specialized_);
    sim::Interpreter orig(original_, service.config(), sOrig);
    sim::Interpreter spec(*specialized_, migrated, sSpec);
    for (int i = 0; i < count; ++i) {
      sim::Packet p = randomPacket(rng);
      sim::ExecResult a = orig.process(p);
      sim::ExecResult b = spec.process(p);
      ASSERT_EQ(a.dropped, b.dropped) << context << ", packet " << i;
      if (!a.dropped) {
        ASSERT_EQ(a.egressPort, b.egressPort) << context << ", packet " << i;
        ASSERT_EQ(a.outputBytes, b.outputBytes) << context << ", packet " << i;
      }
    }
  }

 private:
  const p4::CheckedProgram& original_;
  std::unique_ptr<p4::CheckedProgram> specialized_;
};

class ServiceLoopTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceLoopTest, StaleSpecializationStaysSoundWithoutRecompile) {
  std::mt19937_64 rng(GetParam() * 7919 + 13);
  p4::CheckedProgram checked = p4::loadProgramFromString(kPipelineProgram);
  core::FlayService service(checked);
  DeviceMirror mirror(checked);
  mirror.respecialize(service);  // initial (empty-config) specialization
  mirror.expectEquivalent(service, rng, 40, "initial");

  net::EntryFuzzer fuzzer(GetParam() * 31 + 7);
  const char* tables[] = {"Ingress.route", "Ingress.acl", "Ingress.nexthop"};
  int recompiles = 0, forwarded = 0;
  for (int step = 0; step < 25; ++step) {
    const char* table = tables[rng() % 3];
    runtime::Update update;
    const auto& state = service.config().table(table);
    if (!state.empty() && rng() % 4 == 0) {
      // Occasionally delete an entry.
      update = runtime::Update::remove(
          table, state.entries()[rng() % state.size()].id);
    } else {
      auto entries = fuzzer.uniqueEntries(state, 1);
      // Avoid duplicates against installed entries by retrying.
      bool dup = false;
      for (const auto& e : state.entries()) {
        dup |= e.sameMatchSet(entries[0]) && e.priority == entries[0].priority;
      }
      if (dup) continue;
      update = runtime::Update::insert(table, entries[0]);
    }
    core::UpdateVerdict verdict;
    try {
      verdict = service.applyUpdate(update);
    } catch (const std::invalid_argument&) {
      continue;  // fuzzer produced a duplicate region; skip
    }
    if (verdict.needsRecompilation) {
      ++recompiles;
      mirror.respecialize(service);
    } else {
      ++forwarded;
    }
    mirror.expectEquivalent(service, rng, 25,
                            "step " + std::to_string(step) +
                                (verdict.needsRecompilation ? " (recompiled)"
                                                            : " (forwarded)"));
  }
  // The stream must exercise both paths for the test to mean anything.
  EXPECT_GT(recompiles, 0);
  EXPECT_GT(forwarded, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceLoopTest, ::testing::Range(1, 9));

// The same loop against the bundled middleblock program, ACL-focused.
TEST(ServiceLoopMiddleblock, AclStreamStaysSound) {
  std::mt19937_64 rng(4242);
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  core::FlayService service(checked);
  DeviceMirror mirror(checked);
  mirror.respecialize(service);

  int step = 0;
  for (const auto& update : net::middleblockAclEntries(40)) {
    auto verdict = service.applyUpdate(update);
    if (verdict.needsRecompilation) mirror.respecialize(service);
    if (step++ % 8 == 0) {
      mirror.expectEquivalent(service, rng, 15,
                              "acl step " + std::to_string(step));
    }
  }
}

}  // namespace
}  // namespace flay
