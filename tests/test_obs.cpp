// Unit tests for the observability subsystem: counters, log-bucketed
// histograms (bucket math and quantile error bounds), the global registry,
// scoped timers, and the JSONL trace sink.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace obs = flay::obs;

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketForIsMonotoneAndInBounds) {
  uint32_t prev = 0;
  for (uint64_t v : std::vector<uint64_t>{0, 1, 7, 8, 9, 100, 1000,
                                          uint64_t{1} << 20,
                                          uint64_t{1} << 40, UINT64_MAX}) {
    uint32_t b = obs::Histogram::bucketFor(v);
    ASSERT_LT(b, obs::Histogram::kNumBuckets) << "value " << v;
    ASSERT_GE(b, prev) << "value " << v;
    prev = b;
  }
}

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(obs::Histogram::bucketFor(v), v);
    EXPECT_EQ(obs::Histogram::bucketMid(static_cast<uint32_t>(v)), v);
  }
}

TEST(Histogram, BucketMidStaysWithinRelativeError) {
  // The midpoint of a value's bucket must be within the bucket's ~12.5%
  // relative width for the log-bucketed range.
  for (uint64_t v = 8; v < (1ull << 34); v = v * 3 / 2 + 1) {
    uint32_t b = obs::Histogram::bucketFor(v);
    uint64_t mid = obs::Histogram::bucketMid(b);
    double rel = mid > v ? static_cast<double>(mid - v) / v
                         : static_cast<double>(v - mid) / v;
    EXPECT_LE(rel, 0.15) << "value " << v << " mid " << mid;
  }
}

TEST(Histogram, TracksCountSumMinMax) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty convention
  EXPECT_EQ(h.max(), 0u);
  h.record(10);
  h.record(200);
  h.record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 213u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 200u);
}

TEST(Histogram, QuantilesOfUniformRange) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // p50 of 1..1000 is ~500; the bucketed estimate must land within the
  // bucket error bound (~12.5%) plus slack.
  uint64_t p50 = h.quantile(0.50);
  uint64_t p95 = h.quantile(0.95);
  uint64_t p99 = h.quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 90.0);
  EXPECT_NEAR(static_cast<double>(p95), 950.0, 150.0);
  EXPECT_NEAR(static_cast<double>(p99), 990.0, 150.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // The low extreme clamps to the observed min; the high extreme lands in
  // the max's bucket (midpoint estimate).
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_NEAR(static_cast<double>(h.quantile(1.0)), 1000.0, 130.0);
}

TEST(Histogram, QuantileOfSingleValue) {
  obs::Histogram h;
  h.record(77);
  EXPECT_EQ(h.quantile(0.5), 77u);
  EXPECT_EQ(h.quantile(0.99), 77u);
}

TEST(Registry, ReturnsSameHandleForSameName) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& a = reg.counter("test.obs.same_handle");
  obs::Counter& b = reg.counter("test.obs.same_handle");
  EXPECT_EQ(&a, &b);
  obs::Histogram& ha = reg.histogram("test.obs.same_hist");
  obs::Histogram& hb = reg.histogram("test.obs.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(Registry, ResetZeroesButKeepsHandles) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c = reg.counter("test.obs.reset_keep");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
  EXPECT_EQ(reg.counter("test.obs.reset_keep").value(), 2u);
}

TEST(Registry, SnapshotContainsRegisteredNames) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("test.obs.snap_counter").add(3);
  reg.histogram("test.obs.snap_hist").record(12);
  obs::Snapshot snap = reg.snapshot();
  bool haveCounter = false, haveHist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.obs.snap_counter") {
      haveCounter = true;
      EXPECT_GE(value, 3u);
    }
  }
  for (const auto& [name, stats] : snap.histograms) {
    if (name == "test.obs.snap_hist") {
      haveHist = true;
      EXPECT_GE(stats.count, 1u);
    }
  }
  EXPECT_TRUE(haveCounter);
  EXPECT_TRUE(haveHist);
}

TEST(Registry, JsonIsWellFormedish) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("test.obs.json\"quote").add(1);
  std::string json = reg.toJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // The quote in the name must be escaped.
  EXPECT_NE(json.find("json\\\"quote"), std::string::npos);
}

TEST(Registry, CountersAreThreadSafe) {
  obs::Counter& c = obs::Registry::global().counter("test.obs.mt");
  c.reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(ScopedTimer, RecordsIntoHistogram) {
  obs::Histogram h;
  {
    obs::ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Trace, EmitsJsonlEvents) {
  obs::Registry& reg = obs::Registry::global();
  std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  ASSERT_TRUE(reg.openTrace(path));
  EXPECT_TRUE(reg.tracingEnabled());
  obs::Histogram h;
  {
    obs::ScopedTimer t(h, "test.trace_event");
  }
  reg.closeTrace();
  EXPECT_FALSE(reg.tracingEnabled());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512] = {0};
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  std::string event = line;
  EXPECT_NE(event.find("\"name\":\"test.trace_event\""), std::string::npos);
  EXPECT_NE(event.find("\"ts\":"), std::string::npos);
  EXPECT_NE(event.find("\"dur\":"), std::string::npos);
}

TEST(Trace, OpenFailsForBadPath) {
  EXPECT_FALSE(
      obs::Registry::global().openTrace("/nonexistent-dir/trace.jsonl"));
  EXPECT_FALSE(obs::Registry::global().tracingEnabled());
}

// Adversarial quantile cases: the extremes are tracked exactly and must be
// answered exactly, regardless of bucket rounding. 896 is chosen because its
// log-bucket [896, 1024) has midpoint 960 — strictly between 896 and any
// larger co-recorded value — so a midpoint-based q=0/q=1 answer is visibly
// wrong.
TEST(Histogram, QuantileExtremesExactForSingleBucket) {
  obs::Histogram h;
  h.record(896);
  h.record(1000);  // same bucket as 896
  EXPECT_EQ(h.quantile(0.0), 896u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
  uint64_t mid = h.quantile(0.5);
  EXPECT_GE(mid, 896u);
  EXPECT_LE(mid, 1000u);
}

TEST(Histogram, QuantileExtremesExactForTwoBuckets) {
  obs::Histogram h;
  h.record(896);
  h.record(5000);
  EXPECT_EQ(h.quantile(0.0), 896u);
  EXPECT_EQ(h.quantile(1.0), 5000u);
  // Out-of-range q clamps to the same exact extremes.
  EXPECT_EQ(h.quantile(-1.0), 896u);
  EXPECT_EQ(h.quantile(2.0), 5000u);
  uint64_t mid = h.quantile(0.5);
  EXPECT_GE(mid, 896u);
  EXPECT_LE(mid, 5000u);
}

TEST(Histogram, QuantileSingleSampleIsThatSample) {
  obs::Histogram h;
  h.record(896);
  EXPECT_EQ(h.quantile(0.0), 896u);
  EXPECT_EQ(h.quantile(0.5), 896u);
  EXPECT_EQ(h.quantile(1.0), 896u);
}
