#!/bin/sh
# CLI contract smoke test for flayc.
#
#   cli_smoke.sh <path-to-flayc> <programs-dir>
#
# Checks the strict argument-handling contract (unknown flags, missing
# values, malformed values, and bad fault plans all exit 2 with exactly one
# diagnostic line on stderr) and then smoke-runs the fault-tolerance
# commands end to end at a tiny budget.
set -u

FLAYC=$1
PROGRAMS=$2
PROG=$PROGRAMS/middleblock.p4l
failures=0

note() { printf '%s\n' "$*"; }
fail() { note "FAIL: $*"; failures=$((failures + 1)); }

# expect_arg_error <description> -- <args...>
# The command must exit 2 and print exactly one line to stderr.
expect_arg_error() {
  desc=$1; shift; shift
  err=$("$FLAYC" "$@" 2>&1 >/dev/null)
  rc=$?
  if [ "$rc" -ne 2 ]; then
    fail "$desc: expected exit 2, got $rc"
    return
  fi
  lines=$(printf '%s\n' "$err" | wc -l)
  if [ "$lines" -ne 1 ]; then
    fail "$desc: expected a one-line diagnostic, got $lines lines: $err"
    return
  fi
  note "ok: $desc ($err)"
}

expect_ok() {
  desc=$1; shift; shift
  if ! "$FLAYC" "$@" >/dev/null 2>&1; then
    fail "$desc: expected success, got exit $?"
    return
  fi
  note "ok: $desc"
}

# --- strict argument handling -------------------------------------------------
expect_arg_error "unknown flag rejected" \
  -- difftest "$PROG" --no-such-flag
expect_arg_error "unknown flag rejected even after valid ones" \
  -- difftest "$PROG" --updates 5 --frobnicate
expect_arg_error "missing value for --updates" \
  -- difftest "$PROG" --updates
expect_arg_error "missing value for --state-dir" \
  -- crashtest "$PROG" --state-dir
expect_arg_error "non-numeric --kill-points" \
  -- crashtest "$PROG" --kill-points many
expect_arg_error "malformed --replay-updates" \
  -- difftest "$PROG" --replay-updates 1,x,3
expect_arg_error "unknown fault plan key" \
  -- difftest "$PROG" --fault-plan bogus-key=3
expect_arg_error "extra positional argument" \
  -- difftest "$PROG" extra.p4l
expect_arg_error "missing value for --devices" \
  -- fleet "$PROG" --devices
expect_arg_error "non-numeric --devices" \
  -- fleet "$PROG" --devices lots
expect_arg_error "zero --devices rejected" \
  -- fleet "$PROG" --devices 0
expect_arg_error "non-numeric --queue-cap" \
  -- fleet "$PROG" --queue-cap big
expect_arg_error "bad fault plan on fleet" \
  -- fleet "$PROG" --fault-plan bogus-key=3
expect_arg_error "unknown traffic mix" \
  -- replay "$PROG" --mix elephant-flows
expect_arg_error "missing value for --mix" \
  -- replay "$PROG" --mix
expect_arg_error "non-numeric --churn-rate" \
  -- replay "$PROG" --churn-rate sometimes
expect_arg_error "negative --churn-rate" \
  -- replay "$PROG" --churn-rate -3
expect_arg_error "unknown --transport rejected" \
  -- fleet "$PROG" --transport carrier-pigeon
expect_arg_error "missing value for --transport" \
  -- fleet "$PROG" --transport
expect_arg_error "missing value for --listen" \
  -- daemon "$PROG" --listen
expect_arg_error "daemon without --listen rejected" \
  -- daemon "$PROG"
expect_arg_error "agent without --connect rejected" \
  -- agent "$PROG"
expect_arg_error "zero --window rejected" \
  -- replay "$PROG" --window 0
expect_arg_error "ifc without --policy rejected" \
  -- ifc "$PROG"
expect_arg_error "missing value for --policy" \
  -- ifc "$PROG" --policy
expect_arg_error "missing value for --ifc-policy" \
  -- fuzz "$PROG" --ifc-policy
expect_arg_error "unreadable policy file rejected" \
  -- ifc "$PROG" --policy "$PROGRAMS/ifc/no-such.policy"
BADPOLICY=${TMPDIR:-/tmp}/flayc-smoke-bad-$$.policy
printf 'label secret hdr.no.such.field\nsink sm.egress_spec allow none\n' \
  >"$BADPOLICY"
expect_arg_error "policy naming an unknown field rejected" \
  -- ifc "$PROG" --policy "$BADPOLICY"
printf 'frobnicate a b\n' >"$BADPOLICY"
expect_arg_error "malformed policy directive rejected" \
  -- ifc "$PROG" --policy "$BADPOLICY"
rm -f "$BADPOLICY"

# Usage (no command / unknown command) also exits 2, but multi-line.
"$FLAYC" >/dev/null 2>&1
[ $? -eq 2 ] || fail "bare invocation: expected exit 2"
"$FLAYC" frobnicate "$PROG" >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown command: expected exit 2"

# --- fault-tolerance smoke ----------------------------------------------------
expect_ok "difftest with a named fault plan" \
  -- difftest "$PROG" --updates 10 --packets 4 --seed 1 --fault-plan flaky
expect_ok "difftest with a custom fault spec" \
  -- difftest "$PROG" --updates 10 --packets 4 --seed 1 \
     --fault-plan fail-first=1,seed=3
expect_ok "crashtest round-trips with a torn tail" \
  -- crashtest "$PROG" --updates 10 --kill-points 3 --checkpoint-every 4 \
     --seed 1 --torn-tail
expect_ok "fleet drains a faulty 3-device fleet to identical digests" \
  -- fleet "$PROG" --devices 3 --updates 10 --jobs 2 --seed 1 \
     --fault-plan flaky
expect_ok "fleet with per-device caches and a queue cap" \
  -- fleet "$PROG" --devices 2 --updates 10 --seed 1 --queue-cap 4 \
     --no-shared-cache
expect_ok "fleet over the socket transport converges identically" \
  -- fleet "$PROG" --devices 2 --updates 10 --seed 1 --transport socket
expect_ok "daemon drives spawned agent processes to a clean digest" \
  -- daemon "$PROG" --listen "${TMPDIR:-/tmp}/flayc-smoke-$$.sock" \
     --devices 2 --updates 10 --seed 1 --spawn
expect_ok "replay forwards packets under churn with all gates enforced" \
  -- replay "$PROG" --updates 12 --packets 2000 --devices 2 --jobs 2 \
     --seed 1 --mix heavy-hitter
expect_ok "replay with a fault plan and paced churn" \
  -- replay "$PROG" --updates 12 --packets 2000 --devices 2 --jobs 2 \
     --seed 1 --fault-plan transient --churn-rate 200 --mix tunnel
expect_ok "ifc re-verdicts a replayed update stream" \
  -- ifc "$PROG" --policy "$PROGRAMS/ifc/middleblock-strict.policy" \
     --updates 10 --seed 7
expect_ok "ifc with a replay filter and the cache disabled" \
  -- ifc "$PROG" --policy "$PROGRAMS/ifc/middleblock-open.policy" \
     --updates 10 --seed 7 --replay-updates 0,2,4 --no-verdict-cache
expect_ok "fuzz cross-checks incremental IFC against from-scratch" \
  -- fuzz "$PROG" --updates 10 --seed 3 \
     --ifc-policy "$PROGRAMS/ifc/middleblock-open.policy"

if [ "$failures" -ne 0 ]; then
  note "$failures check(s) failed"
  exit 1
fi
note "all CLI smoke checks passed"
