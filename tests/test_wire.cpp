// Tests for the versioned wire protocol: frame codec round trips, a large
// malformed/truncated-frame fuzz battery (the decoder must never crash,
// hang, or misparse, however adversarial the bytes), byte-at-a-time
// partial-read reassembly, version negotiation, the torn-tail contract, the
// hardened Update::fromString surface, and the transport-equivalence and
// kill-mid-stream properties of the socket fleet.

#include "wire/wire.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "fleet/agent.h"
#include "fleet/fleet.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "wire/socket.h"

namespace flay::wire {
namespace {

namespace fs = std::filesystem;

p4::CheckedProgram load(const char* name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

/// Fresh state directory per test; removed on scope exit.
class StateDir {
 public:
  explicit StateDir(const char* tag) {
    path_ = fs::temp_directory_path() /
            (std::string("flay-wire-") + tag + "-" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~StateDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

// ---------------------------------------------------------------------------
// Frame codec round trips
// ---------------------------------------------------------------------------

TEST(WireCodec, FrameRoundTrip) {
  Writer w;
  w.u64(42);
  w.str("hello");
  std::vector<uint8_t> payload = w.take();
  std::vector<uint8_t> bytes = encodeFrame(FrameType::kBatch, payload);
  ASSERT_EQ(bytes.size(), kHeaderSize + payload.size());

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_EQ(dec.next(&f), FrameDecoder::Status::kFrame);
  EXPECT_EQ(f.type, FrameType::kBatch);
  EXPECT_EQ(f.payload, payload);
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, MessageRoundTrips) {
  Hello hello{"dev3", "0123456789abcdef", 7};
  Hello h2 = decodeHello(encode(hello));
  EXPECT_EQ(h2.deviceName, hello.deviceName);
  EXPECT_EQ(h2.programFingerprint, hello.programFingerprint);
  EXPECT_EQ(h2.seed, hello.seed);

  HelloAck ack{false, "program fingerprint mismatch"};
  HelloAck a2 = decodeHelloAck(encode(ack));
  EXPECT_FALSE(a2.accepted);
  EXPECT_EQ(a2.detail, ack.detail);

  Batch batch;
  batch.firstSeq = 100;
  batch.updates = {"insert T [1] -> a()", "delete T id=3", ""};
  Batch b2 = decodeBatch(encode(batch));
  EXPECT_EQ(b2.firstSeq, batch.firstSeq);
  EXPECT_EQ(b2.updates, batch.updates);

  Ack cum;
  cum.upToSeq = 9;
  cum.applied = 8;
  cum.rejected = 1;
  cum.retries = 3;
  cum.degraded = true;
  cum.committed = 8;
  cum.deviceVisible = 7;
  Ack c2 = decodeAck(encode(cum));
  EXPECT_EQ(c2.upToSeq, cum.upToSeq);
  EXPECT_EQ(c2.applied, cum.applied);
  EXPECT_EQ(c2.rejected, cum.rejected);
  EXPECT_EQ(c2.retries, cum.retries);
  EXPECT_EQ(c2.degraded, cum.degraded);
  EXPECT_EQ(c2.committed, cum.committed);
  EXPECT_EQ(c2.deviceVisible, cum.deviceVisible);

  DigestReply digest{"b64ca6491c864501", false, 12, 12};
  DigestReply d2 = decodeDigestReply(encode(digest));
  EXPECT_EQ(d2.digest, digest.digest);
  EXPECT_EQ(d2.committed, digest.committed);

  ErrorMsg err{kErrBadUpdate, "undecodable update text"};
  ErrorMsg e2 = decodeErrorMsg(encode(err));
  EXPECT_EQ(e2.code, err.code);
  EXPECT_EQ(e2.detail, err.detail);

  BulkChunk chunk;
  chunk.chunkSize = 4096;
  chunk.classifierPrefilter = false;
  chunk.last = true;
  chunk.updates = {"insert T [2] -> b()"};
  BulkChunk k2 = decodeBulkChunk(encode(chunk));
  EXPECT_EQ(k2.chunkSize, chunk.chunkSize);
  EXPECT_EQ(k2.classifierPrefilter, chunk.classifierPrefilter);
  EXPECT_EQ(k2.last, chunk.last);
  EXPECT_EQ(k2.updates, chunk.updates);
}

// ---------------------------------------------------------------------------
// Structural rejection: version, magic, length, checksum
// ---------------------------------------------------------------------------

std::vector<uint8_t> validFrame() {
  Writer w;
  w.u64(1);
  w.str("x");
  return encodeFrame(FrameType::kBatch, w.take());
}

TEST(WireCodec, VersionMismatchRejected) {
  std::vector<uint8_t> bytes = validFrame();
  bytes[4] = 0x7f;  // version lives at offset 4, little-endian
  bytes[5] = 0x7f;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError);
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("version"), std::string::npos) << dec.error();
  // Sticky: even valid bytes after the poison are refused.
  std::vector<uint8_t> good = validFrame();
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError);
}

TEST(WireCodec, BadMagicRejected) {
  std::vector<uint8_t> bytes = validFrame();
  bytes[0] ^= 0xff;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError);
}

TEST(WireCodec, OversizedLengthPrefixRejectedWithoutAllocating) {
  std::vector<uint8_t> bytes = validFrame();
  // Length field at offset 8: claim a payload far beyond kMaxPayload. The
  // decoder must reject from the header alone — never wait for (or try to
  // buffer) 4 GiB.
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  FrameDecoder dec;
  dec.feed(bytes.data(), kHeaderSize);  // header only
  Frame f;
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError);
}

TEST(WireCodec, ChecksumMismatchRejected) {
  std::vector<uint8_t> bytes = validFrame();
  bytes.back() ^= 0x01;  // corrupt the last payload byte
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError);
}

TEST(WireCodec, EncodeRefusesOversizedPayload) {
  std::vector<uint8_t> huge(kMaxPayload + 1, 0);
  EXPECT_THROW(encodeFrame(FrameType::kBatch, huge), WireError);
}

// ---------------------------------------------------------------------------
// Partial reads and the torn tail
// ---------------------------------------------------------------------------

TEST(WireCodec, ByteAtATimeReassembly) {
  // A stream of several frames fed one byte per feed() must come out
  // identical to a single-shot feed.
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<uint8_t> stream;
  for (int i = 0; i < 5; ++i) {
    Writer w;
    w.u64(static_cast<uint64_t>(i));
    w.str(std::string(static_cast<size_t>(i) * 7, 'x'));
    payloads.push_back(w.take());
    std::vector<uint8_t> f = encodeFrame(FrameType::kBatch, payloads.back());
    stream.insert(stream.end(), f.begin(), f.end());
  }

  FrameDecoder dec;
  std::vector<std::vector<uint8_t>> got;
  for (uint8_t b : stream) {
    dec.feed(&b, 1);
    Frame f;
    while (dec.next(&f) == FrameDecoder::Status::kFrame) {
      got.push_back(f.payload);
    }
    ASSERT_FALSE(dec.failed()) << dec.error();
  }
  EXPECT_EQ(got, payloads);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, TornFrameIsNeedMoreNotError) {
  // A frame cut mid-header and one cut mid-payload are both "not written
  // yet" — exactly the WAL's torn-tail tolerance, never a protocol error.
  std::vector<uint8_t> bytes = validFrame();
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kNeedMore) << "cut=" << cut;
    EXPECT_FALSE(dec.failed()) << "cut=" << cut;
    EXPECT_EQ(dec.buffered(), cut) << "cut=" << cut;
    // Completing the frame later yields it intact.
    dec.feed(bytes.data() + cut, bytes.size() - cut);
    EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kFrame) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Fuzz battery: the decoder survives anything
// ---------------------------------------------------------------------------

// >= 10k adversarial inputs: mutated valid frames, truncations, random
// garbage, and randomly chunked delivery. The invariants: next() always
// returns (no hang), never crashes (ASan/UBSan-clean), and every returned
// frame either decodes or throws WireError — nothing else escapes.
TEST(WireFuzz, DecoderSurvivesMalformedFrames) {
  std::mt19937_64 rng(0xf1a5);
  std::vector<std::vector<uint8_t>> seeds;
  {
    Writer w;
    seeds.push_back(encodeFrame(FrameType::kHello,
                                encode(Hello{"dev0", "fingerprint", 1})));
    Batch b;
    b.firstSeq = 1;
    b.updates = {"insert Ingress.fwd [0x0a000001] -> set_port(port=0x1)",
                 "delete Ingress.fwd id=2"};
    seeds.push_back(encodeFrame(FrameType::kBatch, encode(b)));
    Ack a;
    a.upToSeq = 2;
    seeds.push_back(encodeFrame(FrameType::kAck, encode(a)));
    BulkChunk c;
    c.last = true;
    c.updates = {"x"};
    seeds.push_back(encodeFrame(FrameType::kBulk, encode(c)));
    seeds.push_back(
        encodeFrame(FrameType::kError, encode(ErrorMsg{kErrBadFrame, "boom"})));
  }

  size_t framesOut = 0, errors = 0;
  for (int iter = 0; iter < 12000; ++iter) {
    std::vector<uint8_t> bytes;
    switch (rng() % 4) {
      case 0: {  // mutated valid frame: flip 1..8 bytes
        bytes = seeds[rng() % seeds.size()];
        size_t flips = 1 + rng() % 8;
        for (size_t i = 0; i < flips; ++i) {
          bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
        }
        break;
      }
      case 1: {  // truncated valid frame
        bytes = seeds[rng() % seeds.size()];
        bytes.resize(rng() % bytes.size());
        break;
      }
      case 2: {  // pure garbage
        bytes.resize(rng() % 256);
        for (auto& v : bytes) v = static_cast<uint8_t>(rng());
        break;
      }
      default: {  // valid frame followed by garbage (poisoned stream)
        bytes = seeds[rng() % seeds.size()];
        size_t extra = rng() % 64;
        for (size_t i = 0; i < extra; ++i) {
          bytes.push_back(static_cast<uint8_t>(rng()));
        }
        break;
      }
    }

    FrameDecoder dec;
    // Deliver in random-sized chunks to exercise reassembly paths too.
    size_t pos = 0;
    while (pos < bytes.size()) {
      size_t n = std::min<size_t>(1 + rng() % 37, bytes.size() - pos);
      dec.feed(bytes.data() + pos, n);
      pos += n;
      Frame f;
      FrameDecoder::Status st;
      while ((st = dec.next(&f)) == FrameDecoder::Status::kFrame) {
        ++framesOut;
        // Whatever the payload, a typed decode either succeeds or throws
        // WireError; any other escape is a codec bug.
        try {
          switch (f.type) {
            case FrameType::kHello:
              decodeHello(f.payload);
              break;
            case FrameType::kBatch:
              decodeBatch(f.payload);
              break;
            case FrameType::kAck:
              decodeAck(f.payload);
              break;
            case FrameType::kBulk:
              decodeBulkChunk(f.payload);
              break;
            case FrameType::kError:
              decodeErrorMsg(f.payload);
              break;
            default:
              break;
          }
        } catch (const WireError&) {
          // expected for mangled payloads
        }
      }
      if (st == FrameDecoder::Status::kError) {
        ++errors;
        break;
      }
    }
  }
  // The battery must have exercised both outcomes heavily.
  EXPECT_GT(framesOut, 1000u);
  EXPECT_GT(errors, 1000u);
}

// Checksum integrity: a single flipped payload bit can never surface as a
// "valid" frame with the mangled payload (misparse). Header mutations may
// legitimately still parse (e.g. a type-field flip with a compensating
// checksum is impossible; a type flip alone changes only the type).
TEST(WireFuzz, PayloadCorruptionNeverMisparses) {
  std::mt19937_64 rng(0xc0de);
  Batch b;
  b.firstSeq = 7;
  b.updates = {"insert T [1] -> a()"};
  std::vector<uint8_t> payload = encode(b);
  std::vector<uint8_t> frame = encodeFrame(FrameType::kBatch, payload);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes = frame;
    size_t at = kHeaderSize + rng() % payload.size();
    bytes[at] ^= static_cast<uint8_t>(1 + rng() % 255);
    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_EQ(dec.next(&f), FrameDecoder::Status::kError)
        << "payload flip at " << at << " slipped past the checksum";
  }
}

// ---------------------------------------------------------------------------
// Update::fromString hardening (the text inside batch frames)
// ---------------------------------------------------------------------------

// Malformed update texts must throw std::invalid_argument — never crash,
// hang, or throw anything else. Seeds come from real fuzzed updates, then
// get truncated mid-token, spliced with newlines/whitespace, and hit with
// oversized numbers.
TEST(WireFuzz, UpdateFromStringSurvivesMalformedText) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 40, /*seed=*/11);
  std::vector<std::string> seeds;
  for (const auto& u : script) seeds.push_back(u.toString());

  std::mt19937_64 rng(0xfeed);
  size_t parsed = 0, rejected = 0;
  auto tryParse = [&](const std::string& text) {
    try {
      runtime::Update u = runtime::Update::fromString(checked, text);
      ++parsed;
      // Anything that parses must satisfy the round-trip law.
      EXPECT_EQ(runtime::Update::fromString(checked, u.toString()).toString(),
                u.toString());
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
    // Any other exception type propagates and fails the test.
  };

  for (const auto& s : seeds) tryParse(s);  // round-trip sanity
  EXPECT_EQ(parsed, seeds.size());

  for (int iter = 0; iter < 12000; ++iter) {
    std::string t = seeds[rng() % seeds.size()];
    switch (rng() % 6) {
      case 0:  // truncate mid-token
        t.resize(rng() % (t.size() + 1));
        break;
      case 1: {  // splice a newline / embedded whitespace
        const char* splice[] = {"\n", "\r\n", "\t", "  ", "\n\n"};
        t.insert(rng() % (t.size() + 1), splice[rng() % 5]);
        break;
      }
      case 2: {  // oversized / overflowing number
        t.insert(rng() % (t.size() + 1), "184467440737095516199");
        break;
      }
      case 3: {  // flip one character
        if (!t.empty()) {
          t[rng() % t.size()] =
              static_cast<char>(32 + rng() % 95);
        }
        break;
      }
      case 4:  // trailing garbage
        t += " trailing garbage";
        break;
      default: {  // random short garbage string
        t.clear();
        size_t n = rng() % 48;
        for (size_t i = 0; i < n; ++i) {
          t += static_cast<char>(32 + rng() % 95);
        }
        break;
      }
    }
    tryParse(t);
  }
  // Most mutants must be rejected; a mutant that still parses is fine as
  // long as it round-trips (checked above).
  EXPECT_GT(rejected, 8000u);
}

TEST(WireFuzz, FromStringRejectsOverflowAndRangeAbuse) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 10, /*seed=*/3);
  std::string seed = script.front().toString();

  // A number that overflows uint64 must be a clean rejection.
  EXPECT_THROW(
      runtime::Update::fromString(checked, "delete Ingress.fwd id=99999999999999999999"),
      std::invalid_argument);
  // Trailing garbage after a structurally complete text must be rejected.
  EXPECT_THROW(runtime::Update::fromString(checked, seed + " extra"),
               std::invalid_argument);
  // Embedded newline can't silently terminate parsing early.
  EXPECT_THROW(runtime::Update::fromString(checked, seed + "\ninsert"),
               std::invalid_argument);
  EXPECT_THROW(runtime::Update::fromString(checked, ""),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Socket channel + endpoint integration
// ---------------------------------------------------------------------------

TEST(WireSocket, FrameChannelRoundTripOverSocketpair) {
  auto fds = socketPair();
  FrameChannel a(std::move(fds.first));
  FrameChannel b(std::move(fds.second));
  a.send(FrameType::kHello, encode(Hello{"dev0", "fp", 1}));
  Frame f;
  ASSERT_TRUE(b.recv(&f));
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(decodeHello(f.payload).deviceName, "dev0");
  a.close();
  EXPECT_FALSE(b.recv(&f));  // EOF is false, not a throw
}

TEST(WireSocket, TornFrameAtEofIsCleanClose) {
  auto fds = socketPair();
  // Write a header that promises more payload than ever arrives, then die.
  Writer w;
  w.u64(1);
  std::vector<uint8_t> bytes = encodeFrame(FrameType::kBatch, w.take());
  bytes.resize(bytes.size() - 3);  // torn mid-payload
  sendAll(fds.first.get(), bytes);
  fds.first.reset();
  FrameChannel b(std::move(fds.second));
  Frame f;
  EXPECT_FALSE(b.recv(&f));  // torn tail: the frame never happened
}

// ---------------------------------------------------------------------------
// Fleet transport equivalence + fault injection
// ---------------------------------------------------------------------------

// The acceptance property: equal update streams through the in-process and
// the socket transport yield byte-identical fleet digests (the CLI flavor
// of this lives in tests/wire_equiv.sh).
TEST(WireFleet, SocketAndInprocDigestsIdentical) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 24, /*seed=*/5);

  auto run = [&](fleet::Transport transport) {
    fleet::FleetOptions opts;
    opts.devices = 3;
    opts.jobs = 2;
    opts.transport = transport;
    fleet::FleetController fc(checked, opts);
    for (const auto& u : script) fc.broadcast(u);
    fc.drain();
    EXPECT_EQ(fc.failedDevices(), 0u);
    return fc.fleetDigest();
  };

  EXPECT_EQ(run(fleet::Transport::kInproc), run(fleet::Transport::kSocket));
}

TEST(WireFleet, SmallBatchWindowStillConverges) {
  // Degenerate pipelining (1-update batches, window of 1) must change
  // nothing but the frame count.
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/9);

  fleet::FleetOptions opts;
  opts.devices = 2;
  opts.transport = fleet::Transport::kSocket;
  opts.wireBatchSize = 1;
  opts.wireWindowBatches = 1;
  fleet::FleetController fc(checked, opts);
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();

  fleet::FleetOptions ref;
  ref.devices = 2;
  fleet::FleetController rc(checked, ref);
  for (const auto& u : script) rc.broadcast(u);
  rc.drain();

  EXPECT_EQ(fc.fleetDigest(), rc.fleetDigest());
}

// Kill the agent mid-stream: queued-but-unsent updates are dropped and
// counted, the member quarantines, and the rest of the fleet is untouched.
TEST(WireFleet, DisconnectAgentQuarantinesAndCountsLoss) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/6);

  fleet::FleetOptions opts;
  opts.devices = 2;
  opts.transport = fleet::Transport::kSocket;
  fleet::FleetController fc(checked, opts);
  size_t half = script.size() / 2;
  for (size_t i = 0; i < half; ++i) fc.broadcast(script[i]);
  fc.drain();

  for (size_t i = half; i < script.size(); ++i) fc.broadcast(script[i]);
  fc.disconnectAgent(0);  // daemon "dies" with dev0's second half queued
  fc.drain();

  fleet::DeviceStatus dead = fc.status(0);
  EXPECT_TRUE(dead.failed);
  EXPECT_EQ(dead.applied + dead.rejected, half);
  EXPECT_EQ(dead.dropped, script.size() - half);

  fleet::DeviceStatus alive = fc.status(1);
  EXPECT_FALSE(alive.failed);
  EXPECT_EQ(alive.applied + alive.rejected, script.size());
  EXPECT_EQ(fc.failedDevices(), 1u);
}

// Kill-mid-stream recovery, reusing the journal machinery: a socket fleet
// over a state root loses its daemon after the first half; a fresh fleet
// over the same root replays every journal, finishes the stream, and lands
// on the digest of an uninterrupted reference run.
TEST(WireFleet, KillAndRestartRecoversToReferenceDigest) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 20, /*seed=*/8);
  size_t half = script.size() / 2;
  StateDir dir("killrestart");

  {
    fleet::FleetOptions opts;
    opts.devices = 2;
    opts.transport = fleet::Transport::kSocket;
    opts.stateDirRoot = dir.str();
    fleet::FleetController fc(checked, opts);
    for (size_t i = 0; i < half; ++i) fc.broadcast(script[i]);
    fc.drain();
    for (size_t i = 0; i < fc.deviceCount(); ++i) {
      fc.disconnectAgent(i);  // the daemon dies; journals survive
    }
  }

  std::string restarted;
  {
    fleet::FleetOptions opts;
    opts.devices = 2;
    opts.transport = fleet::Transport::kSocket;
    opts.stateDirRoot = dir.str();
    fleet::FleetController fc(checked, opts);
    for (size_t i = 0; i < fc.deviceCount(); ++i) {
      // Every committed first-half update came back from the journal.
      EXPECT_GT(fc.status(i).replayed, 0u) << fc.deviceName(i);
      EXPECT_LE(fc.status(i).replayed, half) << fc.deviceName(i);
    }
    for (size_t i = half; i < script.size(); ++i) fc.broadcast(script[i]);
    fc.drain();
    EXPECT_EQ(fc.failedDevices(), 0u);
    restarted = fc.stateDigest(0);
    EXPECT_EQ(fc.stateDigest(1), restarted);
  }

  fleet::FleetOptions ref;
  ref.devices = 1;
  fleet::FleetController rc(checked, ref);
  for (const auto& u : script) rc.broadcast(u);
  rc.drain();
  EXPECT_EQ(restarted, rc.stateDigest(0));
}

// ---------------------------------------------------------------------------
// Deterministic recovery backoff
// ---------------------------------------------------------------------------

// With an injected clock and a fixed seed, the re-admission schedule is a
// pure function of the options: two fleets walk identical
// nextRecoverAtMicros sequences, and no wall-clock sneaks in.
TEST(WireFleet, BackoffScheduleIsDeterministicUnderInjectedClock) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 8, /*seed=*/4);

  auto schedule = [&](fleet::Transport transport) {
    auto now = std::make_shared<std::atomic<uint64_t>>(1000);
    fleet::FleetOptions opts;
    opts.devices = 2;
    opts.transport = transport;
    opts.faultPlan = controller::FaultPlan::parse("outage=1+1000000");
    opts.controller.seed = 21;
    opts.recovery.backoffBaseMicros = 500;
    opts.recovery.backoffMaxMicros = 8000;
    opts.recovery.clock = [now] { return now->load(); };
    fleet::FleetController fc(checked, opts);
    for (const auto& u : script) fc.broadcast(u);
    fc.drain();
    EXPECT_GE(fc.degradedDevices(), 1u);

    std::vector<uint64_t> next;
    for (int round = 0; round < 6; ++round) {
      fc.tryRecoverAll();
      for (size_t i = 0; i < fc.deviceCount(); ++i) {
        next.push_back(fc.status(i).nextRecoverAtMicros);
      }
      now->fetch_add(250);  // advance less than the base: some polls are
                            // "not due", which must also be deterministic
    }
    return next;
  };

  std::vector<uint64_t> a = schedule(fleet::Transport::kInproc);
  std::vector<uint64_t> b = schedule(fleet::Transport::kInproc);
  EXPECT_EQ(a, b);
  // The schedule derives from the injected clock's epoch, not wall time.
  for (uint64_t t : a) {
    if (t != 0) {
      EXPECT_GE(t, 1000u);
      EXPECT_LT(t, 1000u + 10 * 8000u);
    }
  }
}

}  // namespace
}  // namespace flay::wire
