#include <gtest/gtest.h>

#include "net/fuzzer.h"
#include "p4/typecheck.h"
#include "runtime/device_config.h"

namespace flay::runtime {
namespace {

const char* kProgram = R"(
header h_t { bit<8> a; bit<8> b; bit<32> ip; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_a(bit<8> v) { hdr.h.a = v; }
  action drop_pkt() { mark_to_drop(); }
  table exact_t {
    key = { hdr.h.a : exact; }
    actions = { set_a; drop_pkt; noop; }
    default_action = noop;
    size = 16;
  }
  table ternary_t {
    key = { hdr.h.a : ternary; hdr.h.b : ternary; }
    actions = { set_a; noop; }
    default_action = noop;
  }
  table lpm_t {
    key = { hdr.h.ip : lpm; }
    actions = { set_a; noop; }
    default_action = noop;
  }
  apply { exact_t.apply(); ternary_t.apply(); lpm_t.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)";

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest()
      : checked(p4::loadProgramFromString(kProgram)), config(checked) {}
  p4::CheckedProgram checked;
  DeviceConfig config;

  TableEntry exactEntry(uint64_t key, const std::string& action,
                        std::vector<BitVec> args = {}) {
    TableEntry e;
    e.matches.push_back(FieldMatch::exact(BitVec(8, key)));
    e.actionName = action;
    e.actionArgs = std::move(args);
    return e;
  }
};

TEST_F(RuntimeTest, ConfigEnumeratesTables) {
  EXPECT_TRUE(config.hasTable("C.exact_t"));
  EXPECT_TRUE(config.hasTable("C.ternary_t"));
  EXPECT_TRUE(config.hasTable("C.lpm_t"));
  EXPECT_FALSE(config.hasTable("C.ghost"));
  EXPECT_EQ(config.tables().size(), 3u);
}

TEST_F(RuntimeTest, InsertLookupRemove) {
  TableState& t = config.table("C.exact_t");
  uint64_t id = t.insert(exactEntry(7, "set_a", {BitVec(8, 99)}));
  EXPECT_EQ(t.size(), 1u);
  const TableEntry* hit = t.lookup({BitVec(8, 7)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionName, "set_a");
  EXPECT_EQ(hit->actionArgs[0].toUint64(), 99u);
  EXPECT_EQ(t.lookup({BitVec(8, 8)}), nullptr);
  t.remove(id);
  EXPECT_TRUE(t.empty());
}

TEST_F(RuntimeTest, RejectsSchemaViolations) {
  TableState& t = config.table("C.exact_t");
  // Wrong width.
  TableEntry wrongWidth;
  wrongWidth.matches.push_back(FieldMatch::exact(BitVec(16, 7)));
  wrongWidth.actionName = "noop";
  EXPECT_THROW(t.insert(wrongWidth), std::invalid_argument);
  // Wrong match kind.
  TableEntry wrongKind;
  wrongKind.matches.push_back(
      FieldMatch::ternary(BitVec(8, 7), BitVec(8, 0xFF)));
  wrongKind.actionName = "noop";
  EXPECT_THROW(t.insert(wrongKind), std::invalid_argument);
  // Unknown action.
  EXPECT_THROW(t.insert(exactEntry(1, "ghost")), std::invalid_argument);
  // Wrong arity.
  EXPECT_THROW(t.insert(exactEntry(1, "set_a")), std::invalid_argument);
  // Priority on non-ternary table.
  TableEntry prio = exactEntry(1, "noop");
  prio.priority = 5;
  EXPECT_THROW(t.insert(prio), std::invalid_argument);
  // Duplicates.
  t.insert(exactEntry(1, "noop"));
  EXPECT_THROW(t.insert(exactEntry(1, "noop")), std::invalid_argument);
}

TEST_F(RuntimeTest, TableCapacityEnforced) {
  TableState& t = config.table("C.exact_t");
  for (uint64_t i = 0; i < 16; ++i) t.insert(exactEntry(i, "noop"));
  EXPECT_THROW(t.insert(exactEntry(16, "noop")), std::invalid_argument);
}

TEST_F(RuntimeTest, TernaryPriorityWins) {
  TableState& t = config.table("C.ternary_t");
  TableEntry low;
  low.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  low.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  low.actionName = "noop";
  low.priority = 1;
  t.insert(low);

  TableEntry high;
  high.matches.push_back(
      FieldMatch::ternary(BitVec(8, 0xA0), BitVec(8, 0xF0)));
  high.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  high.actionName = "set_a";
  high.actionArgs.push_back(BitVec(8, 1));
  high.priority = 10;
  t.insert(high);

  const TableEntry* hit = t.lookup({BitVec(8, 0xAB), BitVec(8, 3)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionName, "set_a");
  // Key outside the high-priority region falls to the wildcard.
  hit = t.lookup({BitVec(8, 0x10), BitVec(8, 3)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionName, "noop");
}

TEST_F(RuntimeTest, LongestPrefixWins) {
  TableState& t = config.table("C.lpm_t");
  TableEntry p8;
  p8.matches.push_back(FieldMatch::lpm(BitVec(32, 0x0A000000), 8));
  p8.actionName = "set_a";
  p8.actionArgs.push_back(BitVec(8, 8));
  t.insert(p8);
  TableEntry p24;
  p24.matches.push_back(FieldMatch::lpm(BitVec(32, 0x0A010200), 24));
  p24.actionName = "set_a";
  p24.actionArgs.push_back(BitVec(8, 24));
  t.insert(p24);

  const TableEntry* hit = t.lookup({BitVec(32, 0x0A010203)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionArgs[0].toUint64(), 24u);
  hit = t.lookup({BitVec(32, 0x0AFF0001)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionArgs[0].toUint64(), 8u);
  EXPECT_EQ(t.lookup({BitVec(32, 0x0B000000)}), nullptr);
}

TEST_F(RuntimeTest, NormalizedEntriesDropEclipsed) {
  TableState& t = config.table("C.ternary_t");
  // High-priority wildcard eclipses everything below.
  TableEntry wildcard;
  wildcard.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  wildcard.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  wildcard.actionName = "set_a";
  wildcard.actionArgs.push_back(BitVec(8, 1));
  wildcard.priority = 100;
  t.insert(wildcard);

  TableEntry eclipsed;
  eclipsed.matches.push_back(
      FieldMatch::ternary(BitVec(8, 5), BitVec(8, 0xFF)));
  eclipsed.matches.push_back(
      FieldMatch::ternary(BitVec(8, 6), BitVec(8, 0xFF)));
  eclipsed.actionName = "noop";
  eclipsed.priority = 1;
  t.insert(eclipsed);

  auto normalized = t.normalizedEntries();
  ASSERT_EQ(normalized.size(), 1u);
  EXPECT_EQ(normalized[0]->actionName, "set_a");
  // reachableActions reflects only the visible entries + default.
  auto actions = t.reachableActions();
  EXPECT_EQ(actions.size(), 2u);  // set_a, noop(default)
}

TEST_F(RuntimeTest, EclipsedByNarrowerEntryIsKept) {
  TableState& t = config.table("C.ternary_t");
  TableEntry narrow;
  narrow.matches.push_back(FieldMatch::ternary(BitVec(8, 5), BitVec(8, 0xFF)));
  narrow.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  narrow.actionName = "noop";
  narrow.priority = 100;
  t.insert(narrow);
  TableEntry wide;
  wide.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  wide.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  wide.actionName = "set_a";
  wide.actionArgs.push_back(BitVec(8, 1));
  wide.priority = 1;
  t.insert(wide);
  // The wide entry is NOT eclipsed (it matches keys the narrow one doesn't).
  EXPECT_EQ(t.normalizedEntries().size(), 2u);
}

TEST_F(RuntimeTest, DefaultActionOverride) {
  TableState& t = config.table("C.exact_t");
  EXPECT_EQ(t.defaultActionName(), "noop");
  t.setDefaultAction("drop_pkt", {});
  EXPECT_EQ(t.defaultActionName(), "drop_pkt");
  EXPECT_THROW(t.setDefaultAction("ghost", {}), std::invalid_argument);
  EXPECT_THROW(t.setDefaultAction("set_a", {}), std::invalid_argument);
  t.setDefaultAction("set_a", {BitVec(8, 3)});
  EXPECT_EQ(t.defaultActionArgs()[0].toUint64(), 3u);
}

TEST_F(RuntimeTest, UpdatesThroughDeviceConfig) {
  Update ins = Update::insert("C.exact_t", exactEntry(5, "noop"));
  EXPECT_EQ(config.apply(ins), "C.exact_t");
  EXPECT_EQ(config.table("C.exact_t").size(), 1u);

  uint64_t id = config.table("C.exact_t").entries()[0].id;
  Update del = Update::remove("C.exact_t", id);
  config.apply(del);
  EXPECT_TRUE(config.table("C.exact_t").empty());

  Update bad = Update::insert("C.ghost", exactEntry(5, "noop"));
  EXPECT_THROW(config.apply(bad), std::invalid_argument);
}

TEST_F(RuntimeTest, FieldMatchCovers) {
  auto exact5 = FieldMatch::exact(BitVec(8, 5));
  auto wildcard = FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0));
  auto highNibble = FieldMatch::ternary(BitVec(8, 0x50), BitVec(8, 0xF0));
  EXPECT_TRUE(wildcard.covers(exact5));
  EXPECT_FALSE(exact5.covers(wildcard));
  EXPECT_TRUE(wildcard.covers(highNibble));
  EXPECT_TRUE(highNibble.covers(FieldMatch::exact(BitVec(8, 0x5A))));
  EXPECT_FALSE(highNibble.covers(exact5));
  EXPECT_TRUE(exact5.covers(exact5));
}

TEST_F(RuntimeTest, FuzzerGeneratesValidUniqueEntries) {
  net::EntryFuzzer fuzzer(1234);
  TableState& t = config.table("C.ternary_t");
  auto entries = fuzzer.uniqueEntries(t, 200);
  EXPECT_EQ(entries.size(), 200u);
  size_t inserted = 0;
  for (auto& e : entries) {
    t.insert(std::move(e));
    ++inserted;
  }
  EXPECT_EQ(t.size(), inserted);
}

TEST_F(RuntimeTest, FuzzerRespectsExclusions) {
  net::EntryFuzzer fuzzer(99);
  TableState& t = config.table("C.exact_t");
  auto entries = fuzzer.uniqueEntries(t, 10, {"drop_pkt", "set_a"});
  for (const auto& e : entries) EXPECT_EQ(e.actionName, "noop");
}

TEST_F(RuntimeTest, FuzzerRejectsTinyKeyspace) {
  net::EntryFuzzer fuzzer(7);
  TableState& t = config.table("C.exact_t");
  EXPECT_THROW(fuzzer.uniqueEntries(t, 10000), std::invalid_argument);
}

TEST_F(RuntimeTest, ValueSetStateMatching) {
  ValueSetState vs("test", 16, 4);
  EXPECT_TRUE(vs.empty());
  vs.insert(BitVec(16, 0x8100));
  vs.insert(BitVec(16, 0x9000), BitVec(16, 0xF000));
  EXPECT_TRUE(vs.matches(BitVec(16, 0x8100)));
  EXPECT_FALSE(vs.matches(BitVec(16, 0x8101)));
  EXPECT_TRUE(vs.matches(BitVec(16, 0x9ABC)));
  EXPECT_THROW(vs.insert(BitVec(8, 1)), std::invalid_argument);
  vs.remove(BitVec(16, 0x8100), BitVec::allOnes(16));
  EXPECT_FALSE(vs.matches(BitVec(16, 0x8100)));
}

// ---------------------------------------------------------------------------
// Deterministic tie-breaking. lookup() and normalizedEntries() share one
// comparator (TableState::precedes); these tests pin the tie-break rules —
// equal precedence resolves to the lowest entry id (oldest insert) — so a
// future "optimization" that diverges the two paths, or makes the winner
// depend on container order, fails loudly.

TEST_F(RuntimeTest, TernaryEqualPriorityTieBreaksByInsertOrder) {
  TableState& t = config.table("C.ternary_t");
  // Two overlapping entries at the same priority: a catch-all and a more
  // specific one. The key below matches both; only the id decides.
  TableEntry catchAll;
  catchAll.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  catchAll.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  catchAll.actionName = "set_a";
  catchAll.actionArgs.push_back(BitVec(8, 1));
  catchAll.priority = 7;
  TableEntry specific;
  specific.matches.push_back(
      FieldMatch::ternary(BitVec(8, 0x55), BitVec(8, 0xFF)));
  specific.matches.push_back(FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  specific.actionName = "set_a";
  specific.actionArgs.push_back(BitVec(8, 2));
  specific.priority = 7;

  uint64_t first = t.insert(catchAll);
  uint64_t second = t.insert(specific);
  ASSERT_LT(first, second);

  const TableEntry* hit = t.lookup({BitVec(8, 0x55), BitVec(8, 0xAA)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, first) << "equal priority must resolve to the oldest id";
  EXPECT_EQ(hit->actionArgs[0].toUint64(), 1u);

  // normalizedEntries() shares the comparator: the winner sorts first.
  auto sorted = t.normalizedEntries();
  ASSERT_FALSE(sorted.empty());
  EXPECT_EQ(sorted.front()->id, first);

  // Higher priority still beats an older entry.
  TableEntry urgent = specific;
  urgent.matches[0] = FieldMatch::ternary(BitVec(8, 0x55), BitVec(8, 0xFF));
  urgent.actionArgs[0] = BitVec(8, 3);
  urgent.priority = 9;
  uint64_t third = t.insert(urgent);
  const TableEntry* hit2 = t.lookup({BitVec(8, 0x55), BitVec(8, 0xAA)});
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->id, third);
}

TEST_F(RuntimeTest, LpmEqualPrefixLenOrdersByInsertOrder) {
  TableState& t = config.table("C.lpm_t");
  auto entry = [](uint64_t net, uint32_t prefixLen, uint64_t arg) {
    TableEntry e;
    e.matches.push_back(FieldMatch::lpm(BitVec(32, net), prefixLen));
    e.actionName = "set_a";
    e.actionArgs.push_back(BitVec(8, arg));
    return e;
  };
  // Sibling /8 routes: equal prefix length, disjoint — the normalized order
  // between them is pinned to insert order (lowest id first), so the
  // specialized program is stable across runs and container orders.
  uint64_t second = 0, first = 0;
  first = t.insert(entry(0x0B000000, 8, 2));   // 11/8 inserted first
  second = t.insert(entry(0x0A000000, 8, 1));  // 10/8 inserted second
  ASSERT_LT(first, second);

  auto sorted = t.normalizedEntries();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0]->id, first);
  EXPECT_EQ(sorted[1]->id, second);

  // Lookup picks the (unique) matching entry either way.
  const TableEntry* hit = t.lookup({BitVec(32, 0x0A00002A)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, second);

  // A longer prefix beats an older shorter one, id notwithstanding.
  uint64_t third = t.insert(entry(0x0A000000, 16, 3));  // 10.0/16
  const TableEntry* hit2 = t.lookup({BitVec(32, 0x0A00002A)});
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->id, third);
  auto resorted = t.normalizedEntries();
  ASSERT_FALSE(resorted.empty());
  EXPECT_EQ(resorted.front()->id, third) << "longest prefix sorts first";
}

// The signature/id indexes behind O(1) duplicate detection must stay
// consistent across the full mutation cycle: duplicate rejects, remove
// releases the signature, modify keeps id lookups working, and reserve is
// purely a capacity hint.
TEST_F(RuntimeTest, DuplicateIndexSurvivesMutationCycle) {
  TableState& t = config.table("C.exact_t");
  t.reserve(16);
  uint64_t id = t.insert(exactEntry(1, "set_a", {BitVec(8, 10)}));
  // Same match signature, different action: still a duplicate.
  EXPECT_THROW(t.insert(exactEntry(1, "drop_pkt")), std::invalid_argument);

  t.remove(id);
  EXPECT_EQ(t.size(), 0u);
  uint64_t id2 = t.insert(exactEntry(1, "drop_pkt"));
  EXPECT_NE(id, id2) << "ids are never reused";
  EXPECT_THROW(t.insert(exactEntry(1, "set_a", {BitVec(8, 9)})),
               std::invalid_argument);

  // Modify by id keeps the entry findable and its signature claimed.
  TableEntry mod = exactEntry(1, "set_a", {BitVec(8, 42)});
  mod.id = id2;
  t.modify(mod);
  const TableEntry* hit = t.lookup({BitVec(8, 1)});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actionName, "set_a");
  EXPECT_THROW(t.insert(exactEntry(1, "noop")), std::invalid_argument);

  // reserve() is a pure capacity hint; the index still detects duplicates
  // afterward.
  t.reserve(1000);
  t.insert(exactEntry(2, "set_a", {BitVec(8, 1)}));
  EXPECT_THROW(t.insert(exactEntry(2, "set_a", {BitVec(8, 1)})),
               std::invalid_argument);
  EXPECT_EQ(t.size(), 2u);
}

// normalizedEntries() skips its quadratic eclipse scan for exact/lpm
// tables — but only while no modify()-made duplicate match sets exist,
// the one way two such entries can shadow each other.
TEST_F(RuntimeTest, ModifyMadeDuplicateDisablesNoEclipseFastPath) {
  TableState& t = config.table("C.lpm_t");
  auto mk = [](uint64_t net, uint32_t plen, uint64_t arg) {
    TableEntry e;
    e.matches.push_back(FieldMatch::lpm(BitVec(32, net), plen));
    e.actionName = "set_a";
    e.actionArgs.push_back(BitVec(8, arg));
    return e;
  };
  uint64_t a = t.insert(mk(0x0A000000, 8, 1));
  uint64_t b = t.insert(mk(0x0B000000, 8, 2));
  EXPECT_EQ(t.normalizedEntries().size(), 2u);

  TableEntry dup = mk(0x0A000000, 8, 3);
  dup.id = b;
  t.modify(dup);
  auto norm = t.normalizedEntries();
  ASSERT_EQ(norm.size(), 1u);
  EXPECT_EQ(norm[0]->id, a) << "earlier id must shadow the duplicate";

  // Removing the original releases the signature; the fast path applies
  // again and the surviving entry normalizes alone.
  t.remove(a);
  auto after = t.normalizedEntries();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0]->id, b);
}

}  // namespace
}  // namespace flay::runtime
