#include <gtest/gtest.h>

#include <random>

#include "expr/analysis.h"
#include "expr/arena.h"
#include "expr/eval.h"
#include "expr/printer.h"
#include "expr/substitute.h"

namespace flay::expr {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprArena arena;
  ExprRef bv(uint32_t w, uint64_t v) { return arena.bvConst(w, v); }
  ExprRef dp(const char* name, uint32_t w = 32) {
    return arena.var(name, w, SymbolClass::kDataPlane);
  }
  ExprRef cp(const char* name, uint32_t w = 32) {
    return arena.var(name, w, SymbolClass::kControlPlane);
  }
};

TEST_F(ExprTest, HashConsingSharesNodes) {
  ExprRef a = arena.add(dp("x"), bv(32, 5));
  ExprRef b = arena.add(dp("x"), bv(32, 5));
  EXPECT_EQ(a, b);
  // Commutativity canonicalization: x + 5 == 5 + x.
  EXPECT_EQ(arena.add(bv(32, 5), dp("x")), a);
}

TEST_F(ExprTest, ConstantFoldArithmetic) {
  EXPECT_EQ(arena.add(bv(8, 200), bv(8, 100)), bv(8, 44));  // wraps
  EXPECT_EQ(arena.sub(bv(8, 1), bv(8, 2)), bv(8, 255));
  EXPECT_EQ(arena.mul(bv(8, 7), bv(8, 6)), bv(8, 42));
  EXPECT_EQ(arena.udiv(bv(8, 42), bv(8, 5)), bv(8, 8));
  EXPECT_EQ(arena.urem(bv(8, 42), bv(8, 5)), bv(8, 2));
}

TEST_F(ExprTest, IdentityFolds) {
  ExprRef x = dp("x");
  EXPECT_EQ(arena.add(x, bv(32, 0)), x);
  EXPECT_EQ(arena.sub(x, bv(32, 0)), x);
  EXPECT_EQ(arena.sub(x, x), bv(32, 0));
  EXPECT_EQ(arena.mul(x, bv(32, 1)), x);
  EXPECT_TRUE(arena.isConst(arena.mul(x, bv(32, 0))));
  EXPECT_EQ(arena.bvAnd(x, arena.bvConst(BitVec::allOnes(32))), x);
  EXPECT_EQ(arena.bvAnd(x, bv(32, 0)), bv(32, 0));
  EXPECT_EQ(arena.bvOr(x, bv(32, 0)), x);
  EXPECT_EQ(arena.bvXor(x, x), bv(32, 0));
  EXPECT_EQ(arena.bvAnd(x, x), x);
  EXPECT_EQ(arena.bvNot(arena.bvNot(x)), x);
}

TEST_F(ExprTest, StrengthReduction) {
  ExprRef x = dp("x");
  // x * 8 becomes x << 3.
  ExprRef m = arena.mul(x, bv(32, 8));
  EXPECT_EQ(arena.node(m).kind, ExprKind::kShl);
  EXPECT_EQ(arena.node(m).b, 3u);
  // x / 4 becomes x >> 2, x % 16 becomes x & 15.
  EXPECT_EQ(arena.node(arena.udiv(x, bv(32, 4))).kind, ExprKind::kLShr);
  ExprRef r = arena.urem(x, bv(32, 16));
  EXPECT_EQ(arena.node(r).kind, ExprKind::kAnd);
}

TEST_F(ExprTest, ComplementFolds) {
  ExprRef x = dp("x");
  EXPECT_EQ(arena.bvAnd(x, arena.bvNot(x)), bv(32, 0));
  EXPECT_TRUE(arena.constValue(arena.bvOr(x, arena.bvNot(x))).isAllOnes());
  ExprRef p = arena.boolVar("p", SymbolClass::kDataPlane);
  EXPECT_TRUE(arena.isFalse(arena.bAnd(p, arena.bNot(p))));
  EXPECT_TRUE(arena.isTrue(arena.bOr(p, arena.bNot(p))));
}

TEST_F(ExprTest, ExtractSimplifications) {
  ExprRef x = dp("x", 32);
  // Full-range extract is the identity.
  EXPECT_EQ(arena.extract(x, 31, 0), x);
  // extract of extract composes.
  ExprRef inner = arena.extract(x, 23, 8);   // 16 bits
  ExprRef outer = arena.extract(inner, 7, 0);  // low 8 of those
  EXPECT_EQ(outer, arena.extract(x, 15, 8));
  // extract inside zext padding is zero.
  ExprRef ze = arena.zext(dp("y", 8), 32);
  EXPECT_EQ(arena.extract(ze, 31, 16), bv(16, 0));
  EXPECT_EQ(arena.extract(ze, 7, 0), dp("y", 8));
}

TEST_F(ExprTest, ConcatSimplifications) {
  ExprRef lo = dp("lo", 8);
  ExprRef hi = dp("hi", 8);
  ExprRef c = arena.concat(hi, lo);
  EXPECT_EQ(arena.width(c), 16u);
  EXPECT_EQ(arena.extract(c, 7, 0), lo);
  EXPECT_EQ(arena.extract(c, 15, 8), hi);
  // Zero high part folds to zext.
  EXPECT_EQ(arena.concat(bv(8, 0), lo), arena.zext(lo, 16));
}

TEST_F(ExprTest, PredicateFolds) {
  ExprRef x = dp("x");
  EXPECT_TRUE(arena.isTrue(arena.eq(x, x)));
  EXPECT_TRUE(arena.isFalse(arena.eq(bv(32, 1), bv(32, 2))));
  EXPECT_TRUE(arena.isTrue(arena.eq(bv(32, 3), bv(32, 3))));
  EXPECT_TRUE(arena.isFalse(arena.ult(x, x)));
  EXPECT_TRUE(arena.isTrue(arena.ule(x, x)));
  EXPECT_TRUE(arena.isFalse(arena.ult(x, bv(32, 0))));
  EXPECT_TRUE(arena.isTrue(arena.ule(bv(32, 0), x)));
}

TEST_F(ExprTest, IteFolds) {
  ExprRef p = arena.boolVar("p", SymbolClass::kControlPlane);
  ExprRef a = dp("a");
  ExprRef b = dp("b");
  EXPECT_EQ(arena.ite(arena.boolConst(true), a, b), a);
  EXPECT_EQ(arena.ite(arena.boolConst(false), a, b), b);
  EXPECT_EQ(arena.ite(p, a, a), a);
  // Negated condition swaps the arms.
  EXPECT_EQ(arena.ite(arena.bNot(p), a, b), arena.ite(p, b, a));
  // Boolean-arm folds.
  ExprRef q = arena.boolVar("q", SymbolClass::kControlPlane);
  EXPECT_EQ(arena.ite(p, arena.boolConst(true), arena.boolConst(false)), p);
  EXPECT_EQ(arena.ite(p, arena.boolConst(false), arena.boolConst(true)),
            arena.bNot(p));
  EXPECT_EQ(arena.ite(p, arena.boolConst(true), q), arena.bOr(p, q));
  EXPECT_EQ(arena.ite(p, q, arena.boolConst(false)), arena.bAnd(p, q));
}

TEST_F(ExprTest, NestedIteSameCondCollapses) {
  ExprRef p = arena.boolVar("p", SymbolClass::kControlPlane);
  ExprRef a = dp("a");
  ExprRef b = dp("b");
  ExprRef c = dp("c");
  // ite(p, ite(p, a, b), c) == ite(p, a, c)
  EXPECT_EQ(arena.ite(p, arena.ite(p, a, b), c), arena.ite(p, a, c));
  // ite(p, a, ite(p, b, c)) == ite(p, a, c)
  EXPECT_EQ(arena.ite(p, a, arena.ite(p, b, c)), arena.ite(p, a, c));
}

TEST_F(ExprTest, SymbolClassConflictThrows) {
  arena.var("v", 32, SymbolClass::kDataPlane);
  EXPECT_THROW(arena.var("v", 32, SymbolClass::kControlPlane),
               std::invalid_argument);
  EXPECT_THROW(arena.var("v", 16, SymbolClass::kDataPlane),
               std::invalid_argument);
}

TEST_F(ExprTest, SubstitutionSpecializes) {
  // The Fig. 5 shape: egress_port = cfg ? (act == set ? param : 0) : 0
  ExprRef cfg = arena.boolVar("t_configured", SymbolClass::kControlPlane);
  ExprRef act = cp("t_action", 2);
  ExprRef param = cp("t_param", 9);
  ExprRef port =
      arena.ite(cfg,
                arena.ite(arena.eq(act, bv(2, 1)), param,
                          bv(9, 0)),
                bv(9, 0));

  // Empty table: cfg = false -> port is the constant 0.
  Substitution empty(arena);
  empty.bindConst("t_configured", false, SymbolClass::kControlPlane);
  EXPECT_EQ(empty.apply(port), bv(9, 0));

  // Entry installed: cfg = true, action = set(1), param = 1.
  Substitution installed(arena);
  installed.bindConst("t_configured", true, SymbolClass::kControlPlane);
  installed.bindConst("t_action", BitVec(2, 1), SymbolClass::kControlPlane);
  installed.bindConst("t_param", BitVec(9, 1), SymbolClass::kControlPlane);
  EXPECT_EQ(installed.apply(port), bv(9, 1));
}

TEST_F(ExprTest, SubstitutionLeavesUnboundAlone) {
  ExprRef x = dp("x");
  ExprRef y = cp("y");
  ExprRef sum = arena.add(x, y);
  Substitution s(arena);
  s.bindConst("y", BitVec(32, 10), SymbolClass::kControlPlane);
  ExprRef result = s.apply(sum);
  EXPECT_EQ(result, arena.add(x, bv(32, 10)));
  // x is untouched.
  EXPECT_EQ(s.apply(x), x);
}

TEST_F(ExprTest, SubstituteExprForVar) {
  ExprRef x = dp("x");
  ExprRef y = dp("y");
  Substitution s(arena);
  s.bind(x, arena.add(y, bv(32, 1)));
  EXPECT_EQ(s.apply(arena.mul(x, bv(32, 2))),
            arena.mul(arena.add(y, bv(32, 1)), bv(32, 2)));
}

TEST_F(ExprTest, SubstitutionSortMismatchThrows) {
  ExprRef x = dp("x", 32);
  Substitution s(arena);
  EXPECT_THROW(s.bind(x, bv(16, 0)), std::invalid_argument);
  EXPECT_THROW(s.bind(arena.add(x, x), bv(32, 0)), std::invalid_argument);
}

TEST_F(ExprTest, EvaluatorComputesConcreteValues) {
  ExprRef x = dp("x", 16);
  ExprRef y = dp("y", 16);
  ExprRef e = arena.add(arena.mul(x, bv(16, 3)), y);
  Evaluator ev(arena);
  ev.bindVar(x, BitVec(16, 10));
  ev.bindVar(y, BitVec(16, 5));
  EXPECT_EQ(ev.evaluateBv(e).toUint64(), 35u);
}

TEST_F(ExprTest, EvaluatorHandlesAllOps) {
  ExprRef x = dp("x", 8);
  Evaluator ev(arena);
  ev.bindVar(x, BitVec(8, 0b1100));
  EXPECT_EQ(ev.evaluateBv(arena.bvAnd(x, bv(8, 0b1010))).toUint64(), 0b1000u);
  EXPECT_EQ(ev.evaluateBv(arena.bvOr(x, bv(8, 0b0011))).toUint64(), 0b1111u);
  EXPECT_EQ(ev.evaluateBv(arena.bvXor(x, bv(8, 0b1111))).toUint64(), 0b0011u);
  EXPECT_EQ(ev.evaluateBv(arena.bvNot(x)).toUint64(), 0b11110011u);
  EXPECT_EQ(ev.evaluateBv(arena.shl(x, 2)).toUint64(), 0b110000u);
  EXPECT_EQ(ev.evaluateBv(arena.lshr(x, 2)).toUint64(), 0b11u);
  EXPECT_EQ(ev.evaluateBv(arena.extract(x, 3, 2)).toUint64(), 0b11u);
  EXPECT_EQ(ev.evaluateBv(arena.zext(x, 16)).width(), 16u);
  EXPECT_TRUE(ev.evaluateBool(arena.ult(x, bv(8, 100))));
  EXPECT_TRUE(ev.evaluateBool(arena.eq(x, bv(8, 12))));
}

TEST_F(ExprTest, EvaluatorUnboundThrows) {
  ExprRef x = dp("x");
  Evaluator ev(arena);
  EXPECT_THROW(ev.evaluate(x), std::runtime_error);
  EXPECT_FALSE(ev.tryEvaluate(x).has_value());
}

TEST_F(ExprTest, EvaluatorIteShortCircuitValue) {
  ExprRef p = arena.boolVar("p", SymbolClass::kDataPlane);
  ExprRef e = arena.ite(p, bv(8, 1), bv(8, 2));
  Evaluator ev(arena);
  ev.bindVar(p, true);
  EXPECT_EQ(ev.evaluateBv(e).toUint64(), 1u);
  ev.bindVar(p, false);
  EXPECT_EQ(ev.evaluateBv(e).toUint64(), 2u);
}

TEST_F(ExprTest, CollectSymbolsByClass) {
  ExprRef e = arena.add(dp("pkt_field"), cp("table_param"));
  auto dpSyms = collectSymbols(arena, e, SymbolClass::kDataPlane);
  auto cpSyms = collectSymbols(arena, e, SymbolClass::kControlPlane);
  EXPECT_EQ(dpSyms.size(), 1u);
  EXPECT_EQ(cpSyms.size(), 1u);
  EXPECT_EQ(collectSymbols(arena, e).size(), 2u);
  EXPECT_FALSE(isFreeOf(arena, e, SymbolClass::kControlPlane));
  EXPECT_TRUE(isFreeOf(arena, bv(32, 1), SymbolClass::kControlPlane));
}

TEST_F(ExprTest, SizeMetrics) {
  ExprRef x = dp("x");
  ExprRef shared = arena.add(x, bv(32, 1));
  ExprRef e = arena.mul(shared, shared);
  // DAG: mul, add, x, 1 -> 4 nodes. Tree: mul + 2*(add,x,1) -> 7.
  EXPECT_EQ(dagSize(arena, e), 4u);
  EXPECT_EQ(treeSize(arena, e), 7u);
  EXPECT_EQ(depth(arena, e), 3u);
}

TEST_F(ExprTest, PrinterPaperNotation) {
  ExprRef cfg = arena.boolVar("t_cfg", SymbolClass::kControlPlane);
  ExprRef pkt = dp("h_dst", 8);
  ExprRef e = arena.ite(cfg, pkt, bv(8, 0));
  std::string s = toString(arena, e);
  EXPECT_NE(s.find("|t_cfg|"), std::string::npos);
  EXPECT_NE(s.find("@h_dst@"), std::string::npos);
  EXPECT_NE(s.find("0x00"), std::string::npos);
}

TEST_F(ExprTest, PrinterDepthLimit) {
  ExprRef e = dp("x");
  for (int i = 0; i < 20; ++i) e = arena.add(e, dp(("v" + std::to_string(i)).c_str()));
  PrintOptions opts;
  opts.maxDepth = 3;
  std::string s = toString(arena, e, opts);
  EXPECT_NE(s.find("..."), std::string::npos);
}


TEST_F(ExprTest, EqPushesIntoIteWithConstantArms) {
  ExprRef p = arena.boolVar("p", SymbolClass::kControlPlane);
  ExprRef x = dp("x", 8);
  // (p ? 3 : 4) == 3 folds to p.
  ExprRef selector = arena.ite(p, arena.bvConst(8, 3), arena.bvConst(8, 4));
  EXPECT_EQ(arena.eq(selector, arena.bvConst(8, 3)), p);
  EXPECT_EQ(arena.eq(selector, arena.bvConst(8, 4)), arena.bNot(p));
  // Neither arm matches: constant false.
  EXPECT_TRUE(arena.isFalse(arena.eq(selector, arena.bvConst(8, 9))));
  // One constant arm + one general arm still narrows.
  ExprRef mixed = arena.ite(p, arena.bvConst(8, 3), x);
  ExprRef r = arena.eq(mixed, arena.bvConst(8, 3));
  // r == ite(p, true, x == 3) == p || (x == 3)
  EXPECT_EQ(r, arena.bOr(p, arena.eq(x, arena.bvConst(8, 3))));
  // Chains (table selector shapes) fully collapse.
  ExprRef q = arena.boolVar("q", SymbolClass::kControlPlane);
  ExprRef chain = arena.ite(p, arena.bvConst(8, 0),
                            arena.ite(q, arena.bvConst(8, 1),
                                      arena.bvConst(8, 2)));
  ExprRef isOne = arena.eq(chain, arena.bvConst(8, 1));
  EXPECT_EQ(isOne, arena.bAnd(arena.bNot(p), q));
}

TEST_F(ExprTest, EqIntoItePreservesSemantics) {
  // Property check via the evaluator across all inputs of a small domain.
  ExprRef p = arena.boolVar("p", SymbolClass::kDataPlane);
  ExprRef x = dp("x", 4);
  ExprRef e = arena.eq(arena.ite(p, arena.bvConst(4, 5), x),
                       arena.bvConst(4, 5));
  for (int pb = 0; pb < 2; ++pb) {
    for (uint64_t xv = 0; xv < 16; ++xv) {
      Evaluator ev(arena);
      ev.bindVar(p, pb == 1);
      ev.bindVar(x, BitVec(4, xv));
      EXPECT_EQ(ev.evaluateBool(e), pb == 1 || xv == 5)
          << "p=" << pb << " x=" << xv;
    }
  }
}

// Property: random expressions — folding never changes concrete semantics.
// Build the same expression twice: once through the folding arena, once
// evaluated directly; both must agree for random inputs.
class FoldSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(FoldSoundnessTest, RandomExprsEvaluateConsistently) {
  std::mt19937_64 rng(GetParam());
  ExprArena arena;
  const uint32_t w = 16;
  ExprRef x = arena.var("x", w, SymbolClass::kDataPlane);
  ExprRef y = arena.var("y", w, SymbolClass::kDataPlane);

  // Reference evaluation tracking alongside construction.
  BitVec xv(w, rng());
  BitVec yv(w, rng());
  struct Pair {
    ExprRef e;
    BitVec v;
  };
  std::vector<Pair> pool = {{x, xv}, {y, yv}};
  for (int i = 0; i < 40; ++i) {
    BitVec cv(w, rng());
    pool.push_back({arena.bvConst(cv), cv});
  }
  Evaluator ev(arena);
  ev.bindVar(x, xv);
  ev.bindVar(y, yv);

  for (int step = 0; step < 300; ++step) {
    const Pair& a = pool[rng() % pool.size()];
    const Pair& b = pool[rng() % pool.size()];
    int op = static_cast<int>(rng() % 8);
    ExprRef e;
    BitVec expect(w, 0);
    switch (op) {
      case 0: e = arena.add(a.e, b.e); expect = a.v.add(b.v); break;
      case 1: e = arena.sub(a.e, b.e); expect = a.v.sub(b.v); break;
      case 2: e = arena.mul(a.e, b.e); expect = a.v.mul(b.v); break;
      case 3: e = arena.bvAnd(a.e, b.e); expect = a.v.bitAnd(b.v); break;
      case 4: e = arena.bvOr(a.e, b.e); expect = a.v.bitOr(b.v); break;
      case 5: e = arena.bvXor(a.e, b.e); expect = a.v.bitXor(b.v); break;
      case 6: e = arena.bvNot(a.e); expect = a.v.bitNot(); break;
      case 7: {
        ExprRef c = arena.ult(a.e, b.e);
        e = arena.ite(c, a.e, b.e);
        expect = a.v.ult(b.v) ? a.v : b.v;
        break;
      }
    }
    ASSERT_EQ(ev.evaluateBv(e), expect) << "op " << op << " step " << step;
    pool.push_back({e, expect});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldSoundnessTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Node-storage reallocation tracking: the arena bumps nodeGeneration()
// whenever intern() moves node storage, i.e. whenever `const ExprNode&`
// references previously returned by node() become dangling (the PR 2
// use-after-free class). PinnedNode turns that into a checkable guard.

TEST_F(ExprTest, NodeGenerationAdvancesOnReallocation) {
  uint64_t start = arena.nodeGeneration();
  // Interning many distinct nodes must cross at least one capacity boundary
  // (under FLAY_EXPR_POISON_REALLOC it advances on every single intern).
  for (uint64_t i = 0; i < 4096; ++i) bv(32, i);
  EXPECT_GT(arena.nodeGeneration(), start);
}

TEST_F(ExprTest, NodeGenerationStableWithoutInterning) {
  ExprRef a = arena.add(dp("x"), bv(32, 5));
  uint64_t gen = arena.nodeGeneration();
  // Re-interning existing nodes appends nothing, so no reallocation.
  ExprRef b = arena.add(dp("x"), bv(32, 5));
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.nodeGeneration(), gen);
}

TEST_F(ExprTest, PinnedNodeDetectsReallocationAndRefreshes) {
  ExprRef a = arena.add(dp("x"), bv(32, 5));
  PinnedNode pin(arena, a);
  ASSERT_TRUE(pin.fresh());
  const ExprNode copy = *pin;  // safe: copies while fresh

  // Force at least one reallocation.
  uint64_t before = arena.nodeGeneration();
  for (uint64_t i = 0; i < 4096 && arena.nodeGeneration() == before; ++i) {
    bv(32, 1000000 + i);
  }
  ASSERT_GT(arena.nodeGeneration(), before);
  EXPECT_FALSE(pin.fresh());

  // After refresh() the pin is valid again and re-fetches the same node
  // data: hash-consed nodes are immutable even though storage moved.
  pin.refresh();
  ASSERT_TRUE(pin.fresh());
  EXPECT_EQ(*pin, copy);
  EXPECT_EQ(pin->kind, copy.kind);
}

}  // namespace
}  // namespace flay::expr
