#include <gtest/gtest.h>

#include "flay/engine.h"
#include "flay/specializer.h"
#include "net/workloads.h"
#include "tofino/compiler.h"

namespace flay {
namespace {

using flay::FlayOptions;
using flay::FlayService;
using flay::Specializer;

// Every bundled program must parse, type-check, and survive data-plane
// analysis + a pipeline compile.
class ProgramSuiteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProgramSuiteTest, LoadsAndChecks) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(GetParam()));
  EXPECT_GT(checked.program.statementCount(), 10u);
  EXPECT_FALSE(checked.env.fields().empty());
}

TEST_P(ProgramSuiteTest, AnalyzesUnderFlay) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(GetParam()));
  FlayOptions options;
  options.analysis.analyzeParser = false;  // Table 2 mode for large programs
  FlayService service(checked, options);
  EXPECT_FALSE(service.analysis().annotations.points().empty());
  EXPECT_FALSE(service.analysis().tables.empty());
}

TEST_P(ProgramSuiteTest, CompilesOntoPipeline) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath(GetParam()));
  tofino::CompilerOptions copts;
  copts.searchIterations = 20;  // keep unit tests fast
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);
  tofino::CompileResult result = compiler.compile(checked);
  EXPECT_TRUE(result.fits) << result.error;
  EXPECT_GT(result.stagesUsed, 0u);
  EXPECT_LE(result.stagesUsed, compiler.model().numStages);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ProgramSuiteTest,
                         ::testing::Values("scion", "switch", "middleblock",
                                           "dash", "beaucoup", "accturbo",
                                           "dta"));

// The §4.2 SCION experiment: full program needs the maximum number of
// stages; the IPv4-only specialization needs ~20% fewer; enabling IPv6
// brings it back to max.
TEST(ScionStages, SpecializationSavesTwentyPercent) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  tofino::CompilerOptions copts;
  copts.searchIterations = 30;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);

  tofino::CompileResult unspecialized = compiler.compile(checked);
  ASSERT_TRUE(unspecialized.fits) << unspecialized.error;
  EXPECT_EQ(unspecialized.stagesUsed, compiler.model().numStages)
      << "unspecialized SCION must need the full pipeline";

  FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(32)) service.applyUpdate(u);

  auto specialized = Specializer(service).specialize();
  p4::CheckedProgram respecialized =
      flay::recheck(std::move(specialized.program));
  tofino::CompileResult v4Only = compiler.compile(respecialized);
  ASSERT_TRUE(v4Only.fits) << v4Only.error;
  EXPECT_LT(v4Only.stagesUsed, unspecialized.stagesUsed);
  double saving =
      1.0 - static_cast<double>(v4Only.stagesUsed) / unspecialized.stagesUsed;
  EXPECT_NEAR(saving, 0.20, 0.07)
      << "IPv4-only SCION should use ~20% fewer stages, got "
      << v4Only.stagesUsed << " vs " << unspecialized.stagesUsed;

  // Enable IPv6: Flay must flag a semantic change, and the respecialized
  // program is back at the maximum.
  auto verdict = service.applyBatch(net::scionV6Config(8));
  EXPECT_TRUE(verdict.needsRecompilation)
      << "enabling the unused IPv6 paths must trigger respecialization";
  auto withV6 = Specializer(service).specialize();
  p4::CheckedProgram v6Checked = flay::recheck(std::move(withV6.program));
  tofino::CompileResult v6Result = compiler.compile(v6Checked);
  ASSERT_TRUE(v6Result.fits) << v6Result.error;
  EXPECT_EQ(v6Result.stagesUsed, unspecialized.stagesUsed);
}

// The §4.2 burst experiment: 1000 semantics-preserving route updates are
// classified without triggering recompilation.
TEST(ScionBurst, RouteBurstNeedsNoRecompilation) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("scion"));
  FlayService service(checked);
  for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
  for (const auto& u : net::scionV4Config(4)) service.applyUpdate(u);
  flay::Specializer(service).specialize();

  // After the initial routes, further unique prefixes widen the hit
  // condition: semantic changes at the expression level are expected for
  // the first few, but the v4 chain's *structure* (which actions run) is
  // stable. What the paper measures is throughput: the batch completes
  // quickly and is attributed to the right component.
  auto burst = net::scionV4RouteBurst(1000);
  auto verdict = service.applyBatch(burst);
  EXPECT_EQ(service.config().table("ScionIngress.v4_t01").size(), 1004u);
  for (const auto& c : verdict.changedComponents) {
    EXPECT_NE(c.find("v4_t01"), std::string::npos)
        << "only the route table's component may change, got " << c;
  }
  // Batch analysis must stay under a second (paper: "within a second").
  EXPECT_LT(verdict.analysisTime.count(), 1000000);
}

TEST(MiddleblockAcl, EntriesInstallAndOverapproximate) {
  p4::CheckedProgram checked =
      p4::loadProgramFromFile(net::programPath("middleblock"));
  FlayOptions options;
  options.encoder.overapproxThreshold = 100;
  FlayService service(checked, options);
  auto verdictSmall = service.applyBatch(net::middleblockAclEntries(50));
  EXPECT_FALSE(verdictSmall.overapproximated);
  auto verdictBig = service.applyBatch(net::middleblockAclEntries(100, 99));
  EXPECT_TRUE(verdictBig.overapproximated);
}

TEST(ProgramSuite, StatementCountsOrderLikeTable2) {
  auto count = [](const char* name) {
    return p4::loadProgramFromFile(net::programPath(name))
        .program.statementCount();
  };
  size_t scion = count("scion");
  size_t sw = count("switch");
  size_t mb = count("middleblock");
  size_t dash = count("dash");
  // Table 2's ordering: switch > scion > dash > middleblock.
  EXPECT_GT(sw, scion);
  EXPECT_GT(scion, dash);
  EXPECT_GT(dash, mb);
}

}  // namespace
}  // namespace flay
