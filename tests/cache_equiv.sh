#!/bin/sh
# Cache/parallel/incremental-SAT equivalence test for the semantics-check
# engine.
#
#   cache_equiv.sh <path-to-flayc> <programs-dir>
#
# The engine's contract is that a verdict is a pure function of the
# specialized expression: the same program and update trace must print
# byte-identical output whatever the --jobs count, whether the verdict cache
# is on, and whether probes run on warm incremental SAT sessions or a fresh
# solver each. This runs `flayc fuzz` (whose final "specialization verdicts"
# line summarizes every engine verdict of a full specialize) and `flayc
# specialize` under all eight jobs x cache x incremental settings and diffs
# the complete stdout.
set -u

FLAYC=$1
PROGRAMS=$2
TMP=${TMPDIR:-/tmp}/cache_equiv.$$
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

failures=0
note() { printf '%s\n' "$*"; }
fail() { note "FAIL: $*"; failures=$((failures + 1)); }

# compare <label> -- <subcommand args...>
# Runs the command under the 2x2x2 matrix of {jobs 1, jobs 4} x {cache,
# no-cache} x {incremental, fresh solver} and requires identical stdout.
compare() {
  label=$1; shift; shift
  "$FLAYC" "$@" >"$TMP/ref.out" 2>&1 || {
    fail "$label: baseline run failed"
    return
  }
  for variant in \
      "--jobs 4" \
      "--no-verdict-cache" \
      "--jobs 4 --no-verdict-cache" \
      "--no-incremental-sat" \
      "--jobs 4 --no-incremental-sat" \
      "--no-verdict-cache --no-incremental-sat" \
      "--jobs 4 --no-verdict-cache --no-incremental-sat"; do
    # shellcheck disable=SC2086
    "$FLAYC" "$@" $variant >"$TMP/var.out" 2>&1 || {
      fail "$label ($variant): run failed"
      continue
    }
    if ! cmp -s "$TMP/ref.out" "$TMP/var.out"; then
      fail "$label: output differs with $variant"
      diff "$TMP/ref.out" "$TMP/var.out" | head -20
    else
      note "ok: $label identical with $variant"
    fi
  done
}

for prog in middleblock switch dash beaucoup; do
  compare "fuzz $prog" \
    -- fuzz "$PROGRAMS/$prog.p4l" --updates 60 --seed 1
  compare "specialize $prog" \
    -- specialize "$PROGRAMS/$prog.p4l"
done
compare "fuzz scion" \
  -- fuzz "$PROGRAMS/scion.p4l" --updates 40 --seed 2

# Information-flow verdicts ride the same check engine, so the rendered IFC
# report (including every per-update violation transition) must also be
# byte-identical across the whole matrix.
for prog in middleblock switch scion; do
  compare "ifc $prog" \
    -- ifc "$PROGRAMS/$prog.p4l" \
       --policy "$PROGRAMS/ifc/$prog-strict.policy" --updates 30 --seed 7
done
compare "fuzz+ifc middleblock" \
  -- fuzz "$PROGRAMS/middleblock.p4l" --updates 30 --seed 3 \
     --ifc-policy "$PROGRAMS/ifc/middleblock-open.policy"

if [ "$failures" -ne 0 ]; then
  note "$failures check(s) failed"
  exit 1
fi
note "all cache/parallel/incremental equivalence checks passed"
