#include <gtest/gtest.h>

#include <random>

#include "expr/analysis.h"
#include "expr/printer.h"
#include "flay/engine.h"
#include "flay/specializer.h"
#include "net/fuzzer.h"
#include "net/headers.h"
#include "sim/interpreter.h"

namespace flay::flay {
namespace {

using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

// ---------------------------------------------------------------------------
// Fig. 5: constant-propagation query on egress_port
// ---------------------------------------------------------------------------

const char* kFig5Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }
parser P { state start { extract(hdr.eth); transition accept; } }
control Ingress {
  action set(bit<9> port_var) { sm.egress_spec = port_var; }
  table port_table {
    key = { hdr.eth.dst : exact; }
    actions = { set; noop; }
    default_action = noop;
  }
  apply {
    sm.egress_spec = 0;
    port_table.apply();
    hdr.eth.dst = sm.egress_spec == 0 ? 48w0xAAAAAAAAAAAA : 48w0xBBBBBBBBBBBB;
  }
}
deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";

class Fig5Test : public ::testing::Test {
 protected:
  Fig5Test() : checked(p4::loadProgramFromString(kFig5Program)) {}

  /// The annotation for the final assignment to hdr.eth.dst (line 13).
  const ProgramPoint& dstAssignPoint(FlayService& service) {
    for (const auto& p : service.analysis().annotations.points()) {
      if (p.kind == PointKind::kAssignedValue &&
          p.label.find("assign hdr.eth.dst") != std::string::npos) {
        return p;
      }
    }
    throw std::logic_error("annotation not found");
  }

  TableEntry entry(uint64_t key, uint64_t port) {
    TableEntry e;
    e.matches.push_back(FieldMatch::exact(BitVec(48, key)));
    e.actionName = "set";
    e.actionArgs.push_back(BitVec(9, port));
    return e;
  }

  p4::CheckedProgram checked;
};

TEST_F(Fig5Test, EmptyTableSpecializesToConstant) {
  FlayService service(checked);
  // Block B of Fig. 5: empty table -> egress_port is 0 -> dst is 0xAAAA....
  const ProgramPoint& p = dstAssignPoint(service);
  ASSERT_TRUE(service.arena().isConst(p.specialized));
  EXPECT_EQ(service.arena().constValue(p.specialized),
            BitVec::parse(48, "0xAAAAAAAAAAAA"));
}

TEST_F(Fig5Test, GeneralExpressionMentionsPlaceholders) {
  FlayService service(checked);
  const ProgramPoint& p = dstAssignPoint(service);
  // Block A: the *unspecialized* expression references control-plane
  // placeholders of port_table.
  auto cpSyms = expr::collectSymbols(service.arena(), p.expr,
                                     expr::SymbolClass::kControlPlane);
  EXPECT_FALSE(cpSyms.empty());
  std::string rendered = expr::toString(service.arena(), p.expr);
  EXPECT_NE(rendered.find("Ingress.port_table"), std::string::npos);
}

TEST_F(Fig5Test, InsertingEntryChangesSemantics) {
  FlayService service(checked);
  // Block C: insert 0xDEADBEEFF00D -> set(1).
  auto verdict = service.applyUpdate(
      Update::insert("Ingress.port_table", entry(0xDEADBEEFF00Dull, 1)));
  EXPECT_TRUE(verdict.expressionsChanged);
  EXPECT_TRUE(verdict.needsRecompilation);
  EXPECT_TRUE(verdict.changedComponents.count("Ingress.port_table") != 0);

  const ProgramPoint& p = dstAssignPoint(service);
  EXPECT_FALSE(service.arena().isConst(p.specialized));
  // The specialized expression should test the packet's dst address.
  std::string rendered = expr::toString(service.arena(), p.specialized);
  EXPECT_NE(rendered.find("@hdr.eth.dst@"), std::string::npos);
  EXPECT_NE(rendered.find("0xdeadbeeff00d"), std::string::npos);
}

TEST_F(Fig5Test, HitConditionSpecializesToKeyComparison) {
  FlayService service(checked);
  service.applyUpdate(
      Update::insert("Ingress.port_table", entry(0xDEADBEEFF00Dull, 1)));
  const TableInfo& info = service.analysis().table("Ingress.port_table");
  expr::ExprRef hit = service.specialized(info.hitPoint);
  // hit == (@hdr.eth.dst@ == 0xdeadbeeff00d)
  std::string rendered = expr::toString(service.arena(), hit);
  EXPECT_EQ(rendered, "(@hdr.eth.dst@ == 0xdeadbeeff00d)");
}

TEST_F(Fig5Test, SemanticsPreservingUpdateDetected) {
  FlayService service(checked);
  service.applyUpdate(
      Update::insert("Ingress.port_table", entry(0xDEADBEEFF00Dull, 1)));
  // A second entry for a different key widens the hit condition — the
  // expressions change — but no specialization decision flips: the table
  // already needs its general implementation. This is exactly the
  // "trivial update that doesn't need recompilation" of §2.
  auto verdict = service.applyUpdate(
      Update::insert("Ingress.port_table", entry(0x1234, 1)));
  EXPECT_TRUE(verdict.expressionsChanged);
  EXPECT_FALSE(verdict.needsRecompilation);
  // Reaffirming the default action changes nothing at all.
  auto verdict2 = service.applyUpdate(
      Update::setDefault("Ingress.port_table", "noop", {}));
  EXPECT_FALSE(verdict2.expressionsChanged);
  EXPECT_FALSE(verdict2.needsRecompilation);
}

TEST_F(Fig5Test, SpecializedProgramDropsTableWhenEmpty) {
  FlayService service(checked);
  Specializer specializer(service);
  auto result = specializer.specialize();
  EXPECT_EQ(result.stats.removedTables, 1u);
  // Table declaration gone from the specialized program.
  EXPECT_EQ(result.program.controls[0].tables.size(), 0u);
  // Constant propagation turned the ternary into a constant assignment.
  EXPECT_GE(result.stats.propagatedConstants, 1u);
}

// ---------------------------------------------------------------------------
// Fig. 3: lifecycle of eth_table under updates (1)-(5)
// ---------------------------------------------------------------------------

const char* kFig3Program = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
struct headers { eth_t eth; }
parser P { state start { extract(hdr.eth); transition accept; } }
control Ingress {
  action set(bit<16> type) { hdr.eth.type = type; }
  action drop() { mark_to_drop(); }
  table eth_table {
    key = { hdr.eth.dst : ternary; }
    actions = { set; drop; noop; }
    default_action = noop;
  }
  apply { eth_table.apply(); }
}
deparser D { emit(hdr.eth); }
pipeline(P, Ingress, D);
)";

class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test() : checked(p4::loadProgramFromString(kFig3Program)) {}

  TableEntry ternaryEntry(uint64_t key, uint64_t mask, uint64_t type,
                          int32_t priority) {
    TableEntry e;
    e.matches.push_back(
        FieldMatch::ternary(BitVec(48, key), BitVec(48, mask)));
    e.actionName = "set";
    e.actionArgs.push_back(BitVec(16, type));
    e.priority = priority;
    return e;
  }

  p4::CheckedProgram checked;
};

TEST_F(Fig3Test, Step1EmptyTableIsRemoved) {
  FlayService service(checked);
  auto result = Specializer(service).specialize();
  EXPECT_EQ(result.stats.removedTables, 1u);  // impl. A
  EXPECT_TRUE(result.program.controls[0].tables.empty());
}

TEST_F(Fig3Test, Step2ZeroMaskEntryInlinesAction) {
  FlayService service(checked);
  // Entry 1: [key: 0x1, mask: 0x0] -> set(0x800): matches every packet.
  auto verdict = service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x1, 0x0, 0x800, 1)));
  EXPECT_TRUE(verdict.needsRecompilation);
  auto result = Specializer(service).specialize();
  EXPECT_EQ(result.stats.inlinedTables, 1u);  // impl. B
  EXPECT_TRUE(result.program.controls[0].tables.empty());
  // The inlined body assigns the constant 0x800.
  bool foundInline = false;
  for (const auto& s : result.program.controls[0].applyBody) {
    if (s->op == p4::StmtOp::kAssign &&
        s->rhs->value == BitVec(16, 0x800)) {
      foundInline = true;
    }
  }
  EXPECT_TRUE(foundInline);
}

TEST_F(Fig3Test, Step3FullMaskBecomesExactMatch) {
  FlayService service(checked);
  uint64_t fullMask = 0xFFFFFFFFFFFFull;
  service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x2, fullMask, 0x900, 1)));
  auto result = Specializer(service).specialize();
  // impl. C: table kept, ternary key tightened to exact, drop removed.
  ASSERT_EQ(result.program.controls[0].tables.size(), 1u);
  const p4::TableDecl& t = result.program.controls[0].tables[0];
  EXPECT_EQ(t.keys[0].matchKind, p4::MatchKind::kExact);
  EXPECT_EQ(result.stats.convertedKeys, 1u);
  EXPECT_GE(result.stats.removedActions, 1u);  // drop is unused
  bool hasDrop = false;
  for (const auto& a : t.actionNames) hasDrop |= a == "drop";
  EXPECT_FALSE(hasDrop);
}

TEST_F(Fig3Test, Step4PartialMaskKeepsTernary) {
  FlayService service(checked);
  uint64_t fullMask = 0xFFFFFFFFFFFFull;
  service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x2, fullMask, 0x900, 2)));
  auto verdict = service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x5, 0x8, 0x700, 1)));
  EXPECT_TRUE(verdict.needsRecompilation)
      << "full-mask exact table regressing to ternary must recompile";
  auto result = Specializer(service).specialize();
  ASSERT_EQ(result.program.controls[0].tables.size(), 1u);
  EXPECT_EQ(result.program.controls[0].tables[0].keys[0].matchKind,
            p4::MatchKind::kTernary);  // impl. D needs TCAM again
}

TEST_F(Fig3Test, Step5EclipsedEntryDoesNotChangeSemantics) {
  FlayService service(checked);
  uint64_t fullMask = 0xFFFFFFFFFFFFull;
  service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x2, fullMask, 0x900, 10)));
  service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x5, 0x8, 0x700, 9)));
  // Entry 3 at lower priority, fully eclipsed by entry 2: entry 2 matches
  // every key with bit 3 == 0, and entry 3's region [key 0x6, mask 0xE]
  // pins bit 3 to 0. It can never win a lookup, so the update is
  // semantics-preserving and needs no recompilation (Fig. 3, step 5; the
  // mask is adapted from the paper's 0x7 so the region is genuinely
  // covered by entry 2 alone).
  auto verdict = service.applyUpdate(Update::insert(
      "Ingress.eth_table", ternaryEntry(0x6, 0xE, 0x200, 1)));
  EXPECT_FALSE(verdict.expressionsChanged);
  EXPECT_FALSE(verdict.needsRecompilation);
}

// ---------------------------------------------------------------------------
// Incremental behaviour: taint, batches, over-approximation
// ---------------------------------------------------------------------------

const char* kTwoTableProgram = R"(
header h_t { bit<8> a; bit<8> b; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_a(bit<8> v) { hdr.h.a = v; }
  action set_b(bit<8> v) { hdr.h.b = v; }
  table t1 {
    key = { hdr.h.a : exact; }
    actions = { set_a; noop; }
    default_action = noop;
  }
  table t2 {
    key = { hdr.h.b : ternary; }
    actions = { set_b; noop; }
    default_action = noop;
  }
  apply { t1.apply(); t2.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)";

TEST(FlayIncremental, UpdatesOnlyTouchTaintedComponents) {
  auto checked = p4::loadProgramFromString(kTwoTableProgram);
  FlayService service(checked);
  TableEntry e;
  e.matches.push_back(FieldMatch::exact(BitVec(8, 1)));
  e.actionName = "set_a";
  e.actionArgs.push_back(BitVec(8, 42));
  auto verdict = service.applyUpdate(Update::insert("C.t1", e));
  EXPECT_TRUE(verdict.needsRecompilation);
  for (const auto& c : verdict.changedComponents) {
    EXPECT_EQ(c.find("C.t2"), std::string::npos)
        << "t2 must not be re-specialized by a t1 update";
  }
}

TEST(FlayIncremental, TaintMapCoversBothTables) {
  auto checked = p4::loadProgramFromString(kTwoTableProgram);
  FlayService service(checked);
  const auto& annotations = service.analysis().annotations;
  EXPECT_FALSE(annotations.affectedPoints("C.t1").empty());
  EXPECT_FALSE(annotations.affectedPoints("C.t2").empty());
}

TEST(FlayIncremental, BatchProcessesEachObjectOnce) {
  auto checked = p4::loadProgramFromString(kTwoTableProgram);
  FlayService service(checked);
  std::vector<Update> batch;
  for (int i = 0; i < 50; ++i) {
    TableEntry e;
    e.matches.push_back(FieldMatch::exact(BitVec(8, i)));
    e.actionName = "set_a";
    e.actionArgs.push_back(BitVec(8, i));
    batch.push_back(Update::insert("C.t1", e));
  }
  auto verdict = service.applyBatch(batch);
  EXPECT_TRUE(verdict.expressionsChanged);
  EXPECT_EQ(service.config().table("C.t1").size(), 50u);
}

TEST(FlayIncremental, OverapproximationKicksInPastThreshold) {
  auto checked = p4::loadProgramFromString(kTwoTableProgram);
  FlayOptions options;
  options.encoder.overapproxThreshold = 10;
  FlayService service(checked, options);

  net::EntryFuzzer fuzzer(7);
  auto entries =
      fuzzer.uniqueEntries(service.config().table("C.t2"), 11);
  std::vector<Update> batch;
  for (auto& e : entries) batch.push_back(Update::insert("C.t2", e));
  auto verdict = service.applyBatch(batch);
  EXPECT_TRUE(verdict.overapproximated);

  // Past the threshold the placeholders stay free: the specialized hit
  // expression is the placeholder itself (Block A form).
  const TableInfo& info = service.analysis().table("C.t2");
  EXPECT_EQ(service.specialized(info.hitPoint), info.hitSymbol);

  // Further inserts keep the over-approximation and do not flag changes.
  auto more = fuzzer.uniqueEntries(service.config().table("C.t2"), 5);
  for (auto& e : more) {
    auto v = service.applyUpdate(Update::insert("C.t2", e));
    EXPECT_TRUE(v.overapproximated);
    EXPECT_FALSE(v.expressionsChanged);
  }
}

TEST(FlayIncremental, PreciseModeIsSlowerThanOverapprox) {
  auto checked = p4::loadProgramFromString(kTwoTableProgram);
  // Precise mode with many entries vs overapprox: compare analysis times.
  FlayOptions precise;
  precise.encoder.overapproxThreshold = 100000;
  FlayService precisService(checked, precise);
  FlayOptions approx;
  approx.encoder.overapproxThreshold = 10;
  FlayService approxService(checked, approx);

  net::EntryFuzzer fuzzer(3);
  auto entries =
      fuzzer.uniqueEntries(precisService.config().table("C.t2"), 200);
  std::vector<Update> batch;
  for (auto& e : entries) batch.push_back(Update::insert("C.t2", e));
  precisService.applyBatch(batch);
  approxService.applyBatch(batch);

  // One more update each; precise must redo the 200-entry encoding.
  TableEntry probe;
  probe.matches.push_back(
      FieldMatch::ternary(BitVec(8, 0xAA), BitVec(8, 0xFF)));
  probe.actionName = "set_b";
  probe.actionArgs.push_back(BitVec(8, 1));
  probe.priority = 100000;
  auto slowVerdict = precisService.applyUpdate(Update::insert("C.t2", probe));
  auto fastVerdict = approxService.applyUpdate(Update::insert("C.t2", probe));
  EXPECT_FALSE(slowVerdict.overapproximated);
  EXPECT_TRUE(fastVerdict.overapproximated);
  EXPECT_GT(slowVerdict.analysisTime.count(), fastVerdict.analysisTime.count());
}

// ---------------------------------------------------------------------------
// Value sets
// ---------------------------------------------------------------------------

const char* kValueSetProgram = R"(
header e_t { bit<16> tag; bit<8> body; }
header v_t { bit<16> inner; }
struct headers { e_t e; v_t v; }
parser P {
  value_set<bit<16>>(4) vlan_tags;
  state start {
    extract(hdr.e);
    transition select(hdr.e.tag) {
      vlan_tags: parse_vlan;
      default: accept;
    }
  }
  state parse_vlan { extract(hdr.v); transition accept; }
}
control C {
  apply { if (hdr.v.isValid()) { sm.egress_spec = 2; } }
}
deparser D { emit(hdr.e); emit(hdr.v); }
pipeline(P, C, D);
)";

TEST(FlayValueSets, EmptyValueSetPrunesSelectCase) {
  auto checked = p4::loadProgramFromString(kValueSetProgram);
  FlayService service(checked);
  auto result = Specializer(service).specialize();
  EXPECT_GE(result.stats.removedSelectCases, 1u);
  // With the case gone, parse_vlan is unreachable: hdr.v is never valid and
  // the if-branch is eliminated too.
  EXPECT_GE(result.stats.eliminatedBranches, 1u);
}

TEST(FlayValueSets, PopulatedValueSetChangesSemantics) {
  auto checked = p4::loadProgramFromString(kValueSetProgram);
  FlayService service(checked);
  auto verdict = service.applyUpdate(Update::valueSetInsert(
      "P.vlan_tags", BitVec(16, 0x8100), BitVec::allOnes(16)));
  EXPECT_TRUE(verdict.needsRecompilation);
  auto result = Specializer(service).specialize();
  EXPECT_EQ(result.stats.removedSelectCases, 0u);
}

// ---------------------------------------------------------------------------
// Action profiles
// ---------------------------------------------------------------------------

TEST(FlayActionProfiles, EmptyProfileMeansTableNeverHits) {
  auto checked = p4::loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action_profile(8) prof;
  action set_a(bit<8> v) { hdr.h.a = v; }
  table t {
    key = { hdr.h.a : exact; }
    actions = { set_a; noop; }
    default_action = noop;
    implementation = prof;
  }
  apply { t.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  FlayService service(checked);
  auto result = Specializer(service).specialize();
  EXPECT_EQ(result.stats.removedTables, 1u);
}

// ---------------------------------------------------------------------------
// Differential testing: specialized == original under the active config
// ---------------------------------------------------------------------------

const char* kDiffProgram = R"(
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t {
  bit<8> ttl; bit<8> proto; bit<32> src; bit<32> dst;
}
struct headers { eth_t eth; ipv4_t ipv4; }
parser P {
  state start {
    extract(hdr.eth);
    transition select(hdr.eth.type) {
      0x800: parse_ipv4;
      default: accept;
    }
  }
  state parse_ipv4 { extract(hdr.ipv4); transition accept; }
}
control Ingress {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  action drop_pkt() { mark_to_drop(); }
  table route {
    key = { hdr.ipv4.dst : lpm; }
    actions = { fwd; drop_pkt; noop; }
    default_action = drop_pkt;
  }
  table acl {
    key = { hdr.ipv4.src : ternary; hdr.ipv4.proto : ternary; }
    actions = { drop_pkt; noop; }
    default_action = noop;
  }
  table empty_t {
    key = { hdr.eth.src : exact; }
    actions = { fwd; noop; }
    default_action = noop;
  }
  apply {
    if (hdr.ipv4.isValid()) {
      route.apply();
      acl.apply();
      if (hdr.ipv4.ttl == 0) { mark_to_drop(); } else { hdr.ipv4.ttl = hdr.ipv4.ttl - 1; }
    } else {
      fwd(1);
    }
    empty_t.apply();
  }
}
deparser D { emit(hdr.eth); emit(hdr.ipv4); }
pipeline(P, Ingress, D);
)";

class DiffTest : public ::testing::Test {
 protected:
  DiffTest() : checked(p4::loadProgramFromString(kDiffProgram)) {}

  /// Runs `count` random packets through original and specialized programs
  /// and checks the externally visible outcomes match.
  void expectEquivalent(FlayService& service, uint64_t seed, int count) {
    auto result = Specializer(service).specialize();
    p4::CheckedProgram specialized = recheck(std::move(result.program));
    runtime::DeviceConfig specializedConfig =
        migrateConfig(specialized, service.config());

    sim::DataPlaneState stateA(checked);
    sim::DataPlaneState stateB(specialized);
    sim::Interpreter interpA(checked, service.config(), stateA);
    sim::Interpreter interpB(specialized, specializedConfig, stateB);

    std::mt19937_64 rng(seed);
    for (int i = 0; i < count; ++i) {
      sim::Packet p = randomPacket(rng);
      sim::ExecResult a = interpA.process(p);
      sim::ExecResult b = interpB.process(p);
      ASSERT_EQ(a.parserAccepted, b.parserAccepted) << "packet " << i;
      ASSERT_EQ(a.dropped, b.dropped) << "packet " << i;
      if (!a.dropped) {
        ASSERT_EQ(a.egressPort, b.egressPort) << "packet " << i;
        ASSERT_EQ(a.outputBytes, b.outputBytes) << "packet " << i;
      }
    }
  }

  sim::Packet randomPacket(std::mt19937_64& rng) {
    net::EthHeader eth;
    eth.dst = rng() & 0xFFFFFFFFFFFFull;
    eth.src = rng() & 0xFFFFFFFFFFFFull;
    // Bias towards IPv4 so parsed branches get coverage.
    eth.type = (rng() % 4 != 0) ? 0x800 : static_cast<uint16_t>(rng());
    net::PacketBuilder b;
    b.eth(eth);
    if (eth.type == 0x800) {
      b.raw(BitVec(8, rng() % 4))        // ttl in {0..3}: exercises expiry
          .raw(BitVec(8, rng() % 2 == 0 ? 6 : 17))  // proto
          .raw(BitVec(32, rng()))
          .raw(BitVec(32, rng() % 2 == 0 ? (0x0A000000 | (rng() & 0xFFFF))
                                         : rng()));
    }
    sim::Packet p;
    p.bytes = b.build();
    p.ingressPort = static_cast<uint32_t>(rng() % 8);
    return p;
  }

  p4::CheckedProgram checked;
};

TEST_F(DiffTest, EmptyConfigSpecializationIsEquivalent) {
  FlayService service(checked);
  expectEquivalent(service, 42, 300);
}

TEST_F(DiffTest, RoutedConfigSpecializationIsEquivalent) {
  FlayService service(checked);
  TableEntry route;
  route.matches.push_back(FieldMatch::lpm(BitVec(32, 0x0A000000), 8));
  route.actionName = "fwd";
  route.actionArgs.push_back(BitVec(9, 3));
  service.applyUpdate(Update::insert("Ingress.route", route));
  TableEntry route2;
  route2.matches.push_back(FieldMatch::lpm(BitVec(32, 0x0A010000), 16));
  route2.actionName = "fwd";
  route2.actionArgs.push_back(BitVec(9, 4));
  service.applyUpdate(Update::insert("Ingress.route", route2));
  expectEquivalent(service, 99, 300);
}

TEST_F(DiffTest, AclConfigSpecializationIsEquivalent) {
  FlayService service(checked);
  TableEntry route;
  route.matches.push_back(FieldMatch::lpm(BitVec(32, 0), 0));
  route.actionName = "fwd";
  route.actionArgs.push_back(BitVec(9, 2));
  service.applyUpdate(Update::insert("Ingress.route", route));
  TableEntry acl;
  acl.matches.push_back(
      FieldMatch::ternary(BitVec(32, 0), BitVec(32, 0)));
  acl.matches.push_back(
      FieldMatch::ternary(BitVec(8, 17), BitVec(8, 0xFF)));
  acl.actionName = "drop_pkt";
  acl.priority = 10;
  service.applyUpdate(Update::insert("Ingress.acl", acl));
  expectEquivalent(service, 1234, 300);
}

TEST_F(DiffTest, FullMaskTernaryConversionIsEquivalent) {
  FlayService service(checked);
  TableEntry acl;
  acl.matches.push_back(
      FieldMatch::ternary(BitVec(32, 0xC0A80101), BitVec::allOnes(32)));
  acl.matches.push_back(
      FieldMatch::ternary(BitVec(8, 6), BitVec(8, 0xFF)));
  acl.actionName = "drop_pkt";
  acl.priority = 5;
  service.applyUpdate(Update::insert("Ingress.acl", acl));
  auto result = Specializer(service).specialize();
  EXPECT_GE(result.stats.convertedKeys, 2u);
  expectEquivalent(service, 777, 300);
}

// ---------------------------------------------------------------------------
// Analysis bookkeeping
// ---------------------------------------------------------------------------

TEST(FlayAnalysis, SkipParserModeProducesFreeSymbols) {
  auto checked = p4::loadProgramFromString(kDiffProgram);
  FlayOptions options;
  options.analysis.analyzeParser = false;
  FlayService service(checked, options);
  // In skip-parser mode the validity of ipv4 is a free symbol, so the
  // isValid branch cannot be eliminated even with an empty config (the
  // empty tables still specialize away — that is parser-independent).
  auto result = Specializer(service).specialize();
  ASSERT_FALSE(result.program.controls[0].applyBody.empty());
  EXPECT_EQ(result.program.controls[0].applyBody[0]->op, p4::StmtOp::kIf);
  EXPECT_EQ(result.stats.eliminatedBranches, 0u);
}

TEST(FlayAnalysis, AnalysisTimesAreRecorded) {
  auto checked = p4::loadProgramFromString(kDiffProgram);
  FlayService service(checked);
  EXPECT_GT(service.dataPlaneAnalysisTime().count(), 0);
  auto verdict = service.applyUpdate(
      Update::setDefault("Ingress.acl", "noop", {}));
  EXPECT_GE(verdict.analysisTime.count(), 0);
}

TEST(FlayAnalysis, MultipleApplySitesRejected) {
  EXPECT_THROW(
      {
        auto checked = p4::loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  table t { key = { hdr.h.a : exact; } actions = { noop; } }
  apply { t.apply(); t.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
        FlayService service(checked);
      },
      std::logic_error);
}

TEST(FlayAnalysis, PrunableHeadersReported) {
  auto checked = p4::loadProgramFromString(R"(
header a_t { bit<8> x; }
header unused_t { bit<16> y; }
struct headers { a_t a; unused_t u; }
parser P {
  state start { extract(hdr.a); transition next; }
  state next { extract(hdr.u); transition accept; }
}
control C { apply { sm.egress_spec = (bit<9>) hdr.a.x; } }
deparser D { emit(hdr.a); emit(hdr.u); }
pipeline(P, C, D);
)");
  FlayService service(checked);
  auto result = Specializer(service).specialize();
  ASSERT_EQ(result.stats.prunableHeaders.size(), 1u);
  EXPECT_EQ(result.stats.prunableHeaders[0], "hdr.u");
}

}  // namespace
}  // namespace flay::flay

namespace flay::flay {
namespace chained {
using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

// With resolved chained encodings, specialization propagates THROUGH
// tables: an always-matching upstream entry pins the metadata a downstream
// table keys on, so the downstream table folds to a constant decision too.
TEST(FlayChained, SpecializationPropagatesThroughTableChain) {
  auto checked = p4::loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
struct metadata { bit<8> x; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_x(bit<8> v) { meta.x = v; }
  action set_port(bit<9> p) { sm.egress_spec = p; }
  table first {
    key = { hdr.h.a : ternary; }
    actions = { set_x; noop; }
    default_action = noop;
  }
  table second {
    key = { meta.x : exact; }
    actions = { set_port; noop; }
    default_action = noop;
  }
  apply { first.apply(); second.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  FlayService service(checked);

  // first: wildcard entry -> set_x(5): meta.x is ALWAYS 5.
  TableEntry always;
  always.matches.push_back(
      FieldMatch::ternary(BitVec(8, 0), BitVec(8, 0)));
  always.actionName = "set_x";
  always.actionArgs.push_back(BitVec(8, 5));
  always.priority = 1;
  service.applyUpdate(Update::insert("C.first", always));

  // second: entry for x == 5 -> set_port(7): always hits.
  TableEntry hit5;
  hit5.matches.push_back(FieldMatch::exact(BitVec(8, 5)));
  hit5.actionName = "set_port";
  hit5.actionArgs.push_back(BitVec(9, 7));
  service.applyUpdate(Update::insert("C.second", hit5));

  const TableInfo& second = service.analysis().table("C.second");
  EXPECT_TRUE(service.arena().isTrue(service.specialized(second.hitPoint)))
      << "the chain resolves: second's hit folds to constant true";

  // Both tables inline: the final program has no tables and the egress
  // port is the propagated constant 7.
  auto result = Specializer(service).specialize();
  EXPECT_EQ(result.stats.inlinedTables, 2u);
  EXPECT_TRUE(result.program.controls[0].tables.empty());

  // And the egress value annotation is the constant 7.
  for (const auto& p : service.analysis().annotations.points()) {
    if (p.kind == PointKind::kFinalValue &&
        p.label == "final:sm.egress_spec") {
      ASSERT_TRUE(service.arena().isConst(p.specialized));
      EXPECT_EQ(service.arena().constValue(p.specialized).toUint64(), 7u);
    }
  }
}

// If the upstream table is over-approximated, the chain must degrade
// conservatively: downstream stays general, never wrongly constant.
TEST(FlayChained, OverapproxUpstreamKeepsDownstreamGeneral) {
  auto checked = p4::loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
struct metadata { bit<8> x; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_x(bit<8> v) { meta.x = v; }
  action set_port(bit<9> p) { sm.egress_spec = p; }
  table first {
    key = { hdr.h.a : ternary; }
    actions = { set_x; noop; }
    default_action = noop;
    size = 256;
  }
  table second {
    key = { meta.x : exact; }
    actions = { set_port; noop; }
    default_action = noop;
  }
  apply { first.apply(); second.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  FlayOptions options;
  options.encoder.overapproxThreshold = 2;
  FlayService service(checked, options);

  net::EntryFuzzer fuzzer(17);
  auto entries = fuzzer.uniqueEntries(service.config().table("C.first"), 5);
  std::vector<Update> batch;
  for (auto& e : entries) batch.push_back(Update::insert("C.first", e));
  auto verdict = service.applyBatch(batch);
  EXPECT_TRUE(verdict.overapproximated);

  TableEntry hit5;
  hit5.matches.push_back(FieldMatch::exact(BitVec(8, 5)));
  hit5.actionName = "set_port";
  hit5.actionArgs.push_back(BitVec(9, 7));
  service.applyUpdate(Update::insert("C.second", hit5));

  const TableInfo& second = service.analysis().table("C.second");
  expr::ExprRef hit = service.specialized(second.hitPoint);
  EXPECT_FALSE(service.arena().isConst(hit))
      << "free upstream placeholders must keep the chain general";
}

}  // namespace chained
}  // namespace flay::flay

namespace flay::flay {
namespace deadheaders {

TEST(FlayDeadHeaders, UnreachedHeaderReportedDead) {
  auto checked = p4::loadProgramFromString(R"(
header a_t { bit<8> x; }
header v_t { bit<16> tag; }
struct headers { a_t a; v_t v; }
parser P {
  value_set<bit<8>>(4) vs;
  state start {
    extract(hdr.a);
    transition select(hdr.a.x) {
      vs: parse_v;
      default: accept;
    }
  }
  state parse_v { extract(hdr.v); transition accept; }
}
control C { apply { sm.egress_spec = 1; } }
deparser D { emit(hdr.a); emit(hdr.v); }
pipeline(P, C, D);
)");
  FlayService service(checked);
  // Empty value set: parse_v is unreachable, hdr.v can never become valid.
  auto result = Specializer(service).specialize();
  ASSERT_EQ(result.stats.deadHeaders.size(), 1u);
  EXPECT_EQ(result.stats.deadHeaders[0], "hdr.v");

  // Populate the value set: hdr.v is live again.
  service.applyUpdate(runtime::Update::valueSetInsert(
      "P.vs", BitVec(8, 0x42), BitVec::allOnes(8)));
  auto result2 = Specializer(service).specialize();
  EXPECT_TRUE(result2.stats.deadHeaders.empty());
}

}  // namespace deadheaders
}  // namespace flay::flay
