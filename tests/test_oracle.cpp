#include "oracle/oracle.h"

#include <gtest/gtest.h>

#include "net/workloads.h"
#include "p4/typecheck.h"

namespace flay::oracle {
namespace {

p4::CheckedProgram load(const char* name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

/// Tier-1-sized budgets: each probe replays the full pipeline twice per
/// packet and every recompiling update costs a fresh specialization, so the
/// unit tests stay an order of magnitude below the nightly ctest entries.
OracleOptions smallRun(uint64_t seed) {
  OracleOptions o;
  o.updates = 30;
  o.packets = 12;
  o.seed = seed;
  o.shrink = false;
  return o;
}

// The core property (tentpole acceptance): specialize-then-simulate is
// behavior-preserving across a fuzzed update script, both on the fast
// migrate-only path and after forced respecializations.
TEST(DifferentialOracle, MiddleblockEquivalentUnderFuzzedUpdates) {
  p4::CheckedProgram checked = load("middleblock");
  DifferentialOracle oracle(checked, smallRun(1));
  OracleReport report = oracle.run();
  EXPECT_TRUE(report.equivalent)
      << report.divergence->describe() << "\n" << report.reproCommand;
  EXPECT_GT(report.updatesApplied, 0u);
  EXPECT_GT(report.packetsCompared, 0u);
  // The metamorphic mode must actually exercise the fast path: at least one
  // update has to be judged semantics-preserving and checked without a
  // respecialization.
  EXPECT_GT(report.preservingChecks, 0u);
}

TEST(DifferentialOracle, SwitchEquivalentUnderFuzzedUpdates) {
  p4::CheckedProgram checked = load("switch");
  DifferentialOracle oracle(checked, smallRun(7));
  OracleReport report = oracle.run();
  EXPECT_TRUE(report.equivalent)
      << report.divergence->describe() << "\n" << report.reproCommand;
  EXPECT_GT(report.updatesApplied, 0u);
}

// Regression seeds: seeds that exposed real bugs while the oracle was being
// brought up. Seed 5 caught the specializer leaving a stale *declared*
// default action after a set-default update re-pointed the runtime default
// and action pruning removed the old one (the specialized program then
// failed to re-check). Pinned so they keep running forever.
TEST(DifferentialOracle, RegressionSeedsStayEquivalent) {
  p4::CheckedProgram checked = load("middleblock");
  for (uint64_t seed : {2u, 3u, 5u, 11u}) {
    DifferentialOracle oracle(checked, smallRun(seed));
    OracleReport report = oracle.run();
    EXPECT_TRUE(report.equivalent)
        << "seed " << seed << ": " << report.divergence->describe();
  }
}

// The oracle's update script and probe workloads are pure functions of the
// seed — the property every repro command relies on.
TEST(DifferentialOracle, ScriptIsDeterministicPerSeed) {
  p4::CheckedProgram checked = load("middleblock");
  DifferentialOracle a(checked, smallRun(9));
  DifferentialOracle b(checked, smallRun(9));
  ASSERT_EQ(a.script().size(), b.script().size());
  for (size_t i = 0; i < a.script().size(); ++i) {
    EXPECT_EQ(a.script()[i].toString(), b.script()[i].toString()) << i;
  }
  DifferentialOracle c(checked, smallRun(10));
  bool allEqual = a.script().size() == c.script().size();
  for (size_t i = 0; allEqual && i < a.script().size(); ++i) {
    allEqual = a.script()[i].toString() == c.script()[i].toString();
  }
  EXPECT_FALSE(allEqual) << "different seeds produced identical scripts";
}

// Fault injection: a specializer that silently drops one migrated entry
// must be caught, and the shrinker must cut the script to a handful of
// load-bearing updates (the acceptance bar is <= 5).
TEST(DifferentialOracle, SabotagedMigrationIsCaughtAndShrunk) {
  p4::CheckedProgram checked = load("middleblock");
  OracleOptions options = smallRun(1);
  options.shrink = true;
  options.sabotage = OracleOptions::Sabotage::kDropMigratedEntry;
  DifferentialOracle oracle(checked, options, "programs/middleblock.p4l");
  OracleReport report = oracle.run();
  ASSERT_FALSE(report.equivalent)
      << "dropping a migrated entry went unnoticed";
  EXPECT_LE(report.shrunkUpdates.size(), 5u)
      << "shrinker left a non-minimal reproducer";
  EXPECT_FALSE(report.reproCommand.empty());
  EXPECT_NE(report.reproCommand.find("difftest"), std::string::npos);
  EXPECT_NE(report.reproCommand.find("--sabotage drop-entry"),
            std::string::npos);
  EXPECT_NE(report.reproCommand.find("--replay-updates"), std::string::npos);
}

// The shrunk reproducer must replay: running the oracle again restricted to
// the shrunk subset (and packet, when one was minimized) still diverges.
TEST(DifferentialOracle, ShrunkReproducerReplays) {
  p4::CheckedProgram checked = load("middleblock");
  OracleOptions options = smallRun(1);
  options.shrink = true;
  options.sabotage = OracleOptions::Sabotage::kDropMigratedEntry;
  DifferentialOracle oracle(checked, options);
  OracleReport report = oracle.run();
  ASSERT_FALSE(report.equivalent);

  OracleOptions replayOptions = options;
  replayOptions.shrink = false;
  replayOptions.replayUpdates = report.shrunkUpdates;
  replayOptions.probePacketOverride = report.shrunkPacketBytes;
  replayOptions.probeIngressPort = report.shrunkIngressPort;
  DifferentialOracle replay(checked, replayOptions);
  OracleReport replayed = replay.run();
  EXPECT_FALSE(replayed.equivalent)
      << "shrunk reproducer no longer diverges";
}

// Without sabotage the same (seed, subset) replay is clean — the divergence
// above is attributable to the injected fault, not to replay machinery.
TEST(DifferentialOracle, ReplaySubsetWithoutSabotageIsClean) {
  p4::CheckedProgram checked = load("middleblock");
  OracleOptions options = smallRun(1);
  options.replayUpdates = std::vector<size_t>{0, 1, 2};
  DifferentialOracle oracle(checked, options);
  OracleReport report = oracle.run();
  EXPECT_TRUE(report.equivalent)
      << report.divergence->describe();
}

// Engine-level cousin of the oracle: after a fuzzed run, the incremental
// analysis state must match a from-scratch respecialization.
TEST(IncrementalConsistency, FuzzedRunMatchesScratchRespecialization) {
  p4::CheckedProgram checked = load("middleblock");
  flay::FlayService service(checked);
  size_t applied = 0;
  for (const auto& update : net::fuzzUpdateSequence(checked, 40, 13)) {
    try {
      service.applyUpdate(update);
      ++applied;
    } catch (const std::invalid_argument&) {
      // fuzzUpdateSequence scripts are replayed in full here, so rejections
      // only come from benign races in the generator; skip them.
    }
  }
  ASSERT_GT(applied, 0u);
  ConsistencyReport report = checkIncrementalConsistency(service);
  EXPECT_TRUE(report.consistent)
      << report.mismatchedPoints.size() << " point(s) drifted";
}

}  // namespace
}  // namespace flay::oracle
