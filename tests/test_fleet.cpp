// Tests for the multi-device fleet controller: broadcast/drain convergence,
// per-device fault isolation (bounded queues, degraded members), the shared
// verdict cache, and fleet-wide crash recovery — every device's journal
// replays independently and lands on the digest of an uninterrupted run.

#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/obs.h"

namespace flay::fleet {
namespace {

namespace fs = std::filesystem;

p4::CheckedProgram load(const char* name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

/// Fresh state directory per test; removed on scope exit.
class StateDir {
 public:
  explicit StateDir(const char* tag) {
    path_ = fs::temp_directory_path() /
            (std::string("flay-fleet-") + tag + "-" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~StateDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(Fleet, BroadcastDrainConvergesEveryDevice) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/1);

  FleetOptions opts;
  opts.devices = 4;
  opts.jobs = 2;
  FleetController fc(checked, opts);
  ASSERT_EQ(fc.deviceCount(), 4u);
  EXPECT_EQ(fc.deviceName(0), "dev0");
  EXPECT_EQ(fc.deviceName(3), "dev3");

  for (const auto& u : script) {
    EXPECT_EQ(fc.broadcast(u), 4u);
  }
  fc.drain();

  std::string first = fc.stateDigest(0);
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    DeviceStatus s = fc.status(i);
    EXPECT_EQ(s.applied, script.size()) << s.name;
    EXPECT_EQ(s.rejected, 0u) << s.name;
    EXPECT_EQ(s.dropped, 0u) << s.name;
    EXPECT_EQ(s.queued, 0u) << s.name;
    EXPECT_FALSE(s.failed) << s.name;
    EXPECT_EQ(fc.stateDigest(i), first) << s.name;
  }
  EXPECT_EQ(fc.failedDevices(), 0u);
}

// Identical broadcast streams must converge to identical committed state no
// matter what faults each device injects along the way — the controller's
// state digest tracks the committed updates, not the install mishaps.
TEST(Fleet, FaultyDevicesStillConverge) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/2);

  FleetOptions opts;
  opts.devices = 4;
  opts.jobs = 2;
  opts.faultPlan = controller::FaultPlan::parse("fail-first=2,flaky=0.2");
  FleetController fc(checked, opts);
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();

  EXPECT_EQ(fc.failedDevices(), 0u);
  std::string first = fc.stateDigest(0);
  for (size_t i = 1; i < fc.deviceCount(); ++i) {
    EXPECT_EQ(fc.stateDigest(i), first) << fc.deviceName(i);
  }
}

TEST(Fleet, BoundedQueueDropsInsteadOfBlocking) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 10, /*seed=*/3);

  FleetOptions opts;
  opts.devices = 2;
  opts.queueCapacity = 4;
  FleetController fc(checked, opts);
  size_t accepted = 0;
  for (const auto& u : script) accepted += fc.broadcast(u);
  // Capacity 4 per device: the first 4 broadcasts land everywhere, the
  // remaining 6 are dropped everywhere (and counted), never blocking.
  EXPECT_EQ(accepted, 2u * 4u);
  fc.drain();
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    DeviceStatus s = fc.status(i);
    EXPECT_EQ(s.applied, 4u) << s.name;
    EXPECT_EQ(s.dropped, 6u) << s.name;
    EXPECT_FALSE(s.failed) << s.name;
  }
}

// A device stuck in a sustained install outage degrades (pinning its last
// good program) but must keep committing updates and must not hold up the
// rest of the fleet.
TEST(Fleet, DegradedDeviceDoesNotStallTheFleet) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/4);

  FleetOptions opts;
  opts.devices = 3;
  opts.jobs = 2;
  opts.faultPlan = controller::FaultPlan::parse("outage=1+1000");
  opts.controller.maxInstallRetries = 1;
  opts.controller.sleepOnBackoff = false;
  FleetController fc(checked, opts);
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();

  EXPECT_GE(fc.degradedDevices(), 1u);
  EXPECT_EQ(fc.failedDevices(), 0u);
  obs::Registry& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("fleet.degraded_devices").value(),
            fc.degradedDevices());
  std::string first = fc.stateDigest(0);
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    DeviceStatus s = fc.status(i);
    EXPECT_EQ(s.applied, script.size()) << s.name;
    EXPECT_EQ(s.queued, 0u) << s.name;
    EXPECT_EQ(fc.stateDigest(i), first) << s.name;
  }
}

TEST(Fleet, SharedCacheIsExposedAndOptional) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 8, /*seed=*/5);

  FleetOptions shared;
  shared.devices = 2;
  FleetController withCache(checked, shared);
  ASSERT_NE(withCache.sharedCache(), nullptr);
  for (const auto& u : script) withCache.broadcast(u);
  withCache.drain();
  EXPECT_GT(withCache.sharedCache()->size(), 0u);

  FleetOptions priv = shared;
  priv.sharedVerdictCache = false;
  FleetController withoutCache(checked, priv);
  EXPECT_EQ(withoutCache.sharedCache(), nullptr);
  for (const auto& u : script) withoutCache.broadcast(u);
  withoutCache.drain();

  // The cache is an accelerator, never a semantic input.
  EXPECT_EQ(withCache.fleetDigest(), withoutCache.fleetDigest());
}

TEST(Fleet, StatusOfUnknownDeviceThrows) {
  p4::CheckedProgram checked = load("middleblock");
  FleetOptions opts;
  opts.devices = 1;
  FleetController fc(checked, opts);
  EXPECT_THROW(fc.status(7), std::out_of_range);
  EXPECT_THROW(fc.stateDigest(7), std::out_of_range);
}

// The fleet-wide crash-recovery acceptance check: kill a 5-device fleet in
// the middle of a broadcast stream (destruction with no shutdown work),
// restart over the same state root, finish the stream, and require every
// device digest — and the fleet digest — to match an uninterrupted run.
TEST(Fleet, KillMidStreamRecoversEveryDeviceJournal) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 20, /*seed=*/6);
  const size_t kill = script.size() / 2;

  FleetOptions opts;
  opts.devices = 5;
  opts.jobs = 2;
  opts.controller.checkpointEvery = 4;

  // Reference: one uninterrupted run (in-memory; journals are irrelevant).
  std::string wantFleet;
  std::vector<std::string> wantDevice;
  {
    FleetController ref(checked, opts);
    for (const auto& u : script) ref.broadcast(u);
    ref.drain();
    wantFleet = ref.fleetDigest();
    for (size_t i = 0; i < ref.deviceCount(); ++i) {
      wantDevice.push_back(ref.stateDigest(i));
    }
  }

  StateDir root("kill");
  FleetOptions durable = opts;
  durable.stateDirRoot = root.str();
  {
    FleetController fc(checked, durable);
    for (size_t j = 0; j < kill; ++j) fc.broadcast(script[j]);
    fc.drain();
    // Destroyed here with updates still to come and no checkpoint call —
    // the moral equivalent of SIGKILL mid-stream. Durability must come from
    // the per-record journal fsyncs alone.
  }
  FleetController recovered(checked, durable);
  uint64_t replayed = 0;
  for (size_t i = 0; i < recovered.deviceCount(); ++i) {
    replayed += recovered.status(i).replayed;
  }
  EXPECT_GT(replayed, 0u);
  for (size_t j = kill; j < script.size(); ++j) recovered.broadcast(script[j]);
  recovered.drain();

  ASSERT_EQ(recovered.deviceCount(), wantDevice.size());
  for (size_t i = 0; i < recovered.deviceCount(); ++i) {
    EXPECT_EQ(recovered.stateDigest(i), wantDevice[i])
        << recovered.deviceName(i);
  }
  EXPECT_EQ(recovered.fleetDigest(), wantFleet);
}

// checkpointAll bounds the replay: after a checkpoint, a restart replays
// only the updates committed since.
TEST(Fleet, CheckpointAllBoundsReplay) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 12, /*seed=*/7);

  StateDir root("ckpt");
  FleetOptions opts;
  opts.devices = 2;
  opts.stateDirRoot = root.str();
  opts.controller.checkpointEvery = 1000;  // only explicit checkpoints
  std::string want;
  {
    FleetController fc(checked, opts);
    for (const auto& u : script) fc.broadcast(u);
    fc.drain();
    fc.checkpointAll();
    want = fc.fleetDigest();
  }
  FleetController recovered(checked, opts);
  for (size_t i = 0; i < recovered.deviceCount(); ++i) {
    EXPECT_EQ(recovered.status(i).replayed, 0u) << recovered.deviceName(i);
  }
  EXPECT_EQ(recovered.fleetDigest(), want);
}

// The streaming bulk broadcast must land every device on the same digest as
// the queued broadcast/drain path fed the identical stream.
TEST(Fleet, BroadcastBulkConvergesAndMatchesQueuedPath) {
  p4::CheckedProgram checked = load("middleblock");
  auto stream = net::middleblockAclEntries(120);

  FleetOptions opts;
  opts.devices = 3;
  opts.jobs = 2;
  FleetController bulkFc(checked, opts);
  flay::BulkLoadOptions bopts;
  bopts.chunkSize = 32;
  auto res = bulkFc.broadcastBulk(stream, bopts);
  EXPECT_EQ(res.devices, 3u);
  EXPECT_EQ(res.applied, 3 * stream.size());
  EXPECT_EQ(res.rejected, 0u);
  EXPECT_GT(res.bypassed, 0u);
  std::string first = bulkFc.stateDigest(0);
  for (size_t i = 1; i < bulkFc.deviceCount(); ++i) {
    EXPECT_EQ(bulkFc.stateDigest(i), first) << bulkFc.deviceName(i);
  }

  FleetController seqFc(checked, opts);
  for (const auto& u : stream) seqFc.broadcast(u);
  seqFc.drain();
  EXPECT_EQ(seqFc.stateDigest(0), first)
      << "bulk and queued paths diverged on identical streams";
}

// Per-device drop accounting: every dropped update lands in that member's
// own fleet.<name>.dropped_updates counter, the drop makes the member lossy
// in convergence() (divergence expected and attributed, not a failure), and
// the fleet digest mixes the loss so a lossy fleet can never alias a clean
// one.
TEST(Fleet, PerDeviceDropCountersMakeConvergenceLossAware) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 10, /*seed=*/3);

  FleetOptions opts;
  opts.devices = 2;
  opts.queueCapacity = 4;
  FleetController fc(checked, opts);
  obs::Registry& reg = obs::Registry::global();
  uint64_t dev0Before = reg.counter("fleet.dev0.dropped_updates").value();
  uint64_t dev1Before = reg.counter("fleet.dev1.dropped_updates").value();
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();

  EXPECT_EQ(reg.counter("fleet.dev0.dropped_updates").value(),
            dev0Before + 6);
  EXPECT_EQ(reg.counter("fleet.dev1.dropped_updates").value(),
            dev1Before + 6);

  FleetController::ConvergenceReport conv = fc.convergence();
  EXPECT_FALSE(conv.converged);
  EXPECT_EQ(conv.droppedUpdates, 12u);
  EXPECT_EQ(conv.lossyDevices.size(), 2u);
  EXPECT_TRUE(conv.divergentDevices.empty());
  EXPECT_TRUE(conv.failedDevices.empty());

  // A clean fleet fed the same truncated stream ends with the same state
  // digests but a different *fleet* digest: the loss accounting is mixed in.
  FleetOptions cleanOpts;
  cleanOpts.devices = 2;
  FleetController clean(checked, cleanOpts);
  for (size_t i = 0; i < 4; ++i) clean.broadcast(script[i]);
  clean.drain();
  EXPECT_EQ(clean.stateDigest(0), fc.stateDigest(0));
  EXPECT_NE(clean.fleetDigest(), fc.fleetDigest());
  FleetController::ConvergenceReport cleanConv = clean.convergence();
  EXPECT_TRUE(cleanConv.converged);
  EXPECT_FALSE(cleanConv.digest.empty());
  EXPECT_EQ(cleanConv.droppedUpdates, 0u);
}

// tryRecoverAll: a member degraded by a deterministic outage is re-admitted
// through the exponential-backoff schedule — attempts are counted, the
// backoff histogram records the waits, the attempt counter resets on
// success, and the fleet converges to identical digests afterwards.
TEST(Fleet, TryRecoverAllReadmitsAfterBackoff) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/4);

  FleetOptions opts;
  opts.devices = 2;
  opts.jobs = 2;
  // Installs 1..12 fail: every device degrades on its first recompile.
  opts.faultPlan = controller::FaultPlan::parse("outage=1+12");
  opts.controller.maxInstallRetries = 1;
  opts.controller.tryRecoverEvery = 0;  // re-admission only via the fleet
  opts.recovery.backoffBaseMicros = 100;
  opts.recovery.backoffMaxMicros = 1000;
  FleetController fc(checked, opts);
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();
  ASSERT_EQ(fc.degradedDevices(), 2u);

  obs::Registry& reg = obs::Registry::global();
  uint64_t attemptsBefore = reg.counter("fleet.readmission_attempts").value();
  uint64_t readmittedBefore = reg.counter("fleet.readmissions").value();
  uint64_t backoffBefore = reg.histogram("fleet.readmission_backoff_us").count();

  size_t stillDegraded = fc.degradedDevices();
  for (int round = 0; round < 2000 && stillDegraded > 0; ++round) {
    stillDegraded = fc.tryRecoverAll();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(stillDegraded, 0u);
  uint64_t attempts = reg.counter("fleet.readmission_attempts").value();
  EXPECT_GE(attempts, attemptsBefore + 4)
      << "the 12-install outage cannot clear on the first attempt";
  EXPECT_EQ(reg.counter("fleet.readmissions").value(), readmittedBefore + 2);
  EXPECT_GT(reg.histogram("fleet.readmission_backoff_us").count(),
            backoffBefore);

  std::string first = fc.stateDigest(0);
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    DeviceStatus s = fc.status(i);
    EXPECT_FALSE(s.degraded) << s.name;
    EXPECT_EQ(s.recoverAttempts, 0u) << s.name << ": reset on success";
    EXPECT_EQ(s.committed, s.deviceVisible) << s.name;
    EXPECT_EQ(fc.stateDigest(i), first) << s.name;
  }
  EXPECT_TRUE(fc.convergence().converged);
}

// maxAttempts bounds re-admission: once a member exhausts its budget the
// fleet stops hammering it (counted once in fleet.readmission_giveups) and
// tryRecoverAll keeps reporting it degraded.
TEST(Fleet, TryRecoverAllGivesUpAfterMaxAttempts) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 16, /*seed=*/4);

  FleetOptions opts;
  opts.devices = 1;
  opts.faultPlan = controller::FaultPlan::parse("outage=1+100000");
  opts.controller.maxInstallRetries = 1;
  opts.controller.tryRecoverEvery = 0;
  opts.recovery.backoffBaseMicros = 50;
  opts.recovery.backoffMaxMicros = 200;
  opts.recovery.maxAttempts = 3;
  FleetController fc(checked, opts);
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();
  ASSERT_EQ(fc.degradedDevices(), 1u);

  obs::Registry& reg = obs::Registry::global();
  uint64_t giveupsBefore = reg.counter("fleet.readmission_giveups").value();
  uint64_t attemptsBefore = reg.counter("fleet.readmission_attempts").value();
  for (int round = 0; round < 200; ++round) {
    EXPECT_EQ(fc.tryRecoverAll(), 1u);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(reg.counter("fleet.readmission_attempts").value(),
            attemptsBefore + 3);
  EXPECT_EQ(reg.counter("fleet.readmission_giveups").value(),
            giveupsBefore + 1);
  EXPECT_EQ(fc.status(0).recoverAttempts, 3u);
}

}  // namespace
}  // namespace flay::fleet
