#include "sat/solver.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "obs/obs.h"

namespace flay::sat {
namespace {

Lit pos(uint32_t v) { return Lit::make(v, false); }
Lit neg(uint32_t v) { return Lit::make(v, true); }

TEST(SatSolver, EmptyInstanceIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  uint32_t a = s.newVar();
  s.addUnit(pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  uint32_t a = s.newVar();
  s.addUnit(pos(a));
  EXPECT_FALSE(s.addUnit(neg(a)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar(), c = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  s.addClause({neg(b), pos(c)});  // b -> c
  s.addUnit(pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: x[p][h] = pigeon p in hole h.
  Solver s;
  uint32_t x[3][2];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  // Each pigeon in some hole.
  for (int p = 0; p < 3; ++p) s.addClause({pos(x[p][0]), pos(x[p][1])});
  // No two pigeons share a hole.
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat) {
  constexpr int P = 5, H = 4;
  Solver s;
  uint32_t x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.numConflicts(), 0u);
}

TEST(SatSolver, XorChainSat) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., parity constraints encoded as CNF.
  Solver s;
  constexpr int N = 20;
  std::vector<uint32_t> v;
  for (int i = 0; i < N; ++i) v.push_back(s.newVar());
  for (int i = 0; i + 1 < N; ++i) {
    // xi ^ xi+1 = 1  <=>  (xi | xi+1) & (~xi | ~xi+1)
    s.addClause({pos(v[i]), pos(v[i + 1])});
    s.addClause({neg(v[i]), neg(v[i + 1])});
  }
  s.addUnit(pos(v[0]));
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < N; ++i) EXPECT_EQ(s.modelValue(v[i]), i % 2 == 0);
}

TEST(SatSolver, TautologyAndDuplicateLiteralsHandled) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), neg(a)});          // tautology: ignored
  s.addClause({pos(b), pos(b), pos(b)});  // dedupes to unit
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  std::vector<Lit> assume1 = {pos(a)};
  EXPECT_EQ(s.solve(assume1), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  // Assuming a and !b contradicts a -> b.
  std::vector<Lit> assume2 = {pos(a), neg(b)};
  EXPECT_EQ(s.solve(assume2), Result::kUnsat);
  // Solver remains usable afterwards.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, IncrementalClauseAddition) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), pos(b)});
  EXPECT_EQ(s.solve(), Result::kSat);
  s.addUnit(neg(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  s.addUnit(neg(b));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Reference DPLL-free checker: verify a model satisfies all clauses.
bool satisfies(const std::vector<std::vector<Lit>>& clauses, const Solver& s) {
  for (const auto& c : clauses) {
    bool ok = false;
    for (Lit l : c) {
      bool val = s.modelValue(l.var());
      if (l.negated()) val = !val;
      if (val) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

// Brute-force satisfiability for <= 20 vars.
bool bruteForceSat(uint32_t numVars, const std::vector<std::vector<Lit>>& cs) {
  for (uint64_t m = 0; m < (1ull << numVars); ++m) {
    bool ok = true;
    for (const auto& c : cs) {
      bool clauseOk = false;
      for (Lit l : c) {
        bool val = (m >> l.var()) & 1;
        if (l.negated()) val = !val;
        if (val) {
          clauseOk = true;
          break;
        }
      }
      if (!clauseOk) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Property test: random 3-SAT near the phase transition, cross-checked
// against brute force. Seeds parameterize instance generation.
class Random3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam() * 7919);
  constexpr uint32_t kVars = 12;
  const uint32_t kClauses = 12 * 4;  // ratio ~4.0: mixed sat/unsat
  Solver s;
  for (uint32_t i = 0; i < kVars; ++i) s.newVar();
  std::vector<std::vector<Lit>> clauses;
  for (uint32_t i = 0; i < kClauses; ++i) {
    std::vector<Lit> c;
    for (int k = 0; k < 3; ++k) {
      c.push_back(Lit::make(rng() % kVars, rng() % 2 == 0));
    }
    clauses.push_back(c);
    s.addClause(c);
  }
  bool expected = bruteForceSat(kVars, clauses);
  Result got = s.solve();
  EXPECT_EQ(got == Result::kSat, expected);
  if (got == Result::kSat) {
    EXPECT_TRUE(satisfies(clauses, s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest, ::testing::Range(1, 31));

// Regression: the learned-clause DB must stay bounded on a hard query.
// Reduction used to be gated on `conflicts % 2048 == 0` holding exactly at a
// restart boundary, which almost never fires, so the DB grew one clause per
// conflict for the whole run.
TEST(SatSolver, LearnedDbStaysBoundedOnHardInstance) {
  // Pigeonhole PH(9,8): unsat and reliably expensive for CDCL — tens of
  // thousands of conflicts, far past several reduction deadlines.
  constexpr int P = 9, H = 8;
  Solver s;
  uint32_t x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  uint64_t reduceRuns0 =
      obs::Registry::global().counter("sat.reduce_runs").value();
  EXPECT_EQ(s.solve(), Result::kUnsat);
  ASSERT_GT(s.numConflicts(), 8192u) << "instance no longer hard enough to "
                                        "exercise the reduction schedule";
  EXPECT_GE(s.numReduceRuns(), 2u);
  // Bounded: at most ~2 reduction intervals of clauses survive at any time,
  // plus reason-locked and binary clauses that reduction must keep.
  EXPECT_LE(s.numLearnedClauses(), 3 * 2048u);
  EXPECT_LT(s.numLearnedClauses(), s.numConflicts() / 2);
  // The reduction runs are visible through the observability registry too.
  EXPECT_GT(obs::Registry::global().counter("sat.reduce_runs").value(),
            reduceRuns0);
}

}  // namespace
}  // namespace flay::sat
