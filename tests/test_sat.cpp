#include "sat/solver.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

#include "obs/obs.h"
#include "sat/session.h"

namespace flay::sat {
namespace {

Lit pos(uint32_t v) { return Lit::make(v, false); }
Lit neg(uint32_t v) { return Lit::make(v, true); }

TEST(SatSolver, EmptyInstanceIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  uint32_t a = s.newVar();
  s.addUnit(pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  uint32_t a = s.newVar();
  s.addUnit(pos(a));
  EXPECT_FALSE(s.addUnit(neg(a)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, SimpleImplicationChain) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar(), c = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  s.addClause({neg(b), pos(c)});  // b -> c
  s.addUnit(pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_TRUE(s.modelValue(c));
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // 3 pigeons, 2 holes: x[p][h] = pigeon p in hole h.
  Solver s;
  uint32_t x[3][2];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  // Each pigeon in some hole.
  for (int p = 0; p < 3; ++p) s.addClause({pos(x[p][0]), pos(x[p][1])});
  // No two pigeons share a hole.
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, PigeonHole5Into4IsUnsat) {
  constexpr int P = 5, H = 4;
  Solver s;
  uint32_t x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.numConflicts(), 0u);
}

TEST(SatSolver, XorChainSat) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., parity constraints encoded as CNF.
  Solver s;
  constexpr int N = 20;
  std::vector<uint32_t> v;
  for (int i = 0; i < N; ++i) v.push_back(s.newVar());
  for (int i = 0; i + 1 < N; ++i) {
    // xi ^ xi+1 = 1  <=>  (xi | xi+1) & (~xi | ~xi+1)
    s.addClause({pos(v[i]), pos(v[i + 1])});
    s.addClause({neg(v[i]), neg(v[i + 1])});
  }
  s.addUnit(pos(v[0]));
  EXPECT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < N; ++i) EXPECT_EQ(s.modelValue(v[i]), i % 2 == 0);
}

TEST(SatSolver, TautologyAndDuplicateLiteralsHandled) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), neg(a)});          // tautology: ignored
  s.addClause({pos(b), pos(b), pos(b)});  // dedupes to unit
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  std::vector<Lit> assume1 = {pos(a)};
  EXPECT_EQ(s.solve(assume1), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  // Assuming a and !b contradicts a -> b.
  std::vector<Lit> assume2 = {pos(a), neg(b)};
  EXPECT_EQ(s.solve(assume2), Result::kUnsat);
  // Solver remains usable afterwards.
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, IncrementalClauseAddition) {
  Solver s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), pos(b)});
  EXPECT_EQ(s.solve(), Result::kSat);
  s.addUnit(neg(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  s.addUnit(neg(b));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Reference DPLL-free checker: verify a model satisfies all clauses.
bool satisfies(const std::vector<std::vector<Lit>>& clauses, const Solver& s) {
  for (const auto& c : clauses) {
    bool ok = false;
    for (Lit l : c) {
      bool val = s.modelValue(l.var());
      if (l.negated()) val = !val;
      if (val) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

// Brute-force satisfiability for <= 20 vars.
bool bruteForceSat(uint32_t numVars, const std::vector<std::vector<Lit>>& cs) {
  for (uint64_t m = 0; m < (1ull << numVars); ++m) {
    bool ok = true;
    for (const auto& c : cs) {
      bool clauseOk = false;
      for (Lit l : c) {
        bool val = (m >> l.var()) & 1;
        if (l.negated()) val = !val;
        if (val) {
          clauseOk = true;
          break;
        }
      }
      if (!clauseOk) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Property test: random 3-SAT near the phase transition, cross-checked
// against brute force. Seeds parameterize instance generation.
class Random3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam() * 7919);
  constexpr uint32_t kVars = 12;
  const uint32_t kClauses = 12 * 4;  // ratio ~4.0: mixed sat/unsat
  Solver s;
  for (uint32_t i = 0; i < kVars; ++i) s.newVar();
  std::vector<std::vector<Lit>> clauses;
  for (uint32_t i = 0; i < kClauses; ++i) {
    std::vector<Lit> c;
    for (int k = 0; k < 3; ++k) {
      c.push_back(Lit::make(rng() % kVars, rng() % 2 == 0));
    }
    clauses.push_back(c);
    s.addClause(c);
  }
  bool expected = bruteForceSat(kVars, clauses);
  Result got = s.solve();
  EXPECT_EQ(got == Result::kSat, expected);
  if (got == Result::kSat) {
    EXPECT_TRUE(satisfies(clauses, s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest, ::testing::Range(1, 31));

// Regression: the learned-clause DB must stay bounded on a hard query.
// Reduction used to be gated on `conflicts % 2048 == 0` holding exactly at a
// restart boundary, which almost never fires, so the DB grew one clause per
// conflict for the whole run.
TEST(SatSolver, LearnedDbStaysBoundedOnHardInstance) {
  // Pigeonhole PH(9,8): unsat and reliably expensive for CDCL — tens of
  // thousands of conflicts, far past several reduction deadlines.
  constexpr int P = 9, H = 8;
  Solver s;
  uint32_t x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  uint64_t reduceRuns0 =
      obs::Registry::global().counter("sat.reduce_runs").value();
  EXPECT_EQ(s.solve(), Result::kUnsat);
  ASSERT_GT(s.numConflicts(), 8192u) << "instance no longer hard enough to "
                                        "exercise the reduction schedule";
  EXPECT_GE(s.numReduceRuns(), 2u);
  // Bounded: at most ~2 reduction intervals of clauses survive at any time,
  // plus reason-locked and binary clauses that reduction must keep.
  EXPECT_LE(s.numLearnedClauses(), 3 * 2048u);
  EXPECT_LT(s.numLearnedClauses(), s.numConflicts() / 2);
  // The reduction runs are visible through the observability registry too.
  EXPECT_GT(obs::Registry::global().counter("sat.reduce_runs").value(),
            reduceRuns0);
}

// ---------------------------------------------------------------------------
// SolverSession: assumption-based incremental solving with activation-literal
// clause groups. The battery below locks the session to the one contract the
// verdict hot path depends on: at every step, a warm session must return the
// same result a fresh solver does when given only the currently-live clauses.

TEST(SolverSession, PermanentClausesBehaveLikePlainSolver) {
  SolverSession s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  s.addUnit(pos(a));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_EQ(s.numLiveGroups(), 0u);  // permanent clauses cost no assumptions
}

TEST(SolverSession, RetiredGroupClausesStopConstraining) {
  SolverSession s;
  uint32_t a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), pos(b)});  // permanent: a | b
  uint32_t g = s.openGroup();
  s.setActiveGroup(g);
  s.addUnit(neg(a));
  s.addUnit(neg(b));
  s.setActiveGroup(SolverSession::kPermanentGroup);
  EXPECT_EQ(s.solve(), Result::kUnsat);  // (a|b) & !a & !b
  s.retireGroup(g);
  EXPECT_EQ(s.solve(), Result::kSat);  // guards off: only a | b remains
  EXPECT_TRUE(s.modelValue(a) || s.modelValue(b));
  // Retirement is idempotent and final.
  s.retireGroup(g);
  EXPECT_FALSE(s.groupLive(g));
  EXPECT_EQ(s.numRetiredGroups(), 1u);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverSession, GroupsRetireIndependently) {
  SolverSession s;
  uint32_t a = s.newVar();
  uint32_t g1 = s.openGroup();
  uint32_t g2 = s.openGroup();
  s.setActiveGroup(g1);
  s.addUnit(pos(a));
  s.setActiveGroup(g2);
  s.addUnit(neg(a));
  s.setActiveGroup(SolverSession::kPermanentGroup);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  s.retireGroup(g2);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));  // g1's unit still live
  s.retireGroup(g1);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverSession, ConflictBudgetUnknownThenRecovery) {
  // A hard pigeonhole instance inside a retirable group: a tiny conflict
  // budget must yield kUnknown without corrupting the session — lifting the
  // budget settles the same question, and retiring the group flips it.
  constexpr int P = 7, H = 6;
  SolverSession s;
  uint32_t x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.newVar();
  }
  uint32_t g = s.openGroup();
  s.setActiveGroup(g);
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.addClause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
  s.setActiveGroup(SolverSession::kPermanentGroup);
  s.setConflictBudget(5);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  s.setConflictBudget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  s.retireGroup(g);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverSession, RestrictedSolveDecidesDefinitionalCone) {
  // y <-> (a & b), Tseitin-style: restricting decisions to {a, b} must still
  // settle queries about y, because y is propagation-defined by its inputs.
  SolverSession s;
  uint32_t a = s.newVar(), b = s.newVar(), y = s.newVar();
  s.addClause({neg(y), pos(a)});
  s.addClause({neg(y), pos(b)});
  s.addClause({neg(a), neg(b), pos(y)});
  const std::array<uint32_t, 2> cone{a, b};
  EXPECT_EQ(s.solveRestricted(std::array{pos(y)}, cone), Result::kSat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_EQ(s.solveRestricted(std::array{pos(y), neg(a)}, cone),
            Result::kUnsat);
  EXPECT_EQ(s.solveRestricted(std::array{neg(y)}, cone), Result::kSat);
  EXPECT_FALSE(s.modelValue(a) && s.modelValue(b));
}

// Differential fuzz: a randomized interleaving of clause emissions (permanent
// and grouped), group retirements, and assumption solves. After every solve
// the warm session's verdict is replayed on a fresh solver loaded with only
// the live clauses — byte-for-byte the equivalence the check engine's warm
// sessions rely on, including after retirement and across learned-clause
// retention.
class SessionDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionDifferentialTest, MatchesFreshReplayAtEveryStep) {
  std::mt19937_64 rng(GetParam() * 104729u);
  constexpr uint32_t kVars = 10;
  SolverSession session;
  for (uint32_t i = 0; i < kVars; ++i) session.newVar();

  struct GroupClauses {
    uint32_t id;
    bool live;
    std::vector<std::vector<Lit>> clauses;
  };
  std::vector<std::vector<Lit>> permanent;
  std::vector<GroupClauses> groups;

  auto randClause = [&] {
    std::vector<Lit> c;
    size_t len = 1 + rng() % 3;
    for (size_t k = 0; k < len; ++k) {
      c.push_back(Lit::make(rng() % kVars, rng() % 2 == 0));
    }
    return c;
  };

  auto freshVerdict = [&](std::span<const Lit> assumptions) {
    Solver fresh;
    for (uint32_t i = 0; i < kVars; ++i) fresh.newVar();
    for (const auto& c : permanent) fresh.addClause(c);
    for (const auto& g : groups) {
      if (!g.live) continue;
      for (const auto& c : g.clauses) fresh.addClause(c);
    }
    return fresh.solve(assumptions);
  };

  int solves = 0;
  for (int step = 0; step < 80; ++step) {
    switch (rng() % 6) {
      case 0: {  // open a group and emit clauses into it
        GroupClauses gc{session.openGroup(), true, {}};
        session.setActiveGroup(gc.id);
        size_t n = 1 + rng() % 3;
        for (size_t i = 0; i < n; ++i) {
          auto c = randClause();
          session.addClause(std::span<const Lit>(c));
          gc.clauses.push_back(std::move(c));
        }
        session.setActiveGroup(SolverSession::kPermanentGroup);
        groups.push_back(std::move(gc));
        break;
      }
      case 1: {  // retire a random group
        if (groups.empty()) break;
        GroupClauses& g = groups[rng() % groups.size()];
        session.retireGroup(g.id);
        g.live = false;
        break;
      }
      case 2: {  // permanent clause
        auto c = randClause();
        session.addClause(std::span<const Lit>(c));
        permanent.push_back(std::move(c));
        break;
      }
      default: {  // solve under random assumptions
        std::vector<Lit> assumptions;
        size_t n = rng() % 3;
        for (size_t k = 0; k < n; ++k) {
          assumptions.push_back(Lit::make(rng() % kVars, rng() % 2 == 0));
        }
        Result warm = session.solve(assumptions);
        Result fresh = freshVerdict(assumptions);
        ASSERT_EQ(warm, fresh)
            << "step " << step << " seed " << GetParam() << ": warm session "
            << "and fresh replay of the live clauses disagree";
        ++solves;
        break;
      }
    }
  }
  EXPECT_GT(solves, 10) << "schedule degenerated; widen the action mix";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionDifferentialTest,
                         ::testing::Range(1, 41));

// Same differential, driven through kUnknown: a conflict budget that starves
// some solves must starve them without poisoning later unlimited solves.
TEST(SolverSession, DifferentialSurvivesBudgetStarvation) {
  std::mt19937_64 rng(4242);
  constexpr uint32_t kVars = 12;
  SolverSession session;
  for (uint32_t i = 0; i < kVars; ++i) session.newVar();
  std::vector<std::vector<Lit>> permanent;
  for (int i = 0; i < 40; ++i) {
    std::vector<Lit> c;
    for (int k = 0; k < 3; ++k) c.push_back(Lit::make(rng() % kVars, rng() % 2 == 0));
    session.addClause(std::span<const Lit>(c));
    permanent.push_back(std::move(c));
  }
  for (int round = 0; round < 20; ++round) {
    std::vector<Lit> assumptions{Lit::make(rng() % kVars, rng() % 2 == 0)};
    // Starved solve: whatever it returns, it must not corrupt the session.
    session.setConflictBudget(1);
    (void)session.solve(assumptions);
    // Unlimited solve must match a fresh unlimited solver exactly.
    session.setConflictBudget(0);
    Result warm = session.solve(assumptions);
    Solver fresh;
    for (uint32_t i = 0; i < kVars; ++i) fresh.newVar();
    for (const auto& c : permanent) fresh.addClause(c);
    ASSERT_EQ(warm, fresh.solve(assumptions)) << "round " << round;
  }
}

}  // namespace
}  // namespace flay::sat
