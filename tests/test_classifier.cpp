#include "classifier/classifier.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace flay::classifier {
namespace {

Rule exactRule(uint32_t width, uint64_t value, uint32_t action) {
  return {BitVec(width, value), BitVec::allOnes(width), 0, action};
}

Rule prefixRule(uint32_t width, uint64_t value, uint32_t plen,
                uint32_t action) {
  BitVec mask =
      plen == 0 ? BitVec::zero(width) : BitVec::allOnes(width).shl(width - plen);
  return {BitVec(width, value), mask, static_cast<int32_t>(plen), action};
}

Rule maskRule(uint32_t width, uint64_t value, uint64_t mask, int32_t priority,
              uint32_t action) {
  return {BitVec(width, value), BitVec(width, mask), priority, action};
}

TEST(TcamClassifier, PriorityOrderedMatch) {
  std::vector<Rule> rules = {
      maskRule(8, 0x00, 0x00, 1, 100),   // wildcard, low priority
      maskRule(8, 0xA0, 0xF0, 10, 200),  // high nibble A, high priority
  };
  auto c = makeTcam(rules, 8);
  EXPECT_EQ(c->classify(BitVec(8, 0xAB)).value(), 200u);
  EXPECT_EQ(c->classify(BitVec(8, 0x1B)).value(), 100u);
  EXPECT_EQ(c->name(), "tcam");
}

TEST(TcamClassifier, MissWithoutWildcard) {
  auto c = makeTcam({maskRule(8, 0xA0, 0xF0, 1, 7)}, 8);
  EXPECT_FALSE(c->classify(BitVec(8, 0x10)).has_value());
}

TEST(ExactHash, MatchesAndMisses) {
  auto c = makeExactHash({exactRule(16, 80, 1), exactRule(16, 443, 2)}, 16);
  EXPECT_EQ(c->classify(BitVec(16, 80)).value(), 1u);
  EXPECT_EQ(c->classify(BitVec(16, 443)).value(), 2u);
  EXPECT_FALSE(c->classify(BitVec(16, 8080)).has_value());
}

TEST(ExactHash, RejectsMaskedRules) {
  EXPECT_THROW(makeExactHash({maskRule(8, 1, 0xF0, 0, 1)}, 8),
               std::invalid_argument);
}

TEST(LpmTrie, LongestPrefixWins) {
  std::vector<Rule> rules = {
      prefixRule(32, 0x0A000000, 8, 1),
      prefixRule(32, 0x0A010000, 16, 2),
      prefixRule(32, 0x0A010100, 24, 3),
  };
  auto c = makeLpmTrie(rules, 32);
  EXPECT_EQ(c->classify(BitVec(32, 0x0A010101)).value(), 3u);
  EXPECT_EQ(c->classify(BitVec(32, 0x0A010201)).value(), 2u);
  EXPECT_EQ(c->classify(BitVec(32, 0x0A990201)).value(), 1u);
  EXPECT_FALSE(c->classify(BitVec(32, 0x0B000000)).has_value());
}

TEST(LpmTrie, DefaultRouteMatchesEverything) {
  auto c = makeLpmTrie({prefixRule(32, 0, 0, 42)}, 32);
  EXPECT_EQ(c->classify(BitVec(32, 0xDEADBEEF)).value(), 42u);
}

TEST(LpmTrie, RejectsNonPrefixMasks) {
  EXPECT_THROW(makeLpmTrie({maskRule(32, 1, 0x00FF00FF, 0, 1)}, 32),
               std::invalid_argument);
}

TEST(Stcam, GroupsByMaskAndMatches) {
  std::vector<Rule> rules = {
      maskRule(16, 0x1200, 0xFF00, 5, 1),
      maskRule(16, 0x3400, 0xFF00, 5, 2),
      maskRule(16, 0x0011, 0x00FF, 9, 3),
  };
  auto c = makeStcam(rules, 16, 4);
  EXPECT_EQ(c->classify(BitVec(16, 0x12AB)).value(), 1u);
  EXPECT_EQ(c->classify(BitVec(16, 0x34CD)).value(), 2u);
  // 0x1211 matches both 0x12xx (prio 5) and xx11 (prio 9): higher wins.
  EXPECT_EQ(c->classify(BitVec(16, 0x1211)).value(), 3u);
  EXPECT_FALSE(c->classify(BitVec(16, 0x9999)).has_value());
}

TEST(Stcam, RejectsTooManyMasks) {
  std::vector<Rule> rules;
  for (uint64_t i = 1; i <= 9; ++i) {
    rules.push_back(maskRule(16, 0, i, 0, 1));
  }
  EXPECT_THROW(makeStcam(rules, 16, 8), std::invalid_argument);
}

TEST(Chooser, PicksStructureByRuleShape) {
  EXPECT_EQ(chooseClassifier({exactRule(16, 1, 1)}, 16)->name(), "exact-hash");
  // Route-table shape: many distinct prefix lengths (too many masks for an
  // STCAM), all prefixes -> the trie is the admissible SRAM structure.
  std::vector<Rule> routes;
  for (uint32_t plen = 9; plen <= 28; ++plen) {
    for (uint64_t i = 0; i < 8; ++i) {
      routes.push_back(prefixRule(
          32, (0x0A000000 | (i << (32 - plen))) & 0xFFFFFFFF, plen,
          static_cast<uint32_t>(plen * 8 + i)));
    }
  }
  EXPECT_EQ(chooseClassifier(routes, 32, 8)->name(), "lpm-trie");
  std::vector<Rule> fewMasks = {maskRule(16, 0x1200, 0xFF00, 1, 1),
                                maskRule(16, 0x0034, 0x00FF, 2, 2)};
  EXPECT_EQ(chooseClassifier(fewMasks, 16)->name(), "stcam");
  std::vector<Rule> manyMasks;
  for (uint64_t i = 1; i <= 20; ++i) {
    manyMasks.push_back(maskRule(16, 0, i * 3, 0, 1));
  }
  EXPECT_EQ(chooseClassifier(manyMasks, 16)->name(), "tcam");
}

TEST(Chooser, ExactRulesAreMuchCheaperThanTcam) {
  std::vector<Rule> rules;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    rules.push_back(exactRule(32, rng(), static_cast<uint32_t>(i)));
  }
  auto tcam = makeTcam(rules, 32);
  auto chosen = chooseClassifier(rules, 32);
  EXPECT_EQ(chosen->name(), "exact-hash");
  EXPECT_LT(chosen->costUnits(), tcam->costUnits() / 2)
      << "specializing away the TCAM must cut cost by >2x";
}

// Property: every structure agrees with the reference TCAM on random keys
// whenever the rule set is representable.
class ClassifierAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierAgreementTest, StructuresAgreeWithTcam) {
  std::mt19937_64 rng(GetParam() * 7919);
  const uint32_t width = 16;

  // Prefix rules (valid for trie, stcam if few masks, tcam).
  std::vector<Rule> rules;
  std::set<uint64_t> usedPrefix;
  for (int i = 0; i < 30; ++i) {
    uint32_t plen = static_cast<uint32_t>(rng() % (width + 1));
    uint64_t value = rng() & 0xFFFF;
    Rule r = prefixRule(width, value, plen, static_cast<uint32_t>(rng() % 100));
    // LPM semantics: priority = prefix length; skip duplicate regions so
    // the winner is unambiguous across structures.
    uint64_t sig = (static_cast<uint64_t>(plen) << 16) |
                   r.value.bitAnd(r.mask).toUint64();
    if (!usedPrefix.insert(sig).second) continue;
    rules.push_back(r);
  }
  auto tcam = makeTcam(rules, width);
  auto trie = makeLpmTrie(rules, width);
  auto chosen = chooseClassifier(rules, width, 32);
  for (int i = 0; i < 500; ++i) {
    BitVec key(width, rng());
    auto a = tcam->classify(key);
    auto b = trie->classify(key);
    auto c = chosen->classify(key);
    ASSERT_EQ(a.has_value(), b.has_value());
    ASSERT_EQ(a.has_value(), c.has_value());
    if (a.has_value()) {
      ASSERT_EQ(*a, *b) << key.toHexString();
      ASSERT_EQ(*a, *c) << key.toHexString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierAgreementTest,
                         ::testing::Range(1, 11));

TEST(MemoryAccounting, TrieGrowsWithRulesTcamGrowsFaster) {
  std::vector<Rule> rules;
  for (int i = 0; i < 100; ++i) {
    rules.push_back(prefixRule(32, static_cast<uint64_t>(i) << 24, 8, 1));
  }
  auto trie = makeLpmTrie(rules, 32);
  auto tcam = makeTcam(rules, 32);
  EXPECT_GT(trie->memoryBits(), 0u);
  EXPECT_GT(tcam->costUnits(), trie->costUnits());
}

}  // namespace
}  // namespace flay::classifier
