#include "p4/printer.h"

#include <gtest/gtest.h>

#include "net/workloads.h"
#include "p4/clone.h"
#include "p4/typecheck.h"

namespace flay::p4 {
namespace {

/// Round trip: print -> reparse -> recheck must preserve program structure.
void expectRoundTrips(const CheckedProgram& original) {
  std::string source = printProgram(original.program);
  CheckedProgram reparsed;
  try {
    reparsed = loadProgramFromString(source);
  } catch (const CompileError& e) {
    FAIL() << "printed program failed to re-check: " << e.what()
           << "\n--- source ---\n"
           << source;
  }
  EXPECT_EQ(reparsed.program.statementCount(),
            original.program.statementCount());
  EXPECT_EQ(reparsed.program.headerTypes.size(),
            original.program.headerTypes.size());
  EXPECT_EQ(reparsed.program.controls.size(),
            original.program.controls.size());
  for (size_t i = 0; i < original.program.controls.size(); ++i) {
    EXPECT_EQ(reparsed.program.controls[i].tables.size(),
              original.program.controls[i].tables.size());
    EXPECT_EQ(reparsed.program.controls[i].actions.size(),
              original.program.controls[i].actions.size());
  }
  EXPECT_EQ(reparsed.env.fields().size(), original.env.fields().size());
  // Idempotence: printing the reparsed program gives identical text.
  EXPECT_EQ(printProgram(reparsed.program), source);
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, SuiteProgramsRoundTrip) {
  expectRoundTrips(loadProgramFromFile(net::programPath(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, PrinterRoundTrip,
                         ::testing::Values("scion", "switch", "middleblock",
                                           "dash", "beaucoup", "accturbo",
                                           "dta"));

TEST(Printer, ExprForms) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<16> a; bit<16> b; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  apply {
    hdr.h.a = (hdr.h.b + 16w3) * 16w2;
    hdr.h.a = hdr.h.b[7:0] ++ hdr.h.b[15:8];
    hdr.h.a = hdr.h.b > 5 ? 16w1 : 16w0;
    hdr.h.a = (bit<16>) hdr.h.b[7:0];
    hdr.h.b = ~hdr.h.a & 16w0xFF;
    if (!(hdr.h.a == 1) && hdr.h.b != 2) { exit; }
  }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  std::string source = printProgram(cp.program);
  EXPECT_NE(source.find("[7:0]"), std::string::npos);
  EXPECT_NE(source.find("++"), std::string::npos);
  EXPECT_NE(source.find("(bit<16>)"), std::string::npos);
  expectRoundTrips(cp);
}

TEST(Printer, SpecializedProgramsPrint) {
  // The specializer's synthesized literals must print re-parseably.
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C {
  action set_a(bit<8> v) { hdr.h.a = v; }
  table t {
    key = { hdr.h.a : exact; }
    actions = { set_a; noop; }
    default_action = set_a(42);
  }
  apply { t.apply(); }
}
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  expectRoundTrips(cp);
}

TEST(Clone, DeepCopyIsIndependent) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<8> a; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); transition accept; } }
control C { apply { hdr.h.a = 1; } }
deparser D { emit(hdr.h); }
pipeline(P, C, D);
)");
  Program clone = cloneProgram(cp.program);
  // Mutating the clone must not affect the original.
  clone.controls[0].applyBody.clear();
  EXPECT_EQ(cp.program.controls[0].applyBody.size(), 1u);
  // And the clone prints identically before mutation.
  Program clone2 = cloneProgram(cp.program);
  EXPECT_EQ(printProgram(clone2), printProgram(cp.program));
}

}  // namespace
}  // namespace flay::p4
