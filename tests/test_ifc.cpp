// IFC engine tests: the policy frontend, self-composition verdicts and
// delimited-release declassification on a hand-written program, the
// property harness (incremental == from-scratch after every update;
// soundness against a concrete interpreter taint oracle; declassification
// monotonicity) over randomized programs/policies/update streams, the
// warm-session scope-invalidation regression, and the pinned golden corpus
// for the bundled programs under two hand-written policies each.
//
// Regenerate goldens after an intentional verdict change with:
//   FLAY_UPDATE_GOLDEN=1 ./test_ifc

#include "ifc/ifc.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "flay/engine.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "p4/typecheck.h"
#include "sim/interpreter.h"

namespace flay::ifc {
namespace {

namespace core = ::flay::flay;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

// Two independent tables: `steer` picks the egress port from f0, `classify`
// derives metadata from f1. Both are empty until a test installs entries,
// so every flow starts trivially secure.
constexpr char kTinyProgram[] = R"(
header h_t { bit<16> f0; bit<16> f1; bit<16> f2; bit<16> f3; }
struct headers { h_t h; }
struct metadata { bit<16> m0; }
parser GenParser {
  state start { extract(hdr.h); transition accept; }
}
control Ing {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  action set_m0(bit<16> p) { meta.m0 = p; }
  table steer {
    key = { hdr.h.f0 : exact; }
    actions = { fwd; noop; }
    default_action = noop;
    size = 64;
  }
  table classify {
    key = { hdr.h.f1 : exact; }
    actions = { set_m0; noop; }
    default_action = noop;
    size = 64;
  }
  apply {
    sm.egress_spec = 1;
    steer.apply();
    classify.apply();
  }
}
deparser GenDeparser { emit(hdr.h); }
pipeline(GenParser, Ing, GenDeparser);
)";

runtime::Update steerInsert(uint64_t key, uint64_t port) {
  runtime::TableEntry e;
  e.matches.push_back(runtime::FieldMatch::exact(BitVec(16, key)));
  e.actionName = "fwd";
  e.actionArgs.push_back(BitVec(9, port));
  return runtime::Update::insert("Ing.steer", std::move(e));
}

IfcPolicy tinyPolicy(const std::string& declassifyTable = "") {
  IfcPolicy p;
  p.labels["secret"] = {"hdr.h.f0"};
  SinkPolicy sink;
  sink.field = "sm.egress_spec";
  p.sinks.push_back(sink);
  if (!declassifyTable.empty()) {
    p.declassify.push_back({declassifyTable, "secret"});
  }
  return p;
}

FlowStatus onlyStatus(const IfcReport& report) {
  EXPECT_EQ(report.flows.size(), 1u);
  return report.flows.at(0).status;
}

// ---------------------------------------------------------------------------
// Policy frontend
// ---------------------------------------------------------------------------

TEST(IfcPolicy, ParseRenderFixpoint) {
  const char* text =
      "# comment\n"
      "label secret hdr.h.f0\n"
      "label secret hdr.h.f1\n"
      "label public hdr.h.f2\n"
      "sink sm.egress_spec allow public\n"
      "sink meta.m0 allow *\n"
      "sink hdr.h.f3 allow none\n"
      "declassify Ing.steer secret\n";
  IfcPolicy p = IfcPolicy::parse(text);
  EXPECT_EQ(p.labels.size(), 2u);
  EXPECT_EQ(p.sinks.size(), 3u);
  EXPECT_EQ(p.declassify.size(), 1u);
  EXPECT_EQ(p.labelsOf("hdr.h.f0"), std::set<std::string>{"secret"});
  EXPECT_TRUE(p.labelsOf("hdr.h.f3").empty());
  EXPECT_EQ(p.declassifiersFor("secret"),
            std::vector<std::string>{"Ing.steer"});
  EXPECT_TRUE(p.declassifiersFor("public").empty());
  std::string rendered = p.render();
  EXPECT_EQ(IfcPolicy::parse(rendered).render(), rendered);
}

TEST(IfcPolicy, ParseErrors) {
  EXPECT_THROW(IfcPolicy::parse("label secret\n"), std::invalid_argument);
  EXPECT_THROW(IfcPolicy::parse("sink a allow x\nsink a allow y\n"),
               std::invalid_argument);
  EXPECT_THROW(IfcPolicy::parse("sink a allow\n"), std::invalid_argument);
  EXPECT_THROW(IfcPolicy::parse("frobnicate a b\n"), std::invalid_argument);
  // A policy with no sinks checks nothing — rejected outright.
  EXPECT_THROW(IfcPolicy::parse("label secret hdr.h.f0\n"),
               std::invalid_argument);
}

TEST(IfcPolicy, ValidateRejectsUnknownNames) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  auto expectInvalid = [&](const std::string& text) {
    IfcPolicy p = IfcPolicy::parse(text);
    EXPECT_THROW(p.validate(checked), std::invalid_argument) << text;
  };
  expectInvalid("label s hdr.h.f9\nsink sm.egress_spec allow none\n");
  expectInvalid("label s hdr.h.f0\nsink hdr.nope allow none\n");
  expectInvalid(
      "label s hdr.h.f0\nsink sm.egress_spec allow none\n"
      "declassify Ing.missing s\n");
  // Declassifying a label with no source fields is meaningless.
  expectInvalid(
      "label s hdr.h.f0\nsink sm.egress_spec allow none\n"
      "declassify Ing.steer t\n");
  IfcPolicy ok = IfcPolicy::parse(
      "label s hdr.h.f0\nsink sm.egress_spec allow none\n"
      "declassify Ing.steer s\n");
  EXPECT_NO_THROW(ok.validate(checked));
}

// ---------------------------------------------------------------------------
// Verdicts on the tiny program
// ---------------------------------------------------------------------------

TEST(IfcEngine, EmptyConfigIsSecure) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  IfcEngine engine(service, tinyPolicy());
  IfcReport report = engine.recheck();
  EXPECT_EQ(onlyStatus(report), FlowStatus::kSecure);
  // With `steer` empty, the egress is the constant 1: the taint pre-filter
  // alone settles the flow, no probe needed.
  EXPECT_TRUE(report.flows.at(0).sources.empty());
  EXPECT_EQ(report.violations(), 0u);
}

TEST(IfcEngine, InstalledEntryLeaks) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  IfcEngine engine(service, tinyPolicy());
  EXPECT_EQ(onlyStatus(engine.recheck()), FlowStatus::kSecure);
  // An entry keyed on the secret field steers the port: packets differing
  // only in f0 now observably differ at the sink.
  service.applyUpdate(steerInsert(5, 7));
  IfcReport report = engine.recheck();
  EXPECT_EQ(onlyStatus(report), FlowStatus::kLeak);
  EXPECT_EQ(report.flows.at(0).sources,
            std::vector<std::string>{"hdr.h.f0"});
  EXPECT_EQ(report.violations(), 1u);
  // Removing the entry restores noninterference.
  uint64_t id = service.config().table("Ing.steer").entries().back().id;
  service.applyUpdate(runtime::Update::remove("Ing.steer", id));
  EXPECT_EQ(onlyStatus(engine.recheck()), FlowStatus::kSecure);
}

TEST(IfcEngine, DeclassifiedTableReleasesItsInstalledOutcome) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  service.applyUpdate(steerInsert(5, 7));
  // Same leaking config as above, but the policy declassifies `steer`:
  // compared runs must agree on the installed entry's match outcome, and
  // under that agreement the egress value is fixed — secure.
  IfcEngine engine(service, tinyPolicy("Ing.steer"));
  IfcReport report = engine.recheck();
  EXPECT_EQ(onlyStatus(report), FlowStatus::kSecure);
  EXPECT_EQ(report.flows.at(0).declassifiers,
            std::vector<std::string>{"Ing.steer"});
}

TEST(IfcEngine, EmptyDeclassifiedTableReleasesNothing) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  service.applyUpdate(steerInsert(5, 7));
  // Declassifying the *other* (empty) table must not sanction the leak
  // through `steer`: an empty table's match outcome is constant, so its
  // release constraint collapses to `true` and downgrades nothing.
  IfcEngine engine(service, tinyPolicy("Ing.classify"));
  EXPECT_EQ(onlyStatus(engine.recheck()), FlowStatus::kLeak);
}

TEST(IfcEngine, AllowedLabelProducesNoFlow) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  IfcPolicy p = tinyPolicy();
  p.sinks.at(0).allowed.insert("secret");
  IfcEngine engine(service, p);
  service.applyUpdate(steerInsert(5, 7));
  IfcReport report = engine.recheck();
  EXPECT_TRUE(report.flows.empty());
  EXPECT_EQ(report.violations(), 0u);
}

TEST(IfcEngine, AttachedEngineRechecksOnEveryUpdate) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  auto engine = std::make_shared<IfcEngine>(service, tinyPolicy());
  service.attachAnalysis(engine);
  engine->recheck();
  EXPECT_EQ(onlyStatus(engine->lastReport()), FlowStatus::kSecure);
  service.applyUpdate(steerInsert(5, 7));
  // No explicit recheck: the analysis notification already re-verdicted.
  EXPECT_EQ(onlyStatus(engine->lastReport()), FlowStatus::kLeak);
}

// ---------------------------------------------------------------------------
// Warm-session / memo regression (scope invalidation)
// ---------------------------------------------------------------------------

// IFC rechecks invalidate "ifc.<sink>" scopes on the service's shared check
// engine. That must retire only IFC entries: constant-verdict memos and
// warm probe sessions serving other scopes keep answering identically
// before, during, and after the invalidation.
TEST(IfcEngine, ScopeInvalidationDoesNotPoisonForeignVerdicts) {
  auto checked = p4::loadProgramFromString(kTinyProgram);
  core::FlayService service(checked);
  core::CheckEngine& ce = service.checkEngine();
  expr::ExprArena& arena = service.arena();

  // A non-trivial tautology over a data-plane symbol, memoized under a
  // specializer-style scope by a warm probe.
  expr::ExprRef f0 =
      arena.var("hdr.h.f0", 16, expr::SymbolClass::kDataPlane);
  expr::ExprRef three = arena.bvConst(BitVec(16, 3));
  expr::ExprRef tautology =
      arena.bOr(arena.eq(f0, three), arena.neq(f0, three));
  ASSERT_EQ(ce.boolVerdict(tautology, "spec.point"), core::TriVerdict::kTrue);

  auto engine = std::make_shared<IfcEngine>(service, tinyPolicy());
  service.attachAnalysis(engine);
  engine->recheck();

  // The update flips the IFC query for sm.egress_spec, forcing an
  // "ifc.sm.egress_spec" scope invalidation inside the attached recheck.
  service.applyUpdate(steerInsert(5, 7));
  EXPECT_EQ(onlyStatus(engine->lastReport()), FlowStatus::kLeak);

  EXPECT_EQ(ce.boolVerdict(tautology, "spec.point"), core::TriVerdict::kTrue);
  // An explicit IFC-scope invalidation on the warm engine: foreign memos
  // still answer, and the next IFC verdicts still match a fresh engine.
  ce.invalidateScope("ifc.sm.egress_spec");
  core::CheckOutcome outcome;
  EXPECT_EQ(ce.boolVerdict(tautology, "spec.point", &outcome),
            core::TriVerdict::kTrue);
  EXPECT_EQ(engine->recheck().render(),
            engine->recheckFromScratch().render());
  EXPECT_EQ(ce.boolVerdict(tautology, "spec.point"), core::TriVerdict::kTrue);
}

// ---------------------------------------------------------------------------
// Property harness: randomized programs, policies, and update streams
// ---------------------------------------------------------------------------

// PR-5-style generator (see test_incremental_compile.cpp), extended with
// port-steering and drop actions so the IFC observation (delivered, value)
// genuinely varies: tables match on header fields or earlier metadata and
// may set metadata, steer the egress port, or drop the packet.
std::string randomProgram(std::mt19937& rng, size_t numTables) {
  static const char* kKinds[] = {"exact", "ternary", "lpm"};
  std::ostringstream out;
  out << "header h_t { bit<16> f0; bit<16> f1; bit<16> f2; bit<16> f3; }\n"
      << "struct headers { h_t h; }\n"
      << "struct metadata {";
  for (size_t i = 0; i < numTables; ++i) out << " bit<16> m" << i << ";";
  out << " }\n"
      << "parser GenParser {\n"
      << "  state start { extract(hdr.h); transition accept; }\n"
      << "}\n"
      << "control Ing {\n";
  for (size_t i = 0; i < numTables; ++i) {
    bool steers = rng() % 2 == 0;
    bool drops = rng() % 4 == 0;
    out << "  action set_m" << i << "(bit<16> p) { meta.m" << i
        << " = p; }\n";
    if (steers) {
      out << "  action steer" << i << "(bit<9> p) { sm.egress_spec = p; }\n";
    }
    if (drops) {
      out << "  action drop" << i << "() { mark_to_drop(); }\n";
    }
    out << "  table t" << i << " {\n    key = {";
    size_t numKeys = 1 + rng() % 2;
    for (size_t k = 0; k < numKeys; ++k) {
      if (i > 0 && rng() % 3 == 0) {
        out << " meta.m" << rng() % i << " : exact;";
      } else {
        out << " hdr.h.f" << rng() % 4 << " : " << kKinds[rng() % 3] << ";";
      }
    }
    out << " }\n    actions = { set_m" << i << ";";
    if (steers) out << " steer" << i << ";";
    if (drops) out << " drop" << i << ";";
    out << " noop; }\n    default_action = noop;\n    size = 256;\n  }\n";
  }
  out << "  apply {\n    sm.egress_spec = 1;\n";
  for (size_t i = 0; i < numTables; ++i) out << "    t" << i << ".apply();\n";
  out << "  }\n}\n"
      << "deparser GenDeparser { emit(hdr.h); }\n"
      << "pipeline(GenParser, Ing, GenDeparser);\n";
  return out.str();
}

/// 1-2 labels over the four header fields, 1-3 deny-carrying sinks drawn
/// from the egress port, metadata, and raw header fields.
IfcPolicy randomPolicy(std::mt19937& rng, size_t numTables,
                       bool withDeclassify) {
  IfcPolicy p;
  static const char* kLabels[] = {"alpha", "beta"};
  size_t numLabels = 1 + rng() % 2;
  for (size_t l = 0; l < numLabels; ++l) {
    size_t numFields = 1 + rng() % 2;
    for (size_t f = 0; f < numFields; ++f) {
      p.labels[kLabels[l]].insert("hdr.h.f" + std::to_string(rng() % 4));
    }
  }
  SinkPolicy egress;
  egress.field = "sm.egress_spec";
  p.sinks.push_back(egress);
  if (rng() % 2 == 0) {
    SinkPolicy meta;
    meta.field = "meta.m" + std::to_string(rng() % numTables);
    // Sometimes allow the first label, leaving only the second in question.
    if (numLabels == 2 && rng() % 2 == 0) meta.allowed.insert(kLabels[0]);
    p.sinks.push_back(meta);
  }
  if (rng() % 3 == 0) {
    SinkPolicy hdr;
    hdr.field = "hdr.h.f" + std::to_string(rng() % 4);
    p.sinks.push_back(hdr);
  }
  if (withDeclassify && rng() % 2 == 0) {
    p.declassify.push_back(
        {"Ing.t" + std::to_string(rng() % numTables),
         kLabels[rng() % numLabels]});
  }
  return p;
}

/// Per-shard generator vitality: every shard must have applied real
/// updates and seen at least one LEAK verdict, or the random cases have
/// collapsed into checking nothing.
struct ShardStats {
  size_t applied = 0;
  size_t leaks = 0;
  size_t secureChecked = 0;

  void expectAlive() const {
    EXPECT_GT(applied, 0u) << "no fuzzed update ever applied";
    EXPECT_GT(leaks, 0u) << "no random case ever produced a LEAK";
  }
};

void countLeaks(const IfcReport& report, ShardStats* stats) {
  for (const auto& flow : report.flows) {
    if (flow.status == FlowStatus::kLeak) ++stats->leaks;
  }
}

/// Property (a): after every applied update the attached engine's
/// incremental report is byte-identical to a from-scratch engine's.
void runIncrementalCase(uint32_t seed, size_t updates, ShardStats* stats) {
  std::mt19937 rng(seed * 2654435761u + 1);
  size_t numTables = 2 + rng() % 4;
  auto checked = p4::loadProgramFromString(randomProgram(rng, numTables));
  core::FlayService service(checked);
  auto engine = std::make_shared<IfcEngine>(
      service, randomPolicy(rng, numTables, /*withDeclassify=*/true));
  service.attachAnalysis(engine);
  engine->recheck();
  ASSERT_EQ(engine->lastReport().render(),
            engine->recheckFromScratch().render());
  for (const auto& u : net::fuzzUpdateSequence(checked, updates, seed)) {
    try {
      service.applyUpdate(u);
    } catch (const std::invalid_argument&) {
      continue;  // fuzzed duplicate — state unchanged
    }
    ++stats->applied;
    IfcReport scratch = engine->recheckFromScratch();
    ASSERT_EQ(engine->lastReport().render(), scratch.render())
        << "incremental and from-scratch IFC verdicts diverged";
  }
  countLeaks(engine->lastReport(), stats);
}

TEST(IfcProperty, IncrementalMatchesScratchShard1) {
  ShardStats stats;
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runIncrementalCase(seed, 10, &stats);
  }
  stats.expectAlive();
}

TEST(IfcProperty, IncrementalMatchesScratchShard2) {
  ShardStats stats;
  for (uint32_t seed = 31; seed <= 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runIncrementalCase(seed, 10, &stats);
  }
  stats.expectAlive();
}

TEST(IfcProperty, IncrementalMatchesScratchShard3) {
  ShardStats stats;
  for (uint32_t seed = 61; seed <= 90; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runIncrementalCase(seed, 10, &stats);
  }
  stats.expectAlive();
}

/// Concrete observation at a sink: delivered means the parser accepted and
/// the packet was not marked for drop — exactly the engine's O.
struct ConcreteObs {
  bool delivered = false;
  BitVec value;
};

ConcreteObs observe(const p4::CheckedProgram& checked,
                    const runtime::DeviceConfig& config,
                    const sim::Packet& packet, const std::string& sink) {
  sim::DataPlaneState state(checked);
  sim::Interpreter interp(checked, config, state);
  sim::ExecResult r = interp.process(packet);
  ConcreteObs obs;
  obs.delivered = r.parserAccepted && !r.dropped;
  if (obs.delivered) obs.value = r.field(sink);
  return obs;
}

/// Property (b), soundness: a flow the engine proved kSecure never
/// observably leaks on concrete packets. Packet pairs agree everywhere
/// except the flow's labeled source fields; for a secure flow the
/// (delivered, value) observation at the sink must be identical.
/// Declassification-free policies keep the oracle exact.
void runSoundnessCase(uint32_t seed, size_t updates, size_t pairs,
                      ShardStats* stats) {
  std::mt19937 rng(seed * 0x9e3779b9u + 7);
  size_t numTables = 2 + rng() % 4;
  auto checked = p4::loadProgramFromString(randomProgram(rng, numTables));
  core::FlayService service(checked);
  IfcPolicy policy = randomPolicy(rng, numTables, /*withDeclassify=*/false);
  IfcEngine engine(service, policy);
  for (const auto& u : net::fuzzUpdateSequence(checked, updates, seed)) {
    try {
      service.applyUpdate(u);
      ++stats->applied;
    } catch (const std::invalid_argument&) {
    }
  }
  IfcReport report = engine.recheck();
  countLeaks(report, stats);

  for (const auto& flow : report.flows) {
    if (flow.status != FlowStatus::kSecure) continue;
    ++stats->secureChecked;
    const std::set<std::string>& labeled = policy.labels.at(flow.label);
    for (size_t t = 0; t < pairs; ++t) {
      // h_t is four 16-bit fields: fK lives at byte offset 2K.
      sim::Packet a;
      a.bytes.resize(8);
      for (auto& b : a.bytes) b = static_cast<uint8_t>(rng());
      a.ingressPort = rng() % 4;
      sim::Packet b = a;
      for (const std::string& field : labeled) {
        size_t k = field.back() - '0';
        b.bytes[2 * k] = static_cast<uint8_t>(rng());
        b.bytes[2 * k + 1] = static_cast<uint8_t>(rng());
      }
      ConcreteObs oa = observe(checked, service.config(), a, flow.sink);
      ConcreteObs ob = observe(checked, service.config(), b, flow.sink);
      ASSERT_EQ(oa.delivered, ob.delivered)
          << "SECURE flow " << flow.label << " -> " << flow.sink
          << " leaked through deliverability (seed " << seed << ")";
      if (oa.delivered) {
        ASSERT_EQ(oa.value.toHexString(), ob.value.toHexString())
            << "SECURE flow " << flow.label << " -> " << flow.sink
            << " leaked through the sink value (seed " << seed << ")";
      }
    }
  }
}

TEST(IfcProperty, SoundVsInterpreterShard1) {
  ShardStats stats;
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runSoundnessCase(seed, 12, 16, &stats);
  }
  stats.expectAlive();
  EXPECT_GT(stats.secureChecked, 0u) << "oracle never saw a SECURE flow";
}

TEST(IfcProperty, SoundVsInterpreterShard2) {
  ShardStats stats;
  for (uint32_t seed = 31; seed <= 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runSoundnessCase(seed, 12, 16, &stats);
  }
  stats.expectAlive();
  EXPECT_GT(stats.secureChecked, 0u) << "oracle never saw a SECURE flow";
}

/// Property (c), monotonicity: adding a declassification annotation can
/// only release flows, never create a new violation.
void runMonotonicCase(uint32_t seed) {
  std::mt19937 rng(seed * 747796405u + 13);
  size_t numTables = 2 + rng() % 4;
  auto checked = p4::loadProgramFromString(randomProgram(rng, numTables));
  core::FlayService service(checked);
  for (const auto& u : net::fuzzUpdateSequence(checked, 12, seed)) {
    try {
      service.applyUpdate(u);
    } catch (const std::invalid_argument&) {
    }
  }
  IfcPolicy base = randomPolicy(rng, numTables, /*withDeclassify=*/false);
  IfcPolicy more = base;
  std::vector<std::string> labels = base.labelNames();
  more.declassify.push_back(
      {"Ing.t" + std::to_string(rng() % numTables),
       labels[rng() % labels.size()]});

  IfcEngine baseEngine(service, base);
  IfcEngine moreEngine(service, more);
  IfcReport baseReport = baseEngine.recheck();
  IfcReport moreReport = moreEngine.recheck();
  ASSERT_EQ(baseReport.flows.size(), moreReport.flows.size());
  for (size_t i = 0; i < baseReport.flows.size(); ++i) {
    const FlowVerdict& b = baseReport.flows[i];
    const FlowVerdict& m = moreReport.flows[i];
    ASSERT_EQ(b.label, m.label);
    ASSERT_EQ(b.sink, m.sink);
    EXPECT_FALSE(m.isViolation() && !b.isViolation())
        << "declassification created a violation for " << m.label << " -> "
        << m.sink << " (seed " << seed << ")";
  }
  EXPECT_LE(moreReport.violations(), baseReport.violations());
}

TEST(IfcProperty, DeclassificationMonotonicShard1) {
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runMonotonicCase(seed);
  }
}

TEST(IfcProperty, DeclassificationMonotonicShard2) {
  for (uint32_t seed = 31; seed <= 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    runMonotonicCase(seed);
  }
}

// ---------------------------------------------------------------------------
// Golden corpus
// ---------------------------------------------------------------------------

std::string goldenPath(const std::string& name) {
  return std::string(FLAY_GOLDEN_DIR) + "/" + name + ".ifc.golden";
}

std::string policyPath(const std::string& name) {
  // programs/<x>.p4l lives next to programs/ifc/<name>.policy.
  std::string probe = net::programPath("x");
  std::string dir = probe.substr(0, probe.size() - std::string("/x.p4l").size());
  return dir + "/ifc/" + name + ".policy";
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct GoldenCase {
  const char* program;
  const char* policy;  // "strict" or "open"
};

class IfcGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

// The rendered verdict trajectory of each bundled program under each
// hand-written policy is pinned: a specializer/encoder/engine change that
// alters any IFC verdict shows up as a readable text diff.
TEST_P(IfcGoldenTest, VerdictTrajectoryMatchesGolden) {
  const GoldenCase& gc = GetParam();
  const std::string name = std::string(gc.program) + "." + gc.policy;
  auto checked = p4::loadProgramFromFile(net::programPath(gc.program));
  IfcPolicy policy = IfcPolicy::parseFile(
      policyPath(std::string(gc.program) + "-" + gc.policy));

  core::FlayService service(checked);
  auto engine = std::make_shared<IfcEngine>(service, policy);
  service.attachAnalysis(engine);

  std::ostringstream out;
  out << "# " << name << " — policy:\n" << policy.render();
  out << "initial\n" << engine->recheck().render();
  size_t applied = 0, rejected = 0;
  for (const auto& u : net::fuzzUpdateSequence(checked, 24, 7)) {
    try {
      service.applyUpdate(u);
    } catch (const std::invalid_argument&) {
      ++rejected;
      continue;
    }
    ++applied;
    if (applied % 8 == 0) {
      out << "after " << applied << " update(s)\n"
          << engine->lastReport().render();
    }
  }
  out << "final (" << applied << " applied, " << rejected << " rejected)\n"
      << engine->lastReport().render();
  // The trajectory must also agree with a from-scratch pass at the end.
  ASSERT_EQ(engine->lastReport().render(),
            engine->recheckFromScratch().render());
  std::string rendered = out.str();

  if (std::getenv("FLAY_UPDATE_GOLDEN") != nullptr) {
    std::ofstream gout(goldenPath(name), std::ios::binary);
    ASSERT_TRUE(gout) << "cannot write " << goldenPath(name);
    gout << rendered;
    GTEST_SKIP() << "regenerated " << goldenPath(name);
  }
  std::string expected = readFileOrEmpty(goldenPath(name));
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << goldenPath(name)
      << " — regenerate with FLAY_UPDATE_GOLDEN=1";
  EXPECT_EQ(rendered, expected)
      << "IFC verdict trajectory of '" << name
      << "' drifted; if intentional, regenerate with FLAY_UPDATE_GOLDEN=1";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, IfcGoldenTest,
    ::testing::Values(GoldenCase{"scion", "strict"},
                      GoldenCase{"scion", "open"},
                      GoldenCase{"switch", "strict"},
                      GoldenCase{"switch", "open"},
                      GoldenCase{"middleblock", "strict"},
                      GoldenCase{"middleblock", "open"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.program) + "_" + info.param.policy;
    });

}  // namespace
}  // namespace flay::ifc
