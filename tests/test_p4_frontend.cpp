#include <gtest/gtest.h>

#include "p4/parser.h"
#include "p4/typecheck.h"

namespace flay::p4 {
namespace {

constexpr const char* kBasicProgram = R"(
// A small L2/L3 pipeline exercising most of P4-lite.
header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
header ipv4_t {
  bit<4> version; bit<4> ihl; bit<8> tos; bit<16> len;
  bit<16> id; bit<3> flags; bit<13> frag;
  bit<8> ttl; bit<8> proto; bit<16> csum;
  bit<32> src; bit<32> dst;
}
struct headers { eth_t eth; ipv4_t ipv4; }
struct metadata { bit<16> hash; bool seen; }

const bit<16> TYPE_IPV4 = 0x800;

parser MyParser {
  value_set<bit<16>>(4) tpids;
  state start {
    extract(hdr.eth);
    transition select(hdr.eth.type) {
      TYPE_IPV4: parse_ipv4;
      0x86DD &&& 0xFFFF: accept;
      tpids: accept;
      default: accept;
    }
  }
  state parse_ipv4 {
    extract(hdr.ipv4);
    transition accept;
  }
}

control Ingress {
  register<bit<32>>(1024) flow_bytes;
  counter(256) port_pkts;
  meter(64) rate_m;
  action set_port(bit<9> port) { sm.egress_spec = port; }
  action drop_pkt() { mark_to_drop(); }
  action rewrite(bit<48> mac, bit<9> port) {
    hdr.eth.src = mac;
    sm.egress_spec = port;
  }
  table smac {
    key = { hdr.eth.src : exact; }
    actions = { noop; drop_pkt; }
    default_action = noop;
    size = 512;
  }
  table fwd {
    key = { hdr.ipv4.dst : lpm; }
    actions = { set_port; rewrite; drop_pkt; noop; }
    default_action = drop_pkt;
    size = 2048;
  }
  table acl {
    key = { hdr.ipv4.src : ternary; hdr.ipv4.dst : ternary; hdr.ipv4.proto : ternary; }
    actions = { drop_pkt; noop; }
    default_action = noop;
  }
  apply {
    smac.apply();
    if (hdr.ipv4.isValid()) {
      bit<32> tmp = 0;
      flow_bytes.read(tmp, (bit<32>) hdr.ipv4.src);
      tmp = tmp + (bit<32>) hdr.ipv4.len;
      flow_bytes.write((bit<32>) hdr.ipv4.src, tmp);
      fwd.apply();
      acl.apply();
      if (hdr.ipv4.ttl == 0) {
        mark_to_drop();
      } else {
        hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
      }
      bit<2> color = 0;
      rate_m.execute(color, (bit<32>) hdr.ipv4.proto);
      if (color == 2) { mark_to_drop(); }
    }
    port_pkts.count((bit<32>) sm.ingress_port);
  }
}

deparser MyDeparser {
  emit(hdr.eth);
  emit(hdr.ipv4);
}

pipeline(MyParser, Ingress, MyDeparser);
)";

TEST(P4Frontend, ParsesAndChecksBasicProgram) {
  CheckedProgram cp = loadProgramFromString(kBasicProgram);
  const Program& prog = cp.program;
  EXPECT_EQ(prog.headerTypes.size(), 2u);
  EXPECT_EQ(prog.structTypes.size(), 2u);
  EXPECT_EQ(prog.parsers.size(), 1u);
  EXPECT_EQ(prog.controls.size(), 1u);
  EXPECT_EQ(prog.deparsers.size(), 1u);
  EXPECT_EQ(prog.pipeline.parserName, "MyParser");
  EXPECT_EQ(prog.pipeline.controlNames,
            std::vector<std::string>{"Ingress"});

  const ControlDecl& ing = prog.controls[0];
  EXPECT_EQ(ing.actions.size(), 3u);
  EXPECT_EQ(ing.tables.size(), 3u);
  EXPECT_EQ(ing.registers.size(), 1u);
  EXPECT_EQ(ing.counters.size(), 1u);
  EXPECT_EQ(ing.meters.size(), 1u);
  EXPECT_GT(prog.statementCount(), 20u);
}

TEST(P4Frontend, TypeEnvFlattensFields) {
  CheckedProgram cp = loadProgramFromString(kBasicProgram);
  const TypeEnv& env = cp.env;

  const FieldInfo* dst = env.findField("hdr.eth.dst");
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(dst->width, 48u);

  const FieldInfo* valid = env.findField("hdr.ipv4.$valid");
  ASSERT_NE(valid, nullptr);
  EXPECT_TRUE(valid->isValidity);
  EXPECT_TRUE(valid->isBool);

  const FieldInfo* metaHash = env.findField("meta.hash");
  ASSERT_NE(metaHash, nullptr);
  EXPECT_EQ(metaHash->width, 16u);
  const FieldInfo* metaSeen = env.findField("meta.seen");
  ASSERT_NE(metaSeen, nullptr);
  EXPECT_FALSE(metaSeen->isBool) << "struct bool fields are width-1 vectors";

  const FieldInfo* egress = env.findField("sm.egress_spec");
  ASSERT_NE(egress, nullptr);
  EXPECT_EQ(egress->width, kPortWidth);

  const HeaderInstance* ipv4 = env.findHeader("hdr.ipv4");
  ASSERT_NE(ipv4, nullptr);
  EXPECT_EQ(ipv4->typeName, "ipv4_t");
  EXPECT_EQ(ipv4->fieldCanonicals.size(), 12u);

  EXPECT_EQ(env.consts().at("TYPE_IPV4").toUint64(), 0x800u);
}

TEST(P4Frontend, LiteralWidthInference) {
  CheckedProgram cp = loadProgramFromString(kBasicProgram);
  // Select-case constant got the select expression's width.
  const ParserDecl& parser = cp.program.parsers[0];
  const ParserStateDecl* start = parser.findState("start");
  ASSERT_NE(start, nullptr);
  const Stmt& transition = *start->body.back();
  ASSERT_EQ(transition.op, StmtOp::kTransition);
  const SelectCase& c0 = transition.transition.cases[0];
  EXPECT_EQ(c0.value->value.width(), 16u);
  EXPECT_EQ(c0.value->value.toUint64(), 0x800u);
  const SelectCase& vsCase = transition.transition.cases[2];
  EXPECT_EQ(vsCase.kind, SelectCase::Kind::kValueSet);
  EXPECT_EQ(vsCase.valueSet, "tpids");
}

TEST(P4Frontend, ExplicitWidthLiterals) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  apply {
    bit<16> x = 16w0xABCD;
    bit<9> y = 9w256;
    x = x + 1;
  }
}
deparser D { }
pipeline(P, C, D);
)");
  EXPECT_EQ(cp.program.controls[0].applyBody.size(), 3u);
}

TEST(P4Frontend, RejectsLiteralOverflow) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { hdr.h.f = 256; } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsUnknownField) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { hdr.h.nope = 1; } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsWidthMismatch) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; bit<16> g; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { hdr.h.f = hdr.h.g; } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsUnknownTableAction) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  table t { key = { hdr.h.f : exact; } actions = { ghost; } }
  apply { t.apply(); }
}
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsDefaultActionNotInList) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  action a() { }
  action b() { }
  table t { key = { hdr.h.f : exact; } actions = { a; } default_action = b; }
  apply { t.apply(); }
}
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsMissingStartState) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state other { transition accept; } }
control C { apply { } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsMissingTransition) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { extract(hdr.h); } }
control C { apply { } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsBadPipelineReference) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { } }
deparser D { }
pipeline(P, Ghost, D);
)"),
               CompileError);
}

TEST(P4Frontend, RejectsNonConstantShift) {
  EXPECT_THROW(loadProgramFromString(R"(
header h_t { bit<8> f; bit<8> g; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { hdr.h.f = hdr.h.f << hdr.h.g; } }
deparser D { }
pipeline(P, C, D);
)"),
               CompileError);
}

TEST(P4Frontend, SlicesAndConcat) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<16> f; bit<8> g; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  apply {
    hdr.h.g = hdr.h.f[15:8];
    hdr.h.f = hdr.h.g ++ hdr.h.g;
    hdr.h.f[7:0] = 0xFF;
  }
}
deparser D { }
pipeline(P, C, D);
)");
  const auto& body = cp.program.controls[0].applyBody;
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(body[0]->rhs->width, 8u);
  EXPECT_EQ(body[1]->rhs->width, 16u);
  EXPECT_EQ(body[2]->lhs->op, ExprOp::kSlice);
}

TEST(P4Frontend, TernaryAndComparisons) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<8> f; bit<8> g; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  apply {
    hdr.h.f = hdr.h.g > 10 ? 8w1 : 8w2;
    bool both = hdr.h.f == 1 && hdr.h.g != 2;
    if (both || hdr.h.f <= hdr.h.g) { hdr.h.f = 0; }
  }
}
deparser D { }
pipeline(P, C, D);
)");
  EXPECT_EQ(cp.program.controls[0].applyBody.size(), 3u);
}

TEST(P4Frontend, ParserRecoversAndReportsMultipleErrors) {
  DiagnosticEngine diag;
  parseString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
bogus toplevel;
parser P { state start { transition accept; } }
another bogus;
)",
              diag);
  int errors = 0;
  for (const auto& d : diag.diagnostics()) {
    errors += d.severity == Severity::kError ? 1 : 0;
  }
  EXPECT_GE(errors, 2);
}

TEST(P4Frontend, CommentsAreSkipped) {
  CheckedProgram cp = loadProgramFromString(R"(
// line comment
/* block
   comment */
header h_t { bit<8> f; /* inline */ }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C { apply { } }
deparser D { }
pipeline(P, C, D); // trailing
)");
  EXPECT_EQ(cp.program.headerTypes[0].fields.size(), 1u);
}

TEST(P4Frontend, ActionProfileParsed) {
  CheckedProgram cp = loadProgramFromString(R"(
header h_t { bit<8> f; }
struct headers { h_t h; }
parser P { state start { transition accept; } }
control C {
  action_profile(16) prof;
  action set(bit<8> v) { hdr.h.f = v; }
  table t {
    key = { hdr.h.f : exact; }
    actions = { set; noop; }
    implementation = prof;
  }
  apply { t.apply(); }
}
deparser D { }
pipeline(P, C, D);
)");
  EXPECT_EQ(cp.program.controls[0].tables[0].actionProfile, "prof");
  EXPECT_EQ(cp.program.controls[0].actionProfiles[0].size, 16u);
}

TEST(P4Frontend, HeaderTotalWidth) {
  CheckedProgram cp = loadProgramFromString(kBasicProgram);
  const HeaderTypeDecl* ipv4 = cp.program.findHeaderType("ipv4_t");
  ASSERT_NE(ipv4, nullptr);
  EXPECT_EQ(ipv4->totalWidth(), 160u);
}

}  // namespace
}  // namespace flay::p4
