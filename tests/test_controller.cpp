#include "controller/controller.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "controller/device.h"
#include "controller/fault_plan.h"
#include "net/fuzzer.h"
#include "net/workloads.h"
#include "obs/obs.h"
#include "oracle/oracle.h"
#include "p4/typecheck.h"
#include "sat/solver.h"
#include "smt/solver.h"

namespace flay::controller {
namespace {

namespace fs = std::filesystem;

p4::CheckedProgram load(const char* name) {
  return p4::loadProgramFromFile(net::programPath(name));
}

/// Fresh state directory per test; removed on scope exit.
class StateDir {
 public:
  explicit StateDir(const char* tag) {
    path_ = fs::temp_directory_path() /
            (std::string("flay-test-") + tag + "-" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~StateDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// Fuzzed scripts are generated against the *initial* config, so a replayed
/// update can become inapplicable (duplicate id, deleted target). The
/// controller surfaces that as std::invalid_argument after rolling back;
/// every driver in this file skips those exactly like flayc crashtest does.
size_t applyScript(FaultTolerantController& c,
                   const std::vector<runtime::Update>& script, size_t count) {
  size_t applied = 0;
  for (size_t i = 0; i < count && i < script.size(); ++i) {
    try {
      c.apply(script[i]);
      ++applied;
    } catch (const std::invalid_argument&) {
    }
  }
  return applied;
}

uint64_t counterValue(const char* name) {
  return obs::Registry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Update wire format: the journal's round-trip law.
// ---------------------------------------------------------------------------

// Property test over fuzzed scripts: fromString(p, u.toString()) reproduces
// the exact rendering for every update kind the fuzzer emits, across
// programs and seeds. This is the law crash recovery replays depend on.
TEST(UpdateWireFormat, FuzzedRoundTripAcrossProgramsAndSeeds) {
  for (const char* name : {"middleblock", "switch", "scion", "dash"}) {
    p4::CheckedProgram checked = load(name);
    for (uint64_t seed : {1u, 2u, 3u}) {
      auto script = net::fuzzUpdateSequence(checked, 60, seed);
      ASSERT_FALSE(script.empty()) << name;
      for (const auto& u : script) {
        std::string wire = u.toString();
        runtime::Update parsed = runtime::Update::fromString(checked, wire);
        EXPECT_EQ(parsed.toString(), wire) << name << " seed " << seed;
      }
    }
  }
}

TEST(UpdateWireFormat, MalformedTextThrows) {
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 1, 1);
  ASSERT_FALSE(script.empty());
  std::string good = script[0].toString();

  EXPECT_THROW(runtime::Update::fromString(checked, ""),
               std::invalid_argument);
  EXPECT_THROW(runtime::Update::fromString(checked, "frobnicate x y"),
               std::invalid_argument);
  // Truncation mid-record (the torn-tail shape a crash can leave).
  EXPECT_THROW(
      runtime::Update::fromString(checked, good.substr(0, good.size() / 2)),
      std::invalid_argument);
  // Structurally fine, but the object does not exist in this program.
  EXPECT_THROW(
      runtime::Update::fromString(checked, "insert No.Such.Table [] -> x()"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Transactional batches.
// ---------------------------------------------------------------------------

// Regression for the PR 1 applyBatch fix: when the k-th update of a batch
// throws, the engine must leave the already-applied prefix fully analyzed
// (annotations in sync with the installed config), not half-updated.
TEST(TransactionalBatch, EngineMidBatchThrowKeepsPrefixAnalyzed) {
  p4::CheckedProgram checked = load("middleblock");
  flay::FlayService svc(checked);
  auto script = net::fuzzUpdateSequence(checked, 4, 11);
  ASSERT_GE(script.size(), 1u);

  runtime::Update poison =
      runtime::Update::insert("No.Such.Table", runtime::TableEntry{});
  EXPECT_THROW(svc.applyBatch({script[0], poison}), std::invalid_argument);

  // The prefix really landed...
  flay::FlayService reference(checked);
  reference.applyUpdate(script[0]);
  // ...and the incremental annotations match a from-scratch analysis of the
  // installed state (the property PR 1's fix restored).
  oracle::ConsistencyReport rep = oracle::checkIncrementalConsistency(svc);
  EXPECT_TRUE(rep.consistent) << rep.mismatchedPoints.size()
                              << " points out of sync after mid-batch throw";
}

// The controller layers the strong exception guarantee on top: a failed
// batch rolls back even the successfully applied prefix, the journal records
// the abort, and a post-crash recovery agrees with the rolled-back state.
TEST(TransactionalBatch, ControllerRollsBackFailedBatchAndAbortsJournal) {
  StateDir dir("rollback");
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 10, 3);
  ASSERT_GE(script.size(), 3u);

  ControllerOptions opts;
  opts.stateDir = dir.str();
  std::string before;
  uint64_t committed = 0;
  {
    FaultTolerantController ctrl(checked, nullptr, opts);
    applyScript(ctrl, script, 2);
    before = ctrl.stateDigest();
    committed = ctrl.committedUpdates();

    uint64_t rollbacksBefore = counterValue("controller.rollbacks");
    runtime::Update poison =
        runtime::Update::insert("No.Such.Table", runtime::TableEntry{});
    EXPECT_THROW(ctrl.applyBatch({script[2], poison}), std::invalid_argument);

    EXPECT_EQ(ctrl.stateDigest(), before) << "failed batch left state behind";
    EXPECT_EQ(ctrl.committedUpdates(), committed);
    EXPECT_EQ(counterValue("controller.rollbacks"), rollbacksBefore + 1);
  }
  // The aborted group must not replay — and the poison update's text inside
  // it (journaled ahead of validation) must not poison recovery either.
  FaultTolerantController recovered(checked, nullptr, opts);
  EXPECT_EQ(recovered.stateDigest(), before);
  EXPECT_EQ(recovered.replayedUpdates(), committed);
}

// ---------------------------------------------------------------------------
// Write-ahead journal + crash recovery.
// ---------------------------------------------------------------------------

// Kill-at-any-point: for every prefix length k, a controller recovered from
// the journal (checkpoints included) matches the uninterrupted run's digest
// exactly. This is the unit-sized version of `flayc crashtest`.
TEST(CrashRecovery, RecoversToExactDigestAtEveryKillPoint) {
  p4::CheckedProgram checked = load("middleblock");
  const size_t kUpdates = 12;
  auto script = net::fuzzUpdateSequence(checked, kUpdates, 5);

  // Reference digests from one uninterrupted run.
  std::vector<std::string> reference;
  {
    StateDir dir("crash-ref");
    ControllerOptions opts;
    opts.stateDir = dir.str();
    FaultTolerantController ctrl(checked, nullptr, opts);
    reference.push_back(ctrl.stateDigest());
    for (size_t i = 0; i < script.size(); ++i) {
      try {
        ctrl.apply(script[i]);
      } catch (const std::invalid_argument&) {
      }
      reference.push_back(ctrl.stateDigest());
    }
  }

  // Small checkpoint interval so kill points land before, on, and after
  // checkpoint boundaries.
  for (size_t k = 1; k <= script.size(); ++k) {
    StateDir dir("crash-kill");
    ControllerOptions opts;
    opts.stateDir = dir.str();
    opts.checkpointEvery = 4;
    {
      FaultTolerantController ctrl(checked, nullptr, opts);
      for (size_t i = 0; i < k; ++i) {
        try {
          ctrl.apply(script[i]);
        } catch (const std::invalid_argument&) {
        }
      }
      // Destructor without any shutdown flush = SIGKILL equivalent: every
      // record was fsync'd at commit time.
    }
    FaultTolerantController recovered(checked, nullptr, opts);
    EXPECT_EQ(recovered.stateDigest(), reference[k]) << "kill point " << k;
  }
}

// A torn tail (partial record from a crash mid-write) must not poison
// recovery: the committed prefix still replays.
TEST(CrashRecovery, TornJournalTailIsIgnored) {
  StateDir dir("torn");
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 6, 9);

  ControllerOptions opts;
  opts.stateDir = dir.str();
  std::string digest;
  {
    FaultTolerantController ctrl(checked, nullptr, opts);
    applyScript(ctrl, script, script.size());
    digest = ctrl.stateDigest();
  }
  {
    std::FILE* f =
        std::fopen((dir.str() + "/journal.jsonl").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"seq\":999999,\"type\":\"upd", f);  // no newline: torn
    std::fclose(f);
  }
  FaultTolerantController recovered(checked, nullptr, opts);
  EXPECT_EQ(recovered.stateDigest(), digest);
}

TEST(CrashRecovery, CheckpointBoundsReplayWork) {
  StateDir dir("ckpt");
  p4::CheckedProgram checked = load("middleblock");
  auto script = net::fuzzUpdateSequence(checked, 10, 7);

  ControllerOptions opts;
  opts.stateDir = dir.str();
  opts.checkpointEvery = 0;  // only explicit checkpoints
  std::string digest;
  size_t applied = 0;
  {
    FaultTolerantController ctrl(checked, nullptr, opts);
    applied = applyScript(ctrl, script, script.size());
    ctrl.checkpointNow();
    digest = ctrl.stateDigest();
  }
  FaultTolerantController recovered(checked, nullptr, opts);
  EXPECT_EQ(recovered.stateDigest(), digest);
  // Everything before the checkpoint came from the snapshot, not replay.
  EXPECT_EQ(recovered.replayedUpdates(), 0u) << "applied " << applied;
}

// ---------------------------------------------------------------------------
// Device retry/backoff + graceful degradation.
// ---------------------------------------------------------------------------

// Transient install failures are absorbed by bounded retry: the device ends
// up current and the retry counter proves the path fired.
TEST(DeviceFaults, TransientInstallFailuresAreRetried) {
  p4::CheckedProgram checked = load("middleblock");
  FaultPlan plan;
  plan.failFirstInstalls = 2;
  SimulatedDevice device(plan);

  uint64_t retriesBefore = counterValue("controller.retries");
  ControllerOptions opts;
  opts.maxInstallRetries = 4;
  FaultTolerantController ctrl(checked, &device, opts);

  EXPECT_FALSE(ctrl.degraded());
  EXPECT_EQ(device.injectedInstallFailures(), 2u);
  EXPECT_GE(device.installAttempts(), 3u);
  EXPECT_GE(counterValue("controller.retries"), retriesBefore + 2);
}

// A sustained outage exhausts the retry budget: the controller degrades
// (device pinned to the last good program), queues what it cannot forward,
// and recovers once the outage ends — all visible in the counters.
TEST(DeviceFaults, OutageDegradesThenRecovers) {
  p4::CheckedProgram checked = load("middleblock");
  FaultPlan plan;
  plan.outageStart = 2;  // initial install (attempt 1) succeeds
  plan.outageLength = 8;
  SimulatedDevice device(plan);

  ControllerOptions opts;
  opts.maxInstallRetries = 1;
  opts.tryRecoverEvery = 0;  // recovery only when the test asks
  FaultTolerantController ctrl(checked, &device, opts);
  ASSERT_FALSE(ctrl.degraded());

  uint64_t degradationsBefore = counterValue("controller.degradations");
  uint64_t recoveriesBefore =
      counterValue("controller.degradation_recoveries");

  auto script = net::fuzzUpdateSequence(checked, 40, 13);
  size_t i = 0;
  for (; i < script.size() && !ctrl.degraded(); ++i) {
    try {
      ctrl.apply(script[i]);
    } catch (const std::invalid_argument&) {
    }
  }
  ASSERT_TRUE(ctrl.degraded())
      << "script never forced a recompile during the outage";
  EXPECT_EQ(counterValue("controller.degradations"), degradationsBefore + 1);

  // While degraded, updates keep committing to the authoritative analysis;
  // non-forwardable ones queue for the pinned program.
  size_t before = ctrl.committedUpdates();
  for (; i < script.size(); ++i) {
    try {
      ctrl.apply(script[i]);
    } catch (const std::invalid_argument&) {
    }
  }
  EXPECT_GT(ctrl.committedUpdates(), before);

  // Burn through the outage window, then recovery must succeed and drain
  // the queue.
  bool healthy = false;
  for (int attempt = 0; attempt < 16 && !healthy; ++attempt) {
    healthy = ctrl.tryRecover();
  }
  EXPECT_TRUE(healthy);
  EXPECT_FALSE(ctrl.degraded());
  EXPECT_EQ(ctrl.queuedUpdates(), 0u);
  EXPECT_GE(counterValue("controller.degradation_recoveries"),
            recoveriesBefore + 1);
}

// The backoff schedule is exponential with jitter and capped; recorded even
// when sleepOnBackoff is off so tests never pay it in wall-clock.
TEST(DeviceFaults, BackoffScheduleIsRecordedWithoutSleeping) {
  p4::CheckedProgram checked = load("middleblock");
  FaultPlan plan;
  plan.failFirstInstalls = 3;
  SimulatedDevice device(plan);

  obs::Histogram& backoff =
      obs::Registry::global().histogram("controller.backoff_us");
  backoff.reset();  // other tests' controllers record here too

  ControllerOptions opts;
  opts.maxInstallRetries = 4;
  opts.backoffBaseMicros = 100;
  opts.backoffMaxMicros = 250;
  opts.sleepOnBackoff = false;
  FaultTolerantController ctrl(checked, &device, opts);

  EXPECT_FALSE(ctrl.degraded());
  EXPECT_GE(backoff.count(), 3u);
  // Cap + jitter bound: every recorded backoff is < max + base.
  EXPECT_LT(backoff.max(), 250u + 100u);
}

// ---------------------------------------------------------------------------
// Fail-safe solver deadlines.
// ---------------------------------------------------------------------------

/// Pigeonhole principle PHP(pigeons, holes): unsatisfiable for
/// pigeons > holes, and famously expensive for CDCL — guaranteed to burn
/// more than one conflict, which is all the budget tests need.
void addPigeonhole(sat::Solver& s, uint32_t pigeons, uint32_t holes) {
  std::vector<std::vector<uint32_t>> x(pigeons);
  for (uint32_t p = 0; p < pigeons; ++p) {
    for (uint32_t h = 0; h < holes; ++h) x[p].push_back(s.newVar());
  }
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> clause;
    for (uint32_t h = 0; h < holes; ++h) {
      clause.push_back(sat::Lit::make(x[p][h], false));
    }
    s.addClause(clause);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p1 = 0; p1 < pigeons; ++p1) {
      for (uint32_t p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.addClause({sat::Lit::make(x[p1][h], true),
                     sat::Lit::make(x[p2][h], true)});
      }
    }
  }
}

TEST(SolverDeadline, SatBudgetExhaustionReturnsUnknown) {
  sat::Solver s;
  addPigeonhole(s, 6, 5);
  s.setConflictBudget(1);
  EXPECT_EQ(s.solve(), sat::Result::kUnknown);
  EXPECT_EQ(s.numBudgetExhaustions(), 1u);

  // Lifting the deadline settles the instance (and learned clauses from the
  // budgeted attempt were kept, never discarded).
  s.setConflictBudget(0);
  EXPECT_EQ(s.solve(), sat::Result::kUnsat);
  EXPECT_EQ(s.numBudgetExhaustions(), 1u);
}

TEST(SolverDeadline, SmtBudgetedConstantValueReportsTimeout) {
  expr::ExprArena arena;
  // x*x + x == x*(x+1) is valid but structurally distinct (the arena's
  // hash-consing cannot fold it), and proving it after bit-blasting a
  // 12-bit multiplier needs real search; one conflict is never enough.
  expr::ExprRef x = arena.var("x", 12, expr::SymbolClass::kDataPlane);
  expr::ExprRef one = arena.bvConst(12, 1);
  expr::ExprRef lhs = arena.add(arena.mul(x, x), x);
  expr::ExprRef rhs = arena.mul(x, arena.add(x, one));
  expr::ExprRef identity = arena.eq(lhs, rhs);

  bool timedOut = false;
  auto c = smt::constantValueWithin(arena, identity, 1, &timedOut);
  EXPECT_TRUE(timedOut);
  EXPECT_FALSE(c.has_value()) << "deadline expiry must read as non-constant";
}

// The specializer's use of the deadline is fail-safe: a starved solver can
// only lose specializations, never produce a program that fails to recheck.
// (The conservative fallback on kUnknown keeps the general implementation.)
TEST(SolverDeadline, StarvedSpecializerStaysConservative) {
  p4::CheckedProgram checked = load("middleblock");

  flay::FlayService svc(checked);
  flay::SpecializerOptions starved;
  starved.solverConflictBudget = 1;
  flay::Specializer specializer(svc, starved);
  flay::SpecializationResult result = specializer.specialize();
  EXPECT_NO_THROW(flay::recheck(std::move(result.program)));

  flay::FlayService svc2(checked);
  flay::SpecializerOptions unlimited;
  unlimited.solverConflictBudget = 0;
  flay::Specializer full(svc2, unlimited);
  flay::SpecializationResult fullResult = full.specialize();
  // Degraded quality is allowed; extra changes are not.
  EXPECT_LE(result.stats.totalChanges(), fullResult.stats.totalChanges());
}

// ---------------------------------------------------------------------------
// Streaming bulk apply through the controller.
// ---------------------------------------------------------------------------

// Each chunk commits as one journal transaction, so a controller recovered
// after the stream lands on the exact same digest — and the bulk path's
// state matches a controller that applied the same stream sequentially.
TEST(BulkApply, JournalsPerChunkAndRecoversToSameDigest) {
  StateDir dir("bulk");
  p4::CheckedProgram checked = load("middleblock");
  auto stream = net::middleblockAclEntries(150);

  ControllerOptions opts;
  opts.stateDir = dir.str();
  std::string digest;
  uint64_t committed = 0;
  {
    FaultTolerantController ctrl(checked, nullptr, opts);
    flay::BulkLoadOptions bopts;
    bopts.chunkSize = 32;
    BulkApplyResult res = ctrl.applyBulk(stream, bopts);
    EXPECT_EQ(res.report.applied, stream.size());
    EXPECT_EQ(res.report.rejected, 0u);
    EXPECT_GT(res.report.bypassed, 0u);
    EXPECT_TRUE(res.deviceCurrent);
    EXPECT_FALSE(res.degraded);
    digest = ctrl.stateDigest();
    committed = ctrl.committedUpdates();
    EXPECT_EQ(committed, stream.size());
  }
  FaultTolerantController recovered(checked, nullptr, opts);
  EXPECT_EQ(recovered.stateDigest(), digest);
  // The end-of-stream checkpoint may absorb the whole journal; whatever is
  // left to replay can't exceed what was committed.
  EXPECT_LE(recovered.replayedUpdates(), committed);

  StateDir seqDir("bulk-seq");
  ControllerOptions seqOpts;
  seqOpts.stateDir = seqDir.str();
  FaultTolerantController seq(checked, nullptr, seqOpts);
  applyScript(seq, stream, stream.size());
  EXPECT_EQ(seq.stateDigest(), digest);
}

// ---------------------------------------------------------------------------
// Epoch events: the device-visibility contract the replay harness builds on.
// ---------------------------------------------------------------------------

// Every committed step fires exactly one event; committed is monotone and
// never behind deviceVisible; healthy steps leave no backlog; a sustained
// outage opens a committed-vs-deviceVisible gap that packets experience as
// staleness; the closing recovery event carries the full degraded episode.
TEST(EpochEvents, TrackCommittedVersusDeviceVisibleThroughAnOutage) {
  p4::CheckedProgram checked = load("middleblock");
  FaultPlan plan;
  plan.outageStart = 2;
  plan.outageLength = 30;
  SimulatedDevice device(plan);

  ControllerOptions opts;
  opts.maxInstallRetries = 1;
  opts.tryRecoverEvery = 0;
  FaultTolerantController ctrl(checked, &device, opts);
  ASSERT_FALSE(ctrl.degraded());

  std::vector<EpochEvent> events;
  ctrl.setEpochCallback([&](const EpochEvent& e) { events.push_back(e); });

  auto script = net::fuzzUpdateSequence(checked, 40, 13);
  applyScript(ctrl, script, script.size());
  ASSERT_TRUE(ctrl.degraded())
      << "script never forced a recompile during the outage";
  ASSERT_FALSE(events.empty());

  uint64_t lastCommitted = 0;
  bool sawGap = false;
  for (const EpochEvent& e : events) {
    EXPECT_GE(e.committed, lastCommitted);
    lastCommitted = e.committed;
    EXPECT_LE(e.deviceVisible, e.committed);
    if (!e.degraded) {
      // Healthy steps end device-current: no backlog survives the event.
      EXPECT_EQ(e.deviceVisible, e.committed);
    }
    sawGap |= e.degraded && e.deviceVisible < e.committed;
    EXPECT_FALSE(e.recovery);
  }
  EXPECT_TRUE(sawGap) << "degraded mode never exposed an update backlog";
  EXPECT_GT(ctrl.committedUpdates(), ctrl.deviceVisibleUpdates());

  // Burn through the outage; the recovery event closes the gap.
  size_t eventsBefore = events.size();
  bool healthy = false;
  for (int attempt = 0; attempt < 40 && !healthy; ++attempt) {
    healthy = ctrl.tryRecover();
  }
  ASSERT_TRUE(healthy);
  ASSERT_GT(events.size(), eventsBefore);
  const EpochEvent& rec = events.back();
  EXPECT_TRUE(rec.recovery);
  EXPECT_TRUE(rec.advanced);
  EXPECT_TRUE(rec.viaRecompile);
  EXPECT_FALSE(rec.degraded);
  EXPECT_EQ(rec.deviceVisible, rec.committed);
  EXPECT_EQ(ctrl.committedUpdates(), ctrl.deviceVisibleUpdates());
}

// Healthy churn: every advancing event reports the verdict-to-install lag
// that the replay harness turns into install-lag histograms, and the pinned
// program handle stays valid across installs (shared ownership, so a
// forwarding thread holding a superseded version never dangles).
TEST(EpochEvents, HealthyStepsAdvanceWithLagAndStablePins) {
  p4::CheckedProgram checked = load("middleblock");
  SimulatedDevice device;
  FaultTolerantController ctrl(checked, &device);

  std::vector<EpochEvent> events;
  ctrl.setEpochCallback([&](const EpochEvent& e) { events.push_back(e); });
  std::shared_ptr<const p4::CheckedProgram> firstPin;

  auto script = net::fuzzUpdateSequence(checked, 24, 5);
  for (const auto& u : script) {
    try {
      ctrl.apply(u);
    } catch (const std::invalid_argument&) {
    }
    if (!firstPin && ctrl.pinnedProgram()) firstPin = ctrl.pinnedProgram();
  }
  ASSERT_FALSE(events.empty());
  for (const EpochEvent& e : events) {
    EXPECT_TRUE(e.advanced);
    EXPECT_FALSE(e.recovery);
    EXPECT_EQ(e.deviceVisible, e.committed);
  }
  // The superseded pin is still alive and usable after later installs.
  if (firstPin) {
    EXPECT_FALSE(firstPin->program.controls.empty());
  }
}

}  // namespace
}  // namespace flay::controller
