#ifndef FLAY_WIRE_SOCKET_H
#define FLAY_WIRE_SOCKET_H

// Thin POSIX socket layer under the frame codec: RAII descriptors, Unix-
// domain listen/connect (the daemon/agent rendezvous), socketpair links for
// in-process agent threads, and a blocking FrameChannel that pairs a
// descriptor with an incremental FrameDecoder. The daemon's pipelined drain
// path polls a raw descriptor itself (see fleet::AgentLink); this header is
// the blocking side.

#include <string>
#include <utility>
#include <vector>

#include "wire/wire.h"

namespace flay::wire {

/// Move-only RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// AF_UNIX SOCK_STREAM pair — the in-process daemon<->agent link (real
/// serialization + syscalls, no filesystem rendezvous). Throws WireError.
std::pair<Fd, Fd> socketPair();

/// Binds + listens on a Unix-domain socket path (unlinking any stale one).
Fd listenUnix(const std::string& path, int backlog = 16);
/// Accepts one connection (blocking).
Fd acceptOne(const Fd& listener);
/// Connects to a Unix-domain socket path, retrying while the daemon is
/// still coming up (spawned agents race its listen()).
Fd connectUnix(const std::string& path, int retries = 50,
               int retryDelayMs = 100);

void setNonBlocking(int fd, bool nonBlocking);

/// Writes all of `data` (blocking); throws WireError on a dead peer.
void sendAll(int fd, const std::vector<uint8_t>& data);

/// Blocking framed endpoint: one descriptor + one incremental decoder.
class FrameChannel {
 public:
  explicit FrameChannel(Fd fd) : fd_(std::move(fd)) {}

  /// Encodes and writes one frame.
  void send(FrameType type, const std::vector<uint8_t>& payload);
  /// Blocks for the next frame. Returns false on EOF — including an EOF
  /// with a torn frame still buffered, which the receiver treats like the
  /// WAL's torn tail (the frame never happened; the connection is simply
  /// gone). Throws WireError on a structurally bad stream.
  bool recv(Frame* out);

  int fd() const { return fd_.get(); }
  void close() { fd_.reset(); }
  bool open() const { return fd_.valid(); }

 private:
  Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace flay::wire

#endif  // FLAY_WIRE_SOCKET_H
