#ifndef FLAY_WIRE_WIRE_H
#define FLAY_WIRE_WIRE_H

// Versioned, length-prefixed wire protocol for controller-daemon <-> device-
// agent links. This promotes the journal's runtime::Update text round-trip
// into a network format: every frame is
//
//   magic(u32) version(u16) type(u16) length(u32) checksum(u32) payload...
//
// little-endian, with checksum = FNV-1a/32 of the payload bytes. The decoder
// is incremental and treats a frame cut mid-header or mid-payload exactly
// like the WAL treats a torn journal tail: not an error, just "not written
// yet" (kNeedMore) — the sender died mid-write and the frame never happened.
// Everything structurally wrong — bad magic, unknown version, an oversized
// length prefix, a checksum mismatch — is a clean, sticky protocol error:
// the connection is poisoned, never re-synchronized, and never crashes the
// process however adversarial the bytes are.
//
// Payloads are built with bounds-checked Writer/Reader helpers (fixed-width
// little-endian ints, u32-length-prefixed strings), so a truncated or
// malformed payload surfaces as WireError, not as an out-of-bounds read.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace flay::wire {

constexpr uint32_t kMagic = 0x464C4159;  // "FLAY"
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderSize = 16;
/// Hard cap on one frame's payload; a length prefix beyond it is a protocol
/// error, never an allocation. Bulk streams chunk well below this.
constexpr uint32_t kMaxPayload = 8u << 20;

/// Frame types of wire protocol version 1. The agent speaks first (kHello);
/// every daemon->agent request has exactly one reply type.
enum class FrameType : uint16_t {
  kHello = 1,          ///< agent -> daemon: name, program fingerprint, seed
  kHelloAck = 2,       ///< daemon -> agent: accepted or rejection detail
  kBatch = 3,          ///< daemon -> agent: firstSeq + update texts
  kAck = 4,            ///< agent -> daemon: cumulative counters up to a seq
  kDigestRequest = 5,  ///< daemon -> agent
  kDigestReply = 6,    ///< agent -> daemon: canonical state digest
  kRecover = 7,        ///< daemon -> agent: attempt quarantine re-admission
  kRecoverReply = 8,
  kCheckpoint = 9,  ///< daemon -> agent: force a journal checkpoint
  kCheckpointAck = 10,
  kError = 11,  ///< either direction: explicit, fatal protocol error
  kBye = 12,    ///< daemon -> agent: clean shutdown
  kByeAck = 13,
  kBulk = 14,  ///< daemon -> agent: one bulk-load stream chunk (classifier-
               ///< prefiltered applyBulk path); `last` triggers the load
  kBulkReply = 15,
};

/// Error codes carried by kError frames.
enum : uint32_t {
  kErrBadFrame = 1,         ///< undecodable frame or unexpected type
  kErrBadUpdate = 2,        ///< update text failed schema-directed decode
  kErrDeviceFailed = 3,     ///< non-update exception; device state unknown
  kErrProgramMismatch = 4,  ///< hello fingerprint != daemon's program
};

/// Every structural protocol failure (truncated payload, bad frame, peer
/// error frame, dead socket) surfaces as WireError. It deliberately does NOT
/// derive from std::invalid_argument: the fleet's apply loop treats
/// invalid_argument as "engine rejected one update, keep going", while a
/// WireError means the link itself is broken.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// FNV-1a over `n` bytes, folded to 32 bits (the frame checksum).
uint32_t fnv1a32(const uint8_t* data, size_t n);

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// One encoded frame: header + payload, checksummed, ready to write.
/// Throws WireError if the payload exceeds kMaxPayload.
std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Incremental frame decoder: feed() arbitrary byte chunks (a syscall's
/// worth at a time), then pull frames with next(). Decode errors are sticky:
/// a poisoned stream cannot be re-synchronized, because after a bad length
/// prefix every subsequent byte boundary is a guess.
class FrameDecoder {
 public:
  enum class Status { kFrame, kNeedMore, kError };

  void feed(const uint8_t* data, size_t n);
  Status next(Frame* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered but not yet consumed by a complete frame. Non-zero at
  /// EOF means the peer died mid-frame (the torn tail).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  Status fail(const std::string& why);

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

/// Bounds-checked payload builder: fixed-width little-endian integers and
/// u32-length-prefixed strings.
class Writer {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void str(std::string_view s);
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked payload reader; any read past the end (or a string whose
/// length prefix overruns the payload) throws WireError.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  std::string str();
  bool atEnd() const { return pos_ == buf_.size(); }
  /// Trailing bytes after the last expected field are a protocol error —
  /// a decoder that silently ignores them would mask framing bugs.
  void expectEnd() const;

 private:
  const uint8_t* need(size_t n);

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Messages (payload schemas). decode*() throws WireError on malformed input.
// ---------------------------------------------------------------------------

struct Hello {
  std::string deviceName;
  /// Program fingerprint: the daemon shards dispatch by this key, so an
  /// agent only ever receives updates for the program it actually runs.
  std::string programFingerprint;
  uint64_t seed = 0;
};

struct HelloAck {
  bool accepted = false;
  std::string detail;
};

struct Batch {
  uint64_t firstSeq = 0;
  std::vector<std::string> updates;  ///< runtime::Update::toString texts
};

/// Cumulative per-link counters, acknowledging everything up to `upToSeq`.
struct Ack {
  uint64_t upToSeq = 0;
  uint64_t applied = 0;
  uint64_t rejected = 0;
  uint64_t retries = 0;
  bool degraded = false;
  uint64_t committed = 0;
  uint64_t deviceVisible = 0;
};

struct DigestReply {
  std::string digest;
  bool degraded = false;
  uint64_t committed = 0;
  uint64_t deviceVisible = 0;
};

struct RecoverReply {
  bool recovered = false;
  bool degraded = false;
};

struct ErrorMsg {
  uint32_t code = 0;
  std::string detail;
};

/// One chunk of a bulk-load stream; the agent buffers chunks and runs the
/// classifier-prefiltered applyBulk when `last` is set.
struct BulkChunk {
  uint64_t chunkSize = 0;  ///< BulkLoadOptions.chunkSize (from the first chunk)
  bool classifierPrefilter = true;
  bool last = false;
  std::vector<std::string> updates;
};

struct BulkReply {
  uint64_t applied = 0;
  uint64_t bypassed = 0;
  uint64_t rejected = 0;
  uint64_t retries = 0;
  bool degraded = false;
};

std::vector<uint8_t> encode(const Hello& m);
std::vector<uint8_t> encode(const HelloAck& m);
std::vector<uint8_t> encode(const Batch& m);
std::vector<uint8_t> encode(const Ack& m);
std::vector<uint8_t> encode(const DigestReply& m);
std::vector<uint8_t> encode(const RecoverReply& m);
std::vector<uint8_t> encode(const ErrorMsg& m);
std::vector<uint8_t> encode(const BulkChunk& m);
std::vector<uint8_t> encode(const BulkReply& m);

Hello decodeHello(const std::vector<uint8_t>& p);
HelloAck decodeHelloAck(const std::vector<uint8_t>& p);
Batch decodeBatch(const std::vector<uint8_t>& p);
Ack decodeAck(const std::vector<uint8_t>& p);
DigestReply decodeDigestReply(const std::vector<uint8_t>& p);
RecoverReply decodeRecoverReply(const std::vector<uint8_t>& p);
ErrorMsg decodeErrorMsg(const std::vector<uint8_t>& p);
BulkChunk decodeBulkChunk(const std::vector<uint8_t>& p);
BulkReply decodeBulkReply(const std::vector<uint8_t>& p);

}  // namespace flay::wire

#endif  // FLAY_WIRE_WIRE_H
