#include "wire/socket.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace flay::wire {

namespace {

[[noreturn]] void sysError(const std::string& what) {
  throw WireError(what + ": " + ::strerror(errno));
}

sockaddr_un unixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw WireError("socket path too long: '" + path + "'");
  }
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::pair<Fd, Fd> socketPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    sysError("socketpair failed");
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

Fd listenUnix(const std::string& path, int backlog) {
  sockaddr_un addr = unixAddr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) sysError("socket failed");
  ::unlink(path.c_str());  // stale path from a previous run
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    sysError("cannot bind '" + path + "'");
  }
  if (::listen(fd.get(), backlog) != 0) sysError("listen failed");
  return fd;
}

Fd acceptOne(const Fd& listener) {
  for (;;) {
    int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    sysError("accept failed");
  }
}

Fd connectUnix(const std::string& path, int retries, int retryDelayMs) {
  sockaddr_un addr = unixAddr(path);
  for (int attempt = 0;; ++attempt) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) sysError("socket failed");
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (attempt >= retries) sysError("cannot connect to '" + path + "'");
    std::this_thread::sleep_for(std::chrono::milliseconds(retryDelayMs));
  }
}

void setNonBlocking(int fd, bool nonBlocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) sysError("fcntl(F_GETFL) failed");
  flags = nonBlocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) sysError("fcntl(F_SETFL) failed");
}

void sendAll(int fd, const std::vector<uint8_t>& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sysError("send failed");
    }
    off += static_cast<size_t>(n);
  }
}

void FrameChannel::send(FrameType type, const std::vector<uint8_t>& payload) {
  if (!fd_.valid()) throw WireError("send on a closed channel");
  sendAll(fd_.get(), encodeFrame(type, payload));
}

bool FrameChannel::recv(Frame* out) {
  if (!fd_.valid()) return false;
  uint8_t chunk[16384];
  for (;;) {
    switch (decoder_.next(out)) {
      case FrameDecoder::Status::kFrame:
        return true;
      case FrameDecoder::Status::kError:
        throw WireError("bad frame from peer: " + decoder_.error());
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    ssize_t n = ::read(fd_.get(), chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      sysError("read failed");
    }
    if (n == 0) return false;  // EOF; a buffered torn frame never happened
    decoder_.feed(chunk, static_cast<size_t>(n));
  }
}

}  // namespace flay::wire
