#include "wire/wire.h"

#include <cstring>

namespace flay::wire {

namespace {

void putU16(std::vector<uint8_t>& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v));
  b.push_back(static_cast<uint8_t>(v >> 8));
}

void putU32(std::vector<uint8_t>& b, uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t getU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t getU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t fnv1a32(const uint8_t* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxPayload) {
    throw WireError("frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxPayload) +
                    "-byte cap");
  }
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  putU32(out, kMagic);
  putU16(out, kVersion);
  putU16(out, static_cast<uint16_t>(type));
  putU32(out, static_cast<uint32_t>(payload.size()));
  putU32(out, fnv1a32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const uint8_t* data, size_t n) {
  if (failed_) return;  // poisoned: drop everything
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::fail(const std::string& why) {
  failed_ = true;
  error_ = why;
  buf_.clear();
  pos_ = 0;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::next(Frame* out) {
  if (failed_) return Status::kError;
  if (buffered() < kHeaderSize) {
    // Mid-header cut: the WAL's torn-tail rule — not yet written, keep the
    // prefix and wait. Compact so a long-lived link doesn't grow the buffer.
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return Status::kNeedMore;
  }
  const uint8_t* h = buf_.data() + pos_;
  if (getU32(h) != kMagic) return fail("bad frame magic");
  uint16_t version = getU16(h + 4);
  if (version != kVersion) {
    return fail("wire version " + std::to_string(version) +
                " unsupported (this end speaks " + std::to_string(kVersion) +
                ")");
  }
  uint16_t type = getU16(h + 6);
  uint32_t length = getU32(h + 8);
  uint32_t checksum = getU32(h + 12);
  if (length > kMaxPayload) {
    return fail("oversized length prefix (" + std::to_string(length) +
                " bytes)");
  }
  if (buffered() < kHeaderSize + length) {
    if (pos_ > 0) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
      pos_ = 0;
    }
    return Status::kNeedMore;  // mid-payload cut: same torn-tail rule
  }
  const uint8_t* payload = h + kHeaderSize;
  if (fnv1a32(payload, length) != checksum) {
    return fail("frame checksum mismatch");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload, payload + length);
  pos_ += kHeaderSize + length;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

void Writer::u16(uint16_t v) { putU16(buf_, v); }
void Writer::u32(uint32_t v) { putU32(buf_, v); }

void Writer::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::str(std::string_view s) {
  if (s.size() > kMaxPayload) {
    throw WireError("string field exceeds the frame payload cap");
  }
  u32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

const uint8_t* Reader::need(size_t n) {
  if (n > buf_.size() - pos_) {
    throw WireError("truncated payload: need " + std::to_string(n) +
                    " bytes, have " + std::to_string(buf_.size() - pos_));
  }
  const uint8_t* p = buf_.data() + pos_;
  pos_ += n;
  return p;
}

uint8_t Reader::u8() { return *need(1); }
uint16_t Reader::u16() { return getU16(need(2)); }
uint32_t Reader::u32() { return getU32(need(4)); }

uint64_t Reader::u64() {
  const uint8_t* p = need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string Reader::str() {
  uint32_t n = u32();
  const uint8_t* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

void Reader::expectEnd() const {
  if (pos_ != buf_.size()) {
    throw WireError("payload has " + std::to_string(buf_.size() - pos_) +
                    " trailing byte(s)");
  }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::vector<uint8_t> encode(const Hello& m) {
  Writer w;
  w.str(m.deviceName);
  w.str(m.programFingerprint);
  w.u64(m.seed);
  return w.take();
}

Hello decodeHello(const std::vector<uint8_t>& p) {
  Reader r(p);
  Hello m;
  m.deviceName = r.str();
  m.programFingerprint = r.str();
  m.seed = r.u64();
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const HelloAck& m) {
  Writer w;
  w.u8(m.accepted ? 1 : 0);
  w.str(m.detail);
  return w.take();
}

HelloAck decodeHelloAck(const std::vector<uint8_t>& p) {
  Reader r(p);
  HelloAck m;
  m.accepted = r.u8() != 0;
  m.detail = r.str();
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const Batch& m) {
  Writer w;
  w.u64(m.firstSeq);
  w.u32(static_cast<uint32_t>(m.updates.size()));
  for (const auto& u : m.updates) w.str(u);
  return w.take();
}

Batch decodeBatch(const std::vector<uint8_t>& p) {
  Reader r(p);
  Batch m;
  m.firstSeq = r.u64();
  uint32_t n = r.u32();
  // Each entry needs at least its 4-byte length prefix; reject counts the
  // payload cannot possibly hold before reserving anything.
  if (static_cast<uint64_t>(n) * 4 > p.size()) {
    throw WireError("batch count " + std::to_string(n) +
                    " exceeds the payload");
  }
  m.updates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.updates.push_back(r.str());
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const Ack& m) {
  Writer w;
  w.u64(m.upToSeq);
  w.u64(m.applied);
  w.u64(m.rejected);
  w.u64(m.retries);
  w.u8(m.degraded ? 1 : 0);
  w.u64(m.committed);
  w.u64(m.deviceVisible);
  return w.take();
}

Ack decodeAck(const std::vector<uint8_t>& p) {
  Reader r(p);
  Ack m;
  m.upToSeq = r.u64();
  m.applied = r.u64();
  m.rejected = r.u64();
  m.retries = r.u64();
  m.degraded = r.u8() != 0;
  m.committed = r.u64();
  m.deviceVisible = r.u64();
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const DigestReply& m) {
  Writer w;
  w.str(m.digest);
  w.u8(m.degraded ? 1 : 0);
  w.u64(m.committed);
  w.u64(m.deviceVisible);
  return w.take();
}

DigestReply decodeDigestReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  DigestReply m;
  m.digest = r.str();
  m.degraded = r.u8() != 0;
  m.committed = r.u64();
  m.deviceVisible = r.u64();
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const RecoverReply& m) {
  Writer w;
  w.u8(m.recovered ? 1 : 0);
  w.u8(m.degraded ? 1 : 0);
  return w.take();
}

RecoverReply decodeRecoverReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  RecoverReply m;
  m.recovered = r.u8() != 0;
  m.degraded = r.u8() != 0;
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const ErrorMsg& m) {
  Writer w;
  w.u32(m.code);
  w.str(m.detail);
  return w.take();
}

ErrorMsg decodeErrorMsg(const std::vector<uint8_t>& p) {
  Reader r(p);
  ErrorMsg m;
  m.code = r.u32();
  m.detail = r.str();
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const BulkChunk& m) {
  Writer w;
  w.u64(m.chunkSize);
  w.u8(m.classifierPrefilter ? 1 : 0);
  w.u8(m.last ? 1 : 0);
  w.u32(static_cast<uint32_t>(m.updates.size()));
  for (const auto& u : m.updates) w.str(u);
  return w.take();
}

BulkChunk decodeBulkChunk(const std::vector<uint8_t>& p) {
  Reader r(p);
  BulkChunk m;
  m.chunkSize = r.u64();
  m.classifierPrefilter = r.u8() != 0;
  m.last = r.u8() != 0;
  uint32_t n = r.u32();
  if (static_cast<uint64_t>(n) * 4 > p.size()) {
    throw WireError("bulk chunk count " + std::to_string(n) +
                    " exceeds the payload");
  }
  m.updates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.updates.push_back(r.str());
  r.expectEnd();
  return m;
}

std::vector<uint8_t> encode(const BulkReply& m) {
  Writer w;
  w.u64(m.applied);
  w.u64(m.bypassed);
  w.u64(m.rejected);
  w.u64(m.retries);
  w.u8(m.degraded ? 1 : 0);
  return w.take();
}

BulkReply decodeBulkReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  BulkReply m;
  m.applied = r.u64();
  m.bypassed = r.u64();
  m.rejected = r.u64();
  m.retries = r.u64();
  m.degraded = r.u8() != 0;
  r.expectEnd();
  return m;
}

}  // namespace flay::wire
