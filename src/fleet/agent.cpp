#include "fleet/agent.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "expr/canonical.h"
#include "p4/printer.h"
#include "runtime/device_config.h"

namespace flay::fleet {

namespace {

std::string errnoString() { return std::strerror(errno); }

}  // namespace

std::string programFingerprint(const p4::CheckedProgram& checked) {
  expr::Fnv h;
  h.mix(p4::printProgram(checked.program));
  return h.hex();
}

// ---------------------------------------------------------------------------
// AgentEndpoint
// ---------------------------------------------------------------------------

AgentEndpoint::AgentEndpoint(const p4::CheckedProgram& checked,
                             controller::FaultTolerantController& ctl,
                             wire::FrameChannel channel, std::string deviceName,
                             uint64_t seed)
    : checked_(checked),
      ctl_(ctl),
      channel_(std::move(channel)),
      name_(std::move(deviceName)),
      seed_(seed),
      fingerprint_(programFingerprint(checked)) {}

wire::Ack AgentEndpoint::currentAck(uint64_t upToSeq) const {
  wire::Ack ack;
  ack.upToSeq = upToSeq;
  ack.applied = stats_.applied;
  ack.rejected = stats_.rejected;
  ack.retries = stats_.retries;
  ack.degraded = ctl_.degraded();
  ack.committed = ctl_.committedUpdates();
  ack.deviceVisible = ctl_.deviceVisibleUpdates();
  return ack;
}

bool AgentEndpoint::protocolError(uint32_t code, const std::string& detail) {
  lastError_ = detail;
  try {
    wire::ErrorMsg e;
    e.code = code;
    e.detail = name_ + ": " + detail;
    channel_.send(wire::FrameType::kError, wire::encode(e));
  } catch (const wire::WireError&) {
    // The link is already gone; the caller still learns via `false`.
  }
  return false;
}

bool AgentEndpoint::handleBatch(const wire::Frame& f) {
  wire::Batch batch = wire::decodeBatch(f.payload);
  if (batch.updates.empty()) {
    return protocolError(wire::kErrBadFrame, "empty batch frame");
  }
  for (const std::string& text : batch.updates) {
    runtime::Update u;
    try {
      u = runtime::Update::fromString(checked_, text);
    } catch (const std::invalid_argument& e) {
      // An undecodable update is fatal: the two ends disagree about the
      // schema (or the stream is corrupt), and seq accounting can no longer
      // be trusted.
      return protocolError(wire::kErrBadUpdate,
                           std::string("undecodable update: ") + e.what());
    }
    try {
      controller::ApplyResult r = ctl_.apply(u);
      stats_.retries += r.retries;
      ++stats_.applied;
    } catch (const std::invalid_argument&) {
      // Engine rejected this one update; the link stays healthy.
      ++stats_.rejected;
    }
  }
  ++stats_.batches;
  uint64_t upToSeq = batch.firstSeq + batch.updates.size() - 1;
  channel_.send(wire::FrameType::kAck, wire::encode(currentAck(upToSeq)));
  return true;
}

bool AgentEndpoint::handleBulk(const wire::Frame& f) {
  wire::BulkChunk chunk = wire::decodeBulkChunk(f.payload);
  bulkTexts_.insert(bulkTexts_.end(), chunk.updates.begin(),
                    chunk.updates.end());
  if (!chunk.last) return true;

  std::vector<runtime::Update> updates;
  updates.reserve(bulkTexts_.size());
  for (const std::string& text : bulkTexts_) {
    try {
      updates.push_back(runtime::Update::fromString(checked_, text));
    } catch (const std::invalid_argument& e) {
      bulkTexts_.clear();
      return protocolError(wire::kErrBadUpdate,
                           std::string("undecodable bulk update: ") + e.what());
    }
  }
  bulkTexts_.clear();

  flay::BulkLoadOptions opts;
  if (chunk.chunkSize > 0) opts.chunkSize = chunk.chunkSize;
  opts.classifierPrefilter = chunk.classifierPrefilter;
  controller::BulkApplyResult r = ctl_.applyBulk(updates, opts);
  ++stats_.bulkLoads;
  stats_.applied += r.report.applied;
  stats_.rejected += r.report.rejected;
  stats_.retries += r.retries;

  wire::BulkReply reply;
  reply.applied = r.report.applied;
  reply.bypassed = r.report.bypassed;
  reply.rejected = r.report.rejected;
  reply.retries = r.retries;
  reply.degraded = r.degraded;
  channel_.send(wire::FrameType::kBulkReply, wire::encode(reply));
  return true;
}

bool AgentEndpoint::serve() {
  try {
    wire::Hello hello;
    hello.deviceName = name_;
    hello.programFingerprint = fingerprint_;
    hello.seed = seed_;
    channel_.send(wire::FrameType::kHello, wire::encode(hello));

    wire::Frame f;
    if (!channel_.recv(&f)) {
      lastError_ = "daemon closed the connection before HelloAck";
      return false;
    }
    if (f.type != wire::FrameType::kHelloAck) {
      return protocolError(wire::kErrBadFrame,
                           "expected HelloAck, got frame type " +
                               std::to_string(static_cast<int>(f.type)));
    }
    wire::HelloAck ack = wire::decodeHelloAck(f.payload);
    if (!ack.accepted) {
      lastError_ = "daemon rejected hello: " + ack.detail;
      return false;
    }

    while (channel_.recv(&f)) {
      switch (f.type) {
        case wire::FrameType::kBatch:
          if (!handleBatch(f)) return false;
          break;
        case wire::FrameType::kBulk:
          if (!handleBulk(f)) return false;
          break;
        case wire::FrameType::kDigestRequest: {
          wire::DigestReply reply;
          reply.digest = ctl_.stateDigest();
          reply.degraded = ctl_.degraded();
          reply.committed = ctl_.committedUpdates();
          reply.deviceVisible = ctl_.deviceVisibleUpdates();
          channel_.send(wire::FrameType::kDigestReply, wire::encode(reply));
          break;
        }
        case wire::FrameType::kRecover: {
          wire::RecoverReply reply;
          reply.recovered = ctl_.tryRecover();
          reply.degraded = ctl_.degraded();
          channel_.send(wire::FrameType::kRecoverReply, wire::encode(reply));
          break;
        }
        case wire::FrameType::kCheckpoint:
          ctl_.checkpointNow();
          channel_.send(wire::FrameType::kCheckpointAck, {});
          break;
        case wire::FrameType::kBye:
          channel_.send(wire::FrameType::kByeAck, {});
          return true;
        case wire::FrameType::kError: {
          wire::ErrorMsg e = wire::decodeErrorMsg(f.payload);
          lastError_ = "daemon error: " + e.detail;
          return false;
        }
        default:
          return protocolError(wire::kErrBadFrame,
                               "unexpected frame type " +
                                   std::to_string(static_cast<int>(f.type)));
      }
    }
    // EOF without kBye: the daemon died or dropped us mid-stream. Anything
    // unacknowledged was never committed here — exactly the torn-tail
    // contract — so this is a clean stop, not a failure.
    return true;
  } catch (const wire::WireError& e) {
    return protocolError(wire::kErrBadFrame, e.what());
  } catch (const std::exception& e) {
    // Non-update exception out of the controller: the device's state is
    // unknown; tell the daemon so it can quarantine this member.
    return protocolError(wire::kErrDeviceFailed, e.what());
  }
}

// ---------------------------------------------------------------------------
// AgentLink
// ---------------------------------------------------------------------------

AgentLink::AgentLink(wire::Fd fd, std::string label, size_t batchSize,
                     size_t windowBatches)
    : fd_(std::move(fd)),
      label_(std::move(label)),
      batchSize_(batchSize == 0 ? 1 : batchSize),
      windowBatches_(windowBatches == 0 ? 1 : windowBatches) {
  wire::setNonBlocking(fd_.get(), true);
}

AgentLink::~AgentLink() = default;

void AgentLink::die(const std::string& why) {
  dead_ = true;
  if (deathReason_.empty()) deathReason_ = why;
  // Keep exactly the unacknowledged tail in pending_ so the caller can count
  // what was lost on this link.
  uint64_t firstPendingSeq = seq_ - pending_.size() + 1;
  if (ackedSeq_ + 1 > firstPendingSeq) {
    size_t acked = static_cast<size_t>(ackedSeq_ + 1 - firstPendingSeq);
    acked = std::min(acked, pending_.size());
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(acked));
  }
  fd_.reset();
  throw wire::WireError(label_ + ": " + why);
}

void AgentLink::enqueue(std::string updateText) {
  pending_.push_back(std::move(updateText));
  ++seq_;
}

void AgentLink::consume(const wire::Frame& f) {
  try {
    switch (f.type) {
      case wire::FrameType::kAck: {
        wire::Ack ack = wire::decodeAck(f.payload);
        if (ack.upToSeq <= ackedSeq_ || ack.upToSeq > seq_) {
          die("ack out of order (upToSeq " + std::to_string(ack.upToSeq) +
              ", acked " + std::to_string(ackedSeq_) + ", sent " +
              std::to_string(seq_) + ")");
        }
        ackedSeq_ = ack.upToSeq;
        lastAck_ = ack;
        sawAck_ = true;
        if (inFlight_ > 0) --inFlight_;
        break;
      }
      case wire::FrameType::kError: {
        wire::ErrorMsg e = wire::decodeErrorMsg(f.payload);
        die("agent error " + std::to_string(e.code) + ": " + e.detail);
        break;
      }
      default:
        die("unexpected frame type " +
            std::to_string(static_cast<int>(f.type)) + " during flush");
    }
  } catch (const wire::WireError&) {
    if (!dead_) die("undecodable reply frame");
    throw;
  }
}

void AgentLink::pumpRead(FlushDelta* delta) {
  uint8_t chunk[16384];
  for (;;) {
    ssize_t n = ::read(fd_.get(), chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      die("read failed: " + errnoString());
    }
    if (n == 0) die("agent closed the connection");
    if (delta != nullptr) delta->bytesIn += static_cast<uint64_t>(n);
    decoder_.feed(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof chunk) break;
  }
  wire::Frame f;
  for (;;) {
    auto st = decoder_.next(&f);
    if (st == wire::FrameDecoder::Status::kError) {
      die("bad frame from agent: " + decoder_.error());
    }
    if (st == wire::FrameDecoder::Status::kNeedMore) break;
    consume(f);
  }
}

AgentLink::FlushDelta AgentLink::flush() {
  FlushDelta delta;
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  if (pending_.empty()) return delta;

  wire::Ack before = lastAck_;
  uint64_t firstPendingSeq = seq_ - pending_.size() + 1;
  uint64_t target = seq_;
  size_t encodeIdx = 0;
  uint64_t nextSeq = firstPendingSeq;
  std::vector<uint8_t> out;
  size_t outOff = 0;

  while (ackedSeq_ < target) {
    // Encode the next batch lazily, only when the previous one fully left
    // the send buffer and the in-flight window has room.
    if (outOff == out.size() && encodeIdx < pending_.size() &&
        inFlight_ < windowBatches_) {
      size_t n = std::min(batchSize_, pending_.size() - encodeIdx);
      wire::Batch b;
      b.firstSeq = nextSeq;
      b.updates.assign(pending_.begin() + static_cast<ptrdiff_t>(encodeIdx),
                       pending_.begin() +
                           static_cast<ptrdiff_t>(encodeIdx + n));
      out = wire::encodeFrame(wire::FrameType::kBatch, wire::encode(b));
      outOff = 0;
      encodeIdx += n;
      nextSeq += n;
      ++inFlight_;
      ++delta.batches;
    }

    bool wantWrite = outOff < out.size();
    struct pollfd p;
    p.fd = fd_.get();
    p.events = static_cast<short>(POLLIN | (wantWrite ? POLLOUT : 0));
    p.revents = 0;
    int rc = ::poll(&p, 1, timeoutMs_);
    if (rc < 0) {
      if (errno == EINTR) continue;
      die("poll failed: " + errnoString());
    }
    if (rc == 0) die("flush timed out waiting for acks");
    if (p.revents & (POLLIN | POLLERR | POLLHUP)) {
      // Drain acks even while writes are still streaming: this is what
      // keeps a full socket buffer from deadlocking both ends.
      pumpRead(&delta);
    }
    if (wantWrite && (p.revents & POLLOUT)) {
      ssize_t w = ::send(fd_.get(), out.data() + outOff, out.size() - outOff,
                         MSG_NOSIGNAL);
      if (w < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          die("send failed: " + errnoString());
        }
      } else {
        outOff += static_cast<size_t>(w);
        delta.bytesOut += static_cast<uint64_t>(w);
      }
    }
  }

  pending_.clear();
  delta.applied = lastAck_.applied - before.applied;
  delta.rejected = lastAck_.rejected - before.rejected;
  delta.retries = lastAck_.retries - before.retries;
  delta.degraded = lastAck_.degraded;
  delta.committed = lastAck_.committed;
  delta.deviceVisible = lastAck_.deviceVisible;
  return delta;
}

wire::Frame AgentLink::waitFrame(wire::FrameType expect, int timeoutMs) {
  wire::Frame f;
  for (;;) {
    auto st = decoder_.next(&f);
    if (st == wire::FrameDecoder::Status::kError) {
      die("bad frame from agent: " + decoder_.error());
    }
    if (st == wire::FrameDecoder::Status::kFrame) {
      if (f.type == wire::FrameType::kError) {
        try {
          wire::ErrorMsg e = wire::decodeErrorMsg(f.payload);
          die("agent error " + std::to_string(e.code) + ": " + e.detail);
        } catch (const wire::WireError&) {
          if (!dead_) die("undecodable error frame");
          throw;
        }
      }
      if (f.type == wire::FrameType::kAck) {
        // A stale ack from an earlier pipeline can legally arrive before a
        // reply; fold it in and keep waiting.
        consume(f);
        continue;
      }
      if (f.type != expect) {
        die("expected frame type " +
            std::to_string(static_cast<int>(expect)) + ", got " +
            std::to_string(static_cast<int>(f.type)));
      }
      return f;
    }
    struct pollfd p;
    p.fd = fd_.get();
    p.events = POLLIN;
    p.revents = 0;
    int rc = ::poll(&p, 1, timeoutMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      die("poll failed: " + errnoString());
    }
    if (rc == 0) die("timed out waiting for reply");
    uint8_t chunk[16384];
    ssize_t n = ::read(fd_.get(), chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      die("read failed: " + errnoString());
    }
    if (n == 0) die("agent closed the connection");
    decoder_.feed(chunk, static_cast<size_t>(n));
  }
}

void AgentLink::writeAllBlocking(const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::send(fd_.get(), bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (w >= 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd p;
      p.fd = fd_.get();
      p.events = POLLOUT;
      p.revents = 0;
      int rc = ::poll(&p, 1, timeoutMs_);
      if (rc < 0 && errno != EINTR) die("poll failed: " + errnoString());
      if (rc == 0) die("timed out writing to agent");
      continue;
    }
    die("send failed: " + errnoString());
  }
}

wire::Hello AgentLink::handshake() {
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  wire::Frame f = waitFrame(wire::FrameType::kHello, timeoutMs_);
  try {
    return wire::decodeHello(f.payload);
  } catch (const wire::WireError&) {
    if (!dead_) die("undecodable hello frame");
    throw;
  }
}

void AgentLink::accept() {
  wire::HelloAck ack;
  ack.accepted = true;
  writeAllBlocking(wire::encodeFrame(wire::FrameType::kHelloAck,
                                     wire::encode(ack)));
}

void AgentLink::reject(const std::string& why) {
  wire::HelloAck ack;
  ack.accepted = false;
  ack.detail = why;
  try {
    writeAllBlocking(wire::encodeFrame(wire::FrameType::kHelloAck,
                                       wire::encode(ack)));
  } catch (const wire::WireError&) {
    // Best-effort: the rejection itself closes the link either way.
  }
  dead_ = true;
  if (deathReason_.empty()) deathReason_ = "rejected: " + why;
  fd_.reset();
}

wire::DigestReply AgentLink::digest() {
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  writeAllBlocking(wire::encodeFrame(wire::FrameType::kDigestRequest, {}));
  wire::Frame f = waitFrame(wire::FrameType::kDigestReply, timeoutMs_);
  try {
    return wire::decodeDigestReply(f.payload);
  } catch (const wire::WireError&) {
    if (!dead_) die("undecodable digest reply");
    throw;
  }
}

wire::RecoverReply AgentLink::recover() {
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  writeAllBlocking(wire::encodeFrame(wire::FrameType::kRecover, {}));
  wire::Frame f = waitFrame(wire::FrameType::kRecoverReply, timeoutMs_);
  try {
    return wire::decodeRecoverReply(f.payload);
  } catch (const wire::WireError&) {
    if (!dead_) die("undecodable recover reply");
    throw;
  }
}

void AgentLink::checkpoint() {
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  writeAllBlocking(wire::encodeFrame(wire::FrameType::kCheckpoint, {}));
  waitFrame(wire::FrameType::kCheckpointAck, timeoutMs_);
}

wire::BulkReply AgentLink::bulk(const std::vector<std::string>& texts,
                                uint64_t chunkSize, bool classifierPrefilter) {
  if (!alive()) {
    throw wire::WireError(label_ + ": link is dead (" + deathReason_ + ")");
  }
  // Stream in frame-sized chunks well below kMaxPayload. The agent only
  // replies after `last`, and reads every chunk as it arrives, so blocking
  // writes here cannot deadlock.
  constexpr size_t kMaxChunkBytes = 1u << 20;
  constexpr size_t kMaxChunkUpdates = 4096;
  size_t i = 0;
  bool sentLast = false;
  while (!sentLast) {
    wire::BulkChunk chunk;
    chunk.chunkSize = chunkSize;
    chunk.classifierPrefilter = classifierPrefilter;
    size_t bytes = 0;
    while (i < texts.size() && chunk.updates.size() < kMaxChunkUpdates &&
           bytes < kMaxChunkBytes) {
      bytes += texts[i].size() + 4;
      chunk.updates.push_back(texts[i]);
      ++i;
    }
    chunk.last = i == texts.size();
    sentLast = chunk.last;
    writeAllBlocking(wire::encodeFrame(wire::FrameType::kBulk,
                                       wire::encode(chunk)));
  }
  wire::Frame f = waitFrame(wire::FrameType::kBulkReply, timeoutMs_);
  try {
    return wire::decodeBulkReply(f.payload);
  } catch (const wire::WireError&) {
    if (!dead_) die("undecodable bulk reply");
    throw;
  }
}

void AgentLink::bye() {
  if (!alive()) {
    fd_.reset();
    return;
  }
  try {
    writeAllBlocking(wire::encodeFrame(wire::FrameType::kBye, {}));
    waitFrame(wire::FrameType::kByeAck, 5000);
  } catch (const wire::WireError&) {
    // Best-effort shutdown: a dead agent cannot ack a goodbye.
  }
  fd_.reset();
}

void AgentLink::disconnect() {
  fd_.reset();
  dead_ = true;
  if (deathReason_.empty()) deathReason_ = "disconnected (fault injection)";
}

}  // namespace flay::fleet
