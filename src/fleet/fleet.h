#ifndef FLAY_FLEET_FLEET_H
#define FLAY_FLEET_FLEET_H

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "controller/device.h"
#include "controller/fault_plan.h"
#include "flay/verdict_cache.h"
#include "support/thread_pool.h"

namespace flay::fleet {

/// How the fleet talks to its device controllers.
///
///  - kInproc: direct function calls on the drain workers (the original,
///    fully tested single-process path).
///  - kSocket: every device runs behind an AgentEndpoint on the far end of a
///    socketpair, speaking the versioned wire protocol (src/wire) — real
///    serialization, real syscalls, pipelined batches and batched acks. The
///    same endpoint code serves `flayc agent` processes over Unix-domain
///    sockets; here the agents are in-process threads so the fleet object
///    keeps its existing ownership and digest API.
///
/// The two transports are observably equivalent: equal update streams yield
/// byte-identical fleet digests (tests/wire_equiv.sh holds this).
enum class Transport { kInproc, kSocket };

/// Quarantine re-admission policy for tryRecoverAll(): a degraded member is
/// only re-attempted after an exponential (jittered, capped) backoff since
/// its last failed attempt, so a device stuck in an outage is not hammered
/// with specialize+compile+install work on every poll. The *caller* still
/// decides when to poll (typically once per drain cycle); the fleet decides
/// which members are actually due.
struct RecoveryPolicy {
  /// Backoff after the n-th consecutive failure: min(base << (n-1), max)
  /// plus jitter in [0, base).
  uint64_t backoffBaseMicros = 500;
  uint64_t backoffMaxMicros = 200000;
  /// Consecutive failed attempts before the fleet stops re-admitting a
  /// member (0 = never give up). The counter resets on success.
  uint32_t maxAttempts = 0;
  /// Clock used for the backoff schedule, in microseconds. Null = wall
  /// clock (support::Stopwatch::nowMicros). Injecting a fake clock makes
  /// the whole re-admission schedule deterministic end-to-end: the jitter
  /// RNG is already seeded per member, so with a scripted clock two runs
  /// attempt recovery at exactly the same points. May be called from pool
  /// workers — a test clock must be thread-safe (e.g. read an atomic).
  std::function<uint64_t()> clock;
};

struct FleetOptions {
  /// Number of managed devices. Each gets a name ("dev0".."devN-1"), its own
  /// SimulatedDevice + FaultTolerantController + FlayService, and — when
  /// stateDirRoot is set — its own journal/checkpoint directory underneath.
  size_t devices = 4;
  /// Concurrent device drains: jobs-1 pool workers plus the draining thread.
  /// 1 = fully serial (no pool is created). Updates within one device are
  /// always applied in order regardless.
  size_t jobs = 1;
  /// Per-device work-queue capacity; enqueue() to a full queue drops the
  /// update (counted in fleet.updates_dropped) instead of blocking, so a
  /// degraded or crashed device can never apply backpressure to the whole
  /// fleet. 0 = unbounded.
  size_t queueCapacity = 0;
  /// Root directory for per-device persistence ("" = in-memory only). A
  /// restart over the same root replays every device's journal — each
  /// device recovers to its last committed state independently.
  std::string stateDirRoot;
  /// Share one thread-safe verdict cache across every device's check engine.
  /// Identical programs render identical canonical formulas, so the first
  /// device to specialize pays the solver probes and the rest hit. Scope
  /// tags are prefixed with "<device>/" so invalidation stays per-instance.
  bool sharedVerdictCache = true;
  /// Fault-plan template: device i runs it with seed = faultPlan.seed + i,
  /// so faults land at different points per device (deterministically).
  controller::FaultPlan faultPlan;
  /// When false, controllers run without a device (analysis + WAL only; no
  /// compiles or installs). Crash-recovery tests use this shape.
  bool attachDevices = true;
  /// Re-admission backoff for tryRecoverAll().
  RecoveryPolicy recovery;
  /// Controller <-> device transport (see Transport).
  Transport transport = Transport::kInproc;
  /// Socket transport tuning: updates per kBatch frame, and how many batch
  /// frames may be in flight per link before the daemon requires an ack.
  size_t wireBatchSize = 32;
  size_t wireWindowBatches = 8;
  /// Base per-device controller options. stateDir and seed are overwritten
  /// per device; flay.sharedVerdictCache/verdictScopePrefix are overwritten
  /// according to `sharedVerdictCache`.
  controller::ControllerOptions controller;
  tofino::PipelineModel deviceModel;
  tofino::CompilerOptions deviceCompiler;
};

/// Point-in-time status of one fleet member.
struct DeviceStatus {
  std::string name;
  bool degraded = false;
  /// A non-update exception escaped this device's apply loop; its queue was
  /// abandoned and it no longer accepts work (the rest of the fleet is
  /// unaffected).
  bool failed = false;
  uint64_t applied = 0;
  uint64_t rejected = 0;
  uint64_t dropped = 0;
  uint64_t retries = 0;
  uint64_t replayed = 0;  // journal replay during construction
  size_t queued = 0;
  /// Device-visibility epochs (see FaultTolerantController): committed -
  /// deviceVisible is this member's live staleness in updates.
  uint64_t committed = 0;
  uint64_t deviceVisible = 0;
  /// Consecutive failed tryRecoverAll() attempts (resets on re-admission).
  uint32_t recoverAttempts = 0;
  /// Earliest time (on the RecoveryPolicy clock) the next re-admission
  /// attempt is due; 0 = due immediately. Observable so tests can verify
  /// the backoff schedule without sleeping through it.
  uint64_t nextRecoverAtMicros = 0;
};

/// Control plane for a fleet of N devices: one FaultTolerantController per
/// device, per-device FIFO work queues, and a shared support::ThreadPool
/// that drains the queues concurrently — updates are serialized within a
/// device while devices proceed independently. A single thread-safe
/// flay::VerdictCache is (optionally) shared across every device's
/// semantics-check engine, so a fleet running identical programs pays each
/// solver probe once fleet-wide instead of once per device.
///
/// Threading contract: enqueue() is safe from any thread; drain() runs the
/// queues to empty and must not be called concurrently with itself.
/// Construction and journal recovery also fan out across the pool (each
/// device's controller, initial install, and replay are independent).
class FleetController {
 public:
  FleetController(const p4::CheckedProgram& checked, FleetOptions options = {});
  ~FleetController();

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  size_t deviceCount() const { return members_.size(); }
  const std::string& deviceName(size_t device) const;

  /// Appends an update to `device`'s queue. False (and the update is
  /// dropped + counted) when the queue is at capacity or the device failed.
  bool enqueue(size_t device, const runtime::Update& update);
  /// Enqueues the update on every device; returns how many accepted it.
  size_t broadcast(const runtime::Update& update);

  /// Outcome of a fleet-wide bulk broadcast, summed over the devices that
  /// completed the stream.
  struct BulkBroadcastResult {
    size_t devices = 0;  ///< devices that completed the stream
    uint64_t applied = 0;
    uint64_t bypassed = 0;
    uint64_t rejected = 0;
  };

  /// Streams one bulk load (controller::applyBulk, i.e. the classifier-
  /// prefiltered chunked path) to every live device, concurrently over the
  /// shared pool. Devices receive identical streams, so equal fleet digests
  /// before imply equal fleet digests after. Bypasses the per-update queues:
  /// do not interleave with a concurrent drain(). A device whose stream
  /// throws is quarantined like in drain(); the rest complete.
  BulkBroadcastResult broadcastBulk(const std::vector<runtime::Update>& updates,
                                    flay::BulkLoadOptions options = {});

  /// Processes every queue to empty. Devices drain concurrently over the
  /// shared pool (jobs-way); within a device, updates apply strictly in
  /// enqueue order. Engine-rejected updates (std::invalid_argument) are
  /// counted and skipped; any other exception marks the device failed and
  /// abandons its remaining queue without disturbing the fleet.
  void drain();

  /// Attempts recovery of every degraded member that is due per the
  /// RecoveryPolicy backoff schedule, concurrently over the shared pool.
  /// Counted in fleet.readmission_attempts / fleet.readmissions. Returns the
  /// number of members still degraded afterwards. Same threading contract as
  /// drain(): not concurrent with itself or with drain().
  size_t tryRecoverAll();

  /// Installs `cb` as `device`'s epoch observer (see
  /// FaultTolerantController::setEpochCallback). Fires on the drain worker
  /// applying that device's updates. Set before the first drain.
  void setEpochCallback(size_t device, controller::EpochCallback cb);

  DeviceStatus status(size_t device) const;
  size_t degradedDevices() const;
  size_t failedDevices() const;

  /// One convergence check that cannot be silently wrong about loss: a
  /// member that dropped updates (bounded queue overflow or quarantine) saw
  /// a different stream, so its digest divergence is *expected* and
  /// attributed — while a lossless member's divergence is a hard failure.
  struct ConvergenceReport {
    /// Every live, lossless member shares `digest` and nothing was dropped
    /// or failed fleet-wide.
    bool converged = false;
    std::string digest;  ///< reference digest ("" if no live lossless member)
    std::vector<size_t> lossyDevices;      ///< dropped > 0 (divergence expected)
    std::vector<size_t> divergentDevices;  ///< lossless but digest mismatch
    std::vector<size_t> failedDevices;
    uint64_t droppedUpdates = 0;  ///< fleet-wide
  };
  ConvergenceReport convergence() const;

  /// Process-independent digest of one device's committed state (see
  /// FaultTolerantController::stateDigest).
  std::string stateDigest(size_t device) const;
  /// Digest over every device's digest, in device order, mixed with each
  /// device's dropped-update count: two fleets with equal fleet digests are
  /// member-by-member in identical states *and* identical loss accounting —
  /// a member that silently shed updates can never alias a clean fleet.
  std::string fleetDigest() const;

  /// Forces a checkpoint on every device (bounds journal replay on the next
  /// restart — the fleet-wide snapshot).
  void checkpointAll();

  controller::FaultTolerantController& controller(size_t device);
  const std::shared_ptr<flay::VerdictCache>& sharedCache() const {
    return cache_;
  }

  Transport transport() const { return options_.transport; }

  /// Fault injection (socket transport only): abruptly severs `device`'s
  /// link mid-stream, as if the daemon died. The agent sees EOF (the wire's
  /// torn-tail contract: unacknowledged batches never happened), its thread
  /// exits, and the member is quarantined with its unacknowledged and
  /// queued updates counted as dropped. No-op on the in-process transport.
  void disconnectAgent(size_t device);

 private:
  struct Member;

  void drainMember(Member& m);
  void drainMemberSocket(Member& m);
  void shutdownLinks();

  FleetOptions options_;
  /// Fingerprint of the fleet's program (socket transport): every agent's
  /// kHello must match or the handshake is rejected (shard-by-program).
  std::string programFingerprint_;
  std::shared_ptr<flay::VerdictCache> cache_;  // null when not shared
  std::unique_ptr<support::ThreadPool> pool_;  // null when jobs <= 1
  std::vector<std::unique_ptr<Member>> members_;
};

}  // namespace flay::fleet

#endif  // FLAY_FLEET_FLEET_H
