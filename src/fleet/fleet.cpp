#include "fleet/fleet.h"

#include <sys/stat.h>

#include <atomic>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "expr/canonical.h"
#include "fleet/agent.h"
#include "obs/obs.h"
#include "support/stopwatch.h"
#include "wire/socket.h"

namespace flay::fleet {

namespace {

struct FleetObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& applied = reg.counter("fleet.updates_applied");
  obs::Counter& rejected = reg.counter("fleet.updates_rejected");
  obs::Counter& dropped = reg.counter("fleet.updates_dropped");
  obs::Counter& deviceFailures = reg.counter("fleet.device_failures");
  obs::Counter& drains = reg.counter("fleet.drains");
  /// Gauge semantics on a monotone counter: the drain coordinator rewrites
  /// the value (reset + add) after every drain, so a scrape between drains
  /// reads the current number of degraded devices.
  obs::Counter& degradedGauge = reg.counter("fleet.degraded_devices");
  /// Quarantine re-admission: recovery attempts issued by tryRecoverAll(),
  /// successes, and members whose RecoveryPolicy attempt budget ran out.
  obs::Counter& readmissionAttempts = reg.counter("fleet.readmission_attempts");
  obs::Counter& readmissions = reg.counter("fleet.readmissions");
  obs::Counter& readmissionGiveups = reg.counter("fleet.readmission_giveups");
  obs::Histogram& applyUs = reg.histogram("fleet.apply_us");
  obs::Histogram& drainUs = reg.histogram("fleet.drain_us");
  obs::Histogram& queueDepth = reg.histogram("fleet.queue_depth");
  obs::Histogram& initUs = reg.histogram("fleet.device_init_us");
  obs::Histogram& readmissionBackoffUs =
      reg.histogram("fleet.readmission_backoff_us");
  /// Socket transport: batch frames written, raw bytes each way, and
  /// replicated-digest coherence checks (wire digest vs local state).
  obs::Counter& wireBatches = reg.counter("fleet.wire_batches");
  obs::Counter& wireBytesOut = reg.counter("fleet.wire_bytes_out");
  obs::Counter& wireBytesIn = reg.counter("fleet.wire_bytes_in");
  obs::Counter& wireDigestChecks = reg.counter("fleet.wire_digest_checks");

  static FleetObs& get() {
    static FleetObs instance;
    return instance;
  }
};

void ensureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create fleet state dir '" + dir + "'");
  }
}

}  // namespace

struct FleetController::Member {
  std::string name;
  std::unique_ptr<controller::SimulatedDevice> device;
  std::unique_ptr<controller::FaultTolerantController> ctl;
  std::string initError;  // non-empty: construction failed (failed is set)

  mutable std::mutex qmu;
  std::deque<runtime::Update> queue;

  // Written by the drain worker owning this member, read by any thread.
  std::atomic<bool> degraded{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> applied{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> retries{0};

  // Re-admission backoff state, owned by the tryRecoverAll() caller (writes
  // inside pool tasks are ordered by the pool join).
  uint32_t recoverAttempts = 0;
  uint64_t nextRecoverAtMicros = 0;
  std::mt19937_64 recoverRng{1};

  // Socket transport: the agent side of this member's socketpair runs in
  // agentThread (AgentEndpoint::serve over `endpoint`); the daemon side is
  // `link`. wireMu serializes every daemon-side use of the link (drain,
  // digest, recover, checkpoint, bulk can come from different pool workers
  // across calls). All null/unused on the in-process transport.
  std::unique_ptr<AgentEndpoint> endpoint;
  std::unique_ptr<AgentLink> link;
  std::thread agentThread;
  mutable std::mutex wireMu;

  obs::Counter* appliedCounter = nullptr;   // fleet.<name>.applied_updates
  obs::Counter* rejectedCounter = nullptr;  // fleet.<name>.rejected_updates
  obs::Counter* droppedCounter = nullptr;   // fleet.<name>.dropped_updates
};

FleetController::FleetController(const p4::CheckedProgram& checked,
                                 FleetOptions options)
    : options_(std::move(options)) {
  if (options_.devices == 0) options_.devices = 1;
  if (options_.sharedVerdictCache) {
    cache_ = std::make_shared<flay::VerdictCache>();
  }
  if (options_.jobs > 1) {
    pool_ = std::make_unique<support::ThreadPool>(options_.jobs - 1);
  }
  if (!options_.stateDirRoot.empty()) ensureDir(options_.stateDirRoot);
  if (options_.transport == Transport::kSocket) {
    programFingerprint_ = programFingerprint(checked);
  }

  obs::Registry& reg = obs::Registry::global();
  members_.reserve(options_.devices);
  for (size_t i = 0; i < options_.devices; ++i) {
    auto m = std::make_unique<Member>();
    m->name = "dev" + std::to_string(i);
    m->appliedCounter =
        &reg.counter("fleet." + m->name + ".applied_updates");
    m->rejectedCounter =
        &reg.counter("fleet." + m->name + ".rejected_updates");
    m->droppedCounter =
        &reg.counter("fleet." + m->name + ".dropped_updates");
    m->recoverRng.seed(options_.controller.seed + 0x5eedULL + i);
    members_.push_back(std::move(m));
  }

  // Bring the devices up concurrently: each member's journal recovery and
  // initial specialize+compile+install are independent of every other's,
  // and with the shared cache the first device to finish specializing warms
  // the verdicts the rest are about to ask for.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    tasks.push_back([this, &checked, i] {
      Member& m = *members_[i];
      obs::ScopedTimer timer(FleetObs::get().initUs, "fleet.device_init");
      try {
        controller::ControllerOptions copts = options_.controller;
        if (!options_.stateDirRoot.empty()) {
          copts.stateDir = options_.stateDirRoot + "/" + m.name;
        }
        copts.seed = options_.controller.seed + i;
        if (cache_ != nullptr) {
          copts.flay.sharedVerdictCache = cache_;
          copts.flay.verdictScopePrefix = m.name + "/";
        }
        if (options_.attachDevices) {
          controller::FaultPlan plan = options_.faultPlan;
          plan.seed = options_.faultPlan.seed + i;
          m.device = std::make_unique<controller::SimulatedDevice>(
              plan, options_.deviceModel, options_.deviceCompiler);
        }
        uint64_t ctlSeed = copts.seed;
        m.ctl = std::make_unique<controller::FaultTolerantController>(
            checked, m.device.get(), std::move(copts));
        m.degraded.store(m.ctl->degraded(), std::memory_order_relaxed);
        if (options_.transport == Transport::kSocket) {
          // Stand the member's agent up on the far end of a socketpair:
          // same controller object, but every update now crosses the wire.
          auto fds = wire::socketPair();
          m.endpoint = std::make_unique<AgentEndpoint>(
              checked, *m.ctl, wire::FrameChannel(std::move(fds.second)),
              m.name, ctlSeed);
          m.agentThread = std::thread([ep = m.endpoint.get()] {
            try {
              ep->serve();
            } catch (...) {
              // serve() reports failures through its return value and the
              // kError frame it already sent; nothing may escape a thread.
            }
          });
          m.link = std::make_unique<AgentLink>(
              std::move(fds.first), m.name, options_.wireBatchSize,
              options_.wireWindowBatches);
          wire::Hello hello = m.link->handshake();
          if (hello.programFingerprint != programFingerprint_) {
            m.link->reject("program fingerprint mismatch: daemon runs " +
                           programFingerprint_);
            throw std::runtime_error("agent " + m.name +
                                     " presented a different program");
          }
          m.link->accept();
        }
      } catch (const std::exception& e) {
        m.initError = e.what();
        m.failed.store(true, std::memory_order_relaxed);
        FleetObs::get().deviceFailures.add(1);
      }
    });
  }
  if (pool_ != nullptr) {
    pool_->run(std::move(tasks));
  } else {
    for (auto& t : tasks) t();
  }

  FleetObs& fobs = FleetObs::get();
  fobs.degradedGauge.reset();
  fobs.degradedGauge.add(degradedDevices());
}

void FleetController::shutdownLinks() {
  for (auto& mp : members_) {
    Member& m = *mp;
    if (m.link != nullptr) {
      std::lock_guard<std::mutex> lock(m.wireMu);
      try {
        m.link->bye();  // closes the fd either way; agent sees EOF/ByeAck
      } catch (...) {
      }
    }
    if (m.agentThread.joinable()) m.agentThread.join();
  }
}

FleetController::~FleetController() { shutdownLinks(); }

const std::string& FleetController::deviceName(size_t device) const {
  return members_.at(device)->name;
}

bool FleetController::enqueue(size_t device, const runtime::Update& update) {
  Member& m = *members_.at(device);
  FleetObs& fobs = FleetObs::get();
  if (m.failed.load(std::memory_order_relaxed)) {
    m.dropped.fetch_add(1, std::memory_order_relaxed);
    m.droppedCounter->add(1);
    fobs.dropped.add(1);
    return false;
  }
  std::lock_guard<std::mutex> lock(m.qmu);
  if (options_.queueCapacity != 0 &&
      m.queue.size() >= options_.queueCapacity) {
    m.dropped.fetch_add(1, std::memory_order_relaxed);
    m.droppedCounter->add(1);
    fobs.dropped.add(1);
    return false;
  }
  m.queue.push_back(update);
  return true;
}

size_t FleetController::broadcast(const runtime::Update& update) {
  size_t accepted = 0;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (enqueue(i, update)) ++accepted;
  }
  return accepted;
}

FleetController::BulkBroadcastResult FleetController::broadcastBulk(
    const std::vector<runtime::Update>& updates,
    flay::BulkLoadOptions options) {
  FleetObs& fobs = FleetObs::get();
  std::mutex rmu;
  BulkBroadcastResult result;
  // Socket transport streams texts; render them once for every member.
  std::shared_ptr<std::vector<std::string>> texts;
  if (options_.transport == Transport::kSocket) {
    texts = std::make_shared<std::vector<std::string>>();
    texts->reserve(updates.size());
    for (const runtime::Update& u : updates) texts->push_back(u.toString());
  }
  std::vector<std::function<void()>> tasks;
  for (auto& mp : members_) {
    Member& m = *mp;
    if (m.failed.load(std::memory_order_relaxed) || m.ctl == nullptr) {
      continue;
    }
    tasks.push_back([&, this, texts] {
      try {
        uint64_t applied = 0, bypassed = 0, rejected = 0, retries = 0;
        bool degraded = false;
        if (options_.transport == Transport::kSocket && m.link != nullptr &&
            m.link->alive()) {
          std::lock_guard<std::mutex> lock(m.wireMu);
          wire::BulkReply r = m.link->bulk(*texts, options.chunkSize,
                                           options.classifierPrefilter);
          applied = r.applied;
          bypassed = r.bypassed;
          rejected = r.rejected;
          retries = r.retries;
          degraded = r.degraded;
        } else {
          controller::BulkApplyResult r = m.ctl->applyBulk(updates, options);
          applied = r.report.applied;
          bypassed = r.report.bypassed;
          rejected = r.report.rejected;
          retries = r.retries;
          degraded = r.degraded;
        }
        m.applied.fetch_add(applied, std::memory_order_relaxed);
        m.retries.fetch_add(retries, std::memory_order_relaxed);
        m.rejected.fetch_add(rejected, std::memory_order_relaxed);
        m.degraded.store(degraded, std::memory_order_relaxed);
        m.appliedCounter->add(applied);
        m.rejectedCounter->add(rejected);
        fobs.applied.add(applied);
        fobs.rejected.add(rejected);
        std::lock_guard<std::mutex> lock(rmu);
        ++result.devices;
        result.applied += applied;
        result.bypassed += bypassed;
        result.rejected += rejected;
      } catch (const std::exception&) {
        // Same quarantine contract as drainMember: the device's state is
        // unknown, so it stops taking work; the rest of the fleet finishes.
        m.failed.store(true, std::memory_order_relaxed);
        fobs.deviceFailures.add(1);
      }
    });
  }
  if (pool_ != nullptr) {
    pool_->run(std::move(tasks));
  } else {
    for (auto& t : tasks) t();
  }
  fobs.degradedGauge.reset();
  fobs.degradedGauge.add(degradedDevices());
  return result;
}

void FleetController::drainMember(Member& m) {
  FleetObs& fobs = FleetObs::get();
  for (;;) {
    runtime::Update update;
    {
      std::lock_guard<std::mutex> lock(m.qmu);
      if (m.queue.empty()) return;
      update = std::move(m.queue.front());
      m.queue.pop_front();
    }
    try {
      obs::ScopedTimer timer(fobs.applyUs, "fleet.apply");
      controller::ApplyResult r = m.ctl->apply(update);
      m.applied.fetch_add(1, std::memory_order_relaxed);
      m.retries.fetch_add(r.retries, std::memory_order_relaxed);
      m.degraded.store(r.degraded, std::memory_order_relaxed);
      m.appliedCounter->add(1);
      fobs.applied.add(1);
    } catch (const std::invalid_argument&) {
      // Malformed for the current state (e.g. duplicate insert): the
      // controller already rolled back; skip and keep the stream flowing.
      m.rejected.fetch_add(1, std::memory_order_relaxed);
      m.rejectedCounter->add(1);
      fobs.rejected.add(1);
    } catch (const std::exception&) {
      // Anything else means this device's pipeline is in an unknown state:
      // quarantine it (drop its backlog, refuse new work) so the rest of
      // the fleet keeps moving.
      m.failed.store(true, std::memory_order_relaxed);
      fobs.deviceFailures.add(1);
      std::lock_guard<std::mutex> lock(m.qmu);
      m.dropped.fetch_add(m.queue.size(), std::memory_order_relaxed);
      m.droppedCounter->add(m.queue.size());
      fobs.dropped.add(m.queue.size());
      m.queue.clear();
      return;
    }
  }
}

void FleetController::drainMemberSocket(Member& m) {
  FleetObs& fobs = FleetObs::get();
  // Swap the queue out whole: enqueue() stays wait-free against the flush,
  // and within the member order is preserved (batches carry queue order).
  std::vector<runtime::Update> batch;
  {
    std::lock_guard<std::mutex> lock(m.qmu);
    batch.assign(std::make_move_iterator(m.queue.begin()),
                 std::make_move_iterator(m.queue.end()));
    m.queue.clear();
  }
  if (batch.empty()) return;
  std::lock_guard<std::mutex> wlock(m.wireMu);
  try {
    for (const runtime::Update& u : batch) m.link->enqueue(u.toString());
    AgentLink::FlushDelta delta = m.link->flush();
    m.applied.fetch_add(delta.applied, std::memory_order_relaxed);
    m.rejected.fetch_add(delta.rejected, std::memory_order_relaxed);
    m.retries.fetch_add(delta.retries, std::memory_order_relaxed);
    m.degraded.store(delta.degraded, std::memory_order_relaxed);
    m.appliedCounter->add(delta.applied);
    m.rejectedCounter->add(delta.rejected);
    fobs.applied.add(delta.applied);
    fobs.rejected.add(delta.rejected);
    fobs.wireBatches.add(delta.batches);
    fobs.wireBytesOut.add(delta.bytesOut);
    fobs.wireBytesIn.add(delta.bytesIn);
  } catch (const wire::WireError&) {
    // The link is broken (agent error frame, bad stream, dead socket):
    // same quarantine contract as drainMember, with the unacknowledged
    // wire tail counted as dropped — those updates were never committed.
    m.failed.store(true, std::memory_order_relaxed);
    fobs.deviceFailures.add(1);
    size_t lost = m.link->pending();
    {
      std::lock_guard<std::mutex> lock(m.qmu);
      lost += m.queue.size();
      m.queue.clear();
    }
    m.dropped.fetch_add(lost, std::memory_order_relaxed);
    m.droppedCounter->add(lost);
    fobs.dropped.add(lost);
  }
}

void FleetController::drain() {
  FleetObs& fobs = FleetObs::get();
  obs::ScopedTimer timer(fobs.drainUs, "fleet.drain");
  fobs.drains.add(1);
  const bool socket = options_.transport == Transport::kSocket;
  for (;;) {
    std::vector<std::function<void()>> tasks;
    for (auto& mp : members_) {
      Member& m = *mp;
      if (m.failed.load(std::memory_order_relaxed)) continue;
      size_t depth;
      {
        std::lock_guard<std::mutex> lock(m.qmu);
        depth = m.queue.size();
      }
      if (depth == 0) continue;
      fobs.queueDepth.record(depth);
      tasks.push_back([this, &m, socket] {
        if (socket) {
          drainMemberSocket(m);
        } else {
          drainMember(m);
        }
      });
    }
    if (tasks.empty()) break;  // every queue empty (or its device failed)
    if (pool_ != nullptr) {
      pool_->run(std::move(tasks));
    } else {
      for (auto& t : tasks) t();
    }
  }
  fobs.degradedGauge.reset();
  fobs.degradedGauge.add(degradedDevices());
}

size_t FleetController::tryRecoverAll() {
  FleetObs& fobs = FleetObs::get();
  const RecoveryPolicy& policy = options_.recovery;
  // The schedule runs on the policy clock so tests (and replays) can drive
  // it deterministically; the default is the wall clock.
  auto nowMicros = [&policy]() -> uint64_t {
    return policy.clock ? policy.clock() : support::Stopwatch::nowMicros();
  };
  uint64_t now = nowMicros();
  std::vector<std::function<void()>> tasks;
  for (auto& mp : members_) {
    Member& m = *mp;
    if (m.failed.load(std::memory_order_relaxed) || m.ctl == nullptr) continue;
    if (!m.degraded.load(std::memory_order_relaxed)) {
      m.recoverAttempts = 0;  // inline recovery (or never degraded): reset
      m.nextRecoverAtMicros = 0;
      continue;
    }
    if (policy.maxAttempts != 0 && m.recoverAttempts >= policy.maxAttempts) {
      continue;  // given up (counted once, below, when the budget ran out)
    }
    if (now < m.nextRecoverAtMicros) continue;  // backing off
    tasks.push_back([this, &m, &fobs, &policy, nowMicros] {
      ++m.recoverAttempts;
      fobs.readmissionAttempts.add(1);
      bool ok = false;
      try {
        if (options_.transport == Transport::kSocket && m.link != nullptr &&
            m.link->alive()) {
          // Route the attempt over the wire: the agent runs tryRecover()
          // and reports back (same call it makes for an external daemon).
          std::lock_guard<std::mutex> lock(m.wireMu);
          wire::RecoverReply r = m.link->recover();
          ok = r.recovered;
          m.degraded.store(r.degraded, std::memory_order_relaxed);
        } else {
          ok = m.ctl->tryRecover();
          m.degraded.store(m.ctl->degraded(), std::memory_order_relaxed);
        }
      } catch (const std::exception&) {
        m.failed.store(true, std::memory_order_relaxed);
        fobs.deviceFailures.add(1);
        return;
      }
      if (ok) {
        m.recoverAttempts = 0;
        m.nextRecoverAtMicros = 0;
        fobs.readmissions.add(1);
        return;
      }
      if (policy.maxAttempts != 0 &&
          m.recoverAttempts >= policy.maxAttempts) {
        fobs.readmissionGiveups.add(1);
        return;
      }
      uint64_t base =
          policy.backoffBaseMicros == 0 ? 1 : policy.backoffBaseMicros;
      uint64_t exp = m.recoverAttempts >= 63
                         ? policy.backoffMaxMicros
                         : base << (m.recoverAttempts - 1);
      uint64_t capped = std::min(exp, policy.backoffMaxMicros);
      std::uniform_int_distribution<uint64_t> jitter(0, base - 1);
      uint64_t backoff = capped + jitter(m.recoverRng);
      fobs.readmissionBackoffUs.record(backoff);
      m.nextRecoverAtMicros = nowMicros() + backoff;
    });
  }
  if (pool_ != nullptr) {
    pool_->run(std::move(tasks));
  } else {
    for (auto& t : tasks) t();
  }
  fobs.degradedGauge.reset();
  fobs.degradedGauge.add(degradedDevices());
  return degradedDevices();
}

void FleetController::setEpochCallback(size_t device,
                                       controller::EpochCallback cb) {
  Member& m = *members_.at(device);
  if (m.ctl == nullptr) {
    throw std::runtime_error("device " + m.name +
                             " failed to initialize: " + m.initError);
  }
  m.ctl->setEpochCallback(std::move(cb));
}

DeviceStatus FleetController::status(size_t device) const {
  const Member& m = *members_.at(device);
  DeviceStatus s;
  s.name = m.name;
  s.degraded = m.degraded.load(std::memory_order_relaxed);
  s.failed = m.failed.load(std::memory_order_relaxed);
  s.applied = m.applied.load(std::memory_order_relaxed);
  s.rejected = m.rejected.load(std::memory_order_relaxed);
  s.dropped = m.dropped.load(std::memory_order_relaxed);
  s.retries = m.retries.load(std::memory_order_relaxed);
  s.replayed = m.ctl != nullptr ? m.ctl->replayedUpdates() : 0;
  s.committed = m.ctl != nullptr ? m.ctl->committedUpdates() : 0;
  s.deviceVisible = m.ctl != nullptr ? m.ctl->deviceVisibleUpdates() : 0;
  s.recoverAttempts = m.recoverAttempts;
  s.nextRecoverAtMicros = m.nextRecoverAtMicros;
  {
    std::lock_guard<std::mutex> lock(m.qmu);
    s.queued = m.queue.size();
  }
  return s;
}

size_t FleetController::degradedDevices() const {
  size_t n = 0;
  for (const auto& m : members_) {
    if (m->degraded.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

size_t FleetController::failedDevices() const {
  size_t n = 0;
  for (const auto& m : members_) {
    if (m->failed.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

controller::FaultTolerantController& FleetController::controller(
    size_t device) {
  Member& m = *members_.at(device);
  if (m.ctl == nullptr) {
    throw std::runtime_error("device " + m.name +
                             " failed to initialize: " + m.initError);
  }
  return *m.ctl;
}

std::string FleetController::stateDigest(size_t device) const {
  const Member& m = *members_.at(device);
  if (m.ctl == nullptr) {
    throw std::runtime_error("device " + m.name +
                             " failed to initialize: " + m.initError);
  }
  std::string local = m.ctl->stateDigest();
  if (options_.transport == Transport::kSocket && m.link != nullptr &&
      m.link->alive() && !m.failed.load(std::memory_order_relaxed)) {
    // Replicated-digest coherence: ask the agent for its view of the same
    // state over the wire and insist the replicas agree. For an in-process
    // agent this exercises the protocol; for an external one it is the
    // actual coherence check.
    std::lock_guard<std::mutex> lock(m.wireMu);
    try {
      wire::DigestReply reply = m.link->digest();
      FleetObs::get().wireDigestChecks.add(1);
      if (reply.digest != local) {
        throw std::runtime_error("replicated digest incoherence on " +
                                 m.name + ": agent " + reply.digest +
                                 " vs controller " + local);
      }
    } catch (const wire::WireError&) {
      // The link died answering; the local committed state stays
      // authoritative (digests must remain readable for quarantined
      // members, exactly as on the in-process transport).
    }
  }
  return local;
}

std::string FleetController::fleetDigest() const {
  expr::Fnv fnv;
  for (size_t i = 0; i < members_.size(); ++i) {
    fnv.mix(members_[i]->name);
    fnv.mix(stateDigest(i));
    // Loss accounting is part of the fleet's observable state: a member
    // that dropped updates must never digest-equal a member that applied
    // them all, even if its committed state happens to match.
    fnv.mix(std::to_string(
        members_[i]->dropped.load(std::memory_order_relaxed)));
  }
  return fnv.hex();
}

FleetController::ConvergenceReport FleetController::convergence() const {
  ConvergenceReport report;
  // Reference digest: the first live, lossless member.
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member& m = *members_[i];
    uint64_t dropped = m.dropped.load(std::memory_order_relaxed);
    report.droppedUpdates += dropped;
    if (m.failed.load(std::memory_order_relaxed) || m.ctl == nullptr) {
      report.failedDevices.push_back(i);
      continue;
    }
    if (dropped != 0) {
      report.lossyDevices.push_back(i);
      continue;
    }
    std::string digest = stateDigest(i);
    if (report.digest.empty()) {
      report.digest = digest;
    } else if (digest != report.digest) {
      report.divergentDevices.push_back(i);
    }
  }
  report.converged = report.failedDevices.empty() &&
                     report.lossyDevices.empty() &&
                     report.divergentDevices.empty() && !report.digest.empty();
  return report;
}

void FleetController::checkpointAll() {
  for (auto& mp : members_) {
    Member& m = *mp;
    if (m.ctl == nullptr || m.failed.load(std::memory_order_relaxed)) {
      continue;
    }
    if (options_.transport == Transport::kSocket && m.link != nullptr &&
        m.link->alive()) {
      std::lock_guard<std::mutex> lock(m.wireMu);
      try {
        m.link->checkpoint();
        continue;
      } catch (const wire::WireError&) {
        // A link that cannot deliver a checkpoint request is broken;
        // quarantine, same as a failed drain.
        m.failed.store(true, std::memory_order_relaxed);
        FleetObs::get().deviceFailures.add(1);
        continue;
      }
    }
    m.ctl->checkpointNow();
  }
}

void FleetController::disconnectAgent(size_t device) {
  Member& m = *members_.at(device);
  if (m.link == nullptr) return;  // in-process transport: nothing to sever
  FleetObs& fobs = FleetObs::get();
  size_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(m.wireMu);
    lost = m.link->pending();
    m.link->disconnect();
  }
  if (m.agentThread.joinable()) m.agentThread.join();
  m.failed.store(true, std::memory_order_relaxed);
  fobs.deviceFailures.add(1);
  {
    std::lock_guard<std::mutex> lock(m.qmu);
    lost += m.queue.size();
    m.queue.clear();
  }
  m.dropped.fetch_add(lost, std::memory_order_relaxed);
  m.droppedCounter->add(lost);
  fobs.dropped.add(lost);
}

}  // namespace flay::fleet
