#ifndef FLAY_FLEET_AGENT_H
#define FLAY_FLEET_AGENT_H

// The two halves of a controller-daemon <-> device-agent link.
//
// AgentEndpoint is the agent side: it owns the serve loop over one framed
// connection, decoding update batches back into runtime::Update (the same
// schema-directed fromString the journal uses) and driving one
// FaultTolerantController. It runs identically as a thread on the far end
// of a socketpair (FleetController's socket transport) or as the body of a
// separate `flayc agent` process connected over a Unix-domain socket.
//
// AgentLink is the daemon side: a nonblocking descriptor with pipelined
// batch writes and batched acks — up to windowBatches batch frames are in
// flight before the first ack is required, and acks are drained while
// writes are still streaming, so neither side can deadlock on a full
// socket buffer and the link's throughput is bounded by the agent's apply
// rate, not by round trips.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "wire/socket.h"

namespace flay::fleet {

/// Canonical fingerprint of a checked program (FNV over the normalized
/// printed source). Hello frames carry it so a daemon only ever dispatches
/// a program's updates to agents actually running that program (shard-by-
/// program), and so both ends agree on the schema `fromString` decodes
/// against.
std::string programFingerprint(const p4::CheckedProgram& checked);

/// Counters an AgentEndpoint accumulates over its lifetime.
struct AgentStats {
  uint64_t batches = 0;
  uint64_t applied = 0;
  uint64_t rejected = 0;
  uint64_t retries = 0;
  uint64_t bulkLoads = 0;
};

/// Agent side of one link. serve() blocks until the daemon says kBye or
/// closes the connection (both clean), or a fatal error occurs (an
/// undecodable frame, an undecodable update, or a non-update exception out
/// of the controller — the device's state is then unknown). Fatal paths
/// send an explicit kError frame before returning false.
class AgentEndpoint {
 public:
  AgentEndpoint(const p4::CheckedProgram& checked,
                controller::FaultTolerantController& ctl,
                wire::FrameChannel channel, std::string deviceName,
                uint64_t seed = 0);

  bool serve();

  const AgentStats& stats() const { return stats_; }
  const std::string& lastError() const { return lastError_; }

 private:
  bool handleBatch(const wire::Frame& f);
  bool handleBulk(const wire::Frame& f);
  bool protocolError(uint32_t code, const std::string& detail);
  wire::Ack currentAck(uint64_t upToSeq) const;

  const p4::CheckedProgram& checked_;
  controller::FaultTolerantController& ctl_;
  wire::FrameChannel channel_;
  std::string name_;
  uint64_t seed_ = 0;
  std::string fingerprint_;
  AgentStats stats_;
  std::string lastError_;
  std::vector<std::string> bulkTexts_;  // chunks buffered until `last`
};

/// Daemon side of one link: pipelined, windowed batch writes over a
/// nonblocking descriptor. Every method that touches the wire throws
/// WireError if the link is (or becomes) dead; after a throw the link stays
/// dead — `pending()` then counts the updates that were never acknowledged.
class AgentLink {
 public:
  AgentLink(wire::Fd fd, std::string label, size_t batchSize = 32,
            size_t windowBatches = 8);
  ~AgentLink();

  AgentLink(const AgentLink&) = delete;
  AgentLink& operator=(const AgentLink&) = delete;

  /// Blocks for the agent's kHello (the agent speaks first).
  wire::Hello handshake();
  void accept();
  void reject(const std::string& why);  // sends HelloAck{false}; closes

  void enqueue(std::string updateText);
  size_t pending() const { return pending_.size(); }

  /// Per-flush deltas (acks carry cumulative counters; flush() differences
  /// them so callers can fold results into their own accounting).
  struct FlushDelta {
    uint64_t applied = 0;
    uint64_t rejected = 0;
    uint64_t retries = 0;
    bool degraded = false;
    uint64_t committed = 0;
    uint64_t deviceVisible = 0;
    uint64_t batches = 0;
    uint64_t bytesOut = 0;
    uint64_t bytesIn = 0;
  };

  /// Writes every pending update as pipelined batch frames and returns once
  /// the agent has acknowledged all of them.
  FlushDelta flush();

  wire::DigestReply digest();
  wire::RecoverReply recover();
  void checkpoint();
  wire::BulkReply bulk(const std::vector<std::string>& texts,
                       uint64_t chunkSize, bool classifierPrefilter);

  /// Best-effort clean shutdown (kBye / kByeAck); always closes.
  void bye();
  /// Abrupt close — fault injection: the daemon dies mid-stream. The agent
  /// sees EOF; anything unacknowledged is gone.
  void disconnect();

  bool alive() const { return fd_.valid() && !dead_; }
  const std::string& label() const { return label_; }
  const std::string& deathReason() const { return deathReason_; }

 private:
  [[noreturn]] void die(const std::string& why);
  void pumpRead(FlushDelta* delta);
  /// Processes one inbound frame during flush (acks advance the window).
  void consume(const wire::Frame& f);
  wire::Frame waitFrame(wire::FrameType expect, int timeoutMs);
  void writeAllBlocking(const std::vector<uint8_t>& bytes);

  wire::Fd fd_;
  std::string label_;
  size_t batchSize_;
  size_t windowBatches_;
  wire::FrameDecoder decoder_;
  std::deque<std::string> pending_;
  size_t inFlight_ = 0;    // batches written but not yet acknowledged
  uint64_t seq_ = 0;       // seq of the last update handed to flush()'s wire
  uint64_t ackedSeq_ = 0;  // seq of the last update the agent acknowledged
  wire::Ack lastAck_;      // cumulative counters from the latest ack
  bool sawAck_ = false;
  bool dead_ = false;
  std::string deathReason_;
  int timeoutMs_ = 120000;
};

}  // namespace flay::fleet

#endif  // FLAY_FLEET_AGENT_H
