#ifndef FLAY_P4_TYPECHECK_H
#define FLAY_P4_TYPECHECK_H

#include <string>
#include <unordered_map>
#include <vector>

#include "p4/ast.h"

namespace flay::p4 {

/// A flattened scalar location: a header/struct field, a standard-metadata
/// field, or a header validity bit. Canonical names are dotted paths rooted
/// at `hdr`, `meta`, or `sm` (e.g. "hdr.eth.dst", "hdr.eth.$valid").
struct FieldInfo {
  std::string canonical;
  uint32_t width = 0;   // 1 for bool-typed fields
  bool isBool = false;  // true for validity bits and bool fields
  bool isValidity = false;
};

/// A header instance inside the flattened `hdr` struct.
struct HeaderInstance {
  std::string canonical;  // "hdr.eth"
  std::string typeName;
  std::vector<std::string> fieldCanonicals;  // in declaration order
  std::string validityCanonical;             // "hdr.eth.$valid"
};

/// Symbol information derived by the type checker, needed by every consumer
/// of a checked program (interpreter, symbolic executor, resource model).
class TypeEnv {
 public:
  /// All scalar locations in deterministic (declaration) order.
  const std::vector<FieldInfo>& fields() const { return fields_; }
  const FieldInfo* findField(const std::string& canonical) const;

  const std::vector<HeaderInstance>& headers() const { return headers_; }
  const HeaderInstance* findHeader(const std::string& canonical) const;

  const std::unordered_map<std::string, BitVec>& consts() const {
    return consts_;
  }

  // Mutators used by the checker.
  void addField(FieldInfo f);
  void addHeader(HeaderInstance h);
  void addConst(const std::string& name, BitVec value);

 private:
  std::vector<FieldInfo> fields_;
  std::unordered_map<std::string, size_t> fieldIndex_;
  std::vector<HeaderInstance> headers_;
  std::unordered_map<std::string, size_t> headerIndex_;
  std::unordered_map<std::string, BitVec> consts_;
};

/// The standard-metadata fields every P4-lite program sees as `sm.*`.
/// egress_spec == kDropPort (511) marks the packet for drop, matching
/// v1model conventions.
inline constexpr uint32_t kDropPort = 511;
inline constexpr uint32_t kPortWidth = 9;

/// Type checks `prog` in place: annotates every expression with its width
/// and resolution, evaluates constants, and validates structure (pipeline
/// wiring, table actions, select cases, extern calls). Returns the TypeEnv.
/// Errors accumulate in `diag`.
TypeEnv typeCheck(Program& prog, DiagnosticEngine& diag);

/// Convenience: parse + check, throwing CompileError on any diagnostic.
struct CheckedProgram {
  Program program;
  TypeEnv env;
};
CheckedProgram loadProgramFromString(std::string_view source);
CheckedProgram loadProgramFromFile(const std::string& path);

}  // namespace flay::p4

#endif  // FLAY_P4_TYPECHECK_H
