#include "p4/typecheck.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "p4/parser.h"

namespace flay::p4 {

// ---------------------------------------------------------------------------
// TypeEnv
// ---------------------------------------------------------------------------

const FieldInfo* TypeEnv::findField(const std::string& canonical) const {
  auto it = fieldIndex_.find(canonical);
  return it == fieldIndex_.end() ? nullptr : &fields_[it->second];
}

const HeaderInstance* TypeEnv::findHeader(const std::string& canonical) const {
  auto it = headerIndex_.find(canonical);
  return it == headerIndex_.end() ? nullptr : &headers_[it->second];
}

void TypeEnv::addField(FieldInfo f) {
  fieldIndex_.emplace(f.canonical, fields_.size());
  fields_.push_back(std::move(f));
}

void TypeEnv::addHeader(HeaderInstance h) {
  headerIndex_.emplace(h.canonical, headers_.size());
  headers_.push_back(std::move(h));
}

void TypeEnv::addConst(const std::string& name, BitVec value) {
  consts_.emplace(name, std::move(value));
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

namespace {

class TypeChecker {
 public:
  TypeChecker(Program& prog, DiagnosticEngine& diag)
      : prog_(prog), diag_(diag) {}

  TypeEnv run() {
    buildEnv();
    checkConsts();
    for (auto& p : prog_.parsers) checkParser(p);
    for (auto& c : prog_.controls) checkControl(c);
    for (auto& d : prog_.deparsers) checkDeparser(d);
    checkPipeline();
    return std::move(env_);
  }

 private:
  /// Lexical scope for locals/action parameters during statement checking.
  struct Scope {
    std::unordered_map<std::string, FieldInfo> locals;
    const ActionDecl* action = nullptr;   // non-null inside action bodies
    ControlDecl* control = nullptr;       // non-null inside controls
    ParserDecl* parser = nullptr;         // non-null inside parsers
  };

  // ----- Environment construction -----------------------------------------

  void buildEnv() {
    // Standard metadata.
    env_.addField({"sm.ingress_port", kPortWidth, false, false});
    env_.addField({"sm.egress_spec", kPortWidth, false, false});
    env_.addField({"sm.packet_length", 32, false, false});

    flattenStructVar("hdr", "headers");
    if (prog_.findStructType("metadata") != nullptr) {
      flattenStructVar("meta", "metadata");
    }
  }

  void flattenStructVar(const std::string& root, const std::string& typeName) {
    const StructTypeDecl* st = prog_.findStructType(typeName);
    if (st == nullptr) {
      diag_.error({}, "program must declare struct '" + typeName + "'");
      return;
    }
    flattenStruct(root, *st);
  }

  void flattenStruct(const std::string& prefix, const StructTypeDecl& st) {
    for (const auto& f : st.fields) {
      std::string canonical = prefix + "." + f.name;
      if (f.isScalar()) {
        // Scalar metadata field. Bool fields become width-1 vectors so they
        // can participate in keys and arithmetic like in P4's v1model.
        env_.addField({canonical, f.width, false, false});
        continue;
      }
      if (const HeaderTypeDecl* h = prog_.findHeaderType(f.typeName)) {
        HeaderInstance inst;
        inst.canonical = canonical;
        inst.typeName = h->name;
        inst.validityCanonical = canonical + ".$valid";
        env_.addField({inst.validityCanonical, 1, true, true});
        for (const auto& hf : h->fields) {
          std::string fieldCanonical = canonical + "." + hf.name;
          env_.addField({fieldCanonical, hf.width, false, false});
          inst.fieldCanonicals.push_back(fieldCanonical);
        }
        env_.addHeader(std::move(inst));
      } else if (const StructTypeDecl* s = prog_.findStructType(f.typeName)) {
        flattenStruct(canonical, *s);
      } else {
        diag_.error(f.loc, "unknown type '" + f.typeName + "' for field '" +
                               f.name + "'");
      }
    }
  }

  // ----- Constant evaluation ------------------------------------------------

  /// Evaluates an already-checked expression that must be compile-time
  /// constant (literals, consts, and operators over them).
  std::optional<BitVec> evalConst(const Expr& e) {
    switch (e.op) {
      case ExprOp::kIntLit:
        return e.value;
      case ExprOp::kPath:
        if (e.pathKind == PathKind::kConst) return e.value;
        return std::nullopt;
      case ExprOp::kUnary: {
        auto a = evalConst(*e.a);
        if (!a) return std::nullopt;
        switch (e.unOp) {
          case UnOp::kBitNot: return a->bitNot();
          case UnOp::kNeg: return a->neg();
          case UnOp::kLNot: return std::nullopt;  // bool consts not supported
        }
        return std::nullopt;
      }
      case ExprOp::kBinary: {
        auto a = evalConst(*e.a);
        auto b = evalConst(*e.b);
        if (!a || !b) return std::nullopt;
        switch (e.binOp) {
          case BinOp::kAdd: return a->add(*b);
          case BinOp::kSub: return a->sub(*b);
          case BinOp::kMul: return a->mul(*b);
          case BinOp::kDiv: return a->udiv(*b);
          case BinOp::kMod: return a->urem(*b);
          case BinOp::kBitAnd: return a->bitAnd(*b);
          case BinOp::kBitOr: return a->bitOr(*b);
          case BinOp::kBitXor: return a->bitXor(*b);
          case BinOp::kShl:
            return a->shl(static_cast<uint32_t>(b->toUint64()));
          case BinOp::kShr:
            return a->lshr(static_cast<uint32_t>(b->toUint64()));
          case BinOp::kConcat: return a->concat(*b);
          default: return std::nullopt;
        }
      }
      case ExprOp::kSlice: {
        auto a = evalConst(*e.a);
        if (!a) return std::nullopt;
        return a->slice(e.sliceHi, e.sliceLo);
      }
      case ExprOp::kCast: {
        auto a = evalConst(*e.a);
        if (!a) return std::nullopt;
        return a->width() <= e.castWidth ? a->zext(e.castWidth)
                                         : a->trunc(e.castWidth);
      }
      default:
        return std::nullopt;
    }
  }

  void checkConsts() {
    Scope scope;
    for (auto& c : prog_.consts) {
      checkExpr(*c.value, scope, c.width, /*expectBool=*/false);
      auto v = evalConst(*c.value);
      if (!v) {
        diag_.error(c.loc, "const '" + c.name +
                               "' must have a compile-time constant value");
        v = BitVec::zero(c.width);
      }
      env_.addConst(c.name, *v);
    }
  }

  // ----- Expression checking ------------------------------------------------

  /// Checks `e` in `scope`. `expectedWidth` (when > 0) supplies the width
  /// context for unsized literals; `expectBool` demands a boolean.
  /// On exit e.width/e.isBool are set.
  void checkExpr(Expr& e, Scope& scope, uint32_t expectedWidth,
                 bool expectBool) {
    switch (e.op) {
      case ExprOp::kIntLit: {
        uint32_t w = e.literalWidth.value_or(expectedWidth);
        if (w == 0) {
          diag_.error(e.loc, "cannot infer width of literal '" +
                                 e.literalText + "'; use N w syntax or add "
                                 "context");
          w = 32;
        }
        try {
          // Parse at a generous width first to detect overflow.
          BitVec wide = BitVec::parse(std::max(w * 2, 64u), e.literalText);
          e.value = wide.trunc(w);
          if (!e.value.zext(wide.width()).eq(wide)) {
            diag_.error(e.loc, "literal '" + e.literalText +
                                   "' does not fit in bit<" +
                                   std::to_string(w) + ">");
          }
        } catch (const std::invalid_argument&) {
          diag_.error(e.loc, "malformed literal '" + e.literalText + "'");
          e.value = BitVec::zero(w);
        }
        e.width = w;
        break;
      }
      case ExprOp::kBoolLit:
        e.isBool = true;
        e.width = 0;
        break;
      case ExprOp::kPath:
        resolvePath(e, scope);
        break;
      case ExprOp::kIsValid: {
        std::string canonical = joinPath(e.path);
        if (env_.findHeader(canonical) == nullptr) {
          diag_.error(e.loc, "isValid() target '" + canonical +
                                 "' is not a header instance");
        }
        e.canonical = canonical;
        e.isBool = true;
        break;
      }
      case ExprOp::kUnary:
        switch (e.unOp) {
          case UnOp::kLNot:
            checkExpr(*e.a, scope, 0, /*expectBool=*/true);
            e.isBool = true;
            break;
          case UnOp::kBitNot:
          case UnOp::kNeg:
            checkExpr(*e.a, scope, expectedWidth, false);
            e.width = e.a->width;
            break;
        }
        break;
      case ExprOp::kBinary:
        checkBinary(e, scope, expectedWidth);
        break;
      case ExprOp::kTernary:
        checkExpr(*e.a, scope, 0, /*expectBool=*/true);
        checkExpr(*e.b, scope, expectedWidth, expectBool);
        // Propagate the then-arm's width into the else-arm if known.
        checkExpr(*e.c, scope,
                  e.b->isBool ? 0 : (e.b->width != 0 ? e.b->width
                                                     : expectedWidth),
                  e.b->isBool);
        if (e.b->isBool != e.c->isBool ||
            (!e.b->isBool && e.b->width != e.c->width)) {
          diag_.error(e.loc, "ternary arms have mismatched types");
        }
        e.isBool = e.b->isBool;
        e.width = e.b->width;
        break;
      case ExprOp::kSlice:
        checkExpr(*e.a, scope, 0, false);
        if (e.a->isBool) {
          diag_.error(e.loc, "cannot slice a boolean");
        } else if (e.sliceLo > e.sliceHi || e.sliceHi >= e.a->width) {
          diag_.error(e.loc, "slice [" + std::to_string(e.sliceHi) + ":" +
                                 std::to_string(e.sliceLo) +
                                 "] out of range for bit<" +
                                 std::to_string(e.a->width) + ">");
        }
        e.width = e.sliceHi - e.sliceLo + 1;
        break;
      case ExprOp::kCast:
        checkExpr(*e.a, scope, e.castWidth, false);
        if (e.a->isBool) diag_.error(e.loc, "cannot cast a boolean");
        e.width = e.castWidth;
        break;
    }
    if (expectBool && !e.isBool) {
      diag_.error(e.loc, "expected a boolean expression");
    }
    if (!expectBool && e.isBool && expectedWidth > 0) {
      diag_.error(e.loc, "expected a bit<N> expression, found boolean");
    }
  }

  static bool isUnsizedLit(const Expr& e) {
    return e.op == ExprOp::kIntLit && !e.literalWidth.has_value();
  }

  void checkBinary(Expr& e, Scope& scope, uint32_t expectedWidth) {
    switch (e.binOp) {
      case BinOp::kLAnd:
      case BinOp::kLOr:
        checkExpr(*e.a, scope, 0, true);
        checkExpr(*e.b, scope, 0, true);
        e.isBool = true;
        return;
      case BinOp::kEq:
      case BinOp::kNe: {
        // Allow boolean or bit-vector equality; infer literal widths from
        // the other side.
        if (isUnsizedLit(*e.a)) {
          checkExpr(*e.b, scope, 0, false);
          checkExpr(*e.a, scope, e.b->width, e.b->isBool);
        } else {
          checkExpr(*e.a, scope, 0, false);
          checkExpr(*e.b, scope, e.a->width, e.a->isBool);
        }
        if (e.a->isBool != e.b->isBool ||
            (!e.a->isBool && e.a->width != e.b->width)) {
          diag_.error(e.loc, "comparison operand types do not match");
        }
        e.isBool = true;
        return;
      }
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        if (isUnsizedLit(*e.a)) {
          checkExpr(*e.b, scope, 0, false);
          checkExpr(*e.a, scope, e.b->width, false);
        } else {
          checkExpr(*e.a, scope, 0, false);
          checkExpr(*e.b, scope, e.a->width, false);
        }
        if (e.a->width != e.b->width) {
          diag_.error(e.loc, "comparison operand widths do not match");
        }
        e.isBool = true;
        return;
      }
      case BinOp::kShl:
      case BinOp::kShr: {
        checkExpr(*e.a, scope, expectedWidth, false);
        checkExpr(*e.b, scope, 32, false);
        auto amount = evalConst(*e.b);
        if (!amount) {
          diag_.error(e.loc, "shift amounts must be compile-time constants");
        } else {
          e.b->value = *amount;
        }
        e.width = e.a->width;
        return;
      }
      case BinOp::kConcat:
        checkExpr(*e.a, scope, 0, false);
        checkExpr(*e.b, scope, 0, false);
        if (e.a->width == 0 || e.b->width == 0) {
          diag_.error(e.loc, "concat operands need explicit widths");
        }
        e.width = e.a->width + e.b->width;
        return;
      default: {
        // Arithmetic / bitwise: both sides same width.
        if (isUnsizedLit(*e.a) && !isUnsizedLit(*e.b)) {
          checkExpr(*e.b, scope, expectedWidth, false);
          checkExpr(*e.a, scope, e.b->width, false);
        } else {
          checkExpr(*e.a, scope, expectedWidth, false);
          checkExpr(*e.b, scope, e.a->width != 0 ? e.a->width : expectedWidth,
                    false);
        }
        if (e.a->width != e.b->width) {
          diag_.error(e.loc, "operand widths do not match (" +
                                 std::to_string(e.a->width) + " vs " +
                                 std::to_string(e.b->width) + ")");
        }
        e.width = e.a->width;
        return;
      }
    }
  }

  static std::string joinPath(const std::vector<std::string>& parts) {
    std::string s;
    for (const auto& p : parts) {
      if (!s.empty()) s += '.';
      s += p;
    }
    return s;
  }

  void resolvePath(Expr& e, Scope& scope) {
    std::string canonical = joinPath(e.path);
    // Single-component names: locals, action params, consts.
    if (e.path.size() == 1) {
      const std::string& name = e.path[0];
      auto local = scope.locals.find(name);
      if (local != scope.locals.end()) {
        e.pathKind = PathKind::kLocal;
        e.canonical = name;
        e.width = local->second.width;
        e.isBool = local->second.isBool;
        return;
      }
      if (scope.action != nullptr) {
        for (const auto& p : scope.action->params) {
          if (p.name == name) {
            e.pathKind = PathKind::kActionParam;
            e.canonical = name;
            e.width = p.width;
            return;
          }
        }
      }
      auto cit = env_.consts().find(name);
      if (cit != env_.consts().end()) {
        e.pathKind = PathKind::kConst;
        e.canonical = name;
        e.value = cit->second;
        e.width = cit->second.width();
        return;
      }
      diag_.error(e.loc, "unknown name '" + name + "'");
      e.width = 32;
      return;
    }
    // Dotted paths resolve against the flattened field map.
    if (const FieldInfo* f = env_.findField(canonical)) {
      e.pathKind = PathKind::kField;
      e.canonical = canonical;
      e.width = f->isBool ? 0 : f->width;
      e.isBool = f->isBool;
      return;
    }
    diag_.error(e.loc, "unknown field '" + canonical + "'");
    e.width = 32;
  }

  // ----- Statement checking -------------------------------------------------

  enum class Ctx { kParserState, kControlApply, kActionBody, kDeparser };

  void checkStmts(std::vector<StmtPtr>& stmts, Scope& scope, Ctx ctx) {
    for (auto& s : stmts) checkStmt(*s, scope, ctx);
  }

  void checkStmt(Stmt& s, Scope& scope, Ctx ctx) {
    switch (s.op) {
      case StmtOp::kAssign: {
        checkExpr(*s.lhs, scope, 0, false);
        if (!isAssignable(*s.lhs)) {
          diag_.error(s.loc, "left-hand side is not assignable");
        }
        checkExpr(*s.rhs, scope, s.lhs->isBool ? 0 : s.lhs->width,
                  s.lhs->isBool);
        if (!s.lhs->isBool && s.lhs->width != s.rhs->width) {
          diag_.error(s.loc, "assignment width mismatch (" +
                                 std::to_string(s.lhs->width) + " vs " +
                                 std::to_string(s.rhs->width) + ")");
        }
        break;
      }
      case StmtOp::kVarDecl: {
        if (scope.locals.count(s.varName) != 0) {
          diag_.error(s.loc, "redeclaration of '" + s.varName + "'");
        }
        if (s.rhs != nullptr) {
          checkExpr(*s.rhs, scope, s.varIsBool ? 0 : s.varWidth, s.varIsBool);
        }
        scope.locals[s.varName] = {s.varName, s.varIsBool ? 1 : s.varWidth,
                                   s.varIsBool, false};
        break;
      }
      case StmtOp::kIf:
        checkExpr(*s.cond, scope, 0, true);
        checkStmts(s.thenBody, scope, ctx);
        checkStmts(s.elseBody, scope, ctx);
        break;
      case StmtOp::kApply: {
        if (ctx != Ctx::kControlApply) {
          diag_.error(s.loc, "table apply is only allowed in apply blocks");
          break;
        }
        if (scope.control->findTable(s.target) == nullptr) {
          diag_.error(s.loc, "unknown table '" + s.target + "'");
        }
        break;
      }
      case StmtOp::kActionCall: {
        if (scope.control == nullptr) {
          diag_.error(s.loc, "action calls are only allowed in controls");
          break;
        }
        if (isBuiltinNoop(s.target)) break;
        const ActionDecl* action = scope.control->findAction(s.target);
        if (action == nullptr) {
          diag_.error(s.loc, "unknown action '" + s.target + "'");
          break;
        }
        if (s.args.size() != action->params.size()) {
          diag_.error(s.loc, "action '" + s.target + "' expects " +
                                 std::to_string(action->params.size()) +
                                 " arguments");
          break;
        }
        for (size_t i = 0; i < s.args.size(); ++i) {
          checkExpr(*s.args[i], scope, action->params[i].width, false);
          if (s.args[i]->width != action->params[i].width) {
            diag_.error(s.loc, "action argument width mismatch");
          }
        }
        break;
      }
      case StmtOp::kExtract: {
        std::string canonical = joinPath(s.lhs->path);
        if (env_.findHeader(canonical) == nullptr) {
          diag_.error(s.loc, "extract target '" + canonical +
                                 "' is not a header instance");
        }
        s.lhs->canonical = canonical;
        break;
      }
      case StmtOp::kEmit:
      case StmtOp::kSetValid:
      case StmtOp::kSetInvalid: {
        std::string canonical = joinPath(s.lhs->path);
        if (env_.findHeader(canonical) == nullptr) {
          diag_.error(s.loc, "'" + canonical + "' is not a header instance");
        }
        s.lhs->canonical = canonical;
        break;
      }
      case StmtOp::kMarkToDrop:
        if (ctx == Ctx::kParserState || ctx == Ctx::kDeparser) {
          diag_.error(s.loc, "mark_to_drop() not allowed here");
        }
        break;
      case StmtOp::kRegRead:
      case StmtOp::kRegWrite: {
        const RegisterDecl* reg = findRegister(scope, s.target);
        if (reg == nullptr) {
          diag_.error(s.loc, "unknown register '" + s.target + "'");
          break;
        }
        checkExpr(*s.index, scope, 32, false);
        if (s.op == StmtOp::kRegRead) {
          checkExpr(*s.lhs, scope, reg->width, false);
          if (!isAssignable(*s.lhs)) {
            diag_.error(s.loc, "register read destination not assignable");
          }
          if (s.lhs->width != reg->width) {
            diag_.error(s.loc, "register read width mismatch");
          }
        } else {
          checkExpr(*s.rhs, scope, reg->width, false);
          if (s.rhs->width != reg->width) {
            diag_.error(s.loc, "register write width mismatch");
          }
        }
        break;
      }
      case StmtOp::kCountCall: {
        bool known = false;
        if (scope.control != nullptr) {
          for (const auto& c : scope.control->counters) {
            known |= c.name == s.target;
          }
        }
        if (!known) diag_.error(s.loc, "unknown counter '" + s.target + "'");
        checkExpr(*s.index, scope, 32, false);
        break;
      }
      case StmtOp::kMeterCall: {
        bool known = false;
        if (scope.control != nullptr) {
          for (const auto& m : scope.control->meters) {
            known |= m.name == s.target;
          }
        }
        if (!known) diag_.error(s.loc, "unknown meter '" + s.target + "'");
        checkExpr(*s.lhs, scope, 2, false);
        if (!isAssignable(*s.lhs) || s.lhs->width != 2) {
          diag_.error(s.loc, "meter result must go to a bit<2> lvalue");
        }
        checkExpr(*s.index, scope, 32, false);
        break;
      }
      case StmtOp::kTransition:
        checkTransition(s, scope);
        break;
      case StmtOp::kExit:
        break;
    }
  }

  static bool isAssignable(const Expr& e) {
    if (e.op == ExprOp::kSlice) return e.a != nullptr && isAssignable(*e.a);
    return e.op == ExprOp::kPath && (e.pathKind == PathKind::kField ||
                                     e.pathKind == PathKind::kLocal);
  }

  const RegisterDecl* findRegister(Scope& scope, const std::string& name) {
    if (scope.control == nullptr) return nullptr;
    for (const auto& r : scope.control->registers) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  void checkTransition(Stmt& s, Scope& scope) {
    ParserDecl* parser = scope.parser;
    if (parser == nullptr) {
      diag_.error(s.loc, "transition outside of a parser");
      return;
    }
    auto validState = [parser](const std::string& n) {
      return n == "accept" || n == "reject" ||
             parser->findState(n) != nullptr;
    };
    if (s.transition.selectExpr == nullptr) {
      if (!validState(s.transition.nextState)) {
        diag_.error(s.loc, "unknown parser state '" +
                               s.transition.nextState + "'");
      }
      return;
    }
    checkExpr(*s.transition.selectExpr, scope, 0, false);
    uint32_t selWidth = s.transition.selectExpr->width;
    for (auto& c : s.transition.cases) {
      if (!validState(c.nextState)) {
        diag_.error(c.loc, "unknown parser state '" + c.nextState + "'");
      }
      if (c.kind != SelectCase::Kind::kConst) continue;
      // Reclassify bare identifiers that name value sets.
      if (c.value->op == ExprOp::kPath && c.value->path.size() == 1) {
        const std::string& name = c.value->path[0];
        for (const auto& vs : parser->valueSets) {
          if (vs.name == name) {
            c.kind = SelectCase::Kind::kValueSet;
            c.valueSet = name;
            if (vs.width != selWidth) {
              diag_.error(c.loc, "value_set width does not match select");
            }
            break;
          }
        }
        if (c.kind == SelectCase::Kind::kValueSet) continue;
      }
      checkExpr(*c.value, scope, selWidth, false);
      auto v = evalConst(*c.value);
      if (!v) {
        diag_.error(c.loc, "select case values must be constants");
      } else {
        c.value->value = *v;
      }
      if (c.mask != nullptr) {
        checkExpr(*c.mask, scope, selWidth, false);
        auto m = evalConst(*c.mask);
        if (!m) {
          diag_.error(c.loc, "select case masks must be constants");
        } else {
          c.mask->value = *m;
        }
      }
    }
  }

  // ----- Declarations ---------------------------------------------------------

  void checkParser(ParserDecl& parser) {
    if (parser.findState("start") == nullptr) {
      diag_.error(parser.loc,
                  "parser '" + parser.name + "' needs a 'start' state");
    }
    for (auto& state : parser.states) {
      Scope scope;
      scope.parser = &parser;
      checkStmts(state.body, scope, Ctx::kParserState);
      if (state.body.empty() ||
          state.body.back()->op != StmtOp::kTransition) {
        diag_.error(state.loc, "state '" + state.name +
                                   "' must end with a transition");
      }
    }
  }

  void checkControl(ControlDecl& control) {
    // Action bodies first (their params are in scope).
    for (auto& action : control.actions) {
      Scope scope;
      scope.control = &control;
      scope.action = &action;
      checkStmts(action.body, scope, Ctx::kActionBody);
    }
    // Tables.
    for (auto& table : control.tables) {
      Scope scope;
      scope.control = &control;
      for (auto& k : table.keys) {
        checkExpr(*k.expr, scope, 0, false);
        if (k.expr->width == 0) {
          diag_.error(k.loc, "table keys must be bit<N> expressions");
        }
      }
      for (const auto& actionName : table.actionNames) {
        if (!isKnownAction(control, actionName)) {
          diag_.error(table.loc, "table '" + table.name +
                                     "' references unknown action '" +
                                     actionName + "'");
        }
      }
      checkDefaultAction(control, table, scope);
      if (!table.actionProfile.empty()) {
        bool found = false;
        for (const auto& ap : control.actionProfiles) {
          found |= ap.name == table.actionProfile;
        }
        if (!found) {
          diag_.error(table.loc, "unknown action profile '" +
                                     table.actionProfile + "'");
        }
      }
    }
    // Apply block.
    Scope scope;
    scope.control = &control;
    checkStmts(control.applyBody, scope, Ctx::kControlApply);
  }

  static bool isBuiltinNoop(const std::string& name) {
    return name == "noop" || name == "NoAction";
  }

  bool isKnownAction(const ControlDecl& control, const std::string& name) {
    return isBuiltinNoop(name) || control.findAction(name) != nullptr;
  }

  void checkDefaultAction(ControlDecl& control, TableDecl& table,
                          Scope& scope) {
    const std::string& name = table.defaultAction.name;
    if (!isKnownAction(control, name)) {
      diag_.error(table.loc, "table '" + table.name +
                                 "' has unknown default action '" + name +
                                 "'");
      return;
    }
    // The default action must be one of the table's actions (or noop).
    if (!isBuiltinNoop(name)) {
      bool listed = false;
      for (const auto& a : table.actionNames) listed |= a == name;
      if (!listed) {
        diag_.error(table.loc, "default action '" + name +
                                   "' is not in the table's action list");
      }
    }
    const ActionDecl* action = control.findAction(name);
    size_t expected = action != nullptr ? action->params.size() : 0;
    if (table.defaultAction.args.size() != expected) {
      diag_.error(table.loc, "default action '" + name + "' expects " +
                                 std::to_string(expected) + " arguments");
      return;
    }
    for (size_t i = 0; i < table.defaultAction.args.size(); ++i) {
      Expr& arg = *table.defaultAction.args[i];
      checkExpr(arg, scope, action->params[i].width, false);
      auto v = evalConst(arg);
      if (!v) {
        diag_.error(table.loc, "default action arguments must be constants");
      } else {
        arg.value = *v;
      }
    }
  }

  void checkDeparser(DeparserDecl& deparser) {
    Scope scope;
    checkStmts(deparser.body, scope, Ctx::kDeparser);
  }

  void checkPipeline() {
    const PipelineDecl& p = prog_.pipeline;
    if (p.parserName.empty()) {
      diag_.error(p.loc, "program is missing a pipeline declaration");
      return;
    }
    if (prog_.findParser(p.parserName) == nullptr) {
      diag_.error(p.loc, "pipeline parser '" + p.parserName + "' not found");
    }
    for (const auto& c : p.controlNames) {
      if (prog_.findControl(c) == nullptr) {
        diag_.error(p.loc, "pipeline control '" + c + "' not found");
      }
    }
    if (prog_.findDeparser(p.deparserName) == nullptr) {
      diag_.error(p.loc,
                  "pipeline deparser '" + p.deparserName + "' not found");
    }
  }

  Program& prog_;
  DiagnosticEngine& diag_;
  TypeEnv env_;
};

}  // namespace

TypeEnv typeCheck(Program& prog, DiagnosticEngine& diag) {
  return TypeChecker(prog, diag).run();
}

CheckedProgram loadProgramFromString(std::string_view source) {
  DiagnosticEngine diag;
  CheckedProgram result;
  result.program = parseString(source, diag);
  diag.throwIfErrors();
  result.env = typeCheck(result.program, diag);
  diag.throwIfErrors();
  return result;
}

CheckedProgram loadProgramFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CompileError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return loadProgramFromString(buf.str());
}

}  // namespace flay::p4
