#ifndef FLAY_P4_PARSER_H
#define FLAY_P4_PARSER_H

#include <string_view>

#include "p4/ast.h"
#include "p4/lexer.h"

namespace flay::p4 {

/// Recursive-descent parser for P4-lite. On success returns the untyped AST;
/// diagnostics accumulate in `diag` and parsing continues past most errors
/// to report several at once.
class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diag);

  Program parseProgram();

 private:
  // Token helpers.
  const Token& peek(size_t off = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool checkIdent(std::string_view text) const;
  bool match(TokenKind kind);
  bool matchIdent(std::string_view text);
  const Token& expect(TokenKind kind, const char* what);
  /// Consumes a '>' that may be the first half of a '>>' token, as in
  /// value_set<bit<16>>.
  void expectCloseAngle();
  std::string expectIdent(const char* what);
  uint32_t expectInt(const char* what);
  void synchronizeToBraceEnd();

  // Types.
  struct ParsedType {
    uint32_t width = 0;
    bool isBool = false;
    std::string typeName;  // set for named (header/struct) types
  };
  ParsedType parseType();

  // Declarations.
  void parseHeaderDecl(Program& prog);
  void parseStructDecl(Program& prog);
  void parseConstDecl(Program& prog);
  void parseParserDecl(Program& prog);
  void parseControlDecl(Program& prog);
  void parseDeparserDecl(Program& prog);
  void parsePipelineDecl(Program& prog);

  ParserStateDecl parseParserState();
  ValueSetDecl parseValueSetDecl();
  ActionDecl parseActionDecl();
  TableDecl parseTableDecl();
  RegisterDecl parseRegisterDecl();
  StmtPtr parseTransition();

  // Statements.
  std::vector<StmtPtr> parseBlock(bool inParserState, bool inDeparser);
  StmtPtr parseStatement(bool inParserState, bool inDeparser);
  StmtPtr parsePathStatement();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseTernary();
  ExprPtr parseBinaryLevel(int level);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  ExprPtr parsePath();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  DiagnosticEngine& diag_;
};

/// Convenience: lex + parse + (optionally) throw on errors.
Program parseString(std::string_view source, DiagnosticEngine& diag);
Program parseStringOrThrow(std::string_view source);
Program parseFileOrThrow(const std::string& path);

}  // namespace flay::p4

#endif  // FLAY_P4_PARSER_H
