#include "p4/ast.h"

namespace flay::p4 {

namespace {

size_t countStmts(const std::vector<StmtPtr>& stmts) {
  size_t n = 0;
  for (const auto& s : stmts) {
    ++n;
    if (s->op == StmtOp::kIf) {
      n += countStmts(s->thenBody) + countStmts(s->elseBody);
    }
  }
  return n;
}

}  // namespace

size_t Program::statementCount() const {
  size_t n = 0;
  for (const auto& p : parsers) {
    for (const auto& st : p.states) n += countStmts(st.body);
  }
  for (const auto& c : controls) {
    for (const auto& a : c.actions) n += countStmts(a.body);
    n += c.tables.size();
    n += countStmts(c.applyBody);
  }
  for (const auto& d : deparsers) n += countStmts(d.body);
  return n;
}

}  // namespace flay::p4
