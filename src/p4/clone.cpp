#include "p4/clone.h"

namespace flay::p4 {

ExprPtr cloneExpr(const Expr& e) {
  auto c = std::make_unique<Expr>();
  c->op = e.op;
  c->loc = e.loc;
  c->literalText = e.literalText;
  c->literalWidth = e.literalWidth;
  c->boolValue = e.boolValue;
  c->path = e.path;
  c->unOp = e.unOp;
  c->binOp = e.binOp;
  c->sliceHi = e.sliceHi;
  c->sliceLo = e.sliceLo;
  c->castWidth = e.castWidth;
  if (e.a) c->a = cloneExpr(*e.a);
  if (e.b) c->b = cloneExpr(*e.b);
  if (e.c) c->c = cloneExpr(*e.c);
  c->width = e.width;
  c->isBool = e.isBool;
  c->pathKind = e.pathKind;
  c->canonical = e.canonical;
  c->value = e.value;
  return c;
}

std::vector<StmtPtr> cloneStmts(const std::vector<StmtPtr>& stmts) {
  std::vector<StmtPtr> result;
  result.reserve(stmts.size());
  for (const auto& s : stmts) result.push_back(cloneStmt(*s));
  return result;
}

StmtPtr cloneStmt(const Stmt& s) {
  auto c = std::make_unique<Stmt>();
  c->op = s.op;
  c->loc = s.loc;
  if (s.lhs) c->lhs = cloneExpr(*s.lhs);
  if (s.rhs) c->rhs = cloneExpr(*s.rhs);
  if (s.index) c->index = cloneExpr(*s.index);
  c->varName = s.varName;
  c->varWidth = s.varWidth;
  c->varIsBool = s.varIsBool;
  if (s.cond) c->cond = cloneExpr(*s.cond);
  c->thenBody = cloneStmts(s.thenBody);
  c->elseBody = cloneStmts(s.elseBody);
  c->target = s.target;
  for (const auto& a : s.args) c->args.push_back(cloneExpr(*a));
  // Transition info.
  c->transition.nextState = s.transition.nextState;
  if (s.transition.selectExpr) {
    c->transition.selectExpr = cloneExpr(*s.transition.selectExpr);
  }
  for (const auto& sc : s.transition.cases) {
    SelectCase cc;
    cc.kind = sc.kind;
    if (sc.value) cc.value = cloneExpr(*sc.value);
    if (sc.mask) cc.mask = cloneExpr(*sc.mask);
    cc.valueSet = sc.valueSet;
    cc.nextState = sc.nextState;
    cc.loc = sc.loc;
    c->transition.cases.push_back(std::move(cc));
  }
  return c;
}

namespace {

ActionDecl cloneAction(const ActionDecl& a) {
  ActionDecl c;
  c.name = a.name;
  c.params = a.params;
  c.body = cloneStmts(a.body);
  c.loc = a.loc;
  return c;
}

TableDecl cloneTable(const TableDecl& t) {
  TableDecl c;
  c.name = t.name;
  for (const auto& k : t.keys) {
    KeyElement kc;
    kc.expr = cloneExpr(*k.expr);
    kc.matchKind = k.matchKind;
    kc.loc = k.loc;
    c.keys.push_back(std::move(kc));
  }
  c.actionNames = t.actionNames;
  c.defaultAction.name = t.defaultAction.name;
  for (const auto& arg : t.defaultAction.args) {
    c.defaultAction.args.push_back(cloneExpr(*arg));
  }
  c.size = t.size;
  c.actionProfile = t.actionProfile;
  c.loc = t.loc;
  return c;
}

}  // namespace

Program cloneProgram(const Program& prog) {
  Program c;
  c.headerTypes = prog.headerTypes;
  c.structTypes = prog.structTypes;
  for (const auto& k : prog.consts) {
    ConstDecl kc;
    kc.name = k.name;
    kc.width = k.width;
    kc.value = cloneExpr(*k.value);
    kc.loc = k.loc;
    c.consts.push_back(std::move(kc));
  }
  for (const auto& p : prog.parsers) {
    ParserDecl pc;
    pc.name = p.name;
    pc.valueSets = p.valueSets;
    for (const auto& st : p.states) {
      ParserStateDecl sc;
      sc.name = st.name;
      sc.body = cloneStmts(st.body);
      sc.loc = st.loc;
      pc.states.push_back(std::move(sc));
    }
    pc.loc = p.loc;
    c.parsers.push_back(std::move(pc));
  }
  for (const auto& ctrl : prog.controls) {
    ControlDecl cc;
    cc.name = ctrl.name;
    for (const auto& a : ctrl.actions) cc.actions.push_back(cloneAction(a));
    for (const auto& t : ctrl.tables) cc.tables.push_back(cloneTable(t));
    cc.registers = ctrl.registers;
    cc.counters = ctrl.counters;
    cc.meters = ctrl.meters;
    cc.actionProfiles = ctrl.actionProfiles;
    cc.applyBody = cloneStmts(ctrl.applyBody);
    cc.loc = ctrl.loc;
    c.controls.push_back(std::move(cc));
  }
  for (const auto& d : prog.deparsers) {
    DeparserDecl dc;
    dc.name = d.name;
    dc.body = cloneStmts(d.body);
    dc.loc = d.loc;
    c.deparsers.push_back(std::move(dc));
  }
  c.pipeline = prog.pipeline;
  return c;
}

}  // namespace flay::p4
