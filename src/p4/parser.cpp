#include "p4/parser.h"

#include <fstream>
#include <sstream>

namespace flay::p4 {

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diag)
    : tokens_(std::move(tokens)), diag_(diag) {}

const Token& Parser::peek(size_t off) const {
  size_t i = std::min(pos_ + off, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::checkIdent(std::string_view text) const {
  return peek().kind == TokenKind::kIdent && peek().text == text;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

bool Parser::matchIdent(std::string_view text) {
  if (!checkIdent(text)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* what) {
  if (check(kind)) return advance();
  diag_.error(peek().loc, std::string("expected ") + what + ", found '" +
                              peek().text + "'");
  return peek();  // do not consume; caller recovers
}

std::string Parser::expectIdent(const char* what) {
  if (check(TokenKind::kIdent)) return advance().text;
  diag_.error(peek().loc,
              std::string("expected ") + what + ", found '" + peek().text + "'");
  return "<error>";
}

uint32_t Parser::expectInt(const char* what) {
  if (check(TokenKind::kIntLit)) {
    const std::string& t = advance().text;
    try {
      return static_cast<uint32_t>(BitVec::parse(32, t).toUint64());
    } catch (const std::invalid_argument&) {
      diag_.error(peek().loc, "malformed integer '" + t + "'");
      return 0;
    }
  }
  diag_.error(peek().loc,
              std::string("expected ") + what + ", found '" + peek().text + "'");
  return 0;
}

void Parser::expectCloseAngle() {
  if (match(TokenKind::kRAngle)) return;
  if (check(TokenKind::kShr)) {
    // Split ">>" in place: consume the first '>', leave a single '>' as the
    // current token for the enclosing construct.
    tokens_[pos_].kind = TokenKind::kRAngle;
    tokens_[pos_].text = ">";
    return;
  }
  diag_.error(peek().loc,
              "expected '>', found '" + peek().text + "'");
}

void Parser::synchronizeToBraceEnd() {
  int depth = 0;
  while (!check(TokenKind::kEof)) {
    if (check(TokenKind::kLBrace)) ++depth;
    if (check(TokenKind::kRBrace)) {
      if (depth == 0) {
        advance();
        return;
      }
      --depth;
    }
    advance();
  }
}

Parser::ParsedType Parser::parseType() {
  ParsedType t;
  if (matchIdent("bit")) {
    expect(TokenKind::kLAngle, "'<'");
    t.width = expectInt("bit width");
    expectCloseAngle();
    if (t.width == 0) diag_.error(peek().loc, "bit<0> is not a valid type");
    return t;
  }
  if (matchIdent("bool")) {
    t.isBool = true;
    return t;
  }
  t.typeName = expectIdent("type name");
  return t;
}

// ---------------------------------------------------------------------------
// Top-level declarations
// ---------------------------------------------------------------------------

Program Parser::parseProgram() {
  Program prog;
  while (!check(TokenKind::kEof)) {
    if (checkIdent("header")) {
      parseHeaderDecl(prog);
    } else if (checkIdent("struct")) {
      parseStructDecl(prog);
    } else if (checkIdent("const")) {
      parseConstDecl(prog);
    } else if (checkIdent("parser")) {
      parseParserDecl(prog);
    } else if (checkIdent("control")) {
      parseControlDecl(prog);
    } else if (checkIdent("deparser")) {
      parseDeparserDecl(prog);
    } else if (checkIdent("pipeline")) {
      parsePipelineDecl(prog);
    } else {
      diag_.error(peek().loc, "expected a top-level declaration, found '" +
                                  peek().text + "'");
      advance();
    }
  }
  return prog;
}

void Parser::parseHeaderDecl(Program& prog) {
  HeaderTypeDecl decl;
  decl.loc = peek().loc;
  advance();  // header
  decl.name = expectIdent("header type name");
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    size_t before = pos_;
    HeaderField f;
    f.loc = peek().loc;
    ParsedType t = parseType();
    if (!t.typeName.empty()) {
      diag_.error(f.loc, "header fields must be bit<N> or bool");
    }
    f.width = t.isBool ? 1 : t.width;
    f.name = expectIdent("field name");
    expect(TokenKind::kSemicolon, "';'");
    decl.fields.push_back(std::move(f));
    if (pos_ == before) advance();  // error recovery: always make progress
  }
  expect(TokenKind::kRBrace, "'}'");
  prog.headerTypes.push_back(std::move(decl));
}

void Parser::parseStructDecl(Program& prog) {
  StructTypeDecl decl;
  decl.loc = peek().loc;
  advance();  // struct
  decl.name = expectIdent("struct type name");
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    size_t before = pos_;
    StructField f;
    f.loc = peek().loc;
    ParsedType t = parseType();
    if (t.typeName.empty()) {
      f.width = t.isBool ? 1 : t.width;
      f.isBool = t.isBool;
    } else {
      f.typeName = t.typeName;
    }
    f.name = expectIdent("field name");
    expect(TokenKind::kSemicolon, "';'");
    decl.fields.push_back(std::move(f));
    if (pos_ == before) advance();  // error recovery: always make progress
  }
  expect(TokenKind::kRBrace, "'}'");
  prog.structTypes.push_back(std::move(decl));
}

void Parser::parseConstDecl(Program& prog) {
  ConstDecl decl;
  decl.loc = peek().loc;
  advance();  // const
  ParsedType t = parseType();
  if (!t.typeName.empty() || t.isBool) {
    diag_.error(decl.loc, "const declarations must have type bit<N>");
  }
  decl.width = t.width;
  decl.name = expectIdent("const name");
  expect(TokenKind::kAssign, "'='");
  decl.value = parseExpr();
  expect(TokenKind::kSemicolon, "';'");
  prog.consts.push_back(std::move(decl));
}

void Parser::parseParserDecl(Program& prog) {
  ParserDecl decl;
  decl.loc = peek().loc;
  advance();  // parser
  decl.name = expectIdent("parser name");
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (checkIdent("state")) {
      decl.states.push_back(parseParserState());
    } else if (checkIdent("value_set")) {
      decl.valueSets.push_back(parseValueSetDecl());
    } else {
      diag_.error(peek().loc,
                  "expected 'state' or 'value_set' in parser, found '" +
                      peek().text + "'");
      advance();
    }
  }
  expect(TokenKind::kRBrace, "'}'");
  prog.parsers.push_back(std::move(decl));
}

ValueSetDecl Parser::parseValueSetDecl() {
  ValueSetDecl decl;
  decl.loc = peek().loc;
  advance();  // value_set
  expect(TokenKind::kLAngle, "'<'");
  ParsedType t = parseType();
  if (!t.typeName.empty() || t.isBool) {
    diag_.error(decl.loc, "value_set element type must be bit<N>");
  }
  decl.width = t.width;
  expectCloseAngle();
  expect(TokenKind::kLParen, "'('");
  decl.size = expectInt("value_set size");
  expect(TokenKind::kRParen, "')'");
  decl.name = expectIdent("value_set name");
  expect(TokenKind::kSemicolon, "';'");
  return decl;
}

ParserStateDecl Parser::parseParserState() {
  ParserStateDecl state;
  state.loc = peek().loc;
  advance();  // state
  state.name = expectIdent("state name");
  expect(TokenKind::kLBrace, "'{'");
  bool sawTransition = false;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (checkIdent("transition")) {
      state.body.push_back(parseTransition());
      sawTransition = true;
    } else {
      state.body.push_back(parseStatement(/*inParserState=*/true,
                                          /*inDeparser=*/false));
    }
  }
  if (!sawTransition) {
    diag_.error(state.loc, "parser state '" + state.name +
                               "' is missing a transition");
  }
  expect(TokenKind::kRBrace, "'}'");
  return state;
}

StmtPtr Parser::parseTransition() {
  auto stmt = std::make_unique<Stmt>();
  stmt->op = StmtOp::kTransition;
  stmt->loc = peek().loc;
  advance();  // transition
  if (matchIdent("select")) {
    expect(TokenKind::kLParen, "'('");
    stmt->transition.selectExpr = parseExpr();
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kLBrace, "'{'");
    while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
      SelectCase c;
      c.loc = peek().loc;
      if (matchIdent("default") || matchIdent("_")) {
        c.kind = SelectCase::Kind::kDefault;
      } else {
        // A literal (optionally masked) or a bare identifier; bare
        // identifiers naming value sets are reclassified by the checker.
        c.kind = SelectCase::Kind::kConst;
        c.value = parseExpr();
        if (match(TokenKind::kMask)) c.mask = parseExpr();
      }
      expect(TokenKind::kColon, "':'");
      c.nextState = expectIdent("next state");
      expect(TokenKind::kSemicolon, "';'");
      stmt->transition.cases.push_back(std::move(c));
    }
    expect(TokenKind::kRBrace, "'}'");
  } else {
    stmt->transition.nextState = expectIdent("next state");
    expect(TokenKind::kSemicolon, "';'");
  }
  return stmt;
}

void Parser::parseControlDecl(Program& prog) {
  ControlDecl decl;
  decl.loc = peek().loc;
  advance();  // control
  decl.name = expectIdent("control name");
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (checkIdent("action")) {
      decl.actions.push_back(parseActionDecl());
    } else if (checkIdent("table")) {
      decl.tables.push_back(parseTableDecl());
    } else if (checkIdent("register")) {
      decl.registers.push_back(parseRegisterDecl());
    } else if (checkIdent("counter")) {
      CounterDecl c;
      c.loc = peek().loc;
      advance();
      expect(TokenKind::kLParen, "'('");
      c.size = expectInt("counter size");
      expect(TokenKind::kRParen, "')'");
      c.name = expectIdent("counter name");
      expect(TokenKind::kSemicolon, "';'");
      decl.counters.push_back(std::move(c));
    } else if (checkIdent("meter")) {
      MeterDecl m;
      m.loc = peek().loc;
      advance();
      expect(TokenKind::kLParen, "'('");
      m.size = expectInt("meter size");
      expect(TokenKind::kRParen, "')'");
      m.name = expectIdent("meter name");
      expect(TokenKind::kSemicolon, "';'");
      decl.meters.push_back(std::move(m));
    } else if (checkIdent("action_profile")) {
      ActionProfileDecl ap;
      ap.loc = peek().loc;
      advance();
      expect(TokenKind::kLParen, "'('");
      ap.size = expectInt("action_profile size");
      expect(TokenKind::kRParen, "')'");
      ap.name = expectIdent("action_profile name");
      expect(TokenKind::kSemicolon, "';'");
      decl.actionProfiles.push_back(std::move(ap));
    } else if (checkIdent("apply")) {
      advance();
      expect(TokenKind::kLBrace, "'{'");
      decl.applyBody = parseBlock(/*inParserState=*/false,
                                  /*inDeparser=*/false);
    } else {
      diag_.error(peek().loc, "unexpected token in control: '" +
                                  peek().text + "'");
      advance();
    }
  }
  expect(TokenKind::kRBrace, "'}'");
  prog.controls.push_back(std::move(decl));
}

RegisterDecl Parser::parseRegisterDecl() {
  RegisterDecl decl;
  decl.loc = peek().loc;
  advance();  // register
  expect(TokenKind::kLAngle, "'<'");
  ParsedType t = parseType();
  if (!t.typeName.empty() || t.isBool) {
    diag_.error(decl.loc, "register element type must be bit<N>");
  }
  decl.width = t.width;
  expectCloseAngle();
  expect(TokenKind::kLParen, "'('");
  decl.size = expectInt("register size");
  expect(TokenKind::kRParen, "')'");
  decl.name = expectIdent("register name");
  expect(TokenKind::kSemicolon, "';'");
  return decl;
}

ActionDecl Parser::parseActionDecl() {
  ActionDecl decl;
  decl.loc = peek().loc;
  advance();  // action
  decl.name = expectIdent("action name");
  expect(TokenKind::kLParen, "'('");
  while (!check(TokenKind::kRParen) && !check(TokenKind::kEof)) {
    ActionParam p;
    p.loc = peek().loc;
    ParsedType t = parseType();
    if (!t.typeName.empty() || t.isBool) {
      diag_.error(p.loc, "action parameters must have type bit<N>");
    }
    p.width = t.width;
    p.name = expectIdent("parameter name");
    decl.params.push_back(std::move(p));
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRParen, "')'");
  expect(TokenKind::kLBrace, "'{'");
  decl.body = parseBlock(/*inParserState=*/false, /*inDeparser=*/false);
  return decl;
}

TableDecl Parser::parseTableDecl() {
  TableDecl decl;
  decl.loc = peek().loc;
  advance();  // table
  decl.name = expectIdent("table name");
  expect(TokenKind::kLBrace, "'{'");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (matchIdent("key")) {
      expect(TokenKind::kAssign, "'='");
      expect(TokenKind::kLBrace, "'{'");
      while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
        KeyElement k;
        k.loc = peek().loc;
        k.expr = parseExpr();
        expect(TokenKind::kColon, "':'");
        std::string mk = expectIdent("match kind");
        if (mk == "exact") k.matchKind = MatchKind::kExact;
        else if (mk == "ternary") k.matchKind = MatchKind::kTernary;
        else if (mk == "lpm") k.matchKind = MatchKind::kLpm;
        else diag_.error(k.loc, "unknown match kind '" + mk + "'");
        expect(TokenKind::kSemicolon, "';'");
        decl.keys.push_back(std::move(k));
      }
      expect(TokenKind::kRBrace, "'}'");
    } else if (matchIdent("actions")) {
      expect(TokenKind::kAssign, "'='");
      expect(TokenKind::kLBrace, "'{'");
      while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
        size_t before = pos_;
        decl.actionNames.push_back(expectIdent("action name"));
        expect(TokenKind::kSemicolon, "';'");
        if (pos_ == before) advance();  // error recovery
      }
      expect(TokenKind::kRBrace, "'}'");
    } else if (matchIdent("default_action")) {
      expect(TokenKind::kAssign, "'='");
      decl.defaultAction.name = expectIdent("default action name");
      if (match(TokenKind::kLParen)) {
        while (!check(TokenKind::kRParen) && !check(TokenKind::kEof)) {
          decl.defaultAction.args.push_back(parseExpr());
          if (!match(TokenKind::kComma)) break;
        }
        expect(TokenKind::kRParen, "')'");
      }
      expect(TokenKind::kSemicolon, "';'");
    } else if (matchIdent("size")) {
      expect(TokenKind::kAssign, "'='");
      decl.size = expectInt("table size");
      expect(TokenKind::kSemicolon, "';'");
    } else if (matchIdent("implementation")) {
      expect(TokenKind::kAssign, "'='");
      decl.actionProfile = expectIdent("action profile name");
      expect(TokenKind::kSemicolon, "';'");
    } else {
      diag_.error(peek().loc,
                  "unknown table property '" + peek().text + "'");
      advance();
    }
  }
  expect(TokenKind::kRBrace, "'}'");
  return decl;
}

void Parser::parseDeparserDecl(Program& prog) {
  DeparserDecl decl;
  decl.loc = peek().loc;
  advance();  // deparser
  decl.name = expectIdent("deparser name");
  expect(TokenKind::kLBrace, "'{'");
  decl.body = parseBlock(/*inParserState=*/false, /*inDeparser=*/true);
  prog.deparsers.push_back(std::move(decl));
}

void Parser::parsePipelineDecl(Program& prog) {
  prog.pipeline.loc = peek().loc;
  advance();  // pipeline
  expect(TokenKind::kLParen, "'('");
  std::vector<std::string> names;
  while (!check(TokenKind::kRParen) && !check(TokenKind::kEof)) {
    names.push_back(expectIdent("pipeline stage name"));
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRParen, "')'");
  expect(TokenKind::kSemicolon, "';'");
  if (names.size() < 3) {
    diag_.error(prog.pipeline.loc,
                "pipeline needs at least parser, one control, and deparser");
    return;
  }
  prog.pipeline.parserName = names.front();
  prog.pipeline.deparserName = names.back();
  prog.pipeline.controlNames.assign(names.begin() + 1, names.end() - 1);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::vector<StmtPtr> Parser::parseBlock(bool inParserState, bool inDeparser) {
  std::vector<StmtPtr> stmts;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    stmts.push_back(parseStatement(inParserState, inDeparser));
  }
  expect(TokenKind::kRBrace, "'}'");
  return stmts;
}

StmtPtr Parser::parseStatement(bool inParserState, bool inDeparser) {
  SourceLoc loc = peek().loc;

  if (checkIdent("if")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kIf;
    stmt->loc = loc;
    advance();
    expect(TokenKind::kLParen, "'('");
    stmt->cond = parseExpr();
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kLBrace, "'{'");
    stmt->thenBody = parseBlock(inParserState, inDeparser);
    if (matchIdent("else")) {
      if (checkIdent("if")) {
        stmt->elseBody.push_back(parseStatement(inParserState, inDeparser));
      } else {
        expect(TokenKind::kLBrace, "'{'");
        stmt->elseBody = parseBlock(inParserState, inDeparser);
      }
    }
    return stmt;
  }

  if (checkIdent("bit") || checkIdent("bool")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kVarDecl;
    stmt->loc = loc;
    ParsedType t = parseType();
    stmt->varWidth = t.width;
    stmt->varIsBool = t.isBool;
    stmt->varName = expectIdent("variable name");
    if (match(TokenKind::kAssign)) stmt->rhs = parseExpr();
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (checkIdent("extract")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kExtract;
    stmt->loc = loc;
    if (!inParserState) {
      diag_.error(loc, "extract() is only allowed inside parser states");
    }
    advance();
    expect(TokenKind::kLParen, "'('");
    stmt->lhs = parsePath();
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (checkIdent("emit")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kEmit;
    stmt->loc = loc;
    if (!inDeparser) {
      diag_.error(loc, "emit() is only allowed inside deparsers");
    }
    advance();
    expect(TokenKind::kLParen, "'('");
    stmt->lhs = parsePath();
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (checkIdent("mark_to_drop")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kMarkToDrop;
    stmt->loc = loc;
    advance();
    expect(TokenKind::kLParen, "'('");
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (checkIdent("exit")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->op = StmtOp::kExit;
    stmt->loc = loc;
    advance();
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (checkIdent("transition")) {
    diag_.error(loc, "transition must be the trailing statement of a state");
    return parseTransition();
  }

  return parsePathStatement();
}

StmtPtr Parser::parsePathStatement() {
  SourceLoc loc = peek().loc;
  // Parse the dotted path; the token after decides what statement this is.
  std::vector<std::string> path;
  path.push_back(expectIdent("statement"));
  while (check(TokenKind::kDot)) {
    advance();
    path.push_back(expectIdent("member name"));
  }

  auto stmt = std::make_unique<Stmt>();
  stmt->loc = loc;

  if (check(TokenKind::kLParen) && path.size() == 1) {
    // Direct action invocation: act(arg, ...);
    stmt->op = StmtOp::kActionCall;
    stmt->target = path[0];
    advance();  // (
    while (!check(TokenKind::kRParen) && !check(TokenKind::kEof)) {
      stmt->args.push_back(parseExpr());
      if (!match(TokenKind::kComma)) break;
    }
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  if (check(TokenKind::kLParen) && path.size() >= 2) {
    // path.method(args)
    std::string method = path.back();
    path.pop_back();
    advance();  // (
    if (path.size() != 1 && method != "setValid" && method != "setInvalid") {
      diag_.error(loc, "method call target must be a simple name");
    }
    stmt->target = path.size() == 1 ? path[0] : "";
    auto mkPathExpr = [&loc](std::vector<std::string> p) {
      auto e = std::make_unique<Expr>();
      e->op = ExprOp::kPath;
      e->loc = loc;
      e->path = std::move(p);
      return e;
    };
    if (method == "apply") {
      stmt->op = StmtOp::kApply;
      expect(TokenKind::kRParen, "')'");
    } else if (method == "read") {
      stmt->op = StmtOp::kRegRead;
      stmt->lhs = parseExpr();
      expect(TokenKind::kComma, "','");
      stmt->index = parseExpr();
      expect(TokenKind::kRParen, "')'");
    } else if (method == "write") {
      stmt->op = StmtOp::kRegWrite;
      stmt->index = parseExpr();
      expect(TokenKind::kComma, "','");
      stmt->rhs = parseExpr();
      expect(TokenKind::kRParen, "')'");
    } else if (method == "count") {
      stmt->op = StmtOp::kCountCall;
      stmt->index = parseExpr();
      expect(TokenKind::kRParen, "')'");
    } else if (method == "execute") {
      stmt->op = StmtOp::kMeterCall;
      stmt->lhs = parseExpr();
      expect(TokenKind::kComma, "','");
      stmt->index = parseExpr();
      expect(TokenKind::kRParen, "')'");
    } else if (method == "setValid") {
      stmt->op = StmtOp::kSetValid;
      stmt->lhs = mkPathExpr(path);
      expect(TokenKind::kRParen, "')'");
    } else if (method == "setInvalid") {
      stmt->op = StmtOp::kSetInvalid;
      stmt->lhs = mkPathExpr(path);
      expect(TokenKind::kRParen, "')'");
    } else {
      diag_.error(loc, "unknown method '" + method + "'");
      stmt->op = StmtOp::kExit;
      expect(TokenKind::kRParen, "')'");
    }
    expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  // Assignment: path [slice] = expr ;
  auto lhs = std::make_unique<Expr>();
  lhs->op = ExprOp::kPath;
  lhs->loc = loc;
  lhs->path = std::move(path);
  if (check(TokenKind::kLBracket)) {
    advance();
    auto slice = std::make_unique<Expr>();
    slice->op = ExprOp::kSlice;
    slice->loc = loc;
    slice->sliceHi = expectInt("slice high bit");
    expect(TokenKind::kColon, "':'");
    slice->sliceLo = expectInt("slice low bit");
    expect(TokenKind::kRBracket, "']'");
    slice->a = std::move(lhs);
    lhs = std::move(slice);
  }
  stmt->op = StmtOp::kAssign;
  stmt->lhs = std::move(lhs);
  expect(TokenKind::kAssign, "'='");
  stmt->rhs = parseExpr();
  expect(TokenKind::kSemicolon, "';'");
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
  ExprPtr cond = parseBinaryLevel(0);
  if (!match(TokenKind::kQuestion)) return cond;
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kTernary;
  e->loc = cond->loc;
  e->a = std::move(cond);
  e->b = parseExpr();
  expect(TokenKind::kColon, "':'");
  e->c = parseExpr();
  return e;
}

namespace {
struct LevelOp {
  TokenKind token;
  BinOp op;
};
// Binary precedence levels, loosest first.
constexpr int kNumLevels = 8;
const std::vector<LevelOp> kLevels[kNumLevels] = {
    {{TokenKind::kOrOr, BinOp::kLOr}},
    {{TokenKind::kAndAnd, BinOp::kLAnd}},
    {{TokenKind::kEqEq, BinOp::kEq}, {TokenKind::kNotEq, BinOp::kNe}},
    {{TokenKind::kLAngle, BinOp::kLt},
     {TokenKind::kLe, BinOp::kLe},
     {TokenKind::kRAngle, BinOp::kGt},
     {TokenKind::kGe, BinOp::kGe}},
    {{TokenKind::kPipe, BinOp::kBitOr},
     {TokenKind::kCaret, BinOp::kBitXor},
     {TokenKind::kAmp, BinOp::kBitAnd}},
    {{TokenKind::kShl, BinOp::kShl}, {TokenKind::kShr, BinOp::kShr}},
    {{TokenKind::kPlus, BinOp::kAdd},
     {TokenKind::kMinus, BinOp::kSub},
     {TokenKind::kConcatOp, BinOp::kConcat}},
    {{TokenKind::kStar, BinOp::kMul},
     {TokenKind::kSlash, BinOp::kDiv},
     {TokenKind::kPercent, BinOp::kMod}},
};
}  // namespace

ExprPtr Parser::parseBinaryLevel(int level) {
  if (level >= kNumLevels) return parseUnary();
  ExprPtr lhs = parseBinaryLevel(level + 1);
  for (;;) {
    const LevelOp* found = nullptr;
    for (const auto& lo : kLevels[level]) {
      if (check(lo.token)) {
        found = &lo;
        break;
      }
    }
    if (found == nullptr) return lhs;
    SourceLoc loc = peek().loc;
    advance();
    auto e = std::make_unique<Expr>();
    e->op = ExprOp::kBinary;
    e->binOp = found->op;
    e->loc = loc;
    e->a = std::move(lhs);
    e->b = parseBinaryLevel(level + 1);
    lhs = std::move(e);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc loc = peek().loc;
  auto mkUnary = [&loc, this](UnOp op) {
    auto e = std::make_unique<Expr>();
    e->op = ExprOp::kUnary;
    e->unOp = op;
    e->loc = loc;
    e->a = parseUnary();
    return e;
  };
  if (match(TokenKind::kBang)) return mkUnary(UnOp::kLNot);
  if (match(TokenKind::kTilde)) return mkUnary(UnOp::kBitNot);
  if (match(TokenKind::kMinus)) return mkUnary(UnOp::kNeg);
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc loc = peek().loc;

  if (check(TokenKind::kIntLit)) {
    auto e = std::make_unique<Expr>();
    e->op = ExprOp::kIntLit;
    e->loc = loc;
    std::string text = advance().text;
    // Split "8w255" into width and value; validate in the checker.
    size_t wPos = std::string::npos;
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == 'w' &&
          i + 1 < text.size() &&  // require digits on both sides
          std::isdigit(static_cast<unsigned char>(text[0]))) {
        // Exclude hex digits context: 'w' never appears in 0x literals.
        wPos = i;
        break;
      }
    }
    if (wPos != std::string::npos && text.compare(0, 2, "0x") != 0 &&
        text.compare(0, 2, "0b") != 0) {
      try {
        e->literalWidth =
            static_cast<uint32_t>(BitVec::parse(32, text.substr(0, wPos))
                                      .toUint64());
      } catch (const std::invalid_argument&) {
        diag_.error(loc, "malformed literal width in '" + text + "'");
      }
      e->literalText = text.substr(wPos + 1);
    } else {
      e->literalText = std::move(text);
    }
    return e;
  }

  if (checkIdent("true") || checkIdent("false")) {
    auto e = std::make_unique<Expr>();
    e->op = ExprOp::kBoolLit;
    e->loc = loc;
    e->boolValue = advance().text == "true";
    return e;
  }

  if (check(TokenKind::kLParen)) {
    // Either a cast "(bit<W>) expr" or a parenthesized expression.
    if (peek(1).kind == TokenKind::kIdent && peek(1).text == "bit" &&
        peek(2).kind == TokenKind::kLAngle) {
      advance();  // (
      advance();  // bit
      advance();  // <
      uint32_t w = expectInt("cast width");
      expectCloseAngle();
      expect(TokenKind::kRParen, "')'");
      auto e = std::make_unique<Expr>();
      e->op = ExprOp::kCast;
      e->loc = loc;
      e->castWidth = w;
      e->a = parseUnary();
      return e;
    }
    advance();
    ExprPtr inner = parseExpr();
    expect(TokenKind::kRParen, "')'");
    // Allow slicing a parenthesized expression.
    if (check(TokenKind::kLBracket)) {
      advance();
      auto slice = std::make_unique<Expr>();
      slice->op = ExprOp::kSlice;
      slice->loc = loc;
      slice->sliceHi = expectInt("slice high bit");
      expect(TokenKind::kColon, "':'");
      slice->sliceLo = expectInt("slice low bit");
      expect(TokenKind::kRBracket, "']'");
      slice->a = std::move(inner);
      return slice;
    }
    return inner;
  }

  if (check(TokenKind::kIdent)) {
    ExprPtr path = parsePath();
    // path.isValid()
    if (path->path.size() >= 2 && path->path.back() == "isValid" &&
        check(TokenKind::kLParen)) {
      advance();
      expect(TokenKind::kRParen, "')'");
      auto e = std::make_unique<Expr>();
      e->op = ExprOp::kIsValid;
      e->loc = loc;
      e->path.assign(path->path.begin(), path->path.end() - 1);
      return e;
    }
    if (check(TokenKind::kLBracket)) {
      advance();
      auto slice = std::make_unique<Expr>();
      slice->op = ExprOp::kSlice;
      slice->loc = loc;
      slice->sliceHi = expectInt("slice high bit");
      expect(TokenKind::kColon, "':'");
      slice->sliceLo = expectInt("slice low bit");
      expect(TokenKind::kRBracket, "']'");
      slice->a = std::move(path);
      return slice;
    }
    return path;
  }

  diag_.error(loc, "expected an expression, found '" + peek().text + "'");
  advance();
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kIntLit;
  e->loc = loc;
  e->literalText = "0";
  return e;
}

ExprPtr Parser::parsePath() {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kPath;
  e->loc = peek().loc;
  e->path.push_back(expectIdent("name"));
  while (check(TokenKind::kDot)) {
    // Stop before method names that the caller handles (isValid handled by
    // parsePrimary after the fact).
    advance();
    e->path.push_back(expectIdent("member name"));
  }
  return e;
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

Program parseString(std::string_view source, DiagnosticEngine& diag) {
  Lexer lexer(source, diag);
  Parser parser(lexer.tokenize(), diag);
  return parser.parseProgram();
}

Program parseStringOrThrow(std::string_view source) {
  DiagnosticEngine diag;
  Program prog = parseString(source, diag);
  diag.throwIfErrors();
  return prog;
}

Program parseFileOrThrow(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CompileError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseStringOrThrow(buf.str());
}

}  // namespace flay::p4
