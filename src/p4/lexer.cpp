#include "p4/lexer.h"

#include <cctype>

namespace flay::p4 {

Lexer::Lexer(std::string_view source, DiagnosticEngine& diag)
    : src_(source), diag_(diag) {}

char Lexer::peek(size_t off) const {
  return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diag_.error({line_, col_}, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokenKind kind, std::string text) {
  return {kind, std::move(text), {line_, col_}};
}

Token Lexer::lexIdentOrKeyword() {
  SourceLoc loc{line_, col_};
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    text += advance();
  }
  return {TokenKind::kIdent, std::move(text), loc};
}

Token Lexer::lexNumber() {
  SourceLoc loc{line_, col_};
  std::string text;
  // Accept [0-9][0-9a-fA-FxXbBoOwW_]* so widths (8w255) and all bases lex as
  // one token; the type checker validates the contents.
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    text += advance();
  }
  return {TokenKind::kIntLit, std::move(text), loc};
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    skipWhitespaceAndComments();
    if (pos_ >= src_.size()) {
      tokens.push_back(makeToken(TokenKind::kEof, ""));
      return tokens;
    }
    SourceLoc loc{line_, col_};
    char c = peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lexIdentOrKeyword());
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lexNumber());
      continue;
    }
    advance();
    auto push = [&](TokenKind k, const char* t) {
      tokens.push_back({k, t, loc});
    };
    switch (c) {
      case '(': push(TokenKind::kLParen, "("); break;
      case ')': push(TokenKind::kRParen, ")"); break;
      case '{': push(TokenKind::kLBrace, "{"); break;
      case '}': push(TokenKind::kRBrace, "}"); break;
      case '[': push(TokenKind::kLBracket, "["); break;
      case ']': push(TokenKind::kRBracket, "]"); break;
      case ';': push(TokenKind::kSemicolon, ";"); break;
      case ':': push(TokenKind::kColon, ":"); break;
      case ',': push(TokenKind::kComma, ","); break;
      case '.': push(TokenKind::kDot, "."); break;
      case '~': push(TokenKind::kTilde, "~"); break;
      case '^': push(TokenKind::kCaret, "^"); break;
      case '?': push(TokenKind::kQuestion, "?"); break;
      case '*': push(TokenKind::kStar, "*"); break;
      case '/': push(TokenKind::kSlash, "/"); break;
      case '%': push(TokenKind::kPercent, "%"); break;
      case '-': push(TokenKind::kMinus, "-"); break;
      case '+':
        if (match('+')) push(TokenKind::kConcatOp, "++");
        else push(TokenKind::kPlus, "+");
        break;
      case '=':
        if (match('=')) push(TokenKind::kEqEq, "==");
        else push(TokenKind::kAssign, "=");
        break;
      case '!':
        if (match('=')) push(TokenKind::kNotEq, "!=");
        else push(TokenKind::kBang, "!");
        break;
      case '<':
        if (match('<')) push(TokenKind::kShl, "<<");
        else if (match('=')) push(TokenKind::kLe, "<=");
        else push(TokenKind::kLAngle, "<");
        break;
      case '>':
        if (match('>')) push(TokenKind::kShr, ">>");
        else if (match('=')) push(TokenKind::kGe, ">=");
        else push(TokenKind::kRAngle, ">");
        break;
      case '&':
        if (peek() == '&' && peek(1) == '&') {
          advance();
          advance();
          push(TokenKind::kMask, "&&&");
        } else if (match('&')) {
          push(TokenKind::kAndAnd, "&&");
        } else {
          push(TokenKind::kAmp, "&");
        }
        break;
      case '|':
        if (match('|')) push(TokenKind::kOrOr, "||");
        else push(TokenKind::kPipe, "|");
        break;
      default:
        diag_.error(loc, std::string("unexpected character '") + c + "'");
        break;
    }
  }
}

}  // namespace flay::p4
