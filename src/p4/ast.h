#ifndef FLAY_P4_AST_H
#define FLAY_P4_AST_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bitvec.h"
#include "support/diagnostics.h"

namespace flay::p4 {

/// P4-lite is the dialect this repo's front end accepts: a subset of P4-16
/// with a fixed V1-style architecture (parser -> controls -> deparser),
/// headers/structs of bit<N> and bool fields, match-action tables
/// (exact/ternary/lpm), actions with data parameters, registers, counters,
/// meters, parser value sets, and action profiles. See README for the
/// grammar. Everything Flay specializes (Sections 3-4 of the paper) is
/// representable.

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor,
  kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLAnd, kLOr,
  kConcat,
};

enum class UnOp { kBitNot, kLNot, kNeg };

enum class ExprOp {
  kIntLit,   // literal text (+ optional explicit width, e.g. 8w255)
  kBoolLit,
  kPath,     // dotted name: hdr.eth.dst, local var, const, action param
  kUnary,
  kBinary,
  kTernary,  // cond ? a : b
  kSlice,    // a[hi:lo]
  kCast,     // (bit<W>) a
  kIsValid,  // path.isValid()
};

/// How the type checker resolved a kPath expression.
enum class PathKind {
  kUnresolved,
  kField,        // flattened header/struct/standard-metadata field
  kLocal,        // local variable in an apply block or action
  kConst,        // top-level const (inlined by the checker)
  kActionParam,  // data parameter of the enclosing action
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprOp op;
  SourceLoc loc;

  // kIntLit
  std::string literalText;
  std::optional<uint32_t> literalWidth;  // explicit "8w..." width if given
  // kBoolLit
  bool boolValue = false;
  // kPath / kIsValid
  std::vector<std::string> path;
  // kUnary / kBinary
  UnOp unOp = UnOp::kBitNot;
  BinOp binOp = BinOp::kAdd;
  // kSlice
  uint32_t sliceHi = 0, sliceLo = 0;
  // kCast
  uint32_t castWidth = 0;

  ExprPtr a, b, c;

  // ----- Filled in by the type checker -----
  uint32_t width = 0;   // bit width; 0 together with isBool means boolean
  bool isBool = false;
  PathKind pathKind = PathKind::kUnresolved;
  /// Canonical dotted location for kField ("hdr.eth.dst", "sm.egress_spec"),
  /// or the local/param name for kLocal/kActionParam.
  std::string canonical;
  /// For kIntLit (and kPath resolved to kConst): the literal's value.
  BitVec value;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtOp {
  kAssign,       // lhs = rhs
  kVarDecl,      // bit<W> name = init
  kIf,
  kApply,        // table.apply()
  kActionCall,   // direct action invocation: act(arg, ...)
  kExtract,      // extract(hdr.x)       (parser only)
  kEmit,         // emit(hdr.x)          (deparser only)
  kSetValid,     // hdr.x.setValid()
  kSetInvalid,   // hdr.x.setInvalid()
  kMarkToDrop,   // mark_to_drop()
  kRegRead,      // reg.read(lhs, idx)
  kRegWrite,     // reg.write(idx, value)
  kCountCall,    // counter.count(idx)
  kMeterCall,    // meter.execute(lhs, idx)
  kTransition,   // parser only; uses TransitionInfo
  kExit,         // exit / return
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A select case in a parser transition.
struct SelectCase {
  enum class Kind { kConst, kDefault, kValueSet };
  Kind kind = Kind::kDefault;
  ExprPtr value;      // kConst: matched value (literal)
  ExprPtr mask;       // kConst: optional &&& mask
  std::string valueSet;  // kValueSet
  std::string nextState;
  SourceLoc loc;
};

struct TransitionInfo {
  /// Direct transition when select is absent.
  std::string nextState;
  ExprPtr selectExpr;  // null for direct transitions
  std::vector<SelectCase> cases;
};

struct Stmt {
  StmtOp op;
  SourceLoc loc;

  ExprPtr lhs;   // kAssign target, kExtract/kEmit/kSetValid path, reg.read dst
  ExprPtr rhs;   // kAssign value, reg.write value, indexes below
  ExprPtr index;  // register/counter/meter index expression

  // kVarDecl
  std::string varName;
  uint32_t varWidth = 0;
  bool varIsBool = false;

  // kIf
  ExprPtr cond;
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;

  // kApply / kActionCall / extern calls: target object name.
  std::string target;
  // kActionCall argument expressions.
  std::vector<ExprPtr> args;

  // kTransition
  TransitionInfo transition;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct HeaderField {
  std::string name;
  uint32_t width = 0;  // bool fields get width 1 in headers
  SourceLoc loc;
};

struct HeaderTypeDecl {
  std::string name;
  std::vector<HeaderField> fields;
  SourceLoc loc;
  uint32_t totalWidth() const {
    uint32_t sum = 0;
    for (const auto& f : fields) sum += f.width;
    return sum;
  }
};

struct StructField {
  std::string name;
  std::string typeName;  // header or struct type; empty for scalar fields
  uint32_t width = 0;    // scalar fields: bit<N> width (bool fields get 1)
  bool isBool = false;
  SourceLoc loc;
  bool isScalar() const { return typeName.empty(); }
};

struct StructTypeDecl {
  std::string name;
  std::vector<StructField> fields;
  SourceLoc loc;
};

struct ConstDecl {
  std::string name;
  uint32_t width = 0;
  ExprPtr value;
  SourceLoc loc;
};

struct ActionParam {
  std::string name;
  uint32_t width = 0;
  SourceLoc loc;
};

struct ActionDecl {
  std::string name;
  std::vector<ActionParam> params;
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

enum class MatchKind { kExact, kTernary, kLpm };

struct KeyElement {
  ExprPtr expr;
  MatchKind matchKind = MatchKind::kExact;
  SourceLoc loc;
};

struct DefaultAction {
  std::string name = "noop";
  std::vector<ExprPtr> args;
};

struct TableDecl {
  std::string name;
  std::vector<KeyElement> keys;
  std::vector<std::string> actionNames;
  DefaultAction defaultAction;
  uint32_t size = 1024;
  /// Optional action profile backing this table ("implementation = ...").
  std::string actionProfile;
  SourceLoc loc;
};

struct RegisterDecl {
  std::string name;
  uint32_t width = 0;
  uint32_t size = 0;
  SourceLoc loc;
};

struct CounterDecl {
  std::string name;
  uint32_t size = 0;
  SourceLoc loc;
};

struct MeterDecl {
  std::string name;
  uint32_t size = 0;
  SourceLoc loc;
};

struct ActionProfileDecl {
  std::string name;
  uint32_t size = 0;
  SourceLoc loc;
};

struct ValueSetDecl {
  std::string name;
  uint32_t width = 0;
  uint32_t size = 0;
  SourceLoc loc;
};

struct ParserStateDecl {
  std::string name;
  std::vector<StmtPtr> body;  // last statement is kTransition
  SourceLoc loc;
};

struct ParserDecl {
  std::string name;
  std::vector<ValueSetDecl> valueSets;
  std::vector<ParserStateDecl> states;
  SourceLoc loc;
  const ParserStateDecl* findState(const std::string& n) const {
    for (const auto& s : states) {
      if (s.name == n) return &s;
    }
    return nullptr;
  }
};

struct ControlDecl {
  std::string name;
  std::vector<ActionDecl> actions;
  std::vector<TableDecl> tables;
  std::vector<RegisterDecl> registers;
  std::vector<CounterDecl> counters;
  std::vector<MeterDecl> meters;
  std::vector<ActionProfileDecl> actionProfiles;
  std::vector<StmtPtr> applyBody;
  SourceLoc loc;

  const ActionDecl* findAction(const std::string& n) const {
    for (const auto& a : actions) {
      if (a.name == n) return &a;
    }
    return nullptr;
  }
  const TableDecl* findTable(const std::string& n) const {
    for (const auto& t : tables) {
      if (t.name == n) return &t;
    }
    return nullptr;
  }
};

struct DeparserDecl {
  std::string name;
  std::vector<StmtPtr> body;  // kEmit statements
  SourceLoc loc;
};

struct PipelineDecl {
  std::string parserName;
  std::vector<std::string> controlNames;
  std::string deparserName;
  SourceLoc loc;
};

struct Program {
  std::vector<HeaderTypeDecl> headerTypes;
  std::vector<StructTypeDecl> structTypes;
  std::vector<ConstDecl> consts;
  std::vector<ParserDecl> parsers;
  std::vector<ControlDecl> controls;
  std::vector<DeparserDecl> deparsers;
  PipelineDecl pipeline;

  const HeaderTypeDecl* findHeaderType(const std::string& n) const {
    for (const auto& h : headerTypes) {
      if (h.name == n) return &h;
    }
    return nullptr;
  }
  const StructTypeDecl* findStructType(const std::string& n) const {
    for (const auto& s : structTypes) {
      if (s.name == n) return &s;
    }
    return nullptr;
  }
  const ParserDecl* findParser(const std::string& n) const {
    for (const auto& p : parsers) {
      if (p.name == n) return &p;
    }
    return nullptr;
  }
  const ControlDecl* findControl(const std::string& n) const {
    for (const auto& c : controls) {
      if (c.name == n) return &c;
    }
    return nullptr;
  }
  const DeparserDecl* findDeparser(const std::string& n) const {
    for (const auto& d : deparsers) {
      if (d.name == n) return &d;
    }
    return nullptr;
  }

  /// Total statement count, the paper's Table 2 complexity metric.
  size_t statementCount() const;
};

}  // namespace flay::p4

#endif  // FLAY_P4_AST_H
