#ifndef FLAY_P4_PRINTER_H
#define FLAY_P4_PRINTER_H

#include <string>

#include "p4/ast.h"

namespace flay::p4 {

/// Renders AST nodes back to P4-lite source. The output of a checked (or
/// specializer-produced) program re-parses and re-checks to an equivalent
/// program — the property the round-trip tests enforce.
std::string printExpr(const Expr& e);
std::string printStmt(const Stmt& s, int indent = 0);
std::string printProgram(const Program& prog);

}  // namespace flay::p4

#endif  // FLAY_P4_PRINTER_H
