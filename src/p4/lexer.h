#ifndef FLAY_P4_LEXER_H
#define FLAY_P4_LEXER_H

#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.h"

namespace flay::p4 {

enum class TokenKind {
  kIdent,
  kIntLit,     // 123, 0xff, 8w255 is split: "8" "w255"? no — lexed whole
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kLAngle, kRAngle,       // < >
  kSemicolon, kColon, kComma, kDot, kAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang, kQuestion,
  kShl, kShr,             // << >>
  kEqEq, kNotEq, kLe, kGe,
  kAndAnd, kOrOr,
  kMask,                  // &&& (ternary select-case mask)
  kConcatOp,              // ++
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  SourceLoc loc;
};

/// Hand-written lexer for P4-lite. Comments (`//`, `/* */`) are skipped.
/// Integer literals keep their raw text (including P4 width prefixes such as
/// `8w255`); the type checker parses the value.
class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diag);

  /// Lexes the entire input. The final token is always kEof.
  std::vector<Token> tokenize();

 private:
  char peek(size_t off = 0) const;
  char advance();
  bool match(char expected);
  void skipWhitespaceAndComments();
  Token lexIdentOrKeyword();
  Token lexNumber();
  Token makeToken(TokenKind kind, std::string text);

  std::string_view src_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
  DiagnosticEngine& diag_;
};

}  // namespace flay::p4

#endif  // FLAY_P4_LEXER_H
