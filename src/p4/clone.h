#ifndef FLAY_P4_CLONE_H
#define FLAY_P4_CLONE_H

#include "p4/ast.h"

namespace flay::p4 {

/// Deep copies. Type-checker annotations (widths, resolutions, literal
/// values) are preserved, so a cloned checked program stays checked as long
/// as the transformation keeps it well-typed.
ExprPtr cloneExpr(const Expr& e);
StmtPtr cloneStmt(const Stmt& s);
std::vector<StmtPtr> cloneStmts(const std::vector<StmtPtr>& stmts);
Program cloneProgram(const Program& prog);

}  // namespace flay::p4

#endif  // FLAY_P4_CLONE_H
