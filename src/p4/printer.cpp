#include "p4/printer.h"

namespace flay::p4 {

namespace {

std::string ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

const char* binOpToken(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
    case BinOp::kConcat: return "++";
  }
  return "?";
}

std::string pathString(const std::vector<std::string>& path) {
  std::string s;
  for (const auto& p : path) {
    if (!s.empty()) s += '.';
    s += p;
  }
  return s;
}

std::string typeString(uint32_t width, bool isBool) {
  return isBool ? "bool" : "bit<" + std::to_string(width) + ">";
}

}  // namespace

std::string printExpr(const Expr& e) {
  switch (e.op) {
    case ExprOp::kIntLit:
      // Emit with an explicit width when known so round-trips never depend
      // on inference context.
      if (e.width > 0) {
        return std::to_string(e.width) + "w" +
               (e.value.width() == e.width ? e.value.toHexString()
                                           : e.literalText);
      }
      return e.literalText;
    case ExprOp::kBoolLit:
      return e.boolValue ? "true" : "false";
    case ExprOp::kPath:
      return pathString(e.path);
    case ExprOp::kIsValid:
      return pathString(e.path) + ".isValid()";
    case ExprOp::kUnary: {
      const char* op = e.unOp == UnOp::kLNot   ? "!"
                       : e.unOp == UnOp::kBitNot ? "~"
                                                  : "-";
      return std::string(op) + printExpr(*e.a);
    }
    case ExprOp::kBinary:
      return "(" + printExpr(*e.a) + " " + binOpToken(e.binOp) + " " +
             printExpr(*e.b) + ")";
    case ExprOp::kTernary:
      return "(" + printExpr(*e.a) + " ? " + printExpr(*e.b) + " : " +
             printExpr(*e.c) + ")";
    case ExprOp::kSlice:
      return printExpr(*e.a) + "[" + std::to_string(e.sliceHi) + ":" +
             std::to_string(e.sliceLo) + "]";
    case ExprOp::kCast:
      return "(bit<" + std::to_string(e.castWidth) + ">) " + printExpr(*e.a);
  }
  return "<?>";
}

std::string printStmt(const Stmt& s, int indent) {
  std::string out = ind(indent);
  switch (s.op) {
    case StmtOp::kAssign:
      return out + printExpr(*s.lhs) + " = " + printExpr(*s.rhs) + ";\n";
    case StmtOp::kVarDecl: {
      out += typeString(s.varWidth, s.varIsBool) + " " + s.varName;
      if (s.rhs != nullptr) out += " = " + printExpr(*s.rhs);
      return out + ";\n";
    }
    case StmtOp::kIf: {
      out += "if (" + printExpr(*s.cond) + ") {\n";
      for (const auto& inner : s.thenBody) out += printStmt(*inner, indent + 1);
      out += ind(indent) + "}";
      if (!s.elseBody.empty()) {
        out += " else {\n";
        for (const auto& inner : s.elseBody) {
          out += printStmt(*inner, indent + 1);
        }
        out += ind(indent) + "}";
      }
      return out + "\n";
    }
    case StmtOp::kApply:
      return out + s.target + ".apply();\n";
    case StmtOp::kActionCall: {
      out += s.target + "(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += printExpr(*s.args[i]);
      }
      return out + ");\n";
    }
    case StmtOp::kExtract:
      return out + "extract(" + pathString(s.lhs->path) + ");\n";
    case StmtOp::kEmit:
      return out + "emit(" + pathString(s.lhs->path) + ");\n";
    case StmtOp::kSetValid:
      return out + pathString(s.lhs->path) + ".setValid();\n";
    case StmtOp::kSetInvalid:
      return out + pathString(s.lhs->path) + ".setInvalid();\n";
    case StmtOp::kMarkToDrop:
      return out + "mark_to_drop();\n";
    case StmtOp::kRegRead:
      return out + s.target + ".read(" + printExpr(*s.lhs) + ", " +
             printExpr(*s.index) + ");\n";
    case StmtOp::kRegWrite:
      return out + s.target + ".write(" + printExpr(*s.index) + ", " +
             printExpr(*s.rhs) + ");\n";
    case StmtOp::kCountCall:
      return out + s.target + ".count(" + printExpr(*s.index) + ");\n";
    case StmtOp::kMeterCall:
      return out + s.target + ".execute(" + printExpr(*s.lhs) + ", " +
             printExpr(*s.index) + ");\n";
    case StmtOp::kExit:
      return out + "exit;\n";
    case StmtOp::kTransition: {
      const TransitionInfo& t = s.transition;
      if (t.selectExpr == nullptr) {
        return out + "transition " + t.nextState + ";\n";
      }
      out += "transition select(" + printExpr(*t.selectExpr) + ") {\n";
      for (const auto& c : t.cases) {
        out += ind(indent + 1);
        switch (c.kind) {
          case SelectCase::Kind::kDefault:
            out += "default";
            break;
          case SelectCase::Kind::kValueSet:
            out += c.valueSet;
            break;
          case SelectCase::Kind::kConst:
            out += printExpr(*c.value);
            if (c.mask != nullptr) out += " &&& " + printExpr(*c.mask);
            break;
        }
        out += ": " + c.nextState + ";\n";
      }
      return out + ind(indent) + "}\n";
    }
  }
  return out + "/* ? */;\n";
}

namespace {

std::string printTable(const TableDecl& t, int indent) {
  std::string out = ind(indent) + "table " + t.name + " {\n";
  if (!t.keys.empty()) {
    out += ind(indent + 1) + "key = {\n";
    for (const auto& k : t.keys) {
      const char* mk = k.matchKind == MatchKind::kExact     ? "exact"
                       : k.matchKind == MatchKind::kTernary ? "ternary"
                                                            : "lpm";
      out += ind(indent + 2) + printExpr(*k.expr) + " : " + mk + ";\n";
    }
    out += ind(indent + 1) + "}\n";
  }
  out += ind(indent + 1) + "actions = { ";
  for (const auto& a : t.actionNames) out += a + "; ";
  out += "}\n";
  out += ind(indent + 1) + "default_action = " + t.defaultAction.name;
  if (!t.defaultAction.args.empty()) {
    out += "(";
    for (size_t i = 0; i < t.defaultAction.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += printExpr(*t.defaultAction.args[i]);
    }
    out += ")";
  }
  out += ";\n";
  out += ind(indent + 1) + "size = " + std::to_string(t.size) + ";\n";
  if (!t.actionProfile.empty()) {
    out += ind(indent + 1) + "implementation = " + t.actionProfile + ";\n";
  }
  return out + ind(indent) + "}\n";
}

}  // namespace

std::string printProgram(const Program& prog) {
  std::string out;
  for (const auto& h : prog.headerTypes) {
    out += "header " + h.name + " {\n";
    for (const auto& f : h.fields) {
      out += ind(1) + "bit<" + std::to_string(f.width) + "> " + f.name + ";\n";
    }
    out += "}\n";
  }
  for (const auto& s : prog.structTypes) {
    out += "struct " + s.name + " {\n";
    for (const auto& f : s.fields) {
      out += ind(1) +
             (f.isScalar() ? typeString(f.isBool ? 0 : f.width, f.isBool)
                           : f.typeName) +
             " " + f.name + ";\n";
    }
    out += "}\n";
  }
  for (const auto& c : prog.consts) {
    out += "const bit<" + std::to_string(c.width) + "> " + c.name + " = " +
           printExpr(*c.value) + ";\n";
  }
  for (const auto& p : prog.parsers) {
    out += "parser " + p.name + " {\n";
    for (const auto& vs : p.valueSets) {
      out += ind(1) + "value_set<bit<" + std::to_string(vs.width) + ">>(" +
             std::to_string(vs.size) + ") " + vs.name + ";\n";
    }
    for (const auto& st : p.states) {
      out += ind(1) + "state " + st.name + " {\n";
      for (const auto& s : st.body) out += printStmt(*s, 2);
      out += ind(1) + "}\n";
    }
    out += "}\n";
  }
  for (const auto& c : prog.controls) {
    out += "control " + c.name + " {\n";
    for (const auto& r : c.registers) {
      out += ind(1) + "register<bit<" + std::to_string(r.width) + ">>(" +
             std::to_string(r.size) + ") " + r.name + ";\n";
    }
    for (const auto& ctr : c.counters) {
      out += ind(1) + "counter(" + std::to_string(ctr.size) + ") " +
             ctr.name + ";\n";
    }
    for (const auto& m : c.meters) {
      out += ind(1) + "meter(" + std::to_string(m.size) + ") " + m.name +
             ";\n";
    }
    for (const auto& ap : c.actionProfiles) {
      out += ind(1) + "action_profile(" + std::to_string(ap.size) + ") " +
             ap.name + ";\n";
    }
    for (const auto& a : c.actions) {
      out += ind(1) + "action " + a.name + "(";
      for (size_t i = 0; i < a.params.size(); ++i) {
        if (i > 0) out += ", ";
        out += "bit<" + std::to_string(a.params[i].width) + "> " +
               a.params[i].name;
      }
      out += ") {\n";
      for (const auto& s : a.body) out += printStmt(*s, 2);
      out += ind(1) + "}\n";
    }
    for (const auto& t : c.tables) out += printTable(t, 1);
    out += ind(1) + "apply {\n";
    for (const auto& s : c.applyBody) out += printStmt(*s, 2);
    out += ind(1) + "}\n";
    out += "}\n";
  }
  for (const auto& d : prog.deparsers) {
    out += "deparser " + d.name + " {\n";
    for (const auto& s : d.body) out += printStmt(*s, 1);
    out += "}\n";
  }
  out += "pipeline(" + prog.pipeline.parserName;
  for (const auto& c : prog.pipeline.controlNames) out += ", " + c;
  out += ", " + prog.pipeline.deparserName + ");\n";
  return out;
}

}  // namespace flay::p4
