#ifndef FLAY_NET_TRACE_H
#define FLAY_NET_TRACE_H

#include <string>
#include <vector>

#include "runtime/device_config.h"

namespace flay::net {

/// The control-plane input classes of the paper's Fig. 1, ordered by rate
/// of change: policy (days), routing/NAT (seconds, bursty), and — outside
/// the control plane — packets (nanoseconds; handled by the simulator).
enum class UpdateClass { kPolicy, kRouting, kNat };

inline const char* updateClassName(UpdateClass c) {
  switch (c) {
    case UpdateClass::kPolicy: return "policy";
    case UpdateClass::kRouting: return "routing";
    case UpdateClass::kNat: return "nat";
  }
  return "?";
}

/// One timed control-plane event.
struct TraceEvent {
  double timeSec = 0;
  UpdateClass cls = UpdateClass::kRouting;
  runtime::Update update;
};

/// Parameters of a synthetic control-plane timeline. Policy changes are
/// rare and independent; routing updates arrive in bursts ("changes
/// happening at once quickly followed by a long quiescence", §1); NAT
/// churn is frequent and steady.
struct TraceSpec {
  double durationSec = 3600;
  uint64_t seed = 1;

  std::string policyTable;
  double policyMeanIntervalSec = 900;

  std::string routeTable;
  double routeBurstMeanIntervalSec = 120;
  size_t routeBurstMin = 20;
  size_t routeBurstMax = 200;
  double routeBurstSpacingSec = 0.01;

  std::string natTable;
  double natMeanIntervalSec = 2.0;
};

/// Generates a time-ordered event sequence valid for `config`'s schemas
/// (entries are fuzzed per table; inserts and occasional deletes). The
/// returned updates have NOT been applied to `config`.
std::vector<TraceEvent> generateControlPlaneTrace(
    const runtime::DeviceConfig& config, const TraceSpec& spec);

}  // namespace flay::net

#endif  // FLAY_NET_TRACE_H
