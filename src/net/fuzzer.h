#ifndef FLAY_NET_FUZZER_H
#define FLAY_NET_FUZZER_H

#include <random>
#include <set>
#include <string>
#include <vector>

#include "runtime/table_state.h"

namespace flay::net {

/// Generates unique random control-plane entries for a table schema — the
/// stand-in for the ControlPlaneSmith fuzzer the paper uses to produce
/// 1000-entry semantics-preserving bursts (§4.2).
class EntryFuzzer {
 public:
  explicit EntryFuzzer(uint64_t seed) : rng_(seed) {}

  /// Produces `count` entries valid for `table`, each with a distinct match
  /// set. Actions are drawn uniformly from the table's action list (minus
  /// `excludedActions`); action arguments are random values of the right
  /// width. Priorities are assigned decreasing and unique for ternary
  /// tables. Throws if the schema admits fewer than `count` distinct keys.
  std::vector<runtime::TableEntry> uniqueEntries(
      const runtime::TableState& table, size_t count,
      const std::vector<std::string>& excludedActions = {});

  /// Random value of the given width.
  BitVec randomValue(uint32_t width);
  /// Random mask that keeps at least one bit set (non-wildcard).
  BitVec randomMask(uint32_t width);
  uint64_t randomUint(uint64_t bound);  // [0, bound)

 private:
  std::mt19937_64 rng_;
};

}  // namespace flay::net

#endif  // FLAY_NET_FUZZER_H
