#ifndef FLAY_NET_FUZZER_H
#define FLAY_NET_FUZZER_H

#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "runtime/device_config.h"
#include "runtime/table_state.h"
#include "sim/packet.h"

namespace flay::net {

/// Generates unique random control-plane entries for a table schema — the
/// stand-in for the ControlPlaneSmith fuzzer the paper uses to produce
/// 1000-entry semantics-preserving bursts (§4.2).
class EntryFuzzer {
 public:
  explicit EntryFuzzer(uint64_t seed) : rng_(seed) {}

  /// Produces `count` entries valid for `table`, each with a distinct match
  /// set. Actions are drawn uniformly from the table's action list (minus
  /// `excludedActions`); action arguments are random values of the right
  /// width. Priorities are assigned decreasing and unique for ternary
  /// tables. Throws if the schema admits fewer than `count` distinct keys.
  std::vector<runtime::TableEntry> uniqueEntries(
      const runtime::TableState& table, size_t count,
      const std::vector<std::string>& excludedActions = {});

  /// Random value of the given width.
  BitVec randomValue(uint32_t width);
  /// Random mask that keeps at least one bit set (non-wildcard).
  BitVec randomMask(uint32_t width);
  uint64_t randomUint(uint64_t bound);  // [0, bound)

 private:
  std::mt19937_64 rng_;
};

/// Parser- and entry-aware packet generator, the p4testgen-style input half
/// of the differential oracle. Walks the program's parser state machine to
/// build wire-format packets that reach deep parser states (select cases are
/// steered onto their matched constants / value-set members), then biases
/// header fields used as table keys toward installed entry match values so
/// the match-action pipeline exercises real hits, not just misses.
class PacketFuzzer {
 public:
  /// Both references must outlive the fuzzer; `config` is consulted live, so
  /// packets generated after an update can steer onto the new entries.
  PacketFuzzer(const p4::CheckedProgram& checked,
               const runtime::DeviceConfig& config, uint64_t seed);

  sim::Packet randomPacket();

 private:
  /// Bit range a field occupies in the packet being built.
  struct FieldSite {
    size_t bitOffset = 0;
    uint32_t width = 0;
  };

  void appendBits(const BitVec& v);
  void overwriteBits(const FieldSite& site, const BitVec& v);
  /// Picks a value for a select scrutinee: one of the case constants (with
  /// random bits under the case mask's complement), a value-set member, or a
  /// fully random value for the default path.
  BitVec steerSelectValue(const p4::ParserDecl& parser,
                          const p4::TransitionInfo& t, uint32_t width);
  /// Mirrors the interpreter's case matching to find the taken next state.
  std::string resolveTransition(const p4::ParserDecl& parser,
                                const p4::TransitionInfo& t,
                                const BitVec& key) const;
  void steerTableKeys();

  const p4::CheckedProgram& checked_;
  const runtime::DeviceConfig& config_;
  EntryFuzzer entropy_;
  std::mt19937_64 rng_;

  // Per-packet build state.
  std::vector<uint8_t> bytes_;
  size_t bitPos_ = 0;
  std::map<std::string, FieldSite> fieldSites_;  // canonical -> bit range
  std::map<std::string, BitVec> fieldValues_;    // canonical -> chosen value
};

/// Generates a deterministic, self-consistent control-plane update sequence
/// for `checked`: a mix of inserts, deletes and modifies of previously
/// installed entries, default-action overrides, and value-set inserts.
/// Every update in the returned script applies cleanly when the whole script
/// is replayed in order against an initially-empty config (deletes/modifies
/// reference ids that a full in-order replay assigns); replaying a subset
/// may make individual updates unappliable, which replayers should treat as
/// rejected-and-skipped so shrinking stays deterministic.
std::vector<runtime::Update> fuzzUpdateSequence(
    const p4::CheckedProgram& checked, size_t count, uint64_t seed);

}  // namespace flay::net

#endif  // FLAY_NET_FUZZER_H
