#ifndef FLAY_NET_HEADERS_H
#define FLAY_NET_HEADERS_H

#include <cstdint>
#include <vector>

#include "support/bitvec.h"

namespace flay::net {

/// Helpers that assemble raw packets for the simulator. Field layouts match
/// the header declarations used throughout the bundled P4-lite programs.

struct EthHeader {
  uint64_t dst = 0;  // 48 bits
  uint64_t src = 0;  // 48 bits
  uint16_t type = 0;
};

struct Ipv4Header {
  uint8_t version = 4;
  uint8_t ihl = 5;
  uint8_t tos = 0;
  uint16_t len = 20;
  uint16_t id = 0;
  uint8_t flags = 0;   // 3 bits
  uint16_t frag = 0;   // 13 bits
  uint8_t ttl = 64;
  uint8_t proto = 6;
  uint16_t csum = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
};

struct Ipv6Header {
  uint8_t version = 6;      // 4 bits
  uint8_t trafficClass = 0;
  uint32_t flowLabel = 0;   // 20 bits
  uint16_t payloadLen = 0;
  uint8_t nextHeader = 6;
  uint8_t hopLimit = 64;
  BitVec src = BitVec::zero(128);
  BitVec dst = BitVec::zero(128);
};

struct UdpHeader {
  uint16_t srcPort = 0;
  uint16_t dstPort = 0;
  uint16_t len = 8;
  uint16_t csum = 0;
};

struct TcpHeader {
  uint16_t srcPort = 0;
  uint16_t dstPort = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t dataOffset = 5;  // 4 bits
  uint8_t flags = 0;       // we model 12 bits of reserved+flags
  uint16_t window = 0;
  uint16_t csum = 0;
  uint16_t urgent = 0;
};

/// Incremental packet builder; append headers high-to-low in wire order.
class PacketBuilder {
 public:
  PacketBuilder& eth(const EthHeader& h);
  PacketBuilder& ipv4(const Ipv4Header& h);
  PacketBuilder& ipv6(const Ipv6Header& h);
  PacketBuilder& udp(const UdpHeader& h);
  PacketBuilder& tcp(const TcpHeader& h);
  PacketBuilder& payload(std::vector<uint8_t> bytes);
  PacketBuilder& raw(const BitVec& bits);

  std::vector<uint8_t> build() const { return bytes_; }

 private:
  void appendBits(const BitVec& v);
  std::vector<uint8_t> bytes_;
  uint32_t bitPos_ = 0;
};

/// RFC 1071 ones-complement checksum over 16-bit words.
uint16_t internetChecksum(const std::vector<uint8_t>& bytes, size_t offset,
                          size_t length);

/// Computes and fills the IPv4 header checksum field in a built packet whose
/// IPv4 header starts at byte `offset`.
void fillIpv4Checksum(std::vector<uint8_t>& packet, size_t offset);

}  // namespace flay::net

#endif  // FLAY_NET_HEADERS_H
