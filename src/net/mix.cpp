#include "net/mix.h"

namespace flay::net {

const char* mixName(TrafficMix mix) {
  switch (mix) {
    case TrafficMix::kUniform: return "uniform";
    case TrafficMix::kHeavyHitter: return "heavy-hitter";
    case TrafficMix::kPortScan: return "port-scan";
    case TrafficMix::kTunnel: return "tunnel";
  }
  return "?";
}

std::optional<TrafficMix> parseMix(const std::string& name) {
  if (name == "uniform") return TrafficMix::kUniform;
  if (name == "heavy-hitter") return TrafficMix::kHeavyHitter;
  if (name == "port-scan") return TrafficMix::kPortScan;
  if (name == "tunnel") return TrafficMix::kTunnel;
  return std::nullopt;
}

std::vector<TrafficMix> allMixes() {
  return {TrafficMix::kUniform, TrafficMix::kHeavyHitter,
          TrafficMix::kPortScan, TrafficMix::kTunnel};
}

TrafficMixer::TrafficMixer(const p4::CheckedProgram& checked,
                           const runtime::DeviceConfig& config, TrafficMix mix,
                           uint64_t seed)
    : mix_(mix), fuzzer_(checked, config, seed), rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  if (mix_ == TrafficMix::kHeavyHitter) {
    pool_.reserve(kFlowPool);
    for (size_t i = 0; i < kFlowPool; ++i) pool_.push_back(fuzzer_.randomPacket());
  }
}

sim::Packet TrafficMixer::next() {
  switch (mix_) {
    case TrafficMix::kUniform: return fuzzer_.randomPacket();
    case TrafficMix::kHeavyHitter: return heavyHitter();
    case TrafficMix::kPortScan: return portScan();
    case TrafficMix::kTunnel: return tunnel();
  }
  return fuzzer_.randomPacket();
}

sim::Packet TrafficMixer::heavyHitter() {
  // Geometric rank pick: flow k is drawn with probability 2^-(k+1), so the
  // top flow carries about half the stream and the pool tail is mice.
  uint64_t r = rng_();
  size_t rank = 0;
  while (rank + 1 < pool_.size() && (r & 1) == 0) {
    r >>= 1;
    ++rank;
  }
  // Slow hot-set drift: occasionally replace one pooled flow with a fresh
  // fuzzed packet (steered against the *current* entries of this snapshot).
  if (++sinceRefresh_ >= 64) {
    sinceRefresh_ = 0;
    pool_[rng_() % pool_.size()] = fuzzer_.randomPacket();
  }
  return pool_[rank];
}

sim::Packet TrafficMixer::portScan() {
  if (scanStep_ >= kSweepLength) {
    scanBase_ = fuzzer_.randomPacket();
    scanStep_ = 0;
  }
  sim::Packet p = scanBase_;
  // Sweep a 16-bit window near the tail of the headers — the scan shape:
  // one fixed source varying the last-parsed key field monotonically.
  if (p.bytes.size() >= 2) {
    size_t at = p.bytes.size() - 2;
    p.bytes[at] = static_cast<uint8_t>(scanStep_ >> 8);
    p.bytes[at + 1] = static_cast<uint8_t>(scanStep_);
  }
  ++scanStep_;
  return p;
}

sim::Packet TrafficMixer::tunnel() {
  // Bias toward the deepest parser chains (encapsulated/tunneled packets
  // carry the most header bytes): best-of-3 by parsed length.
  sim::Packet best = fuzzer_.randomPacket();
  for (int i = 0; i < 2; ++i) {
    sim::Packet cand = fuzzer_.randomPacket();
    if (cand.bytes.size() > best.bytes.size()) best = std::move(cand);
  }
  return best;
}

}  // namespace flay::net
