#include "net/headers.h"

namespace flay::net {

void PacketBuilder::appendBits(const BitVec& v) {
  for (uint32_t i = v.width(); i-- > 0;) {
    if (bitPos_ % 8 == 0) bytes_.push_back(0);
    if (v.bit(i)) {
      bytes_.back() |= static_cast<uint8_t>(1u << (7 - bitPos_ % 8));
    }
    ++bitPos_;
  }
}

PacketBuilder& PacketBuilder::eth(const EthHeader& h) {
  appendBits(BitVec(48, h.dst));
  appendBits(BitVec(48, h.src));
  appendBits(BitVec(16, h.type));
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(const Ipv4Header& h) {
  appendBits(BitVec(4, h.version));
  appendBits(BitVec(4, h.ihl));
  appendBits(BitVec(8, h.tos));
  appendBits(BitVec(16, h.len));
  appendBits(BitVec(16, h.id));
  appendBits(BitVec(3, h.flags));
  appendBits(BitVec(13, h.frag));
  appendBits(BitVec(8, h.ttl));
  appendBits(BitVec(8, h.proto));
  appendBits(BitVec(16, h.csum));
  appendBits(BitVec(32, h.src));
  appendBits(BitVec(32, h.dst));
  return *this;
}

PacketBuilder& PacketBuilder::ipv6(const Ipv6Header& h) {
  appendBits(BitVec(4, h.version));
  appendBits(BitVec(8, h.trafficClass));
  appendBits(BitVec(20, h.flowLabel));
  appendBits(BitVec(16, h.payloadLen));
  appendBits(BitVec(8, h.nextHeader));
  appendBits(BitVec(8, h.hopLimit));
  appendBits(h.src);
  appendBits(h.dst);
  return *this;
}

PacketBuilder& PacketBuilder::udp(const UdpHeader& h) {
  appendBits(BitVec(16, h.srcPort));
  appendBits(BitVec(16, h.dstPort));
  appendBits(BitVec(16, h.len));
  appendBits(BitVec(16, h.csum));
  return *this;
}

PacketBuilder& PacketBuilder::tcp(const TcpHeader& h) {
  appendBits(BitVec(16, h.srcPort));
  appendBits(BitVec(16, h.dstPort));
  appendBits(BitVec(32, h.seq));
  appendBits(BitVec(32, h.ack));
  appendBits(BitVec(4, h.dataOffset));
  appendBits(BitVec(12, h.flags));
  appendBits(BitVec(16, h.window));
  appendBits(BitVec(16, h.csum));
  appendBits(BitVec(16, h.urgent));
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::vector<uint8_t> bytes) {
  for (uint8_t b : bytes) appendBits(BitVec(8, b));
  return *this;
}

PacketBuilder& PacketBuilder::raw(const BitVec& bits) {
  appendBits(bits);
  return *this;
}

uint16_t internetChecksum(const std::vector<uint8_t>& bytes, size_t offset,
                          size_t length) {
  uint32_t sum = 0;
  for (size_t i = 0; i + 1 < length; i += 2) {
    sum += (static_cast<uint32_t>(bytes[offset + i]) << 8) |
           bytes[offset + i + 1];
  }
  if (length % 2 != 0) {
    sum += static_cast<uint32_t>(bytes[offset + length - 1]) << 8;
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

void fillIpv4Checksum(std::vector<uint8_t>& packet, size_t offset) {
  packet[offset + 10] = 0;
  packet[offset + 11] = 0;
  uint16_t csum = internetChecksum(packet, offset, 20);
  packet[offset + 10] = static_cast<uint8_t>(csum >> 8);
  packet[offset + 11] = static_cast<uint8_t>(csum & 0xFF);
}

}  // namespace flay::net
