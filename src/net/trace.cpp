#include "net/trace.h"

#include <algorithm>
#include <random>

#include "net/fuzzer.h"

namespace flay::net {

std::vector<TraceEvent> generateControlPlaneTrace(
    const runtime::DeviceConfig& config, const TraceSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  std::vector<TraceEvent> events;

  auto exponential = [&rng](double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(rng);
  };

  // Pre-fuzz a large unique pool per table so events never collide.
  auto fuzzPool = [&](const std::string& table, size_t count) {
    EntryFuzzer fuzzer(rng());
    return fuzzer.uniqueEntries(config.table(table), count);
  };

  // Policy: rare independent changes.
  if (!spec.policyTable.empty()) {
    size_t expected = static_cast<size_t>(
                          spec.durationSec / spec.policyMeanIntervalSec) +
                      4;
    auto pool = fuzzPool(spec.policyTable, expected + 4);
    double t = exponential(spec.policyMeanIntervalSec);
    size_t i = 0;
    while (t < spec.durationSec && i < pool.size()) {
      events.push_back({t, UpdateClass::kPolicy,
                        runtime::Update::insert(spec.policyTable, pool[i++])});
      t += exponential(spec.policyMeanIntervalSec);
    }
  }

  // Routing: bursts of many inserts back to back.
  if (!spec.routeTable.empty()) {
    size_t expectedBursts = static_cast<size_t>(
                                spec.durationSec /
                                spec.routeBurstMeanIntervalSec) +
                            2;
    auto pool = fuzzPool(spec.routeTable,
                         expectedBursts * spec.routeBurstMax + 8);
    double t = exponential(spec.routeBurstMeanIntervalSec);
    size_t i = 0;
    while (t < spec.durationSec) {
      size_t burst = spec.routeBurstMin +
                     rng() % (spec.routeBurstMax - spec.routeBurstMin + 1);
      for (size_t k = 0; k < burst && i < pool.size(); ++k) {
        events.push_back(
            {t + static_cast<double>(k) * spec.routeBurstSpacingSec,
             UpdateClass::kRouting,
             runtime::Update::insert(spec.routeTable, pool[i++])});
      }
      t += exponential(spec.routeBurstMeanIntervalSec);
    }
  }

  // NAT: steady frequent churn.
  if (!spec.natTable.empty()) {
    size_t expected =
        static_cast<size_t>(spec.durationSec / spec.natMeanIntervalSec) + 8;
    auto pool = fuzzPool(spec.natTable, expected + 8);
    double t = exponential(spec.natMeanIntervalSec);
    size_t i = 0;
    while (t < spec.durationSec && i < pool.size()) {
      events.push_back({t, UpdateClass::kNat,
                        runtime::Update::insert(spec.natTable, pool[i++])});
      t += exponential(spec.natMeanIntervalSec);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.timeSec < b.timeSec;
                   });
  return events;
}

}  // namespace flay::net
