#include "net/workloads.h"

#include <random>
#include <set>

#include "runtime/entry.h"

namespace flay::net {

using runtime::FieldMatch;
using runtime::TableEntry;
using runtime::Update;

namespace {

TableEntry entry(std::vector<FieldMatch> matches, std::string action,
                 std::vector<BitVec> args, int32_t priority = 0) {
  TableEntry e;
  e.matches = std::move(matches);
  e.actionName = std::move(action);
  e.actionArgs = std::move(args);
  e.priority = priority;
  return e;
}

}  // namespace

std::vector<Update> scionCommonConfig() {
  std::vector<Update> updates;
  // path_type_check: SCION path type 1 starts the chain at link value 1.
  updates.push_back(Update::insert(
      "ScionIngress.path_type_check",
      entry({FieldMatch::exact(BitVec(8, 1))}, "chain0", {BitVec(16, 1)})));
  // iface_lookup: link 1, ingress interface 2 -> AS interfaces; link := 2.
  updates.push_back(Update::insert(
      "ScionIngress.iface_lookup",
      entry({FieldMatch::exact(BitVec(16, 1)), FieldMatch::exact(BitVec(16, 2))},
            "set_iface", {BitVec(16, 2), BitVec(16, 3)})));
  // mac_verify: link 2, segment 7 -> verified; link := 4.
  updates.push_back(Update::insert(
      "ScionIngress.mac_verify",
      entry({FieldMatch::exact(BitVec(16, 2)), FieldMatch::exact(BitVec(16, 7))},
            "verify_mac", {BitVec(48, 0xA1B2C3D4E5F6ull)})));
  // path_accept: link 4 -> accept; link := 7.
  updates.push_back(Update::insert(
      "ScionIngress.path_accept",
      entry({FieldMatch::exact(BitVec(16, 4))}, "accept_path", {})));
  return updates;
}

std::vector<Update> scionV4Config(size_t routes, uint64_t seed) {
  std::vector<Update> updates;
  std::mt19937_64 rng(seed);
  // First hop keys on the common chain's final link value (7) + dst prefix.
  for (size_t i = 0; i < routes; ++i) {
    uint32_t prefix = static_cast<uint32_t>(0x0A000000 + (i << 8));
    updates.push_back(Update::insert(
        "ScionIngress.v4_t01",
        entry({FieldMatch::exact(BitVec(16, 7)),
               FieldMatch::lpm(BitVec(32, prefix), 24)},
              "v4_hop", {BitVec(16, 1)})));
  }
  // Interior chain: v4_tXX keys on the previous hop's link value.
  for (int t = 2; t <= 10; ++t) {
    std::string table =
        "ScionIngress.v4_t" + std::string(t < 10 ? "0" : "") +
        std::to_string(t);
    updates.push_back(Update::insert(
        table, entry({FieldMatch::exact(BitVec(16, t - 1))}, "v4_hop",
                     {BitVec(16, static_cast<uint64_t>(t))})));
  }
  updates.push_back(Update::insert(
      "ScionIngress.v4_t11",
      entry({FieldMatch::exact(BitVec(16, 10))}, "v4_fwd",
            {BitVec(9, 4), BitVec(48, 0x0000DEADBEEFull)})));
  return updates;
}

std::vector<Update> scionV6Config(size_t routes, uint64_t seed) {
  std::vector<Update> updates;
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < routes; ++i) {
    BitVec dst = BitVec(128, rng()).shl(64).bitOr(BitVec(128, rng()));
    updates.push_back(Update::insert(
        "ScionIngress.v6_t01",
        entry({FieldMatch::exact(BitVec(16, 7)), FieldMatch::exact(dst)},
              "v6_hop", {BitVec(16, 1)})));
  }
  for (int t = 2; t <= 14; ++t) {
    std::string table =
        "ScionIngress.v6_t" + std::string(t < 10 ? "0" : "") +
        std::to_string(t);
    updates.push_back(Update::insert(
        table, entry({FieldMatch::exact(BitVec(16, t - 1))}, "v6_hop",
                     {BitVec(16, static_cast<uint64_t>(t))})));
  }
  updates.push_back(Update::insert(
      "ScionIngress.v6_t15",
      entry({FieldMatch::exact(BitVec(16, 14))}, "v6_fwd",
            {BitVec(9, 5), BitVec(48, 0x0000CAFEF00Dull)})));
  return updates;
}

std::vector<Update> scionV4RouteBurst(size_t count, uint64_t seed) {
  std::vector<Update> updates;
  std::mt19937_64 rng(seed);
  std::set<uint64_t> seen;
  while (updates.size() < count) {
    uint32_t plen = 8 + static_cast<uint32_t>(rng() % 17);  // 8..24
    // Mask the prefix to its length so the uniqueness signature matches the
    // table's duplicate detection (which compares masked values).
    uint32_t prefix = (static_cast<uint32_t>(rng()) | 0x80000000u) &
                      static_cast<uint32_t>(~uint64_t{0} << (32 - plen));
    uint64_t sig = (static_cast<uint64_t>(prefix) << 8) | plen;
    if (!seen.insert(sig).second) continue;
    updates.push_back(Update::insert(
        "ScionIngress.v4_t01",
        entry({FieldMatch::exact(BitVec(16, 7)),
               FieldMatch::lpm(BitVec(32, prefix), plen)},
              "v4_hop", {BitVec(16, 1)})));
  }
  return updates;
}

std::vector<Update> middleblockAclEntries(size_t count, uint64_t seed) {
  std::vector<Update> updates;
  std::mt19937_64 rng(seed);
  std::set<std::string> seen;
  int32_t priority = static_cast<int32_t>(count) + 10;
  while (updates.size() < count) {
    TableEntry e;
    e.matches.push_back(FieldMatch::ternary(
        BitVec(32, rng()), BitVec(32, 0xFFFFFF00u)));
    e.matches.push_back(FieldMatch::ternary(
        BitVec(32, rng()), BitVec(32, 0xFFFF0000u)));
    e.matches.push_back(FieldMatch::ternary(
        BitVec(8, rng() % 2 == 0 ? 6 : 17), BitVec(8, 0xFF)));
    e.matches.push_back(
        FieldMatch::ternary(BitVec(16, rng()), BitVec(16, 0xF000)));
    e.matches.push_back(
        FieldMatch::ternary(BitVec(16, rng()), BitVec(16, 0xFF00)));
    std::string sig;
    for (const auto& m : e.matches) {
      sig += m.value.bitAnd(m.mask).toHexString() + "|";
    }
    if (!seen.insert(sig).second) continue;
    e.actionName = "set_vrf";
    e.actionArgs.push_back(BitVec(10, rng() % 1024));
    e.priority = priority--;
    updates.push_back(
        Update::insert("MbIngress.acl_pre_ingress", std::move(e)));
  }
  return updates;
}

Update bulkRouteUpdate(size_t i, uint64_t seed) {
  // splitmix64: cheap stateless per-index randomness for action args.
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (i + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;

  if (i % 64 == 63) {
    // Ternary ACL entry; unique priority makes every match set distinct.
    TableEntry e;
    e.matches.push_back(FieldMatch::ternary(BitVec(32, z & 0xFFFFFFFFull),
                                            BitVec(32, 0xFFFFFF00u)));
    e.matches.push_back(
        FieldMatch::ternary(BitVec(32, z >> 32), BitVec(32, 0xFFFF0000u)));
    e.actionName = (z & 1) != 0 ? "permit" : "deny";
    e.priority = static_cast<int32_t>(i % 1000000) + 1;
    return Update::insert("BulkIngress.acl", std::move(e));
  }
  // Route insert. (plen, base) is a bijection of i, so masked values never
  // collide: plen cycles 16..32 and base counts up per cycle, staying below
  // 2^16 for any i under ~1.1M (the masked prefix keeps base's low bits).
  uint32_t plen = 16 + static_cast<uint32_t>(i % 17);
  uint32_t base = static_cast<uint32_t>(i / 17);
  uint32_t prefix = base << (32 - plen);
  return Update::insert(
      "BulkIngress.routes",
      entry({FieldMatch::exact(BitVec(16, 1)),
             FieldMatch::lpm(BitVec(32, prefix), plen)},
            "set_nh", {BitVec(16, (z % 4094) + 1)}));
}

std::string programPath(const std::string& name) {
  return std::string(FLAY_PROGRAMS_DIR) + "/" + name + ".p4l";
}

}  // namespace flay::net
