#ifndef FLAY_NET_WORKLOADS_H
#define FLAY_NET_WORKLOADS_H

#include <string>
#include <vector>

#include "runtime/device_config.h"

namespace flay::net {

/// Canned control-plane configurations for the bundled program suite —
/// the "representative control-plane configurations" the paper's SCION
/// programs ship with (§4.2).

/// Entries for scion.p4l's common path-verification chain (path type,
/// interface, MAC verification, path accept).
std::vector<runtime::Update> scionCommonConfig();

/// Entries lighting up the IPv4 underlay chain, with `routes` fuzzed
/// prefixes in the first hop table.
std::vector<runtime::Update> scionV4Config(size_t routes, uint64_t seed = 1);

/// Entries lighting up the previously-unused IPv6 underlay chain — the
/// batch that makes Flay trigger respecialization back to max stages.
std::vector<runtime::Update> scionV6Config(size_t routes, uint64_t seed = 2);

/// Fuzzed IPv4 route inserts against scion.p4l's v4_t01 (the burst of
/// semantics-preserving updates in §4.2).
std::vector<runtime::Update> scionV4RouteBurst(size_t count,
                                               uint64_t seed = 3);

/// Fuzzed 5-tuple ternary entries for middleblock.p4l's pre-ingress ACL
/// (the Table 3 workload).
std::vector<runtime::Update> middleblockAclEntries(size_t count,
                                                   uint64_t seed = 4);

/// The i-th update of the bulkroute.p4l bulk-load stream: mostly unique
/// route inserts into BulkIngress.routes (exact vrf + lpm dst), with every
/// 64th update a ternary BulkIngress.acl insert. A pure function of
/// (i, seed), so million-entry streams are generated on the fly instead of
/// materialized — the memory-boundedness half of the bulk-load contract.
/// Duplicate-free for i < ~1.1M.
runtime::Update bulkRouteUpdate(size_t i, uint64_t seed = 5);

/// Resolves a bundled program path ("scion" -> "<programs dir>/scion.p4l").
std::string programPath(const std::string& name);

}  // namespace flay::net

#endif  // FLAY_NET_WORKLOADS_H
