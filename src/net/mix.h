#ifndef FLAY_NET_MIX_H
#define FLAY_NET_MIX_H

#include <optional>
#include <string>
#include <vector>

#include "net/fuzzer.h"
#include "sim/packet.h"

namespace flay::net {

/// Replay traffic shapes, after the applied workloads of the P4 measurement
/// literature: heavy-hitter detection (a few elephant flows dominating),
/// port scans (one source sweeping a key space), and tunneled traffic
/// (packets taking the deepest parser chains). kUniform is the unbiased
/// fuzzer baseline.
enum class TrafficMix { kUniform, kHeavyHitter, kPortScan, kTunnel };

const char* mixName(TrafficMix mix);
/// "uniform" | "heavy-hitter" | "port-scan" | "tunnel"; nullopt otherwise.
std::optional<TrafficMix> parseMix(const std::string& name);
std::vector<TrafficMix> allMixes();

/// Deterministic packet stream with the given shape over one program +
/// config snapshot. Built on PacketFuzzer, so every packet is parser-aware
/// (reaches deep states, biases table-key fields toward installed entries).
/// The config reference must outlive the mixer and must not be mutated while
/// the mixer runs — replay forwarding threads bind one mixer per immutable
/// ProgramVersion snapshot and rebuild on version swap.
class TrafficMixer {
 public:
  TrafficMixer(const p4::CheckedProgram& checked,
               const runtime::DeviceConfig& config, TrafficMix mix,
               uint64_t seed);

  sim::Packet next();

 private:
  sim::Packet heavyHitter();
  sim::Packet portScan();
  sim::Packet tunnel();

  TrafficMix mix_;
  PacketFuzzer fuzzer_;
  std::mt19937_64 rng_;

  // Heavy-hitter state: a small flow pool replayed with geometric
  // concentration (flow 0 carries ~half the stream).
  static constexpr size_t kFlowPool = 16;
  std::vector<sim::Packet> pool_;
  size_t sinceRefresh_ = 0;

  // Port-scan state: one fuzzed base packet per sweep; each step rewrites a
  // 16-bit window near the tail of the parsed bytes with a sweep counter.
  static constexpr size_t kSweepLength = 256;
  sim::Packet scanBase_;
  size_t scanStep_ = kSweepLength;  // forces a fresh base on first use
};

}  // namespace flay::net

#endif  // FLAY_NET_MIX_H
