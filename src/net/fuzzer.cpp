#include "net/fuzzer.h"

#include <cmath>
#include <stdexcept>

namespace flay::net {

BitVec EntryFuzzer::randomValue(uint32_t width) {
  BitVec v = BitVec::zero(width);
  for (uint32_t lo = 0; lo < width; lo += 64) {
    uint32_t chunk = std::min(64u, width - lo);
    v = v.bitOr(BitVec(width, rng_()).shl(lo));
    (void)chunk;
  }
  return v;
}

BitVec EntryFuzzer::randomMask(uint32_t width) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    BitVec m = randomValue(width);
    if (!m.isZero()) return m;
  }
  return BitVec::allOnes(width);
}

uint64_t EntryFuzzer::randomUint(uint64_t bound) {
  return bound == 0 ? 0 : rng_() % bound;
}

std::vector<runtime::TableEntry> EntryFuzzer::uniqueEntries(
    const runtime::TableState& table, size_t count,
    const std::vector<std::string>& excludedActions) {
  const p4::TableDecl& decl = table.decl();
  const p4::ControlDecl& control = table.control();

  std::vector<std::string> actions;
  for (const auto& a : decl.actionNames) {
    bool excluded = false;
    for (const auto& e : excludedActions) excluded |= e == a;
    if (!excluded) actions.push_back(a);
  }
  if (actions.empty()) {
    throw std::invalid_argument("no usable actions for fuzzing");
  }

  // Capacity check so we fail fast instead of spinning on a tiny keyspace.
  double keyspaceBits = 0;
  for (const auto& k : decl.keys) keyspaceBits += k.expr->width;
  if (keyspaceBits < 60 &&
      static_cast<double>(count) > std::pow(2.0, keyspaceBits)) {
    throw std::invalid_argument("table keyspace too small for request");
  }

  std::set<std::string> seen;
  std::vector<runtime::TableEntry> result;
  result.reserve(count);
  int32_t priority = static_cast<int32_t>(count) + 1;
  while (result.size() < count) {
    runtime::TableEntry e;
    for (const auto& k : decl.keys) {
      uint32_t w = k.expr->width;
      switch (k.matchKind) {
        case p4::MatchKind::kExact:
          e.matches.push_back(runtime::FieldMatch::exact(randomValue(w)));
          break;
        case p4::MatchKind::kTernary:
          e.matches.push_back(
              runtime::FieldMatch::ternary(randomValue(w), randomMask(w)));
          break;
        case p4::MatchKind::kLpm: {
          uint32_t plen = 1 + static_cast<uint32_t>(randomUint(w));
          e.matches.push_back(
              runtime::FieldMatch::lpm(randomValue(w), plen));
          break;
        }
      }
    }
    // Uniqueness must mirror TableState's duplicate detection, which
    // compares masked values: build the signature from (value & mask, mask).
    std::string sig;
    for (const auto& m : e.matches) {
      sig += m.value.bitAnd(m.mask).toHexString() + "/" +
             m.mask.toHexString() + "|";
    }
    if (!seen.insert(sig).second) continue;

    const std::string& actionName = actions[randomUint(actions.size())];
    e.actionName = actionName;
    if (const p4::ActionDecl* action = control.findAction(actionName)) {
      for (const auto& p : action->params) {
        e.actionArgs.push_back(randomValue(p.width));
      }
    }
    if (table.usesPriority()) e.priority = priority--;
    result.push_back(std::move(e));
  }
  return result;
}

}  // namespace flay::net
