#include "net/fuzzer.h"

#include <cmath>
#include <stdexcept>

namespace flay::net {

BitVec EntryFuzzer::randomValue(uint32_t width) {
  BitVec v = BitVec::zero(width);
  for (uint32_t lo = 0; lo < width; lo += 64) {
    uint32_t chunk = std::min(64u, width - lo);
    v = v.bitOr(BitVec(width, rng_()).shl(lo));
    (void)chunk;
  }
  return v;
}

BitVec EntryFuzzer::randomMask(uint32_t width) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    BitVec m = randomValue(width);
    if (!m.isZero()) return m;
  }
  return BitVec::allOnes(width);
}

uint64_t EntryFuzzer::randomUint(uint64_t bound) {
  return bound == 0 ? 0 : rng_() % bound;
}

std::vector<runtime::TableEntry> EntryFuzzer::uniqueEntries(
    const runtime::TableState& table, size_t count,
    const std::vector<std::string>& excludedActions) {
  const p4::TableDecl& decl = table.decl();
  const p4::ControlDecl& control = table.control();

  std::vector<std::string> actions;
  for (const auto& a : decl.actionNames) {
    bool excluded = false;
    for (const auto& e : excludedActions) excluded |= e == a;
    if (!excluded) actions.push_back(a);
  }
  if (actions.empty()) {
    throw std::invalid_argument("no usable actions for fuzzing");
  }

  // Capacity check so we fail fast instead of spinning on a tiny keyspace.
  double keyspaceBits = 0;
  for (const auto& k : decl.keys) keyspaceBits += k.expr->width;
  if (keyspaceBits < 60 &&
      static_cast<double>(count) > std::pow(2.0, keyspaceBits)) {
    throw std::invalid_argument("table keyspace too small for request");
  }

  std::set<std::string> seen;
  std::vector<runtime::TableEntry> result;
  result.reserve(count);
  int32_t priority = static_cast<int32_t>(count) + 1;
  while (result.size() < count) {
    runtime::TableEntry e;
    for (const auto& k : decl.keys) {
      uint32_t w = k.expr->width;
      switch (k.matchKind) {
        case p4::MatchKind::kExact:
          e.matches.push_back(runtime::FieldMatch::exact(randomValue(w)));
          break;
        case p4::MatchKind::kTernary:
          e.matches.push_back(
              runtime::FieldMatch::ternary(randomValue(w), randomMask(w)));
          break;
        case p4::MatchKind::kLpm: {
          uint32_t plen = 1 + static_cast<uint32_t>(randomUint(w));
          e.matches.push_back(
              runtime::FieldMatch::lpm(randomValue(w), plen));
          break;
        }
      }
    }
    // Uniqueness must mirror TableState's duplicate detection, which
    // compares masked values: build the signature from (value & mask, mask).
    std::string sig;
    for (const auto& m : e.matches) {
      sig += m.value.bitAnd(m.mask).toHexString() + "/" +
             m.mask.toHexString() + "|";
    }
    if (!seen.insert(sig).second) continue;

    const std::string& actionName = actions[randomUint(actions.size())];
    e.actionName = actionName;
    if (const p4::ActionDecl* action = control.findAction(actionName)) {
      for (const auto& p : action->params) {
        e.actionArgs.push_back(randomValue(p.width));
      }
    }
    if (table.usesPriority()) e.priority = priority--;
    result.push_back(std::move(e));
  }
  return result;
}

// ---------------------------------------------------------------------------
// PacketFuzzer
// ---------------------------------------------------------------------------

PacketFuzzer::PacketFuzzer(const p4::CheckedProgram& checked,
                           const runtime::DeviceConfig& config, uint64_t seed)
    : checked_(checked), config_(config), entropy_(seed), rng_(seed ^ 0x9E3779B97F4A7C15ull) {}

void PacketFuzzer::appendBits(const BitVec& v) {
  for (uint32_t i = v.width(); i-- > 0;) {
    if (bitPos_ % 8 == 0) bytes_.push_back(0);
    if (v.bit(i)) {
      bytes_.back() |= static_cast<uint8_t>(1u << (7 - bitPos_ % 8));
    }
    ++bitPos_;
  }
}

void PacketFuzzer::overwriteBits(const FieldSite& site, const BitVec& v) {
  for (uint32_t i = 0; i < site.width; ++i) {
    size_t pos = site.bitOffset + i;
    uint8_t mask = static_cast<uint8_t>(1u << (7 - pos % 8));
    if (v.bit(site.width - 1 - i)) {
      bytes_[pos / 8] |= mask;
    } else {
      bytes_[pos / 8] &= static_cast<uint8_t>(~mask);
    }
  }
}

BitVec PacketFuzzer::steerSelectValue(const p4::ParserDecl& parser,
                                      const p4::TransitionInfo& t,
                                      uint32_t width) {
  // Options: each steerable case plus one "random value" slot, so the
  // default/reject paths keep coverage too.
  std::vector<const p4::SelectCase*> steerable;
  for (const auto& c : t.cases) {
    if (c.kind == p4::SelectCase::Kind::kConst) {
      steerable.push_back(&c);
    } else if (c.kind == p4::SelectCase::Kind::kValueSet &&
               config_.hasValueSet(parser.name + "." + c.valueSet) &&
               !config_.valueSet(parser.name + "." + c.valueSet).empty()) {
      steerable.push_back(&c);
    }
  }
  size_t pick = rng_() % (steerable.size() + 1);
  if (pick == steerable.size()) return entropy_.randomValue(width);
  const p4::SelectCase& c = *steerable[pick];
  BitVec value = BitVec::zero(width);
  BitVec mask = BitVec::allOnes(width);
  if (c.kind == p4::SelectCase::Kind::kConst) {
    value = c.value->value;
    if (c.mask != nullptr) mask = c.mask->value;
  } else {
    const auto& vs = config_.valueSet(parser.name + "." + c.valueSet);
    const auto& member = vs.members()[rng_() % vs.members().size()];
    value = member.first;
    mask = member.second;
  }
  // Bits under the mask come from the case; the rest are random.
  return value.bitAnd(mask).bitOr(
      entropy_.randomValue(width).bitAnd(mask.bitNot()));
}

std::string PacketFuzzer::resolveTransition(const p4::ParserDecl& parser,
                                            const p4::TransitionInfo& t,
                                            const BitVec& key) const {
  for (const auto& c : t.cases) {
    switch (c.kind) {
      case p4::SelectCase::Kind::kDefault:
        return c.nextState;
      case p4::SelectCase::Kind::kConst: {
        BitVec mask = c.mask != nullptr ? c.mask->value
                                        : BitVec::allOnes(key.width());
        if (key.bitAnd(mask) == c.value->value.bitAnd(mask)) {
          return c.nextState;
        }
        break;
      }
      case p4::SelectCase::Kind::kValueSet: {
        const std::string qualified = parser.name + "." + c.valueSet;
        if (config_.hasValueSet(qualified) &&
            config_.valueSet(qualified).matches(key)) {
          return c.nextState;
        }
        break;
      }
    }
  }
  return "reject";
}

void PacketFuzzer::steerTableKeys() {
  // Pick one random installed entry whose key fields live in the packet and
  // overwrite those fields with match-compatible bits.
  std::vector<std::pair<const runtime::TableState*, const runtime::TableEntry*>>
      candidates;
  for (const auto& [name, table] : config_.tables()) {
    for (const auto& e : table.entries()) {
      bool steerable = false;
      const auto& keys = table.decl().keys;
      for (const auto& k : keys) {
        steerable |= k.expr->op == p4::ExprOp::kPath &&
                     fieldSites_.count(k.expr->canonical) != 0;
      }
      if (steerable) candidates.emplace_back(&table, &e);
    }
  }
  if (candidates.empty() || rng_() % 4 == 0) return;
  auto [table, entry] = candidates[rng_() % candidates.size()];
  const auto& keys = table->decl().keys;
  for (size_t k = 0; k < keys.size() && k < entry->matches.size(); ++k) {
    if (keys[k].expr->op != p4::ExprOp::kPath) continue;
    auto site = fieldSites_.find(keys[k].expr->canonical);
    if (site == fieldSites_.end()) continue;
    const runtime::FieldMatch& m = entry->matches[k];
    BitVec v = m.value.bitAnd(m.mask).bitOr(
        entropy_.randomValue(m.mask.width()).bitAnd(m.mask.bitNot()));
    overwriteBits(site->second, v);
  }
}

sim::Packet PacketFuzzer::randomPacket() {
  bytes_.clear();
  bitPos_ = 0;
  fieldSites_.clear();
  fieldValues_.clear();

  const p4::Program& prog = checked_.program;
  const p4::ParserDecl* parser = prog.findParser(prog.pipeline.parserName);
  if (parser == nullptr) throw std::logic_error("pipeline parser missing");

  constexpr int kMaxTransitions = 64;
  const p4::ParserStateDecl* state = parser->findState("start");
  for (int step = 0; state != nullptr && step < kMaxTransitions; ++step) {
    std::string next = "accept";
    for (const auto& stmt : state->body) {
      if (stmt->op == p4::StmtOp::kExtract) {
        const p4::HeaderInstance* hdr =
            checked_.env.findHeader(stmt->lhs->canonical);
        if (hdr == nullptr) throw std::logic_error("extract of non-header");
        for (const auto& fieldName : hdr->fieldCanonicals) {
          const p4::FieldInfo* info = checked_.env.findField(fieldName);
          BitVec v = entropy_.randomValue(info->width);
          fieldSites_[fieldName] = {bitPos_, info->width};
          fieldValues_[fieldName] = v;
          appendBits(v);
        }
      } else if (stmt->op == p4::StmtOp::kTransition) {
        const p4::TransitionInfo& t = stmt->transition;
        if (t.selectExpr == nullptr) {
          next = t.nextState;
          break;
        }
        // Steer the scrutinee when it is a plain extracted field; then
        // resolve the transition the way the interpreter will, so the walk
        // keeps appending the headers the parser will actually consume.
        BitVec key;
        if (t.selectExpr->op == p4::ExprOp::kPath &&
            fieldSites_.count(t.selectExpr->canonical) != 0) {
          key = steerSelectValue(*parser, t, t.selectExpr->width);
          overwriteBits(fieldSites_[t.selectExpr->canonical], key);
          fieldValues_[t.selectExpr->canonical] = key;
        } else if (t.selectExpr->op == p4::ExprOp::kPath &&
                   fieldValues_.count(t.selectExpr->canonical) != 0) {
          key = fieldValues_[t.selectExpr->canonical];
        } else {
          // Scrutinee is a computed expression: no steering, walk ends here
          // (the appended bytes still form a plausible packet).
          next = "accept";
          break;
        }
        next = resolveTransition(*parser, t, key);
        break;
      }
      // Non-extract parser statements don't consume wire bytes.
    }
    if (next == "accept" || next == "reject") break;
    state = parser->findState(next);
  }

  steerTableKeys();

  // Occasional trailing payload / truncation to exercise boundary paths.
  if (rng_() % 4 == 0) {
    size_t extra = 1 + rng_() % 8;
    for (size_t i = 0; i < extra; ++i) appendBits(BitVec(8, rng_() & 0xFF));
  }
  if (rng_() % 16 == 0 && !bytes_.empty()) {
    bytes_.resize(rng_() % bytes_.size());
  }

  sim::Packet p;
  p.bytes = bytes_;
  p.ingressPort = static_cast<uint32_t>(rng_() % 16);
  return p;
}

// ---------------------------------------------------------------------------
// Update-sequence fuzzing
// ---------------------------------------------------------------------------

std::vector<runtime::Update> fuzzUpdateSequence(
    const p4::CheckedProgram& checked, size_t count, uint64_t seed) {
  runtime::DeviceConfig scratch(checked);
  EntryFuzzer fuzzer(seed);
  std::mt19937_64 rng(seed ^ 0xC2B2AE3D27D4EB4Full);

  std::vector<std::string> tables;
  for (const auto& [name, t] : scratch.tables()) tables.push_back(name);
  std::vector<std::string> valueSets;
  for (const auto& [name, vs] : scratch.valueSets()) valueSets.push_back(name);
  if (tables.empty()) return {};

  struct Installed {
    std::string table;
    runtime::TableEntry entry;  // with the id a full replay assigns
  };
  std::vector<Installed> installed;
  std::vector<runtime::Update> script;
  script.reserve(count);

  size_t attempts = 0;
  while (script.size() < count && attempts++ < count * 20) {
    uint64_t roll = rng() % 100;
    try {
      if (roll < 60 || installed.empty()) {
        // Insert into a random table.
        const std::string& name = tables[rng() % tables.size()];
        runtime::TableState& table = scratch.table(name);
        runtime::TableEntry e = fuzzer.uniqueEntries(table, 1).at(0);
        // Fresh priorities so successive single-entry draws stay unique.
        if (table.usesPriority()) {
          e.priority = static_cast<int32_t>(1 + rng() % 100000);
        }
        uint64_t id = table.insert(e);
        e.id = id;
        installed.push_back({name, e});
        runtime::TableEntry forScript = e;
        forScript.id = 0;  // ids are assigned by the replaying config
        script.push_back(runtime::Update::insert(name, std::move(forScript)));
      } else if (roll < 75) {
        // Delete a previously installed entry.
        size_t pick = rng() % installed.size();
        Installed victim = installed[pick];
        scratch.table(victim.table).remove(victim.entry.id);
        installed.erase(installed.begin() + static_cast<long>(pick));
        script.push_back(
            runtime::Update::remove(victim.table, victim.entry.id));
      } else if (roll < 85) {
        // Modify: keep the match set, redraw action arguments.
        size_t pick = rng() % installed.size();
        Installed& victim = installed[pick];
        runtime::TableEntry e = victim.entry;
        const p4::ActionDecl* action =
            scratch.table(victim.table).control().findAction(e.actionName);
        e.actionArgs.clear();
        if (action != nullptr) {
          for (const auto& p : action->params) {
            e.actionArgs.push_back(fuzzer.randomValue(p.width));
          }
        }
        scratch.table(victim.table).modify(e);
        victim.entry = e;
        script.push_back(runtime::Update::modify(victim.table, std::move(e)));
      } else if (roll < 93 || valueSets.empty()) {
        // Override the default action of a random table.
        const std::string& name = tables[rng() % tables.size()];
        runtime::TableState& table = scratch.table(name);
        const auto& actionNames = table.decl().actionNames;
        if (actionNames.empty()) continue;
        const std::string& actionName =
            actionNames[rng() % actionNames.size()];
        std::vector<BitVec> args;
        if (const p4::ActionDecl* action =
                table.control().findAction(actionName)) {
          for (const auto& p : action->params) {
            args.push_back(fuzzer.randomValue(p.width));
          }
        }
        table.setDefaultAction(actionName, args);
        script.push_back(runtime::Update::setDefault(name, actionName, args));
      } else {
        // Populate a value set (lights up pruned parser paths).
        const std::string& name = valueSets[rng() % valueSets.size()];
        uint32_t w = scratch.valueSet(name).width();
        BitVec value = fuzzer.randomValue(w);
        BitVec mask =
            rng() % 2 == 0 ? BitVec::allOnes(w) : fuzzer.randomMask(w);
        scratch.valueSet(name).insert(value, mask);
        script.push_back(runtime::Update::valueSetInsert(name, value, mask));
      }
    } catch (const std::invalid_argument&) {
      continue;  // duplicate entry / tiny keyspace: redraw
    }
  }
  return script;
}

}  // namespace flay::net
