#ifndef FLAY_SAT_SOLVER_H
#define FLAY_SAT_SOLVER_H

#include <cstdint>
#include <span>
#include <vector>

namespace flay::sat {

/// A literal: variable index with sign. Encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  uint32_t code = 0;

  static Lit make(uint32_t var, bool negated) {
    return Lit{2 * var + (negated ? 1u : 0u)};
  }
  uint32_t var() const { return code >> 1; }
  bool negated() const { return code & 1; }
  Lit operator~() const { return Lit{code ^ 1}; }
  bool operator==(const Lit&) const = default;
};

/// kUnknown is only returned when a per-solve conflict budget (see
/// setConflictBudget) was exhausted before the search settled; callers must
/// treat it conservatively (neither sat nor unsat is proven).
enum class Result { kSat, kUnsat, kUnknown };

/// Conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, VSIDS branching, 1-UIP clause learning, Luby restarts, and
/// learned-clause reduction. Small but complete — the engine behind the
/// bit-vector queries Flay asks instead of Z3.
class Solver {
 public:
  /// Creates a fresh variable and returns its index.
  uint32_t newVar();
  uint32_t numVars() const { return static_cast<uint32_t>(assigns_.size()); }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable. Returns false if the instance is
  /// already known to be unsat.
  bool addClause(std::span<const Lit> lits);
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool addUnit(Lit l) { return addClause({l}); }

  /// Solves under optional assumptions. Can be called repeatedly; learned
  /// clauses persist between calls.
  Result solve(std::span<const Lit> assumptions = {});

  /// Fail-safe deadline: each subsequent solve() call may spend at most this
  /// many conflicts before giving up with Result::kUnknown (0 = unlimited).
  /// Learned clauses from the partial search persist, so a retried query
  /// resumes stronger rather than from scratch.
  void setConflictBudget(uint64_t maxConflictsPerSolve) {
    conflictBudget_ = maxConflictsPerSolve;
  }
  uint64_t conflictBudget() const { return conflictBudget_; }
  /// Number of solve() calls that ran out of budget.
  uint64_t numBudgetExhaustions() const { return budgetExhaustions_; }

  /// Value of variable `v` in the model of the last kSat answer.
  bool modelValue(uint32_t v) const { return model_[v] == 1; }

  // Statistics, exposed for benchmarks and tests.
  uint64_t numConflicts() const { return conflicts_; }
  uint64_t numDecisions() const { return decisions_; }
  uint64_t numPropagations() const { return propagations_; }
  uint64_t numRestarts() const { return restarts_; }
  uint64_t numReduceRuns() const { return reduces_; }
  /// Learned clauses currently in the database (shrinks on reduction).
  uint64_t numLearnedClauses() const {
    uint64_t n = 0;
    for (const Clause& c : clauses_) n += c.learned ? 1 : 0;
    return n;
  }

 private:
  static constexpr int8_t kUndef = -1;
  /// Learned-clause DB reduction runs every this many conflicts.
  static constexpr uint64_t kReduceInterval = 2048;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };

  struct Watcher {
    uint32_t clauseIdx;
    Lit blocker;
  };

  int8_t value(Lit l) const {
    int8_t v = assigns_[l.var()];
    if (v == kUndef) return kUndef;
    return l.negated() ? static_cast<int8_t>(1 - v) : v;
  }

  void enqueue(Lit l, int32_t reasonClause);
  /// Returns the index of a conflicting clause, or -1.
  int32_t propagate();
  void analyze(int32_t conflictIdx, std::vector<Lit>& outLearned,
               uint32_t& outBtLevel);
  void backtrack(uint32_t level);
  void attachClause(uint32_t idx);
  Lit pickBranchLit();
  void bumpVar(uint32_t v);
  void bumpClause(uint32_t idx);
  void decayActivities();
  void reduceLearned();
  static uint64_t luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit code
  std::vector<int8_t> assigns_;                // var -> 0/1/kUndef
  std::vector<int8_t> model_;
  std::vector<uint32_t> levels_;       // var -> decision level
  std::vector<int32_t> reasons_;       // var -> clause idx or -1
  std::vector<Lit> trail_;
  std::vector<uint32_t> trailLimits_;  // decision-level boundaries in trail_
  size_t propagateHead_ = 0;

  std::vector<double> varActivity_;
  double varActivityInc_ = 1.0;
  double clauseActivityInc_ = 1.0;
  std::vector<uint8_t> seen_;  // scratch for analyze()
  bool unsat_ = false;

  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;
  uint64_t restarts_ = 0;
  uint64_t reduces_ = 0;
  uint64_t nextReduce_ = kReduceInterval;
  uint64_t conflictBudget_ = 0;  // per-solve() cap; 0 = unlimited
  uint64_t budgetExhaustions_ = 0;
};

}  // namespace flay::sat

#endif  // FLAY_SAT_SOLVER_H
