#ifndef FLAY_SAT_SOLVER_H
#define FLAY_SAT_SOLVER_H

#include <cstdint>
#include <span>
#include <vector>

namespace flay::sat {

/// A literal: variable index with sign. Encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  uint32_t code = 0;

  static Lit make(uint32_t var, bool negated) {
    return Lit{2 * var + (negated ? 1u : 0u)};
  }
  uint32_t var() const { return code >> 1; }
  bool negated() const { return code & 1; }
  Lit operator~() const { return Lit{code ^ 1}; }
  bool operator==(const Lit&) const = default;
};

/// kUnknown is only returned when a per-solve conflict budget (see
/// setConflictBudget) was exhausted before the search settled; callers must
/// treat it conservatively (neither sat nor unsat is proven).
enum class Result { kSat, kUnsat, kUnknown };

/// Destination for CNF emission. The bit-blaster and the delta-CNF encoder
/// write through this interface so the same Tseitin code can feed either a
/// plain per-probe Solver (every clause unguarded and permanent) or a
/// SolverSession (clauses routed into activation-literal-guarded groups that
/// can later be retired when the program component they encode is
/// respecialized).
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns its index.
  virtual uint32_t newVar() = 0;
  virtual uint32_t numVars() const = 0;

  /// Adds a clause (disjunction of literals). Returns false if the instance
  /// is already known to be unsat.
  virtual bool addClause(std::span<const Lit> lits) = 0;

  /// Value of variable `v` in the model of the last kSat answer.
  virtual bool modelValue(uint32_t v) const = 0;

  /// Clause-group routing. Group 0 is the permanent group; sinks without
  /// group support ignore the setting and emit everything unguarded.
  virtual void setActiveGroup(uint32_t /*group*/) {}
  virtual uint32_t activeGroup() const { return 0; }

  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool addUnit(Lit l) { return addClause({l}); }
};

/// Conflict-driven clause-learning SAT solver: two-watched-literal
/// propagation, VSIDS branching, 1-UIP clause learning, Luby restarts, and
/// learned-clause reduction. Small but complete — the engine behind the
/// bit-vector queries Flay asks instead of Z3.
class Solver final : public ClauseSink {
 public:
  uint32_t newVar() override;
  uint32_t numVars() const override {
    return static_cast<uint32_t>(assigns_.size());
  }

  /// Adds a clause (disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable. Returns false if the instance is
  /// already known to be unsat.
  bool addClause(std::span<const Lit> lits) override;
  using ClauseSink::addClause;
  using ClauseSink::addUnit;

  /// Solves under optional assumptions. Can be called repeatedly; learned
  /// clauses persist between calls. Consecutive solves additionally reuse the
  /// trail for the longest shared assumption prefix: the decision levels (and
  /// all propagation) for assumptions that match the previous call positionally
  /// are kept instead of being rebuilt, so a warm session that assumes a
  /// stable set of activation literals pays their propagation cascade once,
  /// not once per probe. addClause() invalidates the kept levels.
  Result solve(std::span<const Lit> assumptions = {});

  /// Solves under assumptions with decisions restricted to `decisionVars`,
  /// declaring kSat as soon as every decision variable is assigned without
  /// conflict (other variables may remain unassigned). Sound only when the
  /// clause database is purely definitional outside the assumptions — i.e.
  /// every clause not satisfied by a level-0 unit or an assumption is part of
  /// a Tseitin gate definition whose output can be evaluated from its inputs
  /// — and `decisionVars` covers the full support cone of every assumption
  /// that is not an activation literal. Under those conditions any partial
  /// assignment that satisfies the cone extends to a total model by
  /// evaluating the remaining gates, so kSat is genuine; kUnsat conclusions
  /// are sound unconditionally. This is what lets a warm incremental session
  /// answer a probe by exploring only the probe's cone of influence instead
  /// of re-assigning every variable the session has ever allocated.
  Result solveRestricted(std::span<const Lit> assumptions,
                         std::span<const uint32_t> decisionVars);

  /// As above, but with separate decision and propagation sets: decisions are
  /// restricted to `decisionVars` (typically the free input bits of the
  /// probe's cone) while propagation may additionally assign any variable `v`
  /// with `propagateMask[v] != 0` (the full cone, inputs and Tseitin gate
  /// outputs alike; variables at or past `propagateMask.size()` are outside).
  /// In a definitional database every gate output is forced by propagation
  /// once its inputs are assigned, so restricting decisions to the inputs
  /// answers the same query with O(inputs) decisions instead of O(cone).
  /// The mask is consulted in place and must stay valid for the duration of
  /// the call; handing over a persistent per-cone mask makes solve setup O(1)
  /// instead of O(cone) re-stamping per solve. `decisionVars` must be covered
  /// by the mask; unit propagation outside it is suppressed past the
  /// assumption levels (see propagate()).
  Result solveRestricted(std::span<const Lit> assumptions,
                         std::span<const uint32_t> decisionVars,
                         std::span<const uint8_t> propagateMask);

  /// Fail-safe deadline: each subsequent solve() call may spend at most this
  /// many conflicts before giving up with Result::kUnknown (0 = unlimited).
  /// Learned clauses from the partial search persist, so a retried query
  /// resumes stronger rather than from scratch.
  void setConflictBudget(uint64_t maxConflictsPerSolve) {
    conflictBudget_ = maxConflictsPerSolve;
  }
  uint64_t conflictBudget() const { return conflictBudget_; }
  /// Number of solve() calls that ran out of budget.
  uint64_t numBudgetExhaustions() const { return budgetExhaustions_; }

  /// Value of variable `v` in the model of the last kSat answer. After a
  /// restricted solve only the decision variables (plus whatever propagation
  /// reached) are refreshed; other variables keep their previous model
  /// values.
  bool modelValue(uint32_t v) const override { return model_[v] == 1; }

  /// Total clauses in the database (original + learned).
  uint64_t numClauses() const { return clauses_.size(); }

  // Statistics, exposed for benchmarks and tests.
  uint64_t numConflicts() const { return conflicts_; }
  uint64_t numDecisions() const { return decisions_; }
  uint64_t numPropagations() const { return propagations_; }
  uint64_t numRestarts() const { return restarts_; }
  uint64_t numReduceRuns() const { return reduces_; }
  /// Learned clauses currently in the database (shrinks on reduction).
  uint64_t numLearnedClauses() const {
    uint64_t n = 0;
    for (const Clause& c : clauses_) n += c.learned ? 1 : 0;
    return n;
  }

 private:
  static constexpr int8_t kUndef = -1;
  /// Learned-clause DB reduction runs every this many conflicts.
  static constexpr uint64_t kReduceInterval = 2048;

  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };

  struct Watcher {
    uint32_t clauseIdx;
    Lit blocker;
  };

  /// Binary clauses get dedicated implication lists instead of general
  /// watchers: the implied literal is stored inline, so scanning one costs a
  /// single value lookup with no clause dereference and no watch-migration
  /// attempt. This matters for warm sessions — a binary gate clause watching
  /// a variable shared across many probes' encodings can never migrate its
  /// watch elsewhere, so with general watchers every solve re-scans every
  /// other probe's gates through the full clause path.
  struct BinWatcher {
    Lit other;          // the implied literal
    uint32_t clauseIdx;  // backing clause, for conflict analysis reasons
  };

  int8_t value(Lit l) const {
    int8_t v = assigns_[l.var()];
    if (v == kUndef) return kUndef;
    return l.negated() ? static_cast<int8_t>(1 - v) : v;
  }

  Result search(std::span<const Lit> assumptions);
  void enqueue(Lit l, int32_t reasonClause);
  /// Returns the index of a conflicting clause, or -1.
  int32_t propagate();
  void analyze(int32_t conflictIdx, std::vector<Lit>& outLearned,
               uint32_t& outBtLevel);
  void backtrack(uint32_t level);
  void attachClause(uint32_t idx);
  Lit pickBranchLit();
  void bumpVar(uint32_t v);
  void bumpClause(uint32_t idx);
  void decayActivities();
  void reduceLearned();
  static uint64_t luby(uint64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;        // indexed by Lit code
  std::vector<std::vector<BinWatcher>> binWatches_;  // indexed by Lit code
  std::vector<int8_t> assigns_;                // var -> 0/1/kUndef
  std::vector<int8_t> model_;
  std::vector<uint32_t> levels_;       // var -> decision level
  std::vector<int32_t> reasons_;       // var -> clause idx or -1
  std::vector<Lit> trail_;
  std::vector<uint32_t> trailLimits_;  // decision-level boundaries in trail_
  size_t propagateHead_ = 0;

  std::vector<double> varActivity_;
  double varActivityInc_ = 1.0;
  double clauseActivityInc_ = 1.0;
  std::vector<uint8_t> seen_;  // scratch for analyze()
  bool unsat_ = false;
  // Assumptions of the previous search(), for assumption-trail reuse.
  std::vector<Lit> lastAssumptions_;

  // Restricted-decision state for solveRestricted(); cleared on return.
  bool restricted_ = false;
  std::span<const uint32_t> decisionVars_;
  // Caller-owned cone-membership mask (nonzero byte = propagation allowed)
  // and the assumption count of the current search, used to confine
  // decision-level propagation to the probe's cone.
  std::span<const uint8_t> propagateMask_;
  std::vector<uint8_t> maskScratch_;  // backs the two-argument overload
  size_t assumptionCount_ = 0;
  // Rolling pick position in decisionVars_; reset by backtrack().
  size_t decisionCursor_ = 0;

  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;
  uint64_t restarts_ = 0;
  uint64_t reduces_ = 0;
  uint64_t nextReduce_ = kReduceInterval;
  uint64_t conflictBudget_ = 0;  // per-solve() cap; 0 = unlimited
  uint64_t budgetExhaustions_ = 0;
};

}  // namespace flay::sat

#endif  // FLAY_SAT_SOLVER_H
