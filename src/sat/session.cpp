#include "sat/session.h"

#include <algorithm>

namespace flay::sat {

bool SolverSession::addClause(std::span<const Lit> lits) {
  if (activeGroup_ == kPermanentGroup) return solver_.addClause(lits);
  Group& g = groups_[activeGroup_];
  assert(g.live && "emitting into a retired clause group");
  if (!g.materialized) {
    g.act = Lit::make(solver_.newVar(), false);
    g.materialized = true;
  }
  clauseScratch_.assign(lits.begin(), lits.end());
  // Guard literal last: never initially watched (see class comment).
  clauseScratch_.push_back(~g.act);
  return solver_.addClause(clauseScratch_);
}

uint32_t SolverSession::openGroup() {
  groups_.push_back(Group{});
  return nextGroup_++;
}

void SolverSession::retireGroup(uint32_t g) {
  if (g == kPermanentGroup || g >= groups_.size() || !groups_[g].live) return;
  groups_[g].live = false;
  ++retired_;
  // An unmaterialized group emitted no clauses; nothing to disable.
  if (groups_[g].materialized) solver_.addUnit(~groups_[g].act);
}

bool SolverSession::groupLive(uint32_t g) const {
  return g < groups_.size() && groups_[g].live;
}

size_t SolverSession::numLiveGroups() const {
  size_t n = 0;
  for (const Group& g : groups_) n += (g.live && g.materialized) ? 1 : 0;
  return n;
}

void SolverSession::buildAssumptions(std::span<const Lit> user) {
  assumptionScratch_.clear();
  // Group-id order: deterministic for a fixed set of live groups.
  for (uint32_t i = 1; i < groups_.size(); ++i) {
    if (groups_[i].live && groups_[i].materialized) {
      assumptionScratch_.push_back(groups_[i].act);
    }
  }
  assumptionScratch_.insert(assumptionScratch_.end(), user.begin(),
                            user.end());
}

Result SolverSession::solve(std::span<const Lit> assumptions) {
  buildAssumptions(assumptions);
  return solver_.solve(assumptionScratch_);
}

Result SolverSession::solveRestricted(std::span<const Lit> assumptions,
                                      std::span<const uint32_t> decisionVars) {
  buildAssumptions(assumptions);
  return solver_.solveRestricted(assumptionScratch_, decisionVars);
}

Result SolverSession::solveRestricted(std::span<const Lit> assumptions,
                                      std::span<const uint32_t> decisionVars,
                                      std::span<const uint8_t> propagateMask) {
  buildAssumptions(assumptions);
  return solver_.solveRestricted(assumptionScratch_, decisionVars,
                                 propagateMask);
}

}  // namespace flay::sat
