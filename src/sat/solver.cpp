#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/obs.h"

namespace flay::sat {

namespace {

/// Global handles for solver telemetry, resolved once. Counters are flushed
/// as deltas at the end of each solve() call so the hot loop touches only the
/// solver's local fields.
struct SatObs {
  obs::Counter& queries = obs::Registry::global().counter("sat.queries");
  obs::Counter& conflicts = obs::Registry::global().counter("sat.conflicts");
  obs::Counter& decisions = obs::Registry::global().counter("sat.decisions");
  obs::Counter& propagations =
      obs::Registry::global().counter("sat.propagations");
  obs::Counter& restarts = obs::Registry::global().counter("sat.restarts");
  obs::Counter& learned = obs::Registry::global().counter("sat.learned_clauses");
  obs::Counter& reduces = obs::Registry::global().counter("sat.reduce_runs");
  obs::Histogram& solveUs = obs::Registry::global().histogram("sat.solve_us");
  obs::Histogram& learnedDb =
      obs::Registry::global().histogram("sat.learned_db_size");

  static SatObs& get() {
    static SatObs instance;
    return instance;
  }
};

/// RAII flush of the per-query statistic deltas into the registry.
class StatsFlusher {
 public:
  explicit StatsFlusher(const Solver& solver)
      : solver_(solver),
        timer_(SatObs::get().solveUs, "sat.solve"),
        conflicts0_(solver.numConflicts()),
        decisions0_(solver.numDecisions()),
        propagations0_(solver.numPropagations()),
        restarts0_(solver.numRestarts()),
        reduces0_(solver.numReduceRuns()) {}

  ~StatsFlusher() {
    SatObs& o = SatObs::get();
    o.queries.add(1);
    o.conflicts.add(solver_.numConflicts() - conflicts0_);
    o.decisions.add(solver_.numDecisions() - decisions0_);
    o.propagations.add(solver_.numPropagations() - propagations0_);
    o.restarts.add(solver_.numRestarts() - restarts0_);
    o.reduces.add(solver_.numReduceRuns() - reduces0_);
    // Conflicts and learned clauses track each other 1:1 modulo reductions;
    // the DB-size histogram is what shows reduction keeping growth bounded.
    o.learned.add(solver_.numConflicts() - conflicts0_);
    o.learnedDb.record(solver_.numLearnedClauses());
  }

 private:
  const Solver& solver_;
  obs::ScopedTimer timer_;
  uint64_t conflicts0_, decisions0_, propagations0_, restarts0_, reduces0_;
};

}  // namespace

uint32_t Solver::newVar() {
  uint32_t v = numVars();
  assigns_.push_back(kUndef);
  model_.push_back(kUndef);
  levels_.push_back(0);
  reasons_.push_back(-1);
  varActivity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  binWatches_.emplace_back();
  binWatches_.emplace_back();
  return v;
}

bool Solver::addClause(std::span<const Lit> lits) {
  if (unsat_) return false;
  // The database only changes at decision level 0. Assumption levels kept
  // alive for trail reuse (see search()) are cancelled here: the new clause
  // may be unit or conflicting under them, and level-0 normalization below
  // must only see level-0 assignments.
  if (!trailLimits_.empty()) backtrack(0);
  // Normalize: drop duplicate and false literals, detect tautologies and
  // already-satisfied clauses.
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (Lit l : lits) {
    assert(l.var() < numVars());
    if (value(l) == 1) return true;  // satisfied at level 0
    if (value(l) == 0) continue;     // falsified at level 0: drop
    bool dup = false;
    for (Lit o : out) {
      if (o == l) dup = true;
      if (o == ~l) return true;  // tautology
    }
    if (!dup) out.push_back(l);
  }
  if (out.empty()) {
    unsat_ = true;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], -1);
    if (propagate() != -1) {
      unsat_ = true;
      return false;
    }
    return true;
  }
  clauses_.push_back({std::move(out), false, 0.0});
  attachClause(static_cast<uint32_t>(clauses_.size() - 1));
  return true;
}

void Solver::attachClause(uint32_t idx) {
  const Clause& c = clauses_[idx];
  assert(c.lits.size() >= 2);
  if (c.lits.size() == 2) {
    binWatches_[(~c.lits[0]).code].push_back({c.lits[1], idx});
    binWatches_[(~c.lits[1]).code].push_back({c.lits[0], idx});
    return;
  }
  watches_[(~c.lits[0]).code].push_back({idx, c.lits[1]});
  watches_[(~c.lits[1]).code].push_back({idx, c.lits[0]});
}

void Solver::enqueue(Lit l, int32_t reasonClause) {
  assert(value(l) == kUndef);
  assigns_[l.var()] = l.negated() ? 0 : 1;
  levels_[l.var()] = static_cast<uint32_t>(trailLimits_.size());
  reasons_[l.var()] = reasonClause;
  trail_.push_back(l);
}

int32_t Solver::propagate() {
  while (propagateHead_ < trail_.size()) {
    Lit p = trail_[propagateHead_++];
    ++propagations_;
    for (const BinWatcher& bw : binWatches_[p.code]) {
      const int8_t v = value(bw.other);
      if (v == 1) continue;
      if (v == 0) {
        propagateHead_ = trail_.size();
        return static_cast<int32_t>(bw.clauseIdx);
      }
      const uint32_t uv = bw.other.var();
      if (restricted_ && trailLimits_.size() > assumptionCount_ &&
          (uv >= propagateMask_.size() || !propagateMask_[uv])) {
        // Out-of-cone unit; see the matching branch below.
        continue;
      }
      // No touch of the backing clause here: analyze() skips the propagated
      // literal by variable, so reason clauses need no ordering. Avoiding the
      // dereference matters — it would be a random access into the (large)
      // warm clause store for every binary implication.
      enqueue(bw.other, static_cast<int32_t>(bw.clauseIdx));
    }
    std::vector<Watcher>& ws = watches_[p.code];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      // Fast path: blocker already satisfied.
      if (value(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = clauses_[w.clauseIdx];
      // Ensure the falsified literal ~p is at position 1.
      Lit falseLit = ~p;
      if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == falseLit);
      if (value(c.lits[0]) == 1) {
        ws[keep++] = {w.clauseIdx, c.lits[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool foundWatch = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code].push_back({w.clauseIdx, c.lits[0]});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) continue;
      // Clause is unit or conflicting.
      ws[keep++] = w;
      if (value(c.lits[0]) == 0) {
        // Conflict: keep remaining watchers and report.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        propagateHead_ = trail_.size();
        return static_cast<int32_t>(w.clauseIdx);
      }
      const uint32_t unitVar = c.lits[0].var();
      if (restricted_ && trailLimits_.size() > assumptionCount_ &&
          (unitVar >= propagateMask_.size() || !propagateMask_[unitVar])) {
        // Restricted solve, past the assumption levels: the unit literal is
        // outside the decision cone. In a definitional database an
        // unassigned gate output extends any cone model, so leave the clause
        // silent instead of cascading propagation through every other
        // probe's encoding. The watcher stays, so if the literal's variable
        // is ever assigned the clause is checked normally. Assumption-level
        // propagation (activation-literal cascades shared by every probe and
        // preserved across solves by trail reuse) stays unrestricted.
        continue;
      }
      enqueue(c.lits[0], static_cast<int32_t>(w.clauseIdx));
    }
    ws.resize(keep);
  }
  return -1;
}

void Solver::analyze(int32_t conflictIdx, std::vector<Lit>& outLearned,
                     uint32_t& outBtLevel) {
  outLearned.clear();
  outLearned.push_back(Lit{0});  // placeholder for the asserting literal
  uint32_t curLevel = static_cast<uint32_t>(trailLimits_.size());
  int pathCount = 0;
  Lit p{0};
  size_t trailIdx = trail_.size();
  int32_t reasonIdx = conflictIdx;
  bool first = true;

  do {
    assert(reasonIdx != -1);
    Clause& c = clauses_[reasonIdx];
    if (c.learned) bumpClause(static_cast<uint32_t>(reasonIdx));
    // For a reason clause, skip the literal it propagated (`p`); binary
    // clauses are not kept ordered by propagate(), so match by variable
    // rather than relying on position 0.
    const bool isConflict = first;
    first = false;
    for (size_t i = 0; i < c.lits.size(); ++i) {
      Lit q = c.lits[i];
      if (!isConflict && q.var() == p.var()) continue;
      if (seen_[q.var()] || levels_[q.var()] == 0) continue;
      seen_[q.var()] = 1;
      bumpVar(q.var());
      if (levels_[q.var()] == curLevel) {
        ++pathCount;
      } else {
        outLearned.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[trail_[trailIdx - 1].var()]) --trailIdx;
    --trailIdx;
    p = trail_[trailIdx];
    seen_[p.var()] = 0;
    reasonIdx = reasons_[p.var()];
    --pathCount;
  } while (pathCount > 0);
  outLearned[0] = ~p;

  // Compute backtrack level (second-highest level in the clause).
  outBtLevel = 0;
  if (outLearned.size() > 1) {
    size_t maxIdx = 1;
    for (size_t i = 2; i < outLearned.size(); ++i) {
      if (levels_[outLearned[i].var()] > levels_[outLearned[maxIdx].var()]) {
        maxIdx = i;
      }
    }
    std::swap(outLearned[1], outLearned[maxIdx]);
    outBtLevel = levels_[outLearned[1].var()];
  }
  for (Lit l : outLearned) seen_[l.var()] = 0;
}

void Solver::backtrack(uint32_t level) {
  if (trailLimits_.size() <= level) return;
  uint32_t bound = trailLimits_[level];
  for (size_t i = trail_.size(); i-- > bound;) {
    uint32_t v = trail_[i].var();
    assigns_[v] = kUndef;
    reasons_[v] = -1;
  }
  trail_.resize(bound);
  trailLimits_.resize(level);
  propagateHead_ = trail_.size();
  decisionCursor_ = 0;
}

Lit Solver::pickBranchLit() {
  uint32_t best = UINT32_MAX;
  double bestAct = -1.0;
  if (restricted_) {
    // Restricted solve: only the probe's cone of influence is eligible, and
    // the pick is a rolling cursor over the cone rather than an activity
    // scan — probes over a definitional database are conflict-light, so
    // VSIDS order buys nothing while an O(cone) scan per decision would make
    // each solve quadratic in the cone. The cursor resets on backtrack (an
    // unassigned variable may reappear behind it).
    while (decisionCursor_ < decisionVars_.size() &&
           assigns_[decisionVars_[decisionCursor_]] != kUndef) {
      ++decisionCursor_;
    }
    if (decisionCursor_ < decisionVars_.size()) {
      best = decisionVars_[decisionCursor_];
    }
  } else {
    const uint32_t n = numVars();
    for (uint32_t v = 0; v < n; ++v) {
      if (assigns_[v] == kUndef && varActivity_[v] > bestAct) {
        bestAct = varActivity_[v];
        best = v;
      }
    }
  }
  if (best == UINT32_MAX) return Lit{UINT32_MAX};
  // Phase saving: prefer the last model value if we have one.
  bool negate = model_[best] != 1;
  return Lit::make(best, negate);
}

void Solver::bumpVar(uint32_t v) {
  varActivity_[v] += varActivityInc_;
  if (varActivity_[v] > 1e100) {
    for (auto& a : varActivity_) a *= 1e-100;
    varActivityInc_ *= 1e-100;
  }
}

void Solver::bumpClause(uint32_t idx) {
  clauses_[idx].activity += clauseActivityInc_;
  if (clauses_[idx].activity > 1e20) {
    for (auto& c : clauses_) {
      if (c.learned) c.activity *= 1e-20;
    }
    clauseActivityInc_ *= 1e-20;
  }
}

void Solver::decayActivities() {
  varActivityInc_ /= 0.95;
  clauseActivityInc_ /= 0.999;
}

uint64_t Solver::luby(uint64_t i) {
  // Luby sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  assert(i >= 1);
  uint64_t k = 1;
  while ((1ull << (k + 1)) - 1 <= i) ++k;
  while (i != (1ull << k) - 1) {
    i -= (1ull << k) - 1;
    k = 1;
    while ((1ull << (k + 1)) - 1 <= i) ++k;
  }
  return 1ull << (k - 1);
}

void Solver::reduceLearned() {
  // Remove the least active half of the learned clauses that are not
  // currently reasons. Rebuild watches afterwards.
  std::vector<uint32_t> learned;
  for (uint32_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learned) learned.push_back(i);
  }
  if (learned.size() < 64) return;
  std::sort(learned.begin(), learned.end(), [this](uint32_t a, uint32_t b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  std::vector<bool> locked(clauses_.size(), false);
  for (Lit l : trail_) {
    if (reasons_[l.var()] >= 0) locked[reasons_[l.var()]] = true;
  }
  std::vector<bool> remove(clauses_.size(), false);
  for (size_t i = 0; i < learned.size() / 2; ++i) {
    if (!locked[learned[i]] && clauses_[learned[i]].lits.size() > 2) {
      remove[learned[i]] = true;
    }
  }
  // Compact clause storage and remap indices.
  std::vector<int32_t> remap(clauses_.size(), -1);
  std::vector<Clause> kept;
  kept.reserve(clauses_.size());
  for (uint32_t i = 0; i < clauses_.size(); ++i) {
    if (!remove[i]) {
      remap[i] = static_cast<int32_t>(kept.size());
      kept.push_back(std::move(clauses_[i]));
    }
  }
  clauses_ = std::move(kept);
  for (auto& r : reasons_) {
    if (r >= 0) r = remap[r];
  }
  for (auto& ws : watches_) ws.clear();
  for (auto& ws : binWatches_) ws.clear();
  for (uint32_t i = 0; i < clauses_.size(); ++i) attachClause(i);
}

Result Solver::solve(std::span<const Lit> assumptions) {
  restricted_ = false;
  decisionVars_ = {};
  return search(assumptions);
}

Result Solver::solveRestricted(std::span<const Lit> assumptions,
                               std::span<const uint32_t> decisionVars) {
  maskScratch_.assign(numVars(), 0);
  for (uint32_t v : decisionVars) maskScratch_[v] = 1;
  return solveRestricted(assumptions, decisionVars, maskScratch_);
}

Result Solver::solveRestricted(std::span<const Lit> assumptions,
                               std::span<const uint32_t> decisionVars,
                               std::span<const uint8_t> propagateMask) {
  restricted_ = true;
  decisionVars_ = decisionVars;
  propagateMask_ = propagateMask;
  decisionCursor_ = 0;  // new decision-var span; backtrack() may not run
  Result r = search(assumptions);
  restricted_ = false;
  decisionVars_ = {};
  propagateMask_ = {};
  return r;
}

Result Solver::search(std::span<const Lit> assumptions) {
  if (unsat_) return Result::kUnsat;
  StatsFlusher stats(*this);
  // Assumption-trail reuse: decision levels whose assumptions match a prefix
  // of the previous solve's assumptions are kept, along with everything they
  // propagated. A warm session assumes the same activation literals on every
  // probe, so the (potentially whole-database) propagation cascade those
  // trigger is paid once per group-set change instead of once per solve.
  // Every terminal path below leaves at most the applied assumption levels on
  // the trail, and addClause() cancels them, so the preserved prefix is
  // always exactly the propagation closure of those assumptions.
  size_t keep = 0;
  while (keep < assumptions.size() && keep < lastAssumptions_.size() &&
         keep < trailLimits_.size() &&
         assumptions[keep] == lastAssumptions_[keep]) {
    ++keep;
  }
  backtrack(static_cast<uint32_t>(keep));
  lastAssumptions_.assign(assumptions.begin(), assumptions.end());
  assumptionCount_ = assumptions.size();
  uint64_t restartNum = 0;
  uint64_t conflictBudget = 100 * luby(restartNum + 1);
  uint64_t conflictsThisRestart = 0;
  const uint64_t conflictsAtEntry = conflicts_;

  for (;;) {
    int32_t conflict = propagate();
    if (conflict != -1) {
      ++conflicts_;
      ++conflictsThisRestart;
      if (conflictBudget_ != 0 &&
          conflicts_ - conflictsAtEntry >= conflictBudget_) {
        // Deadline hit: surrender the search but keep everything learned so
        // far. The partial trail is rolled back so the instance stays usable.
        ++budgetExhaustions_;
        backtrack(0);
        return Result::kUnknown;
      }
      if (trailLimits_.empty()) return Result::kUnsat;
      std::vector<Lit> learned;
      uint32_t btLevel = 0;
      analyze(conflict, learned, btLevel);
      // Backtracking below an assumption level is fine: the assumption is
      // re-applied by the main loop and reported unsat there if falsified.
      backtrack(btLevel);
      if (learned.size() == 1) {
        if (value(learned[0]) == 0) return Result::kUnsat;
        if (value(learned[0]) == kUndef) enqueue(learned[0], -1);
      } else {
        clauses_.push_back({std::move(learned), true, 0.0});
        uint32_t idx = static_cast<uint32_t>(clauses_.size() - 1);
        attachClause(idx);
        bumpClause(idx);
        enqueue(clauses_[idx].lits[0], static_cast<int32_t>(idx));
      }
      decayActivities();
      continue;
    }
    if (conflictsThisRestart >= conflictBudget) {
      // Restart: drop to the assumption boundary.
      backtrack(0);
      ++restartNum;
      ++restarts_;
      conflictBudget = 100 * luby(restartNum + 1);
      conflictsThisRestart = 0;
      // Reduce the learned-clause DB on a conflict-count schedule. (Checking
      // `conflicts_ % 2048 == 0` here almost never fired — restarts rarely
      // land exactly on a multiple — letting the DB grow without bound.)
      if (conflicts_ >= nextReduce_) {
        reduceLearned();
        ++reduces_;
        nextReduce_ = conflicts_ + kReduceInterval;
      }
      continue;
    }
    // Apply pending assumptions, one decision level each.
    if (trailLimits_.size() < assumptions.size()) {
      Lit a = assumptions[trailLimits_.size()];
      if (value(a) == 0) {
        // Keep the already-applied assumption levels for the next solve: a
        // repeated unsat probe (e.g. a constant point re-checked under the
        // same activation set) then fails here immediately instead of
        // re-propagating the whole activation cascade.
        return Result::kUnsat;
      }
      trailLimits_.push_back(static_cast<uint32_t>(trail_.size()));
      if (value(a) == kUndef) enqueue(a, -1);
      continue;
    }
    Lit next = pickBranchLit();
    if (next.code == UINT32_MAX) {
      // Every decision-eligible variable is assigned: model found. Merge the
      // trail into the stored model instead of overwriting it wholesale — a
      // restricted solve leaves variables outside its cone unassigned, and
      // their previous model values (used for phase saving and for cached
      // model reads) must survive.
      for (Lit l : trail_) model_[l.var()] = assigns_[l.var()];
      // Drop only the free-search decisions; the assumption levels stay for
      // prefix reuse by the next solve.
      backtrack(static_cast<uint32_t>(assumptions.size()));
      return Result::kSat;
    }
    ++decisions_;
    trailLimits_.push_back(static_cast<uint32_t>(trail_.size()));
    enqueue(next, -1);
  }
}

}  // namespace flay::sat
