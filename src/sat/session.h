#ifndef FLAY_SAT_SESSION_H
#define FLAY_SAT_SESSION_H

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/solver.h"

namespace flay::sat {

/// Assumption-based incremental solving session (MiniSat-style): a warm
/// Solver whose clause database is partitioned into *groups*, each guarded by
/// an activation literal. Clauses added while a non-permanent group `g` is
/// active are stored as `(lits..., ~act_g)`; every solve assumes `act_g`
/// for each live group, which switches the guarded clauses on. Retiring a
/// group adds the level-0 unit `~act_g`, permanently satisfying (and thereby
/// disabling) every clause in the group — push/pop without touching the
/// clause store.
///
/// Lifetime rules:
///  - Group 0 is the *permanent* group: clauses emitted into it carry no
///    guard and can never be retired. Use it for encoding shared across the
///    whole program version.
///  - openGroup() mints a fresh group (ids from 1); retireGroup() disables
///    it. Retirement is idempotent and final — a retired group id is never
///    reused, and emitting into a retired group is a caller bug (asserted).
///  - Learned clauses are entailed by the full original database (guards
///    included), so they remain sound across every solve *and* across group
///    retirement; the session keeps them warm for the lifetime of the
///    underlying solver.
///
/// The guard literal is appended *last* so it is never one of the two
/// initially watched literals: assuming `act_g = true` at solve time then
/// visits only the (rare) learned clauses that happen to watch `~act_g`,
/// not the whole group's clause list.
class SolverSession final : public ClauseSink {
 public:
  static constexpr uint32_t kPermanentGroup = 0;

  uint32_t newVar() override { return solver_.newVar(); }
  uint32_t numVars() const override { return solver_.numVars(); }
  bool modelValue(uint32_t v) const override { return solver_.modelValue(v); }
  using ClauseSink::addClause;
  using ClauseSink::addUnit;

  /// Routes the clause into the active group (guarded unless the active
  /// group is the permanent group 0).
  bool addClause(std::span<const Lit> lits) override;

  void setActiveGroup(uint32_t group) override {
    assert(group < nextGroup_ && "unknown clause group");
    activeGroup_ = group;
  }
  uint32_t activeGroup() const override { return activeGroup_; }

  /// Mints a fresh retirable group and returns its id (ids start at 1; the
  /// activation variable is allocated lazily on first clause emission so an
  /// unused group costs nothing).
  uint32_t openGroup();

  /// Disables every clause in `g` via a level-0 unit on the negated
  /// activation literal. Idempotent; retiring group 0 or an unknown id is a
  /// no-op.
  void retireGroup(uint32_t g);
  bool groupLive(uint32_t g) const;
  /// Live groups that have emitted at least one clause (these are the ones
  /// that cost an assumption per solve).
  size_t numLiveGroups() const;
  size_t numRetiredGroups() const { return retired_; }

  /// Solves under the live-group activation assumptions plus the caller's
  /// assumptions (in that order — deterministic for a fixed group set).
  Result solve(std::span<const Lit> assumptions = {});

  /// Restricted-decision variant; see Solver::solveRestricted. The
  /// decision-variable cone must cover the support of every caller
  /// assumption (activation literals are accounted for by the session).
  Result solveRestricted(std::span<const Lit> assumptions,
                         std::span<const uint32_t> decisionVars);

  /// Split decision/propagation variant; see the three-argument
  /// Solver::solveRestricted.
  Result solveRestricted(std::span<const Lit> assumptions,
                         std::span<const uint32_t> decisionVars,
                         std::span<const uint8_t> propagateMask);

  void setConflictBudget(uint64_t maxConflictsPerSolve) {
    solver_.setConflictBudget(maxConflictsPerSolve);
  }

  Solver& solver() { return solver_; }
  const Solver& solver() const { return solver_; }

 private:
  void buildAssumptions(std::span<const Lit> user);

  struct Group {
    Lit act{UINT32_MAX};  // UINT32_MAX code = not yet materialized
    bool live = true;
    bool materialized = false;
  };

  Solver solver_;
  std::vector<Group> groups_{Group{}};  // indexed by group id; [0] is the
                                        // permanent group (never guarded,
                                        // never retired)
  uint32_t nextGroup_ = 1;
  uint32_t activeGroup_ = kPermanentGroup;
  size_t retired_ = 0;
  std::vector<Lit> clauseScratch_;
  std::vector<Lit> assumptionScratch_;
};

}  // namespace flay::sat

#endif  // FLAY_SAT_SESSION_H
