#ifndef FLAY_FLAY_BULK_H
#define FLAY_FLAY_BULK_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classifier/classifier.h"
#include "flay/engine.h"

namespace flay::flay {

/// Streaming bulk-update loader: the scale path through FlayService for
/// routing-table-sized streams (§4.2 taken to a million entries).
///
/// Three ideas, layered:
///
///  1. Classifier pre-filter. Per touched table, the loader derives key
///     predicates from the installed rule shape (src/classifier): per-key
///     exactness flags, the installed action set, and — below the
///     over-approximation threshold — a point-probe classifier built from
///     the installed entries (chooseClassifier picks the same structure the
///     table's match kinds dictate: hash, trie, STCAM, TCAM). An insert
///     provably invisible to the analysis bypasses re-encoding, digesting,
///     and semantics checks entirely:
///       - table already past the over-approximation threshold (hit/action/
///         param bindings are free, so the encoding is constant in the
///         entries), AND the entry's action is already in the table's raw
///         action set, AND every non-exact key keeps its digest flag (the
///         key is already "masked", or the entry is exact-valued on it); or
///       - below the threshold: the entry is exact-valued on every key and
///         the point-probe finds an installed rule covering it with match
///         precedence, i.e. the entry is eclipsed and the normalized entry
///         set — which is what the precise encoding and digest are computed
///         from — cannot change.
///     Everything else (threshold-crossing entries, new actions, shape
///     flips, non-insert updates) routes through the incremental analysis.
///  2. Chunked, amortized analysis. Non-bypassed updates accumulate the
///     touched-object set of a chunk; one analyzeObjects() call per chunk
///     pays the (memoized) taint closure, re-encoding, and substitution
///     once instead of per update.
///  3. Bounded memory. Updates are pulled from an UpdateSource, applied,
///     and dropped; per-chunk verdicts stream out through the callback.
///     Table storage is pre-reserved a chunk ahead so the stream never
///     pays mid-load reallocation or index rehash.
class BulkLoader {
 public:
  explicit BulkLoader(FlayService& service, BulkLoadOptions options = {});
  ~BulkLoader();

  /// Pulls `source` dry, applying every update. Returns the aggregate
  /// report; per-chunk verdicts stream through `cb` (may be empty).
  BulkLoadReport run(const UpdateSource& source,
                     const BulkChunkCallback& cb = {});

 private:
  enum class Route { kBypass, kAnalyze };

  /// Per-table pre-filter state, tracking exactly the properties the
  /// encoder and the structural table digest key on.
  struct TableFilter {
    bool eligible = false;  ///< no action profile, has keys
    size_t live = 0;        ///< raw installed entry count
    size_t threshold = 0;
    uint32_t keyWidth = 0;  ///< concatenated key width (key 0 = high bits)
    bool usesPriority = false;
    std::string defaultAction;
    /// Raw per-action entry counts (the over-approx digest's action set).
    std::map<std::string, size_t> actionCounts;
    /// Per key index: every installed entry is exact-valued on it (the
    /// digest's "exactable"/"masked" flag, over raw entries).
    std::vector<bool> keyExactOnly;
    /// Key indices with a non-exact match kind (the digested ones).
    std::vector<size_t> nonExactKeys;
    /// Installed rules (concatenated keys) + point-probe classifier; only
    /// built while the table is at or below the threshold. The probe covers
    /// rules[0, probeCovers); rules appended since (fresh inserts) form a
    /// bounded linear-scan delta, folded into a rebuilt classifier every
    /// kProbeDeltaMax inserts — so a bulk stream of N below-threshold
    /// inserts pays O(N/kProbeDeltaMax) classifier builds, not O(N).
    std::vector<classifier::Rule> rules;
    std::unique_ptr<classifier::Classifier> probe;
    size_t probeCovers = 0;
    /// Storage reserved up to this many entries; re-reserved a chunk ahead.
    size_t reservedTo = 0;
    bool built = false;
    /// Table mutated by a non-insert update: rebuild before next decision.
    bool dirty = false;
  };

  TableFilter& filterFor(const std::string& table);
  void rebuild(TableFilter& f, const std::string& table);
  /// Classifies one update against the pre-filter. Never mutates config.
  Route route(const runtime::Update& u);
  /// Folds one successfully applied update into the filter state.
  void noteApplied(const runtime::Update& u);

  FlayService& service_;
  BulkLoadOptions options_;
  std::map<std::string, TableFilter> filters_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_BULK_H
