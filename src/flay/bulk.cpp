#include "flay/bulk.h"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace flay::flay {

namespace {

struct BulkObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& updates = reg.counter("flay.updates");
  obs::Counter& bypass = reg.counter("flay.bulk_bypass");
  obs::Counter& analyzed = reg.counter("flay.bulk_analyzed");
  obs::Counter& rejected = reg.counter("flay.bulk_rejected");
  obs::Counter& probeHits = reg.counter("flay.bulk_probe_hits");
  obs::Counter& probeRebuilds = reg.counter("flay.bulk_probe_rebuilds");
  obs::Counter& chunks = reg.counter("flay.bulk_chunks");
  obs::Counter& loads = reg.counter("flay.bulk_loads");
  obs::Histogram& configApplyUs = reg.histogram("flay.config_apply_us");
  obs::Histogram& verdictUs = reg.histogram("flay.bulk_verdict_us");

  static BulkObs& get() {
    static BulkObs instance;
    return instance;
  }
};

/// Fresh inserts appended to a below-threshold filter since the last
/// classifier build; beyond this the delta folds into a rebuilt probe.
constexpr size_t kProbeDeltaMax = 64;

uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// True if the entry is exact-valued on every key (its match region is a
/// single point of the concatenated key space).
bool fullyExactValued(const runtime::TableEntry& e) {
  for (const auto& m : e.matches) {
    if (!m.isExactValued()) return false;
  }
  return true;
}

/// Concatenated key/mask of an entry, key 0 in the high bits — the same
/// layout the filter's probe rules use.
BitVec concatValues(const runtime::TableEntry& e) {
  BitVec acc = e.matches[0].value;
  for (size_t k = 1; k < e.matches.size(); ++k) {
    acc = acc.concat(e.matches[k].value);
  }
  return acc;
}

BitVec concatMasks(const runtime::TableEntry& e) {
  BitVec acc = e.matches[0].mask;
  for (size_t k = 1; k < e.matches.size(); ++k) {
    acc = acc.concat(e.matches[k].mask);
  }
  return acc;
}

}  // namespace

BulkLoader::BulkLoader(FlayService& service, BulkLoadOptions options)
    : service_(service), options_(options) {
  if (options_.chunkSize == 0) options_.chunkSize = 1;
}

BulkLoader::~BulkLoader() = default;

void BulkLoader::rebuild(TableFilter& f, const std::string& table) {
  const runtime::TableState& t = service_.config_->table(table);
  const p4::TableDecl& decl = t.decl();
  f = TableFilter();
  f.eligible = decl.actionProfile.empty() && !decl.keys.empty();
  f.threshold = service_.options_.encoder.overapproxThreshold;
  f.live = t.size();
  f.usesPriority = t.usesPriority();
  f.defaultAction = t.defaultActionName();
  f.keyExactOnly.assign(decl.keys.size(), true);
  for (size_t k = 0; k < decl.keys.size(); ++k) {
    if (decl.keys[k].matchKind != p4::MatchKind::kExact) {
      f.nonExactKeys.push_back(k);
    }
  }
  for (const auto& e : t.entries()) {
    ++f.actionCounts[e.actionName];
    for (size_t k = 0; k < e.matches.size() && k < f.keyExactOnly.size();
         ++k) {
      if (!e.matches[k].isExactValued()) f.keyExactOnly[k] = false;
    }
  }
  // Below the threshold the table is encoded precisely from its normalized
  // entries, so bypassing needs proof that the normalized set can't change:
  // a point-probe classifier over the installed rules answers "is this exact
  // key already covered?" in O(key). Above the threshold the encoding is
  // over-approximate and the probe is unnecessary.
  if (f.eligible && f.live > 0 && f.live <= f.threshold) {
    f.rules.reserve(f.live);
    for (const auto& e : t.entries()) {
      classifier::Rule r;
      r.value = concatValues(e);
      r.mask = concatMasks(e);
      r.priority = e.priority;
      r.actionId = static_cast<uint32_t>(f.rules.size());
      f.keyWidth = r.value.width();
      f.rules.push_back(std::move(r));
    }
    f.probe = classifier::chooseClassifier(f.rules, f.keyWidth);
    f.probeCovers = f.rules.size();
  }
  f.reservedTo = f.live + options_.chunkSize;
  service_.config_->reserveTable(table, f.reservedTo);
  f.built = true;
}

BulkLoader::TableFilter& BulkLoader::filterFor(const std::string& table) {
  TableFilter& f = filters_[table];
  if (!f.built || f.dirty) rebuild(f, table);
  return f;
}

BulkLoader::Route BulkLoader::route(const runtime::Update& u) {
  if (u.kind != runtime::Update::Kind::kInsert) {
    // Non-insert table mutations invalidate the target's filter; they are
    // always analyzed (defaults, deletes, and modifies all reach bindings
    // or digests directly).
    auto it = filters_.find(u.target);
    if (it != filters_.end()) it->second.dirty = true;
    return Route::kAnalyze;
  }
  if (!options_.classifierPrefilter) return Route::kAnalyze;
  if (!service_.config_->hasTable(u.target)) return Route::kAnalyze;
  TableFilter& f = filterFor(u.target);
  if (!f.eligible) return Route::kAnalyze;
  const runtime::TableEntry& e = u.entry;
  if (e.matches.size() != f.keyExactOnly.size()) return Route::kAnalyze;
  if (f.live > f.threshold) {
    // Over-approximated encoding: hit/action/params are free symbols, so
    // the encoding is constant in the entries. The structural digest still
    // tracks the raw action set and per-key exactness flags — bypass only
    // if the entry leaves both unchanged.
    if (e.actionName != f.defaultAction &&
        f.actionCounts.find(e.actionName) == f.actionCounts.end()) {
      return Route::kAnalyze;
    }
    for (size_t k : f.nonExactKeys) {
      if (f.keyExactOnly[k] && !e.matches[k].isExactValued()) {
        return Route::kAnalyze;
      }
    }
    return Route::kBypass;
  }
  // Precise encoding: sound to bypass only when the entry provably cannot
  // join the normalized entry set — and cannot push the raw size past the
  // threshold, which would flip the encoding itself.
  //
  // A covering rule renders the insert invisible when:
  //  - priority tables: the rule has match precedence (priority wins, the
  //    installed rule's smaller id wins ties — every installed id precedes
  //    the incoming entry's) — the entry is eclipsed out of the normalized
  //    set, or rejects as a duplicate;
  //  - exact/lpm tables: the rule is itself exact-valued, i.e. the insert
  //    is a duplicate and rejects. A shorter covering prefix does NOT
  //    precede an exact entry under lpm order, so it proves nothing —
  //    route those to the analysis.
  if (f.live + 1 <= f.threshold && fullyExactValued(e) &&
      (f.probe != nullptr || f.probeCovers < f.rules.size())) {
    BitVec point = concatValues(e);
    auto invisibleUnder = [&](const classifier::Rule& w) {
      return f.usesPriority ? w.priority >= e.priority : w.mask.isAllOnes();
    };
    bool covered = false;
    bool invisible = false;
    if (f.probe != nullptr) {
      // The probe answers with the highest-precedence covering rule among
      // rules[0, probeCovers); if that winner doesn't qualify, no probe
      // rule does (qualification is monotone in precedence).
      std::optional<uint32_t> hit = f.probe->classify(point);
      if (hit) {
        covered = true;
        invisible = invisibleUnder(f.rules[*hit]);
      }
    }
    // Linear scan over the bounded delta of inserts since the last probe
    // build; any qualifying covering rule suffices.
    for (size_t i = f.probeCovers; !invisible && i < f.rules.size(); ++i) {
      const classifier::Rule& w = f.rules[i];
      if (point.bitAnd(w.mask) != w.value.bitAnd(w.mask)) continue;
      covered = true;
      invisible = invisibleUnder(w);
    }
    if (covered) BulkObs::get().probeHits.add(1);
    if (invisible) return Route::kBypass;
  }
  return Route::kAnalyze;
}

void BulkLoader::noteApplied(const runtime::Update& u) {
  if (u.kind != runtime::Update::Kind::kInsert) return;
  auto it = filters_.find(u.target);
  if (it == filters_.end() || it->second.dirty) return;
  TableFilter& f = it->second;
  ++f.live;
  ++f.actionCounts[u.entry.actionName];
  for (size_t k = 0;
       k < u.entry.matches.size() && k < f.keyExactOnly.size(); ++k) {
    if (!u.entry.matches[k].isExactValued()) f.keyExactOnly[k] = false;
  }
  // In the precise regime the probe must cover every installed rule.
  // Rebuilding it per insert made every below-threshold insert O(table) —
  // the rebuild-per-insert bug — so instead the fresh rule is appended to
  // the filter's delta (scanned linearly by route()) and folded into a
  // rebuilt classifier only every kProbeDeltaMax inserts. Crossing the
  // threshold flips the encoding to over-approximate, where the
  // incremental action/exactness bookkeeping above suffices and the probe
  // state can be dropped.
  if (f.live <= f.threshold) {
    if (f.eligible) {
      if (u.entry.matches.size() == f.keyExactOnly.size()) {
        classifier::Rule r;
        r.value = concatValues(u.entry);
        r.mask = concatMasks(u.entry);
        r.priority = u.entry.priority;
        r.actionId = static_cast<uint32_t>(f.rules.size());
        if (f.rules.empty()) f.keyWidth = r.value.width();
        if (r.value.width() == f.keyWidth) {
          f.rules.push_back(std::move(r));
          if (f.rules.size() - f.probeCovers >= kProbeDeltaMax) {
            f.probe = classifier::chooseClassifier(f.rules, f.keyWidth);
            f.probeCovers = f.rules.size();
            BulkObs::get().probeRebuilds.add(1);
          }
        } else {
          f.dirty = true;  // key-width drift: fall back to a full rebuild
        }
      } else {
        f.dirty = true;
      }
    }
    // Ineligible tables keep no probe; the count/exactness bookkeeping
    // above is the whole filter state and stays incremental.
  } else if (f.probe != nullptr || !f.rules.empty()) {
    f.probe.reset();
    f.rules.clear();
    f.rules.shrink_to_fit();
    f.probeCovers = 0;
  }
  if (f.live >= f.reservedTo) {
    f.reservedTo = f.live + options_.chunkSize;
    service_.config_->reserveTable(u.target, f.reservedTo);
  }
}

BulkLoadReport BulkLoader::run(const UpdateSource& source,
                               const BulkChunkCallback& cb) {
  BulkObs& bobs = BulkObs::get();
  bobs.loads.add(1);
  BulkLoadReport report;
  bool exhausted = false;
  size_t chunkIndex = 0;
  while (!exhausted) {
    BulkChunkVerdict chunk;
    chunk.chunkIndex = chunkIndex;
    std::set<std::string> objects;
    auto chunkStart = std::chrono::steady_clock::now();
    while (chunk.updates < options_.chunkSize) {
      std::optional<runtime::Update> u = source();
      if (!u) {
        exhausted = true;
        break;
      }
      ++chunk.updates;
      Route r = route(*u);
      auto applyStart = std::chrono::steady_clock::now();
      try {
        std::string object = service_.config_->apply(*u);
        bobs.configApplyUs.record(microsSince(applyStart));
        bobs.updates.add(1);
        if (r == Route::kBypass) {
          ++chunk.bypassed;
          bobs.bypass.add(1);
        } else {
          ++chunk.analyzed;
          bobs.analyzed.add(1);
          objects.insert(std::move(object));
        }
        noteApplied(*u);
        if (options_.collectApplied) chunk.applied.push_back(std::move(*u));
      } catch (const std::invalid_argument&) {
        // Same contract as a sequential replay that skips rejections:
        // nothing changed, count and move on.
        bobs.configApplyUs.record(microsSince(applyStart));
        ++chunk.rejected;
        bobs.rejected.add(1);
      }
    }
    if (chunk.updates == 0) break;
    if (!objects.empty()) {
      chunk.verdict = service_.analyzeObjects(objects);
    }
    chunk.verdictLatencyUs = microsSince(chunkStart);
    bobs.verdictUs.record(chunk.verdictLatencyUs);
    bobs.chunks.add(1);
    report.updates += chunk.updates;
    report.applied += chunk.bypassed + chunk.analyzed;
    report.bypassed += chunk.bypassed;
    report.analyzed += chunk.analyzed;
    report.rejected += chunk.rejected;
    ++report.chunks;
    report.expressionsChanged |= chunk.verdict.expressionsChanged;
    report.needsRecompilation |= chunk.verdict.needsRecompilation;
    report.overapproximated |= chunk.verdict.overapproximated;
    report.changedComponents.insert(chunk.verdict.changedComponents.begin(),
                                    chunk.verdict.changedComponents.end());
    if (cb) cb(chunk);
    ++chunkIndex;
  }
  return report;
}

BulkLoadReport FlayService::applyStream(const UpdateSource& source,
                                        const BulkLoadOptions& options,
                                        const BulkChunkCallback& cb) {
  BulkLoader loader(*this, options);
  return loader.run(source, cb);
}

BulkLoadReport FlayService::bulkLoad(const std::vector<runtime::Update>& updates,
                                     const BulkLoadOptions& options,
                                     const BulkChunkCallback& cb) {
  size_t next = 0;
  return applyStream(
      [&]() -> std::optional<runtime::Update> {
        if (next >= updates.size()) return std::nullopt;
        return updates[next++];
      },
      options, cb);
}

}  // namespace flay::flay
