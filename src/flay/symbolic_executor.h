#ifndef FLAY_FLAY_SYMBOLIC_EXECUTOR_H
#define FLAY_FLAY_SYMBOLIC_EXECUTOR_H

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "expr/arena.h"
#include "flay/program_points.h"
#include "p4/typecheck.h"

namespace flay::flay {

/// Control-plane placeholders created for one table apply site. The encoder
/// substitutes these with expressions derived from the installed entries.
struct TableInfo {
  std::string qualified;  // "Ingress.fwd"
  const p4::ControlDecl* control = nullptr;
  const p4::TableDecl* decl = nullptr;
  /// Symbolic values of the key expressions at the apply site.
  std::vector<expr::ExprRef> keyExprs;
  /// bool: does some entry match?
  expr::ExprRef hitSymbol;
  /// bit<8> selector over [actions..., noop]: which action runs on hit.
  expr::ExprRef actionSymbol;
  /// bit<8> selector: which action runs on miss (runtime default action).
  expr::ExprRef defaultActionSymbol;
  /// Entry-role parameter symbols: "<action>.<param>" -> symbol.
  std::map<std::string, expr::ExprRef> paramSymbols;
  /// Default-role parameter symbols: "<action>.<param>" -> symbol.
  std::map<std::string, expr::ExprRef> defaultParamSymbols;
  /// Program point ids for the hit/action annotations.
  uint32_t hitPoint = 0;
  uint32_t actionPoint = 0;

  /// Selector index of the built-in no-op arm.
  uint32_t noopIndex() const {
    return static_cast<uint32_t>(decl->actionNames.size());
  }
  /// Selector index for an action name (noopIndex() for noop/NoAction).
  uint32_t actionIndex(const std::string& name) const;
};

/// One use of a parser value set in a select expression.
struct ValueSetUse {
  std::string qualified;  // "MyParser.tpids"
  expr::ExprRef selectExpr;
  expr::ExprRef symbol;  // bool cp placeholder for "select value in set"
};

struct AnalysisOptions {
  /// Symbolically execute the parser. Disabled, every header field and
  /// validity bit becomes a free symbol — the mode Table 2 reports for
  /// large programs ("skips the parser").
  bool analyzeParser = true;
};

/// Output of the one-time data-plane analysis (Fig. 4, top box).
struct AnalysisResult {
  AnnotationStore annotations;
  std::vector<TableInfo> tables;
  std::map<std::string, size_t> tableIndex;  // qualified -> tables[] index
  std::vector<ValueSetUse> valueSetUses;
  /// Final symbolic value of every location after the last control.
  std::map<std::string, expr::ExprRef> finalState;
  expr::ExprRef parserAccept;
  /// Map from control-plane symbol id to owning object qualified name.
  std::map<uint32_t, std::string> symbolOwner;
  std::chrono::microseconds analysisTime{0};

  const TableInfo& table(const std::string& qualified) const {
    return tables[tableIndex.at(qualified)];
  }
};

/// The data-flow analysis with state merging (§4.1): computes hermetic
/// data-plane expressions for every program point of interest, introducing
/// control-plane placeholder symbols at table applies and value-set uses.
class SymbolicExecutor {
 public:
  SymbolicExecutor(const p4::CheckedProgram& checked, expr::ExprArena& arena,
                   AnalysisOptions options = {});

  AnalysisResult run();

 private:
  class Impl;
  const p4::CheckedProgram& checked_;
  expr::ExprArena& arena_;
  AnalysisOptions options_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_SYMBOLIC_EXECUTOR_H
