#ifndef FLAY_FLAY_CHECK_ENGINE_H
#define FLAY_FLAY_CHECK_ENGINE_H

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/arena.h"
#include "expr/canonical.h"
#include "flay/verdict_cache.h"
#include "smt/incremental.h"
#include "smt/solver.h"
#include "support/thread_pool.h"

namespace flay::flay {

/// True constant / false constant / unknown for a specialized boolean.
enum class TriVerdict { kTrue, kFalse, kUnknown };

struct CheckEngineOptions {
  /// Worker threads for prefetch(): jobs-1 pool workers plus the calling
  /// thread probe concurrently. 1 = fully serial (no pool is created).
  size_t jobs = 1;
  /// Serve repeated semantics checks from the canonical-digest cache.
  bool useVerdictCache = true;
  /// Ask the solver only about expressions up to this DAG size (0 disables
  /// solver queries entirely, like SpecializerOptions::solverDagLimit).
  size_t solverDagLimit = 512;
  /// Fail-safe deadline per underlying SAT call, in conflicts (0 = none).
  uint64_t solverConflictBudget = 20000;
  /// Keep one warm assumption-based SAT session per worker slot and encode
  /// delta CNF into it across probes, instead of a fresh solver per probe.
  /// Verdicts are identical either way (warm kUnknowns fall back to a fresh
  /// probe); this only trades memory for speed on repeated/overlapping
  /// formulas.
  bool incrementalSat = true;
};

/// How a verdict was obtained, for the caller's stats.
struct CheckOutcome {
  /// The check went past constant folding: a solver query ran, or the cache
  /// answered in its place. Mirrors what SpecializationStats::solverQueries
  /// counted before the engine existed.
  bool solverQueried = false;
  /// The conflict budget expired with the question unsettled. Never cached.
  bool timedOut = false;
  /// The verdict came from the cache (possibly via an earlier prefetch).
  bool cacheHit = false;
};

/// One semantics check to warm up ahead of the rewrite pass. `scope` tags
/// the cache entry for per-component invalidation (usually the program
/// point's component).
struct CheckQuery {
  expr::ExprRef expr;
  std::string scope;
};

/// Collects scope invalidations signalled by the verdict cache — possibly
/// from another thread, or another engine sharing the cache — until the
/// owning engine's next synchronous drain point (prefetch/settle entry). The
/// warm clause groups retire there; doing it inside the notification would
/// race the worker threads that solve on those sessions.
class ScopeRetirementQueue final : public ScopeArtifact {
 public:
  void onScopeInvalidated(const std::string& scope) override {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(scope);
  }
  void onCacheCleared() override {
    std::lock_guard<std::mutex> lock(mu_);
    cleared_ = true;
    pending_.clear();  // subsumed by the full teardown
  }
  /// Returns the queued scopes and resets the queue. `clearAll` reports
  /// whether the whole cache was dropped since the last drain, which
  /// subsumes individual scope retirements.
  std::vector<std::string> drain(bool* clearAll) {
    std::lock_guard<std::mutex> lock(mu_);
    *clearAll = cleared_;
    cleared_ = false;
    return std::exchange(pending_, {});
  }

 private:
  std::mutex mu_;
  std::vector<std::string> pending_;
  bool cleared_ = false;
};

/// The semantics-check engine: answers the specializer's "is this
/// specialized expression a constant?" questions through, in order, arena
/// constant folding, a canonical-digest verdict cache, and budgeted
/// constantness probes (smt::probeConstant). prefetch() runs the probes of
/// a whole batch concurrently on a thread pool — safe because probes only
/// read the (immutable once interned) arena and never intern nodes.
///
/// Determinism: a verdict is a pure function of the expression. In the
/// default fresh-solver mode every probe uses a fresh solver with the same
/// conflict budget, so even timeouts are deterministic. In incremental mode
/// (CheckEngineOptions::incrementalSat) each worker slot keeps a warm
/// smt::ProbeSession; warm solves that exhaust their budget fall back to the
/// fresh probe, so verdicts stay identical across jobs settings, cache
/// on/off, incremental on/off, and prefetch vs lazy evaluation. Timeouts
/// are never cached in either mode.
class CheckEngine {
 public:
  /// `sharedCache` lets multiple engines (one per FlayService, e.g. across a
  /// device fleet) pool their verdicts: canonical renderings are
  /// construction-history independent, so identical programs produce
  /// identical cache keys whatever arena they were interned into, and a
  /// verdict is a pure fact about its rendering — sharing can never serve a
  /// wrong answer. Null = this engine owns a private cache. `scopePrefix` is
  /// prepended to every scope tag recorded in the cache (e.g. "dev3/"), so
  /// scope invalidation stays per-instance even on a shared cache.
  explicit CheckEngine(const expr::ExprArena& arena,
                       std::shared_ptr<VerdictCache> sharedCache = nullptr,
                       std::string scopePrefix = "");
  ~CheckEngine();

  CheckEngine(const CheckEngine&) = delete;
  CheckEngine& operator=(const CheckEngine&) = delete;

  /// Applies new options. Changing `jobs` tears down the pool (it is
  /// re-created lazily at the next parallel prefetch). The cache is kept:
  /// verdicts are facts, so entries stay correct across reconfiguration.
  void configure(const CheckEngineOptions& options);
  const CheckEngineOptions& options() const { return options_; }

  /// Settles a batch of checks ahead of time: folded/oversized/duplicate
  /// queries are filtered, cache hits are collected, and the remaining
  /// probes run concurrently across `jobs` threads. Results are staged for
  /// the following boolVerdict()/constVerdict() calls and inserted into the
  /// verdict cache. A new prefetch() discards the previous staging.
  void prefetch(const std::vector<CheckQuery>& queries);

  /// Verdict for a specialized boolean expression. kUnknown covers
  /// not-constant, over-budget (timeout), and over-DAG-limit alike: the
  /// caller keeps the general implementation.
  TriVerdict boolVerdict(expr::ExprRef specialized, const std::string& scope,
                         CheckOutcome* outcome = nullptr);

  /// Constant value of a specialized bit-vector expression, or nullopt when
  /// it is not (provably) constant. Boolean-sorted expressions always return
  /// nullopt, mirroring the specializer's historical constVerdict.
  std::optional<BitVec> constVerdict(expr::ExprRef specialized,
                                     const std::string& scope,
                                     CheckOutcome* outcome = nullptr);

  /// Drops cached verdicts recorded under `scope` (memory hygiene when a
  /// component respecializes). Also queues the scope's warm clause groups
  /// for retirement — that part is a soundness requirement in incremental
  /// mode: the scope's formulas are about to be replaced, and their retired
  /// encodings must not satisfy later probes via stale memo hits.
  void invalidateScope(const std::string& scope);
  void clearCache();

  /// Raises the shared-structure watermark for the warm sessions: arena
  /// nodes interned before this point are version-lifetime program structure
  /// and encode into the permanent clause group; newer nodes encode into
  /// the probing scope's retirable group. Call at the start of an update
  /// round with the arena's node count. No-op in fresh-solver mode.
  void setIncrementalWatermark(uint32_t nodeId);

  VerdictCache& cache() { return *cache_; }

 private:
  struct Prefetched {
    smt::ConstantProbe probe;
    bool fromCache = false;
  };

  /// Core path for an expression that folding could not settle and that is
  /// within the DAG limit: staged prefetch result, then cache, then a
  /// synchronous probe.
  smt::ConstantProbe settle(expr::ExprRef e, const std::string& scope,
                            CheckOutcome* outcome);
  bool withinDagLimit(expr::ExprRef e) const;
  /// The cache scope tag for a component scope: scopePrefix_ + scope.
  std::string scoped(const std::string& scope) const;
  /// Applies queued scope retirements to the warm sessions. Must only run
  /// from the coordinating thread while no worker is solving.
  void drainRetirements();
  /// Lazily builds one warm ProbeSession per worker slot.
  void ensureSessions();

  const expr::ExprArena& arena_;
  expr::CanonicalRenderer renderer_;
  std::shared_ptr<VerdictCache> cache_;
  std::string scopePrefix_;
  CheckEngineOptions options_;
  std::unique_ptr<support::ThreadPool> pool_;
  /// Expr id -> staged result from the last prefetch().
  std::unordered_map<uint32_t, Prefetched> prefetched_;
  /// Warm incremental sessions, one per worker slot (jobs slots; a single
  /// slot when serial). Slot k is only ever touched by prefetch task k or,
  /// for slot 0, the coordinating thread — sessions are not thread-safe.
  std::vector<std::unique_ptr<smt::ProbeSession>> sessions_;
  std::shared_ptr<ScopeRetirementQueue> retirements_;
  uint32_t watermark_ = 0;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_CHECK_ENGINE_H
