#ifndef FLAY_FLAY_CHECK_ENGINE_H
#define FLAY_FLAY_CHECK_ENGINE_H

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/arena.h"
#include "expr/canonical.h"
#include "flay/verdict_cache.h"
#include "smt/solver.h"
#include "support/thread_pool.h"

namespace flay::flay {

/// True constant / false constant / unknown for a specialized boolean.
enum class TriVerdict { kTrue, kFalse, kUnknown };

struct CheckEngineOptions {
  /// Worker threads for prefetch(): jobs-1 pool workers plus the calling
  /// thread probe concurrently. 1 = fully serial (no pool is created).
  size_t jobs = 1;
  /// Serve repeated semantics checks from the canonical-digest cache.
  bool useVerdictCache = true;
  /// Ask the solver only about expressions up to this DAG size (0 disables
  /// solver queries entirely, like SpecializerOptions::solverDagLimit).
  size_t solverDagLimit = 512;
  /// Fail-safe deadline per underlying SAT call, in conflicts (0 = none).
  uint64_t solverConflictBudget = 20000;
};

/// How a verdict was obtained, for the caller's stats.
struct CheckOutcome {
  /// The check went past constant folding: a solver query ran, or the cache
  /// answered in its place. Mirrors what SpecializationStats::solverQueries
  /// counted before the engine existed.
  bool solverQueried = false;
  /// The conflict budget expired with the question unsettled. Never cached.
  bool timedOut = false;
  /// The verdict came from the cache (possibly via an earlier prefetch).
  bool cacheHit = false;
};

/// One semantics check to warm up ahead of the rewrite pass. `scope` tags
/// the cache entry for per-component invalidation (usually the program
/// point's component).
struct CheckQuery {
  expr::ExprRef expr;
  std::string scope;
};

/// The semantics-check engine: answers the specializer's "is this
/// specialized expression a constant?" questions through, in order, arena
/// constant folding, a canonical-digest verdict cache, and budgeted
/// constantness probes (smt::probeConstant). prefetch() runs the probes of
/// a whole batch concurrently on a thread pool — safe because probes only
/// read the (immutable once interned) arena and never intern nodes.
///
/// Determinism: every probe uses a fresh solver with the same conflict
/// budget, so a verdict is a pure function of the expression — identical
/// across jobs settings, cache on/off, and prefetch vs lazy evaluation.
/// Timeouts are deterministic for the same reason, and are never cached.
class CheckEngine {
 public:
  /// `sharedCache` lets multiple engines (one per FlayService, e.g. across a
  /// device fleet) pool their verdicts: canonical renderings are
  /// construction-history independent, so identical programs produce
  /// identical cache keys whatever arena they were interned into, and a
  /// verdict is a pure fact about its rendering — sharing can never serve a
  /// wrong answer. Null = this engine owns a private cache. `scopePrefix` is
  /// prepended to every scope tag recorded in the cache (e.g. "dev3/"), so
  /// scope invalidation stays per-instance even on a shared cache.
  explicit CheckEngine(const expr::ExprArena& arena,
                       std::shared_ptr<VerdictCache> sharedCache = nullptr,
                       std::string scopePrefix = "");
  ~CheckEngine();

  CheckEngine(const CheckEngine&) = delete;
  CheckEngine& operator=(const CheckEngine&) = delete;

  /// Applies new options. Changing `jobs` tears down the pool (it is
  /// re-created lazily at the next parallel prefetch). The cache is kept:
  /// verdicts are facts, so entries stay correct across reconfiguration.
  void configure(const CheckEngineOptions& options);
  const CheckEngineOptions& options() const { return options_; }

  /// Settles a batch of checks ahead of time: folded/oversized/duplicate
  /// queries are filtered, cache hits are collected, and the remaining
  /// probes run concurrently across `jobs` threads. Results are staged for
  /// the following boolVerdict()/constVerdict() calls and inserted into the
  /// verdict cache. A new prefetch() discards the previous staging.
  void prefetch(const std::vector<CheckQuery>& queries);

  /// Verdict for a specialized boolean expression. kUnknown covers
  /// not-constant, over-budget (timeout), and over-DAG-limit alike: the
  /// caller keeps the general implementation.
  TriVerdict boolVerdict(expr::ExprRef specialized, const std::string& scope,
                         CheckOutcome* outcome = nullptr);

  /// Constant value of a specialized bit-vector expression, or nullopt when
  /// it is not (provably) constant. Boolean-sorted expressions always return
  /// nullopt, mirroring the specializer's historical constVerdict.
  std::optional<BitVec> constVerdict(expr::ExprRef specialized,
                                     const std::string& scope,
                                     CheckOutcome* outcome = nullptr);

  /// Drops cached verdicts recorded under `scope` (memory hygiene when a
  /// component respecializes; correctness never depends on this).
  void invalidateScope(const std::string& scope);
  void clearCache();

  VerdictCache& cache() { return *cache_; }

 private:
  struct Prefetched {
    smt::ConstantProbe probe;
    bool fromCache = false;
  };

  /// Core path for an expression that folding could not settle and that is
  /// within the DAG limit: staged prefetch result, then cache, then a
  /// synchronous probe.
  smt::ConstantProbe settle(expr::ExprRef e, const std::string& scope,
                            CheckOutcome* outcome);
  bool withinDagLimit(expr::ExprRef e) const;
  /// The cache scope tag for a component scope: scopePrefix_ + scope.
  std::string scoped(const std::string& scope) const;

  const expr::ExprArena& arena_;
  expr::CanonicalRenderer renderer_;
  std::shared_ptr<VerdictCache> cache_;
  std::string scopePrefix_;
  CheckEngineOptions options_;
  std::unique_ptr<support::ThreadPool> pool_;
  /// Expr id -> staged result from the last prefetch().
  std::unordered_map<uint32_t, Prefetched> prefetched_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_CHECK_ENGINE_H
