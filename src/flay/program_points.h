#ifndef FLAY_FLAY_PROGRAM_POINTS_H
#define FLAY_FLAY_PROGRAM_POINTS_H

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/arena.h"

namespace flay::flay {

/// What a program-point annotation captures (§4.1: "Flay ... annotates
/// program points of interest with a data-plane expression").
enum class PointKind {
  kIfCondition,    // executability of an if branch
  kAssignedValue,  // value snapshot after an assignment (constant query)
  kTableHit,       // does some entry of this table match?
  kTableAction,    // which action index executes?
  kSelectCase,     // parser select-case guard
  kParserAccept,   // overall parser accept condition
  kFinalValue,     // value of a location at end of pipeline
};

/// One annotated program point. `expr` is the hermetic data-plane expression
/// over data-plane symbols and control-plane placeholders; `specialized` is
/// its current value under the active control-plane assignments.
struct ProgramPoint {
  uint32_t id = 0;
  PointKind kind = PointKind::kAssignedValue;
  /// Human-readable site, e.g. "Ingress.apply#3" or "Ingress.fwd".
  std::string label;
  /// The component a change at this point forces a recompile of (usually a
  /// qualified table or control name), per the paper's component mapping.
  std::string component;
  expr::ExprRef expr;
  expr::ExprRef specialized;
  /// Original-AST node this point annotates (Stmt* or SelectCase*), set only
  /// for points the specializer may rewrite (top-level statements, not
  /// statements inside action bodies). Never dereferenced for ownership.
  const void* astNode = nullptr;
};

/// The annotation store plus the taint index from control-plane objects to
/// the program points they influence.
class AnnotationStore {
 public:
  uint32_t add(PointKind kind, std::string label, std::string component,
               expr::ExprRef e, const void* astNode = nullptr) {
    ProgramPoint p;
    p.id = static_cast<uint32_t>(points_.size());
    p.kind = kind;
    p.label = std::move(label);
    p.component = std::move(component);
    p.expr = e;
    p.specialized = e;
    p.astNode = astNode;
    points_.push_back(std::move(p));
    return points_.back().id;
  }

  /// Point id annotating a given original-AST node, or UINT32_MAX.
  uint32_t pointForNode(const void* node) const {
    for (const auto& p : points_) {
      if (p.astNode == node) return p.id;
    }
    return UINT32_MAX;
  }

  std::vector<ProgramPoint>& points() { return points_; }
  const std::vector<ProgramPoint>& points() const { return points_; }
  ProgramPoint& point(uint32_t id) { return points_[id]; }
  const ProgramPoint& point(uint32_t id) const { return points_[id]; }

  /// Taint map: control-plane object (qualified name) -> affected points.
  void taint(const std::string& object, uint32_t pointId) {
    taintMap_[object].push_back(pointId);
  }
  const std::vector<uint32_t>& affectedPoints(const std::string& object) const {
    static const std::vector<uint32_t> kEmpty;
    auto it = taintMap_.find(object);
    return it == taintMap_.end() ? kEmpty : it->second;
  }
  const std::unordered_map<std::string, std::vector<uint32_t>>& taintMap()
      const {
    return taintMap_;
  }

 private:
  std::vector<ProgramPoint> points_;
  std::unordered_map<std::string, std::vector<uint32_t>> taintMap_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_PROGRAM_POINTS_H
