#include "flay/encoder.h"

namespace flay::flay {

using expr::ExprRef;

namespace {
constexpr uint32_t kSelectorWidth = 8;
}

ExprRef ControlPlaneEncoder::entryCondition(
    const TableInfo& info, const runtime::TableEntry& entry) const {
  ExprRef cond = arena_.boolConst(true);
  for (size_t i = 0; i < entry.matches.size(); ++i) {
    const runtime::FieldMatch& m = entry.matches[i];
    ExprRef key = info.keyExprs[i];
    ExprRef fieldCond;
    if (m.isWildcard()) {
      fieldCond = arena_.boolConst(true);
    } else if (m.isExactValued()) {
      fieldCond = arena_.eq(key, arena_.bvConst(m.value));
    } else {
      fieldCond = arena_.eq(arena_.bvAnd(key, arena_.bvConst(m.mask)),
                            arena_.bvConst(m.value.bitAnd(m.mask)));
    }
    cond = arena_.bAnd(cond, fieldCond);
  }
  return cond;
}

std::vector<Binding> ControlPlaneEncoder::encodeTable(
    const TableInfo& info, const runtime::TableState& table,
    const runtime::DeviceConfig& config, bool* overapproximated) const {
  std::vector<Binding> bindings;
  if (overapproximated != nullptr) *overapproximated = false;

  // An empty action profile means no profile-backed entry can execute a
  // real action: the table behaves as if empty (§3, "Savings in other
  // hardware resources").
  bool profileEmpty = false;
  if (!info.decl->actionProfile.empty()) {
    const std::string qualifiedProfile =
        info.control->name + "." + info.decl->actionProfile;
    profileEmpty = config.actionProfile(qualifiedProfile).empty();
  }

  // The default action and its arguments are always precise: they are a
  // single assignment, independent of the entry count.
  uint32_t defaultIdx = info.actionIndex(table.defaultActionName());
  bindings.push_back({info.defaultActionSymbol,
                      arena_.bvConst(BitVec(kSelectorWidth, defaultIdx))});
  {
    const p4::ActionDecl* defaultAction =
        info.control->findAction(table.defaultActionName());
    for (const auto& [name, symbol] : info.defaultParamSymbols) {
      // name is "<action>.<param>".
      ExprRef value;
      if (defaultAction != nullptr &&
          name.rfind(table.defaultActionName() + ".", 0) == 0) {
        const std::string paramName =
            name.substr(table.defaultActionName().size() + 1);
        for (size_t i = 0; i < defaultAction->params.size(); ++i) {
          if (defaultAction->params[i].name == paramName) {
            value = arena_.bvConst(table.defaultActionArgs()[i]);
            break;
          }
        }
      }
      if (!value.valid()) {
        // Not the active default action: the arm is unreachable, pin to 0
        // so the expression stays fully specialized.
        value = arena_.bvConst(BitVec::zero(arena_.width(symbol)));
      }
      bindings.push_back({symbol, value});
    }
  }

  if (table.empty() || profileEmpty) {
    bindings.push_back({info.hitSymbol, arena_.boolConst(false)});
    bindings.push_back(
        {info.actionSymbol,
         arena_.bvConst(BitVec(kSelectorWidth, info.noopIndex()))});
    for (const auto& [name, symbol] : info.paramSymbols) {
      bindings.push_back(
          {symbol, arena_.bvConst(BitVec::zero(arena_.width(symbol)))});
    }
    return bindings;
  }

  // Past the threshold, over-approximate *before* paying for normalization:
  // leave hit/action/entry-params free, reverting the affected annotations
  // to their general (Block A) form. The raw entry count is used (an upper
  // bound on the normalized count) so the fast path costs O(1).
  if (table.size() > options_.overapproxThreshold) {
    if (overapproximated != nullptr) *overapproximated = true;
    bindings.push_back({info.hitSymbol, ExprRef{}});
    bindings.push_back({info.actionSymbol, ExprRef{}});
    for (const auto& [name, symbol] : info.paramSymbols) {
      bindings.push_back({symbol, ExprRef{}});
    }
    return bindings;
  }

  // Normalization (priority sort + eclipse elimination) is part of the
  // precise control-plane representation; its cost is what Table 3 measures.
  auto normalized = table.normalizedEntries();

  // Precise encoding: per-entry conditions in precedence order.
  std::vector<ExprRef> conds;
  conds.reserve(normalized.size());
  for (const runtime::TableEntry* e : normalized) {
    conds.push_back(entryCondition(info, *e));
  }

  ExprRef hit = arena_.boolConst(false);
  for (size_t i = conds.size(); i-- > 0;) hit = arena_.bOr(conds[i], hit);
  bindings.push_back({info.hitSymbol, hit});

  // Winning action selector: first matching entry in precedence order.
  ExprRef action = arena_.bvConst(BitVec(kSelectorWidth, info.noopIndex()));
  for (size_t i = conds.size(); i-- > 0;) {
    action = arena_.ite(
        conds[i],
        arena_.bvConst(
            BitVec(kSelectorWidth, info.actionIndex(normalized[i]->actionName))),
        action);
  }
  bindings.push_back({info.actionSymbol, action});

  // Entry-role action parameters: for each "<action>.<param>" symbol, chain
  // the argument values of entries executing that action.
  for (const auto& [name, symbol] : info.paramSymbols) {
    size_t dot = name.find('.');
    const std::string actionName = name.substr(0, dot);
    const std::string paramName = name.substr(dot + 1);
    const p4::ActionDecl* action = info.control->findAction(actionName);
    size_t paramIdx = 0;
    for (size_t i = 0; i < action->params.size(); ++i) {
      if (action->params[i].name == paramName) paramIdx = i;
    }
    ExprRef value = arena_.bvConst(BitVec::zero(arena_.width(symbol)));
    for (size_t i = conds.size(); i-- > 0;) {
      if (normalized[i]->actionName != actionName) continue;
      value = arena_.ite(
          conds[i], arena_.bvConst(normalized[i]->actionArgs[paramIdx]),
          value);
    }
    bindings.push_back({symbol, value});
  }
  return bindings;
}

std::vector<Binding> ControlPlaneEncoder::encodeValueSet(
    const std::string& qualified,
    const runtime::ValueSetState& valueSet) const {
  std::vector<Binding> bindings;
  for (const auto& use : analysis_.valueSetUses) {
    if (use.qualified != qualified) continue;
    ExprRef cond = arena_.boolConst(false);
    for (const auto& [value, mask] : valueSet.members()) {
      ExprRef memberCond;
      if (mask.isAllOnes()) {
        memberCond = arena_.eq(use.selectExpr, arena_.bvConst(value));
      } else {
        memberCond =
            arena_.eq(arena_.bvAnd(use.selectExpr, arena_.bvConst(mask)),
                      arena_.bvConst(value.bitAnd(mask)));
      }
      cond = arena_.bOr(cond, memberCond);
    }
    bindings.push_back({use.symbol, cond});
  }
  return bindings;
}

}  // namespace flay::flay
