#include "flay/engine.h"

#include <algorithm>
#include <stdexcept>

#include "expr/analysis.h"

#include "expr/canonical.h"
#include "expr/substitute.h"
#include "obs/obs.h"

namespace flay::flay {

using expr::ExprRef;

namespace {

/// Global handles for the update-hot-path telemetry, resolved once. The
/// registry guarantees handle stability, so caching references here keeps
/// the per-update cost to atomic increments.
struct EngineObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& updates = reg.counter("flay.updates");
  obs::Counter& batches = reg.counter("flay.batches");
  obs::Counter& taintedPoints = reg.counter("flay.tainted_points");
  obs::Counter& recompileVerdicts = reg.counter("flay.recompile_verdicts");
  obs::Counter& exprChangeVerdicts = reg.counter("flay.expr_change_verdicts");
  obs::Counter& overapproximations = reg.counter("flay.overapproximations");
  obs::Counter& batchAborts = reg.counter("flay.batch_aborts");
  obs::Histogram& configApplyUs = reg.histogram("flay.config_apply_us");
  obs::Histogram& batchApplyUs = reg.histogram("flay.batch_apply_us");
  obs::Histogram& analyzeUs = reg.histogram("flay.analyze_us");
  obs::Histogram& closureUs = reg.histogram("flay.closure_us");
  obs::Histogram& encodeUs = reg.histogram("flay.encode_us");
  obs::Histogram& digestUs = reg.histogram("flay.digest_us");
  obs::Histogram& substituteUs = reg.histogram("flay.substitute_us");

  static EngineObs& get() {
    static EngineObs instance;
    return instance;
  }
};

uint64_t microsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

FlayService::FlayService(const p4::CheckedProgram& checked, FlayOptions options)
    : checked_(checked),
      options_(options),
      arena_(std::make_unique<expr::ExprArena>()) {
  SymbolicExecutor executor(checked_, *arena_, options_.analysis);
  analysis_ = executor.run();
  config_ = std::make_unique<runtime::DeviceConfig>(checked_);
  encoder_ = std::make_unique<ControlPlaneEncoder>(*arena_, analysis_,
                                                   options_.encoder);
  checkEngine_ = std::make_unique<CheckEngine>(
      *arena_, options_.sharedVerdictCache, options_.verdictScopePrefix);
  buildObjectDependencies();
  auto start = std::chrono::steady_clock::now();
  respecializeAll();
  preprocessTime_ = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
}

void FlayService::buildObjectDependencies() {
  // A table whose key expressions mention another object's placeholders
  // must be re-encoded whenever that object changes (chained tables: a key
  // on a metadata field written by an upstream table's action). Same for
  // value-set uses whose select expression depends on tables.
  //
  // Value sets come first in the re-encoding order: they live in the
  // parser, so a table's key expression can embed a value-set use symbol
  // but never the reverse. Encoding a table before the value set it
  // mentions is rebound bakes the stale (or, on a full rebind from empty
  // bindings, unresolved) symbol into the stored table binding — the one
  // substitution pass per annotation never revisits it.
  for (const auto& use : analysis_.valueSetUses) {
    if (std::find(objectOrder_.begin(), objectOrder_.end(), use.qualified) ==
        objectOrder_.end()) {
      objectOrder_.push_back(use.qualified);
    }
  }
  for (const auto& info : analysis_.tables) {
    objectOrder_.push_back(info.qualified);
    std::set<std::string> owners;
    for (expr::ExprRef k : info.keyExprs) {
      for (uint32_t s : expr::collectSymbols(
               *arena_, k, expr::SymbolClass::kControlPlane)) {
        auto it = analysis_.symbolOwner.find(s);
        if (it != analysis_.symbolOwner.end()) owners.insert(it->second);
      }
    }
    for (const auto& o : owners) {
      if (o != info.qualified) objectDependents_[o].insert(info.qualified);
    }
  }
  for (const auto& use : analysis_.valueSetUses) {
    if (std::find(objectOrder_.begin(), objectOrder_.end(), use.qualified) ==
        objectOrder_.end()) {
      objectOrder_.push_back(use.qualified);
    }
    for (uint32_t s : expr::collectSymbols(
             *arena_, use.selectExpr, expr::SymbolClass::kControlPlane)) {
      auto it = analysis_.symbolOwner.find(s);
      if (it != analysis_.symbolOwner.end() && it->second != use.qualified) {
        objectDependents_[it->second].insert(use.qualified);
      }
    }
  }
  for (size_t i = 0; i < objectOrder_.size(); ++i) {
    objectOrderIndex_.emplace(objectOrder_[i], i);
  }
}

const std::vector<std::string>& FlayService::closureOf(
    const std::string& object) {
  auto cached = closureCache_.find(object);
  if (cached != closureCache_.end()) return cached->second;
  // Transitive closure over the dependents relation. The graph is built
  // once in buildObjectDependencies() and never mutated, so the result is
  // memoized: a burst re-touching the same table pays one map lookup
  // instead of a graph walk per batch.
  std::set<std::string> closure{object};
  std::vector<std::string> frontier{object};
  while (!frontier.empty()) {
    std::string o = std::move(frontier.back());
    frontier.pop_back();
    auto it = objectDependents_.find(o);
    if (it == objectDependents_.end()) continue;
    for (const auto& d : it->second) {
      if (closure.insert(d).second) frontier.push_back(d);
    }
  }
  return closureCache_
      .emplace(object,
               std::vector<std::string>(closure.begin(), closure.end()))
      .first->second;
}

std::vector<std::string> FlayService::dependencyClosure(
    const std::set<std::string>& objects) {
  std::set<std::string> closure;
  for (const auto& o : objects) {
    const std::vector<std::string>& c = closureOf(o);
    closure.insert(c.begin(), c.end());
  }
  // Emit in program order so upstream bindings are resolved before any
  // downstream encoding reads them; objects outside the known order (e.g.
  // action profiles) go last, in name order.
  std::vector<std::string> ordered(closure.begin(), closure.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [this](const std::string& a, const std::string& b) {
                     auto ia = objectOrderIndex_.find(a);
                     auto ib = objectOrderIndex_.find(b);
                     size_t ka = ia == objectOrderIndex_.end()
                                     ? objectOrder_.size()
                                     : ia->second;
                     size_t kb = ib == objectOrderIndex_.end()
                                     ? objectOrder_.size()
                                     : ib->second;
                     if (ka != kb) return ka < kb;
                     return a < b;
                   });
  return ordered;
}

void FlayService::rebindObject(const std::string& object,
                               bool* overapproximated) {
  std::vector<Binding> bindings;
  if (config_->hasTable(object)) {
    bindings = encoder_->encodeTable(analysis_.table(object),
                                     config_->table(object), *config_,
                                     overapproximated);
  } else if (config_->hasValueSet(object)) {
    bindings = encoder_->encodeValueSet(object, config_->valueSet(object));
  } else if (config_->hasActionProfile(object)) {
    // Profile changes feed back through every table that uses the profile.
    for (const auto& info : analysis_.tables) {
      if (info.decl->actionProfile.empty()) continue;
      if (info.control->name + "." + info.decl->actionProfile != object) {
        continue;
      }
      bool tableOver = false;
      auto tableBindings = encoder_->encodeTable(
          info, config_->table(info.qualified), *config_, &tableOver);
      if (overapproximated != nullptr) *overapproximated |= tableOver;
      bindings.insert(bindings.end(), tableBindings.begin(),
                      tableBindings.end());
    }
  }
  // Resolve nested placeholders: a table's match condition is built over
  // its key expressions, which may mention upstream objects' placeholders
  // (chained tables). Substituting the current assignment here keeps every
  // stored binding value fully resolved, so one substitution pass per
  // annotation suffices later.
  expr::Substitution resolve(*arena_);
  bool needResolve = false;
  for (const auto& b : bindings) {
    if (!b.value.valid()) continue;
    for (uint32_t s : expr::collectSymbols(*arena_, b.value,
                                           expr::SymbolClass::kControlPlane)) {
      auto it = bindings_.find(s);
      if (it == bindings_.end()) continue;
      const expr::Symbol& sym = arena_->symbolInfo(s);
      expr::ExprRef var = sym.width == 0
                              ? arena_->boolVar(sym.name, sym.cls)
                              : arena_->var(sym.name, sym.width, sym.cls);
      resolve.bind(var, it->second);
      needResolve = true;
    }
  }
  for (const auto& b : bindings) {
    uint32_t symbolId = arena_->node(b.symbol).a;
    if (b.value.valid()) {
      bindings_[symbolId] = needResolve ? resolve.apply(b.value) : b.value;
    } else {
      bindings_.erase(symbolId);  // over-approximation: leave free
    }
  }
}

std::string FlayService::pointDigest(expr::ExprRef specialized) const {
  if (arena_->isTrue(specialized)) return "T";
  if (arena_->isFalse(specialized)) return "F";
  if (arena_->isConst(specialized)) {
    return arena_->constValue(specialized).toHexString();
  }
  return "";  // non-constant: the general implementation is already needed
}

std::string FlayService::tableDigest(const std::string& qualified) const {
  const runtime::TableState& table = config_->table(qualified);
  std::string d = table.empty() ? "empty;" : "live;";
  // Above the over-approximation threshold, skip the O(n^2) eclipse
  // normalization and digest the raw entries instead (a sound
  // over-approximation of reachability, consistent with the encoder).
  if (table.size() > options_.encoder.overapproxThreshold) {
    std::set<std::string> actions;
    for (const auto& e : table.entries()) actions.insert(e.actionName);
    actions.insert(table.defaultActionName());
    for (const auto& a : actions) d += a + ",";
    for (size_t k = 0; k < table.decl().keys.size(); ++k) {
      if (table.decl().keys[k].matchKind == p4::MatchKind::kExact) continue;
      bool allExact = true;
      for (const auto& e : table.entries()) {
        allExact &= e.matches[k].isExactValued();
      }
      d += allExact ? ";exactable" : ";masked";
    }
    return d;
  }
  auto actions = table.reachableActions();
  std::sort(actions.begin(), actions.end());
  for (const auto& a : actions) d += a + ",";
  auto normalized = table.normalizedEntries();
  for (size_t k = 0; k < table.decl().keys.size(); ++k) {
    if (table.decl().keys[k].matchKind == p4::MatchKind::kExact) continue;
    // Vacuously exactable when empty — no entry forces a masked encoding —
    // matching the over-approximation branch above, so the digest never
    // takes a spurious "masked" detour on the empty -> first-entry
    // transition of the Fig. 3 lifecycle.
    bool allExact = true;
    for (const runtime::TableEntry* e : normalized) {
      allExact &= e->matches[k].isExactValued();
    }
    d += allExact ? ";exactable" : ";masked";
  }
  return d;
}

UpdateVerdict FlayService::analyzeObjects(const std::set<std::string>& objects) {
  EngineObs& eobs = EngineObs::get();
  obs::ScopedTimer analyzeTimer(eobs.analyzeUs, "flay.analyze");
  auto start = std::chrono::steady_clock::now();
  UpdateVerdict verdict;
  uint64_t tableDigestUs = 0;
  uint64_t pointDigestUs = 0;

  // Everything interned before this round — program structure and surviving
  // specializations alike — is shared across the probes that follow, so the
  // warm solvers may encode it into their permanent clause group. Nodes the
  // rebinding below interns fresh belong to this round's components and go
  // into retirable scope groups.
  checkEngine_->setIncrementalWatermark(
      static_cast<uint32_t>(arena_->numNodes()));

  // Re-encode the updated objects plus every object whose encoding depends
  // on them, upstream first.
  std::vector<std::string> closure;
  {
    obs::ScopedTimer t(eobs.closureUs, "flay.closure");
    closure = dependencyClosure(objects);
  }
  uint64_t encodeUs = 0;
  for (const auto& object : closure) {
    auto encodeStart = std::chrono::steady_clock::now();
    bool over = false;
    rebindObject(object, &over);
    verdict.overapproximated |= over;
    encodeUs += microsSince(encodeStart);
    // Structural change check (Fig. 3 C->D: match-kind shape, action sets).
    if (config_->hasTable(object)) {
      auto digestStart = std::chrono::steady_clock::now();
      std::string digest = tableDigest(object);
      auto [it, inserted] = tableDigests_.try_emplace(object, digest);
      if (!inserted && it->second != digest) {
        verdict.needsRecompilation = true;
        verdict.changedComponents.insert(object);
        it->second = std::move(digest);
      }
      tableDigestUs += microsSince(digestStart);
    }
  }
  eobs.encodeUs.record(encodeUs);

  auto substituteStart = std::chrono::steady_clock::now();
  // One substitution over the full current assignment; the shared memo makes
  // repeated subtrees across points cheap.
  expr::Substitution subst(*arena_);
  for (const auto& [symbolId, value] : bindings_) {
    const expr::Symbol& s = arena_->symbolInfo(symbolId);
    ExprRef var = s.width == 0
                      ? arena_->boolVar(s.name, s.cls)
                      : arena_->var(s.name, s.width, s.cls);
    subst.bind(var, value);
  }

  // Affected points: union of the taint sets of the touched objects — or,
  // with the ablation knob off, every point in the program.
  std::set<uint32_t> affected;
  if (options_.useTaintMap) {
    for (const auto& object : closure) {
      for (uint32_t id : analysis_.annotations.affectedPoints(object)) {
        affected.insert(id);
      }
    }
  } else {
    for (const auto& p : analysis_.annotations.points()) {
      affected.insert(p.id);
    }
  }
  eobs.taintedPoints.add(affected.size());
  if (pointDigests_.size() < analysis_.annotations.points().size()) {
    pointDigests_.resize(analysis_.annotations.points().size());
  }
  for (uint32_t id : affected) {
    ProgramPoint& p = analysis_.annotations.point(id);
    ExprRef specialized = subst.apply(p.expr);
    if (specialized == p.specialized) continue;  // O(1): hash-consed refs
    p.specialized = specialized;
    verdict.changedPoints.push_back(id);
    // The recompile decision: did the point's *verdict* (constant vs
    // general) flip, not merely its expression?
    auto digestStart = std::chrono::steady_clock::now();
    std::string digest = pointDigest(specialized);
    if (digest != pointDigests_[id]) {
      pointDigests_[id] = std::move(digest);
      verdict.needsRecompilation = true;
      verdict.changedComponents.insert(p.component);
    }
    pointDigestUs += microsSince(digestStart);
  }
  uint64_t substituteUs = microsSince(substituteStart);
  eobs.substituteUs.record(substituteUs > pointDigestUs
                               ? substituteUs - pointDigestUs
                               : 0);
  // Memory hygiene for the verdict cache: points of these components now
  // carry different specialized expressions, so the verdicts recorded under
  // them describe formulas no live point references anymore. (Correctness
  // never depends on this — a verdict is a pure fact about its rendering.)
  {
    std::set<std::string> respecialized;
    for (uint32_t id : verdict.changedPoints) {
      respecialized.insert(analysis_.annotations.point(id).component);
    }
    for (const auto& component : respecialized) {
      checkEngine_->invalidateScope(component);
    }
  }
  eobs.digestUs.record(tableDigestUs + pointDigestUs);
  verdict.expressionsChanged = !verdict.changedPoints.empty();
  if (verdict.expressionsChanged) eobs.exprChangeVerdicts.add(1);
  if (verdict.needsRecompilation) eobs.recompileVerdicts.add(1);
  if (verdict.overapproximated) eobs.overapproximations.add(1);
  verdict.analysisTime = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  notifyAnalyses(verdict);
  return verdict;
}

UpdateVerdict FlayService::applyUpdate(const runtime::Update& update) {
  EngineObs& eobs = EngineObs::get();
  std::string object;
  {
    obs::ScopedTimer t(eobs.configApplyUs, "flay.config_apply");
    object = config_->apply(update);
  }
  eobs.updates.add(1);
  return analyzeObjects({object});
}

UpdateVerdict FlayService::applyBatch(
    const std::vector<runtime::Update>& updates) {
  EngineObs& eobs = EngineObs::get();
  eobs.batches.add(1);
  std::set<std::string> objects;
  // config_apply_us is a *per-apply* latency histogram: one sample per
  // update, in the abort path too. The whole-loop time goes to the separate
  // batch_apply_us histogram, so batch size never skews per-apply quantiles.
  auto batchStart = std::chrono::steady_clock::now();
  for (const auto& u : updates) {
    auto applyStart = std::chrono::steady_clock::now();
    try {
      objects.insert(config_->apply(u));
    } catch (...) {
      eobs.configApplyUs.record(microsSince(applyStart));
      eobs.batchApplyUs.record(microsSince(batchStart));
      eobs.batchAborts.add(1);
      // Updates before the malformed one are already installed in the
      // config; re-analyze that prefix before surfacing the error so the
      // annotations never get out of sync with the installed state.
      if (!objects.empty()) analyzeObjects(objects);
      throw;
    }
    eobs.configApplyUs.record(microsSince(applyStart));
    eobs.updates.add(1);
  }
  eobs.batchApplyUs.record(microsSince(batchStart));
  return analyzeObjects(objects);
}

ServiceSnapshot FlayService::snapshot() const {
  ServiceSnapshot snap{*config_, bindings_, pointDigests_, tableDigests_, {}};
  const auto& points = analysis_.annotations.points();
  snap.specialized.reserve(points.size());
  for (const auto& p : points) snap.specialized.push_back(p.specialized);
  return snap;
}

void FlayService::restore(const ServiceSnapshot& snap) {
  *config_ = snap.config;
  bindings_ = snap.bindings;
  pointDigests_ = snap.pointDigests;
  tableDigests_ = snap.tableDigests;
  auto& points = analysis_.annotations.points();
  for (size_t i = 0; i < points.size() && i < snap.specialized.size(); ++i) {
    points[i].specialized = snap.specialized[i];
  }
  // The rollback changed the control-plane assignment without an analysis
  // round; attached analyses re-derive their state from the new bindings.
  notifyAnalyses(UpdateVerdict{});
}

void FlayService::adoptConfig(runtime::DeviceConfig config) {
  if (&config.checkedProgram() != &checked_) {
    throw std::invalid_argument(
        "adoptConfig: config was built against a different program");
  }
  *config_ = std::move(config);
  bindings_.clear();
  respecializeAll();
}

std::string FlayService::stateDigest() const {
  expr::Fnv fnv;
  for (const auto& [name, table] : config_->tables()) {
    fnv.mix(name);
    for (const runtime::TableEntry& e : table.entries()) {
      fnv.mix(std::to_string(e.id));
      fnv.mix(e.toString());
    }
    fnv.mix(table.defaultActionName());
    for (const auto& a : table.defaultActionArgs()) fnv.mix(a.toHexString());
    fnv.mix(std::to_string(table.nextId()));
  }
  for (const auto& [name, vs] : config_->valueSets()) {
    fnv.mix(name);
    for (const auto& [value, mask] : vs.members()) {
      fnv.mix(value.toHexString());
      fnv.mix(mask.toHexString());
    }
  }
  for (const auto& [name, prof] : config_->actionProfiles()) {
    fnv.mix(name);
    for (const auto& m : prof.members()) {
      fnv.mix(std::to_string(m.memberId));
      fnv.mix(m.actionName);
      for (const auto& a : m.args) fnv.mix(a.toHexString());
    }
  }
  // Specialized expressions are rendered canonically (commutative chains
  // flattened and content-sorted): arena ids and the arena's id-ordered
  // operand placement both depend on construction history, which neither a
  // crash recovery nor an alternate update path (bulk load vs sequential
  // replay) shares with the run it is compared against.
  expr::CanonicalRenderer renderer(*arena_);
  for (const auto& p : analysis_.annotations.points()) {
    fnv.mix(renderer.render(p.specialized));
  }
  return fnv.hex();
}

expr::ExprRef FlayService::resolveSymbol(expr::ExprRef symbolExpr) const {
  auto it = bindings_.find(arena_->node(symbolExpr).a);
  return it == bindings_.end() ? symbolExpr : it->second;
}

void FlayService::respecializeAll() {
  std::set<std::string> objects;
  for (const auto& [name, t] : config_->tables()) objects.insert(name);
  for (const auto& [name, vs] : config_->valueSets()) objects.insert(name);
  // Re-specialize every point, including ones without control-plane taint.
  analyzeObjects(objects);
  expr::Substitution subst(*arena_);
  for (const auto& [symbolId, value] : bindings_) {
    const expr::Symbol& s = arena_->symbolInfo(symbolId);
    ExprRef var = s.width == 0 ? arena_->boolVar(s.name, s.cls)
                               : arena_->var(s.name, s.width, s.cls);
    subst.bind(var, value);
  }
  for (auto& p : analysis_.annotations.points()) {
    p.specialized = subst.apply(p.expr);
  }
  // Baseline digests for subsequent recompile-level change detection.
  pointDigests_.resize(analysis_.annotations.points().size());
  for (const auto& p : analysis_.annotations.points()) {
    pointDigests_[p.id] = pointDigest(p.specialized);
  }
  tableDigests_.clear();
  for (const auto& [name, table] : config_->tables()) {
    tableDigests_[name] = tableDigest(name);
  }
}

}  // namespace flay::flay
