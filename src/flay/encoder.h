#ifndef FLAY_FLAY_ENCODER_H
#define FLAY_FLAY_ENCODER_H

#include <vector>

#include "flay/symbolic_executor.h"
#include "runtime/device_config.h"

namespace flay::flay {

/// A control-plane assignment: `symbol := value`. A binding whose value is
/// the null ExprRef means "leave the placeholder free" (over-approximation).
struct Binding {
  expr::ExprRef symbol;
  expr::ExprRef value;
};

struct EncoderOptions {
  /// Entry count beyond which a table's match logic is over-approximated
  /// (§4.1: "Once a certain threshold of entries (e.g., 100) has been
  /// reached, we overapproximate").
  size_t overapproxThreshold = 100;
};

/// Translates runtime state (installed entries, value-set members, default
/// actions) into control-plane assignments over the placeholders the
/// symbolic executor introduced — the "control-plane assignments" box of
/// Fig. 4. Implements both the precise and the over-approximate encodings.
class ControlPlaneEncoder {
 public:
  ControlPlaneEncoder(expr::ExprArena& arena, const AnalysisResult& analysis,
                      EncoderOptions options = {})
      : arena_(arena), analysis_(analysis), options_(options) {}

  /// Encodes one table's current state. Sets *overapproximated when the
  /// normalized entry count exceeded the threshold.
  std::vector<Binding> encodeTable(const TableInfo& info,
                                   const runtime::TableState& table,
                                   const runtime::DeviceConfig& config,
                                   bool* overapproximated = nullptr) const;

  /// Encodes one value set; produces a binding per use site.
  std::vector<Binding> encodeValueSet(
      const std::string& qualified,
      const runtime::ValueSetState& valueSet) const;

 private:
  expr::ExprRef entryCondition(const TableInfo& info,
                               const runtime::TableEntry& entry) const;

  expr::ExprArena& arena_;
  const AnalysisResult& analysis_;
  EncoderOptions options_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_ENCODER_H
