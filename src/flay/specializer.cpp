#include "flay/specializer.h"

#include <unordered_map>

#include "expr/analysis.h"
#include "obs/obs.h"

namespace flay::flay {

using expr::ExprRef;
using p4::Expr;
using p4::ExprOp;
using p4::Stmt;
using p4::StmtOp;

namespace {

/// Synthesizes a checked literal expression.
p4::ExprPtr makeLiteral(const BitVec& value) {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kIntLit;
  e->literalText = value.toHexString();
  e->literalWidth = value.width();
  e->width = value.width();
  e->value = value;
  return e;
}

p4::ExprPtr makeBoolLiteral(bool value) {
  auto e = std::make_unique<Expr>();
  e->op = ExprOp::kBoolLit;
  e->boolValue = value;
  e->isBool = true;
  return e;
}

/// Replaces action-parameter references with literal argument values,
/// in place.
void substituteParams(p4::ExprPtr& e,
                      const std::unordered_map<std::string, BitVec>& args) {
  if (e == nullptr) return;
  if (e->op == ExprOp::kPath && e->pathKind == p4::PathKind::kActionParam) {
    auto it = args.find(e->canonical);
    if (it != args.end()) {
      e = makeLiteral(it->second);
      return;
    }
  }
  substituteParams(e->a, args);
  substituteParams(e->b, args);
  substituteParams(e->c, args);
}

void substituteParamsInStmts(
    std::vector<p4::StmtPtr>& stmts,
    const std::unordered_map<std::string, BitVec>& args) {
  for (auto& s : stmts) {
    substituteParams(s->lhs, args);
    substituteParams(s->rhs, args);
    substituteParams(s->index, args);
    substituteParams(s->cond, args);
    for (auto& a : s->args) substituteParams(a, args);
    substituteParamsInStmts(s->thenBody, args);
    substituteParamsInStmts(s->elseBody, args);
  }
}

}  // namespace

class Specializer::Impl {
 public:
  Impl(FlayService& service, const SpecializerOptions& options)
      : service_(service), options_(options), engine_(service.checkEngine()) {
    CheckEngineOptions eopts;
    eopts.jobs = options_.jobs;
    eopts.useVerdictCache = options_.useVerdictCache;
    eopts.solverDagLimit = options_.solverDagLimit;
    eopts.solverConflictBudget = options_.solverConflictBudget;
    eopts.incrementalSat = options_.incrementalSat;
    engine_.configure(eopts);
  }

  SpecializationResult specialize() {
    const p4::Program& orig = service_.checkedProgram().program;
    SpecializationResult result;
    result.program = p4::cloneProgram(orig);

    for (const auto& p : service_.analysis().annotations.points()) {
      if (p.astNode != nullptr) pointByNode_[p.astNode] = p.id;
    }
    prefetchChecks();

    for (size_t c = 0; c < orig.controls.size(); ++c) {
      currentControl_ = &orig.controls[c];
      currentClone_ = &result.program.controls[c];
      currentClone_->applyBody = rewriteStmts(
          orig.controls[c].applyBody, result.program.controls[c].applyBody);
      rewriteTables(*currentClone_);
    }
    for (size_t p = 0; p < orig.parsers.size(); ++p) {
      rewriteParser(orig.parsers[p], result.program.parsers[p]);
    }
    computePrunableHeaders();

    result.stats = stats_;
    return result;
  }

 private:
  using Tri = TriVerdict;

  /// Queues every semantics check the rewrite pass will ask — the
  /// specialized conditions of if/assign/table-hit/select-case points — so
  /// the engine can run the underlying probes concurrently and the rewrite
  /// pass is served from staged results. The filters mirror the ask sites
  /// exactly: only points the rewriter can act on are worth probing.
  void prefetchChecks() {
    std::vector<CheckQuery> queries;
    for (const auto& p : service_.analysis().annotations.points()) {
      switch (p.kind) {
        case PointKind::kIfCondition:
        case PointKind::kSelectCase:
          if (p.astNode == nullptr) continue;  // not reachable via rewrite
          break;
        case PointKind::kAssignedValue: {
          if (p.astNode == nullptr) continue;
          const Stmt* s = static_cast<const Stmt*>(p.astNode);
          if (s->lhs != nullptr && s->lhs->op == ExprOp::kSlice) continue;
          break;
        }
        case PointKind::kTableHit:
          break;  // every apply statement asks its table's hit point
        default:
          continue;  // action index / accept / final: arena-only checks
      }
      queries.push_back({p.specialized, p.component});
    }
    engine_.prefetch(queries);
  }

  const std::string& scopeOf(uint32_t pointId) const {
    return service_.analysis().annotations.point(pointId).component;
  }

  Tri boolVerdict(ExprRef specialized, const std::string& scope) {
    CheckOutcome outcome;
    Tri v = engine_.boolVerdict(specialized, scope, &outcome);
    noteOutcome(outcome);
    return v;
  }

  std::optional<BitVec> constVerdict(ExprRef specialized,
                                     const std::string& scope) {
    CheckOutcome outcome;
    auto v = engine_.constVerdict(specialized, scope, &outcome);
    noteOutcome(outcome);
    return v;
  }

  /// Folds a check's outcome into the run's stats, preserving what the
  /// pre-engine specializer counted: solverQueries for every check that went
  /// past folding (even when the cache answered), solverTimeouts for expired
  /// conflict budgets (the degradation-aware path the controller tracks).
  void noteOutcome(const CheckOutcome& outcome) {
    if (outcome.solverQueried) ++stats_.solverQueries;
    if (outcome.timedOut) {
      ++stats_.solverTimeouts;
      obs::Registry::global().counter("controller.solver_timeouts").add(1);
    }
  }

  /// Rewrites a statement list; orig and clone run in lockstep.
  std::vector<p4::StmtPtr> rewriteStmts(const std::vector<p4::StmtPtr>& orig,
                                        std::vector<p4::StmtPtr>& clone) {
    std::vector<p4::StmtPtr> out;
    for (size_t i = 0; i < orig.size(); ++i) {
      rewriteStmt(*orig[i], std::move(clone[i]), out);
    }
    return out;
  }

  void rewriteStmt(const Stmt& orig, p4::StmtPtr clone,
                   std::vector<p4::StmtPtr>& out) {
    switch (orig.op) {
      case StmtOp::kIf: {
        auto it = pointByNode_.find(&orig);
        Tri verdict = it == pointByNode_.end()
                          ? Tri::kUnknown
                          : boolVerdict(service_.specialized(it->second),
                                        scopeOf(it->second));
        if (verdict == Tri::kTrue) {
          ++stats_.eliminatedBranches;
          auto rewritten = rewriteStmts(orig.thenBody, clone->thenBody);
          for (auto& s : rewritten) out.push_back(std::move(s));
          return;
        }
        if (verdict == Tri::kFalse) {
          ++stats_.eliminatedBranches;
          auto rewritten = rewriteStmts(orig.elseBody, clone->elseBody);
          for (auto& s : rewritten) out.push_back(std::move(s));
          return;
        }
        clone->thenBody = rewriteStmts(orig.thenBody, clone->thenBody);
        clone->elseBody = rewriteStmts(orig.elseBody, clone->elseBody);
        out.push_back(std::move(clone));
        return;
      }
      case StmtOp::kAssign: {
        auto it = pointByNode_.find(&orig);
        if (it != pointByNode_.end() && orig.lhs->op != ExprOp::kSlice) {
          ExprRef specialized = service_.specialized(it->second);
          expr::ExprArena& arena = service_.arena();
          if (arena.isBool(specialized)) {
            Tri v = boolVerdict(specialized, scopeOf(it->second));
            if (v != Tri::kUnknown && orig.rhs->op != ExprOp::kBoolLit) {
              ++stats_.propagatedConstants;
              clone->rhs = makeBoolLiteral(v == Tri::kTrue);
            }
          } else {
            auto v = constVerdict(specialized, scopeOf(it->second));
            if (v.has_value() && orig.rhs->op != ExprOp::kIntLit) {
              ++stats_.propagatedConstants;
              clone->rhs = makeLiteral(*v);
            }
          }
        }
        out.push_back(std::move(clone));
        return;
      }
      case StmtOp::kApply: {
        rewriteApply(orig, std::move(clone), out);
        return;
      }
      default:
        out.push_back(std::move(clone));
        return;
    }
  }

  void rewriteApply(const Stmt& orig, p4::StmtPtr clone,
                    std::vector<p4::StmtPtr>& out) {
    std::string qualified = currentControl_->name + "." + orig.target;
    const TableInfo& info = service_.analysis().table(qualified);
    const runtime::TableState& table = service_.config().table(qualified);
    expr::ExprArena& arena = service_.arena();

    Tri hit = boolVerdict(service_.specialized(info.hitPoint),
                          scopeOf(info.hitPoint));
    if (hit == Tri::kFalse) {
      // The table can never hit: inline the default action (§3, Fig. 3 A).
      ++stats_.removedTables;
      removedTables_.insert(qualified);
      inlineAction(table.defaultActionName(), table.defaultActionArgs(), out);
      return;
    }
    if (hit == Tri::kTrue) {
      ExprRef actionSpec = service_.specialized(info.actionPoint);
      if (arena.isConst(actionSpec)) {
        uint32_t idx =
            static_cast<uint32_t>(arena.constValue(actionSpec).toUint64());
        // All matching entries execute the same action. Inline it if its
        // arguments also specialize to constants (Fig. 3 B).
        if (idx == info.noopIndex()) {
          ++stats_.inlinedTables;
          removedTables_.insert(qualified);
          return;  // noop: the apply disappears entirely
        }
        const std::string& actionName = info.decl->actionNames[idx];
        std::vector<BitVec> args;
        if (constantActionArgs(info, actionName, args)) {
          ++stats_.inlinedTables;
          removedTables_.insert(qualified);
          inlineAction(actionName, args, out);
          return;
        }
      }
    }
    out.push_back(std::move(clone));
  }

  /// True if every parameter of `actionName` specializes to a constant;
  /// fills `args` with the values.
  bool constantActionArgs(const TableInfo& info, const std::string& actionName,
                          std::vector<BitVec>& args) {
    const p4::ActionDecl* action = info.control->findAction(actionName);
    if (action == nullptr) return true;  // parameterless builtin
    expr::ExprArena& arena = service_.arena();
    // The current binding of each parameter placeholder is the encoder's
    // ITE chain over entry conditions; with a single always-matching entry
    // (Fig. 3 B) it folds to a constant at construction time.
    for (const auto& p : action->params) {
      auto it = info.paramSymbols.find(actionName + "." + p.name);
      if (it == info.paramSymbols.end()) return false;
      ExprRef specialized = service_.resolveSymbol(it->second);
      if (!arena.isConst(specialized)) return false;
      args.push_back(arena.constValue(specialized));
    }
    return true;
  }

  /// Splices a specialized copy of an action body with literal arguments.
  void inlineAction(const std::string& actionName,
                    const std::vector<BitVec>& args,
                    std::vector<p4::StmtPtr>& out) {
    if (actionName == "noop" || actionName == "NoAction") return;
    const p4::ActionDecl* action = currentControl_->findAction(actionName);
    if (action == nullptr) return;
    std::unordered_map<std::string, BitVec> argMap;
    for (size_t i = 0; i < action->params.size(); ++i) {
      argMap.emplace(action->params[i].name, args[i]);
    }
    auto body = p4::cloneStmts(action->body);
    substituteParamsInStmts(body, argMap);
    for (auto& s : body) out.push_back(std::move(s));
  }

  /// Table-declaration level specializations: drop removed tables, remove
  /// unreachable actions, tighten match kinds.
  void rewriteTables(p4::ControlDecl& control) {
    std::vector<p4::TableDecl> kept;
    for (auto& table : control.tables) {
      std::string qualified = control.name + "." + table.name;
      if (removedTables_.count(qualified) != 0) continue;
      const runtime::TableState& state = service_.config().table(qualified);

      // Unused-action removal (Fig. 3 C/D: the unused drop action is
      // removed from the table, freeing computation units).
      auto reachable = state.reachableActions();
      std::vector<std::string> keptActions;
      for (const auto& name : table.actionNames) {
        bool used = false;
        for (const auto& r : reachable) used |= r == name;
        if (used) {
          keptActions.push_back(name);
        } else {
          ++stats_.removedActions;
        }
      }
      table.actionNames = std::move(keptActions);

      // The declared default action must track the *runtime* default: a
      // set-default update may have re-pointed it, and the pruning above
      // keeps only runtime-reachable actions, so a stale declared default
      // would not re-check. (Found by the differential oracle: middleblock
      // seed 5 re-points ipv4_route's default off drop_pkt, drop_pkt gets
      // pruned, and the specialized program failed to type-check.)
      table.defaultAction.name = state.defaultActionName();
      table.defaultAction.args.clear();
      for (const BitVec& arg : state.defaultActionArgs()) {
        table.defaultAction.args.push_back(makeLiteral(arg));
      }

      // Match-kind tightening (Fig. 3 B: a ternary key whose entries all
      // carry full masks is effectively exact; frees TCAM).
      auto normalized = state.normalizedEntries();
      if (!normalized.empty()) {
        for (size_t k = 0; k < table.keys.size(); ++k) {
          if (table.keys[k].matchKind == p4::MatchKind::kExact) continue;
          bool allExact = true;
          for (const runtime::TableEntry* e : normalized) {
            allExact &= e->matches[k].isExactValued();
          }
          if (allExact) {
            table.keys[k].matchKind = p4::MatchKind::kExact;
            ++stats_.convertedKeys;
          }
        }
      }
      kept.push_back(std::move(table));
    }
    control.tables = std::move(kept);
  }

  void rewriteParser(const p4::ParserDecl& orig, p4::ParserDecl& clone) {
    for (size_t s = 0; s < orig.states.size(); ++s) {
      const p4::ParserStateDecl& origState = orig.states[s];
      p4::ParserStateDecl& cloneState = clone.states[s];
      if (origState.body.empty()) continue;
      const Stmt& last = *origState.body.back();
      if (last.op != StmtOp::kTransition ||
          last.transition.selectExpr == nullptr) {
        continue;
      }
      Stmt& cloneLast = *cloneState.body.back();
      std::vector<p4::SelectCase> keptCases;
      for (size_t i = 0; i < last.transition.cases.size(); ++i) {
        const p4::SelectCase& c = last.transition.cases[i];
        auto it = pointByNode_.find(&c);
        if (it != pointByNode_.end()) {
          Tri v = boolVerdict(service_.specialized(it->second),
                              scopeOf(it->second));
          if (v == Tri::kFalse) {
            ++stats_.removedSelectCases;
            continue;  // unreachable case (e.g. empty value set)
          }
        }
        keptCases.push_back(std::move(cloneLast.transition.cases[i]));
      }
      cloneLast.transition.cases = std::move(keptCases);
    }
  }

  /// Headers no control reads: parser-tail pruning candidates (§3).
  void computePrunableHeaders() {
    expr::ExprArena& arena = service_.arena();
    std::set<uint32_t> usedSymbols;
    for (const auto& p : service_.analysis().annotations.points()) {
      if (p.kind == PointKind::kFinalValue ||
          p.kind == PointKind::kSelectCase ||
          p.kind == PointKind::kParserAccept) {
        continue;  // parser/pipeline bookkeeping, not control reads
      }
      for (uint32_t s : expr::collectSymbols(arena, p.expr,
                                             expr::SymbolClass::kDataPlane)) {
        usedSymbols.insert(s);
      }
    }
    // Table keys and value-set selects are reads too — they live in the
    // analysis structures rather than in annotations.
    for (const auto& t : service_.analysis().tables) {
      for (expr::ExprRef k : t.keyExprs) {
        for (uint32_t s : expr::collectSymbols(
                 arena, k, expr::SymbolClass::kDataPlane)) {
          usedSymbols.insert(s);
        }
      }
    }
    for (const auto& use : service_.analysis().valueSetUses) {
      for (uint32_t s : expr::collectSymbols(
               arena, use.selectExpr, expr::SymbolClass::kDataPlane)) {
        usedSymbols.insert(s);
      }
    }
    // Egress decision also counts as a read.
    auto final = service_.analysis().finalState.find("sm.egress_spec");
    if (final != service_.analysis().finalState.end()) {
      for (uint32_t s : expr::collectSymbols(
               arena, final->second, expr::SymbolClass::kDataPlane)) {
        usedSymbols.insert(s);
      }
    }
    for (const auto& h : service_.checkedProgram().env.headers()) {
      bool used = false;
      for (const auto& f : h.fieldCanonicals) {
        // Data-plane symbols are named by canonical field name.
        for (uint32_t s : usedSymbols) {
          if (arena.symbolInfo(s).name == f) used = true;
        }
      }
      if (!used) stats_.prunableHeaders.push_back(h.canonical);
    }
    // Dead headers: validity constant-false at pipeline end under the
    // current config (the final-value annotations carry the specialized
    // validity expressions).
    for (const auto& p : service_.analysis().annotations.points()) {
      if (p.kind != PointKind::kFinalValue) continue;
      constexpr const char* kPrefix = "final:";
      if (p.label.rfind(kPrefix, 0) != 0) continue;
      std::string loc = p.label.substr(6);
      if (loc.size() < 7 || loc.substr(loc.size() - 7) != ".$valid") continue;
      if (arena.isFalse(p.specialized)) {
        stats_.deadHeaders.push_back(loc.substr(0, loc.size() - 7));
      }
    }
  }

  FlayService& service_;
  SpecializerOptions options_;
  CheckEngine& engine_;
  SpecializationStats stats_;
  std::unordered_map<const void*, uint32_t> pointByNode_;
  std::set<std::string> removedTables_;
  const p4::ControlDecl* currentControl_ = nullptr;
  p4::ControlDecl* currentClone_ = nullptr;
};

Specializer::Specializer(FlayService& service, SpecializerOptions options)
    : service_(service), options_(options) {}

SpecializationResult Specializer::specialize() {
  return Impl(service_, options_).specialize();
}

p4::CheckedProgram recheck(p4::Program program) {
  DiagnosticEngine diag;
  p4::CheckedProgram checked;
  checked.program = std::move(program);
  checked.env = p4::typeCheck(checked.program, diag);
  diag.throwIfErrors();
  return checked;
}

runtime::DeviceConfig migrateConfig(const p4::CheckedProgram& specialized,
                                    const runtime::DeviceConfig& original,
                                    const MigrationTestHooks* hooks) {
  runtime::DeviceConfig config(specialized);
  for (const auto& [name, newTable] : config.tables()) {
    if (!original.hasTable(name)) continue;
    const runtime::TableState& oldTable = original.table(name);
    runtime::TableState& target = config.table(name);
    // Carry the default action over only if it survived specialization.
    const auto& decl = target.decl();
    bool defaultOk = oldTable.defaultActionName() == "noop" ||
                     oldTable.defaultActionName() == "NoAction";
    for (const auto& a : decl.actionNames) {
      defaultOk |= a == oldTable.defaultActionName();
    }
    if (defaultOk) {
      target.setDefaultAction(oldTable.defaultActionName(),
                              oldTable.defaultActionArgs());
    }
    for (const runtime::TableEntry* e : oldTable.normalizedEntries()) {
      runtime::TableEntry migrated;
      migrated.actionName = e->actionName;
      migrated.actionArgs = e->actionArgs;
      bool stillTernary = false;
      for (size_t k = 0; k < decl.keys.size(); ++k) {
        stillTernary |= decl.keys[k].matchKind == p4::MatchKind::kTernary;
      }
      migrated.priority = stillTernary ? e->priority : 0;
      bool skip = false;
      for (size_t k = 0; k < decl.keys.size(); ++k) {
        const runtime::FieldMatch& m = e->matches[k];
        switch (decl.keys[k].matchKind) {
          case p4::MatchKind::kExact:
            if (!m.isExactValued()) skip = true;  // cannot represent
            migrated.matches.push_back(
                runtime::FieldMatch::exact(m.value));
            break;
          case p4::MatchKind::kTernary:
            migrated.matches.push_back(
                runtime::FieldMatch::ternary(m.value, m.mask));
            break;
          case p4::MatchKind::kLpm:
            migrated.matches.push_back(
                runtime::FieldMatch::lpm(m.value, m.prefixLen));
            break;
        }
      }
      // Skip entries of actions the specializer removed from the table:
      // they are unreachable under the current config by construction.
      bool actionOk = migrated.actionName == "noop" ||
                      migrated.actionName == "NoAction";
      for (const auto& a : decl.actionNames) {
        actionOk |= a == migrated.actionName;
      }
      if (!skip && actionOk) target.insert(std::move(migrated));
    }
  }
  for (const auto& [name, vs] : original.valueSets()) {
    if (!config.hasValueSet(name)) continue;
    for (const auto& [value, mask] : vs.members()) {
      config.valueSet(name).insert(value, mask);
    }
  }
  if (hooks != nullptr && hooks->dropOneEntry) {
    for (const auto& [name, table] : config.tables()) {
      if (!table.empty()) {
        config.table(name).remove(table.entries().back().id);
        break;
      }
    }
  }
  return config;
}

}  // namespace flay::flay
