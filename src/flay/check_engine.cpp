#include "flay/check_engine.h"

#include <span>
#include <functional>
#include <unordered_set>
#include <utility>

#include "expr/analysis.h"
#include "obs/obs.h"

namespace flay::flay {

using expr::ExprRef;

namespace {

struct EngineObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& prefetchBatches = reg.counter("parallel.prefetch_batches");
  obs::Counter& prefetchQueries = reg.counter("parallel.prefetch_queries");
  obs::Counter& syncProbes = reg.counter("parallel.sync_probes");
  obs::Histogram& prefetchUs = reg.histogram("parallel.prefetch_us");

  static EngineObs& get() {
    static EngineObs instance;
    return instance;
  }
};

CachedVerdict toCached(const smt::ConstantProbe& probe, bool isBool) {
  CachedVerdict v;
  if (!probe.constant) {
    v.kind = CachedVerdict::Kind::kNotConstant;
  } else if (isBool) {
    v.kind = CachedVerdict::Kind::kBoolConst;
    v.boolValue = probe.boolValue;
  } else {
    v.kind = CachedVerdict::Kind::kBvConst;
    v.value = probe.value;
  }
  return v;
}

smt::ConstantProbe toProbe(const CachedVerdict& v) {
  smt::ConstantProbe probe;
  switch (v.kind) {
    case CachedVerdict::Kind::kBoolConst:
      probe.constant = true;
      probe.boolValue = v.boolValue;
      break;
    case CachedVerdict::Kind::kBvConst:
      probe.constant = true;
      probe.value = v.value;
      break;
    case CachedVerdict::Kind::kNotConstant:
      probe.notConstant = true;
      break;
  }
  return probe;
}

}  // namespace

CheckEngine::CheckEngine(const expr::ExprArena& arena,
                         std::shared_ptr<VerdictCache> sharedCache,
                         std::string scopePrefix)
    : arena_(arena),
      renderer_(arena),
      cache_(sharedCache != nullptr ? std::move(sharedCache)
                                    : std::make_shared<VerdictCache>()),
      scopePrefix_(std::move(scopePrefix)) {}

std::string CheckEngine::scoped(const std::string& scope) const {
  return scopePrefix_.empty() ? scope : scopePrefix_ + scope;
}

CheckEngine::~CheckEngine() = default;

void CheckEngine::configure(const CheckEngineOptions& options) {
  if (pool_ != nullptr && options.jobs != options_.jobs) pool_.reset();
  options_ = options;
}

bool CheckEngine::withinDagLimit(ExprRef e) const {
  return options_.solverDagLimit > 0 &&
         expr::dagSize(arena_, e) <= options_.solverDagLimit;
}

void CheckEngine::prefetch(const std::vector<CheckQuery>& queries) {
  prefetched_.clear();
  if (queries.empty()) return;
  EngineObs& o = EngineObs::get();
  o.prefetchBatches.add(1);
  obs::ScopedTimer timer(o.prefetchUs, "parallel.prefetch");

  // Keep only the checks the verdict path would actually send to the solver:
  // folded constants and over-limit DAGs settle (or stay unknown) without a
  // probe, and hash-consing makes duplicates exact id matches.
  struct Pending {
    uint32_t id;
    ExprRef expr;
    std::string scope;             // scope-prefixed cache tag
    const std::string* rendering;  // null when the cache is off
  };
  std::vector<Pending> pending;
  std::unordered_set<uint32_t> seen;
  for (const CheckQuery& q : queries) {
    if (!q.expr.valid() || arena_.isConst(q.expr)) continue;
    if (!withinDagLimit(q.expr)) continue;
    if (!seen.insert(q.expr.id).second) continue;
    const std::string* rendering = nullptr;
    if (options_.useVerdictCache) {
      rendering = &renderer_.render(q.expr);
      if (auto hit = cache_->lookup(*rendering)) {
        prefetched_[q.expr.id] = {toProbe(*hit), /*fromCache=*/true};
        continue;
      }
    }
    pending.push_back({q.expr.id, q.expr, scoped(q.scope), rendering});
  }
  o.prefetchQueries.add(pending.size());
  if (pending.empty()) return;

  // Probe concurrently. Workers write disjoint slots; the arena is only
  // read (probeConstant never interns), so no synchronization is needed
  // beyond the pool's completion barrier.
  std::vector<smt::ConstantProbe> probes(pending.size());
  if (options_.jobs <= 1 || pending.size() == 1) {
    for (size_t i = 0; i < pending.size(); ++i) {
      probes[i] =
          smt::probeConstant(arena_, pending[i].expr,
                             options_.solverConflictBudget);
    }
  } else {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<support::ThreadPool>(options_.jobs - 1);
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      tasks.push_back([this, &pending, &probes, i] {
        probes[i] =
            smt::probeConstant(arena_, pending[i].expr,
                               options_.solverConflictBudget);
      });
    }
    pool_->run(std::move(tasks));
  }

  for (size_t i = 0; i < pending.size(); ++i) {
    const Pending& p = pending[i];
    prefetched_[p.id] = {probes[i], /*fromCache=*/false};
    if (options_.useVerdictCache && !probes[i].timedOut) {
      cache_->insert(*p.rendering, toCached(probes[i], arena_.isBool(p.expr)),
                     std::span<const std::string>(&p.scope, 1));
    }
  }
}

smt::ConstantProbe CheckEngine::settle(ExprRef e, const std::string& scope,
                                       CheckOutcome* outcome) {
  if (outcome != nullptr) outcome->solverQueried = true;
  auto staged = prefetched_.find(e.id);
  if (staged != prefetched_.end()) {
    if (outcome != nullptr) {
      outcome->timedOut = staged->second.probe.timedOut;
      outcome->cacheHit = staged->second.fromCache;
    }
    return staged->second.probe;
  }
  const std::string* rendering = nullptr;
  if (options_.useVerdictCache) {
    rendering = &renderer_.render(e);
    if (auto hit = cache_->lookup(*rendering)) {
      if (outcome != nullptr) outcome->cacheHit = true;
      return toProbe(*hit);
    }
  }
  EngineObs::get().syncProbes.add(1);
  smt::ConstantProbe probe =
      smt::probeConstant(arena_, e, options_.solverConflictBudget);
  if (outcome != nullptr) outcome->timedOut = probe.timedOut;
  if (options_.useVerdictCache && !probe.timedOut) {
    std::string tag = scoped(scope);
    cache_->insert(*rendering, toCached(probe, arena_.isBool(e)),
                   std::span<const std::string>(&tag, 1));
  }
  return probe;
}

TriVerdict CheckEngine::boolVerdict(ExprRef specialized,
                                    const std::string& scope,
                                    CheckOutcome* outcome) {
  if (arena_.isTrue(specialized)) return TriVerdict::kTrue;
  if (arena_.isFalse(specialized)) return TriVerdict::kFalse;
  if (!withinDagLimit(specialized)) return TriVerdict::kUnknown;
  smt::ConstantProbe probe = settle(specialized, scope, outcome);
  if (probe.constant) {
    return probe.boolValue ? TriVerdict::kTrue : TriVerdict::kFalse;
  }
  return TriVerdict::kUnknown;
}

std::optional<BitVec> CheckEngine::constVerdict(ExprRef specialized,
                                               const std::string& scope,
                                               CheckOutcome* outcome) {
  if (arena_.isBool(specialized)) return std::nullopt;
  if (arena_.isConst(specialized)) return arena_.constValue(specialized);
  if (!withinDagLimit(specialized)) return std::nullopt;
  smt::ConstantProbe probe = settle(specialized, scope, outcome);
  if (probe.constant) return probe.value;
  return std::nullopt;
}

void CheckEngine::invalidateScope(const std::string& scope) {
  cache_->invalidateScope(scoped(scope));
}

void CheckEngine::clearCache() { cache_->clear(); }

}  // namespace flay::flay
