#include "flay/check_engine.h"

#include <algorithm>
#include <span>
#include <functional>
#include <unordered_set>
#include <utility>

#include "expr/analysis.h"
#include "obs/obs.h"

namespace flay::flay {

using expr::ExprRef;

namespace {

struct EngineObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& prefetchBatches = reg.counter("parallel.prefetch_batches");
  obs::Counter& prefetchQueries = reg.counter("parallel.prefetch_queries");
  obs::Counter& syncProbes = reg.counter("parallel.sync_probes");
  obs::Histogram& prefetchUs = reg.histogram("parallel.prefetch_us");

  static EngineObs& get() {
    static EngineObs instance;
    return instance;
  }
};

CachedVerdict toCached(const smt::ConstantProbe& probe, bool isBool) {
  CachedVerdict v;
  if (!probe.constant) {
    v.kind = CachedVerdict::Kind::kNotConstant;
  } else if (isBool) {
    v.kind = CachedVerdict::Kind::kBoolConst;
    v.boolValue = probe.boolValue;
  } else {
    v.kind = CachedVerdict::Kind::kBvConst;
    v.value = probe.value;
  }
  return v;
}

smt::ConstantProbe toProbe(const CachedVerdict& v) {
  smt::ConstantProbe probe;
  switch (v.kind) {
    case CachedVerdict::Kind::kBoolConst:
      probe.constant = true;
      probe.boolValue = v.boolValue;
      break;
    case CachedVerdict::Kind::kBvConst:
      probe.constant = true;
      probe.value = v.value;
      break;
    case CachedVerdict::Kind::kNotConstant:
      probe.notConstant = true;
      break;
  }
  return probe;
}

}  // namespace

CheckEngine::CheckEngine(const expr::ExprArena& arena,
                         std::shared_ptr<VerdictCache> sharedCache,
                         std::string scopePrefix)
    : arena_(arena),
      renderer_(arena),
      cache_(sharedCache != nullptr ? std::move(sharedCache)
                                    : std::make_shared<VerdictCache>()),
      scopePrefix_(std::move(scopePrefix)),
      retirements_(std::make_shared<ScopeRetirementQueue>()) {
  // On a shared cache this also delivers invalidations performed by sibling
  // engines; their scope tags carry a different prefix, so the retirements
  // simply miss this engine's scope-group map.
  cache_->attachArtifact(retirements_);
}

std::string CheckEngine::scoped(const std::string& scope) const {
  return scopePrefix_.empty() ? scope : scopePrefix_ + scope;
}

CheckEngine::~CheckEngine() = default;

void CheckEngine::configure(const CheckEngineOptions& options) {
  if (pool_ != nullptr && options.jobs != options_.jobs) pool_.reset();
  if (options.jobs != options_.jobs ||
      options.incrementalSat != options_.incrementalSat) {
    // Slot count changed (or the mode toggled): drop the warm sessions and
    // let ensureSessions() re-warm at the next probe. Verdicts are facts, so
    // a rebuild can never change an answer.
    sessions_.clear();
  }
  options_ = options;
}

void CheckEngine::ensureSessions() {
  const size_t slots = options_.jobs <= 1 ? 1 : options_.jobs;
  if (sessions_.size() == slots) return;
  sessions_.clear();
  sessions_.reserve(slots);
  for (size_t i = 0; i < slots; ++i) {
    auto session = std::make_unique<smt::ProbeSession>(arena_);
    session->setNodeWatermark(watermark_);
    sessions_.push_back(std::move(session));
  }
}

void CheckEngine::drainRetirements() {
  bool clearAll = false;
  std::vector<std::string> scopes = retirements_->drain(&clearAll);
  if (sessions_.empty()) return;
  if (clearAll) {
    for (auto& s : sessions_) s->rebuild();
    return;
  }
  for (const std::string& scope : scopes) {
    for (auto& s : sessions_) s->retireScope(scope);
  }
}

void CheckEngine::setIncrementalWatermark(uint32_t nodeId) {
  if (nodeId <= watermark_) return;
  watermark_ = nodeId;
  for (auto& s : sessions_) s->setNodeWatermark(watermark_);
}

bool CheckEngine::withinDagLimit(ExprRef e) const {
  return options_.solverDagLimit > 0 &&
         expr::dagSize(arena_, e) <= options_.solverDagLimit;
}

void CheckEngine::prefetch(const std::vector<CheckQuery>& queries) {
  prefetched_.clear();
  if (options_.incrementalSat) drainRetirements();
  if (queries.empty()) return;
  EngineObs& o = EngineObs::get();
  o.prefetchBatches.add(1);
  obs::ScopedTimer timer(o.prefetchUs, "parallel.prefetch");

  // Keep only the checks the verdict path would actually send to the solver:
  // folded constants and over-limit DAGs settle (or stay unknown) without a
  // probe, and hash-consing makes duplicates exact id matches.
  struct Pending {
    uint32_t id;
    ExprRef expr;
    std::string scope;             // scope-prefixed cache tag
    const std::string* rendering;  // null when the cache is off
  };
  std::vector<Pending> pending;
  std::unordered_set<uint32_t> seen;
  for (const CheckQuery& q : queries) {
    if (!q.expr.valid() || arena_.isConst(q.expr)) continue;
    if (!withinDagLimit(q.expr)) continue;
    if (!seen.insert(q.expr.id).second) continue;
    const std::string* rendering = nullptr;
    if (options_.useVerdictCache) {
      rendering = &renderer_.render(q.expr);
      if (auto hit = cache_->lookup(*rendering)) {
        prefetched_[q.expr.id] = {toProbe(*hit), /*fromCache=*/true};
        continue;
      }
    }
    pending.push_back({q.expr.id, q.expr, scoped(q.scope), rendering});
  }
  o.prefetchQueries.add(pending.size());
  if (pending.empty()) return;

  // Probe concurrently. Workers write disjoint slots; the arena is only
  // read (probes never intern), so no synchronization is needed beyond the
  // pool's completion barrier.
  std::vector<smt::ConstantProbe> probes(pending.size());
  if (options_.incrementalSat) {
    // Warm-session mode: one task per session slot over a contiguous slice,
    // so each (not thread-safe) session is touched by exactly one thread.
    // Slicing does not affect verdicts — they are facts, and warm-solve
    // timeouts fall back to the same fresh probe either mode would run.
    ensureSessions();
    const size_t slots = sessions_.size();
    if (slots == 1 || pending.size() == 1) {
      for (size_t i = 0; i < pending.size(); ++i) {
        probes[i] = sessions_[0]->probe(pending[i].expr, pending[i].scope,
                                        options_.solverConflictBudget);
      }
    } else {
      if (pool_ == nullptr) {
        pool_ = std::make_unique<support::ThreadPool>(options_.jobs - 1);
      }
      const size_t chunk = (pending.size() + slots - 1) / slots;
      std::vector<std::function<void()>> tasks;
      for (size_t k = 0; k * chunk < pending.size(); ++k) {
        tasks.push_back([this, &pending, &probes, k, chunk] {
          const size_t end = std::min(pending.size(), (k + 1) * chunk);
          for (size_t i = k * chunk; i < end; ++i) {
            probes[i] = sessions_[k]->probe(pending[i].expr, pending[i].scope,
                                            options_.solverConflictBudget);
          }
        });
      }
      pool_->run(std::move(tasks));
    }
  } else if (options_.jobs <= 1 || pending.size() == 1) {
    for (size_t i = 0; i < pending.size(); ++i) {
      probes[i] =
          smt::probeConstant(arena_, pending[i].expr,
                             options_.solverConflictBudget);
    }
  } else {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<support::ThreadPool>(options_.jobs - 1);
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      tasks.push_back([this, &pending, &probes, i] {
        probes[i] =
            smt::probeConstant(arena_, pending[i].expr,
                               options_.solverConflictBudget);
      });
    }
    pool_->run(std::move(tasks));
  }

  for (size_t i = 0; i < pending.size(); ++i) {
    const Pending& p = pending[i];
    prefetched_[p.id] = {probes[i], /*fromCache=*/false};
    if (options_.useVerdictCache && !probes[i].timedOut) {
      cache_->insert(*p.rendering, toCached(probes[i], arena_.isBool(p.expr)),
                     std::span<const std::string>(&p.scope, 1));
    }
  }
}

smt::ConstantProbe CheckEngine::settle(ExprRef e, const std::string& scope,
                                       CheckOutcome* outcome) {
  if (outcome != nullptr) outcome->solverQueried = true;
  auto staged = prefetched_.find(e.id);
  if (staged != prefetched_.end()) {
    if (outcome != nullptr) {
      outcome->timedOut = staged->second.probe.timedOut;
      outcome->cacheHit = staged->second.fromCache;
    }
    return staged->second.probe;
  }
  const std::string* rendering = nullptr;
  if (options_.useVerdictCache) {
    rendering = &renderer_.render(e);
    if (auto hit = cache_->lookup(*rendering)) {
      if (outcome != nullptr) outcome->cacheHit = true;
      return toProbe(*hit);
    }
  }
  EngineObs::get().syncProbes.add(1);
  smt::ConstantProbe probe;
  if (options_.incrementalSat) {
    // Lazy checks run on the coordinating thread; slot 0's session is the
    // designated warm solver for them.
    drainRetirements();
    ensureSessions();
    probe = sessions_[0]->probe(e, scoped(scope),
                                options_.solverConflictBudget);
  } else {
    probe = smt::probeConstant(arena_, e, options_.solverConflictBudget);
  }
  if (outcome != nullptr) outcome->timedOut = probe.timedOut;
  if (options_.useVerdictCache && !probe.timedOut) {
    std::string tag = scoped(scope);
    cache_->insert(*rendering, toCached(probe, arena_.isBool(e)),
                   std::span<const std::string>(&tag, 1));
  }
  return probe;
}

TriVerdict CheckEngine::boolVerdict(ExprRef specialized,
                                    const std::string& scope,
                                    CheckOutcome* outcome) {
  if (arena_.isTrue(specialized)) return TriVerdict::kTrue;
  if (arena_.isFalse(specialized)) return TriVerdict::kFalse;
  if (!withinDagLimit(specialized)) return TriVerdict::kUnknown;
  smt::ConstantProbe probe = settle(specialized, scope, outcome);
  if (probe.constant) {
    return probe.boolValue ? TriVerdict::kTrue : TriVerdict::kFalse;
  }
  return TriVerdict::kUnknown;
}

std::optional<BitVec> CheckEngine::constVerdict(ExprRef specialized,
                                               const std::string& scope,
                                               CheckOutcome* outcome) {
  if (arena_.isBool(specialized)) return std::nullopt;
  if (arena_.isConst(specialized)) return arena_.constValue(specialized);
  if (!withinDagLimit(specialized)) return std::nullopt;
  smt::ConstantProbe probe = settle(specialized, scope, outcome);
  if (probe.constant) return probe.value;
  return std::nullopt;
}

void CheckEngine::invalidateScope(const std::string& scope) {
  cache_->invalidateScope(scoped(scope));
}

void CheckEngine::clearCache() { cache_->clear(); }

}  // namespace flay::flay
