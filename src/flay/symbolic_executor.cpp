#include "flay/symbolic_executor.h"

#include <set>
#include <stdexcept>

#include "expr/analysis.h"

namespace flay::flay {

using expr::ExprArena;
using expr::ExprRef;
using expr::SymbolClass;
using p4::Expr;
using p4::ExprOp;
using p4::PathKind;
using p4::Stmt;
using p4::StmtOp;

uint32_t TableInfo::actionIndex(const std::string& name) const {
  for (size_t i = 0; i < decl->actionNames.size(); ++i) {
    if (decl->actionNames[i] == name) return static_cast<uint32_t>(i);
  }
  return noopIndex();
}

namespace {

constexpr uint32_t kSelectorWidth = 8;

/// A symbolic machine state: location -> expression, plus the liveness
/// condition used to model `exit`.
struct SymState {
  std::map<std::string, ExprRef> values;
  ExprRef live;
};

class Executor {
 public:
  Executor(const p4::CheckedProgram& checked, ExprArena& arena,
           const AnalysisOptions& options)
      : checked_(checked), arena_(arena), options_(options) {}

  AnalysisResult run() {
    auto start = std::chrono::steady_clock::now();
    initState();

    const p4::Program& prog = checked_.program;
    if (options_.analyzeParser) {
      const p4::ParserDecl* parser =
          prog.findParser(prog.pipeline.parserName);
      if (parser == nullptr) throw std::logic_error("pipeline parser missing");
      ParserOut out = execParserState(*parser, "start", state_, 0);
      state_ = std::move(out.state);
      result_.parserAccept = out.accepted;
    } else {
      freeParserOutputs();
      result_.parserAccept =
          arena_.boolVar("$parser.accepted", SymbolClass::kDataPlane);
    }
    result_.annotations.add(PointKind::kParserAccept, "parser",
                            prog.pipeline.parserName, result_.parserAccept);

    for (const auto& name : prog.pipeline.controlNames) {
      const p4::ControlDecl* control = prog.findControl(name);
      if (control == nullptr) throw std::logic_error("pipeline control missing");
      currentControl_ = control;
      component_ = control->name;
      execStmts(control->applyBody, state_);
    }

    // Final-value annotations used by drop analysis and header pruning.
    annotate(PointKind::kFinalValue, "final:sm.egress_spec", "pipeline",
             state_.values.at("sm.egress_spec"));
    for (const auto& h : checked_.env.headers()) {
      annotate(PointKind::kFinalValue, "final:" + h.validityCanonical,
               "pipeline", state_.values.at(h.validityCanonical));
    }

    result_.finalState = state_.values;
    buildTaintMap();
    result_.analysisTime = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    return std::move(result_);
  }

 private:
  // ----- Setup --------------------------------------------------------------

  /// Initial state mirrors the interpreter: everything zero-initialized
  /// except intrinsic inputs, which are free data-plane symbols.
  void initState() {
    for (const auto& f : checked_.env.fields()) {
      if (f.isBool) {
        state_.values[f.canonical] = arena_.boolConst(false);
      } else {
        state_.values[f.canonical] = arena_.bvConst(BitVec::zero(f.width));
      }
    }
    state_.values["sm.ingress_port"] =
        arena_.var("sm.ingress_port", p4::kPortWidth, SymbolClass::kDataPlane);
    state_.values["sm.packet_length"] =
        arena_.var("sm.packet_length", 32, SymbolClass::kDataPlane);
    state_.live = arena_.boolConst(true);
  }

  /// Skip-parser mode: header fields and validity bits are unconstrained.
  void freeParserOutputs() {
    for (const auto& f : checked_.env.fields()) {
      if (f.canonical.rfind("hdr.", 0) != 0 &&
          f.canonical.rfind("meta.", 0) != 0) {
        continue;
      }
      if (f.isBool) {
        state_.values[f.canonical] =
            arena_.boolVar(f.canonical, SymbolClass::kDataPlane);
      } else {
        state_.values[f.canonical] =
            arena_.var(f.canonical, f.width, SymbolClass::kDataPlane);
      }
    }
  }

  // ----- Parser -------------------------------------------------------------

  struct ParserOut {
    SymState state;
    ExprRef accepted;
  };

  ParserOut execParserState(const p4::ParserDecl& parser,
                            const std::string& stateName, SymState state,
                            int depth) {
    if (stateName == "accept") return {std::move(state), arena_.boolConst(true)};
    if (stateName == "reject") {
      return {std::move(state), arena_.boolConst(false)};
    }
    if (depth > 64) {
      throw std::runtime_error("parser state recursion too deep (cycle?)");
    }
    const p4::ParserStateDecl* decl = parser.findState(stateName);
    if (decl == nullptr) throw std::logic_error("unknown parser state");

    component_ = parser.name + "." + stateName;
    for (const auto& stmt : decl->body) {
      if (stmt->op == StmtOp::kExtract) {
        const p4::HeaderInstance* hdr =
            checked_.env.findHeader(stmt->lhs->canonical);
        for (const auto& fieldName : hdr->fieldCanonicals) {
          const p4::FieldInfo* info = checked_.env.findField(fieldName);
          assignLoc(state, fieldName,
                    arena_.var(fieldName, info->width,
                               SymbolClass::kDataPlane));
        }
        assignLoc(state, hdr->validityCanonical, arena_.boolConst(true));
      } else if (stmt->op == StmtOp::kTransition) {
        return execTransition(parser, stmt->transition, std::move(state),
                              depth);
      } else {
        execStmt(*stmt, state);
      }
    }
    throw std::logic_error("parser state missing transition");
  }

  ParserOut execTransition(const p4::ParserDecl& parser,
                           const p4::TransitionInfo& t, SymState state,
                           int depth) {
    if (t.selectExpr == nullptr) {
      return execParserState(parser, t.nextState, std::move(state), depth + 1);
    }
    ExprRef sel = evalSym(*t.selectExpr, state, nullptr);
    // Build the case conditions in order, then fold from the last case up:
    // earlier cases take precedence in the resulting ITE chain.
    ParserOut acc{state, arena_.boolConst(false)};  // fall-off: reject
    bool sawDefault = false;
    std::vector<std::pair<ExprRef, std::string>> guarded;
    for (const auto& c : t.cases) {
      switch (c.kind) {
        case p4::SelectCase::Kind::kDefault:
          guarded.emplace_back(arena_.boolConst(true), c.nextState);
          sawDefault = true;
          break;
        case p4::SelectCase::Kind::kConst: {
          ExprRef value = arena_.bvConst(c.value->value);
          ExprRef cond;
          if (c.mask != nullptr) {
            ExprRef mask = arena_.bvConst(c.mask->value);
            cond = arena_.eq(arena_.bvAnd(sel, mask),
                             arena_.bvAnd(value, mask));
          } else {
            cond = arena_.eq(sel, value);
          }
          annotate(PointKind::kSelectCase,
                   component_ + ":case " + c.value->value.toHexString(),
                   component_, cond, &c);
          guarded.emplace_back(cond, c.nextState);
          break;
        }
        case p4::SelectCase::Kind::kValueSet: {
          std::string qualified = parser.name + "." + c.valueSet;
          ExprRef symbol = arena_.boolVar(
              qualified + "@" +
                  std::to_string(result_.valueSetUses.size()),
              SymbolClass::kControlPlane);
          result_.symbolOwner[arena_.node(symbol).a] = qualified;
          result_.valueSetUses.push_back({qualified, sel, symbol});
          annotate(PointKind::kSelectCase, component_ + ":case " + qualified,
                   qualified, symbol, &c);
          guarded.emplace_back(symbol, c.nextState);
          break;
        }
      }
      if (sawDefault) break;  // cases after default are unreachable
    }
    for (size_t i = guarded.size(); i-- > 0;) {
      const auto& [cond, next] = guarded[i];
      if (arena_.isTrue(cond)) {
        acc = execParserState(parser, next, state, depth + 1);
        continue;
      }
      ParserOut taken = execParserState(parser, next, state, depth + 1);
      acc = mergeParserOut(cond, std::move(taken), std::move(acc));
    }
    return acc;
  }

  ParserOut mergeParserOut(ExprRef cond, ParserOut a, ParserOut b) {
    ParserOut out;
    out.state = mergeStates(cond, std::move(a.state), std::move(b.state));
    out.accepted = arena_.ite(cond, a.accepted, b.accepted);
    return out;
  }

  // ----- Controls -----------------------------------------------------------

  /// Params for the enclosing action body, if any.
  using ParamEnv = std::map<std::string, ExprRef>;

  void execStmts(const std::vector<p4::StmtPtr>& stmts, SymState& state,
                 const ParamEnv* params = nullptr) {
    for (const auto& s : stmts) execStmt(*s, state, params);
  }

  void execStmt(const Stmt& stmt, SymState& state,
                const ParamEnv* params = nullptr) {
    switch (stmt.op) {
      case StmtOp::kAssign: {
        ExprRef rhs = evalSym(*stmt.rhs, state, params);
        assignLValue(*stmt.lhs, rhs, state, params);
        const std::string& loc = stmt.lhs->op == ExprOp::kSlice
                                     ? stmt.lhs->a->canonical
                                     : stmt.lhs->canonical;
        annotate(PointKind::kAssignedValue,
                 component_ + ":assign " + loc + "@" +
                     std::to_string(stmt.loc.line),
                 component_, readLoc(state, loc, params), &stmt);
        return;
      }
      case StmtOp::kVarDecl: {
        ExprRef init;
        if (stmt.rhs != nullptr) {
          init = evalSym(*stmt.rhs, state, params);
        } else {
          init = stmt.varIsBool
                     ? arena_.boolConst(false)
                     : arena_.bvConst(BitVec::zero(stmt.varWidth));
        }
        state.values[localKey(stmt.varName)] = init;
        return;
      }
      case StmtOp::kIf: {
        ExprRef cond = evalSym(*stmt.cond, state, params);
        annotate(PointKind::kIfCondition,
                 component_ + ":if@" + std::to_string(stmt.loc.line),
                 component_, cond, &stmt);
        if (arena_.isTrue(cond)) {
          execStmts(stmt.thenBody, state, params);
          return;
        }
        if (arena_.isFalse(cond)) {
          execStmts(stmt.elseBody, state, params);
          return;
        }
        SymState thenState = state;
        SymState elseState = state;
        execStmts(stmt.thenBody, thenState, params);
        execStmts(stmt.elseBody, elseState, params);
        state = mergeStates(cond, std::move(thenState), std::move(elseState));
        return;
      }
      case StmtOp::kApply:
        execApply(stmt, state);
        return;
      case StmtOp::kActionCall: {
        std::vector<ExprRef> args;
        for (const auto& a : stmt.args) {
          args.push_back(evalSym(*a, state, params));
        }
        execActionBody(stmt.target, args, state);
        return;
      }
      case StmtOp::kMarkToDrop:
        assignLoc(state, "sm.egress_spec",
                  arena_.bvConst(BitVec(p4::kPortWidth, p4::kDropPort)));
        return;
      case StmtOp::kSetValid:
        assignLoc(state, stmt.lhs->canonical + ".$valid",
                  arena_.boolConst(true));
        return;
      case StmtOp::kSetInvalid:
        assignLoc(state, stmt.lhs->canonical + ".$valid",
                  arena_.boolConst(false));
        return;
      case StmtOp::kRegRead: {
        // Register contents are data-plane state: a fresh free symbol.
        const std::string qualified =
            currentControl_->name + "." + stmt.target;
        ExprRef fresh = arena_.var(
            qualified + ".$read" + std::to_string(freshCounter_++),
            stmt.lhs->width, SymbolClass::kDataPlane);
        assignLValue(*stmt.lhs, fresh, state, params);
        return;
      }
      case StmtOp::kRegWrite:
      case StmtOp::kCountCall:
        return;  // no effect on packet-visible state
      case StmtOp::kMeterCall: {
        const std::string qualified =
            currentControl_->name + "." + stmt.target;
        ExprRef fresh = arena_.var(
            qualified + ".$color" + std::to_string(freshCounter_++), 2,
            SymbolClass::kDataPlane);
        assignLValue(*stmt.lhs, fresh, state, params);
        return;
      }
      case StmtOp::kExit:
        state.live = arena_.boolConst(false);
        return;
      case StmtOp::kEmit:
      case StmtOp::kExtract:
      case StmtOp::kTransition:
        throw std::logic_error("statement not valid in a control");
    }
  }

  // ----- Table apply ----------------------------------------------------------

  void execApply(const Stmt& stmt, SymState& state) {
    const p4::TableDecl* decl = currentControl_->findTable(stmt.target);
    std::string qualified = currentControl_->name + "." + stmt.target;
    if (result_.tableIndex.count(qualified) != 0) {
      throw std::logic_error("table '" + qualified +
                             "' applied more than once; Flay requires a "
                             "single apply site per table");
    }

    TableInfo info;
    info.qualified = qualified;
    info.control = currentControl_;
    info.decl = decl;
    for (const auto& k : decl->keys) {
      info.keyExprs.push_back(evalSym(*k.expr, state, nullptr));
    }
    info.hitSymbol =
        arena_.boolVar(qualified + ".$hit", SymbolClass::kControlPlane);
    info.actionSymbol = arena_.var(qualified + ".$action", kSelectorWidth,
                                   SymbolClass::kControlPlane);
    info.defaultActionSymbol =
        arena_.var(qualified + ".$defaultaction", kSelectorWidth,
                   SymbolClass::kControlPlane);
    registerOwner(info.hitSymbol, qualified);
    registerOwner(info.actionSymbol, qualified);
    registerOwner(info.defaultActionSymbol, qualified);

    std::string savedComponent = component_;
    component_ = qualified;

    // Execute every action arm twice: once with entry-role parameters, once
    // with default-role parameters (the runtime default action can change).
    SymState base = state;
    std::vector<SymState> entryArm, defaultArm;
    for (const auto& actionName : decl->actionNames) {
      entryArm.push_back(
          execActionArm(info, actionName, base, /*defaultRole=*/false));
      defaultArm.push_back(
          execActionArm(info, actionName, base, /*defaultRole=*/true));
    }
    // The no-op arm leaves the state unchanged.
    entryArm.push_back(base);
    defaultArm.push_back(base);

    // Merge: ite(hit, selector chain over entry arms, selector chain over
    // default arms), all guarded by liveness.
    SymState hitMerged = selectorMerge(info.actionSymbol, entryArm);
    SymState missMerged = selectorMerge(info.defaultActionSymbol, defaultArm);
    SymState merged =
        mergeStates(info.hitSymbol, std::move(hitMerged), std::move(missMerged));
    state = mergeStates(state.live, std::move(merged), std::move(base));

    info.hitPoint = annotate(PointKind::kTableHit, qualified + ":hit",
                             qualified, info.hitSymbol);
    info.actionPoint = annotate(PointKind::kTableAction, qualified + ":action",
                                qualified, info.actionSymbol);

    component_ = savedComponent;
    result_.tableIndex[qualified] = result_.tables.size();
    result_.tables.push_back(std::move(info));
  }

  SymState execActionArm(TableInfo& info, const std::string& actionName,
                         const SymState& base, bool defaultRole) {
    SymState arm = base;
    if (actionName == "noop" || actionName == "NoAction") return arm;
    insideAction_ = true;
    const p4::ActionDecl* action = info.control->findAction(actionName);
    if (action == nullptr) throw std::logic_error("unknown action");
    ParamEnv params;
    for (const auto& p : action->params) {
      std::string symbolName = info.qualified +
                               (defaultRole ? ".$default." : ".") +
                               actionName + "." + p.name;
      ExprRef sym =
          arena_.var(symbolName, p.width, SymbolClass::kControlPlane);
      registerOwner(sym, info.qualified);
      params[p.name] = sym;
      auto& target =
          defaultRole ? info.defaultParamSymbols : info.paramSymbols;
      target[actionName + "." + p.name] = sym;
    }
    for (const auto& s : action->body) execStmt(*s, arm, &params);
    insideAction_ = false;
    return arm;
  }

  /// Direct action call with concrete (symbolic) arguments.
  void execActionBody(const std::string& actionName,
                      const std::vector<ExprRef>& args, SymState& state) {
    if (actionName == "noop" || actionName == "NoAction") return;
    const p4::ActionDecl* action = currentControl_->findAction(actionName);
    if (action == nullptr) throw std::logic_error("unknown action");
    ParamEnv params;
    for (size_t i = 0; i < action->params.size(); ++i) {
      params[action->params[i].name] = args[i];
    }
    bool saved = insideAction_;
    insideAction_ = true;
    for (const auto& s : action->body) execStmt(*s, state, &params);
    insideAction_ = saved;
  }

  /// Nested ITE over selector values 0..n-1, arm n-1 as the fall-through.
  SymState selectorMerge(ExprRef selector, std::vector<SymState>& arms) {
    SymState acc = std::move(arms.back());
    for (size_t i = arms.size() - 1; i-- > 0;) {
      ExprRef cond = arena_.eq(
          selector, arena_.bvConst(BitVec(kSelectorWidth, i)));
      acc = mergeStates(cond, std::move(arms[i]), std::move(acc));
    }
    return acc;
  }

  // ----- State plumbing --------------------------------------------------------

  SymState mergeStates(ExprRef cond, SymState a, SymState b) {
    SymState out;
    out.live = arena_.ite(cond, a.live, b.live);
    // Union of keys; a location missing on one side keeps the other side's
    // value (locals declared in one branch are dead outside it anyway).
    for (auto& [k, v] : a.values) {
      auto it = b.values.find(k);
      if (it == b.values.end()) {
        out.values.emplace(k, v);
      } else if (v == it->second) {
        out.values.emplace(k, v);
      } else {
        out.values.emplace(k, arena_.ite(cond, v, it->second));
      }
    }
    for (auto& [k, v] : b.values) {
      out.values.emplace(k, v);  // no-op for keys already present
    }
    return out;
  }

  std::string localKey(const std::string& name) const {
    return currentControl_->name + ".$local." + name;
  }

  ExprRef readLoc(SymState& state, const std::string& canonical,
                  const ParamEnv* params) {
    (void)params;
    auto it = state.values.find(canonical);
    if (it != state.values.end()) return it->second;
    auto localIt = state.values.find(localKey(canonical));
    if (localIt != state.values.end()) return localIt->second;
    throw std::logic_error("unknown location '" + canonical + "'");
  }

  /// Liveness-guarded write.
  void assignLoc(SymState& state, const std::string& key, ExprRef value) {
    auto it = state.values.find(key);
    if (it == state.values.end()) {
      state.values[key] = value;
      return;
    }
    it->second = arena_.ite(state.live, value, it->second);
  }

  void assignLValue(const Expr& lhs, ExprRef value, SymState& state,
                    const ParamEnv* params) {
    if (lhs.op == ExprOp::kSlice) {
      const std::string key = lhs.a->pathKind == PathKind::kLocal
                                  ? localKey(lhs.a->canonical)
                                  : lhs.a->canonical;
      ExprRef cur = state.values.at(key);
      uint32_t w = arena_.width(cur);
      // cur with bits [hi:lo] replaced by value.
      ExprRef result;
      ExprRef shifted = arena_.shl(arena_.zext(value, w), lhs.sliceLo);
      BitVec maskBits = BitVec::allOnes(lhs.sliceHi - lhs.sliceLo + 1)
                            .zext(w)
                            .shl(lhs.sliceLo);
      result = arena_.bvOr(
          arena_.bvAnd(cur, arena_.bvConst(maskBits.bitNot())), shifted);
      assignLoc(state, key, result);
      return;
    }
    (void)params;
    const std::string key = lhs.pathKind == PathKind::kLocal
                                ? localKey(lhs.canonical)
                                : lhs.canonical;
    assignLoc(state, key, value);
  }

  // ----- Expression translation ---------------------------------------------

  ExprRef evalSym(const Expr& e, SymState& state, const ParamEnv* params) {
    switch (e.op) {
      case ExprOp::kIntLit:
        return arena_.bvConst(e.value);
      case ExprOp::kBoolLit:
        return arena_.boolConst(e.boolValue);
      case ExprOp::kPath:
        switch (e.pathKind) {
          case PathKind::kConst:
            return arena_.bvConst(e.value);
          case PathKind::kField:
            return state.values.at(e.canonical);
          case PathKind::kLocal:
            return state.values.at(localKey(e.canonical));
          case PathKind::kActionParam: {
            if (params == nullptr) {
              throw std::logic_error("action parameter outside action");
            }
            return params->at(e.canonical);
          }
          case PathKind::kUnresolved:
            throw std::logic_error("unresolved path in checked program");
        }
        break;
      case ExprOp::kIsValid:
        return state.values.at(e.canonical + ".$valid");
      case ExprOp::kUnary: {
        ExprRef a = evalSym(*e.a, state, params);
        switch (e.unOp) {
          case p4::UnOp::kLNot: return arena_.bNot(a);
          case p4::UnOp::kBitNot: return arena_.bvNot(a);
          case p4::UnOp::kNeg: return arena_.neg(a);
        }
        break;
      }
      case ExprOp::kBinary: {
        using p4::BinOp;
        ExprRef a = evalSym(*e.a, state, params);
        if (e.binOp == BinOp::kShl || e.binOp == BinOp::kShr) {
          // Clamp instead of narrowing: amounts >= the operand width (or
          // beyond 2^32) must fold to zero per SMT-LIB, matching the
          // interpreter and the bit blaster.
          uint32_t amount = clampShiftAmount(e.b->value, arena_.width(a));
          return e.binOp == BinOp::kShl ? arena_.shl(a, amount)
                                        : arena_.lshr(a, amount);
        }
        ExprRef b = evalSym(*e.b, state, params);
        switch (e.binOp) {
          case BinOp::kAdd: return arena_.add(a, b);
          case BinOp::kSub: return arena_.sub(a, b);
          case BinOp::kMul: return arena_.mul(a, b);
          case BinOp::kDiv: return arena_.udiv(a, b);
          case BinOp::kMod: return arena_.urem(a, b);
          case BinOp::kBitAnd: return arena_.bvAnd(a, b);
          case BinOp::kBitOr: return arena_.bvOr(a, b);
          case BinOp::kBitXor: return arena_.bvXor(a, b);
          case BinOp::kEq: return arena_.eq(a, b);
          case BinOp::kNe: return arena_.neq(a, b);
          case BinOp::kLt: return arena_.ult(a, b);
          case BinOp::kLe: return arena_.ule(a, b);
          case BinOp::kGt: return arena_.ult(b, a);
          case BinOp::kGe: return arena_.ule(b, a);
          case BinOp::kLAnd: return arena_.bAnd(a, b);
          case BinOp::kLOr: return arena_.bOr(a, b);
          case BinOp::kConcat: return arena_.concat(a, b);
          default: break;
        }
        break;
      }
      case ExprOp::kTernary: {
        ExprRef c = evalSym(*e.a, state, params);
        return arena_.ite(c, evalSym(*e.b, state, params),
                          evalSym(*e.c, state, params));
      }
      case ExprOp::kSlice:
        return arena_.extract(evalSym(*e.a, state, params), e.sliceHi,
                              e.sliceLo);
      case ExprOp::kCast: {
        ExprRef a = evalSym(*e.a, state, params);
        uint32_t w = arena_.width(a);
        if (w == e.castWidth) return a;
        return w < e.castWidth ? arena_.zext(a, e.castWidth)
                               : arena_.extract(a, e.castWidth - 1, 0);
      }
    }
    throw std::logic_error("unhandled expression in symbolic evaluation");
  }

  // ----- Bookkeeping ------------------------------------------------------------

  uint32_t annotate(PointKind kind, std::string label, std::string component,
                    ExprRef e, const void* astNode = nullptr) {
    // Statements inside action arms are annotated once per arm with
    // arm-specific guards; rewriting the shared action body from any one of
    // them would be unsound, so they carry no AST back-pointer.
    if (insideAction_) astNode = nullptr;
    return result_.annotations.add(kind, std::move(label),
                                   std::move(component), e, astNode);
  }

  void registerOwner(ExprRef symbolExpr, const std::string& owner) {
    result_.symbolOwner[arena_.node(symbolExpr).a] = owner;
  }

  /// For every annotation, map each reachable control-plane symbol back to
  /// its owning object and record the taint edge.
  void buildTaintMap() {
    for (const auto& p : result_.annotations.points()) {
      auto symbols =
          expr::collectSymbols(arena_, p.expr, SymbolClass::kControlPlane);
      std::set<std::string> owners;
      for (uint32_t sym : symbols) {
        auto it = result_.symbolOwner.find(sym);
        if (it != result_.symbolOwner.end()) owners.insert(it->second);
      }
      for (const auto& o : owners) result_.annotations.taint(o, p.id);
    }
  }

  const p4::CheckedProgram& checked_;
  ExprArena& arena_;
  AnalysisOptions options_;
  AnalysisResult result_;
  SymState state_;
  const p4::ControlDecl* currentControl_ = nullptr;
  std::string component_;
  uint64_t freshCounter_ = 0;
  bool insideAction_ = false;
};

}  // namespace

SymbolicExecutor::SymbolicExecutor(const p4::CheckedProgram& checked,
                                   expr::ExprArena& arena,
                                   AnalysisOptions options)
    : checked_(checked), arena_(arena), options_(options) {}

AnalysisResult SymbolicExecutor::run() {
  return Executor(checked_, arena_, options_).run();
}

}  // namespace flay::flay
