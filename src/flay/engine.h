#ifndef FLAY_FLAY_ENGINE_H
#define FLAY_FLAY_ENGINE_H

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>

#include "flay/check_engine.h"
#include "flay/encoder.h"
#include "flay/symbolic_executor.h"
#include "runtime/device_config.h"

namespace flay::flay {

struct FlayOptions {
  AnalysisOptions analysis;
  EncoderOptions encoder;
  /// Ablation knob: when false, every update re-specializes EVERY program
  /// point instead of only the tainted ones. Quantifies the incrementality
  /// claim of §2 (see bench_ablation_taint).
  bool useTaintMap = true;
  /// When set, this service's check engine records and serves semantics-check
  /// verdicts from this cache instead of a private one. Safe to share across
  /// services — even ones analyzing different programs — because a verdict is
  /// a pure fact about the canonical rendering it is keyed on; the payoff is
  /// a fleet of devices running identical programs, where one device's solver
  /// probes warm every other device's checks. Null = private cache.
  std::shared_ptr<VerdictCache> sharedVerdictCache;
  /// Prefix for the scope tags this service records in the verdict cache
  /// (e.g. "dev3/"), keeping scope invalidation per-instance when the cache
  /// is shared: entries recorded by other instances are never touched by
  /// this service's invalidations.
  std::string verdictScopePrefix;
};

/// Verdict for one control-plane update (or batch), mirroring Fig. 2: the
/// update is installed either way; `needsRecompilation` says whether the
/// specialized program implementation must be recompiled first.
///
/// Two levels of change are distinguished, following §2's observation that
/// "many control-plane entries just increase the likelihood for an already
/// existing data-plane program path to be taken":
///  - expressionsChanged: some annotation's specialized expression differs
///    (e.g. a new route widens a hit condition). Cheap to detect, frequent.
///  - needsRecompilation: some specialization *decision* flipped — a value
///    stopped being constant, a branch became (un)reachable, a table's
///    reachable-action set or key shape changed. Only these force the
///    device compiler to run.
struct UpdateVerdict {
  bool expressionsChanged = false;
  bool needsRecompilation = false;
  /// Program points whose specialized expression changed.
  std::vector<uint32_t> changedPoints;
  /// Components (tables, parser states) needing recompilation.
  std::set<std::string> changedComponents;
  /// Pure analysis time (excluding config mutation).
  std::chrono::microseconds analysisTime{0};
  /// True if any touched table fell back to the over-approximate encoding.
  bool overapproximated = false;
};

/// Tuning knobs for the streaming bulk-load path (see flay/bulk.h).
struct BulkLoadOptions {
  /// Updates pulled from the source per analysis chunk. The analysis (and
  /// the verdict streamed to the caller) is amortized over a chunk, and the
  /// loader's transient state is bounded by the chunk, so a million-entry
  /// stream never needs to be materialized.
  size_t chunkSize = 4096;
  /// Pre-classify inserts against per-table key predicates derived from the
  /// installed rule shape (src/classifier) and let provably
  /// analysis-invisible entries — fresh keys landing in tables already past
  /// the over-approximation threshold — bypass re-encoding and the
  /// semantics checks entirely.
  bool classifierPrefilter = true;
  /// Collect the successfully applied updates of each chunk into
  /// BulkChunkVerdict::applied (for journaling / device forwarding). Off by
  /// default: collection is the one per-chunk cost that scales with the
  /// chunk contents.
  bool collectApplied = false;
};

/// Verdict streamed out after each bulk-load chunk.
struct BulkChunkVerdict {
  size_t chunkIndex = 0;
  size_t updates = 0;   ///< updates consumed from the source in this chunk
  size_t bypassed = 0;  ///< pre-filtered as analysis-invisible
  size_t analyzed = 0;  ///< routed through the incremental analysis
  size_t rejected = 0;  ///< invalid for the current state; skipped
  /// Analysis verdict over the chunk's non-bypassed updates.
  UpdateVerdict verdict;
  /// First-update-pulled to verdict-ready latency for this chunk.
  uint64_t verdictLatencyUs = 0;
  /// Successfully applied updates (only with BulkLoadOptions::collectApplied).
  std::vector<runtime::Update> applied;
};

/// Aggregate outcome of one bulk load.
struct BulkLoadReport {
  uint64_t updates = 0;   ///< pulled from the source
  uint64_t applied = 0;   ///< installed into the config (bypassed + analyzed)
  uint64_t bypassed = 0;
  uint64_t analyzed = 0;
  uint64_t rejected = 0;
  size_t chunks = 0;
  bool expressionsChanged = false;
  bool needsRecompilation = false;
  bool overapproximated = false;
  std::set<std::string> changedComponents;
};

/// Pull-based update stream: returns updates until exhausted (nullopt).
using UpdateSource = std::function<std::optional<runtime::Update>()>;
/// Invoked after each chunk's analysis with its streamed verdict.
using BulkChunkCallback = std::function<void(const BulkChunkVerdict&)>;

/// A secondary analysis product riding the incremental update hot path.
/// Implementations (e.g. ifc::IfcEngine) are attached to a FlayService and
/// get called after every analyzed update round — applyUpdate, applyBatch,
/// each bulk chunk, respecializeAll — on the applying thread, after the
/// service has finished its own check-engine work for the round. restore()
/// fires with a default verdict: the state changed but no round ran.
class UpdateAnalysis {
 public:
  virtual ~UpdateAnalysis() = default;
  virtual void onUpdateAnalyzed(const UpdateVerdict& verdict) = 0;
};

/// Opaque value-copy of everything applyUpdate()/applyBatch() mutate: the
/// device config, the control-plane assignment, the per-point specialized
/// expressions, and the change-detection digests. ExprRefs point into the
/// owning service's arena — which is append-only hash-consing, so they stay
/// valid across later updates — meaning a snapshot is only usable with the
/// service that produced it. This is the transactional-rollback primitive
/// of the fault-tolerant controller.
struct ServiceSnapshot {
  runtime::DeviceConfig config;
  std::map<uint32_t, expr::ExprRef> bindings;
  std::vector<std::string> pointDigests;
  std::map<std::string, std::string> tableDigests;
  /// analysis_.annotations.point(id).specialized, indexed by point id.
  std::vector<expr::ExprRef> specialized;
};

/// The Flay service: owns the device's control-plane state, runs the
/// one-time data-plane analysis, and processes control-plane updates
/// incrementally through taint lookup + substitution + O(1) change checks.
class FlayService {
 public:
  explicit FlayService(const p4::CheckedProgram& checked,
                       FlayOptions options = {});

  /// The managed control-plane state. Mutate only through applyUpdate() /
  /// applyBatch() so the analysis stays in sync.
  const runtime::DeviceConfig& config() const { return *config_; }

  /// Applies one update and re-analyzes the tainted program points.
  /// Throws std::invalid_argument for malformed updates (nothing changes).
  UpdateVerdict applyUpdate(const runtime::Update& update);

  /// Applies a burst of updates, analyzing each object once at the end —
  /// the §4.2 scenario of 1000 fuzzer updates processed in under a second.
  UpdateVerdict applyBatch(const std::vector<runtime::Update>& updates);

  /// Streaming bulk load: pulls updates from `source` until exhausted,
  /// applying them in chunks of options.chunkSize. Inserts that the
  /// classifier pre-filter proves analysis-invisible bypass re-encoding and
  /// semantics checks; the rest are analyzed once per chunk (taint closure
  /// and substitution amortized over the chunk, not per update). Rejected
  /// updates (std::invalid_argument) are counted and skipped — the same
  /// contract as replaying the stream through applyUpdate() and skipping
  /// rejections, to which this path is digest-identical. Memory stays
  /// bounded by the chunk, and per-chunk verdicts stream out through `cb`.
  /// Defined in flay/bulk.cpp.
  BulkLoadReport applyStream(const UpdateSource& source,
                             const BulkLoadOptions& options = {},
                             const BulkChunkCallback& cb = {});
  /// Convenience wrapper over applyStream for an in-memory batch.
  BulkLoadReport bulkLoad(const std::vector<runtime::Update>& updates,
                          const BulkLoadOptions& options = {},
                          const BulkChunkCallback& cb = {});

  /// Process-independent digest of the full update-visible state: the
  /// config (entries with ids and allocator positions, value sets,
  /// profiles) plus every specialized program-point expression rendered
  /// canonically. Two services with equal digests are in observably
  /// identical states — the parity contract between the bulk-load path and
  /// a sequential replay, and the crashtest's recovery check.
  std::string stateDigest() const;

  /// Re-specializes every annotation from the current config (used once at
  /// startup and after a semantics-changing batch has been recompiled).
  void respecializeAll();

  /// Captures the current update-visible state for later restore().
  ServiceSnapshot snapshot() const;
  /// Restores exactly the state captured by snapshot(), undoing every
  /// update applied in between. The snapshot must have been produced by
  /// this service (its ExprRefs index this service's arena).
  void restore(const ServiceSnapshot& snap);
  /// Replaces the managed config wholesale and re-derives the analysis
  /// from it (crash recovery: checkpoint load + journal replay). `config`
  /// must be built against the same checked program.
  void adoptConfig(runtime::DeviceConfig config);

  const AnalysisResult& analysis() const { return analysis_; }
  expr::ExprArena& arena() { return *arena_; }
  const p4::CheckedProgram& checkedProgram() const { return checked_; }

  /// The semantics-check engine the specializer asks for verdicts. Owned
  /// here so its verdict cache and canonical-rendering memo live across
  /// specializer runs (that persistence is where cache hits come from);
  /// analyzeObjects() invalidates the scopes of components whose
  /// specialized expressions changed.
  CheckEngine& checkEngine() { return *checkEngine_; }

  /// Current specialized expression of a program point.
  expr::ExprRef specialized(uint32_t pointId) const {
    return analysis_.annotations.point(pointId).specialized;
  }

  /// Current control-plane assignment of a placeholder symbol, fully
  /// specialized; returns the symbol itself when it is free
  /// (over-approximated or never bound).
  expr::ExprRef resolveSymbol(expr::ExprRef symbolExpr) const;

  /// Attaches a secondary analysis to the update hot path: it is notified
  /// after every analyzed round (and after restore()), so its products stay
  /// re-verified on the same incremental cadence as the constant verdicts.
  /// The service keeps the analysis alive; attach order is notify order.
  void attachAnalysis(std::shared_ptr<UpdateAnalysis> analysis) {
    analyses_.push_back(std::move(analysis));
  }

  /// Time spent in the one-time data-plane analysis.
  std::chrono::microseconds dataPlaneAnalysisTime() const {
    return analysis_.analysisTime;
  }
  /// Time spent preprocessing (initial whole-program specialization).
  std::chrono::microseconds preprocessTime() const { return preprocessTime_; }

 private:
  /// The bulk loader drives config_ and analyzeObjects() directly so it can
  /// interleave pre-filtered installs with chunked analysis.
  friend class BulkLoader;

  /// Recomputes bindings for `objects` and re-specializes tainted points.
  UpdateVerdict analyzeObjects(const std::set<std::string>& objects);
  void notifyAnalyses(const UpdateVerdict& verdict) {
    for (const auto& a : analyses_) a->onUpdateAnalyzed(verdict);
  }
  void rebindObject(const std::string& object, bool* overapproximated);
  /// Expands a set of updated objects with every object whose encoding
  /// depends on them (tables keying on fields other tables write), in
  /// program order so upstream bindings resolve first. Per-object closures
  /// are memoized — the dependency graph is built once and never mutated —
  /// so a batch pays a set union, not a graph re-walk.
  std::vector<std::string> dependencyClosure(
      const std::set<std::string>& objects);
  /// Memoized transitive dependents of one object (including itself).
  const std::vector<std::string>& closureOf(const std::string& object);
  void buildObjectDependencies();
  /// The specialization decision a point's expression currently supports:
  /// "" for unknown/non-constant, else a rendering of the constant.
  std::string pointDigest(expr::ExprRef specialized) const;
  /// Structural digest of a table's runtime state: reachable actions,
  /// per-key exactness, emptiness — the properties the specializer keys on.
  std::string tableDigest(const std::string& qualified) const;

  const p4::CheckedProgram& checked_;
  FlayOptions options_;
  std::unique_ptr<expr::ExprArena> arena_;
  AnalysisResult analysis_;
  std::unique_ptr<runtime::DeviceConfig> config_;
  std::unique_ptr<ControlPlaneEncoder> encoder_;
  std::unique_ptr<CheckEngine> checkEngine_;
  /// Current control-plane assignment: symbol id -> value (absent = free).
  /// Values are fully resolved: they contain no placeholders that have
  /// bindings themselves.
  std::map<uint32_t, expr::ExprRef> bindings_;
  /// object -> objects whose encoding mentions its placeholders.
  std::map<std::string, std::set<std::string>> objectDependents_;
  /// Objects (tables then value sets) in program order, for closure order.
  std::vector<std::string> objectOrder_;
  /// object -> position in objectOrder_ (closure ordering without scans).
  std::map<std::string, size_t> objectOrderIndex_;
  /// Memoized per-object transitive closures (the graph is immutable).
  std::map<std::string, std::vector<std::string>> closureCache_;
  /// Decision digests for change detection at the recompile level.
  std::vector<std::string> pointDigests_;
  std::map<std::string, std::string> tableDigests_;
  /// Attached secondary analyses (ifc::IfcEngine), notified per round.
  std::vector<std::shared_ptr<UpdateAnalysis>> analyses_;
  std::chrono::microseconds preprocessTime_{0};
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_ENGINE_H
