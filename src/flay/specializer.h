#ifndef FLAY_FLAY_SPECIALIZER_H
#define FLAY_FLAY_SPECIALIZER_H

#include "flay/engine.h"
#include "p4/clone.h"

namespace flay::flay {

/// What the partial evaluator changed, mirroring the specializations of §3
/// and Fig. 3.
struct SpecializationStats {
  size_t removedTables = 0;       // empty table: default action inlined
  size_t inlinedTables = 0;       // constant hit+action: action inlined
  size_t removedActions = 0;      // unreachable actions dropped from tables
  size_t convertedKeys = 0;       // ternary/lpm keys tightened to exact
  size_t eliminatedBranches = 0;  // if statements with constant conditions
  size_t propagatedConstants = 0; // RHS replaced with literals
  size_t removedSelectCases = 0;  // unreachable parser select cases
  size_t solverQueries = 0;       // SMT constant/executability queries asked
  /// Queries whose fail-safe conflict budget expired before an answer. Each
  /// falls back to the conservative non-constant verdict (general
  /// implementation kept — never a fold on "unknown").
  size_t solverTimeouts = 0;
  /// Headers never read by any control: parser-tail pruning candidates
  /// (reported, not applied, so packet bytes round-trip unchanged).
  std::vector<std::string> prunableHeaders;
  /// Headers whose validity specializes to constant-false at pipeline end:
  /// never emitted under this config, so their PHV containers and any
  /// checksum units over them are reclaimable (§3, "Savings in other
  /// hardware resources").
  std::vector<std::string> deadHeaders;

  size_t totalChanges() const {
    return removedTables + inlinedTables + removedActions + convertedKeys +
           eliminatedBranches + propagatedConstants + removedSelectCases;
  }
};

struct SpecializerOptions {
  /// Ask the SMT solver about conditions/values the rewriting constructors
  /// could not fold, up to this DAG size (0 disables solver queries).
  size_t solverDagLimit = 512;
  /// Fail-safe deadline per solver query, in SAT conflicts (0 = unlimited).
  /// An expired query yields "unknown", which the specializer maps to its
  /// conservative verdict: the point keeps the general implementation, so a
  /// solver blowup can degrade specialization quality but never correctness
  /// or liveness of the update pipeline.
  uint64_t solverConflictBudget = 20000;
  /// Threads for the semantics-check prefetch: the independent constantness
  /// probes of one specialization run execute concurrently across this many
  /// threads (1 = serial). Verdicts are deterministic regardless (each probe
  /// uses a fresh solver with a fixed conflict budget).
  size_t jobs = 1;
  /// Serve repeated semantics checks from the service's canonical-digest
  /// verdict cache. Off = every check re-probes (for A/B testing; verdicts
  /// are identical either way).
  bool useVerdictCache = true;
  /// Keep warm assumption-based SAT sessions across probes (delta CNF plus
  /// learned-clause retention) instead of a fresh solver per probe. Off =
  /// every probe pays the full encode+solve (for A/B testing; verdicts are
  /// identical either way).
  bool incrementalSat = true;
};

struct SpecializationResult {
  p4::Program program;
  SpecializationStats stats;
};

/// The partial evaluator: produces a specialized clone of the program that
/// is packet-equivalent to the original under the service's current
/// control-plane configuration. Combines dead-code elimination, constant
/// propagation, and table inlining (§4: "we remove unnecessary table
/// dependencies by deleting unused actions, inline P4 tables which always
/// execute the same action, ... and replace variables and conditions with
/// constants").
class Specializer {
 public:
  explicit Specializer(FlayService& service, SpecializerOptions options = {});

  SpecializationResult specialize();

 private:
  class Impl;
  FlayService& service_;
  SpecializerOptions options_;
};

/// Rebuilds a checked program from a specialized AST (re-runs the type
/// checker as a safety net against specializer bugs).
p4::CheckedProgram recheck(p4::Program program);

/// Fault-injection hooks for migrateConfig, used by the differential oracle
/// to prove it catches real specializer bugs: dropping one substituted entry
/// models the classic "specializer forgot an installed entry" defect.
struct MigrationTestHooks {
  /// Silently drop the last migrated entry of the first non-empty table.
  bool dropOneEntry = false;
};

/// Builds a DeviceConfig for the specialized program carrying over the
/// original entries, converting match kinds where the specializer tightened
/// keys and dropping entries of removed tables. `hooks` is for tests only.
runtime::DeviceConfig migrateConfig(const p4::CheckedProgram& specialized,
                                    const runtime::DeviceConfig& original,
                                    const MigrationTestHooks* hooks = nullptr);

}  // namespace flay::flay

#endif  // FLAY_FLAY_SPECIALIZER_H
