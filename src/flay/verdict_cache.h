#ifndef FLAY_FLAY_VERDICT_CACHE_H
#define FLAY_FLAY_VERDICT_CACHE_H

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/bitvec.h"

namespace flay::flay {

/// Listener for scope-keyed artifacts stored alongside the verdicts — e.g.
/// the check engine's warm incremental-solver clause groups, which are keyed
/// on the same scope tags as the cached verdicts and must retire when the
/// scope is invalidated. Notifications may arrive from any thread (a fleet's
/// shared cache is invalidated concurrently by several controllers), after
/// the cache's own entries were dropped; implementations must only enqueue
/// work and never call back into the cache.
class ScopeArtifact {
 public:
  virtual ~ScopeArtifact() = default;
  /// The entries recorded under `scope` were invalidated. Fires even when
  /// the scope had no entries — artifacts may exist for scopes whose
  /// verdicts all timed out or were evicted.
  virtual void onScopeInvalidated(const std::string& scope) = 0;
  /// The whole cache was dropped (explicit clear() or cap eviction).
  virtual void onCacheCleared() = 0;
};

/// A settled semantics-check verdict: the specialized expression is a proven
/// boolean constant, a proven bit-vector constant, or provably not constant.
/// Timeouts are deliberately not representable — an expired conflict budget
/// is a statement about the solver deadline, not about the expression, and
/// must be re-asked rather than remembered.
struct CachedVerdict {
  enum class Kind { kBoolConst, kBvConst, kNotConstant };
  Kind kind = Kind::kNotConstant;
  bool boolValue = false;  // kBoolConst
  BitVec value;            // kBvConst
};

/// Cache of semantics-check verdicts keyed by the canonical-digest of the
/// specialized condition (expr::CanonicalRenderer rendering, hashed with
/// expr::Fnv). A verdict is a pure fact about the rendered formula — the
/// control-plane config is already substituted into it — so an entry can
/// never go semantically stale: respecializing a table produces a different
/// rendering, which simply misses. Scope-tagged invalidation exists for
/// memory hygiene: when a table respecializes, the verdicts recorded under
/// its component tag describe formulas no live program point references
/// anymore, so they are dropped eagerly instead of waiting for eviction.
///
/// Collision resistance: entries are bucketed by the 64-bit digest but carry
/// the full canonical rendering, which is compared on every hit. A digest
/// collision between distinct formulas therefore degrades to a miss (counted
/// in cache.digest_collisions) — it can never serve the wrong verdict.
///
/// All methods are thread-safe; the parallel check engine inserts from
/// worker threads while the coordinating thread looks up.
class VerdictCache {
 public:
  explicit VerdictCache(size_t maxEntries = kDefaultMaxEntries);

  std::optional<CachedVerdict> lookup(std::string_view rendering);
  /// Records a settled verdict under every scope in `scopes` (typically the
  /// owning component of the program point that asked). Re-inserting an
  /// existing rendering refreshes nothing — first verdict wins; verdicts are
  /// facts, so both are identical anyway.
  void insert(std::string_view rendering, CachedVerdict verdict,
              std::span<const std::string> scopes);
  /// Drops every entry recorded under `scope`.
  void invalidateScope(const std::string& scope);
  void clear();

  /// Registers an artifact listener, weakly held — expired listeners are
  /// pruned on the next notification, so an engine that dies before its
  /// (shared) cache needs no explicit detach.
  void attachArtifact(std::weak_ptr<ScopeArtifact> artifact);

  size_t size() const;

  static constexpr size_t kDefaultMaxEntries = 1 << 16;

 private:
  struct Entry {
    std::string rendering;
    CachedVerdict verdict;
    std::vector<std::string> scopes;
  };

  static uint64_t digestOf(std::string_view rendering);
  void dropLocked(uint64_t digest, std::string_view rendering);
  /// Locks in still-live listeners (pruning the rest) so they can be
  /// notified after mu_ is released.
  std::vector<std::shared_ptr<ScopeArtifact>> liveArtifactsLocked();

  mutable std::mutex mu_;
  size_t maxEntries_;
  size_t entries_ = 0;
  /// digest -> entries whose rendering hashes to it (collision chain).
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  /// scope -> (digest, rendering) pairs recorded under it.
  std::unordered_map<std::string, std::vector<std::pair<uint64_t, std::string>>>
      scopeIndex_;
  std::vector<std::weak_ptr<ScopeArtifact>> artifacts_;
};

}  // namespace flay::flay

#endif  // FLAY_FLAY_VERDICT_CACHE_H
