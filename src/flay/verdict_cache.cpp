#include "flay/verdict_cache.h"

#include <algorithm>

#include "expr/canonical.h"
#include "obs/obs.h"

namespace flay::flay {

namespace {

struct CacheObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& hits = reg.counter("cache.hits");
  obs::Counter& misses = reg.counter("cache.misses");
  obs::Counter& inserts = reg.counter("cache.inserts");
  obs::Counter& invalidatedEntries = reg.counter("cache.invalidated_entries");
  obs::Counter& evictions = reg.counter("cache.evictions");
  obs::Counter& digestCollisions = reg.counter("cache.digest_collisions");

  static CacheObs& get() {
    static CacheObs instance;
    return instance;
  }
};

}  // namespace

VerdictCache::VerdictCache(size_t maxEntries)
    : maxEntries_(maxEntries == 0 ? 1 : maxEntries) {}

uint64_t VerdictCache::digestOf(std::string_view rendering) {
  expr::Fnv fnv;
  fnv.mix(rendering);
  return fnv.h;
}

std::optional<CachedVerdict> VerdictCache::lookup(std::string_view rendering) {
  CacheObs& o = CacheObs::get();
  uint64_t digest = digestOf(rendering);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(digest);
  if (it != buckets_.end()) {
    for (const Entry& e : it->second) {
      if (e.rendering == rendering) {
        o.hits.add(1);
        return e.verdict;
      }
    }
    // Same 64-bit digest, different formula: by construction this serves a
    // miss, never a cross-talk verdict.
    o.digestCollisions.add(1);
  }
  o.misses.add(1);
  return std::nullopt;
}

void VerdictCache::insert(std::string_view rendering, CachedVerdict verdict,
                          std::span<const std::string> scopes) {
  CacheObs& o = CacheObs::get();
  uint64_t digest = digestOf(rendering);
  std::vector<std::shared_ptr<ScopeArtifact>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_ >= maxEntries_) {
      // Bounded memory beats recency bookkeeping on this hot path: a full
      // cache is dropped wholesale and rebuilt by the very next check pass.
      o.evictions.add(entries_);
      buckets_.clear();
      scopeIndex_.clear();
      entries_ = 0;
      listeners = liveArtifactsLocked();
    }
    std::vector<Entry>& bucket = buckets_[digest];
    bool present = false;
    for (const Entry& e : bucket) {
      if (e.rendering == rendering) present = true;  // first verdict wins
    }
    if (!present) {
      Entry entry;
      entry.rendering = std::string(rendering);
      entry.verdict = std::move(verdict);
      entry.scopes.assign(scopes.begin(), scopes.end());
      for (const std::string& s : entry.scopes) {
        scopeIndex_[s].emplace_back(digest, entry.rendering);
      }
      bucket.push_back(std::move(entry));
      ++entries_;
      o.inserts.add(1);
    }
  }
  for (auto& a : listeners) a->onCacheCleared();
}

void VerdictCache::dropLocked(uint64_t digest, std::string_view rendering) {
  auto it = buckets_.find(digest);
  if (it == buckets_.end()) return;
  std::vector<Entry>& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].rendering != rendering) continue;
    bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i));
    --entries_;
    CacheObs::get().invalidatedEntries.add(1);
    break;
  }
  if (bucket.empty()) buckets_.erase(it);
}

void VerdictCache::invalidateScope(const std::string& scope) {
  std::vector<std::shared_ptr<ScopeArtifact>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = scopeIndex_.find(scope);
    if (it != scopeIndex_.end()) {
      for (const auto& [digest, rendering] : it->second) {
        dropLocked(digest, rendering);
      }
      scopeIndex_.erase(it);
    }
    // Artifacts are notified even when the scope had no cached entries: the
    // check engine may hold warm clause groups for scopes whose verdicts all
    // timed out or were evicted.
    listeners = liveArtifactsLocked();
  }
  for (auto& a : listeners) a->onScopeInvalidated(scope);
}

void VerdictCache::clear() {
  std::vector<std::shared_ptr<ScopeArtifact>> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buckets_.clear();
    scopeIndex_.clear();
    entries_ = 0;
    listeners = liveArtifactsLocked();
  }
  for (auto& a : listeners) a->onCacheCleared();
}

void VerdictCache::attachArtifact(std::weak_ptr<ScopeArtifact> artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  artifacts_.push_back(std::move(artifact));
}

std::vector<std::shared_ptr<ScopeArtifact>>
VerdictCache::liveArtifactsLocked() {
  std::vector<std::shared_ptr<ScopeArtifact>> live;
  size_t keep = 0;
  for (std::weak_ptr<ScopeArtifact>& w : artifacts_) {
    if (std::shared_ptr<ScopeArtifact> s = w.lock()) {
      live.push_back(std::move(s));
      artifacts_[keep++] = std::move(w);
    }
  }
  artifacts_.resize(keep);
  return live;
}

size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace flay::flay
