#include "replay/replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "flay/specializer.h"
#include "obs/obs.h"
#include "sim/interpreter.h"
#include "sim/state.h"
#include "sim/versioned.h"
#include "support/stopwatch.h"

namespace flay::replay {

namespace {

using support::Stopwatch;

struct ReplayObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& packets = reg.counter("replay.packets");
  obs::Counter& stalePackets = reg.counter("replay.stale_packets");
  obs::Counter& degradedPackets = reg.counter("replay.degraded_packets");
  obs::Counter& policyDrops = reg.counter("replay.policy_drops");
  obs::Counter& misroutes = reg.counter("replay.misroutes");
  obs::Counter& oracleSamples = reg.counter("replay.oracle_samples");
  obs::Counter& versions = reg.counter("replay.versions_published");
  obs::Counter& postConvStale = reg.counter("replay.post_convergence_stale");
  obs::Histogram& stalenessUpdates = reg.histogram("replay.staleness_updates");
  obs::Histogram& stalenessUs = reg.histogram("replay.staleness_us");
  obs::Histogram& installLagUs = reg.histogram("replay.install_lag_us");
  obs::Histogram& recoveryUs = reg.histogram("replay.recovery_us");

  static ReplayObs& get() {
    static ReplayObs instance;
    return instance;
  }
};

LagStats lagStats(const obs::Histogram& h) {
  LagStats s;
  s.count = h.count();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  s.max = h.max();
  return s;
}

/// A retired version plus the packets it actually served, awaiting the
/// post-hoc oracle replay.
struct PendingVerify {
  std::shared_ptr<const sim::ProgramVersion> version;
  std::vector<sim::Packet> samples;
};

uint64_t mixSeed(uint64_t seed, size_t device, uint64_t sequence) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (device + 1) + sequence;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

/// Per-device shared state between the epoch callback (drain worker), the
/// forwarding thread, and the control thread. Single-writer per field; the
/// cross-thread pairs (committed epoch, commit timestamps, converged flag)
/// are atomics with release/acquire pairing on publish/adopt edges.
struct DeviceRuntime {
  sim::VersionedDataPlane plane;
  std::atomic<uint64_t> committed{0};
  /// commitTimes[k] = Stopwatch stamp when the k-th committed update landed
  /// (1-based; sized updates+2). A stale packet's µs-staleness is measured
  /// against the commit time of the first update its version is missing.
  std::unique_ptr<std::atomic<uint64_t>[]> commitTimes;
  uint64_t commitCap = 0;
  std::atomic<bool> converged{false};
  std::atomic<uint64_t> postPackets{0};

  // Epoch-callback-local (serialized per device by the fleet).
  uint64_t lastStamped = 0;
  uint64_t publishSeq = 0;
  bool lastPublishedDegraded = false;

  // Verifier handoff: forwarding thread pushes retired versions, control
  // thread pops and replays them.
  std::mutex vmu;
  std::deque<PendingVerify> verifyQueue;

  // Owned by the forwarding thread until join.
  DeviceReplayStats stats;

  // Owned by the control-thread verifier.
  uint64_t oracleSamples = 0;
  uint64_t misroutes = 0;
  std::string firstMisroute;
};

LiveReplayHarness::LiveReplayHarness(const p4::CheckedProgram& checked,
                                     ReplayOptions options)
    : checked_(checked), options_(std::move(options)) {
  if (options_.devices == 0) options_.devices = 1;
  if (options_.windowPackets == 0) options_.windowPackets = 8192;
  if (options_.oracleSampleEvery == 0) options_.oracleSampleEvery = 1;
  if (options_.oracleSamplesPerVersionMax <
      options_.oracleSamplesPerVersionMin) {
    options_.oracleSamplesPerVersionMax = options_.oracleSamplesPerVersionMin;
  }
  if (options_.drainEvery == 0) options_.drainEvery = 1;
}

ReplayReport LiveReplayHarness::run() {
  ReplayObs& robs = ReplayObs::get();
  // Harness-local histograms so the report's quantiles cover exactly this
  // run even when the process-global registry spans several scenarios.
  obs::Histogram lagHist;
  obs::Histogram staleUpdatesHist;
  obs::Histogram staleUsHist;

  fleet::FleetOptions fopts;
  fopts.devices = options_.devices;
  fopts.jobs = options_.jobs;
  fopts.queueCapacity = options_.queueCapacity;
  fopts.faultPlan = options_.faultPlan;
  fopts.recovery = options_.recovery;
  fopts.transport = options_.transport;
  fopts.controller = options_.controller;
  // Re-admission is the fleet's job here: inline recovery during apply would
  // race the harness's recovery accounting and bypass the backoff policy.
  fopts.controller.tryRecoverEvery = 0;
  fopts.controller.seed = options_.controller.seed + options_.seed;
  fopts.deviceCompiler = options_.deviceCompiler;

  uint64_t attemptsBefore =
      obs::Registry::global().counter("fleet.readmission_attempts").value();
  uint64_t readmissionsBefore =
      obs::Registry::global().counter("fleet.readmissions").value();

  Stopwatch wall;
  fleet::FleetController fc(checked_, fopts);

  std::vector<std::unique_ptr<DeviceRuntime>> runtimes;
  runtimes.reserve(options_.devices);
  for (size_t i = 0; i < options_.devices; ++i) {
    auto rt = std::make_unique<DeviceRuntime>();
    rt->commitCap = options_.updates + 2;
    rt->commitTimes =
        std::make_unique<std::atomic<uint64_t>[]>(rt->commitCap);
    for (uint64_t k = 0; k < rt->commitCap; ++k) {
      rt->commitTimes[k].store(0, std::memory_order_relaxed);
    }
    rt->stats.name = fc.deviceName(i);
    runtimes.push_back(std::move(rt));
  }

  // Version publisher: runs inside the epoch callback, i.e. on the drain
  // worker that just applied this device's updates — reading the
  // controller's device-visible program/config there is race-free.
  auto publishVersion = [&](DeviceRuntime& rt,
                            controller::FaultTolerantController& ctl,
                            bool degraded, bool recovery) {
    sim::ProgramVersion v;
    auto deviceCfg =
        std::make_shared<const runtime::DeviceConfig>(ctl.deviceConfig());
    std::shared_ptr<const p4::CheckedProgram> prog = ctl.pinnedProgram();
    if (prog == nullptr) {
      // Device still runs the original program: one config serves both the
      // interpreter and the oracle's reference side. Non-owning handle —
      // checked_ outlives the harness by contract.
      prog = std::shared_ptr<const p4::CheckedProgram>(
          std::shared_ptr<const p4::CheckedProgram>(), &checked_);
      v.config = deviceCfg;
    } else {
      v.config = std::make_shared<const runtime::DeviceConfig>(
          flay::migrateConfig(*prog, *deviceCfg));
    }
    v.program = std::move(prog);
    v.deviceConfig = std::move(deviceCfg);
    v.epoch = ctl.deviceVisibleUpdates();
    v.sequence = ++rt.publishSeq;
    v.publishedAtMicros = Stopwatch::nowMicros();
    v.degraded = degraded;
    v.recovery = recovery;
    rt.plane.publish(std::move(v));
    robs.versions.add(1);
  };

  for (size_t i = 0; i < options_.devices; ++i) {
    DeviceRuntime& rt = *runtimes[i];
    controller::FaultTolerantController* ctl = &fc.controller(i);
    fc.setEpochCallback(i, [&rt, ctl, &publishVersion, &robs, &lagHist](
                               const controller::EpochEvent& e) {
      // Stamp the newly committed updates, then publish the new committed
      // epoch (release) so a forwarding thread that sees it also sees the
      // stamps it may index.
      uint64_t now = Stopwatch::nowMicros();
      for (uint64_t k = rt.lastStamped + 1;
           k <= e.committed && k < rt.commitCap; ++k) {
        rt.commitTimes[k].store(now, std::memory_order_relaxed);
      }
      rt.lastStamped = std::max(rt.lastStamped, e.committed);
      rt.committed.store(e.committed, std::memory_order_release);
      // Publish on every advance, and on a degradation edge even without
      // one: entering degraded mode re-labels the same pinned program as a
      // degraded version, so packets it serves from now on are counted as
      // degraded-mode service (the ISSUE's degraded-mode probe).
      bool degradedEdge = e.degraded != rt.lastPublishedDegraded;
      if (!e.advanced && !degradedEdge) return;
      publishVersion(rt, *ctl, e.degraded, e.recovery);
      rt.lastPublishedDegraded = e.degraded;
      if (!e.advanced) return;
      lagHist.record(e.installLagMicros);
      robs.installLagUs.record(e.installLagMicros);
      if (e.recovery) {
        rt.stats.recoveries += 1;
        rt.stats.maxRecoveryMicros =
            std::max(rt.stats.maxRecoveryMicros, e.installLagMicros);
        robs.recoveryUs.record(e.installLagMicros);
      }
    });
    // Boot version: the construction-time install happened before the
    // callback existed.
    rt.lastPublishedDegraded = ctl->degraded();
    publishVersion(rt, *ctl, rt.lastPublishedDegraded, false);
  }

  // ---- Forwarding threads ------------------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> totalPackets{0};

  auto forwardLoop = [&](size_t deviceIdx) {
    DeviceRuntime& rt = *runtimes[deviceIdx];
    DeviceReplayStats& st = rt.stats;
    std::shared_ptr<const sim::ProgramVersion> ver;
    std::unique_ptr<sim::DataPlaneState> state;
    std::unique_ptr<sim::Interpreter> interp;
    std::unique_ptr<net::TrafficMixer> mixer;
    std::vector<sim::Packet> samples;
    WindowStats window;
    size_t sinceSample = 0;

    auto retire = [&] {
      if (ver == nullptr) return;
      std::lock_guard<std::mutex> lock(rt.vmu);
      rt.verifyQueue.push_back({std::move(ver), std::move(samples)});
      samples = {};
    };
    auto adopt = [&]() -> bool {
      std::shared_ptr<const sim::ProgramVersion> next = rt.plane.current();
      if (next == nullptr || (ver != nullptr && next == ver)) return false;
      retire();
      ver = std::move(next);
      state = std::make_unique<sim::DataPlaneState>(*ver->program);
      interp = std::make_unique<sim::Interpreter>(*ver->program, *ver->config,
                                                  *state);
      mixer = std::make_unique<net::TrafficMixer>(
          checked_, *ver->deviceConfig, options_.mix,
          mixSeed(options_.seed, deviceIdx, ver->sequence));
      st.versionsAdopted += 1;
      sinceSample = options_.oracleSampleEvery;  // always sample a fresh version
      return true;
    };

    try {
      while (!stop.load(std::memory_order_acquire)) {
        // Read the convergence flag *before* adopting: converged=true
        // (acquire) guarantees the final version's publish is visible to
        // the sequence check below, so a post-convergence packet is always
        // served by the final version.
        bool convergedNow = rt.converged.load(std::memory_order_acquire);
        if (ver == nullptr || rt.plane.sequence() != ver->sequence) {
          if (!adopt() && ver == nullptr) {
            std::this_thread::yield();
            continue;
          }
        }
        sim::Packet packet = mixer->next();
        sim::ExecResult result = interp->process(packet);
        uint64_t now = Stopwatch::nowMicros();

        st.packets += 1;
        window.packets += 1;
        totalPackets.fetch_add(1, std::memory_order_relaxed);
        if (result.dropped) {
          st.policyDrops += 1;
          window.policyDrops += 1;
        }
        if (ver->degraded) {
          st.degradedPackets += 1;
          window.degradedPackets += 1;
        }

        uint64_t committed = rt.committed.load(std::memory_order_acquire);
        sim::EpochStamp stamp{ver->epoch, committed};
        if (stamp.stale()) {
          uint64_t staleUpdates = stamp.stalenessUpdates();
          uint64_t firstMissing = std::min(ver->epoch + 1, rt.commitCap - 1);
          uint64_t commitTs =
              rt.commitTimes[firstMissing].load(std::memory_order_relaxed);
          uint64_t staleUs = now > commitTs ? now - commitTs : 0;
          st.stalePackets += 1;
          window.stalePackets += 1;
          st.maxStalenessUpdates =
              std::max(st.maxStalenessUpdates, staleUpdates);
          st.maxStalenessMicros = std::max(st.maxStalenessMicros, staleUs);
          window.maxStalenessUpdates =
              std::max(window.maxStalenessUpdates, staleUpdates);
          window.maxStalenessMicros =
              std::max(window.maxStalenessMicros, staleUs);
          staleUpdatesHist.record(staleUpdates);
          staleUsHist.record(staleUs);
          robs.stalenessUpdates.record(staleUpdates);
          robs.stalenessUs.record(staleUs);
          if (convergedNow) st.postConvergenceStale += 1;
        }
        if (convergedNow) {
          st.postConvergencePackets += 1;
          rt.postPackets.fetch_add(1, std::memory_order_relaxed);
        }

        if (samples.size() < options_.oracleSamplesPerVersionMax &&
            (samples.size() < options_.oracleSamplesPerVersionMin ||
             ++sinceSample >= options_.oracleSampleEvery)) {
          samples.push_back(packet);
          sinceSample = 0;
        }
        if (window.packets >= options_.windowPackets) {
          st.windows.push_back(window);
          window = WindowStats{};
        }
      }
    } catch (const std::exception& e) {
      st.forwardingError = e.what();
    }
    if (window.packets != 0) st.windows.push_back(window);
    retire();
  };

  // ---- Post-hoc oracle verifier -----------------------------------------
  // Replays every retired version's sampled packets through the original
  // program under the device-visible config versus the installed
  // specialization under its migrated config — both from fresh extern state,
  // in sample order. Any forwarding-visible difference is a misroute. This
  // is the degradation invariant measured on the packets the device really
  // served, independent of churn timing.
  auto verifyPending = [&](size_t deviceIdx, size_t maxVersions) {
    DeviceRuntime& rt = *runtimes[deviceIdx];
    size_t done = 0;
    while (done < maxVersions) {
      PendingVerify pending;
      {
        std::lock_guard<std::mutex> lock(rt.vmu);
        if (rt.verifyQueue.empty()) return;
        pending = std::move(rt.verifyQueue.front());
        rt.verifyQueue.pop_front();
      }
      ++done;
      if (pending.samples.empty()) continue;
      const sim::ProgramVersion& v = *pending.version;
      sim::DataPlaneState origState(checked_);
      sim::DataPlaneState specState(*v.program);
      sim::Interpreter orig(checked_, *v.deviceConfig, origState);
      sim::Interpreter spec(*v.program, *v.config, specState);
      for (const sim::Packet& packet : pending.samples) {
        rt.oracleSamples += 1;
        robs.oracleSamples.add(1);
        sim::ExecResult a = orig.process(packet);
        sim::ExecResult b = spec.process(packet);
        const char* aspect = nullptr;
        if (a.parserAccepted != b.parserAccepted) aspect = "parserAccepted";
        else if (a.dropped != b.dropped) aspect = "dropped";
        else if (!a.dropped && a.egressPort != b.egressPort) aspect = "egressPort";
        else if (a.outputBytes != b.outputBytes) aspect = "outputBytes";
        if (aspect != nullptr) {
          rt.misroutes += 1;
          robs.misroutes.add(1);
          if (rt.firstMisroute.empty()) {
            rt.firstMisroute = rt.stats.name + " version seq " +
                               std::to_string(v.sequence) + " epoch " +
                               std::to_string(v.epoch) + ": " + aspect +
                               " diverged";
          }
        }
      }
    }
  };

  std::vector<std::thread> forwarders;
  forwarders.reserve(options_.devices);
  for (size_t i = 0; i < options_.devices; ++i) {
    forwarders.emplace_back(forwardLoop, i);
  }

  // ---- Control thread: churn + faults + recovery ------------------------
  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked_, options_.updates, options_.seed);
  double intervalUs =
      options_.churnRate > 0 ? 1e6 / options_.churnRate : 0.0;
  uint64_t nextBroadcastAt = Stopwatch::nowMicros();
  size_t sinceDrain = 0;
  for (const runtime::Update& update : script) {
    if (intervalUs > 0) {
      uint64_t now = Stopwatch::nowMicros();
      if (now < nextBroadcastAt) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(nextBroadcastAt - now));
      }
      nextBroadcastAt += static_cast<uint64_t>(intervalUs);
    }
    fc.broadcast(update);
    if (++sinceDrain >= options_.drainEvery) {
      sinceDrain = 0;
      fc.drain();
      fc.tryRecoverAll();
      // Keep verification (and its version memory) flowing with the churn.
      for (size_t i = 0; i < options_.devices; ++i) verifyPending(i, 8);
    }
  }
  fc.drain();

  // Quarantine re-admission until the whole fleet converged (or the round
  // budget ran out — the gate below will say so).
  size_t rounds = 0;
  while (fc.degradedDevices() > 0 && rounds < options_.maxRecoveryRounds) {
    ++rounds;
    if (fc.tryRecoverAll() == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  fc.drain();

  // Convergence declaration, per device: healthy, nothing queued, and every
  // committed update device-visible. Release so the forwarding thread's
  // acquire also sees the final published version.
  bool fleetConverged = true;
  std::vector<bool> deviceConverged(options_.devices, false);
  for (size_t i = 0; i < options_.devices; ++i) {
    fleet::DeviceStatus s = fc.status(i);
    bool conv = !s.failed && !s.degraded && s.queued == 0 &&
                s.committed == s.deviceVisible;
    deviceConverged[i] = conv;
    if (conv) {
      runtimes[i]->converged.store(true, std::memory_order_release);
    } else {
      fleetConverged = false;
    }
  }

  // Cooldown: every converged device forwards cooldownPackets more (these
  // gate staleness == 0), and the fleet-wide packet floor is met.
  for (;;) {
    bool cooled = true;
    for (size_t i = 0; i < options_.devices; ++i) {
      if (!deviceConverged[i]) continue;
      if (runtimes[i]->postPackets.load(std::memory_order_relaxed) <
          options_.cooldownPackets) {
        cooled = false;
        break;
      }
    }
    if (cooled &&
        totalPackets.load(std::memory_order_relaxed) >= options_.packets) {
      break;
    }
    // Drain verification backlog while waiting.
    for (size_t i = 0; i < options_.devices; ++i) verifyPending(i, 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : forwarders) t.join();

  // Forwarders flushed their last in-flight version on exit; verify all.
  for (size_t i = 0; i < options_.devices; ++i) {
    verifyPending(i, static_cast<size_t>(-1));
  }

  // ---- Report ------------------------------------------------------------
  ReplayReport report;
  report.wallMicros = wall.elapsedMicros();
  report.updatesBroadcast = script.size();
  report.fleetConverged = fleetConverged;
  for (size_t i = 0; i < options_.devices; ++i) {
    DeviceRuntime& rt = *runtimes[i];
    DeviceReplayStats st = std::move(rt.stats);
    fleet::DeviceStatus s = fc.status(i);
    st.converged = deviceConverged[i];
    st.failed = s.failed;
    st.committed = s.committed;
    st.deviceVisible = s.deviceVisible;
    st.droppedUpdates = s.dropped;
    st.readmissionAttempts = s.recoverAttempts;
    st.oracleSamples = rt.oracleSamples;
    st.misroutes = rt.misroutes;
    st.firstMisroute = rt.firstMisroute;

    report.totalPackets += st.packets;
    report.stalePackets += st.stalePackets;
    report.maxStalenessUpdates =
        std::max(report.maxStalenessUpdates, st.maxStalenessUpdates);
    report.maxStalenessMicros =
        std::max(report.maxStalenessMicros, st.maxStalenessMicros);
    report.degradedPackets += st.degradedPackets;
    report.policyDrops += st.policyDrops;
    report.misroutes += st.misroutes;
    report.oracleSamples += st.oracleSamples;
    report.droppedUpdates += st.droppedUpdates;
    report.postConvergenceStale += st.postConvergenceStale;
    report.recoveries += st.recoveries;
    report.maxRecoveryMicros =
        std::max(report.maxRecoveryMicros, st.maxRecoveryMicros);

    if (!st.forwardingError.empty()) {
      report.gateFailures.push_back(st.name + ": forwarding error: " +
                                    st.forwardingError);
    }
    if (st.misroutes != 0) {
      report.gateFailures.push_back(st.name + ": " +
                                    std::to_string(st.misroutes) +
                                    " oracle misroute(s): " + st.firstMisroute);
    }
    if (!st.failed && !st.converged) {
      report.gateFailures.push_back(st.name + ": not converged after churn (" +
                                    std::to_string(s.committed - s.deviceVisible) +
                                    " update(s) backlogged)");
    }
    if (st.failed) {
      report.gateFailures.push_back(st.name + ": quarantined (failed)");
    }
    if (st.postConvergenceStale != 0) {
      report.gateFailures.push_back(
          st.name + ": " + std::to_string(st.postConvergenceStale) +
          " stale packet(s) after convergence (unbounded staleness)");
    }
    report.devices.push_back(std::move(st));
  }
  report.readmissionAttempts =
      obs::Registry::global().counter("fleet.readmission_attempts").value() -
      attemptsBefore;
  report.readmissions =
      obs::Registry::global().counter("fleet.readmissions").value() -
      readmissionsBefore;
  report.installLagUs = lagStats(lagHist);
  report.stalenessUpdates = lagStats(staleUpdatesHist);
  report.stalenessUs = lagStats(staleUsHist);
  report.packetsPerSecond =
      report.wallMicros > 0
          ? report.totalPackets * 1e6 / static_cast<double>(report.wallMicros)
          : 0.0;
  report.ok = report.gateFailures.empty();

  robs.packets.add(report.totalPackets);
  robs.stalePackets.add(report.stalePackets);
  robs.degradedPackets.add(report.degradedPackets);
  robs.policyDrops.add(report.policyDrops);
  robs.postConvStale.add(report.postConvergenceStale);
  return report;
}

std::vector<std::pair<std::string, double>> reportMetrics(
    const ReplayReport& report) {
  std::vector<std::pair<std::string, double>> m;
  auto add = [&](const std::string& k, double v) { m.emplace_back(k, v); };
  add("ok", report.ok ? 1 : 0);
  add("devices", static_cast<double>(report.devices.size()));
  add("packets", static_cast<double>(report.totalPackets));
  add("packets_per_sec", report.packetsPerSecond);
  add("updates_broadcast", static_cast<double>(report.updatesBroadcast));
  add("wall_us", static_cast<double>(report.wallMicros));
  add("stale_packets", static_cast<double>(report.stalePackets));
  add("stale_fraction",
      report.totalPackets > 0
          ? static_cast<double>(report.stalePackets) / report.totalPackets
          : 0);
  add("max_staleness_updates",
      static_cast<double>(report.maxStalenessUpdates));
  add("max_staleness_us", static_cast<double>(report.maxStalenessMicros));
  add("staleness_updates_p99", static_cast<double>(report.stalenessUpdates.p99));
  add("staleness_us_p99", static_cast<double>(report.stalenessUs.p99));
  add("install_lag_us_p50", static_cast<double>(report.installLagUs.p50));
  add("install_lag_us_p99", static_cast<double>(report.installLagUs.p99));
  add("install_lag_us_max", static_cast<double>(report.installLagUs.max));
  add("degraded_packets", static_cast<double>(report.degradedPackets));
  add("policy_drops", static_cast<double>(report.policyDrops));
  add("dropped_updates", static_cast<double>(report.droppedUpdates));
  add("oracle_samples", static_cast<double>(report.oracleSamples));
  add("misroutes", static_cast<double>(report.misroutes));
  add("post_convergence_stale",
      static_cast<double>(report.postConvergenceStale));
  add("converged", report.fleetConverged ? 1 : 0);
  add("recoveries", static_cast<double>(report.recoveries));
  add("max_recovery_us", static_cast<double>(report.maxRecoveryMicros));
  add("readmission_attempts",
      static_cast<double>(report.readmissionAttempts));
  add("readmissions", static_cast<double>(report.readmissions));
  // Per-window series, capped at 64 rows per device to keep the JSON
  // bounded; the cap drops only *rows*, never the aggregate accounting
  // above, and the drop is explicit in windows_reported vs windows_total.
  for (const DeviceReplayStats& d : report.devices) {
    std::string prefix = "window." + d.name + ".";
    add(prefix + "windows_total", static_cast<double>(d.windows.size()));
    size_t step = d.windows.size() > 64 ? (d.windows.size() + 63) / 64 : 1;
    size_t reported = 0;
    for (size_t w = 0; w < d.windows.size(); w += step) {
      const WindowStats& win = d.windows[w];
      std::string at = prefix + std::to_string(w) + ".";
      add(at + "stale", static_cast<double>(win.stalePackets));
      add(at + "max_staleness_updates",
          static_cast<double>(win.maxStalenessUpdates));
      add(at + "max_staleness_us",
          static_cast<double>(win.maxStalenessMicros));
      add(at + "degraded", static_cast<double>(win.degradedPackets));
      ++reported;
    }
    add(prefix + "windows_reported", static_cast<double>(reported));
  }
  return m;
}

std::string describeReport(const ReplayReport& report) {
  std::string out;
  auto line = [&](std::string s) { out += s + "\n"; };
  line("replay: " + std::to_string(report.totalPackets) + " packet(s) over " +
       std::to_string(report.devices.size()) + " device(s), " +
       std::to_string(report.updatesBroadcast) + " update(s) broadcast, " +
       std::to_string(report.wallMicros / 1000) + " ms (" +
       std::to_string(static_cast<uint64_t>(report.packetsPerSecond)) +
       " pkt/s)");
  for (const DeviceReplayStats& d : report.devices) {
    line("  " + d.name + ": packets=" + std::to_string(d.packets) +
         " stale=" + std::to_string(d.stalePackets) +
         " max-staleness=" + std::to_string(d.maxStalenessUpdates) +
         "upd/" + std::to_string(d.maxStalenessMicros) + "us" +
         " degraded-pkts=" + std::to_string(d.degradedPackets) +
         " versions=" + std::to_string(d.versionsAdopted) +
         " oracle=" + std::to_string(d.oracleSamples) + "/" +
         std::to_string(d.misroutes) + " misroute(s)" +
         " recoveries=" + std::to_string(d.recoveries) +
         (d.converged ? "" : " NOT-CONVERGED") + (d.failed ? " FAILED" : ""));
  }
  line("  install-lag: p50=" + std::to_string(report.installLagUs.p50) +
       "us p99=" + std::to_string(report.installLagUs.p99) +
       "us max=" + std::to_string(report.installLagUs.max) + "us; " +
       "re-admission: " + std::to_string(report.readmissions) + "/" +
       std::to_string(report.readmissionAttempts) + " attempt(s); " +
       "dropped-updates=" + std::to_string(report.droppedUpdates) +
       " post-convergence-stale=" + std::to_string(report.postConvergenceStale));
  for (const std::string& g : report.gateFailures) line("  GATE: " + g);
  return out;
}

}  // namespace flay::replay
