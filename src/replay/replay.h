#ifndef FLAY_REPLAY_REPLAY_H
#define FLAY_REPLAY_REPLAY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "controller/fault_plan.h"
#include "fleet/fleet.h"
#include "net/mix.h"

namespace flay::replay {

/// Knobs of one live replay. The packet/update workloads are deterministic
/// in the seed; the *interleaving* of packets against control-plane churn is
/// real concurrency, so SLO numbers (staleness, lag) are measurements, not
/// reproducible constants. The correctness gates — post-hoc oracle
/// equivalence of every published version, zero staleness after convergence
/// — hold at every interleaving.
struct ReplayOptions {
  size_t devices = 2;
  /// Minimum packets forwarded fleet-wide. Forwarding threads keep running
  /// until churn, convergence, and the cooldown are also done, so the actual
  /// total is >= this.
  size_t packets = 100000;
  /// Fuzzed churn updates broadcast to every device.
  size_t updates = 200;
  /// Broadcast pacing in updates/second (0 = as fast as the fleet drains).
  double churnRate = 0;
  /// Broadcasts between drain + tryRecoverAll cycles.
  size_t drainEvery = 8;
  net::TrafficMix mix = net::TrafficMix::kHeavyHitter;
  controller::FaultPlan faultPlan;
  /// Fleet drain concurrency (the harness's forwarding threads are extra).
  size_t jobs = 2;
  /// Per-device fleet queue capacity (0 = unbounded).
  size_t queueCapacity = 0;
  uint64_t seed = 1;
  /// SLO window length in packets, per device.
  size_t windowPackets = 8192;
  /// Post-hoc oracle sampling: the first few packets served by every
  /// published version plus every N-th packet are re-executed
  /// original-vs-specialized after the version retires.
  size_t oracleSampleEvery = 512;
  size_t oracleSamplesPerVersionMin = 2;
  size_t oracleSamplesPerVersionMax = 64;
  /// Packets each converged device must forward after convergence (these
  /// gate staleness == 0).
  size_t cooldownPackets = 2048;
  /// Bound on post-churn tryRecoverAll rounds before declaring the fleet
  /// unconverged.
  size_t maxRecoveryRounds = 200;
  fleet::RecoveryPolicy recovery;
  /// Controller <-> device transport: in-process calls or the versioned
  /// socket wire protocol (see fleet::Transport). Epoch callbacks still
  /// fire in-process either way (socket agents are threads in this
  /// process), so the harness's staleness accounting is transport-blind.
  fleet::Transport transport = fleet::Transport::kInproc;
  /// Base per-device controller options. tryRecoverEvery is forced to 0 so
  /// quarantine re-admission goes through the fleet's RecoveryPolicy and the
  /// recovery metrics are well-defined.
  controller::ControllerOptions controller;
  tofino::CompilerOptions deviceCompiler;
};

/// Per-window packet SLOs (windows are windowPackets long, per device).
struct WindowStats {
  uint64_t packets = 0;
  uint64_t stalePackets = 0;
  uint64_t maxStalenessUpdates = 0;
  uint64_t maxStalenessMicros = 0;
  uint64_t degradedPackets = 0;
  uint64_t policyDrops = 0;
};

struct DeviceReplayStats {
  std::string name;
  uint64_t packets = 0;
  uint64_t stalePackets = 0;
  uint64_t maxStalenessUpdates = 0;
  uint64_t maxStalenessMicros = 0;
  /// Packets served by a version published while the controller was
  /// degraded (pinned program) — they kept flowing, which is the point.
  uint64_t degradedPackets = 0;
  /// Packets the program's own policy dropped (not an SLO failure).
  uint64_t policyDrops = 0;
  uint64_t versionsAdopted = 0;
  uint64_t oracleSamples = 0;
  uint64_t misroutes = 0;
  uint64_t recoveries = 0;
  uint64_t maxRecoveryMicros = 0;
  uint64_t committed = 0;
  uint64_t deviceVisible = 0;
  uint64_t droppedUpdates = 0;
  uint64_t readmissionAttempts = 0;
  bool converged = false;
  bool failed = false;
  uint64_t postConvergencePackets = 0;
  uint64_t postConvergenceStale = 0;
  std::vector<WindowStats> windows;
  std::string firstMisroute;   // human-readable, empty when clean
  std::string forwardingError;  // interpreter exception text, empty when clean
};

struct LagStats {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

struct ReplayReport {
  /// Every hard gate passed: zero oracle misroutes, zero forwarding errors,
  /// fleet converged, zero stale packets after convergence.
  bool ok = false;
  std::vector<std::string> gateFailures;

  uint64_t totalPackets = 0;
  uint64_t stalePackets = 0;
  uint64_t maxStalenessUpdates = 0;
  uint64_t maxStalenessMicros = 0;
  uint64_t degradedPackets = 0;
  uint64_t policyDrops = 0;
  uint64_t misroutes = 0;
  uint64_t oracleSamples = 0;
  uint64_t droppedUpdates = 0;
  uint64_t postConvergenceStale = 0;
  uint64_t readmissionAttempts = 0;
  uint64_t readmissions = 0;
  uint64_t recoveries = 0;
  uint64_t maxRecoveryMicros = 0;
  bool fleetConverged = false;
  uint64_t updatesBroadcast = 0;
  uint64_t wallMicros = 0;
  double packetsPerSecond = 0;
  /// Verdict-ready -> device-visible, fleet-wide (microseconds).
  LagStats installLagUs;
  LagStats stalenessUpdates;
  LagStats stalenessUs;
  std::vector<DeviceReplayStats> devices;
};

/// Drives sim::Interpreter forwarding threads (one per device, each serving
/// a TrafficMixer stream against the device's current ProgramVersion
/// snapshot) concurrent with fuzzed control-plane churn broadcast through a
/// FleetController under a FaultPlan. Every packet is epoch-stamped (the
/// update epoch it should see vs the version that served it) into per-window
/// SLO metrics; every published version is post-hoc oracle-replayed
/// (original program vs installed specialization on sampled packets).
class LiveReplayHarness {
 public:
  /// `checked` must outlive the harness.
  LiveReplayHarness(const p4::CheckedProgram& checked, ReplayOptions options);

  ReplayReport run();

 private:
  const p4::CheckedProgram& checked_;
  ReplayOptions options_;
};

/// Flattens a report into BENCH metric rows (aggregates plus per-window
/// series), ready for obs::writeBenchReport.
std::vector<std::pair<std::string, double>> reportMetrics(
    const ReplayReport& report);

/// Multi-line human-readable summary (one block per device).
std::string describeReport(const ReplayReport& report);

}  // namespace flay::replay

#endif  // FLAY_REPLAY_REPLAY_H
